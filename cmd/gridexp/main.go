// Command gridexp reproduces the paper's case study: the Table 1
// prediction matrix, the Table 2 experiment design, the Table 3 results
// and the Figs. 8–10 trend series, over the twelve-agent grid of Fig. 7.
//
// Usage:
//
//	gridexp                  # run all three experiments, print every table
//	gridexp -table1          # only the PACE prediction matrix
//	gridexp -table3 -fig10   # selected outputs
//	gridexp -requests 120    # reduced workload
//	gridexp -topology        # print the Fig. 7 agent hierarchy
//
// Scenario mode (the declarative layer of internal/scenario):
//
//	gridexp -scenario examples/scenarios/fig7.json              # one audited run
//	gridexp -scenario s.json -sweep rate=0.5,1,2 -out sweep.json
//	gridexp -scenario s.json -find-saturation                   # capacity search
//
// Any mode accepts -out results.json to export the selected studies as
// machine-readable JSON instead of scraping the printed tables.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/audit"
	"repro/internal/core"
	"repro/internal/experiment"
	"repro/internal/metrics"
	"repro/internal/pace"
	"repro/internal/scenario"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

func main() {
	var (
		table1   = flag.Bool("table1", false, "print the Table 1 prediction matrix")
		table2   = flag.Bool("table2", false, "print the Table 2 experiment design")
		table3   = flag.Bool("table3", false, "run the experiments and print Table 3")
		fig8     = flag.Bool("fig8", false, "print the Fig. 8 advance-time trends")
		fig9     = flag.Bool("fig9", false, "print the Fig. 9 utilisation trends")
		fig10    = flag.Bool("fig10", false, "print the Fig. 10 load-balance trends")
		topology = flag.Bool("topology", false, "print the Fig. 7 agent hierarchy")
		dispatch = flag.Bool("dispatch", false, "print the per-resource dispatch counts")
		stats    = flag.Bool("stats", false, "print per-application statistics and the lateness distribution per experiment")
		accuracy = flag.Bool("accuracy", false, "run the §5 prediction-accuracy study")
		scale    = flag.Bool("scale", false, "run the §5 scalability study on synthetic hierarchies")
		exp4     = flag.Bool("exp4", false, "run Experiment 4: the resilience study under agent crashes")
		exp5     = flag.Bool("exp5", false, "run Experiment 5: drift-driven migration off a degraded node, off vs on")
		exp6     = flag.Bool("exp6", false, "run Experiment 6: the advance-reservation admission study over reserved-traffic shares")
		exp7     = flag.Bool("exp7", false, "run Experiment 7: dynamic hierarchy under churn and flash crowd, static vs rebalanced tree")
		auditRun = flag.Bool("audit", false, "run the lifecycle auditor over every experiment and exit non-zero on violations")
		csvDir   = flag.String("csv", "", "also export the experiment results as CSV into this directory")
		traceOut = flag.String("tracefile", "", "write the experiment-3 request lifecycle trace as CSV to this file")
		requests = flag.Int("requests", 600, "number of task requests (§4.1 uses 600)")
		seed     = flag.Uint64("seed", 2003, "workload and GA seed")
		workers  = flag.Int("workers", runtime.NumCPU(), "GA cost-evaluation workers per scheduler (results are identical for any value)")

		scenarioPath = flag.String("scenario", "", "run the scenario described by this JSON spec (see examples/scenarios/)")
		migrate      = flag.Bool("migrate", false, "with -scenario: force the drift-driven migration policy on (spec defaults for every knob)")
		sweepArg     = flag.String("sweep", "", "with -scenario: sweep one axis, e.g. rate=0.5,1,2 or agents=12,24,48")
		findSat      = flag.Bool("find-saturation", false, "with -scenario: binary-search the arrival rate where ε crosses zero")
		outPath      = flag.String("out", "", "export the selected results as JSON to this file (a -sweep also accepts a .csv path)")

		telemetryOut = flag.String("telemetry", "", "instrument the runs and write the telemetry exports (registry snapshot + virtual-time series) as JSON to this file; results are byte-identical with or without it")
		samplePeriod = flag.Float64("sample-period", 10, "telemetry series sampling period in virtual seconds")
	)
	flag.Parse()

	if *scenarioPath != "" {
		runScenario(*scenarioPath, *sweepArg, *findSat, *outPath, *workers, *telemetryOut, *samplePeriod, *migrate, *traceOut)
		return
	}
	if *sweepArg != "" || *findSat {
		fail(fmt.Errorf("-sweep and -find-saturation need a -scenario spec"))
	}
	if *migrate {
		fail(fmt.Errorf("-migrate needs a -scenario spec (use -exp5 for the canned migration study)"))
	}

	all := !(*table1 || *table2 || *table3 || *fig8 || *fig9 || *fig10 || *topology || *dispatch || *stats || *accuracy || *scale || *exp4 || *exp5 || *exp6 || *exp7)
	doc := exportDoc{Seed: *seed, Requests: *requests}

	if all || *table1 {
		engine := pace.NewEngine()
		out, err := experiment.FormatTable1(pace.CaseStudyLibrary(), engine, pace.SGIOrigin2000, 16)
		fail(err)
		fmt.Println(out)
	}
	if all || *table2 {
		fmt.Println(experiment.FormatTable2())
	}
	if all || *topology {
		grid, err := core.New(experiment.CaseStudyResources(), core.Options{})
		fail(err)
		fmt.Println("Agent hierarchy (Fig. 7):")
		fmt.Println(grid.Hierarchy().Describe())
	}

	params := experiment.DefaultParams()
	params.Requests = *requests
	params.Seed = *seed
	params.Workers = *workers
	params.Audit = *auditRun
	params.Telemetry = *telemetryOut != ""
	params.SamplePeriod = *samplePeriod
	telemetryExports := map[string]*telemetry.Export{}
	var rec *trace.Recorder
	if *traceOut != "" {
		rec = trace.NewRecorder(4 * *requests * len(experiment.Configs))
		params.Trace = rec
	}

	// verdict prints an audit result and arranges a non-zero exit when
	// any invariant broke, so CI can gate on `gridexp ... -audit`.
	auditFailed := false
	verdict := func(scope string, res *audit.Result) {
		if res == nil {
			return
		}
		fmt.Printf("%s %s\n", scope, res.Summary())
		if !res.OK() {
			auditFailed = true
			limit := len(res.Violations)
			if limit > 10 {
				limit = 10
			}
			for _, v := range res.Violations[:limit] {
				fmt.Printf("  VIOLATION %s\n", v)
			}
			if len(res.Violations) > limit {
				fmt.Printf("  ... and %d more\n", len(res.Violations)-limit)
			}
		}
	}

	if *accuracy {
		fmt.Printf("Running prediction-accuracy study: %d requests, seed %d\n", params.Requests, params.Seed)
		pts, err := experiment.RunAccuracyStudy(experiment.DefaultNoiseCases(), params)
		fail(err)
		fmt.Println(experiment.FormatAccuracy(pts))
		doc.Accuracy = summariseAccuracy(pts)
		for _, pt := range pts {
			verdict(fmt.Sprintf("[accuracy scatter=%g bias=%g]", pt.Rel, pt.Bias), pt.Audit)
		}
	}
	if *scale {
		fmt.Printf("Running scalability study (seed %d)\n", params.Seed)
		pts, err := experiment.RunScalabilityStudy([]int{6, 12, 24, 48}, 3, 50, params)
		fail(err)
		fmt.Println(experiment.FormatScalability(pts))
		doc.Scale = summariseScale(pts)
	}
	if *exp4 {
		plan := experiment.ScaledFaultPlan(float64(params.Requests) * params.Interval)
		fmt.Printf("Running experiment 4 (resilience): %d requests, seed %d, %d fault events\n",
			params.Requests, params.Seed, len(plan.Events))
		start := time.Now()
		r, err := experiment.RunResilience(params, plan)
		fail(err)
		fmt.Printf("(completed in %v wall time)\n\n", time.Since(start).Round(time.Millisecond))
		fmt.Println(experiment.FormatResilience(r))
		doc.Resilience = &resilienceRow{
			Baseline: summariseOutcome(r.Baseline),
			Faulted:  summariseOutcome(r.Faulted),
			Events:   len(plan.Events),
		}
		verdict("[exp3 baseline]", r.Baseline.Audit)
		verdict("[exp4 faulted]", r.Faulted.Audit)
	}
	if *exp5 {
		plan := experiment.ScaledDegradedPlan(float64(params.Requests) * params.Interval)
		fmt.Printf("Running experiment 5 (migration): %d requests, seed %d, degraded resource S2\n",
			params.Requests, params.Seed)
		start := time.Now()
		r, err := experiment.RunMigrationStudy(params, plan, experiment.DefaultMigrationPolicy())
		fail(err)
		fmt.Printf("(completed in %v wall time)\n\n", time.Since(start).Round(time.Millisecond))
		fmt.Println(experiment.FormatMigration(r))
		doc.Migration = &migrationRow{
			Degraded: summariseOutcome(r.Degraded),
			Migrated: summariseOutcome(r.Migrated),
			Offers:   r.Stats.Offers,
			Accepts:  r.Stats.Accepts,
			Rejects:  r.Stats.Rejects,
		}
		verdict("[exp5 degraded]", r.Degraded.Audit)
		verdict("[exp5 migrated]", r.Migrated.Audit)
	}
	if *exp6 {
		shares := experiment.DefaultReservationShares()
		fmt.Printf("Running experiment 6 (reservations): %d requests, seed %d, shares %v\n",
			params.Requests, params.Seed, shares)
		start := time.Now()
		pts, err := experiment.RunReservationStudy(params, shares)
		fail(err)
		fmt.Printf("(completed in %v wall time)\n\n", time.Since(start).Round(time.Millisecond))
		fmt.Println(experiment.FormatReservation(pts))
		for _, p := range pts {
			doc.Reservation = append(doc.Reservation, summariseReservation(p))
			verdict(fmt.Sprintf("[exp6 share=%g]", p.Share), p.Result.Audit)
			if p.Result.Telemetry != nil {
				telemetryExports[fmt.Sprintf("exp6_share_%g", p.Share)] = p.Result.Telemetry
			}
		}
	}
	if *exp7 {
		plan := experiment.DefaultChurnPlan()
		fmt.Printf("Running experiment 7 (dynamic hierarchy): %d requests, seed %d, %d joins / %d leaves\n",
			params.Requests, params.Seed, len(plan.Joins), len(plan.Leaves))
		start := time.Now()
		r, err := experiment.RunMembershipStudy(params, plan, experiment.DefaultRebalancePolicy())
		fail(err)
		fmt.Printf("(completed in %v wall time)\n\n", time.Since(start).Round(time.Millisecond))
		fmt.Println(experiment.FormatMembership(r))
		doc.Membership = &membershipRow{
			Static:  summariseOutcome(r.Static),
			Dynamic: summariseOutcome(r.Dynamic),
			Joins:   r.Stats.Joins,
			Leaves:  r.Stats.Leaves,
			Drained: r.Stats.Drained,
			Moves:   r.Stats.Moves,
		}
		verdict("[exp7 static]", r.Static.Audit)
		verdict("[exp7 dynamic]", r.Dynamic.Audit)
		if r.Dynamic.Telemetry != nil {
			telemetryExports["exp7_dynamic"] = r.Dynamic.Telemetry
		}
	}

	needRuns := all || *table3 || *fig8 || *fig9 || *fig10 || *dispatch || *stats || *csvDir != ""
	if !needRuns && *auditRun && !(*accuracy || *scale || *exp4 || *exp5 || *exp6 || *exp7) {
		// `gridexp -audit` alone still means "audit the experiments".
		needRuns = true
	}
	if !needRuns {
		if *outPath != "" {
			fail(doc.write(*outPath))
		}
		if *telemetryOut != "" {
			fail(writeTelemetry(*telemetryOut, telemetryExports))
		}
		if auditFailed {
			os.Exit(1)
		}
		return
	}

	fmt.Printf("Running experiments 1-3: %d requests at %gs intervals, seed %d\n",
		params.Requests, params.Interval, params.Seed)
	start := time.Now()
	outs, err := experiment.RunAll(params)
	fail(err)
	fmt.Printf("(completed in %v wall time)\n\n", time.Since(start).Round(time.Millisecond))
	for _, o := range outs {
		doc.Experiments = append(doc.Experiments, summariseOutcome(o))
		verdict(fmt.Sprintf("[experiment %d]", o.Setup.ID), o.Audit)
		if o.Telemetry != nil {
			telemetryExports[fmt.Sprintf("experiment_%d", o.Setup.ID)] = o.Telemetry
		}
	}

	if all || *table3 {
		fmt.Println(experiment.FormatTable3(outs))
	}
	if all || *fig8 {
		fmt.Println(experiment.FormatTrends(outs, experiment.TrendEpsilon))
	}
	if all || *fig9 {
		fmt.Println(experiment.FormatTrends(outs, experiment.TrendUpsilon))
	}
	if all || *fig10 {
		fmt.Println(experiment.FormatTrends(outs, experiment.TrendBeta))
	}
	if all || *dispatch {
		fmt.Println(experiment.FormatDispatchSummary(outs))
	}
	if *stats {
		for _, o := range outs {
			fmt.Printf("=== experiment %d (%s) ===\n", o.Setup.ID, o.Setup.Label)
			fmt.Println(metrics.FormatStats(o.Records))
		}
	}
	if *csvDir != "" {
		fail(experiment.WriteCSV(*csvDir, outs))
		fmt.Printf("CSV exported to %s (table3, fig8-10, dispatch)\n", *csvDir)
	}
	if rec != nil {
		f, err := os.Create(*traceOut)
		fail(err)
		fail(rec.WriteCSV(f))
		fail(f.Close())
		fmt.Printf("lifecycle trace written to %s (%s)\n", *traceOut, rec.Summary())
	}
	if *outPath != "" {
		fail(doc.write(*outPath))
	}
	if *telemetryOut != "" {
		fail(writeTelemetry(*telemetryOut, telemetryExports))
	}
	if auditFailed {
		os.Exit(1)
	}
}

// runScenario is the -scenario entry point: one audited run, a sweep
// over one axis, or a saturation search, with optional JSON/CSV export.
// Every scenario run is audited; any violation exits non-zero.
func runScenario(path, sweepArg string, findSat bool, outPath string, workers int, telemetryOut string, samplePeriod float64, migrate bool, traceOut string) {
	spec, err := scenario.Load(path)
	fail(err)
	if migrate {
		if spec.Migration == nil {
			spec.Migration = &scenario.MigrationSpec{}
		}
		spec.Migration.Enabled = true
	}
	opt := scenario.RunOptions{Workers: workers, Telemetry: telemetryOut != "", SamplePeriod: samplePeriod}
	// The scenario trace streams: a retention-off recorder feeds a CSV
	// sink that flushes rows as the grid's virtual-time watermark passes
	// them, so a 1M-request trace goes to disk without ever holding the
	// run in memory. The bytes are identical to the batch WriteCSV export.
	var sink *trace.CSVSink
	var traceFile *os.File
	if traceOut != "" {
		if sweepArg != "" || findSat {
			fail(fmt.Errorf("-tracefile records a single scenario run, not a sweep or saturation search"))
		}
		f, err := os.Create(traceOut)
		fail(err)
		traceFile = f
		sink = trace.NewCSVSink(f)
		rec := trace.NewRecorder(1)
		rec.SetRetention(false)
		rec.AddSink(sink)
		opt.Trace = rec
	}
	doc := exportDoc{Seed: spec.Seed, Requests: spec.Arrivals.Count}
	telemetryExports := map[string]*telemetry.Export{}
	failed := false
	switch {
	case sweepArg != "":
		axis, values, err := scenario.ParseAxis(sweepArg)
		fail(err)
		fmt.Printf("Sweeping %s over %s (%d points)\n", spec.Name, axis, len(values))
		start := time.Now()
		pts, err := scenario.Sweep(spec, axis, values, opt)
		fail(err)
		fmt.Printf("(completed in %v wall time)\n\n", time.Since(start).Round(time.Millisecond))
		rep := scenario.SweepReport{Scenario: spec.Name, Axis: axis, Points: pts}
		fmt.Println(scenario.FormatSweep(rep))
		doc.Sweep = &rep
		for _, p := range pts {
			if !p.Result.AuditOK {
				failed = true
				fmt.Printf("AUDIT FAILED at %s=%g: %s\n", axis, p.Value, p.Result.AuditSummary)
			}
			if p.Result.Telemetry != nil {
				telemetryExports[fmt.Sprintf("%s=%g", axis, p.Value)] = p.Result.Telemetry
			}
		}
	case findSat:
		fmt.Printf("Searching for the saturation rate of %s\n", spec.Name)
		res, err := scenario.FindSaturation(spec, opt, 0)
		fail(err)
		fmt.Println(scenario.FormatSaturation(res))
		doc.Saturation = &res
	default:
		res, err := scenario.Run(spec, opt)
		fail(err)
		fmt.Println(scenario.FormatResult(res))
		doc.Scenario = &res
		if res.Telemetry != nil {
			telemetryExports["scenario"] = res.Telemetry
		}
		if !res.AuditOK {
			failed = true
		}
	}
	if sink != nil {
		fail(sink.Close(0))
		fail(traceFile.Close())
		fmt.Printf("lifecycle trace streamed to %s (peak reorder buffer %d events)\n", traceOut, sink.PeakBuffered())
	}
	if outPath != "" {
		fail(doc.write(outPath))
	}
	if telemetryOut != "" {
		fail(writeTelemetry(telemetryOut, telemetryExports))
	}
	if failed {
		os.Exit(1)
	}
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "gridexp:", err)
		os.Exit(1)
	}
}
