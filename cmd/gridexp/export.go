package main

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"

	"repro/internal/experiment"
	"repro/internal/metrics"
	"repro/internal/scenario"
	"repro/internal/telemetry"
)

// exportDoc is the machine-readable product of a gridexp invocation
// (-out results.json): whichever studies the flags selected, as numbers
// rather than tables, so downstream tooling (scripts/bench.sh, the
// capacity study) consumes JSON instead of scraping text.
type exportDoc struct {
	Seed     uint64 `json:"seed"`
	Requests int    `json:"requests"`

	Experiments []expSummary     `json:"experiments,omitempty"` // Table 2 runs 1–3
	Accuracy    []accuracyRow    `json:"accuracy,omitempty"`    // §5 prediction-noise study
	Resilience  *resilienceRow   `json:"resilience,omitempty"`  // experiment 4
	Migration   *migrationRow    `json:"migration,omitempty"`   // experiment 5
	Reservation []reservationRow `json:"reservation,omitempty"` // experiment 6
	Membership  *membershipRow   `json:"membership,omitempty"`  // experiment 7
	Scale       []scaleRow       `json:"scale,omitempty"`       // §5 scalability study

	Scenario   *scenario.Result           `json:"scenario,omitempty"`
	Sweep      *scenario.SweepReport      `json:"sweep,omitempty"`
	Saturation *scenario.SaturationResult `json:"saturation,omitempty"`
}

// expSummary is one Table 3 column plus the deadline/throughput numbers.
type expSummary struct {
	ID          int     `json:"id"`
	Label       string  `json:"label"`
	Policy      string  `json:"policy"`
	UseAgents   bool    `json:"use_agents"`
	Requests    int     `json:"requests"`
	EpsS        float64 `json:"eps_s"`
	UpsPct      float64 `json:"ups_pct"`
	BetaPct     float64 `json:"beta_pct"`
	HitRate     float64 `json:"hit_rate"`
	ThroughputS float64 `json:"throughput_s"`

	PerResource []resourceRow `json:"per_resource"`

	AuditOK *bool `json:"audit_ok,omitempty"` // present when -audit ran
}

type resourceRow struct {
	Name    string  `json:"name"`
	Tasks   int     `json:"tasks"`
	EpsS    float64 `json:"eps_s"`
	UpsPct  float64 `json:"ups_pct"`
	BetaPct float64 `json:"beta_pct"`
}

type accuracyRow struct {
	Rel     float64 `json:"rel"`
	Bias    float64 `json:"bias"`
	EpsS    float64 `json:"eps_s"`
	UpsPct  float64 `json:"ups_pct"`
	BetaPct float64 `json:"beta_pct"`
	MetRate float64 `json:"met_rate"`
}

type resilienceRow struct {
	Baseline expSummary `json:"baseline"`
	Faulted  expSummary `json:"faulted"`
	Events   int        `json:"fault_events"`
}

// migrationRow is the experiment-5 export: the degraded run with the
// migration policy off against the identical run with it on.
type migrationRow struct {
	Degraded expSummary `json:"degraded"`
	Migrated expSummary `json:"migrated"`
	Offers   int        `json:"migrate_offers"`
	Accepts  int        `json:"migrate_accepts"`
	Rejects  int        `json:"migrate_rejects"`
}

// membershipRow is the experiment-7 export: the churning flash-crowd
// run with the tree held static against the identical run with the
// load-driven rebalancer re-homing subtrees.
type membershipRow struct {
	Static  expSummary `json:"static"`
	Dynamic expSummary `json:"dynamic"`
	Joins   int        `json:"joins"`
	Leaves  int        `json:"leaves"`
	Drained int        `json:"tasks_drained"`
	Moves   int        `json:"rehome_moves"`
}

// reservationRow is one experiment-6 admission-study share: what the
// reserved class got (guarantee hit rate) against what the best-effort
// class paid (its own ε next to the grid total).
type reservationRow struct {
	Share            float64 `json:"share"`
	Requested        int     `json:"resv_requested"`
	Confirmed        int     `json:"resv_confirmed"`
	Rejected         int     `json:"resv_rejected"`
	Expired          int     `json:"resv_expired"`
	Parts            int     `json:"resv_parts"`
	GuaranteeHitRate float64 `json:"guarantee_hit_rate"`
	EpsS             float64 `json:"eps_s"`
	BestEffortEpsS   float64 `json:"be_eps_s"`
	HitRate          float64 `json:"hit_rate"`
	AuditOK          bool    `json:"audit_ok"`
}

func summariseReservation(p experiment.ReservationPoint) reservationRow {
	r := p.Result
	beEps := r.BestEffortEpsilon
	if r.ResvConfirmed == 0 {
		beEps = r.Epsilon
	}
	return reservationRow{
		Share:            p.Share,
		Requested:        r.ResvRequested,
		Confirmed:        r.ResvConfirmed,
		Rejected:         r.ResvRejected,
		Expired:          r.ResvExpired,
		Parts:            r.ResvParts,
		GuaranteeHitRate: r.GuaranteeHitRate,
		EpsS:             r.Epsilon,
		BestEffortEpsS:   beEps,
		HitRate:          r.HitRate,
		AuditOK:          r.AuditOK,
	}
}

type scaleRow struct {
	Agents    int     `json:"agents"`
	Requests  int     `json:"requests"`
	MeanHops  float64 `json:"mean_hops"`
	MaxHops   int     `json:"max_hops"`
	Fallbacks int     `json:"fallbacks"`
	EpsS      float64 `json:"eps_s"`
	UpsPct    float64 `json:"ups_pct"`
	BetaPct   float64 `json:"beta_pct"`
}

func summariseOutcome(o experiment.Outcome) expSummary {
	s := expSummary{
		ID:          o.Setup.ID,
		Label:       o.Setup.Label,
		Policy:      string(o.Setup.Policy),
		UseAgents:   o.Setup.UseAgents,
		Requests:    o.Requests,
		EpsS:        o.Report.Total.Epsilon,
		UpsPct:      o.Report.Total.Upsilon,
		BetaPct:     o.Report.Total.Beta,
		HitRate:     metrics.HitRate(o.Records),
		ThroughputS: metrics.Throughput(o.Records, o.Report.Window),
	}
	for _, r := range o.Report.PerResource {
		s.PerResource = append(s.PerResource, resourceRow{
			Name: r.Name, Tasks: r.Tasks, EpsS: r.Epsilon, UpsPct: r.Upsilon, BetaPct: r.Beta,
		})
	}
	if o.Audit != nil {
		ok := o.Audit.OK()
		s.AuditOK = &ok
	}
	return s
}

func summariseAccuracy(pts []experiment.AccuracyPoint) []accuracyRow {
	out := make([]accuracyRow, len(pts))
	for i, p := range pts {
		out[i] = accuracyRow{
			Rel: p.Rel, Bias: p.Bias,
			EpsS: p.Epsilon, UpsPct: p.Upsilon, BetaPct: p.Beta, MetRate: p.MetRate,
		}
	}
	return out
}

func summariseScale(pts []experiment.ScalePoint) []scaleRow {
	out := make([]scaleRow, len(pts))
	for i, p := range pts {
		out[i] = scaleRow{
			Agents: p.Agents, Requests: p.Requests,
			MeanHops: p.MeanHops, MaxHops: p.MaxHops, Fallbacks: p.Fallbacks,
			EpsS: p.Epsilon, UpsPct: p.Upsilon, BetaPct: p.Beta,
		}
	}
	return out
}

// write renders the document as indented JSON at path (or CSV when the
// document is a sweep and the path ends in .csv).
func (d exportDoc) write(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if d.Sweep != nil && strings.HasSuffix(path, ".csv") {
		err = d.Sweep.WriteCSV(f)
	} else {
		enc := json.NewEncoder(f)
		enc.SetIndent("", " ")
		err = enc.Encode(d)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return err
	}
	fmt.Printf("results written to %s\n", path)
	return nil
}

// writeTelemetry renders the collected telemetry exports — one per
// instrumented run, keyed by experiment or sweep point — as indented
// JSON at path (the -telemetry flag).
func writeTelemetry(path string, exports map[string]*telemetry.Export) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", " ")
	err = enc.Encode(exports)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return err
	}
	fmt.Printf("telemetry written to %s\n", path)
	return nil
}
