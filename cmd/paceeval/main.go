// Command paceeval is the PACE evaluation engine as a CLI (Fig. 1): it
// combines an application model with a hardware model and prints the
// predicted execution time across processor counts. Models come from the
// built-in Table 1 library or from a PSL source file.
//
// Examples:
//
//	paceeval -app sweep3d                      # Table 1 row on the reference platform
//	paceeval -app improc -hw SunUltra5 -n 8    # one prediction
//	paceeval -file mymodel.psl -app mymodel    # user-supplied PSL model
//	paceeval -dump sweep3d                     # print the PSL source
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/pace"
)

func main() {
	var (
		appName = flag.String("app", "", "application model name")
		hwName  = flag.String("hw", "SGIOrigin2000", "factor-based hardware model")
		phwName = flag.String("phw", "", "parametric hardware model (for layered step models)")
		n       = flag.Int("n", 0, "processor count; 0 sweeps 1..max")
		max     = flag.Int("max", 16, "sweep upper bound when -n is 0")
		file    = flag.String("file", "", "PSL source file to load (in addition to built-ins)")
		dump    = flag.String("dump", "", "print a model's PSL source and exit")
	)
	flag.Parse()

	lib := pace.CaseStudyLibrary()
	if *file != "" {
		src, err := os.ReadFile(*file)
		fail(err)
		fail(lib.AddSource(string(src)))
	}

	if *dump != "" {
		m, ok := lib.Lookup(*dump)
		if !ok {
			fail(fmt.Errorf("unknown model %q", *dump))
		}
		fmt.Println(m.String())
		return
	}
	if *appName == "" {
		fmt.Println("available models:")
		for _, m := range lib.Models() {
			fmt.Printf("  %-10s deadline domain [%g, %g]s\n", m.Name, m.DeadlineLo, m.DeadlineHi)
		}
		fmt.Println("\nuse -app <name> to evaluate one")
		return
	}

	m, ok := lib.Lookup(*appName)
	if !ok {
		fail(fmt.Errorf("unknown model %q", *appName))
	}
	engine := pace.NewEngine()

	var hwLabel string
	var predict func(k int) (float64, error)
	if *phwName != "" {
		phw, ok := lib.LookupParametricHardware(*phwName)
		if !ok {
			fail(fmt.Errorf("unknown parametric hardware %q (declare it in a -file)", *phwName))
		}
		hwLabel = phw.Name
		predict = func(k int) (float64, error) { return engine.PredictOn(m, phw, k) }
	} else {
		hw, ok := pace.LookupHardware(*hwName)
		if !ok {
			fail(fmt.Errorf("unknown hardware %q", *hwName))
		}
		hwLabel = hw.Name
		predict = func(k int) (float64, error) { return engine.Predict(m, hw, k) }
	}

	if *n > 0 {
		v, err := predict(*n)
		fail(err)
		fmt.Printf("%s on %d x %s: %.4f s\n", m.Name, *n, hwLabel, v)
		return
	}
	fmt.Printf("%s on %s:\n", m.Name, hwLabel)
	fmt.Printf("%6s %12s %12s\n", "procs", "time (s)", "efficiency")
	var t1 float64
	for k := 1; k <= *max; k++ {
		v, err := predict(k)
		fail(err)
		if k == 1 {
			t1 = v
		}
		eff := t1 / (float64(k) * v) * 100
		fmt.Printf("%6d %12.4f %11.1f%%\n", k, v, eff)
	}
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "paceeval:", err)
		os.Exit(1)
	}
}
