// Command gridsched runs a standalone performance-driven local scheduler
// as a TCP daemon — the Fig. 3 system without the agent layer. It accepts
// Fig. 6 requests directly from users ("a request can be received directly
// from a user when the system functions independently", §2.2) and answers
// service queries with its Fig. 5 advertisement.
//
// Example:
//
//	gridsched -name cluster1 -hw SunUltra10 -nodes 16 -listen 127.0.0.1:7100
//	gridsubmit -to 127.0.0.1:7100 -app sweep3d -deadline 60
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"repro/internal/agent"
	"repro/internal/ga"
	"repro/internal/pace"
	"repro/internal/scheduler"
	"repro/internal/sim"
	"repro/internal/transport"
)

func main() {
	var (
		name   = flag.String("name", "local", "scheduler/resource name")
		hwName = flag.String("hw", "SGIOrigin2000", "hardware model")
		nodes  = flag.Int("nodes", 16, "processing nodes")
		listen = flag.String("listen", "127.0.0.1:7100", "listen address")
		policy = flag.String("policy", "ga", "scheduling policy: ga or fifo")
		seed   = flag.Uint64("seed", 1, "GA random seed")
		execs  multiFlag
	)
	flag.Var(&execs, "exec", "run a real command when a task starts: app=binary args... ({task},{nproc},{app} expand); repeatable")
	flag.Parse()

	hw, ok := pace.LookupHardware(*hwName)
	if !ok {
		fail(fmt.Errorf("unknown hardware %q", *hwName))
	}
	engine := pace.NewEngine()
	var pol scheduler.Policy
	switch *policy {
	case "ga":
		pol = scheduler.NewGAPolicy(ga.DefaultConfig(), sim.NewRNG(*seed))
	case "fifo":
		pol = scheduler.NewFIFOPolicy()
	default:
		fail(fmt.Errorf("unknown policy %q", *policy))
	}
	cfg := scheduler.Config{
		Name: *name, HW: hw, NumNodes: *nodes, Policy: pol, Engine: engine,
		Environments: []string{"test", "mpi", "pvm"},
	}
	if len(execs) > 0 {
		ce := scheduler.NewCommandExecutor()
		for _, spec := range execs {
			fail(ce.ParseMapping(spec))
		}
		cfg.Executor = ce
		fmt.Printf("gridsched: real execution enabled for %d applications\n", len(execs))
	}
	local, err := scheduler.NewLocal(cfg)
	fail(err)

	// A scheduler daemon is an agent with no neighbours: requests are
	// always evaluated against the local resource, falling back to a
	// local queue position when the deadline cannot be met.
	a, err := agent.New(local, engine)
	fail(err)
	node, err := transport.NewNode(a, pace.CaseStudyLibrary())
	fail(err)
	node.SetClockOrigin(transport.MidnightOrigin())
	fail(node.Start(*listen))
	fmt.Printf("gridsched %s (%s x%d, %s) listening on %s\n", *name, hw.Name, *nodes, pol.Name(), node.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("gridsched: shutting down")
	fail(node.Close())
}

// multiFlag collects repeatable string flags.
type multiFlag []string

func (m *multiFlag) String() string { return strings.Join(*m, ",") }
func (m *multiFlag) Set(v string) error {
	*m = append(*m, v)
	return nil
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "gridsched:", err)
		os.Exit(1)
	}
}
