// Command gridfarm hosts a whole agent hierarchy as live TCP daemons in
// one process — by default the twelve-agent Fig. 7 case-study grid — so
// the networked system can be driven with gridsubmit without starting
// twelve processes by hand.
//
//	gridfarm -base 7100 &
//	gridsubmit -to 127.0.0.1:7111 -app sweep3d -deadline 10   # arrives at S12
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"repro/internal/experiment"
	"repro/internal/transport"
)

func main() {
	var (
		base   = flag.Int("base", 7100, "first TCP port; agents take consecutive ports")
		host   = flag.String("host", "127.0.0.1", "bind host")
		policy = flag.String("policy", "ga", "local scheduling policy: ga or fifo")
		seed   = flag.Uint64("seed", 1, "GA random seed")
		pull   = flag.Float64("pull", 10, "advertisement pull period in seconds")
		push   = flag.Bool("push", false, "event-triggered advertisement pushes")
	)
	flag.Parse()

	farm, err := transport.StartFarm(transport.FarmConfig{
		Specs:      experiment.CaseStudyResources(),
		Host:       *host,
		BasePort:   *base,
		Policy:     *policy,
		Seed:       *seed,
		PullPeriod: *pull,
		Push:       *push,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "gridfarm:", err)
		os.Exit(1)
	}
	fmt.Printf("gridfarm: %d agents up (%s policy)\n", len(farm.Names()), *policy)
	fmt.Print(farm.Describe())
	fmt.Println("submit with: gridsubmit -to <addr> -app sweep3d -deadline 60")

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("gridfarm: shutting down")
	if err := farm.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "gridfarm:", err)
		os.Exit(1)
	}
}
