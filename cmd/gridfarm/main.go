// Command gridfarm hosts a whole agent hierarchy as live TCP daemons in
// one process — by default the twelve-agent Fig. 7 case-study grid — so
// the networked system can be driven with gridsubmit without starting
// twelve processes by hand.
//
//	gridfarm -base 7100 &
//	gridsubmit -to 127.0.0.1:7111 -app sweep3d -deadline 10   # arrives at S12
//	curl http://127.0.0.1:7190/metrics                        # live telemetry
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"repro/internal/experiment"
	"repro/internal/telemetry"
	"repro/internal/transport"
)

func main() {
	var (
		base    = flag.Int("base", 7100, "first TCP port; agents take consecutive ports")
		host    = flag.String("host", "127.0.0.1", "bind host")
		policy  = flag.String("policy", "ga", "local scheduling policy: ga or fifo")
		seed    = flag.Uint64("seed", 1, "GA random seed")
		pull    = flag.Float64("pull", 10, "advertisement pull period in seconds")
		push    = flag.Bool("push", false, "event-triggered advertisement pushes")
		metrics = flag.String("metrics", "127.0.0.1:7190", "serve GET /metrics (Prometheus text, ?format=json) and /healthz on this address; empty disables telemetry")

		poolSize  = flag.Int("pool-size", transport.DefaultPoolSize, "keep-alive connections per peer")
		window    = flag.Int("window", transport.DefaultWindow, "max in-flight exchanges per peer")
		shed      = flag.Bool("shed", false, "fail over-window exchanges immediately instead of blocking")
		binary    = flag.Bool("binary", false, "negotiate the compact binary codec between farm nodes (XML stays the wire default)")
		admission = flag.Int("admission", 0, "per-node admission gate: max executing requests before shedding with a busy reply; 0 disables")
		nopool    = flag.Bool("no-pool", false, "legacy dial-per-exchange transport (comparison mode)")
	)
	flag.Parse()

	var reg *telemetry.Registry
	if *metrics != "" {
		reg = telemetry.NewRegistry()
	}
	farm, err := transport.StartFarm(transport.FarmConfig{
		Specs:      experiment.CaseStudyResources(),
		Host:       *host,
		BasePort:   *base,
		Policy:     *policy,
		Seed:       *seed,
		PullPeriod: *pull,
		Push:       *push,
		Telemetry:  reg,
		Pool:       transport.PoolConfig{Size: *poolSize, Window: *window, Shed: *shed, Binary: *binary},
		NoPool:     *nopool,
		Server:     transport.ServerConfig{MaxInflight: *admission, AllowBinary: *binary},
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "gridfarm:", err)
		os.Exit(1)
	}
	var msrv *telemetry.Server
	if reg != nil {
		msrv, err = telemetry.StartServer(*metrics, reg, farm.Healthz)
		if err != nil {
			_ = farm.Close()
			fmt.Fprintln(os.Stderr, "gridfarm:", err)
			os.Exit(1)
		}
	}
	fmt.Printf("gridfarm: %d agents up (%s policy)\n", len(farm.Names()), *policy)
	fmt.Print(farm.Describe())
	if msrv != nil {
		fmt.Printf("telemetry: http://%s/metrics and /healthz\n", msrv.Addr())
	}
	fmt.Println("submit with: gridsubmit -to <addr> -app sweep3d -deadline 60")
	fmt.Println("grow the tree with: gridagent -name S13 -listen 127.0.0.1:7113 -upper <name>=<addr> -join")

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("gridfarm: shutting down")
	if msrv != nil {
		_ = msrv.Close()
	}
	if err := farm.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "gridfarm:", err)
		os.Exit(1)
	}
}
