// Command gridsubmit is the user portal (§3.2): it builds Fig. 6 task
// execution requests, submits them to a gridagent/gridsched/gridfarm
// daemon, and fetches execution results.
//
// Examples:
//
//	gridsubmit -to 127.0.0.1:7001 -app sweep3d -deadline 60
//	gridsubmit -dry-run -app improc -deadline 120      # print the XML only
//	gridsubmit -to 127.0.0.1:7001 -count 50 -seed 7    # §4.1-style batch replay
//	gridsubmit -to 127.0.0.1:7001 -query               # Fig. 5 service info
//	gridsubmit -to 127.0.0.1:7001 -results -email u@g  # poll task results
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"repro/internal/pace"
	"repro/internal/sim"
	"repro/internal/transport"
	"repro/internal/xmlmsg"
)

func main() {
	var (
		to       = flag.String("to", "127.0.0.1:7001", "agent or scheduler address")
		app      = flag.String("app", "sweep3d", "application model name")
		env      = flag.String("env", "test", "execution environment (test, mpi, pvm)")
		deadline = flag.Float64("deadline", 60, "deadline in seconds from now")
		email    = flag.String("email", "user@example.org", "contact email for results")
		binary   = flag.String("binary", "", "binary path recorded in the request")
		dryRun   = flag.Bool("dry-run", false, "print the request XML and exit without sending")
		listApps = flag.Bool("list-apps", false, "list application models and exit")
		query    = flag.Bool("query", false, "query the target's Fig. 5 service information and exit")
		results  = flag.Bool("results", false, "fetch task execution results from the target and exit")
		count    = flag.Int("count", 1, "submit a batch: random apps/deadlines drawn from the Table 1 domains")
		interval = flag.Duration("interval", time.Second, "batch pacing between submissions")
		seed     = flag.Uint64("seed", 1, "batch randomness seed")

		pool       = flag.Bool("pool", true, "ride pooled multiplexed connections; false dials per exchange (legacy)")
		wireBinary = flag.Bool("wire-binary", false, "offer the compact binary wire codec (the server must allow it; XML stays the default and the request document is unchanged)")
	)
	flag.Parse()

	client := transport.NewClient()
	if *pool {
		client = transport.NewPooledClient(transport.PoolConfig{Binary: *wireBinary})
	}

	lib := pace.CaseStudyLibrary()
	if *listApps {
		for _, m := range lib.Models() {
			fmt.Printf("%-10s deadline domain [%g, %g]s\n", m.Name, m.DeadlineLo, m.DeadlineHi)
		}
		return
	}
	if *query {
		reply, kind, err := client.Call(*to, xmlmsg.NewServiceQuery())
		fail(err)
		if kind != xmlmsg.KindService {
			fail(fmt.Errorf("unexpected reply kind %q", kind))
		}
		si := reply.(*xmlmsg.ServiceInfo)
		ft, err := si.FreetimeSeconds()
		fail(err)
		fmt.Printf("%s: %s x%d, environments %v, free at virtual t=%.0fs\n",
			*to, si.Local.HWType, si.Local.NProc, si.Local.Environments, ft)
		return
	}
	if *results {
		reply, kind, err := client.Call(*to, xmlmsg.NewResultsQuery(*email))
		fail(err)
		if kind != xmlmsg.KindResults {
			fail(fmt.Errorf("unexpected reply kind %q", kind))
		}
		rs := reply.(*xmlmsg.ResultSet)
		if len(rs.Tasks) == 0 {
			fmt.Println("no results")
			return
		}
		for _, tr := range rs.Tasks {
			state := "running"
			if tr.Done {
				if tr.Met {
					state = "done, met deadline"
				} else {
					state = "done, MISSED deadline"
				}
			}
			fmt.Printf("task %-4d %-8s x%-2d on %-6s %s\n", tr.TaskID, tr.App, tr.NProc, tr.Resource, state)
		}
		return
	}
	if _, ok := lib.Lookup(*app); !ok {
		fail(fmt.Errorf("unknown application %q (try -list-apps)", *app))
	}
	if *count > 1 {
		submitBatch(client, lib, *to, *env, *email, *count, *interval, *seed)
		return
	}

	// Daemons measure virtual time as seconds since their start; a
	// portal cannot know that origin, so it sends a generous absolute
	// deadline: now-equivalent plus the requested relative deadline.
	// For the dry run the epoch itself is used, matching Fig. 6.
	deadlineSec := *deadline
	if !*dryRun {
		deadlineSec += time.Since(transport.MidnightOrigin()).Seconds()
	}

	req := xmlmsg.NewRequest(*app, *binary, *app, *env, deadlineSec, *email)
	if !*dryRun {
		// The portal is where requests enter the grid, so it mints the
		// grid-wide request ID (the dry run stays byte-compatible with
		// Fig. 6, which carries no ID).
		req.ReqID = uint64(time.Now().UnixNano())
	}
	data, err := xmlmsg.Marshal(req)
	fail(err)
	if *dryRun {
		fmt.Print(string(data))
		return
	}

	reply, kind, err := client.Call(*to, req)
	fail(err)
	if kind != xmlmsg.KindDispatch {
		fail(fmt.Errorf("unexpected reply kind %q", kind))
	}
	ack := reply.(*xmlmsg.DispatchAck)
	fmt.Printf("dispatched to %s (task %d", ack.Resource, ack.TaskID)
	if ack.Fallback {
		fmt.Printf(", best-effort: no resource met the deadline")
	}
	fmt.Println(")")
}

// submitBatch replays a §4.1-style workload against a live daemon:
// random applications with deadlines drawn from their Table 1 domains,
// paced at the given interval, reporting where everything landed.
func submitBatch(client *transport.Client, lib *pace.Library, to, env, email string, count int, interval time.Duration, seed uint64) {
	rng := sim.NewRNG(seed)
	models := lib.Models()
	byResource := map[string]int{}
	fallbacks := 0
	for i := 0; i < count; i++ {
		m := models[rng.Intn(len(models))]
		rel := rng.UniformIn(m.DeadlineLo, m.DeadlineHi)
		deadlineSec := time.Since(transport.MidnightOrigin()).Seconds() + rel
		req := xmlmsg.NewRequest(m.Name, "", m.Name, env, deadlineSec, email)
		req.ReqID = uint64(time.Now().UnixNano())
		reply, kind, err := client.Call(to, req)
		fail(err)
		if kind != xmlmsg.KindDispatch {
			fail(fmt.Errorf("unexpected reply kind %q", kind))
		}
		ack := reply.(*xmlmsg.DispatchAck)
		byResource[ack.Resource]++
		if ack.Fallback {
			fallbacks++
		}
		fmt.Printf("[%3d/%d] %-8s deadline +%3.0fs -> %s\n", i+1, count, m.Name, rel, ack.Resource)
		if i < count-1 {
			time.Sleep(interval)
		}
	}
	fmt.Printf("\nbatch complete: %d requests, %d best-effort fallbacks\n", count, fallbacks)
	names := make([]string, 0, len(byResource))
	for n := range byResource {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Printf("  %-6s %d\n", n, byResource[n])
	}
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "gridsubmit:", err)
		os.Exit(1)
	}
}
