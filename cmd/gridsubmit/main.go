// Command gridsubmit is the user portal (§3.2): it builds Fig. 6 task
// execution requests, submits them to a gridagent/gridsched/gridfarm
// daemon, and fetches execution results.
//
// Examples:
//
//	gridsubmit -to 127.0.0.1:7001 -app sweep3d -deadline 60
//	gridsubmit -dry-run -app improc -deadline 120      # print the XML only
//	gridsubmit -to 127.0.0.1:7001 -count 50 -seed 7    # §4.1-style batch replay
//	gridsubmit -to 127.0.0.1:7001 -query               # Fig. 5 service info
//	gridsubmit -to 127.0.0.1:7001 -results -email u@g  # poll task results
//	gridsubmit -to 127.0.0.1:7001 -reserve 300,120,2   # book 2 nodes for 120s, 300s out
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"repro/internal/pace"
	"repro/internal/sim"
	"repro/internal/transport"
	"repro/internal/xmlmsg"
)

func main() {
	var (
		to       = flag.String("to", "127.0.0.1:7001", "agent or scheduler address")
		app      = flag.String("app", "sweep3d", "application model name")
		env      = flag.String("env", "test", "execution environment (test, mpi, pvm)")
		deadline = flag.Float64("deadline", 60, "deadline in seconds from now")
		email    = flag.String("email", "user@example.org", "contact email for results")
		binary   = flag.String("binary", "", "binary path recorded in the request")
		dryRun   = flag.Bool("dry-run", false, "print the request XML and exit without sending")
		listApps = flag.Bool("list-apps", false, "list application models and exit")
		query    = flag.Bool("query", false, "query the target's Fig. 5 service information and exit")
		results  = flag.Bool("results", false, "fetch task execution results from the target and exit")
		reserve  = flag.String("reserve", "", "advance reservation start,duration,nodes (seconds,seconds,count): shop the grid for quotes, hold the earliest window and confirm it into a guaranteed-start task")
		count    = flag.Int("count", 1, "submit a batch: random apps/deadlines drawn from the Table 1 domains")
		interval = flag.Duration("interval", time.Second, "batch pacing between submissions")
		seed     = flag.Uint64("seed", 1, "batch randomness seed")

		pool       = flag.Bool("pool", true, "ride pooled multiplexed connections; false dials per exchange (legacy)")
		wireBinary = flag.Bool("wire-binary", false, "offer the compact binary wire codec (the server must allow it; XML stays the default and the request document is unchanged)")
	)
	flag.Parse()

	client := transport.NewClient()
	if *pool {
		client = transport.NewPooledClient(transport.PoolConfig{Binary: *wireBinary})
	}

	lib := pace.CaseStudyLibrary()
	if *listApps {
		for _, m := range lib.Models() {
			fmt.Printf("%-10s deadline domain [%g, %g]s\n", m.Name, m.DeadlineLo, m.DeadlineHi)
		}
		return
	}
	if *query {
		reply, kind, err := client.Call(*to, xmlmsg.NewServiceQuery())
		fail(err)
		if kind != xmlmsg.KindService {
			fail(fmt.Errorf("unexpected reply kind %q", kind))
		}
		si := reply.(*xmlmsg.ServiceInfo)
		ft, err := si.FreetimeSeconds()
		fail(err)
		fmt.Printf("%s: %s x%d, environments %v, free at virtual t=%.0fs\n",
			*to, si.Local.HWType, si.Local.NProc, si.Local.Environments, ft)
		return
	}
	if *results {
		reply, kind, err := client.Call(*to, xmlmsg.NewResultsQuery(*email))
		fail(err)
		if kind != xmlmsg.KindResults {
			fail(fmt.Errorf("unexpected reply kind %q", kind))
		}
		rs := reply.(*xmlmsg.ResultSet)
		if len(rs.Tasks) == 0 {
			fmt.Println("no results")
			return
		}
		for _, tr := range rs.Tasks {
			state := "running"
			if tr.Done {
				if tr.Met {
					state = "done, met deadline"
				} else {
					state = "done, MISSED deadline"
				}
			}
			fmt.Printf("task %-4d %-8s x%-2d on %-6s %s\n", tr.TaskID, tr.App, tr.NProc, tr.Resource, state)
		}
		return
	}
	if _, ok := lib.Lookup(*app); !ok {
		fail(fmt.Errorf("unknown application %q (try -list-apps)", *app))
	}
	if *reserve != "" {
		submitReservation(client, *to, *app, *email, *reserve)
		return
	}
	if *count > 1 {
		submitBatch(client, lib, *to, *env, *email, *count, *interval, *seed)
		return
	}

	// Daemons measure virtual time as seconds since their start; a
	// portal cannot know that origin, so it sends a generous absolute
	// deadline: now-equivalent plus the requested relative deadline.
	// For the dry run the epoch itself is used, matching Fig. 6.
	deadlineSec := *deadline
	if !*dryRun {
		deadlineSec += time.Since(transport.MidnightOrigin()).Seconds()
	}

	req := xmlmsg.NewRequest(*app, *binary, *app, *env, deadlineSec, *email)
	if !*dryRun {
		// The portal is where requests enter the grid, so it mints the
		// grid-wide request ID (the dry run stays byte-compatible with
		// Fig. 6, which carries no ID).
		req.ReqID = uint64(time.Now().UnixNano())
	}
	data, err := xmlmsg.Marshal(req)
	fail(err)
	if *dryRun {
		fmt.Print(string(data))
		return
	}

	reply, kind, err := client.Call(*to, req)
	fail(err)
	if kind != xmlmsg.KindDispatch {
		fail(fmt.Errorf("unexpected reply kind %q", kind))
	}
	ack := reply.(*xmlmsg.DispatchAck)
	fmt.Printf("dispatched to %s (task %d", ack.Resource, ack.TaskID)
	if ack.Fallback {
		fmt.Printf(", best-effort: no resource met the deadline")
	}
	fmt.Println(")")
}

// submitReservation runs the two-phase reservation protocol against a
// live daemon: flood-quote the hierarchy for a window of the requested
// shape, print every offer, hold the earliest one and confirm it into a
// guaranteed-start task. A confirm failure releases the hold so nothing
// stays booked.
func submitReservation(client *transport.Client, to, app, email, spec string) {
	var startRel, duration float64
	var nodes int
	if _, err := fmt.Sscanf(spec, "%g,%g,%d", &startRel, &duration, &nodes); err != nil {
		fail(fmt.Errorf("bad -reserve %q, want start,duration,nodes (e.g. 300,120,2): %v", spec, err))
	}
	if startRel < 0 || duration <= 0 || nodes < 1 {
		fail(fmt.Errorf("bad -reserve %q: start must be >= 0, duration and nodes positive", spec))
	}
	// The daemon measures virtual time as seconds since its start; the
	// portal anchors the window the same way submissions anchor deadlines.
	now := time.Since(transport.MidnightOrigin()).Seconds()
	earliest := now + startRel

	quote := xmlmsg.Reserve{
		Type: "reserve", Action: xmlmsg.ReserveActionQuote,
		Nodes: nodes, Earliest: xmlmsg.FormatSeconds(earliest), Duration: xmlmsg.FormatSeconds(duration),
	}
	reply, kind, err := client.Call(to, quote)
	fail(err)
	if kind != xmlmsg.KindReserveAck {
		fail(fmt.Errorf("unexpected reply kind %q to a reserve quote", kind))
	}
	ack := reply.(*xmlmsg.ReserveAck)
	if len(ack.Quotes) == 0 {
		fail(fmt.Errorf("no resource quoted %d nodes for %gs starting +%gs", nodes, duration, startRel))
	}
	fmt.Printf("quotes for %d nodes, %gs window, earliest +%gs:\n", nodes, duration, startRel)
	for _, q := range ack.Quotes {
		s, err := xmlmsg.ParseSeconds(q.Start)
		fail(err)
		fmt.Printf("  %-8s mask %-4s start +%.0fs\n", q.Resource, q.Mask, s-now)
	}

	// The daemons answer quotes sorted by start, then resource: the first
	// offer is the earliest window the grid can guarantee.
	best := ack.Quotes[0]
	resvID := uint64(time.Now().UnixNano())
	hold := xmlmsg.Reserve{
		Type: "reserve", Action: xmlmsg.ReserveActionHold,
		ResvID: resvID, Resource: best.Resource, Holder: email,
		Mask: best.Mask, Start: best.Start, End: best.End,
		TTL: xmlmsg.FormatSeconds(120),
	}
	_, _, err = client.Call(to, hold)
	fail(err)

	confirm := xmlmsg.Reserve{
		Type: "reserve", Action: xmlmsg.ReserveActionConfirm,
		ResvID: resvID, Resource: best.Resource, ReqID: uint64(time.Now().UnixNano()), Model: app,
	}
	creply, _, err := client.Call(to, confirm)
	if err != nil {
		// Never leave the window blocked behind a failed confirm.
		release := xmlmsg.Reserve{
			Type: "reserve", Action: xmlmsg.ReserveActionRelease,
			ResvID: resvID, Resource: best.Resource,
		}
		if _, _, rerr := client.Call(to, release); rerr != nil {
			fmt.Fprintf(os.Stderr, "gridsubmit: release after failed confirm: %v\n", rerr)
		}
		fail(fmt.Errorf("confirm on %s: %v (hold released)", best.Resource, err))
	}
	cack, ok := creply.(*xmlmsg.ReserveAck)
	if !ok {
		fail(fmt.Errorf("unexpected reply %T to a reserve confirm", creply))
	}
	start, err := xmlmsg.ParseSeconds(best.Start)
	fail(err)
	end, err := xmlmsg.ParseSeconds(best.End)
	fail(err)
	fmt.Printf("confirmed resv %d on %s: %s task %d guaranteed [%.0f,%.0f) (starts in %.0fs)\n",
		resvID, best.Resource, app, cack.TaskID, start, end, start-now)
}

// submitBatch replays a §4.1-style workload against a live daemon:
// random applications with deadlines drawn from their Table 1 domains,
// paced at the given interval, reporting where everything landed.
func submitBatch(client *transport.Client, lib *pace.Library, to, env, email string, count int, interval time.Duration, seed uint64) {
	rng := sim.NewRNG(seed)
	models := lib.Models()
	byResource := map[string]int{}
	fallbacks := 0
	for i := 0; i < count; i++ {
		m := models[rng.Intn(len(models))]
		rel := rng.UniformIn(m.DeadlineLo, m.DeadlineHi)
		deadlineSec := time.Since(transport.MidnightOrigin()).Seconds() + rel
		req := xmlmsg.NewRequest(m.Name, "", m.Name, env, deadlineSec, email)
		req.ReqID = uint64(time.Now().UnixNano())
		reply, kind, err := client.Call(to, req)
		fail(err)
		if kind != xmlmsg.KindDispatch {
			fail(fmt.Errorf("unexpected reply kind %q", kind))
		}
		ack := reply.(*xmlmsg.DispatchAck)
		byResource[ack.Resource]++
		if ack.Fallback {
			fallbacks++
		}
		fmt.Printf("[%3d/%d] %-8s deadline +%3.0fs -> %s\n", i+1, count, m.Name, rel, ack.Resource)
		if i < count-1 {
			time.Sleep(interval)
		}
	}
	fmt.Printf("\nbatch complete: %d requests, %d best-effort fallbacks\n", count, fallbacks)
	names := make([]string, 0, len(byResource))
	for n := range byResource {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Printf("  %-6s %d\n", n, byResource[n])
	}
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "gridsubmit:", err)
		os.Exit(1)
	}
}
