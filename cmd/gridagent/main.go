// Command gridagent runs one agent of the grid hierarchy as a TCP daemon,
// fronting a performance-driven local scheduler for one resource (§3.2).
// Agents exchange Fig. 5 service advertisements and Fig. 6 requests over
// the XML wire protocol; a hierarchy is assembled by starting one daemon
// per resource and pointing children at their parent.
//
// Example — a two-agent hierarchy:
//
//	gridagent -name fast -hw SGIOrigin2000 -nodes 16 -listen 127.0.0.1:7001 \
//	          -lowers slow=127.0.0.1:7002 &
//	gridagent -name slow -hw SunSPARCstation2 -nodes 16 -listen 127.0.0.1:7002 \
//	          -upper fast=127.0.0.1:7001 &
//
// Submit work with gridsubmit; pulls tolerate a neighbour that has not
// started yet, so startup order does not matter.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"repro/internal/agent"
	"repro/internal/ga"
	"repro/internal/pace"
	"repro/internal/scheduler"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/transport"
)

func main() {
	var (
		name    = flag.String("name", "S1", "agent/resource name")
		hwName  = flag.String("hw", "SGIOrigin2000", "hardware model (see -list-hw)")
		nodes   = flag.Int("nodes", 16, "processing nodes in the local resource")
		listen  = flag.String("listen", "127.0.0.1:7001", "listen address")
		upper   = flag.String("upper", "", "upper agent as name=host:port")
		join    = flag.Bool("join", false, "register with -upper over the wire after startup (dynamic membership) and deregister gracefully on shutdown")
		lowers  = flag.String("lowers", "", "comma-separated lower agents as name=host:port")
		policy  = flag.String("policy", "ga", "local scheduling policy: ga or fifo")
		seed    = flag.Uint64("seed", 1, "GA random seed")
		pull    = flag.Float64("pull", agent.DefaultPullPeriod, "advertisement pull period in seconds")
		push    = flag.Bool("push", false, "also push advertisements to neighbours on freetime changes (§3.1)")
		metrics = flag.String("metrics", "", "serve GET /metrics (Prometheus text, ?format=json) and /healthz on this address; empty (the default) disables telemetry")
		listHW  = flag.Bool("list-hw", false, "list hardware models and exit")
		service = flag.Bool("print-service", false, "print this agent's Fig. 5 service information and exit")

		admission = flag.Int("admission", 0, "admission gate: max executing requests before shedding with a busy reply; 0 disables")
		binary    = flag.Bool("binary", false, "allow peers to negotiate the compact binary codec (XML stays the wire default)")
	)
	flag.Parse()

	if *listHW {
		for _, n := range pace.HardwareNames() {
			hw, _ := pace.LookupHardware(n)
			fmt.Printf("%-20s factor %g\n", hw.Name, hw.Factor)
		}
		return
	}

	hw, ok := pace.LookupHardware(*hwName)
	if !ok {
		fail(fmt.Errorf("unknown hardware %q (try -list-hw)", *hwName))
	}
	engine := pace.NewEngine()
	var pol scheduler.Policy
	switch *policy {
	case "ga":
		pol = scheduler.NewGAPolicy(ga.DefaultConfig(), sim.NewRNG(*seed))
	case "fifo":
		pol = scheduler.NewFIFOPolicy()
	default:
		fail(fmt.Errorf("unknown policy %q", *policy))
	}
	local, err := scheduler.NewLocal(scheduler.Config{
		Name: *name, HW: hw, NumNodes: *nodes, Policy: pol, Engine: engine,
		Environments: []string{"test", "mpi", "pvm"},
	})
	fail(err)
	a, err := agent.New(local, engine)
	fail(err)
	a.PullPeriod = *pull

	lib := pace.CaseStudyLibrary()

	if *service {
		si := local.ServiceInfo()
		fmt.Printf("agent %s: %s x%d, environments %v, freetime %.0fs\n",
			si.Name, si.HWType, si.NProc, si.Environments, si.Freetime)
		return
	}

	node, err := transport.NewNode(a, lib)
	fail(err)
	node.SetPushEnabled(*push)
	node.SetServerConfig(transport.ServerConfig{MaxInflight: *admission, AllowBinary: *binary})

	var upperName, upperAddr string
	if *upper != "" {
		p, err := parsePeer(*upper, lib)
		fail(err)
		upperName, upperAddr = p.Name, p.Addr
		if !*join {
			fail(node.Agent().SetUpper(p))
		}
	} else if *join {
		fail(fmt.Errorf("-join needs an -upper to register with"))
	}
	for _, spec := range splitList(*lowers) {
		p, err := parsePeer(spec, lib)
		fail(err)
		fail(node.Agent().AddLower(p))
	}

	node.SetClockOrigin(transport.MidnightOrigin())
	var msrv *telemetry.Server
	if *metrics != "" {
		reg := telemetry.NewRegistry()
		node.SetTelemetry(reg)
		msrv, err = telemetry.StartServer(*metrics, reg, func() error {
			if node.Addr() == "" {
				return fmt.Errorf("agent %s not listening", *name)
			}
			return nil
		})
		fail(err)
	}
	fail(node.Start(*listen))
	fmt.Printf("gridagent %s (%s x%d, %s) listening on %s\n", *name, hw.Name, *nodes, pol.Name(), node.Addr())
	if *join {
		// Dynamic membership: register with the live upper so it links us
		// as a lower neighbour and starts pulling our advertisements.
		fail(node.JoinUpper(upperName, upperAddr))
		fmt.Printf("  joined upper agent: %s\n", *upper)
	} else if *upper != "" {
		fmt.Printf("  upper agent: %s\n", *upper)
	}
	if msrv != nil {
		fmt.Printf("  telemetry: http://%s/metrics\n", msrv.Addr())
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("gridagent: shutting down")
	if *join {
		// Graceful leave: the upper forgets our advertisement immediately
		// instead of waiting out the TTL, so no new work routes here.
		if err := node.LeaveUpper(); err != nil {
			fmt.Fprintln(os.Stderr, "gridagent: leave:", err)
		}
	}
	if msrv != nil {
		_ = msrv.Close()
	}
	fail(node.Close())
}

func parsePeer(spec string, lib *pace.Library) (*transport.RemotePeer, error) {
	name, addr, ok := strings.Cut(spec, "=")
	if !ok || name == "" || addr == "" {
		return nil, fmt.Errorf("bad peer spec %q, want name=host:port", spec)
	}
	return &transport.RemotePeer{Name: name, Addr: addr, Lib: lib}, nil
}

func splitList(s string) []string {
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	out := parts[:0]
	for _, p := range parts {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "gridagent:", err)
		os.Exit(1)
	}
}
