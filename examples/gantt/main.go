// Gantt: the Fig. 2 walkthrough. Builds the paper's example solution
// string — ordering 3 5 2 1 6 4 with a node map per task — times it on a
// five-processor resource, renders the Gantt chart, and then lets the GA
// improve a batch of real application models against a FIFO plan of the
// same queue, printing both charts and their cost breakdowns.
//
//	go run ./examples/gantt
package main

import (
	"fmt"
	"log"

	"repro/internal/ga"
	"repro/internal/pace"
	"repro/internal/schedule"
	"repro/internal/sim"
)

func main() {
	fig2()
	fmt.Println()
	gaVersusFIFO()
}

// fig2 reproduces the figure's solution string and schedule shape.
func fig2() {
	fmt.Println("=== Fig. 2: a solution string and its schedule ===")
	parse := func(s string) uint64 {
		var m uint64
		for i, c := range s {
			if c == '1' {
				m |= 1 << uint(i)
			}
		}
		return m
	}
	sol := schedule.Solution{
		// Task ordering 3 5 2 1 6 4 (base-1 in the figure).
		Order: []int{2, 4, 1, 0, 5, 3},
		Maps: []uint64{
			parse("01000"), // task #1 -> P2
			parse("11110"), // task #2 -> P1..P4
			parse("11010"), // task #3 -> P1,P2,P4
			parse("01001"), // task #4 -> P2,P5
			parse("01010"), // task #5 -> P2,P4
			parse("10111"), // task #6 -> P1,P3,P4,P5
		},
	}
	tasks := make([]schedule.Task, 6)
	for i := range tasks {
		tasks[i] = schedule.Task{ID: i + 1, Deadline: 1e9}
	}
	// Uniform ten-second tasks keep the chart legible.
	pred := func(*pace.AppModel, int) float64 { return 10 }
	s := schedule.Build(sol, tasks, schedule.NewResource(5), 0, pred)
	fmt.Println(sol)
	fmt.Println(schedule.Gantt(s, 64))
}

// gaVersusFIFO schedules the same queue of Table 1 applications with an
// arrival-order greedy plan and with the GA, showing the packing
// difference the paper's experiment 2 measures.
func gaVersusFIFO() {
	fmt.Println("=== GA vs greedy on one 16-node SunUltra5 resource ===")
	lib := pace.CaseStudyLibrary()
	engine := pace.NewEngine()
	hw := pace.SunUltra5
	pred := func(app *pace.AppModel, k int) float64 { return engine.MustPredict(app, hw, k) }

	var tasks []schedule.Task
	for i, name := range []string{"sweep3d", "improc", "fft", "jacobi", "memsort", "cpi", "closure", "improc"} {
		m, ok := lib.Lookup(name)
		if !ok {
			log.Fatalf("no model %s", name)
		}
		tasks = append(tasks, schedule.Task{ID: i + 1, App: m, Deadline: 150})
	}
	res := schedule.NewResource(16)
	p := schedule.NewProblem(tasks, res, 0, pred)

	greedy := p.GreedySeed()
	gs := schedule.Build(greedy, tasks, res, 0, pred)
	gc := schedule.Cost(gs, tasks, p.Weights, true)
	fmt.Printf("\narrival-order greedy: makespan %.0fs, weighted idle %.0fs, contract penalty %.0fs\n",
		gc.Makespan, gc.Idle, gc.ContractPen)
	fmt.Println(schedule.Gantt(gs, 72))

	cfg := ga.DefaultConfig()
	cfg.MaxGenerations = 120
	result := ga.Run[schedule.Solution](p, cfg, sim.NewRNG(7), []schedule.Solution{greedy})
	bs := schedule.Build(result.Best, tasks, res, 0, pred)
	bc := schedule.Cost(bs, tasks, p.Weights, true)
	fmt.Printf("\nGA after %d generations (%d cost evaluations): makespan %.0fs, weighted idle %.0fs, contract penalty %.0fs\n",
		result.Generations, result.CostEvals, bc.Makespan, bc.Idle, bc.ContractPen)
	fmt.Println(schedule.Gantt(bs, 72))

	if bc.Combined <= gc.Combined {
		fmt.Printf("\nGA improved the combined cost: %.1f -> %.1f\n", gc.Combined, bc.Combined)
	} else {
		fmt.Printf("\nGA did not beat greedy on this instance (%.1f vs %.1f)\n", bc.Combined, gc.Combined)
	}
}
