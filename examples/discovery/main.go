// Discovery: a walkthrough of agent-based service discovery (§3.1).
// Builds a three-level hierarchy, loads the middle of it, and traces
// where requests with different deadlines end up — local acceptance,
// neighbour forwarding, escalation to the upper agent, and the head's
// best-effort fallback.
//
//	go run ./examples/discovery
package main

import (
	"fmt"
	"log"

	"repro/internal/agent"
	"repro/internal/ga"
	"repro/internal/pace"
	"repro/internal/scheduler"
	"repro/internal/sim"
)

func mustLocal(name string, hw pace.Hardware, engine *pace.Engine, rng *sim.RNG) *scheduler.Local {
	l, err := scheduler.NewLocal(scheduler.Config{
		Name: name, HW: hw, NumNodes: 16,
		Policy: scheduler.NewGAPolicy(ga.DefaultConfig(), rng),
		Engine: engine,
	})
	if err != nil {
		log.Fatal(err)
	}
	return l
}

func main() {
	engine := pace.NewEngine()
	lib := pace.CaseStudyLibrary()
	rng := sim.NewRNG(1)

	// head (Origin 2000) -> mid (Ultra 5) -> leaf (SPARCstation 2).
	mk := func(name string, hw pace.Hardware) *agent.Agent {
		a, err := agent.New(mustLocal(name, hw, engine, rng.Split()), engine)
		if err != nil {
			log.Fatal(err)
		}
		return a
	}
	head := mk("head", pace.SGIOrigin2000)
	mid := mk("mid", pace.SunUltra5)
	leaf := mk("leaf", pace.SunSPARCstation2)
	if err := agent.Link(head, mid); err != nil {
		log.Fatal(err)
	}
	if err := agent.Link(mid, leaf); err != nil {
		log.Fatal(err)
	}
	hier, err := agent.NewHierarchy([]*agent.Agent{head, mid, leaf})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("hierarchy:")
	fmt.Print(hier.Describe())

	// Advertise before anything arrives (the case study pulls every 10s).
	hier.PullAll(0)

	sweep, _ := lib.Lookup("sweep3d")
	improc, _ := lib.Lookup("improc")

	submit := func(a *agent.Agent, app *pace.AppModel, deadlineRel, now float64) {
		d, err := a.HandleRequest(agent.Request{App: app, Env: "test", Deadline: now + deadlineRel}, now)
		if err != nil {
			log.Fatal(err)
		}
		how := "discovery"
		if d.Fallback {
			how = "best-effort fallback"
		}
		fmt.Printf("t=%3.0fs  %-8s deadline +%3.0fs  ->  %-5s (η=%.0fs, %s)\n",
			now, app.Name, deadlineRel, d.Resource, d.Eta, how)
	}

	fmt.Println("\n-- loose deadline stays local, even on the slow leaf --")
	submit(leaf, sweep, 200, 0)

	fmt.Println("\n-- tight deadline migrates up to the fast head --")
	// sweep3d needs >= 24s on the SPARCstation, >= 8s on the Ultra 5,
	// 4s on the Origin: a 6-second deadline can only be met at the head.
	submit(leaf, sweep, 6, 1)

	fmt.Println("\n-- impossible deadline falls back to the least-loaded resource --")
	submit(leaf, improc, 1, 2)

	fmt.Println("\n-- load the head; new advertisements steer traffic away --")
	for i := 0; i < 30; i++ {
		if _, err := head.Local().Submit(sweep, 1e9, 3); err != nil {
			log.Fatal(err)
		}
	}
	hier.PullAll(10) // next advertisement cycle observes the load
	submit(leaf, sweep, 60, 10)

	fmt.Println("\nagent activity:")
	for _, a := range hier.Agents() {
		s := a.Stats()
		fmt.Printf("%-5s received=%d localAccept=%d forwarded=%d escalated=%d fallbacks=%d pulls=%d\n",
			a.Name(), s.Received, s.LocalAccept, s.Forwarded, s.Escalated, s.Fallbacks, s.Pulls)
	}
}
