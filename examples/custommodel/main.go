// Custommodel: modelling your own applications and platforms with the
// PSL performance model language — the workflow PACE's application and
// resource tools support (Fig. 1). A layered model (computation and
// communication steps) is written for a dense matrix multiply, evaluated
// against two parametric platforms, converted into a scheduler-ready
// profile model, and scheduled on a local GA scheduler.
//
//	go run ./examples/custommodel
package main

import (
	"fmt"
	"log"

	"repro/internal/ga"
	"repro/internal/pace"
	"repro/internal/scheduler"
	"repro/internal/sim"
)

const src = `
// Platform measured by the resource tools: per-node compute and network
// rates instead of a single speed factor.
hardware cluster2026 {
  flops  = 5e9;    // 5 Gflop/s per node
  membw  = 2e10;   // 20 GB/s memory bandwidth
  netlat = 15e-6;  // 15 us message latency
  netbw  = 2.5e8;  // 250 MB/s link bandwidth
}

hardware oldlab {
  flops  = 2e8;
  membw  = 8e8;
  netlat = 300e-6;
  netbw  = 1e7;
}

// Application measured by the application tools: work and traffic as
// functions of the processor count n.
application blockmm {
  param n;
  param size = 1400;
  let work = 2 * pow(size, 3);
  step compute { flops = work / n; mem = 3 * 8 * size * size / n; }
  step reduce  { messages = 2 * n; bytes = 8 * size * size; }
}
`

func main() {
	lib := pace.NewLibrary()
	if err := lib.AddSource(src); err != nil {
		log.Fatal(err)
	}
	mm, _ := lib.Lookup("blockmm")
	engine := pace.NewEngine()

	fmt.Println("=== cross-platform prediction (the Fig. 1 evaluation engine) ===")
	fmt.Printf("%6s %16s %16s\n", "procs", "cluster2026 (s)", "oldlab (s)")
	for _, hwName := range []string{"cluster2026", "oldlab"} {
		if _, ok := lib.LookupParametricHardware(hwName); !ok {
			log.Fatalf("missing hardware %s", hwName)
		}
	}
	fast, _ := lib.LookupParametricHardware("cluster2026")
	slow, _ := lib.LookupParametricHardware("oldlab")
	for k := 1; k <= 16; k *= 2 {
		f, err := engine.PredictOn(mm, fast, k)
		if err != nil {
			log.Fatal(err)
		}
		s, err := engine.PredictOn(mm, slow, k)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%6d %16.3f %16.3f\n", k, f, s)
	}

	// Convert the layered model into a profile model for the scheduler:
	// the platform is baked in, exactly like the Table 1 case-study
	// models were produced from PACE measurements.
	prof, err := pace.ProfileFromLayered(mm, fast, 16, 2, 60)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n=== generated scheduler model ===\n%s\n", prof.String())

	local, err := scheduler.NewLocal(scheduler.Config{
		Name: "cluster2026", HW: pace.Hardware{Name: "unit", Factor: 1}, NumNodes: 16,
		Policy: scheduler.NewGAPolicy(ga.DefaultConfig(), sim.NewRNG(1)),
		Engine: engine,
	})
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if _, err := local.Submit(prof, float64(20+5*i), float64(i)); err != nil {
			log.Fatal(err)
		}
	}
	end := local.Drain()
	met := 0
	for _, r := range local.Records() {
		if r.End <= r.Deadline {
			met++
		}
	}
	fmt.Printf("\nscheduled 8 blockmm tasks on the modelled cluster: done at t=%.1fs, %d/8 deadlines met\n", end, met)
	fmt.Printf("engine activity: %d evaluations, %d cache hits\n",
		engine.Stats().Evaluations, engine.Stats().CacheHits)
}
