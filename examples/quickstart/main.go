// Quickstart: build a three-resource grid with an agent hierarchy, submit
// a small workload through service discovery, and print the §3.3
// load-balancing metrics.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/workload"
)

func main() {
	// One fast head with a mid and a slow child, 16 nodes each — a
	// miniature of the paper's Fig. 7 grid.
	grid, err := core.New([]core.ResourceSpec{
		{Name: "head", Hardware: "SGIOrigin2000", Nodes: 16},
		{Name: "mid", Hardware: "SunUltra5", Nodes: 16, Parent: "head"},
		{Name: "slow", Hardware: "SunSPARCstation2", Nodes: 16, Parent: "head"},
	}, core.Options{
		Policy:    core.PolicyGA, // the §2.1 genetic algorithm
		UseAgents: true,          // the §3 discovery layer
		Seed:      42,
	})
	if err != nil {
		log.Fatal(err)
	}

	// 90 requests at three-second intervals, uniformly over the agents,
	// deadlines drawn from each application's Table 1 domain.
	reqs, err := workload.Generate(workload.Spec{
		Seed: 42, Count: 90, Interval: 3,
		AgentNames: []string{"head", "mid", "slow"},
		Library:    grid.Library(),
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := grid.SubmitWorkload(reqs); err != nil {
		log.Fatal(err)
	}

	// Run the whole ten-minute experiment in virtual time.
	if err := grid.Run(); err != nil {
		log.Fatal(err)
	}

	rep, err := grid.Metrics(270)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("resource  tasks   ε (s)    υ (%)   β (%)")
	for _, r := range rep.PerResource {
		fmt.Printf("%-8s %6d %8.1f %8.1f %7.1f\n", r.Name, r.Tasks, r.Epsilon, r.Upsilon, r.Beta)
	}
	t := rep.Total
	fmt.Printf("%-8s %6d %8.1f %8.1f %7.1f\n", "TOTAL", t.Tasks, t.Epsilon, t.Upsilon, t.Beta)

	met := 0
	for _, r := range grid.Records() {
		if r.End <= r.Deadline {
			met++
		}
	}
	fmt.Printf("\n%d of %d tasks met their deadline\n", met, len(grid.Records()))
	fmt.Printf("PACE engine: %d evaluations, %d cache hits\n",
		grid.Engine().Stats().Evaluations, grid.Engine().Stats().CacheHits)
}
