// Failover: the resource-monitoring module in action (§2.2). The monitor
// is the only component that knows node availability; when hosts fail
// mid-run the GA replans around them, and when they return the pool
// grows back. Tasks already executing are unaffected (test mode).
//
//	go run ./examples/failover
package main

import (
	"fmt"
	"log"

	"repro/internal/ga"
	"repro/internal/pace"
	"repro/internal/scheduler"
	"repro/internal/sim"
)

func main() {
	engine := pace.NewEngine()
	lib := pace.CaseStudyLibrary()
	local, err := scheduler.NewLocal(scheduler.Config{
		Name: "cluster", HW: pace.SunUltra10, NumNodes: 8,
		Policy: scheduler.NewGAPolicy(ga.DefaultConfig(), sim.NewRNG(3)),
		Engine: engine,
	})
	if err != nil {
		log.Fatal(err)
	}
	jacobi, _ := lib.Lookup("jacobi")
	fft, _ := lib.Lookup("fft")

	fmt.Println("phase 1: all 8 hosts up, four jacobi tasks")
	for i := 0; i < 4; i++ {
		if _, err := local.Submit(jacobi, 1e9, float64(i)); err != nil {
			log.Fatal(err)
		}
	}

	fmt.Println("phase 2: hosts 5..7 fail at t=10 (monitor polls every 5 min in §2.2;")
	fmt.Println("         here the failure is injected directly)")
	local.AdvanceTo(10)
	for n := 5; n < 8; n++ {
		if err := local.Monitor().SetNodeDown(n, true, 10); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("         up nodes: %v\n", local.Monitor().UpNodes())

	for i := 0; i < 4; i++ {
		if _, err := local.Submit(fft, 1e9, 11+float64(i)); err != nil {
			log.Fatal(err)
		}
	}

	fmt.Println("phase 3: hosts return at t=60, more work arrives")
	local.AdvanceTo(60)
	for n := 5; n < 8; n++ {
		if err := local.Monitor().SetNodeDown(n, false, 60); err != nil {
			log.Fatal(err)
		}
	}
	for i := 0; i < 4; i++ {
		if _, err := local.Submit(jacobi, 1e9, 61+float64(i)); err != nil {
			log.Fatal(err)
		}
	}

	end := local.Drain()
	fmt.Printf("\nall tasks complete at t=%.0fs\n\n", end)
	fmt.Println("task   app      nodes              start    end")
	downUsed := 0
	for _, r := range local.Records() {
		// Which tasks were planned during the outage?
		if r.Start >= 10 && r.Start < 60 && r.Mask&0b11100000 != 0 {
			downUsed++
		}
		fmt.Printf("#%-4d %-8s %-18b %6.0f %6.0f\n", r.TaskID, r.App.Name, r.Mask, r.Start, r.End)
	}
	if downUsed == 0 {
		fmt.Println("\nno task placed on a failed host during the outage window")
	} else {
		fmt.Printf("\nWARNING: %d tasks used failed hosts\n", downUsed)
	}
	fmt.Println("\navailability events observed by the monitor:")
	for _, ev := range local.Monitor().Events() {
		state := "DOWN"
		if ev.Up {
			state = "UP"
		}
		fmt.Printf("  t=%3.0fs node %d %s\n", ev.Time, ev.Node, state)
	}
}
