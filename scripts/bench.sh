#!/usr/bin/env bash
# bench.sh — PR 2 performance evidence.
#
# Runs the hot-path micro-benchmarks (Fig2ScheduleBuild, GASchedulingEvent,
# Crossover, PACEPredict) with -count=5 plus the end-to-end
# Table3Experiments bench at -benchtime=1x, then writes BENCH_PR2.json
# recording the median ns/op and allocs/op per bench and the Table 3
# eps_s values, alongside the committed pre-PR baseline, so the
# "≥80% fewer allocs on Fig2ScheduleBuild" and "faster GASchedulingEvent"
# claims are reproducible from a checkout.
#
# Usage:  scripts/bench.sh [output.json]        (default: BENCH_PR2.json)
#         scripts/bench.sh pr7 [output.json]    (default: BENCH_PR7.json)
#         scripts/bench.sh pr8 [output.json]    (default: BENCH_PR8.json)
#         scripts/bench.sh pr9 [output.json]    (default: BENCH_PR9.json)
#         scripts/bench.sh pr10 [output.json]   (default: BENCH_PR10.json)
#
# The pr7 mode is the mega-grid throughput evidence: it runs the
# examples/scenarios/mega-smoke.json scenario (1k agents, 50k Poisson
# requests) through the sharded step loop with the streaming audit on,
# and records events/sec and requests/sec at worker widths 1 and 4 from
# gridexp's machine-readable -out export. Set MEGA_SPEC to
# examples/scenarios/mega.json to measure the full 10k-agent/1M-request
# grid instead (minutes, not seconds).
set -euo pipefail
cd "$(dirname "$0")/.."

if [[ "${1:-}" == "pr8" ]]; then
  # PR 8 transport evidence: concurrent request/ack exchanges over
  # loopback, legacy dial-per-exchange vs pooled multiplexed connections
  # (XML and negotiated binary codec). BenchmarkExchange reports exact
  # p50/p99 latency and req/s per mode; the claim is >= 3x requests/sec
  # over the dial-per-exchange baseline at equal-or-better p99.
  out="${2:-BENCH_PR8.json}"
  raw="$(mktemp)"
  trap 'rm -f "$raw"' EXIT

  echo "== transport exchange benches (benchtime=4000x, count=5) ==" >&2
  go test -run '^$' -bench 'BenchmarkExchange' -benchtime=4000x -count=5 \
    ./internal/transport/ | tee "$raw" >&2

  python3 - "$raw" "$out" <<'PY'
import json, re, statistics, sys

raw_path, out_path = sys.argv[1:3]

rows = {}
for line in open(raw_path):
    m = re.match(r'^(Benchmark\S+)\s+\d+\s+(.*)$', line)
    if not m:
        continue
    name = re.sub(r'-\d+$', '', m.group(1))
    fields = rows.setdefault(name, {})
    for val, unit in re.findall(r'([-\d.]+)\s+(\S+)', m.group(2)):
        fields.setdefault(unit, []).append(float(val))

def med(name, unit):
    vals = rows.get('BenchmarkExchange/' + name, {}).get(unit)
    return round(statistics.median(vals), 3) if vals else None

modes = {}
for mode in ('legacy', 'pooled', 'pooled-binary'):
    modes[mode] = {
        'req_per_s': med(mode, 'req/s'),
        'p50_ms': med(mode, 'p50-ms'),
        'p99_ms': med(mode, 'p99-ms'),
        'runs': len(rows.get('BenchmarkExchange/' + mode, {}).get('req/s', [])),
    }

base = modes['legacy']['req_per_s']
doc = {
    'bench': 'BenchmarkExchange (16 concurrent callers, request/ack exchanges, loopback)',
    'modes': modes,
    'summary': {
        'speedup_pooled_xml': round(modes['pooled']['req_per_s'] / base, 2),
        'speedup_pooled_binary': round(modes['pooled-binary']['req_per_s'] / base, 2),
        'note': ('legacy = dial-per-exchange (the pre-PR client). pooled = '
                 'multiplexed keep-alive connection pool, XML payloads. '
                 'pooled-binary = same pool with the negotiated compact binary '
                 'codec. Latency quantiles are exact (sorted per-call wall '
                 'times, not histogram buckets). The handler is a cheap echo '
                 'so the transport dominates; a full farm node serialises on '
                 'its agent lock and would mask the difference. p99 of the '
                 'pooled modes must be <= legacy for the speedup to count.'),
    },
}
for mode, m in modes.items():
    if not m['req_per_s']:
        sys.exit(f'no bench rows for {mode}')
if modes['pooled-binary']['p99_ms'] > modes['legacy']['p99_ms']:
    sys.exit('pooled-binary p99 regressed past the legacy baseline')
if doc['summary']['speedup_pooled_binary'] < 3:
    sys.exit('pooled-binary speedup below the 3x claim')
json.dump(doc, open(out_path, 'w'), indent=1)
open(out_path, 'a').write('\n')
print(f'wrote {out_path}', file=sys.stderr)
print(json.dumps(doc['summary'], indent=1), file=sys.stderr)
PY
  exit 0
fi

if [[ "${1:-}" == "pr9" ]]; then
  # PR 9 reservation evidence: (a) quote latency — the earliest-window
  # search a resource answers the agent layer's quote flood with, on an
  # empty book and on one carrying 32 active holds; (b) what a 20%
  # reserved-traffic share costs the best-effort class — the
  # examples/scenarios/reserved.json mix against the identical run with
  # reservations stripped, both fully audited (audit green implies zero
  # double-bookings and every confirmed start inside its window).
  out="${2:-BENCH_PR9.json}"
  raw="$(mktemp)"
  bin="$(mktemp)"
  spec0="$(mktemp --suffix=.json)"
  r0="$(mktemp)"
  r20="$(mktemp)"
  trap 'rm -f "$raw" "$bin" "$spec0" "$r0" "$r20"' EXIT

  echo "== reservation quote benches (count=5) ==" >&2
  go test -run '^$' -bench 'BenchmarkReservationQuote' -benchmem -count=5 \
    . | tee "$raw" >&2

  echo "== build gridexp ==" >&2
  go build -o "$bin" ./cmd/gridexp

  echo "== strip reservations from the mixed spec ==" >&2
  python3 - "$spec0" <<'PY'
import json, sys
spec = json.load(open('examples/scenarios/reserved.json'))
del spec['reservations']
spec['name'] = spec['name'] + '-stripped'
json.dump(spec, open(sys.argv[1], 'w'))
PY

  echo "== best-effort-only run ==" >&2
  "$bin" -scenario "$spec0" -out "$r0" >&2
  echo "== 20% reserved run ==" >&2
  "$bin" -scenario examples/scenarios/reserved.json -out "$r20" >&2

  python3 - "$raw" "$r0" "$r20" "$out" <<'PY'
import json, re, statistics, sys

raw_path, r0_path, r20_path, out_path = sys.argv[1:5]

rows = {}
for line in open(raw_path):
    m = re.match(r'^(Benchmark\S+)\s+\d+\s+(.*)$', line)
    if not m:
        continue
    name = re.sub(r'-\d+$', '', m.group(1))
    fields = rows.setdefault(name, {})
    for val, unit in re.findall(r'([-\d.]+)\s+(\S+)', m.group(2)):
        fields.setdefault(unit, []).append(float(val))

def med(name, unit):
    vals = rows.get('BenchmarkReservationQuote/' + name, {}).get(unit)
    return round(statistics.median(vals), 1) if vals else None

quote = {
    name: {'ns_op': med(name, 'ns/op'), 'allocs_op': med(name, 'allocs/op'),
           'runs': len(rows.get('BenchmarkReservationQuote/' + name, {}).get('ns/op', []))}
    for name in ('empty-book', 'booked32')
}

def point(path):
    r = json.load(open(path))['scenario']
    return {
        'name': r.get('name'),
        'requests': r['requests'],
        'completed': r['completed'],
        'throughput_s': r['throughput_s'],
        'eps_s': r['eps_s'],
        'be_eps_s': r.get('be_eps_s', r['eps_s']),
        'hit_rate': r['hit_rate'],
        'resv_confirmed': r.get('resv_confirmed', 0),
        'guarantee_hit_rate': r.get('guarantee_hit_rate', 0),
        'audit_ok': r['audit_ok'],
        'wall_clock_s': round(r['wall_clock_s'], 3),
    }

p0, p20 = point(r0_path), point(r20_path)
for p in (p0, p20):
    if not p['audit_ok']:
        sys.exit(f'audit failed on {p["name"]}')
if not quote['empty-book']['ns_op']:
    sys.exit('no quote bench rows')
if p20['resv_confirmed'] == 0:
    sys.exit('the 20% run confirmed no reservations')

doc = {
    'quote_latency': quote,
    'runs': {'best_effort_only': p0, 'reserved_20pct': p20},
    'summary': {
        'quote_ns_empty': quote['empty-book']['ns_op'],
        'quote_ns_booked32': quote['booked32']['ns_op'],
        'throughput_ratio_20pct': round(p20['throughput_s'] / p0['throughput_s'], 3),
        'be_eps_delta_s': round(p20['be_eps_s'] - p0['eps_s'], 2),
        'guarantee_hit_rate': p20['guarantee_hit_rate'],
        'note': ('quote_latency is Local.QuoteReservation (16 nodes): the '
                 'earliest-window search behind one hop of the agent '
                 'layer\'s quote flood. The runs compare the '
                 'examples/scenarios/reserved.json mix (20% of 600 '
                 'requests diverted to 2-node/120 s advance reservations) '
                 'against the identical workload with the reservations '
                 'block removed; be_eps_delta_s is what the blocked '
                 'windows cost the best-effort class in ε. Both runs must '
                 'be audit-green, which proves zero double-bookings and '
                 'every confirmed reservation starting inside its window.'),
    },
}
json.dump(doc, open(out_path, 'w'), indent=1)
open(out_path, 'a').write('\n')
print(f'wrote {out_path}', file=sys.stderr)
print(json.dumps(doc['summary'], indent=1), file=sys.stderr)
PY
  exit 0
fi

if [[ "${1:-}" == "pr10" ]]; then
  # PR 10 dynamic-hierarchy evidence: Experiment 7 runs the same
  # churning flash-crowd workload twice — tree held static against the
  # load-driven rebalancer re-homing subtrees — both fully audited
  # (audit green implies no request lost or double-dispatched across
  # any join, leave, drain, or re-home). The claim is that the dynamic
  # hierarchy strictly improves ε or the deadline-hit rate over the
  # static tree under identical churn, and that the rebalancer actually
  # moved at least one subtree (the comparison is meaningless if the
  # two runs were the same tree).
  out="${2:-BENCH_PR10.json}"
  raw="$(mktemp)"
  trap 'rm -f "$raw"' EXIT

  echo "== experiment 7 (churn + flash crowd, static vs dynamic) ==" >&2
  go run ./cmd/gridexp -exp7 -audit -out "$raw" >&2

  python3 - "$raw" "$out" <<'PY'
import json, sys

raw_path, out_path = sys.argv[1:3]

m = json.load(open(raw_path))['membership']

def point(row):
    return {
        'requests': row['requests'],
        'eps_s': row['eps_s'],
        'ups_pct': row['ups_pct'],
        'beta_pct': row['beta_pct'],
        'hit_rate': row['hit_rate'],
        'throughput_s': row['throughput_s'],
        'audit_ok': row.get('audit_ok'),
    }

static, dynamic = point(m['static']), point(m['dynamic'])
for name, p in (('static', static), ('dynamic', dynamic)):
    if p['audit_ok'] is not True:
        sys.exit(f'audit failed on the {name} run')
if m['rehome_moves'] == 0:
    sys.exit('the rebalancer never re-homed a subtree')
if m['joins'] == 0 or m['leaves'] == 0:
    sys.exit('the churn schedule produced no joins/leaves')

eps_delta = round(dynamic['eps_s'] - static['eps_s'], 2)
hit_delta = round((dynamic['hit_rate'] - static['hit_rate']) * 100, 2)
beta_delta = round(dynamic['beta_pct'] - static['beta_pct'], 2)
if eps_delta <= 0 and hit_delta <= 0:
    sys.exit('dynamic improved neither eps nor deadline-hit over static')

doc = {
    'experiment': ('experiment 7: churn (2 joins, 1 leave) + localized '
                   'flash crowd, tree held static vs load-driven '
                   'subtree re-homing, identical workload and seed'),
    'runs': {'static': static, 'dynamic': dynamic},
    'membership_activity': {
        'joins': m['joins'],
        'leaves': m['leaves'],
        'tasks_drained': m['tasks_drained'],
        'rehome_moves': m['rehome_moves'],
    },
    'summary': {
        'eps_delta_s': eps_delta,
        'hit_rate_delta_pp': hit_delta,
        'beta_delta_pp': beta_delta,
        'throughput_ratio': round(dynamic['throughput_s'] / static['throughput_s'], 3),
        'note': ('eps_delta_s is dynamic ε minus static ε (less negative '
                 'is better: +21.8 s means deadlines are missed by 21.8 s '
                 'less on average). Both runs see the same joins and '
                 'leaves; only the dynamic run re-homes subtrees toward '
                 'spare capacity. Both must be audit-green, which proves '
                 'no request was lost or double-dispatched across any '
                 'membership event.'),
    },
}
json.dump(doc, open(out_path, 'w'), indent=1)
open(out_path, 'a').write('\n')
print(f'wrote {out_path}', file=sys.stderr)
print(json.dumps(doc['summary'], indent=1), file=sys.stderr)
PY
  exit 0
fi

if [[ "${1:-}" == "pr7" ]]; then
  out="${2:-BENCH_PR7.json}"
  spec="${MEGA_SPEC:-examples/scenarios/mega-smoke.json}"
  bin="$(mktemp)"
  w1="$(mktemp)"
  w4="$(mktemp)"
  t3="$(mktemp)"
  trap 'rm -f "$bin" "$w1" "$w4" "$t3"' EXIT

  echo "== build gridexp ==" >&2
  go build -o "$bin" ./cmd/gridexp

  echo "== mega run ($spec, workers=1) ==" >&2
  "$bin" -scenario "$spec" -workers 1 -out "$w1" >&2
  echo "== mega run ($spec, workers=4) ==" >&2
  "$bin" -scenario "$spec" -workers 4 -out "$w4" >&2
  echo "== Table 3 metrics (regression guard) ==" >&2
  "$bin" -table3 -out "$t3" >&2

  # MEGA_FULL_RESULT may name a gridexp -out export of the full
  # examples/scenarios/mega.json run (minutes of wall clock); when set,
  # its numbers land in the JSON under "mega_full".
  python3 - "$spec" "$w1" "$w4" "$t3" "$out" "${MEGA_FULL_RESULT:-}" <<'PY'
import json, os, sys

spec_path, w1_path, w4_path, t3_path, out_path, full_path = sys.argv[1:7]

def point(path, workers):
    res = json.load(open(path))['scenario']
    wall = res['wall_clock_s']
    return {
        'workers': workers,
        'wall_clock_s': round(wall, 3),
        'sim_events': res['sim_events'],
        'requests': res['requests'],
        'completed': res['completed'],
        'audit_ok': res['audit_ok'],
        'events_per_s': round(res['sim_events'] / wall, 1),
        'requests_per_s': round(res['requests'] / wall, 1),
    }

p1, p4 = point(w1_path, 1), point(w4_path, 4)
table3 = [
    {k: e[k] for k in ('id', 'label', 'policy', 'eps_s', 'ups_pct', 'beta_pct')}
    for e in json.load(open(t3_path)).get('experiments', [])
]
doc = {
    'spec': spec_path,
    'runs': [p1, p4],
    'table3': table3,
    'mega_full': None,
    'summary': {
        'host_cpus': os.cpu_count(),
        'speedup_workers4': round(p1['wall_clock_s'] / p4['wall_clock_s'], 2),
        'note': ('Throughput of the sharded event loop with batched advert '
                 'exchanges and the streaming audit attached. events_per_s '
                 'counts executed simulator events; requests_per_s counts '
                 'submitted grid requests. Both runs must stay audit_ok and '
                 'bit-identical in scheduling results (the test suite pins '
                 'that); this file records only the speed. Worker speedup '
                 'needs cores: on a single-CPU host the parallel merge is '
                 'pure bookkeeping overhead, so expect ~1.0 there and gains '
                 'only when host_cpus > 1.'),
    },
}
if full_path:
    full = json.load(open(full_path))['scenario']
    doc['mega_full'] = {
        'spec': 'examples/scenarios/mega.json',
        'agents': full['agents'],
        'requests': full['requests'],
        'completed': full['completed'],
        'audit_ok': full['audit_ok'],
        'wall_clock_s': round(full['wall_clock_s'], 1),
        'sim_events': full['sim_events'],
        'events_per_s': round(full['sim_events'] / full['wall_clock_s'], 1),
        'requests_per_s': round(full['requests'] / full['wall_clock_s'], 1),
    }
    # Peak RSS is measured outside the process (e.g. polling VmHWM in
    # /proc/<pid>/status); pass it in when you have it.
    if os.environ.get('MEGA_FULL_PEAK_RSS_KB'):
        doc['mega_full']['peak_rss_kb'] = int(os.environ['MEGA_FULL_PEAK_RSS_KB'])
for p in (p1, p4):
    if not p['audit_ok']:
        sys.exit(f'audit failed at workers={p["workers"]}')
json.dump(doc, open(out_path, 'w'), indent=1)
open(out_path, 'a').write('\n')
print(f'wrote {out_path}', file=sys.stderr)
print(json.dumps(doc['summary'], indent=1), file=sys.stderr)
PY
  exit 0
fi

out="${1:-BENCH_PR2.json}"
micro="$(mktemp)"
table3="$(mktemp)"
t3json="$(mktemp)"
trap 'rm -f "$micro" "$table3" "$t3json"' EXIT

echo "== micro benches (count=5) ==" >&2
go test -run '^$' \
  -bench 'BenchmarkFig2ScheduleBuild|BenchmarkGASchedulingEvent|BenchmarkCrossover|BenchmarkPACEPredict' \
  -benchmem -count=5 . | tee "$micro" >&2

echo "== Table 3 experiments (benchtime=1x, count=5) ==" >&2
go test -run '^$' -bench 'BenchmarkTable3Experiments' \
  -benchtime=1x -count=5 . | tee "$table3" >&2

echo "== Table 3 metrics (gridexp -out) ==" >&2
go run ./cmd/gridexp -table3 -out "$t3json" >&2

python3 - "$micro" "$table3" "$t3json" "$out" <<'PY'
import json, re, statistics, sys

micro_path, table3_path, t3json_path, out_path = sys.argv[1:5]

def parse(path):
    rows = {}
    for line in open(path):
        m = re.match(r'^(Benchmark\S+)\s+\d+\s+(.*)$', line)
        if not m:
            continue
        name = re.sub(r'-\d+$', '', m.group(1))
        fields = rows.setdefault(name, {})
        rest = m.group(2)
        for val, unit in re.findall(r'([-\d.]+)\s+(\S+)', rest):
            fields.setdefault(unit, []).append(float(val))
    return rows

def med(fields, unit):
    vals = fields.get(unit)
    return statistics.median(vals) if vals else None

def summarise(rows, units):
    out = {}
    for name, fields in sorted(rows.items()):
        entry = {u: med(fields, u) for u in units if med(fields, u) is not None}
        entry['runs'] = max(len(v) for v in fields.values())
        out[name] = entry
    return out

# ns/op comes from the bench; the Table 3 metrics come from gridexp's
# machine-readable -out export, not from scraping benchmark text.
table3 = summarise(parse(table3_path), ['ns/op'])
results = json.load(open(t3json_path))
policy_bench = {1: 'exp1_fifo', 2: 'exp2_ga', 3: 'exp3_ga'}
for exp in results.get('experiments', []):
    name = 'BenchmarkTable3Experiments/' + policy_bench[exp['id']]
    entry = table3.setdefault(name, {'runs': 1})
    entry['eps_s'] = exp['eps_s']
    entry['ups_pct'] = exp['ups_pct']
    entry['beta_pct'] = exp['beta_pct']

post = {
    'micro': summarise(parse(micro_path), ['ns/op', 'B/op', 'allocs/op']),
    'table3': table3,
}

# Pre-PR numbers measured at commit 8883d5a on the same host (median of 5,
# -benchmem; Table 3 at -benchtime=1x). Kept verbatim so the JSON is
# self-contained evidence.
baseline = {
    'commit': '8883d5a',
    'micro': {
        'BenchmarkFig2ScheduleBuild': {'ns/op': 1289, 'B/op': 856, 'allocs/op': 4, 'runs': 5},
        'BenchmarkGASchedulingEvent': {'ns/op': 12230697, 'B/op': 15281808, 'allocs/op': 136134, 'runs': 5},
        'BenchmarkCrossover': {'ns/op': 1966, 'B/op': 1954, 'allocs/op': 8, 'runs': 5},
        'BenchmarkPACEPredict/cached': {'ns/op': 37.01, 'B/op': 0, 'allocs/op': 0, 'runs': 5},
        'BenchmarkPACEPredict/uncached': {'ns/op': 759.4, 'B/op': 696, 'allocs/op': 8, 'runs': 5},
    },
    'table3': {
        'BenchmarkTable3Experiments/exp1_fifo': {'ns/op': 99317158, 'eps_s': -31.01, 'ups_pct': 37.84, 'beta_pct': 39.52, 'runs': 1},
        'BenchmarkTable3Experiments/exp2_ga': {'ns/op': 763599146, 'eps_s': -24.80, 'ups_pct': 43.88, 'beta_pct': 52.26, 'runs': 1},
        'BenchmarkTable3Experiments/exp3_ga': {'ns/op': 742562405, 'eps_s': 15.54, 'ups_pct': 76.57, 'beta_pct': 87.65, 'runs': 1},
    },
}

def ratio(base, new):
    return None if not base or new is None else round(base / new, 2)

build_post = post['micro'].get('BenchmarkFig2ScheduleBuild/builder', {})
event_base = baseline['micro']['BenchmarkGASchedulingEvent']
event1 = post['micro'].get('BenchmarkGASchedulingEvent/workers1', {})
event4 = post['micro'].get('BenchmarkGASchedulingEvent/workers4', {})
summary = {
    'fig2_allocs_reduction_pct': None if build_post.get('allocs/op') is None else round(
        100 * (1 - build_post['allocs/op'] / baseline['micro']['BenchmarkFig2ScheduleBuild']['allocs/op']), 1),
    'ga_event_speedup_workers1': ratio(event_base['ns/op'], event1.get('ns/op')),
    'ga_event_speedup_workers4': ratio(event_base['ns/op'], event4.get('ns/op')),
    'note': ('Baseline BenchmarkFig2ScheduleBuild maps to the /builder sub-bench '
             '(the GA inner-loop path) and BenchmarkGASchedulingEvent to the '
             '/workers* sub-benches after this PR renamed them. Speedups on a '
             'single-CPU host come from the zero-alloc builder and lock-free '
             'predictions; extra workers only help with more cores.'),
}

json.dump({'baseline': baseline, 'post': post, 'summary': summary},
          open(out_path, 'w'), indent=1)
open(out_path, 'a').write('\n')
print(f'wrote {out_path}', file=sys.stderr)
print(json.dumps(summary, indent=1), file=sys.stderr)
PY
