#!/usr/bin/env bash
# farm_smoke.sh — end-to-end farm transport smoke test.
#
# Boots the twelve-agent Fig. 7 grid as live TCP daemons (gridfarm) with
# connection pooling, admission control, and the binary codec enabled,
# pushes a gridsubmit batch through the portal over pooled multiplexed
# connections, then polls every node's results and asserts that no
# submitted task was lost: every request in the batch is accounted for
# by exactly the ack count, and the per-node results sum matches.
#
# Usage: scripts/farm_smoke.sh [count]
set -euo pipefail
cd "$(dirname "$0")/.."

COUNT="${1:-40}"
BASE=7400
NODES=12
EMAIL="smoke@farm"
TMP="$(mktemp -d)"
FARM_PID=""
cleanup() {
  [ -n "$FARM_PID" ] && kill "$FARM_PID" 2>/dev/null || true
  wait 2>/dev/null || true
  rm -rf "$TMP"
}
trap cleanup EXIT

echo "== build"
go build -o "$TMP/gridfarm" ./cmd/gridfarm
go build -o "$TMP/gridsubmit" ./cmd/gridsubmit

echo "== boot farm (pooled, admission-gated, binary codec allowed)"
"$TMP/gridfarm" -base "$BASE" -metrics "" \
  -pool-size 4 -window 128 -admission 64 -binary \
  >"$TMP/farm.log" 2>&1 &
FARM_PID=$!

SUBMIT="127.0.0.1:$((BASE + NODES - 1))" # S12, the portal's entry node
for i in $(seq 1 60); do
  if "$TMP/gridsubmit" -to "$SUBMIT" -query >/dev/null 2>&1; then
    break
  fi
  if ! kill -0 "$FARM_PID" 2>/dev/null; then
    echo "farm died during startup:" >&2
    cat "$TMP/farm.log" >&2
    exit 1
  fi
  [ "$i" -eq 60 ] && { echo "farm never became ready" >&2; cat "$TMP/farm.log" >&2; exit 1; }
  sleep 0.5
done

echo "== submit batch of $COUNT through $SUBMIT (pooled + binary wire codec)"
"$TMP/gridsubmit" -to "$SUBMIT" -email "$EMAIL" \
  -count "$COUNT" -interval 5ms -wire-binary | tee "$TMP/batch.log"
grep -q "batch complete: $COUNT requests" "$TMP/batch.log" || {
  echo "FAIL: batch did not complete all $COUNT requests" >&2
  exit 1
}

echo "== collect results from every node"
TOTAL=0
for i in $(seq 0 $((NODES - 1))); do
  ADDR="127.0.0.1:$((BASE + i))"
  "$TMP/gridsubmit" -to "$ADDR" -results -email "$EMAIL" >"$TMP/results.$i" 2>&1
  N=$(grep -c '^task ' "$TMP/results.$i" || true)
  TOTAL=$((TOTAL + N))
  [ "$N" -gt 0 ] && echo "  $ADDR holds $N task(s)"
done

echo "== verdict: $TOTAL/$COUNT tasks accounted for"
if [ "$TOTAL" -ne "$COUNT" ]; then
  echo "FAIL: submitted $COUNT tasks but the farm accounts for $TOTAL" >&2
  exit 1
fi
echo "OK: zero lost tasks"
