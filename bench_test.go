// Benchmark harness: one bench per table and figure of the paper's
// evaluation (§4), plus ablations for the design choices called out in
// DESIGN.md. Table/figure benches report the reproduced metric values via
// b.ReportMetric alongside the usual time/allocs, so `go test -bench`
// regenerates the paper's numbers and measures the implementation at the
// same time.
//
// Paper-to-bench map:
//
//	Table 1  -> BenchmarkTable1PACEPredictions
//	Table 2  -> encoded in experiment.Configs (see BenchmarkTable3Experiments subbenches)
//	Table 3  -> BenchmarkTable3Experiments
//	Fig. 2   -> BenchmarkFig2ScheduleBuild (the coding scheme at work)
//	Fig. 8   -> BenchmarkFig8AdvanceTimeTrends
//	Fig. 9   -> BenchmarkFig9UtilisationTrends
//	Fig. 10  -> BenchmarkFig10LoadBalanceTrends
package repro_test

import (
	"fmt"
	"testing"

	"repro/internal/agent"
	"repro/internal/core"
	"repro/internal/experiment"
	"repro/internal/ga"
	"repro/internal/pace"
	"repro/internal/schedule"
	"repro/internal/scheduler"
	"repro/internal/sim"
	"repro/internal/workload"
)

// benchParams is the workload used by the experiment benches: half the
// paper's request phase, which saturates the grid the same way at a
// fraction of the bench time.
func benchParams() experiment.Params {
	p := experiment.DefaultParams()
	p.Requests = 300
	return p
}

// BenchmarkTable1PACEPredictions regenerates the Table 1 matrix: all
// seven application models evaluated over 1..16 processors on the
// reference platform (uncached, so the evaluation pipeline itself is
// measured).
func BenchmarkTable1PACEPredictions(b *testing.B) {
	lib := pace.CaseStudyLibrary()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		engine := pace.NewEngineWithoutCache()
		for _, m := range lib.Models() {
			for n := 1; n <= 16; n++ {
				if _, err := engine.Predict(m, pace.SGIOrigin2000, n); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
}

// BenchmarkTable3Experiments runs each Table 2 configuration over the
// identical seed-fixed workload and reports the Table 3 grid-wide rows:
// ε (eps_s), υ (ups_pct) and β (beta_pct).
func BenchmarkTable3Experiments(b *testing.B) {
	for _, cfg := range experiment.Configs {
		cfg := cfg
		b.Run(fmt.Sprintf("exp%d_%s", cfg.ID, cfg.Policy), func(b *testing.B) {
			var out experiment.Outcome
			for i := 0; i < b.N; i++ {
				var err error
				out, err = experiment.Run(cfg, benchParams())
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(out.Report.Total.Epsilon, "eps_s")
			b.ReportMetric(out.Report.Total.Upsilon, "ups_pct")
			b.ReportMetric(out.Report.Total.Beta, "beta_pct")
		})
	}
}

// trendBench runs all three experiments and reports one §3.3 metric per
// experiment — the data series behind one of Figs. 8–10.
func trendBench(b *testing.B, metric func(o experiment.Outcome) float64, unit string) {
	b.Helper()
	var outs []experiment.Outcome
	for i := 0; i < b.N; i++ {
		var err error
		outs, err = experiment.RunAll(benchParams())
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, o := range outs {
		b.ReportMetric(metric(o), fmt.Sprintf("exp%d_%s", o.Setup.ID, unit))
	}
}

// BenchmarkFig8AdvanceTimeTrends regenerates the Fig. 8 series: grid-wide
// ε across experiments 1..3.
func BenchmarkFig8AdvanceTimeTrends(b *testing.B) {
	trendBench(b, func(o experiment.Outcome) float64 { return o.Report.Total.Epsilon }, "eps_s")
}

// BenchmarkFig9UtilisationTrends regenerates the Fig. 9 series: grid-wide
// υ across experiments 1..3.
func BenchmarkFig9UtilisationTrends(b *testing.B) {
	trendBench(b, func(o experiment.Outcome) float64 { return o.Report.Total.Upsilon }, "ups_pct")
}

// BenchmarkFig10LoadBalanceTrends regenerates the Fig. 10 series:
// grid-wide β across experiments 1..3.
func BenchmarkFig10LoadBalanceTrends(b *testing.B) {
	trendBench(b, func(o experiment.Outcome) float64 { return o.Report.Total.Beta }, "beta_pct")
}

// BenchmarkFig2ScheduleBuild measures the two-part coding scheme end to
// end: build the Fig. 2-scale schedule from a solution string — the inner
// loop of every GA cost evaluation. The GA hot path reuses a Builder's
// scratch buffers across evaluations, so that is what this bench times;
// the validating one-shot Build is kept as a sub-bench for comparison.
func BenchmarkFig2ScheduleBuild(b *testing.B) {
	lib := pace.CaseStudyLibrary()
	engine := pace.NewEngine()
	pred := func(app *pace.AppModel, k int) float64 {
		return engine.MustPredict(app, pace.SGIOrigin2000, k)
	}
	rng := sim.NewRNG(1)
	names := lib.Names()
	tasks := make([]schedule.Task, 20)
	for i := range tasks {
		m, _ := lib.Lookup(names[i%len(names)])
		tasks[i] = schedule.Task{ID: i, App: m, Deadline: 1e9}
	}
	res := schedule.NewResource(16)
	sol := schedule.NewRandomSolution(len(tasks), 16, rng)
	b.Run("builder", func(b *testing.B) {
		builder, err := schedule.NewBuilder(tasks, res, pred)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			s := builder.Build(sol, 0)
			if s.Makespan <= 0 {
				b.Fatal("empty schedule")
			}
		}
	})
	b.Run("oneshot", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			s := schedule.Build(sol, tasks, res, 0, pred)
			if s.Makespan <= 0 {
				b.Fatal("empty schedule")
			}
		}
	})
}

// --- Ablations (DESIGN.md) ---

// BenchmarkAblationLocalScheduler compares the local policies head to
// head on one overloaded resource: Table 3's experiment 1 vs 2 effect in
// isolation.
func BenchmarkAblationLocalScheduler(b *testing.B) {
	run := func(b *testing.B, mk func() scheduler.Policy) {
		lib := pace.CaseStudyLibrary()
		names := lib.Names()
		var eps float64
		for i := 0; i < b.N; i++ {
			engine := pace.NewEngine()
			local, err := scheduler.NewLocal(scheduler.Config{
				Name: "S", HW: pace.SunUltra1, NumNodes: 16,
				Policy: mk(), Engine: engine,
			})
			if err != nil {
				b.Fatal(err)
			}
			rng := sim.NewRNG(7)
			for j := 0; j < 50; j++ {
				m, _ := lib.Lookup(names[rng.Intn(len(names))])
				deadline := float64(j) + rng.UniformIn(m.DeadlineLo, m.DeadlineHi)
				if _, err := local.Submit(m, deadline, float64(j)); err != nil {
					b.Fatal(err)
				}
			}
			local.Drain()
			var adv float64
			for _, r := range local.Records() {
				adv += r.Deadline - r.End
			}
			eps = adv / float64(len(local.Records()))
		}
		b.ReportMetric(eps, "eps_s")
	}
	b.Run("fifo", func(b *testing.B) {
		run(b, func() scheduler.Policy { return scheduler.NewFIFOPolicy() })
	})
	b.Run("ga", func(b *testing.B) {
		run(b, func() scheduler.Policy { return scheduler.NewGAPolicy(ga.DefaultConfig(), sim.NewRNG(1)) })
	})
}

// BenchmarkAblationAgentDiscovery isolates the agent layer: the same GA
// grid with discovery off (experiment 2) and on (experiment 3).
func BenchmarkAblationAgentDiscovery(b *testing.B) {
	for _, agents := range []bool{false, true} {
		agents := agents
		name := "off"
		if agents {
			name = "on"
		}
		b.Run(name, func(b *testing.B) {
			var beta float64
			for i := 0; i < b.N; i++ {
				cfg := experiment.Configs[1]
				if agents {
					cfg = experiment.Configs[2]
				}
				out, err := experiment.Run(cfg, benchParams())
				if err != nil {
					b.Fatal(err)
				}
				beta = out.Report.Total.Beta
			}
			b.ReportMetric(beta, "beta_pct")
		})
	}
}

// BenchmarkAblationEvalCache reproduces the §2.2 cache argument: the same
// GA scheduling workload against a cached and an uncached evaluation
// engine, reporting actual model evaluations performed. The paper's
// example: 1000 evaluations/generation at ~0.01 s would cost 10 s per
// generation without reuse.
func BenchmarkAblationEvalCache(b *testing.B) {
	run := func(b *testing.B, cached bool) {
		lib := pace.CaseStudyLibrary()
		names := lib.Names()
		var evals, hits uint64
		for i := 0; i < b.N; i++ {
			var engine *pace.Engine
			if cached {
				engine = pace.NewEngine()
			} else {
				engine = pace.NewEngineWithoutCache()
			}
			local, err := scheduler.NewLocal(scheduler.Config{
				Name: "S", HW: pace.SunUltra5, NumNodes: 16,
				Policy: scheduler.NewGAPolicy(ga.DefaultConfig(), sim.NewRNG(1)),
				Engine: engine,
			})
			if err != nil {
				b.Fatal(err)
			}
			for j := 0; j < 20; j++ {
				m, _ := lib.Lookup(names[j%len(names)])
				if _, err := local.Submit(m, 1e9, float64(j)); err != nil {
					b.Fatal(err)
				}
			}
			local.Drain()
			evals = engine.Stats().Evaluations
			hits = engine.Stats().CacheHits
		}
		b.ReportMetric(float64(evals), "evals")
		b.ReportMetric(float64(hits), "cache_hits")
		b.ReportMetric(pace.EvalStats{Evaluations: evals}.SimulatedCost(pace.DefaultEvalCost), "simcost_s")
	}
	b.Run("cached", func(b *testing.B) { run(b, true) })
	b.Run("uncached", func(b *testing.B) { run(b, false) })
}

// BenchmarkAblationIdleWeighting compares front-weighted idle time (§2.1)
// against plain idle time on the full experiment-2 grid.
func BenchmarkAblationIdleWeighting(b *testing.B) {
	run := func(b *testing.B, disable bool) {
		var eps float64
		for i := 0; i < b.N; i++ {
			p := benchParams()
			grid, err := core.New(experiment.CaseStudyResources(), core.Options{
				Policy: core.PolicyGA, GA: p.GA, Seed: p.Seed,
				DisableFrontWeightedIdle: disable,
			})
			if err != nil {
				b.Fatal(err)
			}
			spec := workload.CaseStudySpec(p.Seed, experiment.AgentNames())
			spec.Count = p.Requests
			reqs, err := workload.Generate(spec)
			if err != nil {
				b.Fatal(err)
			}
			if err := grid.SubmitWorkload(reqs); err != nil {
				b.Fatal(err)
			}
			if err := grid.Run(); err != nil {
				b.Fatal(err)
			}
			rep, err := grid.Metrics(float64(p.Requests))
			if err != nil {
				b.Fatal(err)
			}
			eps = rep.Total.Epsilon
		}
		b.ReportMetric(eps, "eps_s")
	}
	b.Run("front-weighted", func(b *testing.B) { run(b, false) })
	b.Run("uniform", func(b *testing.B) { run(b, true) })
}

// BenchmarkAblationAdvertPeriod sweeps the §4.1 ten-second advertisement
// pull period: staler advertisements mean worse placement.
func BenchmarkAblationAdvertPeriod(b *testing.B) {
	for _, period := range []float64{1, 10, 60, 300} {
		period := period
		b.Run(fmt.Sprintf("%.0fs", period), func(b *testing.B) {
			var eps float64
			for i := 0; i < b.N; i++ {
				p := benchParams()
				grid, err := core.New(experiment.CaseStudyResources(), core.Options{
					Policy: core.PolicyGA, GA: p.GA, Seed: p.Seed,
					UseAgents: true, PullPeriod: period,
				})
				if err != nil {
					b.Fatal(err)
				}
				spec := workload.CaseStudySpec(p.Seed, experiment.AgentNames())
				spec.Count = p.Requests
				reqs, err := workload.Generate(spec)
				if err != nil {
					b.Fatal(err)
				}
				if err := grid.SubmitWorkload(reqs); err != nil {
					b.Fatal(err)
				}
				if err := grid.Run(); err != nil {
					b.Fatal(err)
				}
				rep, err := grid.Metrics(float64(p.Requests))
				if err != nil {
					b.Fatal(err)
				}
				eps = rep.Total.Epsilon
			}
			b.ReportMetric(eps, "eps_s")
		})
	}
}

// BenchmarkAblationGABudget sweeps the GA generation budget per
// scheduling event.
func BenchmarkAblationGABudget(b *testing.B) {
	for _, gens := range []int{5, 15, 30, 60} {
		gens := gens
		b.Run(fmt.Sprintf("gens%d", gens), func(b *testing.B) {
			var eps float64
			for i := 0; i < b.N; i++ {
				p := benchParams()
				p.GA.MaxGenerations = gens
				p.GA.ConvergenceWindow = 0
				out, err := experiment.Run(experiment.Configs[1], p)
				if err != nil {
					b.Fatal(err)
				}
				eps = out.Report.Total.Epsilon
			}
			b.ReportMetric(eps, "eps_s")
		})
	}
}

// BenchmarkAblationFIFOSearch compares the paper's literal 2^n−1
// allocation enumeration with the homogeneity-aware fast path.
func BenchmarkAblationFIFOSearch(b *testing.B) {
	lib := pace.CaseStudyLibrary()
	names := lib.Names()
	run := func(b *testing.B, policy core.PolicyKind) {
		for i := 0; i < b.N; i++ {
			engine := pace.NewEngine()
			var pol scheduler.Policy
			if policy == core.PolicyFIFO {
				pol = scheduler.NewFIFOPolicy()
			} else {
				pol = scheduler.NewFastFIFOPolicy()
			}
			local, err := scheduler.NewLocal(scheduler.Config{
				Name: "S", HW: pace.SGIOrigin2000, NumNodes: 16,
				Policy: pol, Engine: engine,
			})
			if err != nil {
				b.Fatal(err)
			}
			for j := 0; j < 60; j++ {
				m, _ := lib.Lookup(names[j%len(names)])
				if _, err := local.Submit(m, 1e9, float64(j)); err != nil {
					b.Fatal(err)
				}
			}
			local.Drain()
		}
	}
	b.Run("exhaustive", func(b *testing.B) { run(b, core.PolicyFIFO) })
	b.Run("fast", func(b *testing.B) { run(b, core.PolicyFIFOFast) })
}

// BenchmarkHeuristicComparison pits the paper's GA against the other
// nature's heuristics its related work cites ([1]: simulated annealing
// and tabu search) plus FIFO, on one overloaded resource with the same
// workload — kernel choice as an ablation.
func BenchmarkHeuristicComparison(b *testing.B) {
	run := func(b *testing.B, mk func() scheduler.Policy) {
		lib := pace.CaseStudyLibrary()
		names := lib.Names()
		var eps float64
		for i := 0; i < b.N; i++ {
			engine := pace.NewEngine()
			local, err := scheduler.NewLocal(scheduler.Config{
				Name: "S", HW: pace.SunUltra5, NumNodes: 16,
				Policy: mk(), Engine: engine,
			})
			if err != nil {
				b.Fatal(err)
			}
			rng := sim.NewRNG(11)
			for j := 0; j < 40; j++ {
				m, _ := lib.Lookup(names[rng.Intn(len(names))])
				deadline := float64(j) + rng.UniformIn(m.DeadlineLo, m.DeadlineHi)
				if _, err := local.Submit(m, deadline, float64(j)); err != nil {
					b.Fatal(err)
				}
			}
			local.Drain()
			var adv float64
			for _, r := range local.Records() {
				adv += r.Deadline - r.End
			}
			eps = adv / float64(len(local.Records()))
		}
		b.ReportMetric(eps, "eps_s")
	}
	b.Run("fifo", func(b *testing.B) {
		run(b, func() scheduler.Policy { return scheduler.NewFIFOPolicy() })
	})
	b.Run("ga", func(b *testing.B) {
		run(b, func() scheduler.Policy { return scheduler.NewGAPolicy(ga.DefaultConfig(), sim.NewRNG(1)) })
	})
	b.Run("sa", func(b *testing.B) {
		run(b, func() scheduler.Policy { return scheduler.NewSAPolicy(sim.NewRNG(1)) })
	})
	b.Run("tabu", func(b *testing.B) {
		run(b, func() scheduler.Policy { return scheduler.NewTabuPolicy(sim.NewRNG(1)) })
	})
}

// --- Extension studies (§5 future work) ---

// BenchmarkExtensionPredictionAccuracy runs the §5 prediction-accuracy
// study: exact predictions vs systematically optimistic models.
func BenchmarkExtensionPredictionAccuracy(b *testing.B) {
	cases := []experiment.NoiseCase{{Rel: 0, Bias: 0}, {Rel: 0.2, Bias: 0.25}}
	for _, c := range cases {
		c := c
		b.Run(fmt.Sprintf("rel%.0f_bias%.0f", c.Rel*100, c.Bias*100), func(b *testing.B) {
			var pt experiment.AccuracyPoint
			for i := 0; i < b.N; i++ {
				pts, err := experiment.RunAccuracyStudy([]experiment.NoiseCase{c}, benchParams())
				if err != nil {
					b.Fatal(err)
				}
				pt = pts[0]
			}
			b.ReportMetric(pt.Epsilon, "eps_s")
			b.ReportMetric(pt.MetRate*100, "met_pct")
		})
	}
}

// BenchmarkExtensionScalability runs the §5 scalability study at two grid
// sizes, reporting discovery locality.
func BenchmarkExtensionScalability(b *testing.B) {
	for _, n := range []int{12, 24} {
		n := n
		b.Run(fmt.Sprintf("agents%d", n), func(b *testing.B) {
			var pt experiment.ScalePoint
			for i := 0; i < b.N; i++ {
				p := experiment.DefaultParams()
				p.Requests = 0 // study derives its own counts
				pts, err := experiment.RunScalabilityStudy([]int{n}, 3, 25, p)
				if err != nil {
					b.Fatal(err)
				}
				pt = pts[0]
			}
			b.ReportMetric(pt.MeanHops, "mean_hops")
			b.ReportMetric(pt.Beta, "beta_pct")
		})
	}
}

// BenchmarkAblationPushAdverts compares pull-only advertisement at a
// starved period against pull+event-triggered push (§3.1 strategies).
func BenchmarkAblationPushAdverts(b *testing.B) {
	run := func(b *testing.B, push bool) {
		var eps float64
		for i := 0; i < b.N; i++ {
			p := benchParams()
			grid, err := core.New(experiment.CaseStudyResources(), core.Options{
				Policy: core.PolicyGA, GA: p.GA, Seed: p.Seed,
				UseAgents: true, PullPeriod: 120, PushAdverts: push,
			})
			if err != nil {
				b.Fatal(err)
			}
			spec := workload.CaseStudySpec(p.Seed, experiment.AgentNames())
			spec.Count = p.Requests
			reqs, err := workload.Generate(spec)
			if err != nil {
				b.Fatal(err)
			}
			if err := grid.SubmitWorkload(reqs); err != nil {
				b.Fatal(err)
			}
			if err := grid.Run(); err != nil {
				b.Fatal(err)
			}
			rep, err := grid.Metrics(float64(p.Requests))
			if err != nil {
				b.Fatal(err)
			}
			eps = rep.Total.Epsilon
		}
		b.ReportMetric(eps, "eps_s")
	}
	b.Run("pull-only", func(b *testing.B) { run(b, false) })
	b.Run("pull+push", func(b *testing.B) { run(b, true) })
}

// --- Micro-benchmarks of the hot paths ---

// BenchmarkGASchedulingEvent measures one full GA Plan call over a
// 20-task queue — the per-arrival cost of the local scheduler — at
// several worker-pool widths. The plan is bit-identical at every width
// (see ga.Config.Workers); the sub-benches measure only the wall-clock
// effect of parallel cost evaluation.
func BenchmarkGASchedulingEvent(b *testing.B) {
	lib := pace.CaseStudyLibrary()
	names := lib.Names()
	engine := pace.NewEngine()
	pred := func(app *pace.AppModel, k int) float64 {
		return engine.MustPredict(app, pace.SunUltra5, k)
	}
	tasks := make([]schedule.Task, 20)
	for i := range tasks {
		m, _ := lib.Lookup(names[i%len(names)])
		tasks[i] = schedule.Task{ID: i + 1, App: m, Deadline: 500}
	}
	res := schedule.NewResource(16)
	for _, workers := range []int{1, 4} {
		workers := workers
		b.Run(fmt.Sprintf("workers%d", workers), func(b *testing.B) {
			cfg := ga.DefaultConfig()
			cfg.MaxGenerations = 30
			cfg.ConvergenceWindow = 0
			cfg.Workers = workers
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				pol := scheduler.NewGAPolicy(cfg, sim.NewRNG(uint64(i)))
				s := pol.Plan(tasks, res, 0, pred)
				if len(s.Items) != 20 {
					b.Fatal("plan lost tasks")
				}
			}
		})
	}
}

// BenchmarkCrossover measures the two-part crossover operator.
func BenchmarkCrossover(b *testing.B) {
	rng := sim.NewRNG(1)
	x := schedule.NewRandomSolution(32, 16, rng)
	y := schedule.NewRandomSolution(32, 16, rng)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c, d := schedule.Crossover(x, y, 16, rng)
		if len(c.Order) != 32 || len(d.Order) != 32 {
			b.Fatal("bad children")
		}
	}
}

// BenchmarkPACEPredict measures a cache hit against a full model
// evaluation.
func BenchmarkPACEPredict(b *testing.B) {
	lib := pace.CaseStudyLibrary()
	m, _ := lib.Lookup("improc")
	b.Run("cached", func(b *testing.B) {
		engine := pace.NewEngine()
		_, _ = engine.Predict(m, pace.SunUltra10, 8)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := engine.Predict(m, pace.SunUltra10, 8); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("uncached", func(b *testing.B) {
		engine := pace.NewEngineWithoutCache()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := engine.Predict(m, pace.SunUltra10, 8); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("cached-parallel", func(b *testing.B) {
		engine := pace.NewEngine()
		_, _ = engine.Predict(m, pace.SunUltra10, 8)
		b.ReportAllocs()
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				if _, err := engine.Predict(m, pace.SunUltra10, 8); err != nil {
					b.Fatal(err)
				}
			}
		})
	})
}

// BenchmarkDiscovery measures one service-discovery decision at a loaded
// agent with a populated advertisement cache.
func BenchmarkDiscovery(b *testing.B) {
	engine := pace.NewEngine()
	lib := pace.CaseStudyLibrary()
	mk := func(name string, hw pace.Hardware) *agent.Agent {
		l, err := scheduler.NewLocal(scheduler.Config{
			Name: name, HW: hw, NumNodes: 16,
			Policy: scheduler.NewFIFOPolicy(), Engine: engine,
		})
		if err != nil {
			b.Fatal(err)
		}
		a, err := agent.New(l, engine)
		if err != nil {
			b.Fatal(err)
		}
		return a
	}
	head := mk("head", pace.SGIOrigin2000)
	for i := 0; i < 3; i++ {
		child := mk(fmt.Sprintf("c%d", i), pace.SunUltra5)
		if err := agent.Link(head, child); err != nil {
			b.Fatal(err)
		}
	}
	head.Pull(0)
	m, _ := lib.Lookup("fft")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dec := head.Decide(agent.Request{App: m, Env: "test", Deadline: 1e9}, 0)
		if dec.Kind == agent.DecideFail {
			b.Fatal("discovery failed")
		}
	}
}

// BenchmarkReservationQuote measures the reservation shopping hot path:
// the earliest-window search a resource answers a quote flood with, on an
// empty book and on one carrying 32 staggered active holds.
func BenchmarkReservationQuote(b *testing.B) {
	for _, bc := range []struct {
		name     string
		bookings int
	}{{"empty-book", 0}, {"booked32", 32}} {
		b.Run(bc.name, func(b *testing.B) {
			l, err := scheduler.NewLocal(scheduler.Config{
				Name: "S1", HW: pace.SGIOrigin2000, NumNodes: 16,
				Policy: scheduler.NewFIFOPolicy(), Engine: pace.NewEngine(),
			})
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < bc.bookings; i++ {
				// Pairs of nodes, staggered windows: reuse of a node pair
				// lands 500 s later, so every hold admits.
				mask := uint64(0b11) << uint((i%8)*2)
				start := 100 + float64(i/8)*500
				if err := l.HoldReservation(uint64(i+1), "bench", mask, start, start+300, 0, 1e9); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := l.QuoteReservation(4, 50, 120, 0); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
