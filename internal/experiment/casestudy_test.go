package experiment

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/pace"
)

func TestCaseStudyResourcesMatchFig7(t *testing.T) {
	specs := CaseStudyResources()
	if len(specs) != 12 {
		t.Fatalf("%d resources, want 12", len(specs))
	}
	wantHW := map[string]string{
		"S1": "SGIOrigin2000", "S2": "SGIOrigin2000",
		"S3": "SunUltra10", "S4": "SunUltra10",
		"S5": "SunUltra5", "S6": "SunUltra5", "S7": "SunUltra5",
		"S8": "SunUltra1", "S9": "SunUltra1", "S10": "SunUltra1",
		"S11": "SunSPARCstation2", "S12": "SunSPARCstation2",
	}
	heads := 0
	for _, s := range specs {
		if s.Nodes != 16 {
			t.Errorf("%s has %d nodes, want 16", s.Name, s.Nodes)
		}
		if wantHW[s.Name] != s.Hardware {
			t.Errorf("%s hardware %s, want %s", s.Name, s.Hardware, wantHW[s.Name])
		}
		if s.Parent == "" {
			heads++
			if s.Name != "S1" {
				t.Errorf("head is %s, want S1", s.Name)
			}
		}
	}
	if heads != 1 {
		t.Fatalf("%d heads", heads)
	}
	// The grid must actually build.
	if _, err := core.New(specs, core.Options{}); err != nil {
		t.Fatal(err)
	}
}

func TestConfigsMatchTable2(t *testing.T) {
	if len(Configs) != 3 {
		t.Fatalf("%d experiment configs", len(Configs))
	}
	if Configs[0].Policy != core.PolicyFIFO || Configs[0].UseAgents {
		t.Error("experiment 1 must be FIFO without agents")
	}
	if Configs[1].Policy != core.PolicyGA || Configs[1].UseAgents {
		t.Error("experiment 2 must be GA without agents")
	}
	if Configs[2].Policy != core.PolicyGA || !Configs[2].UseAgents {
		t.Error("experiment 3 must be GA with agents")
	}
}

// TestCaseStudyShape runs a reduced version of all three experiments and
// asserts the paper's qualitative results: experiment 2 improves on
// experiment 1, and experiment 3 dominates both on every grid-wide metric
// (Table 3 / Figs. 8–10 trends).
func TestCaseStudyShape(t *testing.T) {
	if testing.Short() {
		t.Skip("case study run in short mode")
	}
	outs, err := RunAll(QuickParams())
	if err != nil {
		t.Fatal(err)
	}
	e1, e2, e3 := outs[0].Report.Total, outs[1].Report.Total, outs[2].Report.Total

	// Fig. 8: ε improves monotonically across experiments.
	if !(e1.Epsilon <= e2.Epsilon && e2.Epsilon < e3.Epsilon) {
		t.Errorf("ε trend broken: %v, %v, %v", e1.Epsilon, e2.Epsilon, e3.Epsilon)
	}
	// Fig. 9: the agent-based mechanism contributes most to utilisation.
	if !(e3.Upsilon > e2.Upsilon && e3.Upsilon > e1.Upsilon) {
		t.Errorf("υ trend broken: %v, %v, %v", e1.Upsilon, e2.Upsilon, e3.Upsilon)
	}
	// Fig. 10: grid-wide load balancing improves dramatically with agents.
	if !(e3.Beta > e2.Beta+15 && e3.Beta > e1.Beta+15) {
		t.Errorf("β trend broken: %v, %v, %v", e1.Beta, e2.Beta, e3.Beta)
	}
	// All requests accounted for in every experiment.
	for _, o := range outs {
		if o.Report.Total.Tasks != o.Requests {
			t.Errorf("experiment %d lost tasks: %d of %d", o.Setup.ID, o.Report.Total.Tasks, o.Requests)
		}
	}
	// Local GA load balancing: per-resource β improves from 1 to 2 on
	// average (the §4.2 experiment-2 observation).
	var b1, b2 float64
	for i := range outs[0].Report.PerResource {
		b1 += outs[0].Report.PerResource[i].Beta
		b2 += outs[1].Report.PerResource[i].Beta
	}
	if b2 <= b1 {
		t.Errorf("GA did not improve average local β: %v -> %v", b1/12, b2/12)
	}
	// Experiment 3 sends more requests to the powerful platforms (§4.2).
	count := func(o Outcome, res string) int {
		n := 0
		for _, d := range o.Dispatches {
			if d.Resource == res {
				n++
			}
		}
		return n
	}
	if count(outs[2], "S1")+count(outs[2], "S2") <= count(outs[1], "S1")+count(outs[1], "S2") {
		t.Error("agents did not shift load towards the powerful platforms")
	}
}

func TestRunDeterministic(t *testing.T) {
	p := QuickParams()
	p.Requests = 60
	a, err := Run(Configs[1], p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(Configs[1], p)
	if err != nil {
		t.Fatal(err)
	}
	if a.Report.Total.Epsilon != b.Report.Total.Epsilon ||
		a.Report.Total.Upsilon != b.Report.Total.Upsilon ||
		a.Report.Total.Beta != b.Report.Total.Beta {
		t.Fatalf("same seed, different outcomes: %+v vs %+v", a.Report.Total, b.Report.Total)
	}
}

func TestFormatTable1(t *testing.T) {
	out, err := FormatTable1(pace.CaseStudyLibrary(), pace.NewEngine(), pace.SGIOrigin2000, 16)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"sweep3d", "cpi", "[4,200]", "  50", "  10"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Table 1 output missing %q:\n%s", want, out)
		}
	}
}

func TestFormatTable2(t *testing.T) {
	out := FormatTable2()
	if !strings.Contains(out, "FIFO") || !strings.Contains(out, "Agent-based") {
		t.Fatalf("Table 2 output:\n%s", out)
	}
}

func TestFormatReportsSmoke(t *testing.T) {
	p := QuickParams()
	p.Requests = 40
	o, err := Run(Configs[0], p)
	if err != nil {
		t.Fatal(err)
	}
	outs := []Outcome{o}
	for _, s := range []string{
		FormatTable3(outs),
		FormatTrends(outs, TrendEpsilon),
		FormatTrends(outs, TrendUpsilon),
		FormatTrends(outs, TrendBeta),
		FormatDispatchSummary(outs),
	} {
		if !strings.Contains(s, "S12") {
			t.Fatalf("report missing S12:\n%s", s)
		}
	}
	if !strings.Contains(FormatTable3(outs), "Total") {
		t.Fatal("Table 3 missing Total row")
	}
	if out := FormatTrends(outs, Trend("nope")); !strings.Contains(out, "unknown trend") {
		t.Fatal("unknown trend not reported")
	}
	// Empty outcome lists do not panic.
	_ = FormatTable3(nil)
	_ = FormatTrends(nil, TrendBeta)
	_ = FormatDispatchSummary(nil)
}

func TestAgentNamesOrder(t *testing.T) {
	names := AgentNames()
	if len(names) != 12 || names[0] != "S1" || names[11] != "S12" {
		t.Fatalf("AgentNames = %v", names)
	}
}
