package experiment

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/pace"
	"repro/internal/workload"
)

// The paper argues the advertisement/discovery design "allows possible
// system scalability" because requests are processed between neighbouring
// agents with no central structure (§3.1), and leaves scalability
// experiments as future work (§5). This study runs them: synthetic
// hierarchies of growing size under a proportionally growing workload,
// measuring discovery locality (hops) and the §3.3 metrics.

// SyntheticResources builds an n-agent hierarchy as a branching-ary tree
// with hardware models cycling from fastest to slowest, 16 nodes each —
// the Fig. 7 grid generalised to arbitrary size.
func SyntheticResources(n, branching int) []core.ResourceSpec {
	if n < 1 {
		n = 1
	}
	if branching < 1 {
		branching = 3
	}
	hw := pace.HardwareNames()
	specs := make([]core.ResourceSpec, n)
	for i := 0; i < n; i++ {
		specs[i].Name = fmt.Sprintf("A%d", i+1)
		if i > 0 {
			specs[i].Parent = fmt.Sprintf("A%d", (i-1)/branching+1)
		}
		specs[i].Hardware = hw[i%len(hw)]
		specs[i].Nodes = 16
	}
	return specs
}

// ScalePoint is one grid size of the scalability study.
type ScalePoint struct {
	Agents    int
	Requests  int
	MeanHops  float64 // agents traversed per request before dispatch
	MaxHops   int
	Fallbacks int
	Epsilon   float64
	Upsilon   float64
	Beta      float64
}

// RunScalabilityStudy runs the agent-based configuration over synthetic
// grids of the given sizes. The workload grows with the grid (the case
// study's ~50 requests per resource arriving within the same ten-minute
// phase, so the load density per resource stays constant), and the
// question measured is whether discovery stays local and balancing holds
// as the system grows — not whether a fixed workload gets easier.
func RunScalabilityStudy(sizes []int, branching int, reqsPerAgent int, p Params) ([]ScalePoint, error) {
	if reqsPerAgent <= 0 {
		reqsPerAgent = 50
	}
	out := make([]ScalePoint, 0, len(sizes))
	for _, n := range sizes {
		specs := SyntheticResources(n, branching)
		grid, err := core.New(specs, core.Options{
			Policy: core.PolicyGA, GA: p.GA, Workers: p.Workers, Seed: p.Seed, UseAgents: true,
		})
		if err != nil {
			return nil, err
		}
		names := make([]string, len(specs))
		for i, s := range specs {
			names[i] = s.Name
		}
		// Fixed request phase (reqsPerAgent × Interval seconds per the
		// 12-agent case study): arrival rate scales with grid size.
		phase := float64(reqsPerAgent) * p.Interval * 12
		count := reqsPerAgent * n
		spec := workload.Spec{
			Seed:       p.Seed,
			Count:      count,
			Interval:   phase / float64(count),
			AgentNames: names,
			Library:    grid.Library(),
		}
		reqs, err := workload.Generate(spec)
		if err != nil {
			return nil, err
		}
		if err := grid.SubmitWorkload(reqs); err != nil {
			return nil, err
		}
		if err := grid.Run(); err != nil {
			return nil, err
		}
		rep, err := grid.Metrics(phase)
		if err != nil {
			return nil, err
		}
		pt := ScalePoint{Agents: n, Requests: spec.Count,
			Epsilon: rep.Total.Epsilon, Upsilon: rep.Total.Upsilon, Beta: rep.Total.Beta}
		var hops int
		for _, d := range grid.Dispatches() {
			hops += d.Hops
			if d.Hops > pt.MaxHops {
				pt.MaxHops = d.Hops
			}
			if d.Fallback {
				pt.Fallbacks++
			}
		}
		if len(grid.Dispatches()) > 0 {
			pt.MeanHops = float64(hops) / float64(len(grid.Dispatches()))
		}
		out = append(out, pt)
	}
	return out, nil
}

// FormatScalability renders the study as a table.
func FormatScalability(points []ScalePoint) string {
	var b strings.Builder
	b.WriteString("Scalability study (§5): GA + agents on synthetic hierarchies\n\n")
	fmt.Fprintf(&b, "%7s %9s %10s %9s %10s %9s %8s %9s\n",
		"agents", "requests", "mean hops", "max hops", "fallbacks", "eps (s)", "ups (%)", "beta (%)")
	for _, pt := range points {
		fmt.Fprintf(&b, "%7d %9d %10.2f %9d %10d %9.1f %8.1f %9.1f\n",
			pt.Agents, pt.Requests, pt.MeanHops, pt.MaxHops, pt.Fallbacks, pt.Epsilon, pt.Upsilon, pt.Beta)
	}
	return b.String()
}
