package experiment

import (
	"fmt"
	"strings"

	"repro/internal/scenario"
)

// Experiment 6 is the advance-reservation admission study: the §4.1
// case-study workload (experiment 3's GA + agent-discovery
// configuration) with a growing share of the request stream diverted to
// advance reservations. Each reserved request books a guaranteed-start
// window through the two-phase shop → hold → confirm path; everything
// else stays best-effort. The study reads off the trade the grid makes
// at each share: the guarantee hit rate the reserved class obtains
// against the ε degradation the blocked windows impose on the
// best-effort class.

// DefaultReservationShares is the share axis of the admission study.
func DefaultReservationShares() []float64 { return []float64{0, 0.1, 0.2, 0.3} }

// DefaultReservationShape is the reservation each diverted request asks
// for: two nodes for 120 s starting 300 s out, with admission refused
// once the granted window would slip more than 600 s past the request.
func DefaultReservationShape() scenario.ReservationSpec {
	return scenario.ReservationSpec{Lead: 300, Duration: 120, Nodes: 2, Parts: 1, MaxSlip: 600}
}

// ReservationPoint is one admission-study share.
type ReservationPoint struct {
	Share  float64
	Result scenario.Result
}

// RunReservationStudy executes Experiment 6 over the given shares. Each
// point is a full audited scenario run of the Fig. 7 case study; the
// share-0 point is the untouched experiment-3 workload and anchors the
// degradation deltas.
func RunReservationStudy(p Params, shares []float64) ([]ReservationPoint, error) {
	base := scenario.Fig7()
	base.Seed = p.Seed
	base.Arrivals.Count = p.Requests
	base.Arrivals.Interval = p.Interval
	base.GA = &scenario.GASpec{
		PopulationSize:    p.GA.PopulationSize,
		MaxGenerations:    p.GA.MaxGenerations,
		ConvergenceWindow: p.GA.ConvergenceWindow,
	}
	opt := scenario.RunOptions{Workers: p.Workers, Telemetry: p.Telemetry, SamplePeriod: p.SamplePeriod}
	pts := make([]ReservationPoint, 0, len(shares))
	for _, share := range shares {
		spec := base
		spec.Name = fmt.Sprintf("fig7-reserved-%g", share)
		shape := DefaultReservationShape()
		shape.Share = share
		spec.Reservations = &shape
		res, err := scenario.Run(spec, opt)
		if err != nil {
			return nil, fmt.Errorf("experiment 6 (share %g): %w", share, err)
		}
		pts = append(pts, ReservationPoint{Share: share, Result: res})
	}
	return pts, nil
}

// FormatReservation renders the Experiment 6 report: per share, the
// admission bookkeeping, the guarantee the reserved class got, and the
// best-effort class's ε/υ/β next to the share-0 baseline.
func FormatReservation(pts []ReservationPoint) string {
	var b strings.Builder
	b.WriteString("Experiment 6: advance-reservation admission study\n\n")
	fmt.Fprintf(&b, "%8s %6s %6s %6s %6s %10s %9s %9s %9s %10s\n",
		"share", "resv", "conf", "rej", "exp", "guar-hit", "be-eps/s", "be-ups/%", "be-beta/%", "hit-rate")
	for _, p := range pts {
		r := p.Result
		// The best-effort class of a share-0 run is the whole run.
		beEps, beUps, beBeta := r.BestEffortEpsilon, r.BestEffortUpsilon, r.BestEffortBeta
		if r.ResvConfirmed == 0 {
			beEps, beUps, beBeta = r.Epsilon, r.Upsilon, r.Beta
		}
		guar := "-"
		if r.ResvConfirmed > 0 {
			guar = fmt.Sprintf("%.1f %%", r.GuaranteeHitRate*100)
		}
		fmt.Fprintf(&b, "%7.0f%% %6d %6d %6d %6d %10s %9.1f %9.1f %9.1f %9.1f %%\n",
			p.Share*100, r.ResvRequested, r.ResvConfirmed, r.ResvRejected, r.ResvExpired,
			guar, beEps, beUps, beBeta, r.HitRate*100)
	}
	if len(pts) > 1 {
		first, last := pts[0], pts[len(pts)-1]
		firstEps := first.Result.Epsilon
		lastEps := last.Result.BestEffortEpsilon
		if last.Result.ResvConfirmed == 0 {
			lastEps = last.Result.Epsilon
		}
		fmt.Fprintf(&b, "\nBest-effort ε moves %+.1f s as the reserved share grows %g%% → %g%%.\n",
			lastEps-firstEps, first.Share*100, last.Share*100)
	}
	return b.String()
}
