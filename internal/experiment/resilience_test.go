package experiment

import (
	"strings"
	"testing"
)

// TestResilienceZeroLostAndDeterministic runs Experiment 4 on the
// reduced workload: every accepted request must complete despite three
// crash windows and a partition, and two identical runs must produce an
// identical report.
func TestResilienceZeroLostAndDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("resilience experiment is slow")
	}
	p := QuickParams()
	plan := ScaledFaultPlan(float64(p.Requests) * p.Interval)

	run := func() (ResilienceOutcome, string) {
		r, err := RunResilience(p, plan)
		if err != nil {
			t.Fatal(err)
		}
		return r, FormatResilience(r)
	}
	r, report := run()

	if r.Fault.Crashes != 3 || r.Fault.Recoveries != 3 {
		t.Fatalf("crashes/recoveries = %d/%d, want 3/3", r.Fault.Crashes, r.Fault.Recoveries)
	}
	if r.Fault.Lost != 0 {
		t.Fatalf("lost %d tasks under the default crash schedule", r.Fault.Lost)
	}
	if got := len(r.Faulted.Records); got != r.Faulted.Requests {
		t.Fatalf("completed %d of %d requests", got, r.Faulted.Requests)
	}
	if r.Fault.Redispatched == 0 {
		t.Fatal("crashing S2 mid-phase should strand queued tasks for re-dispatch")
	}
	if r.Fault.Rerouted == 0 {
		t.Fatal("no arrivals rerouted although crashed agents receive workload requests")
	}

	// Degradation is reported, not hidden: the faulted total utilisation
	// must stay within a sane envelope of the baseline (the crashed
	// capacity is idle while its agent is down, so some drop is real).
	base, flt := r.Baseline.Report.Total, r.Faulted.Report.Total
	if flt.Upsilon > base.Upsilon+10 {
		t.Fatalf("faulted upsilon %.1f implausibly above baseline %.1f", flt.Upsilon, base.Upsilon)
	}
	if flt.Upsilon < base.Upsilon-40 {
		t.Fatalf("faulted upsilon %.1f collapsed versus baseline %.1f", flt.Upsilon, base.Upsilon)
	}
	if flt.Beta <= 0 || flt.Beta > 100 {
		t.Fatalf("faulted beta %.1f outside (0, 100]", flt.Beta)
	}

	for _, want := range []string{"Experiment 4", "crash", "Tasks lost:            0"} {
		if !strings.Contains(report, want) {
			t.Fatalf("report missing %q:\n%s", want, report)
		}
	}

	// Fixed seed, fixed plan: the whole report reproduces bit-for-bit.
	_, report2 := run()
	if report != report2 {
		t.Fatalf("two identical Experiment 4 runs diverged:\n--- first\n%s\n--- second\n%s", report, report2)
	}
}
