package experiment

import (
	"strings"
	"testing"
)

// TestExperimentsPassAudit runs every Table 2 configuration at reduced
// scale with the lifecycle auditor attached and requires a spotless
// verdict: conservation, exclusivity, timing, placement and the §3.3
// metric recomputation all hold.
func TestExperimentsPassAudit(t *testing.T) {
	if testing.Short() {
		t.Skip("audited sweep in short mode")
	}
	p := QuickParams()
	p.Requests = 120
	p.Audit = true
	outs, err := RunAll(p)
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range outs {
		if o.Audit == nil {
			t.Fatalf("experiment %d: auditor did not run", o.Setup.ID)
		}
		if !o.Audit.OK() {
			t.Fatalf("experiment %d: %v", o.Setup.ID, o.Audit.Violations)
		}
		c := o.Audit.Counts
		if c.Arrives != p.Requests || c.Completes+c.Fails != p.Requests {
			t.Fatalf("experiment %d not conserved: %+v", o.Setup.ID, c)
		}
	}
}

// TestResilienceRunPassesAudit is the seeded fault run that proves
// conservation end to end: agents crash mid-phase, pending tasks are
// re-dispatched (or lost as explicit fails), and every arrival must
// still net out to exactly one terminal event.
func TestResilienceRunPassesAudit(t *testing.T) {
	if testing.Short() {
		t.Skip("audited resilience run in short mode")
	}
	p := QuickParams()
	p.Requests = 120
	p.Audit = true
	plan := ScaledFaultPlan(float64(p.Requests) * p.Interval)
	r, err := RunResilience(p, plan)
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range []Outcome{r.Baseline, r.Faulted} {
		if o.Audit == nil {
			t.Fatalf("experiment %d: auditor did not run", o.Setup.ID)
		}
		if !o.Audit.OK() {
			t.Fatalf("experiment %d: %v", o.Setup.ID, o.Audit.Violations)
		}
	}
	c := r.Faulted.Audit.Counts
	if c.Arrives != p.Requests {
		t.Fatalf("faulted run saw %d arrivals for %d requests", c.Arrives, p.Requests)
	}
	if c.Completes+c.Fails != p.Requests {
		t.Fatalf("faulted run not conserved: %+v", c)
	}
	if c.Fails != r.Fault.Lost {
		t.Fatalf("%d fail events but %d tasks lost", c.Fails, r.Fault.Lost)
	}
	if c.Redispatches != r.Fault.Redispatched {
		t.Fatalf("%d redispatch events but injector counted %d", c.Redispatches, r.Fault.Redispatched)
	}
	if !strings.Contains(FormatResilience(r), "audit:") {
		t.Fatal("FormatResilience omits the audit verdict")
	}
}
