package experiment

import (
	"fmt"
	"strings"

	"repro/internal/audit"
	"repro/internal/core"
	"repro/internal/trace"
	"repro/internal/workload"
)

// AccuracyPoint is one row of the prediction-accuracy study (§5 future
// work): the experiment-3 configuration run with actual execution times
// deviating from PACE predictions by up to Rel relative error.
type AccuracyPoint struct {
	Rel      float64 // maximum relative prediction scatter
	Bias     float64 // systematic optimism of the models
	Epsilon  float64 // grid-wide ε (s)
	Upsilon  float64 // grid-wide υ (%)
	Beta     float64 // grid-wide β (%)
	MetRate  float64 // fraction of tasks completing by their deadline
	Requests int
	Audit    *audit.Result // set when Params.Audit is on
}

// NoiseCase is one (scatter, bias) configuration of the study.
type NoiseCase struct {
	Rel  float64
	Bias float64
}

// DefaultNoiseCases sweeps scatter at zero bias and bias at moderate
// scatter.
func DefaultNoiseCases() []NoiseCase {
	return []NoiseCase{
		{0, 0}, {0.2, 0}, {0.5, 0},
		{0.2, 0.1}, {0.2, 0.25}, {0.2, 0.5},
	}
}

// RunAccuracyStudy sweeps the prediction error over the full agent-based
// configuration. Rel = 0 is the paper's exact test mode; growing error
// degrades the scheduler's decisions because both the GA cost function
// and the eq. 10 matchmaking reason over predictions that reality no
// longer honours.
func RunAccuracyStudy(cases []NoiseCase, p Params) ([]AccuracyPoint, error) {
	out := make([]AccuracyPoint, 0, len(cases))
	for _, c := range cases {
		var rec *trace.Recorder
		if p.Audit {
			rec = trace.NewRecorder(8*p.Requests + 64)
		}
		grid, err := core.New(CaseStudyResources(), core.Options{
			Policy:          core.PolicyGA,
			GA:              p.GA,
			Workers:         p.Workers,
			UseAgents:       true,
			Seed:            p.Seed,
			PredictionError: c.Rel,
			PredictionBias:  c.Bias,
			Trace:           rec,
		})
		if err != nil {
			return nil, err
		}
		spec := workload.CaseStudySpec(p.Seed, AgentNames())
		spec.Count = p.Requests
		spec.Interval = p.Interval
		reqs, err := workload.Generate(spec)
		if err != nil {
			return nil, err
		}
		if err := grid.SubmitWorkload(reqs); err != nil {
			return nil, err
		}
		if err := grid.Run(); err != nil {
			return nil, err
		}
		rep, err := grid.Metrics(float64(p.Requests) * p.Interval)
		if err != nil {
			return nil, err
		}
		met := 0
		recs := grid.Records()
		for _, r := range recs {
			if r.End <= r.Deadline {
				met++
			}
		}
		pt := AccuracyPoint{
			Rel:      c.Rel,
			Bias:     c.Bias,
			Epsilon:  rep.Total.Epsilon,
			Upsilon:  rep.Total.Upsilon,
			Beta:     rep.Total.Beta,
			MetRate:  float64(met) / float64(len(recs)),
			Requests: len(recs),
		}
		if p.Audit {
			res := audit.Check(audit.Run{
				Events:     rec.Events(),
				Records:    recs,
				Dispatches: grid.Dispatches(),
				Nodes:      grid.NodesByResource(),
				Report:     rep,
				Dropped:    rec.Dropped(),
			})
			pt.Audit = &res
		}
		out = append(out, pt)
	}
	return out, nil
}

// FormatAccuracy renders the study as a table.
func FormatAccuracy(points []AccuracyPoint) string {
	var b strings.Builder
	b.WriteString("Prediction-accuracy study (§5): experiment 3 with noisy execution times\n\n")
	fmt.Fprintf(&b, "%9s %7s %10s %8s %8s %10s\n", "scatter", "bias", "eps (s)", "ups (%)", "beta (%)", "met rate")
	for _, pt := range points {
		fmt.Fprintf(&b, "%8.0f%% %+6.0f%% %10.1f %8.1f %8.1f %9.1f%%\n",
			pt.Rel*100, pt.Bias*100, pt.Epsilon, pt.Upsilon, pt.Beta, pt.MetRate*100)
	}
	return b.String()
}
