package experiment

import (
	"fmt"
	"strings"

	"repro/internal/agent"
	"repro/internal/audit"
	"repro/internal/core"
	"repro/internal/membership"
	"repro/internal/metrics"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Exp7 is the dynamic-hierarchy configuration: experiment 3 (GA + agent
// discovery) under a flash crowd while the tree itself churns — powerful
// resources join at runtime, a loaded resource gracefully leaves — with
// the load-driven rebalancer deciding whether subtrees re-home. The
// paper's tree is fixed at start-up; this experiment measures making it
// a runtime object.
var Exp7 = Setup{ID: 7, Policy: core.PolicyGA, UseAgents: true, Label: "GA + agents + churn + flash crowd (dynamic tree)"}

// DefaultChurnPlan returns the Experiment 7 membership schedule, scaled
// to a request phase of roughly the flash-crowd span: two powerful
// resources join early but attach at the *bottom* of the tree (under the
// weakest leaves — a new machine rarely arrives at the root), and S9
// gracefully departs mid-crowd, draining its queue. Discovery is
// neighbour-local, so the joiners' capacity is nearly invisible from the
// loaded region of the tree — unless the rebalancer re-homes traffic
// toward them, which is exactly the effect the experiment measures.
func DefaultChurnPlan() membership.Plan {
	return membership.Plan{
		Joins: []membership.Join{
			{Time: 60, Name: "S13", Hardware: "SGIOrigin2000", Nodes: 16, Parent: "S11"},
			{Time: 90, Name: "S14", Hardware: "SGIOrigin2000", Nodes: 16, Parent: "S12"},
		},
		Leaves: []membership.Leave{
			{Time: 240, Name: "S9"},
		},
	}
}

// DefaultFlashCrowd returns the Experiment 7 arrival process: a 0.5 /s
// baseline ramping to 5 /s over a minute and holding for 150 s — ten
// times the sustained load, concentrated mid-phase, the regime where a
// lopsided tree hurts most.
func DefaultFlashCrowd() workload.FlashCrowd {
	return workload.FlashCrowd{BaseRate: 0.5, PeakRate: 5, RampStart: 120, RampDuration: 60, Hold: 150}
}

// DefaultRebalancePolicy returns the Experiment 7 rebalancer knobs: the
// membership defaults with the pressure floor raised to crowd level, so
// the tree only moves for the flash crowd itself, not for the small
// imbalances of the warm-up phase.
func DefaultRebalancePolicy() membership.Policy { return membership.Policy{MinLoad: 30} }

// MembershipOutcome pairs the churning run with a static tree (agents
// join and leave, but nothing re-homes under load) against the identical
// run with the rebalancer on.
type MembershipOutcome struct {
	Static  Outcome // churn only: the tree keeps its start-up shape
	Dynamic Outcome // same workload and churn, rebalancer on
	Plan    membership.Plan
	Policy  membership.Policy
	Stats   membership.Stats // membership activity of the dynamic run
	HitOff  float64          // deadline-hit rate, static tree
	HitOn   float64          // deadline-hit rate, dynamic tree
}

// RunMembershipStudy executes Experiment 7: the experiment 3
// configuration over a flash-crowd workload with scripted churn, first
// with the tree static (joins and leaves happen, but subtrees never move),
// then with the load-driven rebalancer on. Everything else — seed,
// workload, GA knobs, churn schedule — is held identical, so any delta
// is the rebalancer's.
func RunMembershipStudy(p Params, plan membership.Plan, pol membership.Policy) (MembershipOutcome, error) {
	// An external trace recorder goes to the dynamic run only: one
	// recorder must never hold two runs' events (the ReqIDs collide and
	// the audit would see every task executed twice).
	pOff := p
	pOff.Trace = nil
	static, _, err := runChurn(pOff, plan, nil)
	if err != nil {
		return MembershipOutcome{}, fmt.Errorf("experiment 7 (static tree): %w", err)
	}
	dynamic, stats, err := runChurn(p, plan, &pol)
	if err != nil {
		return MembershipOutcome{}, fmt.Errorf("experiment 7 (dynamic tree): %w", err)
	}
	return MembershipOutcome{
		Static:  static,
		Dynamic: dynamic,
		Plan:    plan,
		Policy:  pol,
		Stats:   stats,
		HitOff:  metrics.HitRate(static.Records),
		HitOn:   metrics.HitRate(dynamic.Records),
	}, nil
}

// runChurn runs the flash-crowd workload over the churning Fig. 7 grid
// with the given rebalance policy (nil = static tree).
func runChurn(p Params, plan membership.Plan, pol *membership.Policy) (Outcome, membership.Stats, error) {
	rec := p.Trace
	if p.Audit && rec == nil {
		rec = trace.NewRecorder(8*p.Requests + 64)
	}
	grid, err := core.New(CaseStudyResources(), core.Options{
		Policy:    Exp7.Policy,
		GA:        p.GA,
		Workers:   p.Workers,
		UseAgents: true,
		Seed:      p.Seed,
		Trace:     rec,
		AdvertTTL: 3 * agent.DefaultPullPeriod,
		Churn:     &plan,
		Rebalance: pol,
	})
	if err != nil {
		return Outcome{}, membership.Stats{}, err
	}
	spec := workload.CaseStudySpec(p.Seed, AgentNames())
	spec.Count = p.Requests
	spec.Arrivals = DefaultFlashCrowd()
	spec.DeadlineScale = 0.9
	// The crowd hits one region: every request enters through the S3/S4
	// branches, far from where the powerful joiners attached. A static
	// tree reaches the new capacity only by climbing through the head and
	// descending the far side hop by hop; the dynamic tree re-homes the
	// hot branch next to it.
	spec.AgentNames = []string{"S3", "S4", "S7", "S8", "S9", "S10"}
	reqs, err := workload.Generate(spec)
	if err != nil {
		return Outcome{}, membership.Stats{}, err
	}
	if err := grid.SubmitWorkload(reqs); err != nil {
		return Outcome{}, membership.Stats{}, err
	}
	if err := grid.Run(); err != nil {
		return Outcome{}, membership.Stats{}, err
	}
	report, err := grid.Metrics(workload.Summarise(reqs).Span)
	if err != nil {
		return Outcome{}, membership.Stats{}, err
	}
	out := Outcome{
		Setup:      Exp7,
		Report:     report,
		Dispatches: grid.Dispatches(),
		Records:    grid.Records(),
		EvalStats:  grid.Engine().Stats(),
		Requests:   len(reqs),
	}
	if p.Audit {
		// The churning run is where the membership invariants earn their
		// keep: no request lost or run twice across a leave-drain, no work
		// landing on a departed resource, every re-home atomic.
		res := audit.Check(audit.Run{
			Events:     rec.Events(),
			Records:    out.Records,
			Dispatches: out.Dispatches,
			Nodes:      grid.NodesByResource(),
			Report:     report,
			Dropped:    rec.Dropped(),
		})
		out.Audit = &res
	}
	return out, grid.MembershipStats(), nil
}

// FormatMembership renders the Experiment 7 report: the churn schedule,
// the membership bookkeeping, and ε/υ/β plus the deadline-hit rate with
// the tree static against dynamic.
func FormatMembership(r MembershipOutcome) string {
	var b strings.Builder
	b.WriteString("Experiment 7: dynamic hierarchy under churn and flash crowd\n\n")
	b.WriteString("Churn schedule:\n")
	for _, j := range r.Plan.Joins {
		fmt.Fprintf(&b, "  t=%-6g join  %s (%s x%d) under %s\n", j.Time, j.Name, j.Hardware, j.Nodes, j.Parent)
	}
	for _, l := range r.Plan.Leaves {
		fmt.Fprintf(&b, "  t=%-6g leave %s (queue drained, subtree re-homed)\n", l.Time, l.Name)
	}
	b.WriteString("\n")

	fmt.Fprintf(&b, "Requests submitted:    %d\n", r.Dynamic.Requests)
	fmt.Fprintf(&b, "Tasks completed:       %d (static) / %d (dynamic)\n", len(r.Static.Records), len(r.Dynamic.Records))
	fmt.Fprintf(&b, "Membership activity:   %d joins, %d leaves, %d tasks drained, %d rehome moves\n",
		r.Stats.Joins, r.Stats.Leaves, r.Stats.Drained, r.Stats.Moves)
	b.WriteString("\n")

	off, on := r.Static.Report.Total, r.Dynamic.Report.Total
	fmt.Fprintf(&b, "%-24s %10s %10s %10s\n", "grid totals", "static", "dynamic", "delta")
	row := func(label, unit string, a, f float64) {
		fmt.Fprintf(&b, "%-24s %10.1f %10.1f %+10.1f  %s\n", label, a, f, f-a, unit)
	}
	row("epsilon (advance time)", "s", off.Epsilon, on.Epsilon)
	row("upsilon (utilisation)", "%", off.Upsilon, on.Upsilon)
	row("beta (balance level)", "%", off.Beta, on.Beta)
	row("deadline-hit rate", "%", r.HitOff*100, r.HitOn*100)
	if r.Dynamic.Audit != nil {
		b.WriteString("\n")
		b.WriteString(r.Dynamic.Audit.Summary())
		b.WriteString("\n")
	}
	return b.String()
}
