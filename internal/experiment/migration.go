package experiment

import (
	"fmt"
	"strings"

	"repro/internal/agent"
	"repro/internal/audit"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/metrics"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Exp5 is the proactive-migration configuration: experiment 3 (GA +
// agent discovery) run against a degraded — not crashed — resource,
// with the drift-driven migration policy deciding whether queued work
// moves off it. The paper's agents only react to failure; this
// experiment measures acting on performance drift.
var Exp5 = Setup{ID: 5, Policy: core.PolicyGA, UseAgents: true, Label: "GA + agents + degraded node + migration"}

// ScaledDegradedPlan returns the Experiment 5 fault schedule scaled to
// a request phase of the given length: S2 — the second-most powerful
// resource, which eq. 10 matchmaking loads heavily — runs its tasks at
// three times the predicted execution time through the middle half of
// the phase. No agent dies and no link drops: the PACE predictions
// steering dispatch stay optimistic while the resource silently falls
// behind, which is exactly the blind spot the migration policy covers.
func ScaledDegradedPlan(phase float64) fault.Plan {
	at := func(f float64) float64 { return phase * f }
	return fault.Plan{
		Seed: 2003,
		Events: []fault.Event{
			{At: at(0.25), Kind: fault.Degrade, Agent: "S2", Factor: 3},
			{At: at(0.75), Kind: fault.Restore, Agent: "S2"},
		},
	}
}

// DefaultDegradedPlan returns the Experiment 5 schedule for the full
// §4.1 request phase (600 requests at 1 s intervals).
func DefaultDegradedPlan() fault.Plan { return ScaledDegradedPlan(600) }

// DefaultMigrationPolicy returns the Experiment 5 policy: check every
// advert period, trigger after two consecutive checks at 50% drift.
func DefaultMigrationPolicy() core.MigrationPolicy {
	return core.MigrationPolicy{Enabled: true}
}

// MigrationOutcome pairs the degraded run without migration against the
// identical run with the policy on.
type MigrationOutcome struct {
	Degraded Outcome // degraded node, migration off
	Migrated Outcome // same workload and faults, migration on
	Plan     fault.Plan
	Policy   core.MigrationPolicy
	Stats    core.MigrationStats // migration activity of the migrated run
	HitOff   float64             // deadline-hit rate, migration off
	HitOn    float64             // deadline-hit rate, migration on
}

// RunMigrationStudy executes Experiment 5: the experiment 3
// configuration over the case-study workload with a degraded-node fault
// plan, first with migration off (the baseline a fault-blind grid
// delivers), then with the drift-driven policy on. Everything else —
// seed, workload, GA knobs, fault schedule — is held identical, so any
// delta is the policy's.
func RunMigrationStudy(p Params, plan fault.Plan, pol core.MigrationPolicy) (MigrationOutcome, error) {
	pol.Enabled = true
	// An external trace recorder goes to the migration-on run only: one
	// recorder must never hold two runs' events (the ReqIDs collide and
	// the audit would see every task executed twice).
	pOff := p
	pOff.Trace = nil
	off, _, err := runDegraded(pOff, plan, core.MigrationPolicy{})
	if err != nil {
		return MigrationOutcome{}, fmt.Errorf("experiment 5 (migration off): %w", err)
	}
	on, stats, err := runDegraded(p, plan, pol)
	if err != nil {
		return MigrationOutcome{}, fmt.Errorf("experiment 5 (migration on): %w", err)
	}
	return MigrationOutcome{
		Degraded: off,
		Migrated: on,
		Plan:     plan,
		Policy:   pol,
		Stats:    stats,
		HitOff:   metrics.HitRate(off.Records),
		HitOn:    metrics.HitRate(on.Records),
	}, nil
}

// runDegraded runs the case-study workload under the degraded-node plan
// with the given migration policy.
func runDegraded(p Params, plan fault.Plan, pol core.MigrationPolicy) (Outcome, core.MigrationStats, error) {
	rec := p.Trace
	if p.Audit && rec == nil {
		rec = trace.NewRecorder(8*p.Requests + 64)
	}
	grid, err := core.New(CaseStudyResources(), core.Options{
		Policy:    Exp5.Policy,
		GA:        p.GA,
		Workers:   p.Workers,
		UseAgents: true,
		Seed:      p.Seed,
		Trace:     rec,
		FaultPlan: &plan,
		AdvertTTL: 3 * agent.DefaultPullPeriod,
		Migration: pol,
	})
	if err != nil {
		return Outcome{}, core.MigrationStats{}, err
	}
	spec := workload.CaseStudySpec(p.Seed, AgentNames())
	spec.Count = p.Requests
	spec.Interval = p.Interval
	reqs, err := workload.Generate(spec)
	if err != nil {
		return Outcome{}, core.MigrationStats{}, err
	}
	if err := grid.SubmitWorkload(reqs); err != nil {
		return Outcome{}, core.MigrationStats{}, err
	}
	if err := grid.Run(); err != nil {
		return Outcome{}, core.MigrationStats{}, err
	}
	report, err := grid.Metrics(float64(p.Requests) * p.Interval)
	if err != nil {
		return Outcome{}, core.MigrationStats{}, err
	}
	out := Outcome{
		Setup:      Exp5,
		Report:     report,
		Dispatches: grid.Dispatches(),
		Records:    grid.Records(),
		EvalStats:  grid.Engine().Stats(),
		Requests:   len(reqs),
	}
	if p.Audit {
		// The migrated run is where the chain invariants earn their
		// keep: every offer → withdraw → re-dispatch must net to exactly
		// one execution, never zero and never two.
		res := audit.Check(audit.Run{
			Events:     rec.Events(),
			Records:    out.Records,
			Dispatches: out.Dispatches,
			Nodes:      grid.NodesByResource(),
			Report:     report,
			Dropped:    rec.Dropped(),
		})
		out.Audit = &res
	}
	return out, grid.MigrationStats(), nil
}

// FormatMigration renders the Experiment 5 report: the degradation
// schedule, the migration bookkeeping, and ε/υ/β plus the deadline-hit
// rate with the policy off against on.
func FormatMigration(r MigrationOutcome) string {
	var b strings.Builder
	b.WriteString("Experiment 5: proactive migration off a degraded node\n\n")
	b.WriteString("Degradation schedule:\n")
	b.WriteString(r.Plan.String())
	b.WriteString("\n")

	fmt.Fprintf(&b, "Requests submitted:    %d\n", r.Migrated.Requests)
	fmt.Fprintf(&b, "Tasks completed:       %d (off) / %d (on)\n", len(r.Degraded.Records), len(r.Migrated.Records))
	fmt.Fprintf(&b, "Drift checks breached: %d of %d\n", r.Stats.Breaches, r.Stats.Checks)
	fmt.Fprintf(&b, "Tasks offered:         %d (accepted %d, rejected %d)\n", r.Stats.Offers, r.Stats.Accepts, r.Stats.Rejects)
	b.WriteString("\n")

	off, on := r.Degraded.Report.Total, r.Migrated.Report.Total
	fmt.Fprintf(&b, "%-24s %10s %10s %10s\n", "grid totals", "mig off", "mig on", "delta")
	row := func(label, unit string, a, f float64) {
		fmt.Fprintf(&b, "%-24s %10.1f %10.1f %+10.1f  %s\n", label, a, f, f-a, unit)
	}
	row("epsilon (advance time)", "s", off.Epsilon, on.Epsilon)
	row("upsilon (utilisation)", "%", off.Upsilon, on.Upsilon)
	row("beta (balance level)", "%", off.Beta, on.Beta)
	row("deadline-hit rate", "%", r.HitOff*100, r.HitOn*100)
	if r.Migrated.Audit != nil {
		b.WriteString("\n")
		b.WriteString(r.Migrated.Audit.Summary())
		b.WriteString("\n")
	}
	return b.String()
}
