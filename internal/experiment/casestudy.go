// Package experiment reproduces the paper's case study (§4): the twelve-
// resource grid of Fig. 7, the three load-balancing configurations of
// Table 2, and the reports behind Table 3 and Figs. 8–10.
package experiment

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/agent"
	"repro/internal/audit"
	"repro/internal/core"
	"repro/internal/ga"
	"repro/internal/metrics"
	"repro/internal/pace"
	"repro/internal/scenario"
	"repro/internal/scheduler"
	"repro/internal/telemetry"
	"repro/internal/trace"
	"repro/internal/workload"
)

// CaseStudyResources returns the Fig. 7 grid: twelve agents S1..S12, each
// representing a heterogeneous resource of sixteen homogeneous nodes,
// ranging from SGI Origin 2000 (most powerful) down to Sun SPARCstation 2.
// The topology itself lives in internal/scenario (the "fig7" preset), so
// the scenario engine and the Table 2/3 experiments are guaranteed to
// run the same grid.
func CaseStudyResources() []core.ResourceSpec {
	return scenario.Fig7Resources()
}

// AgentNames returns S1..S12 in figure order.
func AgentNames() []string {
	specs := CaseStudyResources()
	out := make([]string, len(specs))
	for i, s := range specs {
		out[i] = s.Name
	}
	return out
}

// Setup is one row of Table 2: which local algorithm runs and whether the
// agent-based service discovery layer is active.
type Setup struct {
	ID        int
	Policy    core.PolicyKind
	UseAgents bool
	Label     string
}

// Configs is the Table 2 experiment design.
var Configs = []Setup{
	{ID: 1, Policy: core.PolicyFIFO, UseAgents: false, Label: "FIFO, no agents"},
	{ID: 2, Policy: core.PolicyGA, UseAgents: false, Label: "GA, no agents"},
	{ID: 3, Policy: core.PolicyGA, UseAgents: true, Label: "GA + agent discovery"},
}

// Params holds the workload and GA knobs shared across the experiments.
type Params struct {
	Seed     uint64
	Requests int     // §4.1 uses 600
	Interval float64 // §4.1 uses 1 s
	GA       ga.Config
	Workers  int             // GA cost-evaluation workers per policy; ≤1 sequential, results identical either way
	Trace    *trace.Recorder // optional lifecycle recorder
	Audit    bool            // run the lifecycle auditor over each experiment
	// Telemetry instruments each experiment on its own fresh registry
	// (RunAll runs experiments concurrently, so a shared registry would
	// mix their totals) and attaches the export to Outcome.Telemetry.
	// Observing only: Table 1/Table 3 numbers are identical either way.
	Telemetry    bool
	SamplePeriod float64 // series period in virtual seconds; <= 0 → 10 s
}

// DefaultParams returns the §4.1 case-study parameters. The GA knobs
// come from scenario.DefaultGA so scenario runs and the Table 2/3
// experiments stay in lockstep.
func DefaultParams() Params {
	return Params{Seed: 2003, Requests: 600, Interval: 1, GA: scenario.DefaultGA()}
}

// QuickParams returns a reduced workload for tests: half the request
// phase. The grid must still saturate for the Table 3 orderings to
// emerge, so the reduction is modest.
func QuickParams() Params {
	p := DefaultParams()
	p.Requests = 300
	p.GA.MaxGenerations = 15
	p.GA.ConvergenceWindow = 5
	return p
}

// Outcome is one experiment's results.
type Outcome struct {
	Setup      Setup
	Report     metrics.GridReport
	Dispatches []agent.Dispatch
	Records    []scheduler.Record
	EvalStats  pace.EvalStats
	Requests   int
	Audit      *audit.Result     // set when Params.Audit is on
	Telemetry  *telemetry.Export // set when Params.Telemetry is on
}

// Run executes one experiment configuration against the case-study grid
// and workload.
func Run(setup Setup, p Params) (Outcome, error) {
	// Auditing needs the full lifecycle trace. When the caller did not
	// supply a recorder, run a private one sized so the ring cannot
	// evict (a request contributes at most a handful of events); when
	// the caller did, audit from theirs.
	rec := p.Trace
	if p.Audit && rec == nil {
		rec = trace.NewRecorder(8*p.Requests + 64)
	}
	copts := core.Options{
		Policy:    setup.Policy,
		GA:        p.GA,
		Workers:   p.Workers,
		UseAgents: setup.UseAgents,
		Seed:      p.Seed,
		Trace:     rec,
	}
	if p.Telemetry {
		copts.Telemetry = telemetry.NewRegistry()
		copts.SamplePeriod = p.SamplePeriod
	}
	grid, err := core.New(CaseStudyResources(), copts)
	if err != nil {
		return Outcome{}, err
	}
	spec := workload.CaseStudySpec(p.Seed, AgentNames())
	spec.Count = p.Requests
	spec.Interval = p.Interval
	reqs, err := workload.Generate(spec)
	if err != nil {
		return Outcome{}, err
	}
	if err := grid.SubmitWorkload(reqs); err != nil {
		return Outcome{}, err
	}
	if err := grid.Run(); err != nil {
		return Outcome{}, fmt.Errorf("experiment %d: %w", setup.ID, err)
	}
	report, err := grid.Metrics(float64(p.Requests) * p.Interval)
	if err != nil {
		return Outcome{}, err
	}
	out := Outcome{
		Setup:      setup,
		Report:     report,
		Dispatches: grid.Dispatches(),
		Records:    grid.Records(),
		EvalStats:  grid.Engine().Stats(),
		Requests:   len(reqs),
		Telemetry:  grid.TelemetryExport(),
	}
	if p.Audit {
		res := audit.Check(audit.Run{
			Events:     rec.Events(),
			Records:    out.Records,
			Dispatches: out.Dispatches,
			Nodes:      grid.NodesByResource(),
			Report:     report,
			Dropped:    rec.Dropped(),
		})
		out.Audit = &res
	}
	return out, nil
}

// RunAll executes the three Table 2 experiments over the identical
// workload, one goroutine per experiment. Each experiment builds its own
// grid, engine and seed-derived RNGs from Params alone, so the runs are
// independent and the outcomes identical to a sequential sweep. A shared
// trace recorder forces the sweep sequential: interleaving three grids
// into one ring would scramble the per-experiment event order.
func RunAll(p Params) ([]Outcome, error) {
	out := make([]Outcome, len(Configs))
	if p.Trace != nil {
		for i, s := range Configs {
			o, err := Run(s, p)
			if err != nil {
				return nil, err
			}
			out[i] = o
		}
		return out, nil
	}
	errs := make([]error, len(Configs))
	var wg sync.WaitGroup
	wg.Add(len(Configs))
	for i, s := range Configs {
		go func(i int, s Setup) {
			defer wg.Done()
			out[i], errs[i] = Run(s, p)
		}(i, s)
	}
	wg.Wait()
	if err := errors.Join(errs...); err != nil {
		return nil, err
	}
	return out, nil
}
