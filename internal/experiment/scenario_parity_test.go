package experiment

import (
	"reflect"
	"testing"

	"repro/internal/scenario"
)

// fig7Scenario expresses one Table 2 configuration as a scenario spec.
func fig7Scenario(s Setup) scenario.Spec {
	spec := scenario.Fig7()
	spec.Policy = string(s.Policy)
	use := s.UseAgents
	spec.UseAgents = &use
	return spec
}

// TestScenarioReproducesCaseStudy is the byte-identity contract of the
// scenario engine: the Fig. 7 case study expressed as a scenario spec
// must reproduce the Table 3 reports of experiment.Run exactly — same
// grid, same workload, same schedules, same metrics — for all three
// Table 2 configurations. Any drift here means the declarative layer is
// running a different experiment than the paper's.
func TestScenarioReproducesCaseStudy(t *testing.T) {
	if testing.Short() {
		t.Skip("full 600-request case study")
	}
	p := DefaultParams()
	for _, s := range Configs {
		s := s
		t.Run(s.Label, func(t *testing.T) {
			t.Parallel()
			want, err := Run(s, p)
			if err != nil {
				t.Fatal(err)
			}
			got, err := scenario.Run(fig7Scenario(s), scenario.RunOptions{})
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got.Report, want.Report) {
				t.Fatalf("scenario report diverges from experiment %d:\nscenario:   %+v\nexperiment: %+v",
					s.ID, got.Report, want.Report)
			}
			if got.Requests != want.Requests || got.Completed != len(want.Records) {
				t.Fatalf("request counts diverge: scenario %d/%d, experiment %d/%d",
					got.Requests, got.Completed, want.Requests, len(want.Records))
			}
			if !got.AuditOK {
				t.Fatalf("scenario audit failed:\n%s", got.AuditSummary)
			}
		})
	}
}
