package experiment

import (
	"fmt"
	"strings"

	"repro/internal/agent"
	"repro/internal/audit"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Exp4 is the resilience configuration: experiment 3 (GA + agent
// discovery) re-run under a deterministic fault schedule. It extends the
// paper's Table 2, which never kills an agent.
var Exp4 = Setup{ID: 4, Policy: core.PolicyGA, UseAgents: true, Label: "GA + agents + faults"}

// ScaledFaultPlan returns the Experiment 4 fault schedule scaled to a
// request phase of the given length (seconds): three agents crash and
// recover at staggered points of the phase — S2 (a powerful resource
// that attracts many dispatches), S7 (a mid-tree Ultra 5) and S10 (a
// leaf-ish Ultra 1) — and the S1-S4 link partitions briefly while S10
// is still down. Crash windows overlap, so discovery must route around
// two dead agents at once.
func ScaledFaultPlan(phase float64) fault.Plan {
	at := func(f float64) float64 { return phase * f }
	return fault.Plan{
		Seed: 2003,
		Events: []fault.Event{
			{At: at(0.20), Kind: fault.Crash, Agent: "S2"},
			{At: at(0.40), Kind: fault.Recover, Agent: "S2"},
			{At: at(0.30), Kind: fault.Crash, Agent: "S7"},
			{At: at(0.55), Kind: fault.Recover, Agent: "S7"},
			{At: at(0.50), Kind: fault.Crash, Agent: "S10"},
			{At: at(0.75), Kind: fault.Recover, Agent: "S10"},
			{At: at(0.60), Kind: fault.Cut, A: "S1", B: "S4"},
			{At: at(0.70), Kind: fault.Heal, A: "S1", B: "S4"},
		},
	}
}

// DefaultFaultPlan returns the Experiment 4 schedule for the full §4.1
// request phase (600 requests at 1 s intervals).
func DefaultFaultPlan() fault.Plan { return ScaledFaultPlan(600) }

// ResilienceOutcome pairs the fault-free experiment 3 run with the
// faulted re-run over the identical workload.
type ResilienceOutcome struct {
	Baseline Outcome // experiment 3, no faults
	Faulted  Outcome // same workload under the fault plan
	Plan     fault.Plan
	Fault    fault.Stats
}

// RunResilience executes Experiment 4: the experiment 3 configuration
// over the case-study workload, first fault-free (the baseline), then
// with the fault plan injected. The faulted grid gets an advertisement
// TTL of three pull periods so dead resources stop attracting
// dispatches once their adverts go stale.
func RunResilience(p Params, plan fault.Plan) (ResilienceOutcome, error) {
	baseline, err := Run(Configs[2], p)
	if err != nil {
		return ResilienceOutcome{}, err
	}

	rec := p.Trace
	if p.Audit && rec == nil {
		rec = trace.NewRecorder(8*p.Requests + 64)
	}
	grid, err := core.New(CaseStudyResources(), core.Options{
		Policy:    Exp4.Policy,
		GA:        p.GA,
		Workers:   p.Workers,
		UseAgents: true,
		Seed:      p.Seed,
		Trace:     rec,
		FaultPlan: &plan,
		AdvertTTL: 3 * agent.DefaultPullPeriod,
	})
	if err != nil {
		return ResilienceOutcome{}, err
	}
	spec := workload.CaseStudySpec(p.Seed, AgentNames())
	spec.Count = p.Requests
	spec.Interval = p.Interval
	reqs, err := workload.Generate(spec)
	if err != nil {
		return ResilienceOutcome{}, err
	}
	if err := grid.SubmitWorkload(reqs); err != nil {
		return ResilienceOutcome{}, err
	}
	if err := grid.Run(); err != nil {
		return ResilienceOutcome{}, fmt.Errorf("experiment 4: %w", err)
	}
	report, err := grid.Metrics(float64(p.Requests) * p.Interval)
	if err != nil {
		return ResilienceOutcome{}, err
	}
	faulted := Outcome{
		Setup:      Exp4,
		Report:     report,
		Dispatches: grid.Dispatches(),
		Records:    grid.Records(),
		EvalStats:  grid.Engine().Stats(),
		Requests:   len(reqs),
	}
	if p.Audit {
		// The faulted run is where conservation earns its keep: crashes
		// re-dispatch pending tasks and lose unrescuable ones, and every
		// one of those must still net out to one terminal per request.
		res := audit.Check(audit.Run{
			Events:     rec.Events(),
			Records:    faulted.Records,
			Dispatches: faulted.Dispatches,
			Nodes:      grid.NodesByResource(),
			Report:     report,
			Dropped:    rec.Dropped(),
		})
		faulted.Audit = &res
	}
	return ResilienceOutcome{
		Baseline: baseline,
		Faulted:  faulted,
		Plan:     plan,
		Fault:    grid.FaultStats(),
	}, nil
}

// FormatResilience renders the Experiment 4 report: the fault schedule,
// the recovery bookkeeping, and the grid-level ε/υ/β of the faulted run
// against the fault-free baseline.
func FormatResilience(r ResilienceOutcome) string {
	var b strings.Builder
	b.WriteString("Experiment 4: resilience under agent failures\n\n")
	b.WriteString("Fault schedule:\n")
	b.WriteString(r.Plan.String())
	b.WriteString("\n")

	fmt.Fprintf(&b, "Requests submitted:    %d\n", r.Faulted.Requests)
	fmt.Fprintf(&b, "Tasks completed:       %d\n", len(r.Faulted.Records))
	fmt.Fprintf(&b, "Agent crashes:         %d (recoveries: %d)\n", r.Fault.Crashes, r.Fault.Recoveries)
	fmt.Fprintf(&b, "Tasks re-dispatched:   %d\n", r.Fault.Redispatched)
	fmt.Fprintf(&b, "Arrivals rerouted:     %d\n", r.Fault.Rerouted)
	fmt.Fprintf(&b, "Tasks lost:            %d\n", r.Fault.Lost)
	b.WriteString("\n")

	base, flt := r.Baseline.Report.Total, r.Faulted.Report.Total
	fmt.Fprintf(&b, "%-24s %10s %10s %10s\n", "grid totals", "exp 3", "exp 4", "delta")
	row := func(label, unit string, a, f float64) {
		fmt.Fprintf(&b, "%-24s %10.1f %10.1f %+10.1f  %s\n", label, a, f, f-a, unit)
	}
	row("epsilon (advance time)", "s", base.Epsilon, flt.Epsilon)
	row("upsilon (utilisation)", "%", base.Upsilon, flt.Upsilon)
	row("beta (balance level)", "%", base.Beta, flt.Beta)
	if r.Faulted.Audit != nil {
		b.WriteString("\n")
		b.WriteString(r.Faulted.Audit.Summary())
		b.WriteString("\n")
	}
	return b.String()
}
