package experiment

import (
	"encoding/csv"
	"fmt"
	"os"
	"path/filepath"
	"strconv"

	"repro/internal/metrics"
)

// WriteCSV exports the experiment outcomes as CSV files in dir — one file
// per reproduced artefact (table3.csv, fig8.csv, fig9.csv, fig10.csv,
// dispatch.csv) — for plotting the paper's line charts externally.
func WriteCSV(dir string, outs []Outcome) error {
	if len(outs) == 0 {
		return fmt.Errorf("experiment: no outcomes to export")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	if err := writeTable3(filepath.Join(dir, "table3.csv"), outs); err != nil {
		return err
	}
	figs := []struct {
		file  string
		value func(metrics.Report) float64
	}{
		{"fig8.csv", func(r metrics.Report) float64 { return r.Epsilon }},
		{"fig9.csv", func(r metrics.Report) float64 { return r.Upsilon }},
		{"fig10.csv", func(r metrics.Report) float64 { return r.Beta }},
	}
	for _, f := range figs {
		if err := writeTrend(filepath.Join(dir, f.file), outs, f.value); err != nil {
			return err
		}
	}
	return writeDispatch(filepath.Join(dir, "dispatch.csv"), outs)
}

func writeRows(path string, rows [][]string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := csv.NewWriter(f)
	if err := w.WriteAll(rows); err != nil {
		f.Close()
		return err
	}
	w.Flush()
	if err := w.Error(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func fmtF(v float64) string { return strconv.FormatFloat(v, 'f', 3, 64) }

func writeTable3(path string, outs []Outcome) error {
	header := []string{"resource"}
	for _, o := range outs {
		id := strconv.Itoa(o.Setup.ID)
		header = append(header, "eps_"+id, "ups_"+id, "beta_"+id)
	}
	rows := [][]string{header}
	for _, name := range append(namesOf(outs[0].Report), "Total") {
		row := []string{name}
		for _, o := range outs {
			rep := o.Report.Total
			if name != "Total" {
				rep, _ = o.Report.ResourceByName(name)
			}
			row = append(row, fmtF(rep.Epsilon), fmtF(rep.Upsilon), fmtF(rep.Beta))
		}
		rows = append(rows, row)
	}
	return writeRows(path, rows)
}

func writeTrend(path string, outs []Outcome, value func(metrics.Report) float64) error {
	header := []string{"resource"}
	for _, o := range outs {
		header = append(header, "exp"+strconv.Itoa(o.Setup.ID))
	}
	rows := [][]string{header}
	for _, name := range append(namesOf(outs[0].Report), "Total") {
		row := []string{name}
		for _, o := range outs {
			rep := o.Report.Total
			if name != "Total" {
				rep, _ = o.Report.ResourceByName(name)
			}
			row = append(row, fmtF(value(rep)))
		}
		rows = append(rows, row)
	}
	return writeRows(path, rows)
}

func writeDispatch(path string, outs []Outcome) error {
	header := []string{"resource"}
	for _, o := range outs {
		header = append(header, "exp"+strconv.Itoa(o.Setup.ID))
	}
	counts := make([]map[string]int, len(outs))
	for i, o := range outs {
		counts[i] = map[string]int{}
		for _, d := range o.Dispatches {
			counts[i][d.Resource]++
		}
	}
	rows := [][]string{header}
	for _, name := range namesOf(outs[0].Report) {
		row := []string{name}
		for i := range outs {
			row = append(row, strconv.Itoa(counts[i][name]))
		}
		rows = append(rows, row)
	}
	return writeRows(path, rows)
}
