package experiment

import (
	"encoding/csv"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
)

func TestSyntheticResourcesShape(t *testing.T) {
	specs := SyntheticResources(13, 3)
	if len(specs) != 13 {
		t.Fatalf("%d specs", len(specs))
	}
	if specs[0].Parent != "" {
		t.Fatal("first agent is not the head")
	}
	// b-ary tree parents: agent i+1 hangs under (i-1)/b + 1.
	if specs[1].Parent != "A1" || specs[4].Parent != "A2" || specs[12].Parent != "A4" {
		t.Fatalf("tree wiring wrong: %v %v %v", specs[1].Parent, specs[4].Parent, specs[12].Parent)
	}
	// The grid must build and validate as a single-headed hierarchy.
	if _, err := core.New(specs, core.Options{}); err != nil {
		t.Fatal(err)
	}
	// Degenerate arguments are clamped.
	one := SyntheticResources(0, 0)
	if len(one) != 1 {
		t.Fatalf("clamped size = %d", len(one))
	}
}

func TestScalabilityStudySmall(t *testing.T) {
	if testing.Short() {
		t.Skip("scalability study in short mode")
	}
	p := QuickParams()
	pts, err := RunScalabilityStudy([]int{3, 6}, 3, 20, p)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("%d points", len(pts))
	}
	for _, pt := range pts {
		if pt.Requests != 20*pt.Agents {
			t.Fatalf("point %+v: wrong request count", pt)
		}
		if pt.MeanHops < 0 || pt.MaxHops > pt.Agents {
			t.Fatalf("implausible hop counts: %+v", pt)
		}
		if pt.Upsilon <= 0 {
			t.Fatalf("zero utilisation: %+v", pt)
		}
	}
	out := FormatScalability(pts)
	if !strings.Contains(out, "agents") || !strings.Contains(out, "mean hops") {
		t.Fatalf("format output:\n%s", out)
	}
}

func TestAccuracyStudyBiasDegrades(t *testing.T) {
	if testing.Short() {
		t.Skip("accuracy study in short mode")
	}
	p := QuickParams()
	pts, err := RunAccuracyStudy([]NoiseCase{{0, 0}, {0.2, 0.5}}, p)
	if err != nil {
		t.Fatal(err)
	}
	exact, biased := pts[0], pts[1]
	if exact.Rel != 0 || biased.Bias != 0.5 {
		t.Fatalf("points mislabelled: %+v", pts)
	}
	// Systematically optimistic predictions must hurt deadline compliance
	// and ε (the §5 accuracy question).
	if biased.MetRate >= exact.MetRate {
		t.Errorf("bias did not reduce the met rate: %v -> %v", exact.MetRate, biased.MetRate)
	}
	if biased.Epsilon >= exact.Epsilon {
		t.Errorf("bias did not reduce ε: %v -> %v", exact.Epsilon, biased.Epsilon)
	}
	if exact.Requests != p.Requests || biased.Requests != p.Requests {
		t.Errorf("task accounting wrong: %+v", pts)
	}
	out := FormatAccuracy(pts)
	if !strings.Contains(out, "met rate") {
		t.Fatalf("format output:\n%s", out)
	}
}

func TestWriteCSV(t *testing.T) {
	p := QuickParams()
	p.Requests = 30
	o, err := Run(Configs[0], p)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := WriteCSV(dir, []Outcome{o}); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"table3.csv", "fig8.csv", "fig9.csv", "fig10.csv", "dispatch.csv"} {
		f, err := os.Open(filepath.Join(dir, name))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		rows, err := csv.NewReader(f).ReadAll()
		f.Close()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		// Header + 12 resources (+ Total except dispatch.csv).
		want := 14
		if name == "dispatch.csv" {
			want = 13
		}
		if len(rows) != want {
			t.Fatalf("%s has %d rows, want %d", name, len(rows), want)
		}
		if rows[0][0] != "resource" {
			t.Fatalf("%s header: %v", name, rows[0])
		}
	}
	if err := WriteCSV(dir, nil); err == nil {
		t.Fatal("empty export accepted")
	}
}

func TestPushAdvertsOptionRuns(t *testing.T) {
	p := QuickParams()
	p.Requests = 60
	grid, err := core.New(CaseStudyResources(), core.Options{
		Policy: core.PolicyGA, GA: p.GA, Seed: p.Seed,
		UseAgents: true, PushAdverts: true,
		PullPeriod: 300, // starve the pulls; pushes must carry the load
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < p.Requests; i++ {
		if err := grid.SubmitAt(float64(i), AgentNames()[i%12], "fft", 200); err != nil {
			t.Fatal(err)
		}
	}
	if err := grid.Run(); err != nil {
		t.Fatal(err)
	}
	pushes := 0
	for _, name := range AgentNames() {
		a, _ := grid.Hierarchy().Lookup(name)
		pushes += a.Stats().PushesSent
	}
	if pushes == 0 {
		t.Fatal("push-advertisement mode sent no pushes")
	}
	if len(grid.Records()) != p.Requests {
		t.Fatalf("%d records", len(grid.Records()))
	}
}
