package experiment

import (
	"testing"

	"repro/internal/pace"
	"repro/internal/telemetry"
)

// TestTelemetryTablesByteIdentical renders Table 1 and Table 3 from an
// instrumented and an uninstrumented run of the Table 2 sweep and
// requires the formatted bytes to match exactly: the registry observes
// the experiments, it never participates in them.
func TestTelemetryTablesByteIdentical(t *testing.T) {
	p := QuickParams()
	plain, err := RunAll(p)
	if err != nil {
		t.Fatal(err)
	}
	p.Telemetry = true
	p.SamplePeriod = 10
	instr, err := RunAll(p)
	if err != nil {
		t.Fatal(err)
	}

	if a, b := FormatTable3(plain), FormatTable3(instr); a != b {
		t.Fatalf("Table 3 diverged under telemetry:\n--- plain ---\n%s--- instrumented ---\n%s", a, b)
	}

	// Table 1 renders PACE predictions through an engine; an instrumented
	// engine (snapshot-time collector only) must predict identically.
	hw, _ := pace.LookupHardware("SGIOrigin2000")
	lib := pace.CaseStudyLibrary()
	t1plain, err := FormatTable1(lib, pace.NewEngine(), hw, 16)
	if err != nil {
		t.Fatal(err)
	}
	instrEngine := pace.NewEngine()
	instrEngine.RegisterMetrics(telemetry.NewRegistry())
	t1instr, err := FormatTable1(lib, instrEngine, hw, 16)
	if err != nil {
		t.Fatal(err)
	}
	if t1plain != t1instr {
		t.Fatal("Table 1 diverged under telemetry")
	}

	// Each outcome carries its own export with the right totals.
	for i, o := range instr {
		if o.Telemetry == nil {
			t.Fatalf("experiment %d missing telemetry", i+1)
		}
		if got := o.Telemetry.Snapshot.Counters["grid_requests_total"]; got != uint64(o.Requests) {
			t.Fatalf("experiment %d: grid_requests_total = %d, want %d", i+1, got, o.Requests)
		}
	}
	for i, o := range plain {
		if o.Telemetry != nil {
			t.Fatalf("uninstrumented experiment %d has telemetry", i+1)
		}
	}
}
