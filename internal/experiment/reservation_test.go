package experiment

import (
	"strings"
	"testing"
)

func TestReservationStudy(t *testing.T) {
	p := QuickParams()
	p.Requests = 100
	pts, err := RunReservationStudy(p, []float64{0, 0.2})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("%d points, want 2", len(pts))
	}
	base, mixed := pts[0].Result, pts[1].Result
	if base.ResvRequested != 0 {
		t.Fatalf("share-0 point reserved %d requests", base.ResvRequested)
	}
	if mixed.ResvRequested == 0 {
		t.Fatal("share-0.2 point reserved nothing")
	}
	if mixed.ResvConfirmed+mixed.ResvRejected != mixed.ResvRequested {
		t.Fatalf("admission accounting: %+v", mixed)
	}
	for _, pt := range pts {
		if !pt.Result.AuditOK {
			t.Fatalf("share %g audit failed:\n%s", pt.Share, pt.Result.AuditSummary)
		}
	}
	out := FormatReservation(pts)
	for _, want := range []string{"Experiment 6", "guar-hit", "be-eps/s"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
}

// TestReservationStudyShareZeroMatchesExp3 anchors the study: its
// share-0 point is the untouched experiment-3 configuration, so its grid
// totals must match a plain case-study scenario run byte for byte.
func TestReservationStudyShareZeroMatchesExp3(t *testing.T) {
	p := QuickParams()
	p.Requests = 100
	pts, err := RunReservationStudy(p, []float64{0})
	if err != nil {
		t.Fatal(err)
	}
	outs, err := Run(Configs[2], p)
	if err != nil {
		t.Fatal(err)
	}
	a, b := pts[0].Result.Report.Total, outs.Report.Total
	if a.Epsilon != b.Epsilon || a.Upsilon != b.Upsilon || a.Beta != b.Beta {
		t.Fatalf("share-0 totals diverge from experiment 3:\nstudy: %+v\nexp3:  %+v", a, b)
	}
}
