package experiment

import (
	"fmt"
	"strings"

	"repro/internal/metrics"
	"repro/internal/pace"
)

// FormatTable1 renders the Table 1 prediction matrix: each application's
// predicted execution time on 1..maxProcs processors of the reference
// platform, plus its deadline requirement domain.
func FormatTable1(lib *pace.Library, engine *pace.Engine, hw pace.Hardware, maxProcs int) (string, error) {
	var b strings.Builder
	fmt.Fprintf(&b, "Predicted execution times (s) on %s, 1..%d processors\n\n", hw.Name, maxProcs)
	fmt.Fprintf(&b, "%-10s %-10s", "app", "deadline")
	for n := 1; n <= maxProcs; n++ {
		fmt.Fprintf(&b, "%4d", n)
	}
	b.WriteString("\n")
	for _, m := range lib.Models() {
		fmt.Fprintf(&b, "%-10s [%g,%g]", m.Name, m.DeadlineLo, m.DeadlineHi)
		pad := 10 - len(fmt.Sprintf("[%g,%g]", m.DeadlineLo, m.DeadlineHi))
		if pad > 0 {
			b.WriteString(strings.Repeat(" ", pad))
		}
		for n := 1; n <= maxProcs; n++ {
			v, err := engine.Predict(m, hw, n)
			if err != nil {
				return "", err
			}
			fmt.Fprintf(&b, "%4.0f", v)
		}
		b.WriteString("\n")
	}
	return b.String(), nil
}

// FormatTable2 renders the experiment design grid.
func FormatTable2() string {
	var b strings.Builder
	b.WriteString("Experiment design (Table 2)\n\n")
	fmt.Fprintf(&b, "%-28s %3d %3d %3d\n", "", 1, 2, 3)
	row := func(label string, marks [3]bool) {
		fmt.Fprintf(&b, "%-28s", label)
		for _, m := range marks {
			if m {
				b.WriteString("   x")
			} else {
				b.WriteString("    ")
			}
		}
		b.WriteString("\n")
	}
	row("FIFO algorithm", [3]bool{true, false, false})
	row("GA algorithm", [3]bool{false, true, true})
	row("Agent-based service discovery", [3]bool{false, false, true})
	return b.String()
}

// FormatTable3 renders the Table 3 layout: ε, υ and β per agent and for
// the overall grid, one column group per experiment.
func FormatTable3(outs []Outcome) string {
	var b strings.Builder
	b.WriteString("Case study results (Table 3)\n\n")
	fmt.Fprintf(&b, "%-6s", "")
	for _, o := range outs {
		fmt.Fprintf(&b, " | %8s %6s %6s", fmt.Sprintf("e%d eps", o.Setup.ID), "ups%", "beta%")
	}
	b.WriteString("\n")
	if len(outs) == 0 {
		return b.String()
	}
	for _, name := range append(namesOf(outs[0].Report), "Total") {
		fmt.Fprintf(&b, "%-6s", name)
		for _, o := range outs {
			rep := o.Report.Total
			if name != "Total" {
				rep, _ = o.Report.ResourceByName(name)
			}
			fmt.Fprintf(&b, " | %8.0f %6.0f %6.0f", rep.Epsilon, rep.Upsilon, rep.Beta)
		}
		b.WriteString("\n")
	}
	return b.String()
}

func namesOf(rep metrics.GridReport) []string {
	out := make([]string, 0, len(rep.PerResource))
	for _, r := range rep.PerResource {
		out = append(out, r.Name)
	}
	return out
}

// Trend identifies which §3.3 metric a Figs. 8–10 series reports.
type Trend string

// The three trend figures.
const (
	TrendEpsilon Trend = "epsilon" // Fig. 8: advance time of execution completion
	TrendUpsilon Trend = "upsilon" // Fig. 9: resource utilisation rate
	TrendBeta    Trend = "beta"    // Fig. 10: load balancing level
)

// FormatTrends renders one of Figs. 8–10 as a series table: one row per
// agent (plus the overall grid), one column per experiment, which is the
// data behind the paper's line charts.
func FormatTrends(outs []Outcome, tr Trend) string {
	var b strings.Builder
	var title, unit string
	switch tr {
	case TrendEpsilon:
		title, unit = "Fig. 8: advance time of application execution completion", "s"
	case TrendUpsilon:
		title, unit = "Fig. 9: resource utilisation rate", "%"
	case TrendBeta:
		title, unit = "Fig. 10: load balancing level", "%"
	default:
		return fmt.Sprintf("unknown trend %q", tr)
	}
	fmt.Fprintf(&b, "%s (%s)\n\n%-6s", title, unit, "")
	for _, o := range outs {
		fmt.Fprintf(&b, " %8s", fmt.Sprintf("exp %d", o.Setup.ID))
	}
	b.WriteString("\n")
	if len(outs) == 0 {
		return b.String()
	}
	value := func(rep metrics.Report) float64 {
		switch tr {
		case TrendEpsilon:
			return rep.Epsilon
		case TrendUpsilon:
			return rep.Upsilon
		default:
			return rep.Beta
		}
	}
	for _, name := range append(namesOf(outs[0].Report), "Total") {
		fmt.Fprintf(&b, "%-6s", name)
		for _, o := range outs {
			rep := o.Report.Total
			if name != "Total" {
				rep, _ = o.Report.ResourceByName(name)
			}
			fmt.Fprintf(&b, " %8.1f", value(rep))
		}
		b.WriteString("\n")
	}
	return b.String()
}

// FormatDispatchSummary summarises where requests landed, exposing the
// redistribution effect of experiment 3 ("the more powerful platform
// receives more requests").
func FormatDispatchSummary(outs []Outcome) string {
	var b strings.Builder
	b.WriteString("Requests dispatched per resource\n\n")
	fmt.Fprintf(&b, "%-6s", "")
	for _, o := range outs {
		fmt.Fprintf(&b, " %8s", fmt.Sprintf("exp %d", o.Setup.ID))
	}
	b.WriteString("\n")
	if len(outs) == 0 {
		return b.String()
	}
	counts := make([]map[string]int, len(outs))
	for i, o := range outs {
		counts[i] = map[string]int{}
		for _, d := range o.Dispatches {
			counts[i][d.Resource]++
		}
	}
	for _, name := range namesOf(outs[0].Report) {
		fmt.Fprintf(&b, "%-6s", name)
		for i := range outs {
			fmt.Fprintf(&b, " %8d", counts[i][name])
		}
		b.WriteString("\n")
	}
	return b.String()
}
