package experiment

import (
	"math/bits"
	"testing"

	"repro/internal/core"
	"repro/internal/scheduler"
	"repro/internal/workload"
)

// TestCaseStudyInvariants runs each Table 2 configuration at reduced scale
// and asserts the system-wide invariants that hold no matter which
// scheduler or discovery mechanism is active: every request executes
// exactly once, no node is double-booked, tasks never start before
// arrival or use nodes outside their resource, and the dispatch log
// matches the execution records.
func TestCaseStudyInvariants(t *testing.T) {
	if testing.Short() {
		t.Skip("invariant sweep in short mode")
	}
	p := QuickParams()
	p.Requests = 150
	for _, setup := range Configs {
		setup := setup
		t.Run(setup.Label, func(t *testing.T) {
			grid, err := core.New(CaseStudyResources(), core.Options{
				Policy: setup.Policy, GA: p.GA, Seed: p.Seed, UseAgents: setup.UseAgents,
			})
			if err != nil {
				t.Fatal(err)
			}
			spec := workload.CaseStudySpec(p.Seed, AgentNames())
			spec.Count = p.Requests
			reqs, err := workload.Generate(spec)
			if err != nil {
				t.Fatal(err)
			}
			if err := grid.SubmitWorkload(reqs); err != nil {
				t.Fatal(err)
			}
			if err := grid.Run(); err != nil {
				t.Fatal(err)
			}

			recs := grid.Records()
			if len(recs) != p.Requests {
				t.Fatalf("%d records for %d requests", len(recs), p.Requests)
			}
			checkNoDoubleBooking(t, recs, grid.NodesByResource())

			// Dispatch log and records agree resource by resource.
			dispatched := map[string]int{}
			for _, d := range grid.Dispatches() {
				dispatched[d.Resource]++
			}
			executed := map[string]int{}
			for _, r := range recs {
				executed[r.Resource]++
			}
			for res, n := range dispatched {
				if executed[res] != n {
					t.Fatalf("%s: %d dispatched but %d executed", res, n, executed[res])
				}
			}
		})
	}
}

func checkNoDoubleBooking(t *testing.T, recs []scheduler.Record, nodes map[string]int) {
	t.Helper()
	type iv struct{ a, b float64 }
	byNode := map[string]map[int][]iv{}
	for _, r := range recs {
		if r.Start < r.Arrival-1e-9 {
			t.Fatalf("task %d on %s started %v before arrival %v", r.TaskID, r.Resource, r.Start, r.Arrival)
		}
		if r.End < r.Start {
			t.Fatalf("task %d on %s ends before it starts: %+v", r.TaskID, r.Resource, r)
		}
		n := nodes[r.Resource]
		if r.Mask == 0 || r.Mask&^(uint64(1)<<uint(n)-1) != 0 {
			t.Fatalf("task %d mask %b outside %s's %d nodes", r.TaskID, r.Mask, r.Resource, n)
		}
		if byNode[r.Resource] == nil {
			byNode[r.Resource] = map[int][]iv{}
		}
		for m := r.Mask; m != 0; m &= m - 1 {
			node := bits.TrailingZeros64(m)
			byNode[r.Resource][node] = append(byNode[r.Resource][node], iv{r.Start, r.End})
		}
	}
	for res, perNode := range byNode {
		for node, ivs := range perNode {
			for i := 0; i < len(ivs); i++ {
				for j := i + 1; j < len(ivs); j++ {
					a, b := ivs[i], ivs[j]
					if a.a < b.b-1e-9 && b.a < a.b-1e-9 {
						t.Fatalf("%s node %d double-booked: [%v,%v] and [%v,%v]", res, node, a.a, a.b, b.a, b.b)
					}
				}
			}
		}
	}
}

// TestCaseStudyInvariantsUnderNoise repeats the invariant sweep with
// noisy execution times, where the clamping logic in promotion is what
// keeps nodes single-booked.
func TestCaseStudyInvariantsUnderNoise(t *testing.T) {
	if testing.Short() {
		t.Skip("noisy invariant sweep in short mode")
	}
	p := QuickParams()
	p.Requests = 120
	grid, err := core.New(CaseStudyResources(), core.Options{
		Policy: core.PolicyGA, GA: p.GA, Seed: p.Seed, UseAgents: true,
		PredictionError: 0.4, PredictionBias: 0.3,
	})
	if err != nil {
		t.Fatal(err)
	}
	spec := workload.CaseStudySpec(p.Seed, AgentNames())
	spec.Count = p.Requests
	reqs, err := workload.Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	if err := grid.SubmitWorkload(reqs); err != nil {
		t.Fatal(err)
	}
	if err := grid.Run(); err != nil {
		t.Fatal(err)
	}
	recs := grid.Records()
	if len(recs) != p.Requests {
		t.Fatalf("%d records for %d requests", len(recs), p.Requests)
	}
	checkNoDoubleBooking(t, recs, grid.NodesByResource())
}
