package sim

import (
	"container/heap"
	"fmt"
	"math"
)

// Event is a callback scheduled to run at a virtual time. Events at equal
// times run in the order they were scheduled (FIFO tie-break via sequence
// numbers), which keeps simulations deterministic.
type Event struct {
	At  float64
	seq uint64
	Run func(now float64)
}

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].At != h[j].At {
		return h[i].At < h[j].At
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*Event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Simulator couples a virtual clock with an event queue. It is the driver
// for the case-study experiments: workload arrivals, agent advertisement
// pulls and scheduler wake-ups are all simulator events.
//
// Simulator is not safe for concurrent use; the case study is a sequential
// discrete-event simulation (the paper's agents are concurrent processes,
// but under test mode their interleaving is fixed by the event order).
type Simulator struct {
	clock Clock
	queue eventHeap
	seq   uint64
}

// NewSimulator returns an empty simulator at virtual time 0.
func NewSimulator() *Simulator { return &Simulator{} }

// Now returns the current virtual time in seconds.
func (s *Simulator) Now() float64 { return s.clock.Now() }

// At schedules fn to run at absolute virtual time t. Scheduling in the past
// panics: it indicates a causality bug in the caller.
func (s *Simulator) At(t float64, fn func(now float64)) {
	if t < s.clock.Now() {
		panic(fmt.Sprintf("sim: event scheduled in the past: at=%v now=%v", t, s.clock.Now()))
	}
	s.seq++
	heap.Push(&s.queue, &Event{At: t, seq: s.seq, Run: fn})
}

// After schedules fn to run d seconds from now.
func (s *Simulator) After(d float64, fn func(now float64)) {
	if d < 0 {
		panic("sim: negative delay")
	}
	s.At(s.clock.Now()+d, fn)
}

// Every schedules fn to run now+d, now+2d, ... until fn returns false.
func (s *Simulator) Every(d float64, fn func(now float64) bool) {
	if d <= 0 {
		panic("sim: non-positive period")
	}
	var tick func(now float64)
	tick = func(now float64) {
		if fn(now) {
			s.After(d, tick)
		}
	}
	s.After(d, tick)
}

// Pending reports the number of queued events.
func (s *Simulator) Pending() int { return len(s.queue) }

// Step runs the earliest pending event, advancing the clock to its time.
// It reports whether an event was run.
func (s *Simulator) Step() bool {
	if len(s.queue) == 0 {
		return false
	}
	e := heap.Pop(&s.queue).(*Event)
	s.clock.Advance(e.At)
	e.Run(e.At)
	return true
}

// RunUntil executes events with At <= t in order, then advances the clock
// to exactly t.
func (s *Simulator) RunUntil(t float64) {
	for len(s.queue) > 0 && s.queue[0].At <= t {
		s.Step()
	}
	s.clock.Advance(t)
}

// RunAll drains the event queue. maxEvents bounds the number of events to
// protect against runaway self-rescheduling loops; pass 0 for the default
// of 10 million.
func (s *Simulator) RunAll(maxEvents int) {
	if maxEvents <= 0 {
		maxEvents = 10_000_000
	}
	for i := 0; i < maxEvents; i++ {
		if !s.Step() {
			return
		}
	}
	panic("sim: RunAll exceeded event budget; runaway event loop?")
}

// NextEventAt returns the time of the earliest pending event, or +Inf when
// the queue is empty.
func (s *Simulator) NextEventAt() float64 {
	if len(s.queue) == 0 {
		return math.Inf(1)
	}
	return s.queue[0].At
}
