package sim

import (
	"fmt"
	"math"
)

// Event is a callback scheduled to run at a virtual time. Events at equal
// times run in the order they were scheduled (FIFO tie-break via sequence
// numbers), which keeps simulations deterministic.
type Event struct {
	At  float64
	seq uint64
	Run func(now float64)
}

// eventQueue is a binary min-heap of Event values ordered by (At, seq).
// It is hand-rolled rather than container/heap so Push/Pop move values in
// a flat slice instead of boxing each event behind an interface — at 10⁷+
// events the per-event pointer allocation and the interface conversions
// dominate the dispatch hot path.
type eventQueue []Event

func (q eventQueue) less(i, j int) bool {
	if q[i].At != q[j].At {
		return q[i].At < q[j].At
	}
	return q[i].seq < q[j].seq
}

func (q *eventQueue) push(e Event) {
	*q = append(*q, e)
	h := *q
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
}

func (q *eventQueue) pop() Event {
	h := *q
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h[n] = Event{} // release the Run closure for GC
	h = h[:n]
	*q = h
	// Sift the moved element down.
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && h.less(l, smallest) {
			smallest = l
		}
		if r < n && h.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			break
		}
		h[i], h[smallest] = h[smallest], h[i]
		i = smallest
	}
	return top
}

// Simulator couples a virtual clock with an event queue. It is the driver
// for the case-study experiments: workload arrivals, agent advertisement
// pulls and scheduler wake-ups are all simulator events.
//
// Simulator is not safe for concurrent use; the case study is a sequential
// discrete-event simulation (the paper's agents are concurrent processes,
// but under test mode their interleaving is fixed by the event order).
type Simulator struct {
	clock    Clock
	queue    eventQueue
	seq      uint64
	executed uint64
}

// NewSimulator returns an empty simulator at virtual time 0.
func NewSimulator() *Simulator { return &Simulator{} }

// Now returns the current virtual time in seconds.
func (s *Simulator) Now() float64 { return s.clock.Now() }

// At schedules fn to run at absolute virtual time t. Scheduling in the past
// panics: it indicates a causality bug in the caller.
func (s *Simulator) At(t float64, fn func(now float64)) {
	if t < s.clock.Now() {
		panic(fmt.Sprintf("sim: event scheduled in the past: at=%v now=%v", t, s.clock.Now()))
	}
	s.seq++
	s.queue.push(Event{At: t, seq: s.seq, Run: fn})
}

// After schedules fn to run d seconds from now.
func (s *Simulator) After(d float64, fn func(now float64)) {
	if d < 0 {
		panic("sim: negative delay")
	}
	s.At(s.clock.Now()+d, fn)
}

// Every schedules fn to run now+d, now+2d, ... until fn returns false.
func (s *Simulator) Every(d float64, fn func(now float64) bool) {
	if d <= 0 {
		panic("sim: non-positive period")
	}
	var tick func(now float64)
	tick = func(now float64) {
		if fn(now) {
			s.After(d, tick)
		}
	}
	s.After(d, tick)
}

// Pending reports the number of queued events.
func (s *Simulator) Pending() int { return len(s.queue) }

// Executed reports the number of events run so far — the numerator of a
// simulated-events-per-second throughput figure.
func (s *Simulator) Executed() uint64 { return s.executed }

// Step runs the earliest pending event, advancing the clock to its time.
// It reports whether an event was run.
func (s *Simulator) Step() bool {
	if len(s.queue) == 0 {
		return false
	}
	e := s.queue.pop()
	s.clock.Advance(e.At)
	s.executed++
	e.Run(e.At)
	return true
}

// RunUntil executes events with At <= t in order, then advances the clock
// to exactly t.
func (s *Simulator) RunUntil(t float64) {
	for len(s.queue) > 0 && s.queue[0].At <= t {
		s.Step()
	}
	s.clock.Advance(t)
}

// RunAll drains the event queue. maxEvents bounds the number of events to
// protect against runaway self-rescheduling loops; pass 0 for the default
// of 10 million. Callers whose workloads legitimately exceed the default
// (mega-grid scenarios) must derive and pass an explicit bound — see
// core.Run — rather than rely on the default and truncate silently.
func (s *Simulator) RunAll(maxEvents int) {
	if maxEvents <= 0 {
		maxEvents = 10_000_000
	}
	for i := 0; i < maxEvents; i++ {
		if !s.Step() {
			return
		}
	}
	panic(fmt.Sprintf("sim: RunAll exceeded event budget of %d; runaway event loop?", maxEvents))
}

// NextEventAt returns the time of the earliest pending event, or +Inf when
// the queue is empty.
func (s *Simulator) NextEventAt() float64 {
	if len(s.queue) == 0 {
		return math.Inf(1)
	}
	return s.queue[0].At
}
