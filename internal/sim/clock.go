package sim

import "fmt"

// Clock tracks virtual time in seconds. The zero value is a clock at time 0.
//
// Virtual time is monotone: Advance panics when asked to move backwards,
// which catches event-ordering bugs early.
type Clock struct {
	now float64
}

// Now returns the current virtual time in seconds.
func (c *Clock) Now() float64 { return c.now }

// Advance moves the clock forward to t.
func (c *Clock) Advance(t float64) {
	if t < c.now {
		panic(fmt.Sprintf("sim: clock moved backwards: %v -> %v", c.now, t))
	}
	c.now = t
}
