package sim

import (
	"math"
	"testing"
)

func TestClockAdvances(t *testing.T) {
	var c Clock
	if c.Now() != 0 {
		t.Fatalf("zero clock at %v, want 0", c.Now())
	}
	c.Advance(5)
	c.Advance(5) // advancing to the same time is allowed
	c.Advance(7.5)
	if c.Now() != 7.5 {
		t.Fatalf("clock at %v, want 7.5", c.Now())
	}
}

func TestClockPanicsOnBackwards(t *testing.T) {
	var c Clock
	c.Advance(10)
	defer func() {
		if recover() == nil {
			t.Fatal("Advance(9) after Advance(10) did not panic")
		}
	}()
	c.Advance(9)
}

func TestSimulatorRunsEventsInTimeOrder(t *testing.T) {
	s := NewSimulator()
	var order []int
	s.At(3, func(float64) { order = append(order, 3) })
	s.At(1, func(float64) { order = append(order, 1) })
	s.At(2, func(float64) { order = append(order, 2) })
	s.RunAll(0)
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("events ran in order %v", order)
	}
	if s.Now() != 3 {
		t.Fatalf("clock ended at %v, want 3", s.Now())
	}
}

func TestSimulatorFIFOTieBreak(t *testing.T) {
	s := NewSimulator()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(5, func(float64) { order = append(order, i) })
	}
	s.RunAll(0)
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events ran out of scheduling order: %v", order)
		}
	}
}

func TestSimulatorEventsScheduledDuringRun(t *testing.T) {
	s := NewSimulator()
	var times []float64
	s.At(1, func(now float64) {
		times = append(times, now)
		s.After(2, func(now float64) { times = append(times, now) })
	})
	s.RunAll(0)
	if len(times) != 2 || times[0] != 1 || times[1] != 3 {
		t.Fatalf("event times = %v, want [1 3]", times)
	}
}

func TestSimulatorPastSchedulingPanics(t *testing.T) {
	s := NewSimulator()
	s.At(10, func(float64) {})
	s.RunAll(0)
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past did not panic")
		}
	}()
	s.At(5, func(float64) {})
}

func TestSimulatorRunUntil(t *testing.T) {
	s := NewSimulator()
	var ran []float64
	for _, at := range []float64{1, 2, 3, 4, 5} {
		at := at
		s.At(at, func(now float64) { ran = append(ran, now) })
	}
	s.RunUntil(3)
	if len(ran) != 3 {
		t.Fatalf("RunUntil(3) ran %d events, want 3", len(ran))
	}
	if s.Now() != 3 {
		t.Fatalf("clock at %v after RunUntil(3)", s.Now())
	}
	if s.Pending() != 2 {
		t.Fatalf("%d events pending, want 2", s.Pending())
	}
	s.RunAll(0)
	if len(ran) != 5 || s.Now() != 5 {
		t.Fatalf("after RunAll: ran=%v now=%v", ran, s.Now())
	}
}

func TestSimulatorEvery(t *testing.T) {
	s := NewSimulator()
	var ticks []float64
	s.Every(10, func(now float64) bool {
		ticks = append(ticks, now)
		return now < 50
	})
	s.RunAll(0)
	want := []float64{10, 20, 30, 40, 50}
	if len(ticks) != len(want) {
		t.Fatalf("ticks = %v, want %v", ticks, want)
	}
	for i := range want {
		if ticks[i] != want[i] {
			t.Fatalf("ticks = %v, want %v", ticks, want)
		}
	}
}

func TestSimulatorEveryRejectsBadPeriod(t *testing.T) {
	s := NewSimulator()
	defer func() {
		if recover() == nil {
			t.Fatal("Every(0) did not panic")
		}
	}()
	s.Every(0, func(float64) bool { return false })
}

func TestSimulatorNegativeDelayPanics(t *testing.T) {
	s := NewSimulator()
	defer func() {
		if recover() == nil {
			t.Fatal("After(-1) did not panic")
		}
	}()
	s.After(-1, func(float64) {})
}

func TestSimulatorNextEventAt(t *testing.T) {
	s := NewSimulator()
	if !math.IsInf(s.NextEventAt(), 1) {
		t.Fatalf("empty queue NextEventAt = %v, want +Inf", s.NextEventAt())
	}
	s.At(4, func(float64) {})
	s.At(2, func(float64) {})
	if s.NextEventAt() != 2 {
		t.Fatalf("NextEventAt = %v, want 2", s.NextEventAt())
	}
}

func TestSimulatorRunAllBudget(t *testing.T) {
	s := NewSimulator()
	// A self-perpetuating event chain must trip the budget rather than spin.
	var tick func(now float64)
	tick = func(now float64) { s.After(1, tick) }
	s.After(1, tick)
	defer func() {
		if recover() == nil {
			t.Fatal("runaway loop did not trip the event budget")
		}
	}()
	s.RunAll(1000)
}

func TestSimulatorStepReturnsFalseWhenEmpty(t *testing.T) {
	s := NewSimulator()
	if s.Step() {
		t.Fatal("Step on empty simulator reported work")
	}
}
