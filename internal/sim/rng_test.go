package sim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a := NewRNG(42)
	b := NewRNG(42)
	for i := 0; i < 1000; i++ {
		if av, bv := a.Uint64(), b.Uint64(); av != bv {
			t.Fatalf("step %d: streams diverged: %d vs %d", i, av, bv)
		}
	}
}

func TestRNGSeedsDiffer(t *testing.T) {
	a := NewRNG(1)
	b := NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("seeds 1 and 2 produced %d/100 identical values", same)
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", v)
		}
	}
}

func TestRNGFloat64Mean(t *testing.T) {
	r := NewRNG(99)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Float64 mean = %v, want ~0.5", mean)
	}
}

func TestRNGIntnBounds(t *testing.T) {
	r := NewRNG(3)
	for n := 1; n <= 20; n++ {
		for i := 0; i < 200; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestRNGIntnCoversAllValues(t *testing.T) {
	r := NewRNG(11)
	seen := map[int]int{}
	const n = 7
	for i := 0; i < 7000; i++ {
		seen[r.Intn(n)]++
	}
	for v := 0; v < n; v++ {
		if seen[v] == 0 {
			t.Fatalf("Intn(%d) never produced %d", n, v)
		}
		// Expect ~1000 each; allow wide slack.
		if seen[v] < 700 || seen[v] > 1300 {
			t.Fatalf("Intn(%d) produced %d with suspicious frequency %d/7000", n, v, seen[v])
		}
	}
}

func TestRNGIntnPanicsOnNonPositive(t *testing.T) {
	r := NewRNG(1)
	for _, n := range []int{0, -1, -100} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Intn(%d) did not panic", n)
				}
			}()
			r.Intn(n)
		}()
	}
}

func TestRNGUniformIn(t *testing.T) {
	r := NewRNG(5)
	for i := 0; i < 5000; i++ {
		v := r.UniformIn(4, 200)
		if v < 4 || v > 200 {
			t.Fatalf("UniformIn(4,200) = %v out of range", v)
		}
	}
	if got := r.UniformIn(7, 7); got != 7 {
		t.Fatalf("UniformIn(7,7) = %v, want 7", got)
	}
}

func TestRNGUniformInPanicsOnInvertedBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("UniformIn(2,1) did not panic")
		}
	}()
	NewRNG(1).UniformIn(2, 1)
}

func TestRNGIntIn(t *testing.T) {
	r := NewRNG(13)
	seen := map[int]bool{}
	for i := 0; i < 1000; i++ {
		v := r.IntIn(3, 6)
		if v < 3 || v > 6 {
			t.Fatalf("IntIn(3,6) = %d out of range", v)
		}
		seen[v] = true
	}
	for v := 3; v <= 6; v++ {
		if !seen[v] {
			t.Fatalf("IntIn(3,6) never produced %d", v)
		}
	}
	if got := r.IntIn(5, 5); got != 5 {
		t.Fatalf("IntIn(5,5) = %d, want 5", got)
	}
}

func TestRNGPermIsPermutation(t *testing.T) {
	r := NewRNG(21)
	cfg := &quick.Config{MaxCount: 200}
	prop := func(nRaw uint8) bool {
		n := int(nRaw%50) + 1
		p := r.Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestRNGSplitIndependence(t *testing.T) {
	parent := NewRNG(77)
	child := parent.Split()
	// The child stream must not simply replay the parent stream.
	same := 0
	for i := 0; i < 64; i++ {
		if parent.Uint64() == child.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("child stream tracks parent: %d/64 values equal", same)
	}
}

func TestRNGBoolProbability(t *testing.T) {
	r := NewRNG(31)
	n, hits := 100000, 0
	for i := 0; i < n; i++ {
		if r.Bool(0.25) {
			hits++
		}
	}
	frac := float64(hits) / float64(n)
	if math.Abs(frac-0.25) > 0.01 {
		t.Fatalf("Bool(0.25) hit rate = %v", frac)
	}
	if r.Bool(0) {
		t.Fatal("Bool(0) returned true")
	}
	if !r.Bool(1.1) {
		t.Fatal("Bool(1.1) returned false")
	}
}

func TestMul64MatchesBigArithmetic(t *testing.T) {
	cases := []struct{ a, b uint64 }{
		{0, 0}, {1, 1}, {math.MaxUint64, 2}, {math.MaxUint64, math.MaxUint64},
		{1 << 32, 1 << 32}, {0xdeadbeefcafebabe, 0x123456789abcdef0},
	}
	for _, c := range cases {
		hi, lo := mul64(c.a, c.b)
		// Verify via the identity a*b = hi*2^64 + lo using modular checks:
		// low 64 bits must equal wrapping product.
		if lo != c.a*c.b {
			t.Fatalf("mul64(%d,%d) lo = %d, want %d", c.a, c.b, lo, c.a*c.b)
		}
		// Check hi via 32-bit decomposition independently.
		const mask = 1<<32 - 1
		a0, a1 := c.a&mask, c.a>>32
		b0, b1 := c.b&mask, c.b>>32
		carry := ((a0*b0)>>32 + (a1*b0)&mask + (a0*b1)&mask) >> 32
		wantHi := a1*b1 + (a1*b0)>>32 + (a0*b1)>>32 + carry
		if hi != wantHi {
			t.Fatalf("mul64(%d,%d) hi = %d, want %d", c.a, c.b, hi, wantHi)
		}
	}
}

// TestExpFloat64Distribution checks the exponential variate's first two
// moments and support: mean ~1, variance ~1, all samples strictly
// positive and finite. The tolerances are loose enough to be stable for
// a fixed seed yet tight enough to catch a wrong inversion (e.g. using
// Float64 directly, mean 0.5, or a half-normal, variance ≈ 0.36).
func TestExpFloat64Distribution(t *testing.T) {
	r := NewRNG(2026)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := r.ExpFloat64()
		if v <= 0 || math.IsInf(v, 0) || math.IsNaN(v) {
			t.Fatalf("sample %d: ExpFloat64 = %v, want finite positive", i, v)
		}
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean-1) > 0.02 {
		t.Fatalf("ExpFloat64 mean = %v, want ~1", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Fatalf("ExpFloat64 variance = %v, want ~1", variance)
	}
	// Memorylessness spot check: P(X > 2) should be ~e^-2.
	r = NewRNG(2026)
	tail := 0
	for i := 0; i < n; i++ {
		if r.ExpFloat64() > 2 {
			tail++
		}
	}
	got := float64(tail) / n
	want := math.Exp(-2)
	if math.Abs(got-want) > 0.005 {
		t.Fatalf("P(X>2) = %v, want ~%v", got, want)
	}
}

// TestSplitDeterminism pins the Split contract the scenario sweep runner
// relies on: derived streams are a pure function of the parent state, so
// a sweep that pre-splits one RNG per run point gets identical per-run
// streams no matter how many workers later consume them or in what order
// the runs execute.
func TestSplitDeterminism(t *testing.T) {
	drain := func(r *RNG, n int) []uint64 {
		out := make([]uint64, n)
		for i := range out {
			out[i] = r.Uint64()
		}
		return out
	}

	// Two parents from the same seed derive identical child sequences.
	a, b := NewRNG(17), NewRNG(17)
	for round := 0; round < 5; round++ {
		ca, cb := a.Split(), b.Split()
		va, vb := drain(ca, 64), drain(cb, 64)
		for i := range va {
			if va[i] != vb[i] {
				t.Fatalf("round %d step %d: split streams diverged", round, i)
			}
		}
	}

	// Splitting advances the parent exactly one step, so pre-splitting k
	// children then using the parent equals interleaving any other way.
	p1, p2 := NewRNG(99), NewRNG(99)
	kids := make([]*RNG, 4)
	for i := range kids {
		kids[i] = p1.Split()
	}
	for i := range kids {
		ref := NewRNG(p2.Uint64())
		got, want := drain(kids[i], 32), drain(ref, 32)
		for j := range got {
			if got[j] != want[j] {
				t.Fatalf("child %d step %d: split != NewRNG(parent.Uint64())", i, j)
			}
		}
	}

	// Sibling streams must not collide.
	p := NewRNG(5)
	s1, s2 := p.Split(), p.Split()
	same := 0
	for i := 0; i < 100; i++ {
		if s1.Uint64() == s2.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("sibling splits produced %d/100 identical values", same)
	}
}
