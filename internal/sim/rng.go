// Package sim provides the discrete-event simulation substrate used by the
// grid load-balancing experiments: a virtual clock, an event queue and a
// deterministic random number generator.
//
// The paper's case study runs in "test mode", where tasks are not actually
// executed and predicted execution times are assumed accurate (§3.2). Under
// test mode the whole ten-minute experiment is a deterministic function of
// the workload seed, so it can be replayed in virtual time.
package sim

import "math"

// RNG is a deterministic pseudo-random number generator based on
// xoshiro256** seeded via SplitMix64. It is self-contained so that
// experiment results do not depend on the Go runtime's math/rand
// implementation details and remain reproducible across Go releases.
//
// RNG is not safe for concurrent use; give each goroutine its own stream
// via Split.
type RNG struct {
	s [4]uint64
}

// NewRNG returns a generator seeded deterministically from seed.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	sm := seed
	for i := range r.s {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		r.s[i] = z ^ (z >> 31)
	}
	return r
}

// Split derives an independent generator from the current stream. The
// derived stream is deterministic given the parent state.
func (r *RNG) Split() *RNG {
	return NewRNG(r.Uint64())
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next value in the stream.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Float64 returns a uniformly distributed value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniformly distributed value in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn called with non-positive n")
	}
	// Lemire's multiply-shift rejection method for unbiased bounded values.
	bound := uint64(n)
	for {
		v := r.Uint64()
		hi, lo := mul64(v, bound)
		if lo >= bound || lo >= (-bound)%bound {
			return int(hi)
		}
	}
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask = 1<<32 - 1
	a0, a1 := a&mask, a>>32
	b0, b1 := b&mask, b>>32
	w0 := a0 * b0
	t := a1*b0 + w0>>32
	w1 := t&mask + a0*b1
	hi = a1*b1 + t>>32 + w1>>32
	lo = a * b
	return hi, lo
}

// UniformIn returns a uniformly distributed value in [lo, hi]. When lo == hi
// the result is exactly lo. It panics if hi < lo.
func (r *RNG) UniformIn(lo, hi float64) float64 {
	if hi < lo {
		panic("sim: UniformIn called with hi < lo")
	}
	return lo + (hi-lo)*r.Float64()
}

// ExpFloat64 returns an exponentially distributed value with mean 1
// (rate 1), via inversion sampling. Scale by 1/λ for rate λ — the
// inter-arrival time of a Poisson process with rate λ is
// ExpFloat64()/λ. The result is strictly positive and finite:
// Float64 never returns 1, so the log argument stays in (0, 1].
func (r *RNG) ExpFloat64() float64 {
	return -math.Log(1 - r.Float64())
}

// IntIn returns a uniformly distributed integer in the inclusive range
// [lo, hi]. It panics if hi < lo.
func (r *RNG) IntIn(lo, hi int) int {
	if hi < lo {
		panic("sim: IntIn called with hi < lo")
	}
	return lo + r.Intn(hi-lo+1)
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.Shuffle(len(p), func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}

// Shuffle pseudo-randomises the order of n elements using swap.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool {
	return r.Float64() < p
}
