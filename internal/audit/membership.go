package audit

import (
	"fmt"

	"repro/internal/trace"
)

// Membership invariants (g), layered on (a)–(e):
//
//	(g1) no post-departure work — once a resource's leave event is
//	     observed, no dispatch, redispatch, migrate-redispatch or start
//	     lands on it strictly after the leave instant. Tasks already
//	     running at the leave may complete there (the grid drains only
//	     the unstarted queue); a join for the same name lifts the bar.
//	(g2) atomic re-homing — every rehome-detach pairs with a
//	     rehome-attach for the same agent at the same virtual instant
//	     (and both follow a same-instant rehome-propose), so the tree is
//	     never observably between parents. An unmatched detach or
//	     propose at the end of the run is a violation.
//	(g3) lifecycle sanity — an agent leaves only while present (joined
//	     at run start or via a join event) and at most once between
//	     joins.
//
// Membership events are grid-scoped, not request-scoped: they join on
// the agent name carried in Event.Agent/Resource. The no-loss and
// no-double-run proof for a leaver's drained queue needs nothing here —
// the drain reuses the migrate-offer/withdraw/redispatch chain, which
// invariant (a) already folds.

// rehomeChain is one in-flight propose→detach→attach chain.
type rehomeChain struct {
	agent    string
	time     float64
	detached bool
}

// observeMembership folds one grid-level membership event.
func (o *Observer) observeMembership(ev trace.Event) {
	name := ev.Agent
	if name == "" {
		name = ev.Resource
	}
	if name == "" {
		o.add("identity", ev.ReqID, fmt.Sprintf("%s event at t=%g names no agent", ev.Kind, ev.Time))
		return
	}
	switch ev.Kind {
	case trace.KindJoin:
		o.counts.Joins++
		// A join (or re-join) lifts the post-departure bar (g1).
		if o.leftAt != nil {
			delete(o.leftAt, name)
		}
		o.present[name] = true
	case trace.KindLeave:
		o.counts.Leaves++
		// (g3) leaving requires being there. Resources in the static
		// node map are present from the start; anything else must have
		// joined first.
		if _, static := o.nodes[name]; !static && !o.present[name] {
			o.add("membership", ev.ReqID, fmt.Sprintf("%s left at t=%g without ever joining", name, ev.Time))
		}
		if o.leftAt == nil {
			o.leftAt = map[string]float64{}
		}
		if t, gone := o.leftAt[name]; gone {
			o.add("membership", ev.ReqID, fmt.Sprintf("%s left at t=%g but had already left at t=%g", name, ev.Time, t))
		}
		o.leftAt[name] = ev.Time
		delete(o.present, name)
	case trace.KindRehomePropose:
		o.counts.RehomeProposes++
		o.rehomes = append(o.rehomes, &rehomeChain{agent: name, time: ev.Time})
	case trace.KindRehomeDetach:
		c := o.openRehome(name, ev.Time)
		if c == nil {
			o.add("membership", ev.ReqID, fmt.Sprintf("rehome-detach of %s at t=%g without a same-instant rehome-propose", name, ev.Time))
			return
		}
		if c.detached {
			o.add("membership", ev.ReqID, fmt.Sprintf("second rehome-detach of %s at t=%g in one chain", name, ev.Time))
			return
		}
		c.detached = true
	case trace.KindRehomeAttach:
		c := o.openRehome(name, ev.Time)
		if c == nil || !c.detached {
			o.add("membership", ev.ReqID, fmt.Sprintf("rehome-attach of %s at t=%g without a same-instant rehome-detach", name, ev.Time))
			return
		}
		o.counts.Rehomes++
		o.closeRehome(c)
	}
}

// openRehome finds the open chain for the agent at the given instant.
func (o *Observer) openRehome(name string, t float64) *rehomeChain {
	for _, c := range o.rehomes {
		if c.agent == name && c.time == t {
			return c
		}
	}
	return nil
}

// closeRehome retires a completed chain.
func (o *Observer) closeRehome(done *rehomeChain) {
	for i, c := range o.rehomes {
		if c == done {
			o.rehomes = append(o.rehomes[:i], o.rehomes[i+1:]...)
			return
		}
	}
}

// checkDeparted raises (g1) for a placement or start event landing on a
// resource strictly after its leave.
func (o *Observer) checkDeparted(ev trace.Event) {
	if o.leftAt == nil || ev.Resource == "" {
		return
	}
	if t, gone := o.leftAt[ev.Resource]; gone && ev.Time > t {
		o.add("membership", ev.ReqID, fmt.Sprintf("%s on %s at t=%g, after the resource left at t=%g", ev.Kind, ev.Resource, ev.Time, t))
	}
}

// finishMembership raises (g2) for chains still open at the end of the
// run, in observation order.
func (o *Observer) finishMembership() {
	for _, c := range o.rehomes {
		stage := "rehome-propose"
		if c.detached {
			stage = "rehome-detach"
		}
		o.add("membership", 0, fmt.Sprintf("%s of %s at t=%g never completed its attach: the subtree is between parents", stage, c.agent, c.time))
	}
}
