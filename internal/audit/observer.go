package audit

import (
	"fmt"
	"math"
	"math/bits"
	"sort"

	"repro/internal/agent"
	"repro/internal/metrics"
	"repro/internal/scheduler"
	"repro/internal/trace"
)

// Observer is the streaming form of Check: it consumes lifecycle events,
// execution records and dispatch-log entries as the run produces them and
// proves the same invariants (a)–(e) holding only O(in-flight) state. A
// request's per-lifecycle state is retired the moment its terminal event
// (complete or fail) is observed, and the exclusivity interval sets are
// pruned as the virtual clock's safe horizon advances, so a 1M-request
// run audits in memory bounded by the in-flight window, not the run
// length.
//
// Feeding contract (the grid satisfies it naturally): a request's
// execution record is observed before its start/complete events (the
// executor emits the record at promotion, then the events), and a
// dispatch-log entry before its dispatch event. Advance(now) promises
// every record observed from here on starts strictly after now — the
// grid calls it after each clock advance, when no planned start at or
// before now remains unpromoted.
//
// Observer is not safe for concurrent use; the grid serialises all
// observation on the simulation loop.
type Observer struct {
	nodes map[string]int

	// retire controls early retirement. Live runs retire a request at
	// its terminal event; the Check replay keeps state to the end so a
	// malformed trace (events after a terminal) is judged with full
	// context, exactly as the batch auditor did.
	retire bool

	counts    Counts
	stream    []Violation // violations in observation order
	anyEvents bool

	inflight map[uint64]*reqState
	order    []uint64 // insertion order of live states (finish fallback)

	retired    bitset
	retiredBig map[uint64]bool // ids too large for the bitset

	// exclusivity intervals per resource per node, pruned on Advance.
	// ivCount tracks the stored-interval population and ivFloor its size
	// after the last sweep, so pruning can be amortized (see Advance).
	ivs     map[string][][]interval
	ivCount int
	ivFloor int
	horizon float64

	// streaming §3.3 recomputation: unclipped per-node busy sums plus
	// the record span, checked against the report window at Finish.
	busy     map[string][]float64
	advance  float64
	tasks    int
	minStart float64
	maxEnd   float64

	dispatchIdx int // running index into the dispatch log (for identity messages)
	peakStates  int

	// reservation bookings by resource and reservation ID, plus their
	// observation order for a deterministic Finish (see reserve.go).
	resv      map[string]map[uint64]*resvBooking
	resvOrder []*resvBooking

	// dynamic-membership state (see membership.go): departure times per
	// resource, runtime joiners seen, and open re-homing chains.
	leftAt  map[string]float64
	present map[string]bool
	rehomes []*rehomeChain
}

type interval struct {
	start, end float64
	reqID      uint64
	taskID     int
}

type dispatchKey struct {
	resource string
	taskID   int
}

// reqState is one in-flight request's lifecycle state — everything the
// per-request checks of the batch auditor derive from the full event
// list, folded incrementally.
type reqState struct {
	eventCount int
	arrives    int
	dispatches int
	redisp     int
	starts     int
	completes  int
	fails      int
	migOffers  int
	migWith    int
	migRedisp  int

	firstKind   trace.Kind
	prevKind    trace.Kind
	prevTime    float64
	arriveTimes []float64

	recCount int
	rec      scheduler.Record // first observed record

	// migration-chain scan state (checkMigrationChain, folded).
	migrateSeen     bool
	placed          string
	pendingWithdraw int

	// final placement decision (dispatch / redispatch / migrate-redispatch).
	hasFinal      bool
	finalKind     trace.Kind
	finalResource string
	finalTaskID   int

	// dispatch-log entries logged for this request, and the dispatch
	// events seen to match them against at finalisation.
	logged       []agent.Dispatch
	dispatchSeen []dispatchKey
	agreement    []Violation // record-agreement violations, valid only if recCount stays 1

	// confirmed-reservation window bound to this request (audit (f2)).
	hasResv            bool
	resvStart, resvEnd float64
}

// NewObserver returns a streaming auditor for a grid with the given node
// counts per resource.
func NewObserver(nodes map[string]int) *Observer {
	return &Observer{
		nodes:    nodes,
		retire:   true,
		inflight: map[uint64]*reqState{},
		ivs:      map[string][][]interval{},
		busy:     map[string][]float64{},
		present:  map[string]bool{},
		minStart: math.Inf(1),
		maxEnd:   math.Inf(-1),
	}
}

func (o *Observer) add(check string, reqID uint64, detail string) {
	o.stream = append(o.stream, Violation{Check: check, ReqID: reqID, Detail: detail})
}

// state returns (creating if needed) the in-flight state for a request.
func (o *Observer) state(id uint64) *reqState {
	s := o.inflight[id]
	if s == nil {
		s = &reqState{}
		o.inflight[id] = s
		o.order = append(o.order, id)
		if len(o.inflight) > o.peakStates {
			o.peakStates = len(o.inflight)
		}
	}
	return s
}

func (o *Observer) isRetired(id uint64) bool {
	if o.retiredBig != nil && o.retiredBig[id] {
		return true
	}
	return o.retired.has(id)
}

func (o *Observer) markRetired(id uint64) {
	const bitsetMax = 1 << 26 // ~8 MB of bits; larger ids spill to a map
	if id < bitsetMax {
		o.retired.set(id)
		return
	}
	if o.retiredBig == nil {
		o.retiredBig = map[uint64]bool{}
	}
	o.retiredBig[id] = true
}

// Record implements trace.Sink so the observer can be attached straight
// to a trace recorder.
func (o *Observer) Record(ev trace.Event) { o.Observe(ev) }

// Observe folds one lifecycle event into the audit.
func (o *Observer) Observe(ev trace.Event) {
	o.anyEvents = true
	switch ev.Kind {
	case trace.KindReserveHold, trace.KindReserveConfirm, trace.KindReserveRelease, trace.KindReserveExpire:
		o.observeReserve(ev)
		return
	case trace.KindJoin, trace.KindLeave, trace.KindRehomePropose, trace.KindRehomeDetach, trace.KindRehomeAttach:
		o.observeMembership(ev)
		return
	case trace.KindDispatch, trace.KindRedispatch, trace.KindMigrateRedispatch, trace.KindStart:
		o.checkDeparted(ev)
	}
	if !ev.Kind.TaskBearing() {
		return
	}
	if ev.ReqID == 0 {
		o.add("identity", 0, fmt.Sprintf("%s event at t=%g (resource %q, task %d) carries no request ID", ev.Kind, ev.Time, ev.Resource, ev.TaskID))
		return
	}
	o.countEvent(ev.Kind)
	if o.isRetired(ev.ReqID) {
		// Nothing may be recorded for a request after its terminal event
		// — the retired state is gone, so this cannot be folded, only
		// flagged (the batch auditor would have found the same lifecycle
		// inconsistent).
		o.add("conservation", ev.ReqID, fmt.Sprintf("%s event at t=%g after the request terminated", ev.Kind, ev.Time))
		return
	}
	s := o.state(ev.ReqID)
	if s.eventCount == 0 {
		o.counts.Requests++
		s.firstKind = ev.Kind
	} else if ev.Time < s.prevTime {
		// (c) lifecycle-time monotonicity along the causal event order.
		o.add("timing", ev.ReqID, fmt.Sprintf("%s at t=%g precedes %s at t=%g", ev.Kind, ev.Time, s.prevKind, s.prevTime))
	}
	s.eventCount++
	s.prevKind, s.prevTime = ev.Kind, ev.Time

	switch ev.Kind {
	case trace.KindArrive:
		s.arrives++
		s.arriveTimes = append(s.arriveTimes, ev.Time)
	case trace.KindDispatch:
		s.dispatches++
		s.placed = ev.Resource
		s.setFinal(ev)
		s.dispatchSeen = append(s.dispatchSeen, dispatchKey{ev.Resource, ev.TaskID})
	case trace.KindRedispatch:
		s.redisp++
		s.placed = ev.Resource
		s.setFinal(ev)
	case trace.KindStart:
		s.starts++
		if s.migrateSeen {
			if s.pendingWithdraw > 0 {
				o.add("conservation", ev.ReqID, "task started while withdrawn from every queue")
			}
			if s.placed != "" && ev.Resource != s.placed {
				o.add("placement", ev.ReqID, fmt.Sprintf("task started on %s but was last placed on %s", ev.Resource, s.placed))
			}
		}
		if s.recCount == 1 {
			rec := s.rec
			if ev.Time != rec.Start || ev.Resource != rec.Resource || ev.TaskID != rec.TaskID {
				s.agreement = append(s.agreement, Violation{Check: "timing", ReqID: ev.ReqID,
					Detail: fmt.Sprintf("start event (t=%g, %s task %d) disagrees with record (t=%g, %s task %d)",
						ev.Time, ev.Resource, ev.TaskID, rec.Start, rec.Resource, rec.TaskID)})
			}
		}
	case trace.KindComplete:
		s.completes++
		if s.recCount == 1 {
			rec := s.rec
			if ev.Time != rec.End || ev.Resource != rec.Resource {
				s.agreement = append(s.agreement, Violation{Check: "timing", ReqID: ev.ReqID,
					Detail: fmt.Sprintf("complete event (t=%g, %s) disagrees with record (t=%g, %s)",
						ev.Time, ev.Resource, rec.End, rec.Resource)})
			}
		}
	case trace.KindFail:
		s.fails++
	case trace.KindMigrateOffer:
		s.migOffers++
		s.migrateSeen = true
		if s.placed != "" && ev.Resource != s.placed {
			o.add("conservation", ev.ReqID, fmt.Sprintf("migrate-offer from %s but the task was placed on %s", ev.Resource, s.placed))
		}
	case trace.KindMigrateWithdraw:
		s.migWith++
		s.migrateSeen = true
		if s.migOffers < s.migWith {
			o.add("conservation", ev.ReqID, "migrate-withdraw without a preceding migrate-offer")
		}
		if s.pendingWithdraw > 0 {
			o.add("conservation", ev.ReqID, "second migrate-withdraw before the previous chain re-dispatched")
		}
		if s.placed != "" && ev.Resource != s.placed {
			o.add("conservation", ev.ReqID, fmt.Sprintf("migrate-withdraw from %s but the task was placed on %s", ev.Resource, s.placed))
		}
		s.pendingWithdraw++
	case trace.KindMigrateRedispatch:
		s.migRedisp++
		s.migrateSeen = true
		if s.pendingWithdraw == 0 {
			o.add("conservation", ev.ReqID, "migrate-redispatch without a migrate-withdraw: the task would run twice")
		} else {
			s.pendingWithdraw--
		}
		s.placed = ev.Resource
		s.setFinal(ev)
	}

	if o.retire && (ev.Kind == trace.KindComplete || ev.Kind == trace.KindFail) {
		o.finalize(ev.ReqID, s)
		delete(o.inflight, ev.ReqID)
		o.markRetired(ev.ReqID)
	}
}

func (s *reqState) setFinal(ev trace.Event) {
	s.hasFinal = true
	s.finalKind = ev.Kind
	s.finalResource = ev.Resource
	s.finalTaskID = ev.TaskID
}

func (o *Observer) countEvent(k trace.Kind) {
	switch k {
	case trace.KindArrive:
		o.counts.Arrives++
	case trace.KindDispatch:
		o.counts.Dispatches++
	case trace.KindRedispatch:
		o.counts.Redispatches++
	case trace.KindComplete:
		o.counts.Completes++
	case trace.KindFail:
		o.counts.Fails++
	case trace.KindMigrateOffer:
		o.counts.MigrateOffers++
	case trace.KindMigrateWithdraw:
		o.counts.MigrateWithdraws++
	case trace.KindMigrateRedispatch:
		o.counts.MigrateRedispatches++
	}
}

// ObserveRecord folds one committed execution record into the audit:
// record timing (c), node exclusivity (b) via sorted-interval insertion,
// and the §3.3 accumulators for the metrics recomputation (e).
func (o *Observer) ObserveRecord(rec scheduler.Record) {
	o.counts.Records++

	// (c) on the record itself.
	if rec.Start < rec.Arrival {
		o.add("timing", rec.ReqID, fmt.Sprintf("task %d on %s starts at t=%g before its arrival t=%g", rec.TaskID, rec.Resource, rec.Start, rec.Arrival))
	}
	if rec.End < rec.Start {
		o.add("timing", rec.ReqID, fmt.Sprintf("task %d on %s ends at t=%g before its start t=%g", rec.TaskID, rec.Resource, rec.End, rec.Start))
	}

	// (b) exclusivity, and (e) accumulation, for known resources.
	n, known := o.nodes[rec.Resource]
	switch {
	case !known:
		o.add("exclusivity", rec.ReqID, fmt.Sprintf("record on unknown resource %q", rec.Resource))
	case rec.Mask == 0:
		o.add("exclusivity", rec.ReqID, fmt.Sprintf("record task %d on %s allocates no nodes", rec.TaskID, rec.Resource))
	default:
		nodes := o.ivs[rec.Resource]
		if nodes == nil {
			nodes = make([][]interval, n)
			o.ivs[rec.Resource] = nodes
		}
		for m := rec.Mask; m != 0; m &= m - 1 {
			i := bits.TrailingZeros64(m)
			if i >= n {
				o.add("exclusivity", rec.ReqID, fmt.Sprintf("record task %d uses node %d of %d on %s", rec.TaskID, i, n, rec.Resource))
				continue
			}
			nodes[i] = o.insertInterval(nodes[i], interval{rec.Start, rec.End, rec.ReqID, rec.TaskID}, rec.Resource, i)
			o.ivCount++
		}
	}
	if known {
		o.tasks++
		o.advance += rec.Deadline - rec.End
		if rec.Start < o.minStart {
			o.minStart = rec.Start
		}
		if rec.End > o.maxEnd {
			o.maxEnd = rec.End
		}
		busy := o.busy[rec.Resource]
		if busy == nil {
			busy = make([]float64, n)
			o.busy[rec.Resource] = busy
		}
		if rec.End > rec.Start {
			for m := rec.Mask; m != 0; m &= m - 1 {
				if i := bits.TrailingZeros64(m); i < len(busy) {
					busy[i] += rec.End - rec.Start
				}
			}
		}
	}

	if rec.ReqID == 0 {
		o.add("identity", 0, fmt.Sprintf("execution record task %d on %s carries no request ID", rec.TaskID, rec.Resource))
		return
	}
	if o.isRetired(rec.ReqID) {
		o.add("conservation", rec.ReqID, fmt.Sprintf("execution record (task %d on %s) after the request terminated", rec.TaskID, rec.Resource))
		return
	}
	s := o.state(rec.ReqID)
	s.recCount++
	if s.recCount == 1 {
		s.rec = rec
	}
}

// insertInterval places iv into the node's (start, end)-sorted interval
// list, flagging overlap with its neighbours. Blame follows the batch
// auditor's convention: the interval sorting later is reported against
// the one before it.
func (o *Observer) insertInterval(ivs []interval, iv interval, resource string, node int) []interval {
	pos := sort.Search(len(ivs), func(i int) bool {
		if ivs[i].start != iv.start {
			return ivs[i].start > iv.start
		}
		return ivs[i].end > iv.end
	})
	if pos > 0 && iv.start < ivs[pos-1].end {
		prev := ivs[pos-1]
		o.add("exclusivity", iv.reqID, fmt.Sprintf(
			"task %d [%g, %g) overlaps task %d (req %d) [%g, %g) on %s node %d",
			iv.taskID, iv.start, iv.end, prev.taskID, prev.reqID, prev.start, prev.end, resource, node))
	}
	if pos < len(ivs) && ivs[pos].start < iv.end {
		next := ivs[pos]
		o.add("exclusivity", next.reqID, fmt.Sprintf(
			"task %d [%g, %g) overlaps task %d (req %d) [%g, %g) on %s node %d",
			next.taskID, next.start, next.end, iv.taskID, iv.reqID, iv.start, iv.end, resource, node))
	}
	ivs = append(ivs, interval{})
	copy(ivs[pos+1:], ivs[pos:])
	ivs[pos] = iv
	return ivs
}

// ObserveDispatch folds one dispatch-log entry; it is matched against the
// request's dispatch events at finalisation.
func (o *Observer) ObserveDispatch(d agent.Dispatch) {
	idx := o.dispatchIdx
	o.dispatchIdx++
	if d.ReqID == 0 {
		o.add("identity", 0, fmt.Sprintf("dispatch log entry %d (%s task %d) carries no request ID", idx, d.Resource, d.TaskID))
		return
	}
	if o.isRetired(d.ReqID) {
		o.add("placement", d.ReqID, fmt.Sprintf("dispatch log entry (%s task %d) after the request terminated", d.Resource, d.TaskID))
		return
	}
	o.state(d.ReqID).logged = append(o.state(d.ReqID).logged, d)
}

// Advance records the grid's post-advance safe horizon — the caller
// promises every record observed from here on starts at or after now —
// and prunes exclusivity intervals that can no longer overlap anything.
// The sweep walks every node list, so it is amortized: it runs only once
// the interval population has doubled since the last sweep (with a small
// floor). Advance is called on every grid event; without the gate the
// audit would cost O(resources) per event, exactly the scaling wall the
// due-heap advance removed from the grid itself.
func (o *Observer) Advance(now float64) {
	if now > o.horizon {
		o.horizon = now
	}
	if o.ivCount < 2*o.ivFloor+64 {
		return
	}
	o.sweep()
}

// sweep drops every interval that ended at or before the horizon.
func (o *Observer) sweep() {
	for _, nodes := range o.ivs {
		for i, ivs := range nodes {
			// Real runs fill each node sequentially, so retired
			// intervals form a prefix; stop at the first survivor.
			j := 0
			for j < len(ivs) && ivs[j].end <= o.horizon {
				j++
			}
			if j == 0 {
				continue
			}
			o.ivCount -= j
			nodes[i] = append(ivs[:0], ivs[j:]...)
		}
	}
	o.ivFloor = o.ivCount
}

// finalize runs the end-of-lifecycle checks the batch auditor performs in
// checkRequest, over the folded state.
func (o *Observer) finalize(id uint64, s *reqState) {
	if s.eventCount == 0 {
		if s.recCount > 0 {
			o.add("conservation", id, "execution record without any lifecycle events")
		}
		if o.anyEvents {
			for range s.logged {
				o.add("placement", id, "dispatch log entry has no lifecycle events")
			}
		}
		return
	}

	// (a) conservation.
	switch {
	case s.arrives == 0:
		o.add("conservation", id, fmt.Sprintf("lifecycle events without an arrival (%d events)", s.eventCount))
	case s.arrives > 1:
		o.add("conservation", id, fmt.Sprintf("%d arrivals for one request", s.arrives))
	}
	if s.completes+s.fails != 1 {
		o.add("conservation", id, fmt.Sprintf("request terminated %d times (%d completes, %d fails); want exactly one terminal", s.completes+s.fails, s.completes, s.fails))
	}
	if s.starts != s.completes {
		o.add("conservation", id, fmt.Sprintf("%d starts but %d completes", s.starts, s.completes))
	}
	if s.completes == 1 && s.dispatches+s.redisp+s.migRedisp == 0 {
		o.add("conservation", id, "request executed without any dispatch")
	}
	if s.recCount != s.completes {
		o.add("conservation", id, fmt.Sprintf("%d execution records for %d completions; redispatch chains must net to one execution", s.recCount, s.completes))
	}
	if s.migrateSeen && s.pendingWithdraw > 0 {
		o.add("conservation", id, "migrate-withdraw never re-dispatched: the task vanished")
	}

	// (c) first recorded event must be the arrival.
	if s.firstKind != trace.KindArrive && s.arrives > 0 {
		o.add("timing", id, fmt.Sprintf("first recorded event is %s, not the arrival", s.firstKind))
	}

	if s.recCount == 1 && s.hasResv {
		// (f2) a confirmed reservation executes within its booked window.
		if s.rec.Start < s.resvStart || s.rec.Start >= s.resvEnd {
			o.add("reservation", id, fmt.Sprintf("reserved task %d on %s started at t=%g, outside its booked window [%g,%g)",
				s.rec.TaskID, s.rec.Resource, s.rec.Start, s.resvStart, s.resvEnd))
		}
	}

	if s.recCount == 1 {
		// (c) the record must agree with its lifecycle events.
		for _, at := range s.arriveTimes {
			if at > s.rec.Arrival {
				o.add("timing", id, fmt.Sprintf("record arrival t=%g precedes the grid arrival t=%g", s.rec.Arrival, at))
			}
		}
		o.stream = append(o.stream, s.agreement...)
		// (d) the final placement decision must name the executing resource.
		if s.hasFinal && (s.finalResource != s.rec.Resource || s.finalTaskID != s.rec.TaskID) {
			o.add("placement", id, fmt.Sprintf("final %s targeted %s task %d but the execution record is %s task %d",
				s.finalKind, s.finalResource, s.finalTaskID, s.rec.Resource, s.rec.TaskID))
		}
	}

	// (d) each logged dispatch must match a dispatch event.
	for _, d := range s.logged {
		matched := false
		for _, k := range s.dispatchSeen {
			if k.resource == d.Resource && k.taskID == d.TaskID {
				matched = true
				break
			}
		}
		if !matched {
			o.add("placement", id, fmt.Sprintf("dispatch log names %s task %d but no dispatch event agrees", d.Resource, d.TaskID))
		}
	}
}

// InFlight reports the number of live request states — the audit's
// working-set size, which stays at the in-flight window on real runs.
func (o *Observer) InFlight() int { return len(o.inflight) }

// PeakInFlight reports the high-water mark of live request states.
func (o *Observer) PeakInFlight() int { return o.peakStates }

// Finish finalises every request still in flight, recomputes the §3.3
// totals against the report, and returns the verdict. The observer must
// not be fed after Finish.
func (o *Observer) Finish(report metrics.GridReport, dropped uint64) Result {
	var res Result
	if dropped > 0 {
		res.Truncated = true
		res.Violations = append(res.Violations, Violation{Check: "trace", ReqID: 0,
			Detail: fmt.Sprintf("event ring dropped %d events; conservation is unprovable (size the recorder to the workload)", dropped)})
	}

	// Finalise survivors in request order for a deterministic report.
	live := make([]uint64, 0, len(o.inflight))
	for _, id := range o.order {
		if _, ok := o.inflight[id]; ok {
			live = append(live, id)
		}
	}
	sort.Slice(live, func(i, j int) bool { return live[i] < live[j] })
	for _, id := range live {
		o.finalize(id, o.inflight[id])
		delete(o.inflight, id)
	}

	o.finishReserve()
	o.finishMembership()
	o.checkMetrics(report)

	res.Counts = o.counts
	res.Violations = append(res.Violations, o.stream...)
	return res
}

// checkMetrics verifies (e) from the streamed accumulators. The busy
// sums are unclipped — streaming cannot revisit records once the window
// is known — so the report window must enclose every record; metrics
// windows do by construction (metrics.WindowOver spans [0, latest
// completion]), and a window that does not is reported loudly rather
// than recomputed wrongly.
func (o *Observer) checkMetrics(report metrics.GridReport) {
	w := report.Window
	t := w.End - w.Start
	if t <= 0 {
		o.add("metrics", 0, fmt.Sprintf("report window [%g, %g] is empty", w.Start, w.End))
		return
	}
	if o.tasks > 0 && (w.Start > o.minStart || w.End < o.maxEnd) {
		o.add("metrics", 0, fmt.Sprintf("window [%g, %g] does not enclose the records (span [%g, %g]); the streaming audit cannot clip busy time after the fact", w.Start, w.End, o.minStart, o.maxEnd))
		return
	}
	var util []float64
	names := make([]string, 0, len(o.nodes))
	for name := range o.nodes {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		busy := o.busy[name]
		for i := 0; i < o.nodes[name]; i++ {
			var b float64
			if i < len(busy) {
				b = busy[i]
			}
			util = append(util, b/t*100)
		}
	}
	var eps float64
	if o.tasks > 0 {
		eps = o.advance / float64(o.tasks)
	}
	var ups float64
	for _, u := range util {
		ups += u
	}
	if len(util) > 0 {
		ups /= float64(len(util))
	}
	var ss float64
	for _, u := range util {
		ss += (u - ups) * (u - ups)
	}
	var dev float64
	if len(util) > 0 {
		dev = math.Sqrt(ss / float64(len(util)))
	}
	var beta float64
	if ups > 0 {
		beta = (1 - dev/ups) * 100
		if beta < 0 {
			beta = 0
		}
	}

	const tol = 1e-6
	total := report.Total
	if o.tasks != total.Tasks {
		o.add("metrics", 0, fmt.Sprintf("report counts %d tasks; records hold %d", total.Tasks, o.tasks))
	}
	if math.Abs(eps-total.Epsilon) > tol {
		o.add("metrics", 0, fmt.Sprintf("epsilon recomputes to %.9g; report says %.9g", eps, total.Epsilon))
	}
	if math.Abs(ups-total.Upsilon) > tol {
		o.add("metrics", 0, fmt.Sprintf("upsilon recomputes to %.9g; report says %.9g", ups, total.Upsilon))
	}
	if math.Abs(beta-total.Beta) > tol {
		o.add("metrics", 0, fmt.Sprintf("beta recomputes to %.9g; report says %.9g", beta, total.Beta))
	}
}

// bitset is a growable bit set for retired request IDs (minted densely
// from 1 by the grid).
type bitset []uint64

func (b *bitset) set(id uint64) {
	w := id >> 6
	for uint64(len(*b)) <= w {
		*b = append(*b, 0)
	}
	(*b)[w] |= 1 << (id & 63)
}

func (b bitset) has(id uint64) bool {
	w := id >> 6
	if w >= uint64(len(b)) {
		return false
	}
	return b[w]&(1<<(id&63)) != 0
}
