package audit

import (
	"strings"
	"testing"

	"repro/internal/trace"
)

// membershipRun extends the clean two-resource run with a consistent
// dynamic-hierarchy episode: S3 joins at t=2, a rehome chain moves S2 at
// t=5, and S3 leaves again at t=7 with nothing dispatched to it after.
func membershipRun(t *testing.T) Run {
	t.Helper()
	run := cleanRun(t)
	run.Events = append(run.Events,
		trace.Event{Time: 2, Kind: trace.KindJoin, Agent: "S3", Resource: "S3", Detail: "parent=S1"},
		trace.Event{Time: 5, Kind: trace.KindRehomePropose, Agent: "S2", Detail: "from=S1 to=S3"},
		trace.Event{Time: 5, Kind: trace.KindRehomeDetach, Agent: "S2", Detail: "from=S1"},
		trace.Event{Time: 5, Kind: trace.KindRehomeAttach, Agent: "S2", Detail: "to=S3"},
		trace.Event{Time: 7, Kind: trace.KindLeave, Agent: "S3", Resource: "S3", Detail: "parent=S1"},
	)
	return run
}

func TestMembershipCleanRunPasses(t *testing.T) {
	res := Check(membershipRun(t))
	if !res.OK() {
		t.Fatalf("clean membership run has violations: %v", res.Violations)
	}
	c := res.Counts
	if c.Joins != 1 || c.Leaves != 1 || c.Rehomes != 1 || c.RehomeProposes != 1 {
		t.Fatalf("membership counts: %+v", c)
	}
}

// (g1) no post-departure work: a dispatch strictly after the resource's
// leave instant is a violation; one at the leave instant is not (the
// drain happens in the same simulator event as the leave).
func TestMembershipDetectsDispatchAfterLeave(t *testing.T) {
	run := membershipRun(t)
	run.Events = append(run.Events,
		trace.Event{Time: 8, Kind: trace.KindArrive, ReqID: 9, Agent: "S1", App: "fft"},
		trace.Event{Time: 8, Kind: trace.KindDispatch, ReqID: 9, Agent: "S1", Resource: "S3", TaskID: 1, App: "fft"},
	)
	res := Check(run)
	if !hasCheck(res, "membership") {
		t.Fatalf("dispatch onto departed S3 not flagged: %v", res.Violations)
	}
}

func TestMembershipRejoinLiftsDepartureBar(t *testing.T) {
	run := membershipRun(t)
	run.Events = append(run.Events,
		trace.Event{Time: 9, Kind: trace.KindJoin, Agent: "S3", Resource: "S3", Detail: "parent=S1"},
		trace.Event{Time: 10, Kind: trace.KindArrive, ReqID: 9, Agent: "S1", App: "fft"},
		trace.Event{Time: 10, Kind: trace.KindDispatch, ReqID: 9, Agent: "S1", Resource: "S3", TaskID: 1, App: "fft"},
		trace.Event{Time: 11, Kind: trace.KindStart, ReqID: 9, Resource: "S3", TaskID: 1, App: "fft"},
		trace.Event{Time: 12, Kind: trace.KindComplete, ReqID: 9, Resource: "S3", TaskID: 1, App: "fft"},
	)
	res := Check(run)
	for _, v := range res.Violations {
		if v.Check == "membership" {
			t.Fatalf("dispatch after a re-join flagged: %v", v)
		}
	}
}

// (g2) atomic re-homing: detaches and attaches must pair up with a
// same-instant propose, and no chain may end the run half-done.
func TestMembershipDetectsBrokenRehomeChains(t *testing.T) {
	cases := []struct {
		name   string
		events []trace.Event
		want   string
	}{
		{"detach without propose", []trace.Event{
			{Time: 6, Kind: trace.KindRehomeDetach, Agent: "S2", Detail: "from=S1"},
		}, "without a same-instant rehome-propose"},
		{"attach without detach", []trace.Event{
			{Time: 6, Kind: trace.KindRehomePropose, Agent: "S2", Detail: "from=S1 to=S3"},
			{Time: 6, Kind: trace.KindRehomeAttach, Agent: "S2", Detail: "to=S3"},
		}, "without a same-instant rehome-detach"},
		{"chain never attaches", []trace.Event{
			{Time: 6, Kind: trace.KindRehomePropose, Agent: "S2", Detail: "from=S1 to=S3"},
			{Time: 6, Kind: trace.KindRehomeDetach, Agent: "S2", Detail: "from=S1"},
		}, "never completed its attach"},
		{"detach at a different instant", []trace.Event{
			{Time: 6, Kind: trace.KindRehomePropose, Agent: "S2", Detail: "from=S1 to=S3"},
			{Time: 6.5, Kind: trace.KindRehomeDetach, Agent: "S2", Detail: "from=S1"},
		}, "without a same-instant rehome-propose"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			run := membershipRun(t)
			run.Events = append(run.Events, c.events...)
			res := Check(run)
			found := false
			for _, v := range res.Violations {
				if v.Check == "membership" && strings.Contains(v.Detail, c.want) {
					found = true
				}
			}
			if !found {
				t.Fatalf("no membership violation containing %q in %v", c.want, res.Violations)
			}
		})
	}
}

// (g3) lifecycle sanity: leaving requires presence, and only once.
func TestMembershipDetectsLifecycleViolations(t *testing.T) {
	t.Run("leave without join", func(t *testing.T) {
		run := membershipRun(t)
		run.Events = append(run.Events,
			trace.Event{Time: 8, Kind: trace.KindLeave, Agent: "ghost", Resource: "ghost"},
		)
		res := Check(run)
		found := false
		for _, v := range res.Violations {
			if v.Check == "membership" && strings.Contains(v.Detail, "without ever joining") {
				found = true
			}
		}
		if !found {
			t.Fatalf("leave of never-joined agent not flagged: %v", res.Violations)
		}
	})
	t.Run("double leave", func(t *testing.T) {
		run := membershipRun(t)
		// S3 left at t=7 in the base run; a second leave without a
		// re-join is both "already left" and "not present".
		run.Events = append(run.Events,
			trace.Event{Time: 8, Kind: trace.KindLeave, Agent: "S3", Resource: "S3"},
		)
		res := Check(run)
		found := false
		for _, v := range res.Violations {
			if v.Check == "membership" && strings.Contains(v.Detail, "already left") {
				found = true
			}
		}
		if !found {
			t.Fatalf("double leave not flagged: %v", res.Violations)
		}
	})
	t.Run("static resources may leave", func(t *testing.T) {
		// S2 is in the node map, so its leave needs no prior join event.
		run := membershipRun(t)
		run.Events = append(run.Events,
			trace.Event{Time: 9, Kind: trace.KindLeave, Agent: "S2", Resource: "S2"},
		)
		res := Check(run)
		if !res.OK() {
			t.Fatalf("static resource leave flagged: %v", res.Violations)
		}
	})
}
