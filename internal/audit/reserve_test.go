package audit

import (
	"strings"
	"testing"

	"repro/internal/trace"
)

// reservedRun extends the clean run with a consistent reservation for
// request 1: its window [2,6) on S1 node 0 is held at t=0, confirmed in
// the same instant, and the execution record starts exactly at the
// window start.
func reservedRun(t *testing.T) Run {
	run := cleanRun(t)
	resv := []trace.Event{
		{Time: 0, Kind: trace.KindReserveHold, ReqID: 1, Resource: "S1", App: "fft",
			Detail: "resv=1 mask=1 win=[2,6) exp=30"},
		{Time: 0, Kind: trace.KindReserveConfirm, ReqID: 1, Resource: "S1", TaskID: 1, App: "fft",
			Detail: "resv=1 win=[2,6)"},
	}
	// Booking events precede the dispatch of request 1 in record order,
	// exactly as core.SubmitReservationAt emits them.
	run.Events = append(resv, run.Events...)
	return run
}

func TestReservedRunPasses(t *testing.T) {
	res := Check(reservedRun(t))
	if !res.OK() {
		t.Fatalf("reserved run has violations: %v", res.Violations)
	}
	c := res.Counts
	if c.ReserveHolds != 1 || c.ReserveConfirms != 1 || c.ReserveReleases != 0 || c.ReserveExpires != 0 {
		t.Fatalf("reservation counts: %+v", c)
	}
	if !strings.Contains(res.Summary(), "1 reservation holds") {
		t.Fatalf("summary omits reservations: %q", res.Summary())
	}
}

func TestDetectsReservationDoubleBooking(t *testing.T) {
	run := reservedRun(t)
	// A second booking squats on S1 node 0 for [3,5) while resv 1 holds
	// [2,6) — the admission check the book must never let through. It is
	// released afterwards so the only violation is the double-booking.
	run.Events = append(run.Events,
		trace.Event{Time: 1, Kind: trace.KindReserveHold, Resource: "S1",
			Detail: "resv=9 mask=1 win=[3,5) exp=40"},
		trace.Event{Time: 2, Kind: trace.KindReserveRelease, Resource: "S1", Detail: "resv=9"},
	)
	res := Check(run)
	if !hasCheck(res, "reservation") {
		t.Fatalf("double-booking not detected: %v", res.Violations)
	}
	found := false
	for _, v := range res.Violations {
		if strings.Contains(v.Detail, "double-booking") {
			found = true
		}
	}
	if !found {
		t.Fatalf("no double-booking violation in %v", res.Violations)
	}
}

func TestDisjointBookingsPass(t *testing.T) {
	run := reservedRun(t)
	// Same node, later window — and same window on the other node: both
	// legal, both released cleanly.
	run.Events = append(run.Events,
		trace.Event{Time: 1, Kind: trace.KindReserveHold, Resource: "S1",
			Detail: "resv=9 mask=1 win=[6,9) exp=40"},
		trace.Event{Time: 1, Kind: trace.KindReserveHold, Resource: "S1",
			Detail: "resv=10 mask=2 win=[2,6) exp=40"},
		trace.Event{Time: 2, Kind: trace.KindReserveRelease, Resource: "S1", Detail: "resv=9"},
		trace.Event{Time: 2, Kind: trace.KindReserveRelease, Resource: "S1", Detail: "resv=10"},
	)
	if res := Check(run); !res.OK() {
		t.Fatalf("disjoint bookings flagged: %v", res.Violations)
	}
}

func TestDetectsReservedStartOutsideWindow(t *testing.T) {
	run := reservedRun(t)
	// Claim request 1's window was [3,6): its record starts at t=2,
	// before the booked window — a broken start guarantee.
	for i, ev := range run.Events {
		if ev.Kind == trace.KindReserveHold {
			run.Events[i].Detail = "resv=1 mask=1 win=[3,6) exp=30"
		}
		if ev.Kind == trace.KindReserveConfirm {
			run.Events[i].Detail = "resv=1 win=[3,6)"
		}
	}
	res := Check(run)
	if !hasViolationFor(res, "reservation", 1) {
		t.Fatalf("start outside booked window not detected: %v", res.Violations)
	}
}

func TestDetectsConfirmAfterTTL(t *testing.T) {
	run := reservedRun(t)
	// A hold on S2 with a TTL of 1 s confirmed at t=5: the window had
	// already stopped blocking admissions when it was settled.
	run.Events = append(run.Events,
		trace.Event{Time: 0, Kind: trace.KindReserveHold, Resource: "S2",
			Detail: "resv=9 mask=2 win=[20,25) exp=1"},
		trace.Event{Time: 5, Kind: trace.KindReserveConfirm, Resource: "S2", Detail: "resv=9"},
	)
	res := Check(run)
	if !hasCheck(res, "reservation") {
		t.Fatalf("confirm after TTL not detected: %v", res.Violations)
	}
}

func TestDetectsDanglingHold(t *testing.T) {
	run := reservedRun(t)
	run.Events = append(run.Events, trace.Event{Time: 0, Kind: trace.KindReserveHold, Resource: "S2",
		Detail: "resv=9 mask=2 win=[20,25) exp=1"})
	res := Check(run)
	if !hasCheck(res, "reservation") {
		t.Fatalf("hold dangling at end of run not detected: %v", res.Violations)
	}
}

func TestDetectsExpiryOfConfirmed(t *testing.T) {
	run := reservedRun(t)
	// Resv 1 was confirmed; an expiry for it afterwards is a TTL applied
	// to a settled booking.
	run.Events = append(run.Events, trace.Event{Time: 31, Kind: trace.KindReserveExpire, Resource: "S1",
		Detail: "resv=1"})
	res := Check(run)
	if !hasCheck(res, "reservation") {
		t.Fatalf("expiry of a confirmed booking not detected: %v", res.Violations)
	}
}

func TestDetectsEarlyExpiry(t *testing.T) {
	run := reservedRun(t)
	run.Events = append(run.Events,
		trace.Event{Time: 0, Kind: trace.KindReserveHold, Resource: "S2",
			Detail: "resv=9 mask=2 win=[20,25) exp=30"},
		trace.Event{Time: 10, Kind: trace.KindReserveExpire, Resource: "S2", Detail: "resv=9"},
	)
	res := Check(run)
	if !hasCheck(res, "reservation") {
		t.Fatalf("expiry before the TTL not detected: %v", res.Violations)
	}
}

func TestDetectsReleaseWithoutHold(t *testing.T) {
	run := reservedRun(t)
	run.Events = append(run.Events, trace.Event{Time: 1, Kind: trace.KindReserveRelease, Resource: "S2",
		Detail: "resv=77"})
	res := Check(run)
	if !hasCheck(res, "reservation") {
		t.Fatalf("release of unknown booking not detected: %v", res.Violations)
	}
}
