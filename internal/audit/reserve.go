package audit

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/trace"
)

// Reservation invariants (f), layered on (a)–(e):
//
//	(f1) no double-booking — two active bookings on one resource never
//	     overlap in both window and node mask.
//	(f2) guaranteed start — a request bound to a confirmed reservation
//	     executes within the booked window.
//	(f3) bounded holds — every hold resolves to exactly one of confirm,
//	     release or expire; a confirm never lands after the hold's TTL,
//	     an expiry never lands before it, and no hold is left dangling
//	     at the end of the run.
//
// Reservation events are booking-scoped, not request-scoped, so they are
// joined on the resv= key carried in Event.Detail rather than on ReqID.

// resvPhase is a booking's position in the two-phase commit.
type resvPhase int

const (
	resvHeld resvPhase = iota
	resvConfirmed
	resvReleased
	resvExpired
)

func (p resvPhase) String() string {
	switch p {
	case resvHeld:
		return "held"
	case resvConfirmed:
		return "confirmed"
	case resvReleased:
		return "released"
	case resvExpired:
		return "expired"
	}
	return "?"
}

// resvBooking is one booking's folded state.
type resvBooking struct {
	resource   string
	id         uint64
	mask       uint64
	start, end float64
	expiresAt  float64
	phase      resvPhase
}

// resvDetail is the parsed form of a reservation event's Detail.
type resvDetail struct {
	id         uint64
	mask       uint64
	start, end float64
	expiresAt  float64
	hasID      bool
	hasMask    bool
	hasWin     bool
	hasExp     bool
}

// parseResvDetail reads the space-separated key=value fields the grid
// stamps on reservation events: resv=7 mask=3 win=[100,160) exp=130.
func parseResvDetail(s string) resvDetail {
	var d resvDetail
	for _, f := range strings.Fields(s) {
		k, v, ok := strings.Cut(f, "=")
		if !ok {
			continue
		}
		switch k {
		case "resv":
			if id, err := strconv.ParseUint(v, 10, 64); err == nil {
				d.id, d.hasID = id, true
			}
		case "mask":
			if m, err := strconv.ParseUint(v, 16, 64); err == nil {
				d.mask, d.hasMask = m, true
			}
		case "exp":
			if e, err := strconv.ParseFloat(v, 64); err == nil {
				d.expiresAt, d.hasExp = e, true
			}
		case "win":
			v = strings.TrimPrefix(v, "[")
			v = strings.TrimSuffix(v, ")")
			a, b, ok := strings.Cut(v, ",")
			if !ok {
				continue
			}
			lo, err1 := strconv.ParseFloat(a, 64)
			hi, err2 := strconv.ParseFloat(b, 64)
			if err1 == nil && err2 == nil {
				d.start, d.end, d.hasWin = lo, hi, true
			}
		}
	}
	return d
}

// observeReserve folds one booking-level reservation event.
func (o *Observer) observeReserve(ev trace.Event) {
	d := parseResvDetail(ev.Detail)
	if !d.hasID {
		o.add("identity", ev.ReqID, fmt.Sprintf("%s event at t=%g on %s carries no resv= key", ev.Kind, ev.Time, ev.Resource))
		return
	}
	if ev.Resource == "" {
		o.add("identity", ev.ReqID, fmt.Sprintf("%s event for resv %d at t=%g names no resource", ev.Kind, d.id, ev.Time))
		return
	}
	byID := o.resv[ev.Resource]
	b := byID[d.id]
	switch ev.Kind {
	case trace.KindReserveHold:
		o.counts.ReserveHolds++
		if !d.hasWin || !d.hasMask || !d.hasExp {
			o.add("reservation", ev.ReqID, fmt.Sprintf("hold of resv %d on %s lacks window, mask or expiry (%q)", d.id, ev.Resource, ev.Detail))
			return
		}
		if b != nil && (b.phase == resvHeld || b.phase == resvConfirmed) {
			o.add("reservation", ev.ReqID, fmt.Sprintf("second hold of resv %d on %s while %s", d.id, ev.Resource, b.phase))
			return
		}
		// (f1) against every other booking still blocking the resource.
		for _, other := range o.resvOrder {
			if other.resource != ev.Resource || other.id == d.id {
				continue
			}
			if other.phase != resvHeld && other.phase != resvConfirmed {
				continue
			}
			if other.mask&d.mask != 0 && d.start < other.end && other.start < d.end {
				o.add("reservation", ev.ReqID, fmt.Sprintf(
					"double-booking on %s: resv %d [%g,%g) mask %x overlaps resv %d (%s) [%g,%g) mask %x",
					ev.Resource, d.id, d.start, d.end, d.mask, other.id, other.phase, other.start, other.end, other.mask))
			}
		}
		nb := &resvBooking{
			resource: ev.Resource, id: d.id, mask: d.mask,
			start: d.start, end: d.end, expiresAt: d.expiresAt, phase: resvHeld,
		}
		if byID == nil {
			byID = map[uint64]*resvBooking{}
			if o.resv == nil {
				o.resv = map[string]map[uint64]*resvBooking{}
			}
			o.resv[ev.Resource] = byID
		}
		byID[d.id] = nb
		o.resvOrder = append(o.resvOrder, nb)
	case trace.KindReserveConfirm:
		o.counts.ReserveConfirms++
		if b == nil {
			o.add("reservation", ev.ReqID, fmt.Sprintf("confirm of resv %d on %s without a hold", d.id, ev.Resource))
			return
		}
		if b.phase != resvHeld {
			o.add("reservation", ev.ReqID, fmt.Sprintf("confirm of resv %d on %s while %s", d.id, ev.Resource, b.phase))
			return
		}
		// (f3) a confirm after the TTL means the hold leaked: the window
		// had already stopped blocking other admissions.
		if ev.Time > b.expiresAt {
			o.add("reservation", ev.ReqID, fmt.Sprintf("confirm of resv %d on %s at t=%g after its hold expired at t=%g", d.id, ev.Resource, ev.Time, b.expiresAt))
		}
		b.phase = resvConfirmed
		// (f2) bind the window to the request so finalize can hold its
		// execution record to it.
		if ev.ReqID != 0 && !o.isRetired(ev.ReqID) {
			s := o.state(ev.ReqID)
			s.hasResv = true
			s.resvStart, s.resvEnd = b.start, b.end
		}
	case trace.KindReserveRelease:
		o.counts.ReserveReleases++
		if b == nil {
			o.add("reservation", ev.ReqID, fmt.Sprintf("release of resv %d on %s without a hold", d.id, ev.Resource))
			return
		}
		if b.phase == resvReleased || b.phase == resvExpired {
			o.add("reservation", ev.ReqID, fmt.Sprintf("release of resv %d on %s while already %s", d.id, ev.Resource, b.phase))
			return
		}
		b.phase = resvReleased
	case trace.KindReserveExpire:
		o.counts.ReserveExpires++
		if b == nil {
			o.add("reservation", ev.ReqID, fmt.Sprintf("expiry of resv %d on %s without a hold", d.id, ev.Resource))
			return
		}
		if b.phase != resvHeld {
			o.add("reservation", ev.ReqID, fmt.Sprintf("expiry of resv %d on %s while %s — only unconfirmed holds expire", d.id, ev.Resource, b.phase))
			return
		}
		if ev.Time < b.expiresAt {
			o.add("reservation", ev.ReqID, fmt.Sprintf("resv %d on %s expired at t=%g, before its TTL at t=%g", d.id, ev.Resource, ev.Time, b.expiresAt))
		}
		b.phase = resvExpired
	}
}

// finishReserve raises (f3) for holds still dangling at the end of the
// run, in observation order.
func (o *Observer) finishReserve() {
	for _, b := range o.resvOrder {
		if b.phase == resvHeld {
			o.add("reservation", 0, fmt.Sprintf("resv %d on %s held to the end of the run without confirm, release or expiry", b.id, b.resource))
		}
	}
}
