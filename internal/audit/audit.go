// Package audit is the lifecycle invariant checker for a completed grid
// run: it consumes the trace event ring, the execution records and the
// dispatch log and proves — rather than assumes — that the run's
// bookkeeping is consistent. Simulation toolkits earn trust by validating
// conservation and timing invariants over every run; this package plays
// that role for the reproduction, keyed on the grid-wide request identity
// minted at arrival (core.SubmitAt) so that lifecycle stages on different
// resources can be joined at all.
//
// The invariants:
//
//	(a) conservation — every arrival terminates in exactly one complete
//	    or exactly one fail; re-dispatch chains net to exactly one
//	    execution record. Migration chains obey the same conservation:
//	    every migrate-withdraw is preceded by a migrate-offer and
//	    followed by exactly one migrate-redispatch, so an offered task
//	    is never lost (withdrawn without re-placement) and never
//	    duplicated (re-placed without withdrawal).
//	(b) exclusivity — no two committed records overlap on the same
//	    physical node of one resource.
//	(c) timing — start ≥ arrival and end ≥ start per record, and each
//	    request's event times are monotone along its lifecycle.
//	(d) placement — the dispatch (or final re-dispatch) target is the
//	    resource that actually executed the task.
//	(e) metrics — an independent recomputation of the §3.3 ε/υ/β matches
//	    the report produced by metrics.Compute.
package audit

import (
	"fmt"
	"math"
	"math/bits"
	"sort"
	"strings"

	"repro/internal/agent"
	"repro/internal/metrics"
	"repro/internal/scheduler"
	"repro/internal/trace"
)

// Run is everything the auditor sees of one completed grid run.
type Run struct {
	Events     []trace.Event      // the full lifecycle trace, in record order
	Records    []scheduler.Record // committed executions across the grid
	Dispatches []agent.Dispatch   // where each request initially landed
	Nodes      map[string]int     // node count per resource
	Report     metrics.GridReport // the §3.3 report computed for the run
	Dropped    uint64             // events evicted from the trace ring
}

// Violation is one broken invariant.
type Violation struct {
	Check  string // "conservation", "exclusivity", "timing", "placement", "metrics", "identity", "trace"
	ReqID  uint64 // the request involved, when the violation is request-scoped
	Detail string
}

func (v Violation) String() string {
	if v.ReqID != 0 {
		return fmt.Sprintf("%s: req %d: %s", v.Check, v.ReqID, v.Detail)
	}
	return fmt.Sprintf("%s: %s", v.Check, v.Detail)
}

// Counts summarises what the auditor verified.
type Counts struct {
	Requests     int // distinct request IDs observed
	Arrives      int
	Dispatches   int // initial placements (dispatch events)
	Redispatches int
	Completes    int
	Fails        int
	Records      int // execution records

	// Migration-chain events (core.MigrationPolicy): offers made,
	// accepted offers (withdrawals from the origin queue) and the
	// re-dispatches completing each chain.
	MigrateOffers       int
	MigrateWithdraws    int
	MigrateRedispatches int
}

// Result is the auditor's verdict over one run.
type Result struct {
	Violations []Violation
	Counts     Counts
	// Truncated reports that the trace ring evicted events: conservation
	// cannot be proven over a partial trace, and a violation is raised.
	Truncated bool
}

// OK reports whether every invariant held.
func (r Result) OK() bool { return len(r.Violations) == 0 }

// Err returns nil when the audit passed, or an error carrying the first
// violations otherwise.
func (r Result) Err() error {
	if r.OK() {
		return nil
	}
	max := len(r.Violations)
	if max > 5 {
		max = 5
	}
	lines := make([]string, 0, max)
	for _, v := range r.Violations[:max] {
		lines = append(lines, v.String())
	}
	return fmt.Errorf("audit: %d violation(s): %s", len(r.Violations), strings.Join(lines, "; "))
}

// Summary renders a one-line account of the audit.
func (r Result) Summary() string {
	c := r.Counts
	s := fmt.Sprintf("audit: %d requests: %d arrives, %d completes, %d fails, %d redispatches, %d records",
		c.Requests, c.Arrives, c.Completes, c.Fails, c.Redispatches, c.Records)
	if c.MigrateOffers > 0 {
		s += fmt.Sprintf(", %d migrate offers (%d accepted)", c.MigrateOffers, c.MigrateWithdraws)
	}
	if r.Truncated {
		s += ", trace truncated"
	}
	s += fmt.Sprintf("; %d violation(s)", len(r.Violations))
	return s
}

// lifecycle collects one request's task-bearing events in record order.
type lifecycle struct {
	events []trace.Event
	counts map[trace.Kind]int
}

// Check audits a completed run against invariants (a)–(e).
func Check(run Run) Result {
	var res Result

	if run.Dropped > 0 {
		res.Truncated = true
		res.add("trace", 0, fmt.Sprintf("event ring dropped %d events; conservation is unprovable (size the recorder to the workload)", run.Dropped))
	}

	byReq := map[uint64]*lifecycle{}
	var reqIDs []uint64
	for _, ev := range run.Events {
		if !ev.Kind.TaskBearing() {
			continue
		}
		if ev.ReqID == 0 {
			res.add("identity", 0, fmt.Sprintf("%s event at t=%g (resource %q, task %d) carries no request ID", ev.Kind, ev.Time, ev.Resource, ev.TaskID))
			continue
		}
		lc := byReq[ev.ReqID]
		if lc == nil {
			lc = &lifecycle{counts: map[trace.Kind]int{}}
			byReq[ev.ReqID] = lc
			reqIDs = append(reqIDs, ev.ReqID)
		}
		lc.events = append(lc.events, ev)
		lc.counts[ev.Kind]++
	}
	sort.Slice(reqIDs, func(i, j int) bool { return reqIDs[i] < reqIDs[j] })

	recsByReq := map[uint64][]scheduler.Record{}
	for _, rec := range run.Records {
		res.Counts.Records++
		if rec.ReqID == 0 {
			res.add("identity", 0, fmt.Sprintf("execution record task %d on %s carries no request ID", rec.TaskID, rec.Resource))
			continue
		}
		recsByReq[rec.ReqID] = append(recsByReq[rec.ReqID], rec)
	}

	res.Counts.Requests = len(reqIDs)
	for _, id := range reqIDs {
		lc := byReq[id]
		res.Counts.Arrives += lc.counts[trace.KindArrive]
		res.Counts.Dispatches += lc.counts[trace.KindDispatch]
		res.Counts.Redispatches += lc.counts[trace.KindRedispatch]
		res.Counts.Completes += lc.counts[trace.KindComplete]
		res.Counts.Fails += lc.counts[trace.KindFail]
		res.Counts.MigrateOffers += lc.counts[trace.KindMigrateOffer]
		res.Counts.MigrateWithdraws += lc.counts[trace.KindMigrateWithdraw]
		res.Counts.MigrateRedispatches += lc.counts[trace.KindMigrateRedispatch]
		res.checkRequest(id, lc, recsByReq[id])
	}
	for id := range recsByReq {
		if byReq[id] == nil {
			res.add("conservation", id, "execution record without any lifecycle events")
		}
	}

	res.checkExclusivity(run)
	res.checkRecordTiming(run)
	res.checkDispatchLog(run, byReq)
	res.checkMetrics(run)
	return res
}

func (r *Result) add(check string, reqID uint64, detail string) {
	r.Violations = append(r.Violations, Violation{Check: check, ReqID: reqID, Detail: detail})
}

// checkRequest verifies conservation (a), lifecycle timing (c) and final
// placement (d) for one request.
func (r *Result) checkRequest(id uint64, lc *lifecycle, recs []scheduler.Record) {
	arrives := lc.counts[trace.KindArrive]
	completes := lc.counts[trace.KindComplete]
	fails := lc.counts[trace.KindFail]
	starts := lc.counts[trace.KindStart]

	// (a) conservation.
	switch {
	case arrives == 0:
		r.add("conservation", id, fmt.Sprintf("lifecycle events without an arrival (%d events)", len(lc.events)))
	case arrives > 1:
		r.add("conservation", id, fmt.Sprintf("%d arrivals for one request", arrives))
	}
	if completes+fails != 1 {
		r.add("conservation", id, fmt.Sprintf("request terminated %d times (%d completes, %d fails); want exactly one terminal", completes+fails, completes, fails))
	}
	if starts != completes {
		r.add("conservation", id, fmt.Sprintf("%d starts but %d completes", starts, completes))
	}
	if completes == 1 && lc.counts[trace.KindDispatch]+lc.counts[trace.KindRedispatch]+lc.counts[trace.KindMigrateRedispatch] == 0 {
		r.add("conservation", id, "request executed without any dispatch")
	}
	if len(recs) != completes {
		r.add("conservation", id, fmt.Sprintf("%d execution records for %d completions; redispatch chains must net to one execution", len(recs), completes))
	}

	// (a) migration-chain conservation: every withdraw pairs with exactly
	// one re-dispatch (never zero — the task would vanish — and never
	// two — it would run twice), every withdraw follows an offer, and
	// migration events name the resource that actually held the task.
	r.checkMigrationChain(id, lc)

	// (c) lifecycle-time monotonicity: events are causally ordered by
	// Seq, so virtual time must never run backwards along a request's
	// lifecycle (completions legitimately carry their future completion
	// instant, but nothing is recorded for the request after them).
	first := lc.events[0]
	if first.Kind != trace.KindArrive && lc.counts[trace.KindArrive] > 0 {
		r.add("timing", id, fmt.Sprintf("first recorded event is %s, not the arrival", first.Kind))
	}
	for i := 1; i < len(lc.events); i++ {
		prev, cur := lc.events[i-1], lc.events[i]
		if cur.Time < prev.Time {
			r.add("timing", id, fmt.Sprintf("%s at t=%g precedes %s at t=%g", cur.Kind, cur.Time, prev.Kind, prev.Time))
		}
	}

	if len(recs) != 1 {
		return
	}
	rec := recs[0]

	// (c) the record must agree with its start/complete events.
	for _, ev := range lc.events {
		switch ev.Kind {
		case trace.KindStart:
			if ev.Time != rec.Start || ev.Resource != rec.Resource || ev.TaskID != rec.TaskID {
				r.add("timing", id, fmt.Sprintf("start event (t=%g, %s task %d) disagrees with record (t=%g, %s task %d)",
					ev.Time, ev.Resource, ev.TaskID, rec.Start, rec.Resource, rec.TaskID))
			}
		case trace.KindComplete:
			if ev.Time != rec.End || ev.Resource != rec.Resource {
				r.add("timing", id, fmt.Sprintf("complete event (t=%g, %s) disagrees with record (t=%g, %s)",
					ev.Time, ev.Resource, rec.End, rec.Resource))
			}
		case trace.KindArrive:
			if ev.Time > rec.Arrival {
				r.add("timing", id, fmt.Sprintf("record arrival t=%g precedes the grid arrival t=%g", rec.Arrival, ev.Time))
			}
		}
	}

	// (d) the final placement decision must name the executing resource.
	var final *trace.Event
	for i := range lc.events {
		ev := lc.events[i]
		if ev.Kind == trace.KindDispatch || ev.Kind == trace.KindRedispatch || ev.Kind == trace.KindMigrateRedispatch {
			final = &lc.events[i]
		}
	}
	if final == nil {
		return // already flagged under conservation
	}
	if final.Resource != rec.Resource || final.TaskID != rec.TaskID {
		r.add("placement", id, fmt.Sprintf("final %s targeted %s task %d but the execution record is %s task %d",
			final.Kind, final.Resource, final.TaskID, rec.Resource, rec.TaskID))
	}
}

// checkMigrationChain walks one request's events in causal (record)
// order and verifies the offer → withdraw → re-dispatch protocol. The
// scan is stateful: a withdraw opens a hole (the task is on no queue)
// that exactly one migrate-redispatch must close before the task can
// start or be withdrawn again.
func (r *Result) checkMigrationChain(id uint64, lc *lifecycle) {
	if lc.counts[trace.KindMigrateOffer]+lc.counts[trace.KindMigrateWithdraw]+lc.counts[trace.KindMigrateRedispatch] == 0 {
		return
	}
	placed := "" // resource currently holding the task, per the placement events
	offers, withdraws := 0, 0
	pendingWithdraw := 0
	for _, ev := range lc.events {
		switch ev.Kind {
		case trace.KindDispatch, trace.KindRedispatch:
			placed = ev.Resource
		case trace.KindMigrateOffer:
			offers++
			if placed != "" && ev.Resource != placed {
				r.add("conservation", id, fmt.Sprintf("migrate-offer from %s but the task was placed on %s", ev.Resource, placed))
			}
		case trace.KindMigrateWithdraw:
			withdraws++
			if offers < withdraws {
				r.add("conservation", id, "migrate-withdraw without a preceding migrate-offer")
			}
			if pendingWithdraw > 0 {
				r.add("conservation", id, "second migrate-withdraw before the previous chain re-dispatched")
			}
			if placed != "" && ev.Resource != placed {
				r.add("conservation", id, fmt.Sprintf("migrate-withdraw from %s but the task was placed on %s", ev.Resource, placed))
			}
			pendingWithdraw++
		case trace.KindMigrateRedispatch:
			if pendingWithdraw == 0 {
				r.add("conservation", id, "migrate-redispatch without a migrate-withdraw: the task would run twice")
			} else {
				pendingWithdraw--
			}
			placed = ev.Resource
		case trace.KindStart:
			if pendingWithdraw > 0 {
				r.add("conservation", id, "task started while withdrawn from every queue")
			}
			if placed != "" && ev.Resource != placed {
				r.add("placement", id, fmt.Sprintf("task started on %s but was last placed on %s", ev.Resource, placed))
			}
		}
	}
	if pendingWithdraw > 0 {
		r.add("conservation", id, "migrate-withdraw never re-dispatched: the task vanished")
	}
}

// checkExclusivity verifies (b): on each physical node of each resource,
// committed executions never overlap in time.
func (r *Result) checkExclusivity(run Run) {
	type interval struct {
		start, end float64
		reqID      uint64
		taskID     int
	}
	perNode := map[string]map[int][]interval{}
	for _, rec := range run.Records {
		n, known := run.Nodes[rec.Resource]
		if !known {
			r.add("exclusivity", rec.ReqID, fmt.Sprintf("record on unknown resource %q", rec.Resource))
			continue
		}
		if rec.Mask == 0 {
			r.add("exclusivity", rec.ReqID, fmt.Sprintf("record task %d on %s allocates no nodes", rec.TaskID, rec.Resource))
			continue
		}
		nodes := perNode[rec.Resource]
		if nodes == nil {
			nodes = map[int][]interval{}
			perNode[rec.Resource] = nodes
		}
		for m := rec.Mask; m != 0; m &= m - 1 {
			i := bits.TrailingZeros64(m)
			if i >= n {
				r.add("exclusivity", rec.ReqID, fmt.Sprintf("record task %d uses node %d of %d on %s", rec.TaskID, i, n, rec.Resource))
				continue
			}
			nodes[i] = append(nodes[i], interval{rec.Start, rec.End, rec.ReqID, rec.TaskID})
		}
	}
	resources := make([]string, 0, len(perNode))
	for name := range perNode {
		resources = append(resources, name)
	}
	sort.Strings(resources)
	for _, name := range resources {
		nodes := perNode[name]
		for node := 0; node < run.Nodes[name]; node++ {
			ivs := nodes[node]
			sort.Slice(ivs, func(i, j int) bool {
				if ivs[i].start != ivs[j].start {
					return ivs[i].start < ivs[j].start
				}
				return ivs[i].end < ivs[j].end
			})
			for i := 1; i < len(ivs); i++ {
				if ivs[i].start < ivs[i-1].end {
					r.add("exclusivity", ivs[i].reqID, fmt.Sprintf(
						"task %d [%g, %g) overlaps task %d (req %d) [%g, %g) on %s node %d",
						ivs[i].taskID, ivs[i].start, ivs[i].end,
						ivs[i-1].taskID, ivs[i-1].reqID, ivs[i-1].start, ivs[i-1].end, name, node))
				}
			}
		}
	}
}

// checkRecordTiming verifies (c) on the records themselves.
func (r *Result) checkRecordTiming(run Run) {
	for _, rec := range run.Records {
		if rec.Start < rec.Arrival {
			r.add("timing", rec.ReqID, fmt.Sprintf("task %d on %s starts at t=%g before its arrival t=%g", rec.TaskID, rec.Resource, rec.Start, rec.Arrival))
		}
		if rec.End < rec.Start {
			r.add("timing", rec.ReqID, fmt.Sprintf("task %d on %s ends at t=%g before its start t=%g", rec.TaskID, rec.Resource, rec.End, rec.Start))
		}
	}
}

// checkDispatchLog cross-checks (d) against the submission-order dispatch
// log: each logged dispatch must match that request's dispatch event.
func (r *Result) checkDispatchLog(run Run, byReq map[uint64]*lifecycle) {
	for i, d := range run.Dispatches {
		if d.ReqID == 0 {
			r.add("identity", 0, fmt.Sprintf("dispatch log entry %d (%s task %d) carries no request ID", i, d.Resource, d.TaskID))
			continue
		}
		lc := byReq[d.ReqID]
		if lc == nil {
			// Without a trace there is nothing to join against; the
			// conservation pass has no events either, so stay silent
			// only when the run recorded no events at all.
			if len(run.Events) > 0 {
				r.add("placement", d.ReqID, "dispatch log entry has no lifecycle events")
			}
			continue
		}
		matched := false
		for _, ev := range lc.events {
			if ev.Kind == trace.KindDispatch && ev.Resource == d.Resource && ev.TaskID == d.TaskID {
				matched = true
				break
			}
		}
		if !matched {
			r.add("placement", d.ReqID, fmt.Sprintf("dispatch log names %s task %d but no dispatch event agrees", d.Resource, d.TaskID))
		}
	}
}

// checkMetrics verifies (e): the §3.3 grid totals recomputed from the raw
// records must match the run's report.
func (r *Result) checkMetrics(run Run) {
	w := run.Report.Window
	t := w.End - w.Start
	if t <= 0 {
		r.add("metrics", 0, fmt.Sprintf("report window [%g, %g] is empty", w.Start, w.End))
		return
	}
	busy := map[string][]float64{}
	for name, n := range run.Nodes {
		busy[name] = make([]float64, n)
	}
	var advance float64
	tasks := 0
	for _, rec := range run.Records {
		nodes, ok := busy[rec.Resource]
		if !ok {
			continue // flagged by the exclusivity pass
		}
		tasks++
		advance += rec.Deadline - rec.End
		lo, hi := math.Max(rec.Start, w.Start), math.Min(rec.End, w.End)
		if hi <= lo {
			continue
		}
		for m := rec.Mask; m != 0; m &= m - 1 {
			i := bits.TrailingZeros64(m)
			if i < len(nodes) {
				nodes[i] += hi - lo
			}
		}
	}
	var util []float64
	names := make([]string, 0, len(busy))
	for name := range busy {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		for _, b := range busy[name] {
			util = append(util, b/t*100)
		}
	}
	var eps float64
	if tasks > 0 {
		eps = advance / float64(tasks)
	}
	var ups float64
	for _, u := range util {
		ups += u
	}
	if len(util) > 0 {
		ups /= float64(len(util))
	}
	var ss float64
	for _, u := range util {
		ss += (u - ups) * (u - ups)
	}
	var dev float64
	if len(util) > 0 {
		dev = math.Sqrt(ss / float64(len(util)))
	}
	var beta float64
	if ups > 0 {
		beta = (1 - dev/ups) * 100
		if beta < 0 {
			beta = 0
		}
	}

	const tol = 1e-6
	total := run.Report.Total
	if tasks != total.Tasks {
		r.add("metrics", 0, fmt.Sprintf("report counts %d tasks; records hold %d", total.Tasks, tasks))
	}
	if math.Abs(eps-total.Epsilon) > tol {
		r.add("metrics", 0, fmt.Sprintf("epsilon recomputes to %.9g; report says %.9g", eps, total.Epsilon))
	}
	if math.Abs(ups-total.Upsilon) > tol {
		r.add("metrics", 0, fmt.Sprintf("upsilon recomputes to %.9g; report says %.9g", ups, total.Upsilon))
	}
	if math.Abs(beta-total.Beta) > tol {
		r.add("metrics", 0, fmt.Sprintf("beta recomputes to %.9g; report says %.9g", beta, total.Beta))
	}
}
