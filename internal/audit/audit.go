// Package audit is the lifecycle invariant checker for a completed grid
// run: it consumes the trace event ring, the execution records and the
// dispatch log and proves — rather than assumes — that the run's
// bookkeeping is consistent. Simulation toolkits earn trust by validating
// conservation and timing invariants over every run; this package plays
// that role for the reproduction, keyed on the grid-wide request identity
// minted at arrival (core.SubmitAt) so that lifecycle stages on different
// resources can be joined at all.
//
// The invariants:
//
//	(a) conservation — every arrival terminates in exactly one complete
//	    or exactly one fail; re-dispatch chains net to exactly one
//	    execution record. Migration chains obey the same conservation:
//	    every migrate-withdraw is preceded by a migrate-offer and
//	    followed by exactly one migrate-redispatch, so an offered task
//	    is never lost (withdrawn without re-placement) and never
//	    duplicated (re-placed without withdrawal).
//	(b) exclusivity — no two committed records overlap on the same
//	    physical node of one resource.
//	(c) timing — start ≥ arrival and end ≥ start per record, and each
//	    request's event times are monotone along its lifecycle.
//	(d) placement — the dispatch (or final re-dispatch) target is the
//	    resource that actually executed the task.
//	(e) metrics — an independent recomputation of the §3.3 ε/υ/β matches
//	    the report produced by metrics.Compute.
package audit

import (
	"fmt"
	"strings"

	"repro/internal/agent"
	"repro/internal/metrics"
	"repro/internal/scheduler"
	"repro/internal/trace"
)

// Run is everything the auditor sees of one completed grid run.
type Run struct {
	Events     []trace.Event      // the full lifecycle trace, in record order
	Records    []scheduler.Record // committed executions across the grid
	Dispatches []agent.Dispatch   // where each request initially landed
	Nodes      map[string]int     // node count per resource
	Report     metrics.GridReport // the §3.3 report computed for the run
	Dropped    uint64             // events evicted from the trace ring
}

// Violation is one broken invariant.
type Violation struct {
	Check  string // "conservation", "exclusivity", "timing", "placement", "metrics", "identity", "trace", "reservation", "membership"
	ReqID  uint64 // the request involved, when the violation is request-scoped
	Detail string
}

func (v Violation) String() string {
	if v.ReqID != 0 {
		return fmt.Sprintf("%s: req %d: %s", v.Check, v.ReqID, v.Detail)
	}
	return fmt.Sprintf("%s: %s", v.Check, v.Detail)
}

// Counts summarises what the auditor verified.
type Counts struct {
	Requests     int // distinct request IDs observed
	Arrives      int
	Dispatches   int // initial placements (dispatch events)
	Redispatches int
	Completes    int
	Fails        int
	Records      int // execution records

	// Migration-chain events (core.MigrationPolicy): offers made,
	// accepted offers (withdrawals from the origin queue) and the
	// re-dispatches completing each chain.
	MigrateOffers       int
	MigrateWithdraws    int
	MigrateRedispatches int

	// Reservation-booking events (core.SubmitReservationAt / the expiry
	// sweep): two-phase commit stages per booking per resource.
	ReserveHolds    int
	ReserveConfirms int
	ReserveReleases int
	ReserveExpires  int

	// Dynamic-membership events (core.Options.Churn / Rebalance): runtime
	// joins, graceful leaves, rebalance proposals and the completed
	// detach→attach chains.
	Joins          int
	Leaves         int
	RehomeProposes int
	Rehomes        int
}

// Result is the auditor's verdict over one run.
type Result struct {
	Violations []Violation
	Counts     Counts
	// Truncated reports that the trace ring evicted events: conservation
	// cannot be proven over a partial trace, and a violation is raised.
	Truncated bool
}

// OK reports whether every invariant held.
func (r Result) OK() bool { return len(r.Violations) == 0 }

// Err returns nil when the audit passed, or an error carrying the first
// violations otherwise.
func (r Result) Err() error {
	if r.OK() {
		return nil
	}
	n := len(r.Violations)
	if n > 5 {
		n = 5
	}
	lines := make([]string, 0, n)
	for _, v := range r.Violations[:n] {
		lines = append(lines, v.String())
	}
	return fmt.Errorf("audit: %d violation(s): %s", len(r.Violations), strings.Join(lines, "; "))
}

// Summary renders a one-line account of the audit.
func (r Result) Summary() string {
	c := r.Counts
	s := fmt.Sprintf("audit: %d requests: %d arrives, %d completes, %d fails, %d redispatches, %d records",
		c.Requests, c.Arrives, c.Completes, c.Fails, c.Redispatches, c.Records)
	if c.MigrateOffers > 0 {
		s += fmt.Sprintf(", %d migrate offers (%d accepted)", c.MigrateOffers, c.MigrateWithdraws)
	}
	if c.ReserveHolds > 0 {
		s += fmt.Sprintf(", %d reservation holds (%d confirmed, %d released, %d expired)",
			c.ReserveHolds, c.ReserveConfirms, c.ReserveReleases, c.ReserveExpires)
	}
	if c.Joins+c.Leaves+c.RehomeProposes > 0 {
		s += fmt.Sprintf(", %d joins, %d leaves, %d rehomes", c.Joins, c.Leaves, c.Rehomes)
	}
	if r.Truncated {
		s += ", trace truncated"
	}
	s += fmt.Sprintf("; %d violation(s)", len(r.Violations))
	return s
}

// Check audits a completed run against invariants (a)–(e). It is a
// replay wrapper over the streaming Observer — the same folded checks,
// fed the whole run at once — so batch callers and the live grid
// exercise one implementation. Replay keeps per-request state to the
// end (no early retirement): a malformed trace with events after a
// terminal is judged with the full lifecycle in view, as before.
func Check(run Run) Result {
	o := NewObserver(run.Nodes)
	o.retire = false
	for _, rec := range run.Records {
		o.ObserveRecord(rec)
	}
	for _, d := range run.Dispatches {
		o.ObserveDispatch(d)
	}
	for _, ev := range run.Events {
		o.Observe(ev)
	}
	return o.Finish(run.Report, run.Dropped)
}
