package audit

import (
	"strings"
	"testing"

	"repro/internal/agent"
	"repro/internal/metrics"
	"repro/internal/scheduler"
	"repro/internal/trace"
)

// cleanRun builds a small, fully consistent two-resource run: request 1
// executes on S1, request 2 on S2 (both as local task 1 — the scheduler-
// local ID collision the grid-wide ID exists to disambiguate), and
// request 3 fails placement.
func cleanRun(t *testing.T) Run {
	t.Helper()
	events := []trace.Event{
		{Time: 0, Kind: trace.KindArrive, ReqID: 1, Agent: "S1", App: "fft"},
		{Time: 0, Kind: trace.KindDispatch, ReqID: 1, Agent: "S1", Resource: "S1", TaskID: 1, App: "fft"},
		{Time: 1, Kind: trace.KindArrive, ReqID: 2, Agent: "S1", App: "cpi"},
		{Time: 1, Kind: trace.KindDispatch, ReqID: 2, Agent: "S1", Resource: "S2", TaskID: 1, App: "cpi"},
		{Time: 2, Kind: trace.KindStart, ReqID: 1, Resource: "S1", TaskID: 1, App: "fft"},
		{Time: 3, Kind: trace.KindStart, ReqID: 2, Resource: "S2", TaskID: 1, App: "cpi"},
		{Time: 4, Kind: trace.KindArrive, ReqID: 3, Agent: "S1", App: "doom"},
		{Time: 4, Kind: trace.KindFail, ReqID: 3, Agent: "S1", App: "doom", Detail: "no model"},
		{Time: 6, Kind: trace.KindComplete, ReqID: 1, Resource: "S1", TaskID: 1, App: "fft"},
		{Time: 8, Kind: trace.KindComplete, ReqID: 2, Resource: "S2", TaskID: 1, App: "cpi"},
		{Time: 9, Kind: trace.KindPeerDown, Agent: "S2"}, // non-task event: ignored
	}
	records := []scheduler.Record{
		{ReqID: 1, TaskID: 1, Resource: "S1", Arrival: 0, Start: 2, End: 6, Deadline: 10, Mask: 0b01},
		{ReqID: 2, TaskID: 1, Resource: "S2", Arrival: 1, Start: 3, End: 8, Deadline: 12, Mask: 0b11},
	}
	dispatches := []agent.Dispatch{
		{ReqID: 1, Resource: "S1", TaskID: 1},
		{ReqID: 2, Resource: "S2", TaskID: 1},
	}
	nodes := map[string]int{"S1": 2, "S2": 2}
	rep, err := metrics.Compute(records, nodes, metrics.Window{Start: 0, End: 10})
	if err != nil {
		t.Fatal(err)
	}
	return Run{Events: events, Records: records, Dispatches: dispatches, Nodes: nodes, Report: rep}
}

func TestCleanRunPasses(t *testing.T) {
	res := Check(cleanRun(t))
	if !res.OK() {
		t.Fatalf("clean run has violations: %v", res.Violations)
	}
	if res.Err() != nil {
		t.Fatalf("Err() on a clean run: %v", res.Err())
	}
	c := res.Counts
	if c.Requests != 3 || c.Arrives != 3 || c.Completes != 2 || c.Fails != 1 || c.Records != 2 {
		t.Fatalf("counts: %+v", c)
	}
	if !strings.Contains(res.Summary(), "0 violation") {
		t.Fatalf("summary: %q", res.Summary())
	}
}

func TestDetectsFabricatedOverlappingRecord(t *testing.T) {
	run := cleanRun(t)
	// A forged record squats on S1 node 0 while request 1 is running
	// there — exactly the double-booking the planner must never emit.
	forged := scheduler.Record{ReqID: 4, TaskID: 2, Resource: "S1", Arrival: 0, Start: 3, End: 5, Deadline: 9, Mask: 0b01}
	run.Records = append(run.Records, forged)
	res := Check(run)
	if res.OK() {
		t.Fatal("overlapping record not detected")
	}
	if !hasCheck(res, "exclusivity") {
		t.Fatalf("no exclusivity violation in %v", res.Violations)
	}
	// The forged record also breaks conservation: it has no lifecycle.
	if !hasCheck(res, "conservation") {
		t.Fatalf("record without lifecycle not flagged: %v", res.Violations)
	}
}

func TestDetectsDroppedComplete(t *testing.T) {
	run := cleanRun(t)
	// Drop request 2's complete event: the run now claims an execution
	// record for a request that never terminated.
	events := run.Events[:0:0]
	for _, ev := range run.Events {
		if ev.Kind == trace.KindComplete && ev.ReqID == 2 {
			continue
		}
		events = append(events, ev)
	}
	run.Events = events
	res := Check(run)
	if res.OK() {
		t.Fatal("dropped complete not detected")
	}
	if !hasViolationFor(res, "conservation", 2) {
		t.Fatalf("no conservation violation for request 2: %v", res.Violations)
	}
}

func TestDetectsDoubleTerminal(t *testing.T) {
	run := cleanRun(t)
	// Request 1 both completes and fails — two terminals.
	run.Events = append(run.Events, trace.Event{Time: 7, Kind: trace.KindFail, ReqID: 1, Agent: "S1"})
	res := Check(run)
	if !hasViolationFor(res, "conservation", 1) {
		t.Fatalf("double terminal not flagged: %v", res.Violations)
	}
}

func TestDetectsDispatchTargetMismatch(t *testing.T) {
	run := cleanRun(t)
	// The dispatch log claims request 2 went to S1, but it executed on S2.
	run.Dispatches[1].Resource = "S1"
	res := Check(run)
	if !hasViolationFor(res, "placement", 2) {
		t.Fatalf("dispatch-target mismatch not flagged: %v", res.Violations)
	}
}

func TestDetectsRedispatchTargetMismatch(t *testing.T) {
	run := cleanRun(t)
	// A redispatch moves request 1 to S2 — but the record says it ran
	// on S1, so the final placement decision disagrees with reality.
	run.Events = append(run.Events, trace.Event{Time: 1, Kind: trace.KindRedispatch, ReqID: 1, Resource: "S2", TaskID: 5})
	res := Check(run)
	if !hasViolationFor(res, "placement", 1) {
		t.Fatalf("redispatch mismatch not flagged: %v", res.Violations)
	}
}

func TestDetectsTamperedMetrics(t *testing.T) {
	run := cleanRun(t)
	run.Report.Total.Epsilon += 0.5
	res := Check(run)
	if !hasCheck(res, "metrics") {
		t.Fatalf("tampered epsilon not flagged: %v", res.Violations)
	}
	run = cleanRun(t)
	run.Report.Total.Beta -= 1
	if res := Check(run); !hasCheck(res, "metrics") {
		t.Fatalf("tampered beta not flagged: %v", res.Violations)
	}
}

func TestDetectsTimeTravel(t *testing.T) {
	run := cleanRun(t)
	// Request 2's record starts before its arrival.
	run.Records[1].Start = 0.5
	res := Check(run)
	if !hasViolationFor(res, "timing", 2) {
		t.Fatalf("start-before-arrival not flagged: %v", res.Violations)
	}
}

func TestDetectsMissingRequestID(t *testing.T) {
	run := cleanRun(t)
	run.Events[0].ReqID = 0 // an arrive with no identity
	res := Check(run)
	if !hasCheck(res, "identity") {
		t.Fatalf("missing request ID not flagged: %v", res.Violations)
	}
}

func TestTruncatedTraceIsAViolation(t *testing.T) {
	run := cleanRun(t)
	run.Dropped = 7
	res := Check(run)
	if !res.Truncated || !hasCheck(res, "trace") {
		t.Fatalf("truncated trace not flagged: %+v", res)
	}
	if !strings.Contains(res.Summary(), "trace truncated") {
		t.Fatalf("summary: %q", res.Summary())
	}
}

func hasCheck(res Result, check string) bool {
	for _, v := range res.Violations {
		if v.Check == check {
			return true
		}
	}
	return false
}

func hasViolationFor(res Result, check string, reqID uint64) bool {
	for _, v := range res.Violations {
		if v.Check == check && v.ReqID == reqID {
			return true
		}
	}
	return false
}

// migratedRun extends the clean run with a migration chain: request 2
// is dispatched to S2, offered off it, withdrawn, re-dispatched to S1
// (task 2) and executes there.
func migratedRun(t *testing.T) Run {
	t.Helper()
	events := []trace.Event{
		{Time: 0, Kind: trace.KindArrive, ReqID: 1, Agent: "S1", App: "fft"},
		{Time: 0, Kind: trace.KindDispatch, ReqID: 1, Agent: "S1", Resource: "S1", TaskID: 1, App: "fft"},
		{Time: 1, Kind: trace.KindArrive, ReqID: 2, Agent: "S1", App: "cpi"},
		{Time: 1, Kind: trace.KindDispatch, ReqID: 2, Agent: "S1", Resource: "S2", TaskID: 1, App: "cpi"},
		{Time: 2, Kind: trace.KindStart, ReqID: 1, Resource: "S1", TaskID: 1, App: "fft"},
		{Time: 3, Kind: trace.KindMigrateOffer, ReqID: 2, Agent: "S2", Resource: "S2", TaskID: 1, App: "cpi"},
		{Time: 3, Kind: trace.KindMigrateWithdraw, ReqID: 2, Resource: "S2", TaskID: 1, App: "cpi"},
		{Time: 3, Kind: trace.KindMigrateRedispatch, ReqID: 2, Agent: "S1", Resource: "S1", TaskID: 2, App: "cpi"},
		{Time: 6, Kind: trace.KindComplete, ReqID: 1, Resource: "S1", TaskID: 1, App: "fft"},
		{Time: 6, Kind: trace.KindStart, ReqID: 2, Resource: "S1", TaskID: 2, App: "cpi"},
		{Time: 8, Kind: trace.KindComplete, ReqID: 2, Resource: "S1", TaskID: 2, App: "cpi"},
	}
	records := []scheduler.Record{
		{ReqID: 1, TaskID: 1, Resource: "S1", Arrival: 0, Start: 2, End: 6, Deadline: 10, Mask: 0b01},
		{ReqID: 2, TaskID: 2, Resource: "S1", Arrival: 1, Start: 6, End: 8, Deadline: 12, Mask: 0b01},
	}
	dispatches := []agent.Dispatch{
		{ReqID: 1, Resource: "S1", TaskID: 1},
		{ReqID: 2, Resource: "S2", TaskID: 1},
	}
	nodes := map[string]int{"S1": 2, "S2": 2}
	rep, err := metrics.Compute(records, nodes, metrics.Window{Start: 0, End: 10})
	if err != nil {
		t.Fatal(err)
	}
	return Run{Events: events, Records: records, Dispatches: dispatches, Nodes: nodes, Report: rep}
}

func TestMigrationChainPasses(t *testing.T) {
	res := Check(migratedRun(t))
	if !res.OK() {
		t.Fatalf("clean migration chain has violations: %v", res.Violations)
	}
	c := res.Counts
	if c.MigrateOffers != 1 || c.MigrateWithdraws != 1 || c.MigrateRedispatches != 1 {
		t.Fatalf("counts: %+v", c)
	}
	if !strings.Contains(res.Summary(), "1 migrate offers (1 accepted)") {
		t.Fatalf("summary: %q", res.Summary())
	}
}

// dropEvent removes the i-th event matching kind from the run.
func dropEvent(run Run, kind trace.Kind) Run {
	out := make([]trace.Event, 0, len(run.Events))
	dropped := false
	for _, ev := range run.Events {
		if !dropped && ev.Kind == kind {
			dropped = true
			continue
		}
		out = append(out, ev)
	}
	run.Events = out
	return run
}

func TestDetectsRedispatchWithoutWithdraw(t *testing.T) {
	// No withdraw: the task is still queued on S2 when S1 also gets it —
	// it would run twice.
	res := Check(dropEvent(migratedRun(t), trace.KindMigrateWithdraw))
	if res.OK() {
		t.Fatal("duplicated task not detected")
	}
	if !hasViolation(res, "run twice") {
		t.Fatalf("no duplication violation in %v", res.Violations)
	}
}

func TestDetectsWithdrawNeverRedispatched(t *testing.T) {
	// No re-dispatch: the withdraw removed the task from S2 and nothing
	// re-placed it — but it executed anyway (and the record says S1), so
	// both the vanish and the phantom execution must surface.
	res := Check(dropEvent(migratedRun(t), trace.KindMigrateRedispatch))
	if res.OK() {
		t.Fatal("vanished task not detected")
	}
	if !hasViolation(res, "vanished") {
		t.Fatalf("no vanish violation in %v", res.Violations)
	}
	if !hasViolation(res, "started while withdrawn") {
		t.Fatalf("no started-while-withdrawn violation in %v", res.Violations)
	}
}

func TestDetectsWithdrawWithoutOffer(t *testing.T) {
	res := Check(dropEvent(migratedRun(t), trace.KindMigrateOffer))
	if res.OK() {
		t.Fatal("unoffered withdraw not detected")
	}
	if !hasViolation(res, "without a preceding migrate-offer") {
		t.Fatalf("no offer-order violation in %v", res.Violations)
	}
}

func TestDetectsOfferFromWrongResource(t *testing.T) {
	run := migratedRun(t)
	for i := range run.Events {
		if run.Events[i].Kind == trace.KindMigrateOffer {
			run.Events[i].Resource = "S1" // the task was placed on S2
		}
	}
	res := Check(run)
	if res.OK() {
		t.Fatal("misplaced offer not detected")
	}
	if !hasViolation(res, "migrate-offer from S1") {
		t.Fatalf("no misplacement violation in %v", res.Violations)
	}
}

func TestDetectsStartOnOriginAfterMigration(t *testing.T) {
	// The chain completes, but the execution happens back on the origin:
	// the migration was a lie.
	run := migratedRun(t)
	for i := range run.Events {
		ev := &run.Events[i]
		if ev.ReqID != 2 {
			continue
		}
		if ev.Kind == trace.KindStart || ev.Kind == trace.KindComplete {
			ev.Resource = "S2"
		}
	}
	run.Records[1].Resource = "S2"
	run.Records[1].TaskID = 2
	res := Check(run)
	if res.OK() {
		t.Fatal("execution on the withdrawn origin not detected")
	}
	if !hasViolation(res, "last placed on") {
		t.Fatalf("no placement violation in %v", res.Violations)
	}
}

// hasViolation reports whether any violation's detail contains the
// substring.
func hasViolation(res Result, detail string) bool {
	for _, v := range res.Violations {
		if strings.Contains(v.Detail, detail) {
			return true
		}
	}
	return false
}
