// Package metrics implements the three performance statistics of §3.3
// used to characterise grid load balancing: the average advance time of
// application execution completion ε (eq. 11), the average resource
// utilisation rate υ (eqs. 12–13) and the load balancing level β
// (eqs. 14–15), computed per grid resource and for the overall grid.
package metrics

import (
	"fmt"
	"math"
	"math/bits"
	"sort"

	"repro/internal/scheduler"
)

// Window is the measurement period t of eq. 12.
type Window struct {
	Start float64
	End   float64
}

// Length returns the window duration.
func (w Window) Length() float64 { return w.End - w.Start }

// Report holds the §3.3 statistics for one scope (a resource or the grid).
type Report struct {
	Name      string
	Tasks     int       // M: tasks completed in this scope
	Epsilon   float64   // ε seconds; negative when most deadlines fail (eq. 11)
	Upsilon   float64   // υ percent in [0, 100] (eq. 13)
	Deviation float64   // d: mean square deviation of node utilisation (eq. 14), in percent points
	Beta      float64   // β percent (eq. 15)
	NodeUtil  []float64 // υ_i percent per node (eq. 12)
}

// GridReport aggregates per-resource reports plus the overall grid row of
// Table 3.
type GridReport struct {
	PerResource []Report
	Total       Report
	Window      Window
}

// ResourceByName returns the named per-resource report.
func (g GridReport) ResourceByName(name string) (Report, bool) {
	for _, r := range g.PerResource {
		if r.Name == name {
			return r, true
		}
	}
	return Report{}, false
}

// Compute derives the §3.3 metrics from execution records. nodesByResource
// gives each resource's node count N_r; resources with no records still
// appear (fully idle). The window is the period t over which utilisation
// is measured; use WindowOver to derive it from the records themselves.
func Compute(recs []scheduler.Record, nodesByResource map[string]int, w Window) (GridReport, error) {
	if w.Length() <= 0 {
		return GridReport{}, fmt.Errorf("metrics: empty window [%g, %g]", w.Start, w.End)
	}
	names := make([]string, 0, len(nodesByResource))
	for name, n := range nodesByResource {
		if n <= 0 {
			return GridReport{}, fmt.Errorf("metrics: resource %q has %d nodes", name, n)
		}
		names = append(names, name)
	}
	sort.Strings(names)

	busy := map[string][]float64{} // per-resource per-node busy seconds in window
	for name, n := range nodesByResource {
		busy[name] = make([]float64, n)
	}
	perTasks := map[string][]scheduler.Record{}
	for _, r := range recs {
		nodes, ok := busy[r.Resource]
		if !ok {
			return GridReport{}, fmt.Errorf("metrics: record for unknown resource %q", r.Resource)
		}
		perTasks[r.Resource] = append(perTasks[r.Resource], r)
		span := overlap(r.Start, r.End, w)
		if span <= 0 {
			continue
		}
		for m := r.Mask; m != 0; m &= m - 1 {
			i := bits.TrailingZeros64(m)
			if i >= len(nodes) {
				return GridReport{}, fmt.Errorf("metrics: record on %q uses node %d of %d", r.Resource, i, len(nodes))
			}
			nodes[i] += span
		}
	}

	out := GridReport{Window: w}
	var allUtil []float64
	var totalTasks int
	var totalAdvance float64
	for _, name := range names {
		rep := summarise(name, perTasks[name], busy[name], w)
		out.PerResource = append(out.PerResource, rep)
		allUtil = append(allUtil, rep.NodeUtil...)
		totalTasks += rep.Tasks
		totalAdvance += sumAdvance(perTasks[name])
	}
	out.Total = Report{Name: "Total", Tasks: totalTasks, NodeUtil: allUtil}
	if totalTasks > 0 {
		out.Total.Epsilon = totalAdvance / float64(totalTasks)
	}
	out.Total.Upsilon, out.Total.Deviation, out.Total.Beta = balance(allUtil)
	return out, nil
}

// WindowOver returns the measurement window [0, latest completion] over
// the records, with a minimum end of atLeast (e.g. the request phase
// length) so fully idle experiments still have a period.
func WindowOver(recs []scheduler.Record, atLeast float64) Window {
	end := atLeast
	for _, r := range recs {
		if r.End > end {
			end = r.End
		}
	}
	if end <= 0 {
		end = 1
	}
	return Window{Start: 0, End: end}
}

func overlap(a, b float64, w Window) float64 {
	lo, hi := math.Max(a, w.Start), math.Min(b, w.End)
	if hi <= lo {
		return 0
	}
	return hi - lo
}

func sumAdvance(recs []scheduler.Record) float64 {
	var s float64
	for _, r := range recs {
		s += r.Deadline - r.End
	}
	return s
}

func summarise(name string, recs []scheduler.Record, nodeBusy []float64, w Window) Report {
	rep := Report{Name: name, Tasks: len(recs), NodeUtil: make([]float64, len(nodeBusy))}
	t := w.Length()
	for i, b := range nodeBusy {
		rep.NodeUtil[i] = b / t * 100
	}
	if len(recs) > 0 {
		rep.Epsilon = sumAdvance(recs) / float64(len(recs))
	}
	rep.Upsilon, rep.Deviation, rep.Beta = balance(rep.NodeUtil)
	return rep
}

// balance computes eqs. 13–15 over per-node utilisation percentages:
// the mean υ, the mean square deviation d and the load balancing level
// β = (1 − d/υ)·100%. β is 0 when the resource is entirely idle (υ = 0)
// and is floored at 0 — by eq. 15 "the most effective load balancing is
// achieved when d equals zero"; d > υ simply means no balance at all.
func balance(util []float64) (upsilon, d, beta float64) {
	if len(util) == 0 {
		return 0, 0, 0
	}
	for _, u := range util {
		upsilon += u
	}
	upsilon /= float64(len(util))
	var ss float64
	for _, u := range util {
		ss += (u - upsilon) * (u - upsilon)
	}
	d = math.Sqrt(ss / float64(len(util)))
	if upsilon == 0 {
		return 0, d, 0
	}
	beta = (1 - d/upsilon) * 100
	if beta < 0 {
		beta = 0
	}
	return upsilon, d, beta
}
