package metrics

import (
	"math"
	"strings"
	"testing"

	"repro/internal/pace"
	"repro/internal/scheduler"
)

func appRec(t *testing.T, app string, arrival, start, end, deadline float64, mask uint64) scheduler.Record {
	t.Helper()
	m, ok := pace.CaseStudyLibrary().Lookup(app)
	if !ok {
		t.Fatalf("no model %s", app)
	}
	return scheduler.Record{
		App: m, Resource: "S1", Arrival: arrival, Start: start, End: end,
		Deadline: deadline, Mask: mask,
	}
}

func TestByApp(t *testing.T) {
	recs := []scheduler.Record{
		appRec(t, "fft", 0, 2, 12, 20, 0b11),   // met, wait 2, adv 8, 2 procs, len 10
		appRec(t, "fft", 5, 5, 30, 20, 0b1),    // missed, wait 0, adv -10, 1 proc, len 25
		appRec(t, "cpi", 0, 0, 5, 100, 0b1111), // met
	}
	stats := ByApp(recs)
	if len(stats) != 2 {
		t.Fatalf("%d app groups", len(stats))
	}
	// Sorted by name: cpi first.
	if stats[0].App != "cpi" || stats[1].App != "fft" {
		t.Fatalf("order: %v %v", stats[0].App, stats[1].App)
	}
	fft := stats[1]
	if fft.Tasks != 2 || fft.MetRate != 0.5 {
		t.Fatalf("fft stats: %+v", fft)
	}
	if fft.MeanAdv != -1 { // (8 + -10) / 2
		t.Fatalf("fft mean advance %v", fft.MeanAdv)
	}
	if fft.MeanWait != 1 || fft.MeanProcs != 1.5 || fft.MeanLength != 17.5 {
		t.Fatalf("fft stats: %+v", fft)
	}
}

func TestByAppNilApp(t *testing.T) {
	stats := ByApp([]scheduler.Record{{Resource: "S1", Mask: 1, End: 1, Deadline: 2}})
	if len(stats) != 1 || stats[0].App != "<nil>" {
		t.Fatalf("stats: %+v", stats)
	}
}

func TestPercentiles(t *testing.T) {
	vals := []float64{10, 20, 30, 40, 50}
	ps := Percentiles(vals, 0, 0.25, 0.5, 0.75, 1)
	want := []float64{10, 20, 30, 40, 50}
	for i := range want {
		if ps[i] != want[i] {
			t.Fatalf("percentiles = %v, want %v", ps, want)
		}
	}
	// Interpolation between points.
	if p := Percentiles(vals, 0.125)[0]; p != 15 {
		t.Fatalf("p12.5 = %v, want 15", p)
	}
	// Input must not be reordered.
	vals2 := []float64{3, 1, 2}
	_ = Percentiles(vals2, 0.5)
	if vals2[0] != 3 {
		t.Fatal("Percentiles mutated its input")
	}
	// Out-of-range quantiles clamp.
	if p := Percentiles(vals, -1)[0]; p != 10 {
		t.Fatalf("q<0 = %v", p)
	}
	if p := Percentiles(vals, 2)[0]; p != 50 {
		t.Fatalf("q>1 = %v", p)
	}
	// Empty input yields NaN.
	if p := Percentiles(nil, 0.5)[0]; !math.IsNaN(p) {
		t.Fatalf("empty percentile = %v", p)
	}
}

func TestLateness(t *testing.T) {
	recs := []scheduler.Record{
		appRec(t, "fft", 0, 0, 10, 20, 1),  // adv +10
		appRec(t, "fft", 0, 0, 30, 20, 1),  // adv -10
		appRec(t, "fft", 0, 0, 20, 20, 1),  // adv 0 (met)
		appRec(t, "fft", 0, 0, 120, 20, 1), // adv -100
	}
	d := Lateness(recs)
	if d.Tasks != 4 || d.Met != 2 {
		t.Fatalf("lateness: %+v", d)
	}
	if d.Worst != -100 || d.BestAdv != 10 {
		t.Fatalf("extremes: %+v", d)
	}
	if d.P50 != -5 { // median of {-100,-10,0,10}
		t.Fatalf("median = %v", d.P50)
	}
	empty := Lateness(nil)
	if empty.Tasks != 0 || empty.Worst != 0 {
		t.Fatalf("empty lateness: %+v", empty)
	}
}

func TestFormatStats(t *testing.T) {
	recs := []scheduler.Record{
		appRec(t, "fft", 0, 0, 10, 20, 1),
		appRec(t, "improc", 0, 1, 50, 20, 0b11),
	}
	out := FormatStats(recs)
	for _, want := range []string{"fft", "improc", "met", "median", "2 tasks: 1 met"} {
		if !strings.Contains(out, want) {
			t.Fatalf("FormatStats missing %q:\n%s", want, out)
		}
	}
}

func TestFormatStatsEmpty(t *testing.T) {
	out := FormatStats(nil)
	if !strings.Contains(out, "no records") {
		t.Fatalf("empty FormatStats should say so:\n%s", out)
	}
	if strings.Contains(out, "NaN") {
		t.Fatalf("empty FormatStats prints NaN:\n%s", out)
	}
}

func TestFormatStatsSingleRecord(t *testing.T) {
	out := FormatStats([]scheduler.Record{appRec(t, "fft", 0, 0, 10, 20, 1)})
	if strings.Contains(out, "NaN") {
		t.Fatalf("single-record FormatStats prints NaN:\n%s", out)
	}
	for _, want := range []string{"fft", "1 tasks: 1 met", "median 10.0 s"} {
		if !strings.Contains(out, want) {
			t.Fatalf("FormatStats missing %q:\n%s", want, out)
		}
	}
}

func TestThroughput(t *testing.T) {
	recs := []scheduler.Record{
		appRec(t, "fft", 0, 0, 10, 20, 0b1),
		appRec(t, "fft", 0, 0, 30, 20, 0b1),
		appRec(t, "cpi", 0, 0, 90, 100, 0b1),
		appRec(t, "cpi", 0, 0, 150, 100, 0b1), // completes outside the window
	}
	w := Window{Start: 0, End: 100}
	if got := Throughput(recs, w); math.Abs(got-0.03) > 1e-12 {
		t.Fatalf("Throughput = %v, want 0.03 (3 completions / 100 s)", got)
	}
	// A window that starts late excludes earlier completions.
	if got := Throughput(recs, Window{Start: 20, End: 100}); math.Abs(got-2.0/80) > 1e-12 {
		t.Fatalf("late-window Throughput = %v, want %v", got, 2.0/80)
	}
	if got := Throughput(recs, Window{Start: 5, End: 5}); got != 0 {
		t.Fatalf("degenerate window Throughput = %v, want 0", got)
	}
	if got := Throughput(nil, w); got != 0 {
		t.Fatalf("empty Throughput = %v, want 0", got)
	}
}

func TestHitRate(t *testing.T) {
	recs := []scheduler.Record{
		appRec(t, "fft", 0, 0, 10, 20, 0b1),  // met
		appRec(t, "fft", 0, 0, 20, 20, 0b1),  // met exactly on the deadline
		appRec(t, "fft", 0, 0, 30, 20, 0b1),  // missed
		appRec(t, "cpi", 0, 0, 50, 100, 0b1), // met
	}
	if got := HitRate(recs); math.Abs(got-0.75) > 1e-12 {
		t.Fatalf("HitRate = %v, want 0.75", got)
	}
	if got := HitRate(nil); got != 0 {
		t.Fatalf("empty HitRate = %v, want 0", got)
	}
}

func TestFormatStatsIncludesThroughputAndHitRate(t *testing.T) {
	recs := []scheduler.Record{
		appRec(t, "fft", 0, 0, 10, 20, 0b1),
		appRec(t, "fft", 0, 0, 30, 20, 0b1),
	}
	out := FormatStats(recs)
	if !strings.Contains(out, "throughput 0.07 tasks/s over 30 s") {
		t.Fatalf("FormatStats missing throughput line:\n%s", out)
	}
	if !strings.Contains(out, "deadline-hit rate 50.0%") {
		t.Fatalf("FormatStats missing hit-rate:\n%s", out)
	}
}
