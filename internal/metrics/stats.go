package metrics

import (
	"fmt"
	"math"
	"math/bits"
	"sort"
	"strings"

	"repro/internal/scheduler"
)

// The §3.3 metrics summarise load balancing; this file adds the
// distributional statistics a grid operator would also want: per-
// application behaviour, lateness percentiles and queueing delays.

// AppStats aggregates the records of one application.
type AppStats struct {
	App        string
	Tasks      int
	MetRate    float64 // fraction completing by their deadline
	MeanAdv    float64 // mean (δ − η) seconds
	MeanWait   float64 // mean (start − arrival) seconds
	MeanProcs  float64 // mean allocated node count
	MeanLength float64 // mean execution time (η − τ)
}

// ByApp groups execution records per application model.
func ByApp(recs []scheduler.Record) []AppStats {
	agg := map[string]*AppStats{}
	for _, r := range recs {
		name := "<nil>"
		if r.App != nil {
			name = r.App.Name
		}
		s := agg[name]
		if s == nil {
			s = &AppStats{App: name}
			agg[name] = s
		}
		s.Tasks++
		if r.End <= r.Deadline {
			s.MetRate++
		}
		s.MeanAdv += r.Deadline - r.End
		s.MeanWait += r.Start - r.Arrival
		s.MeanProcs += float64(bits.OnesCount64(r.Mask))
		s.MeanLength += r.End - r.Start
	}
	out := make([]AppStats, 0, len(agg))
	for _, s := range agg {
		n := float64(s.Tasks)
		s.MetRate /= n
		s.MeanAdv /= n
		s.MeanWait /= n
		s.MeanProcs /= n
		s.MeanLength /= n
		out = append(out, *s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].App < out[j].App })
	return out
}

// Percentiles returns the q-quantiles (0..1) of the values using linear
// interpolation; the input is not modified. Empty input yields NaNs.
func Percentiles(values []float64, qs ...float64) []float64 {
	out := make([]float64, len(qs))
	if len(values) == 0 {
		for i := range out {
			out[i] = math.NaN()
		}
		return out
	}
	sorted := make([]float64, len(values))
	copy(sorted, values)
	sort.Float64s(sorted)
	for i, q := range qs {
		if q <= 0 {
			out[i] = sorted[0]
			continue
		}
		if q >= 1 {
			out[i] = sorted[len(sorted)-1]
			continue
		}
		pos := q * float64(len(sorted)-1)
		lo := int(math.Floor(pos))
		frac := pos - float64(lo)
		if lo+1 < len(sorted) {
			out[i] = sorted[lo]*(1-frac) + sorted[lo+1]*frac
		} else {
			out[i] = sorted[lo]
		}
	}
	return out
}

// LatenessDistribution describes how completions relate to deadlines
// across a record set.
type LatenessDistribution struct {
	Tasks   int
	Met     int
	P10     float64 // 10th percentile of advance (δ − η): the worst misses
	P50     float64
	P90     float64
	Worst   float64 // minimum advance (most negative = worst overrun)
	BestAdv float64 // maximum advance
}

// Lateness computes the advance-time distribution.
func Lateness(recs []scheduler.Record) LatenessDistribution {
	d := LatenessDistribution{Tasks: len(recs), Worst: math.Inf(1), BestAdv: math.Inf(-1)}
	if len(recs) == 0 {
		d.Worst, d.BestAdv = 0, 0
		return d
	}
	adv := make([]float64, len(recs))
	for i, r := range recs {
		adv[i] = r.Deadline - r.End
		if r.End <= r.Deadline {
			d.Met++
		}
		if adv[i] < d.Worst {
			d.Worst = adv[i]
		}
		if adv[i] > d.BestAdv {
			d.BestAdv = adv[i]
		}
	}
	ps := Percentiles(adv, 0.10, 0.50, 0.90)
	d.P10, d.P50, d.P90 = ps[0], ps[1], ps[2]
	return d
}

// Throughput returns completed tasks per virtual second over the window:
// records whose completion time falls inside [w.Start, w.End], divided by
// the window length. A degenerate window yields 0 rather than a division
// blow-up.
func Throughput(recs []scheduler.Record, w Window) float64 {
	if w.Length() <= 0 {
		return 0
	}
	n := 0
	for _, r := range recs {
		if r.End >= w.Start && r.End <= w.End {
			n++
		}
	}
	return float64(n) / w.Length()
}

// HitRate returns the fraction of records completing by their deadline
// (End ≤ Deadline). An empty record set scores 0: a grid that completed
// nothing met no deadlines.
func HitRate(recs []scheduler.Record) float64 {
	if len(recs) == 0 {
		return 0
	}
	met := 0
	for _, r := range recs {
		if r.End <= r.Deadline {
			met++
		}
	}
	return float64(met) / float64(len(recs))
}

// FormatStats renders the per-application table plus the lateness
// distribution for a record set. An empty record set short-circuits —
// formatting the NaN percentiles an empty Lateness carries would print
// "p10 NaN s" instead of saying what happened.
func FormatStats(recs []scheduler.Record) string {
	if len(recs) == 0 {
		return "Per-application statistics\n\nno records\n"
	}
	var b strings.Builder
	b.WriteString("Per-application statistics\n\n")
	fmt.Fprintf(&b, "%-10s %6s %8s %9s %9s %8s %9s\n",
		"app", "tasks", "met", "adv (s)", "wait (s)", "procs", "exec (s)")
	for _, s := range ByApp(recs) {
		fmt.Fprintf(&b, "%-10s %6d %7.0f%% %9.1f %9.1f %8.1f %9.1f\n",
			s.App, s.Tasks, s.MetRate*100, s.MeanAdv, s.MeanWait, s.MeanProcs, s.MeanLength)
	}
	d := Lateness(recs)
	fmt.Fprintf(&b, "\nAdvance-time distribution over %d tasks: %d met their deadline\n", d.Tasks, d.Met)
	fmt.Fprintf(&b, "p10 %.1f s, median %.1f s, p90 %.1f s, worst %.1f s, best %.1f s\n",
		d.P10, d.P50, d.P90, d.Worst, d.BestAdv)
	w := WindowOver(recs, 0)
	fmt.Fprintf(&b, "throughput %.2f tasks/s over %.0f s, deadline-hit rate %.1f%%\n",
		Throughput(recs, w), w.Length(), HitRate(recs)*100)
	return b.String()
}
