package metrics_test

import (
	"fmt"

	"repro/internal/metrics"
	"repro/internal/scheduler"
)

// Compute derives the paper's three load-balancing statistics (§3.3) from
// execution records: ε (advance time), υ (utilisation) and β (balance).
func ExampleCompute() {
	recs := []scheduler.Record{
		// Node 0 busy the whole 100 s window; node 1 for half of it.
		{Resource: "S1", Mask: 0b01, Start: 0, End: 100, Deadline: 120},
		{Resource: "S1", Mask: 0b10, Start: 0, End: 50, Deadline: 40},
	}
	rep, err := metrics.Compute(recs, map[string]int{"S1": 2}, metrics.Window{Start: 0, End: 100})
	if err != nil {
		panic(err)
	}
	s1 := rep.PerResource[0]
	fmt.Printf("epsilon %.0f s (one early by 20, one late by 10)\n", s1.Epsilon)
	fmt.Printf("upsilon %.0f%% (nodes at 100%% and 50%%)\n", s1.Upsilon)
	fmt.Printf("beta %.1f%%\n", s1.Beta)
	// Output:
	// epsilon 5 s (one early by 20, one late by 10)
	// upsilon 75% (nodes at 100% and 50%)
	// beta 66.7%
}
