package metrics

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/scheduler"
	"repro/internal/sim"
)

func rec(res string, mask uint64, start, end, deadline float64) scheduler.Record {
	return scheduler.Record{Resource: res, Mask: mask, Start: start, End: end, Deadline: deadline}
}

func TestComputeEpsilon(t *testing.T) {
	recs := []scheduler.Record{
		rec("S1", 1, 0, 10, 30),  // advance +20
		rec("S1", 1, 10, 50, 40), // advance -10
	}
	g, err := Compute(recs, map[string]int{"S1": 1}, Window{0, 100})
	if err != nil {
		t.Fatal(err)
	}
	if got := g.PerResource[0].Epsilon; got != 5 {
		t.Fatalf("ε = %v, want (20-10)/2 = 5", got)
	}
	if g.Total.Epsilon != 5 {
		t.Fatalf("total ε = %v", g.Total.Epsilon)
	}
}

func TestComputeEpsilonNegativeWhenDeadlinesFail(t *testing.T) {
	recs := []scheduler.Record{rec("S1", 1, 0, 500, 100)}
	g, err := Compute(recs, map[string]int{"S1": 1}, Window{0, 500})
	if err != nil {
		t.Fatal(err)
	}
	if g.Total.Epsilon != -400 {
		t.Fatalf("ε = %v, want -400 (eq. 11 is negative when most deadlines fail)", g.Total.Epsilon)
	}
}

func TestComputeUtilisation(t *testing.T) {
	// Node 0 busy 50 of 100 s, node 1 busy 100 of 100 s.
	recs := []scheduler.Record{
		rec("S1", 0b01, 0, 50, 1e9),
		rec("S1", 0b10, 0, 100, 1e9),
	}
	g, err := Compute(recs, map[string]int{"S1": 2}, Window{0, 100})
	if err != nil {
		t.Fatal(err)
	}
	r := g.PerResource[0]
	if r.NodeUtil[0] != 50 || r.NodeUtil[1] != 100 {
		t.Fatalf("node util = %v", r.NodeUtil)
	}
	if r.Upsilon != 75 {
		t.Fatalf("υ = %v, want 75", r.Upsilon)
	}
	wantD := 25.0 // sqrt(((50-75)^2+(100-75)^2)/2)
	if math.Abs(r.Deviation-wantD) > 1e-9 {
		t.Fatalf("d = %v, want %v", r.Deviation, wantD)
	}
	wantBeta := (1 - wantD/75) * 100
	if math.Abs(r.Beta-wantBeta) > 1e-9 {
		t.Fatalf("β = %v, want %v", r.Beta, wantBeta)
	}
}

func TestComputePerfectBalance(t *testing.T) {
	recs := []scheduler.Record{
		rec("S1", 0b11, 0, 100, 1e9), // both nodes equally busy
	}
	g, err := Compute(recs, map[string]int{"S1": 2}, Window{0, 100})
	if err != nil {
		t.Fatal(err)
	}
	r := g.PerResource[0]
	if r.Upsilon != 100 || r.Beta != 100 || r.Deviation != 0 {
		t.Fatalf("perfect balance: %+v", r)
	}
}

func TestComputeIdleResourceAppears(t *testing.T) {
	recs := []scheduler.Record{rec("S1", 1, 0, 10, 1e9)}
	g, err := Compute(recs, map[string]int{"S1": 1, "S2": 4}, Window{0, 100})
	if err != nil {
		t.Fatal(err)
	}
	if len(g.PerResource) != 2 {
		t.Fatalf("%d resources reported", len(g.PerResource))
	}
	idle, ok := g.ResourceByName("S2")
	if !ok {
		t.Fatal("idle resource missing")
	}
	if idle.Upsilon != 0 || idle.Beta != 0 || idle.Tasks != 0 {
		t.Fatalf("idle resource metrics: %+v", idle)
	}
}

func TestComputeWindowClipping(t *testing.T) {
	// Task extends past the window; only the in-window part counts.
	recs := []scheduler.Record{rec("S1", 1, 50, 150, 1e9)}
	g, err := Compute(recs, map[string]int{"S1": 1}, Window{0, 100})
	if err != nil {
		t.Fatal(err)
	}
	if got := g.PerResource[0].NodeUtil[0]; got != 50 {
		t.Fatalf("clipped util = %v, want 50", got)
	}
	// Entirely outside the window contributes nothing but still counts as
	// a task for ε.
	recs = append(recs, rec("S1", 1, 200, 300, 400))
	g, err = Compute(recs, map[string]int{"S1": 1}, Window{0, 100})
	if err != nil {
		t.Fatal(err)
	}
	if g.PerResource[0].Tasks != 2 {
		t.Fatalf("tasks = %d", g.PerResource[0].Tasks)
	}
	if got := g.PerResource[0].NodeUtil[0]; got != 50 {
		t.Fatalf("out-of-window task changed util: %v", got)
	}
}

func TestComputeTotalSpansResources(t *testing.T) {
	// S1 fully busy, S2 fully idle: per-resource βs are 100 and 0, but
	// the grid-wide β must be low because the imbalance is across
	// resources — the effect experiment 2 exposes (Table 3).
	recs := []scheduler.Record{rec("S1", 0b11, 0, 100, 1e9)}
	g, err := Compute(recs, map[string]int{"S1": 2, "S2": 2}, Window{0, 100})
	if err != nil {
		t.Fatal(err)
	}
	s1, _ := g.ResourceByName("S1")
	if s1.Beta != 100 {
		t.Fatalf("S1 β = %v", s1.Beta)
	}
	if g.Total.Upsilon != 50 {
		t.Fatalf("total υ = %v", g.Total.Upsilon)
	}
	if g.Total.Beta != 0 { // d = 50, υ = 50 -> β = 0
		t.Fatalf("total β = %v, want 0", g.Total.Beta)
	}
}

func TestComputeErrors(t *testing.T) {
	if _, err := Compute(nil, map[string]int{"S1": 1}, Window{5, 5}); err == nil {
		t.Error("empty window accepted")
	}
	if _, err := Compute(nil, map[string]int{"S1": 0}, Window{0, 1}); err == nil {
		t.Error("zero-node resource accepted")
	}
	if _, err := Compute([]scheduler.Record{rec("SX", 1, 0, 1, 2)}, map[string]int{"S1": 1}, Window{0, 10}); err == nil {
		t.Error("unknown resource accepted")
	}
	if _, err := Compute([]scheduler.Record{rec("S1", 0b10, 0, 1, 2)}, map[string]int{"S1": 1}, Window{0, 10}); err == nil {
		t.Error("node index beyond resource accepted")
	}
}

func TestWindowOver(t *testing.T) {
	recs := []scheduler.Record{rec("S1", 1, 0, 42, 1), rec("S1", 1, 10, 99, 1)}
	w := WindowOver(recs, 600)
	if w.Start != 0 || w.End != 600 {
		t.Fatalf("window = %+v, want [0, 600]", w)
	}
	w = WindowOver(recs, 50)
	if w.End != 99 {
		t.Fatalf("window end = %v, want latest completion 99", w.End)
	}
	w = WindowOver(nil, 0)
	if w.Length() <= 0 {
		t.Fatalf("degenerate window %+v", w)
	}
}

func TestBalanceProperties(t *testing.T) {
	rng := sim.NewRNG(3)
	prop := func(nRaw uint8) bool {
		n := int(nRaw)%16 + 1
		util := make([]float64, n)
		for i := range util {
			util[i] = rng.Float64() * 100
		}
		u, d, b := balance(util)
		if u < 0 || u > 100+1e-9 {
			return false
		}
		if d < 0 {
			return false
		}
		if b < 0 || b > 100+1e-9 {
			return false
		}
		// Uniform vectors balance perfectly.
		uniform := make([]float64, n)
		for i := range uniform {
			uniform[i] = 42
		}
		_, d2, b2 := balance(uniform)
		return d2 == 0 && b2 == 100
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestBalanceEmpty(t *testing.T) {
	u, d, b := balance(nil)
	if u != 0 || d != 0 || b != 0 {
		t.Fatalf("balance(nil) = %v %v %v", u, d, b)
	}
}

func TestReportOrderingDeterministic(t *testing.T) {
	recs := []scheduler.Record{}
	nodes := map[string]int{"S3": 1, "S1": 1, "S2": 1}
	g, err := Compute(recs, nodes, Window{0, 10})
	if err != nil {
		t.Fatal(err)
	}
	if g.PerResource[0].Name != "S1" || g.PerResource[1].Name != "S2" || g.PerResource[2].Name != "S3" {
		t.Fatalf("resources out of order: %+v", g.PerResource)
	}
}
