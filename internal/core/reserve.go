package core

import (
	"fmt"
	"time"

	"repro/internal/agent"
	"repro/internal/pace"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// Reservation-policy defaults; see ReservationPolicy.
const (
	// DefaultReservationHoldTTL is how long a phase-one hold blocks its
	// window awaiting confirm, in simulated seconds. Within the grid the
	// shop→confirm handshake completes inside one simulator event, so the
	// TTL only matters for holds placed by external clients (the daemons)
	// or abandoned by a crashed requester.
	DefaultReservationHoldTTL = 30.0
)

// ReservationPolicy configures the advance-reservation submit path: the
// two-phase commit budget and the admission slip bound. The zero value
// selects the defaults below; the policy has no effect at all — no
// events, no state, byte-identical runs — until SubmitReservationAt is
// called.
type ReservationPolicy struct {
	// HoldTTL is the phase-one hold lifetime in simulated seconds;
	// <= 0 selects DefaultReservationHoldTTL.
	HoldTTL float64
	// MaxSlip bounds how far past the requested start the quoted common
	// window may slip before the reservation is rejected instead of
	// confirmed late; <= 0 means unbounded (any feasible window is
	// accepted).
	MaxSlip float64
	// SweepPeriod is the cadence of the expiry sweep that retires holds
	// whose TTL lapsed unconfirmed; <= 0 selects HoldTTL.
	SweepPeriod float64
}

// withDefaults resolves the zero fields.
func (p ReservationPolicy) withDefaults() ReservationPolicy {
	if p.HoldTTL <= 0 {
		p.HoldTTL = DefaultReservationHoldTTL
	}
	if p.SweepPeriod <= 0 {
		p.SweepPeriod = p.HoldTTL
	}
	return p
}

// maxSlip maps the policy's "<= 0 is unbounded" convention onto the
// agent shopper's "negative is unbounded".
func (p ReservationPolicy) maxSlip() float64 {
	if p.MaxSlip <= 0 {
		return -1
	}
	return p.MaxSlip
}

// ReservationStats counts what the reservation path did during a run.
type ReservationStats struct {
	Requested int // reservations shopped (SubmitReservationAt events)
	Confirmed int // reservations fully held and confirmed
	Rejected  int // reservations refused admission (no capacity, or slip past MaxSlip)
	Expired   int // holds retired by the TTL sweep
	Parts     int // confirmed co-allocation parts (= guaranteed-start tasks)
}

// reservist drives the reservation submit path on the simulator clock.
// It is created lazily by the first SubmitReservationAt, so a grid that
// never reserves schedules nothing and stays byte-identical.
type reservist struct {
	g     *Grid
	pol   ReservationPolicy
	stats ReservationStats

	// reserved marks the request IDs minted for confirmed reservation
	// parts, so per-class metrics can split the record stream.
	reserved map[uint64]bool

	// Instruments; all nil (and every use a no-op) without telemetry.
	cRequested *telemetry.Counter
	cConfirmed *telemetry.Counter
	cRejected  *telemetry.Counter
	cExpired   *telemetry.Counter
	// hQuote observes the wall-clock seconds each shopping round took —
	// the price of the flood quote plus the co-allocation fixed point.
	hQuote *telemetry.Histogram
	// hSlip observes, per confirmed reservation, the virtual seconds the
	// granted window starts after the requested earliest start.
	hSlip *telemetry.Histogram
}

func newReservist(g *Grid, pol ReservationPolicy) *reservist {
	r := &reservist{g: g, pol: pol.withDefaults(), reserved: map[uint64]bool{}}
	if reg := g.opts.Telemetry; reg != nil {
		r.cRequested = reg.Counter("reservations_requested_total")
		r.cConfirmed = reg.Counter("reservations_confirmed_total")
		r.cRejected = reg.Counter("reservations_rejected_total")
		r.cExpired = reg.Counter("reservations_expired_total")
		r.hQuote = reg.Histogram("reservation_quote_wall_s")
		r.hSlip = reg.Histogram("reservation_slip_s")
	}
	return r
}

// SubmitReservationAt schedules an advance-reservation request for
// virtual time at: nodes×parts nodes across parts distinct resources,
// reserved for duration seconds in a common window starting no earlier
// than startRel seconds after the request. The hierarchy is shopped for
// quotes (Fig. 6 discovery walk), the cheapest feasible common window is
// held on every part, and the holds are confirmed into guaranteed-start
// tasks — or, if no window can be granted within the policy's MaxSlip,
// everything is released and the reservation is rejected. A rejection is
// an admission outcome, not a run error: it surfaces as a fail event and
// in ReservationStats, and Run still returns nil.
//
// Each confirmed part runs as its own task with its own grid-wide
// request ID, minted here in submission order like SubmitAt's.
func (g *Grid) SubmitReservationAt(at float64, agentName, appName string, startRel, duration float64, nodes, parts int) error {
	if g.ran {
		return fmt.Errorf("core: grid already ran")
	}
	if !g.opts.UseAgents {
		return fmt.Errorf("core: reservations require agent-based discovery (UseAgents)")
	}
	app, ok := g.lib.Lookup(appName)
	if !ok {
		return fmt.Errorf("core: unknown application %q", appName)
	}
	if _, ok := g.locals[agentName]; !ok {
		return fmt.Errorf("core: unknown agent %q", agentName)
	}
	if duration <= 0 {
		return fmt.Errorf("core: non-positive reservation duration %g", duration)
	}
	if startRel < 0 {
		return fmt.Errorf("core: negative relative reservation start %g", startRel)
	}
	if nodes < 1 {
		return fmt.Errorf("core: reservation for %d nodes", nodes)
	}
	if parts < 1 {
		parts = 1
	}
	if at > g.lastRequestAt {
		g.lastRequestAt = at
	}
	g.requests += parts
	// One request ID per co-allocation part: each part becomes a distinct
	// task on a distinct resource with its own lifecycle, so each needs
	// its own join key. The first part's ID doubles as the grid-wide
	// reservation ID — unique by construction.
	reqIDs := make([]uint64, parts)
	for i := range reqIDs {
		g.nextReqID++
		reqIDs[i] = g.nextReqID
	}
	if g.resv == nil {
		g.resv = newReservist(g, g.opts.Reservation)
	}
	r := g.resv
	g.simr.At(at, func(now float64) {
		g.advanceAll(now)
		r.submit(now, agentName, appName, app, startRel, duration, nodes, reqIDs)
	})
	return nil
}

// submit runs one reservation event: shop, hold, confirm — or reject.
func (r *reservist) submit(now float64, agentName, appName string, app *pace.AppModel, startRel, duration float64, nodes int, reqIDs []uint64) {
	g := r.g
	parts := len(reqIDs)
	resvID := reqIDs[0]
	r.stats.Requested++
	r.cRequested.Inc()
	g.mRequests.Inc()

	// Every part arrives — and, whatever happens next, terminates in
	// exactly one dispatch-then-complete or one fail (the conservation
	// invariant internal/audit checks).
	arrival := agentName
	arrivalDown := false
	if g.injector != nil {
		target, ok := g.injector.RerouteArrival(agentName)
		switch {
		case !ok:
			arrivalDown = true
		case target != agentName:
			arrival = target
		}
	}
	for i, id := range reqIDs {
		g.traceEvent(trace.Event{
			Time: now, Kind: trace.KindArrive, ReqID: id, Agent: agentName, App: appName,
			Detail: fmt.Sprintf("reserved resv=%d part=%d/%d", resvID, i+1, parts),
		})
	}
	failAll := func(reason string) {
		r.stats.Rejected++
		r.cRejected.Inc()
		for _, id := range reqIDs {
			g.traceEvent(trace.Event{Time: now, Kind: trace.KindFail, ReqID: id, Agent: agentName, App: appName, Detail: reason})
		}
	}
	if arrivalDown {
		failAll(fmt.Sprintf("no live agent for reservation arrival at %s", agentName))
		return
	}

	a, _ := g.hier.Lookup(arrival)
	spec := agent.ReservationSpec{
		ResvID:   resvID,
		Holder:   agentName,
		Nodes:    nodes,
		Parts:    parts,
		Earliest: now + startRel,
		Duration: duration,
		TTL:      r.pol.HoldTTL,
		MaxSlip:  r.pol.maxSlip(),
	}
	wall := time.Now()
	held, err := a.ShopReservation(spec, now)
	r.hQuote.Observe(time.Since(wall).Seconds())
	if err != nil {
		failAll(err.Error())
		return
	}
	expiresAt := now + r.pol.HoldTTL
	for i, p := range held.Parts {
		g.traceEvent(trace.Event{
			Time: now, Kind: trace.KindReserveHold, ReqID: reqIDs[i],
			Agent: arrival, Resource: p.Resource, App: appName,
			Detail: fmt.Sprintf("resv=%d mask=%x win=[%g,%g) exp=%g", resvID, p.Mask, held.Start, held.End, expiresAt),
		})
	}
	for i, p := range held.Parts {
		tid, err := a.ConfirmPart(p.Resource, resvID, reqIDs[i], app, now)
		if err != nil {
			// A hold that cannot be confirmed voids the whole reservation:
			// release every part (the ones already confirmed included) and
			// fail every lifecycle. This is an internal inconsistency, not
			// an admission outcome, so it also lands in the run errors.
			for _, q := range held.Parts {
				if rerr := a.ReleasePart(q.Resource, resvID, now); rerr == nil {
					g.traceEvent(trace.Event{
						Time: now, Kind: trace.KindReserveRelease, Resource: q.Resource,
						Detail: fmt.Sprintf("resv=%d", resvID),
					})
				}
			}
			failAll(fmt.Sprintf("confirm of reservation %d on %s: %v", resvID, p.Resource, err))
			g.errs = append(g.errs, fmt.Errorf("core: reservation %d: confirm on %s: %w", resvID, p.Resource, err))
			g.mErrors.Inc()
			return
		}
		g.traceEvent(trace.Event{
			Time: now, Kind: trace.KindReserveConfirm, ReqID: reqIDs[i],
			Resource: p.Resource, TaskID: tid, App: appName,
			Detail: fmt.Sprintf("resv=%d win=[%g,%g)", resvID, held.Start, held.End),
		})
		g.recordDispatch(agent.Dispatch{Resource: p.Resource, TaskID: tid, ReqID: reqIDs[i]})
		g.traceEvent(trace.Event{
			Time: now, Kind: trace.KindDispatch, ReqID: reqIDs[i], Agent: agentName,
			Resource: p.Resource, TaskID: tid, App: appName,
			Detail: fmt.Sprintf("reserved resv=%d win=[%g,%g)", resvID, held.Start, held.End),
		})
		r.reserved[reqIDs[i]] = true
	}
	r.stats.Confirmed++
	r.cConfirmed.Inc()
	r.stats.Parts += len(held.Parts)
	r.hSlip.Observe(held.Start - spec.Earliest)
}

// sweep retires every hold whose TTL lapsed unconfirmed, making the
// expiry observable as a reserve-expire event per booking. Within the
// grid the shop→confirm handshake is atomic in virtual time, so this
// only fires for holds placed outside the submit path (tests, external
// clients driving a Local directly).
func (r *reservist) sweep(now float64) {
	g := r.g
	for _, name := range g.hier.Names() {
		for _, b := range g.locals[name].ExpireReservations(now) {
			r.stats.Expired++
			r.cExpired.Inc()
			g.traceEvent(trace.Event{
				Time: now, Kind: trace.KindReserveExpire, Resource: name,
				Detail: fmt.Sprintf("resv=%d", b.ID),
			})
		}
	}
}

// ReservationStats reports what the reservation path did during the run;
// the zero value when no reservation was ever submitted.
func (g *Grid) ReservationStats() ReservationStats {
	if g.resv == nil {
		return ReservationStats{}
	}
	return g.resv.stats
}

// ReservedRequests returns the request IDs minted for confirmed
// reservation parts — the key for splitting the record stream into
// reserved and best-effort classes. Nil when no reservation confirmed.
func (g *Grid) ReservedRequests() map[uint64]bool {
	if g.resv == nil || len(g.resv.reserved) == 0 {
		return nil
	}
	out := make(map[uint64]bool, len(g.resv.reserved))
	for id := range g.resv.reserved {
		out[id] = true
	}
	return out
}
