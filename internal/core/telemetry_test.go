package core

import (
	"fmt"
	"testing"

	"repro/internal/telemetry"
)

// runFingerprint reduces a finished grid to a string covering every
// execution record and dispatch, the byte-level identity telemetry must
// not disturb.
func runFingerprint(g *Grid) string {
	s := ""
	for _, r := range g.Records() {
		s += fmt.Sprintf("%s/%d %s %.9f %.9f %.9f\n", r.Resource, r.TaskID, r.App.Name, r.Start, r.End, r.Deadline)
	}
	for _, d := range g.Dispatches() {
		s += fmt.Sprintf("%d->%s/%d %d\n", d.ReqID, d.Resource, d.TaskID, d.Hops)
	}
	return s
}

func submitMixed(t *testing.T, g *Grid) {
	t.Helper()
	apps := []string{"sweep3d", "fft", "improc"}
	for i := 0; i < 30; i++ {
		if err := g.SubmitAt(float64(i)*2, "slow", apps[i%len(apps)], 25); err != nil {
			t.Fatal(err)
		}
	}
}

// TestTelemetryByteIdentical runs the same agent+GA workload with and
// without a registry attached and requires identical records and
// dispatches: instruments observe, they never steer.
func TestTelemetryByteIdentical(t *testing.T) {
	base := Options{Policy: PolicyGA, UseAgents: true, PushAdverts: true, Seed: 42}

	plain := smallGrid(t, base)
	submitMixed(t, plain)
	if err := plain.Run(); err != nil {
		t.Fatal(err)
	}

	instr := base
	instr.Telemetry = telemetry.NewRegistry()
	instr.SamplePeriod = 5
	wired := smallGrid(t, instr)
	submitMixed(t, wired)
	if err := wired.Run(); err != nil {
		t.Fatal(err)
	}

	if got, want := runFingerprint(wired), runFingerprint(plain); got != want {
		t.Fatalf("instrumented run diverged from plain run:\n--- plain ---\n%s--- instrumented ---\n%s", want, got)
	}
}

// TestTelemetryCountsAndSeries checks the registry totals against ground
// truth and that the virtual-time series carries per-resource queue
// depth and the grid-wide ε probe.
func TestTelemetryCountsAndSeries(t *testing.T) {
	reg := telemetry.NewRegistry()
	g := smallGrid(t, Options{Policy: PolicyGA, UseAgents: true, Seed: 7, Telemetry: reg, SamplePeriod: 5})
	submitMixed(t, g)
	if err := g.Run(); err != nil {
		t.Fatal(err)
	}

	snap := reg.Snapshot()
	if got := snap.Counters["grid_requests_total"]; got != 30 {
		t.Fatalf("grid_requests_total = %d, want 30", got)
	}
	if got := snap.Counters["grid_dispatches_total"]; got != 30 {
		t.Fatalf("grid_dispatches_total = %d, want 30", got)
	}
	if got := snap.Counters["grid_request_errors_total"]; got != 0 {
		t.Fatalf("grid_request_errors_total = %d, want 0", got)
	}
	if got := snap.Gauges["grid_resources"]; got != 3 {
		t.Fatalf("grid_resources = %g, want 3", got)
	}
	// Every request arrived at "slow": its agent counted all 30.
	if got := snap.Counters[`agent_requests_received_total{resource="slow"}`]; got != 30 {
		t.Fatalf(`agent received{slow} = %d, want 30`, got)
	}
	// The GA planned at least once per resource that accepted work.
	var plans uint64
	for _, res := range []string{"fast", "mid", "slow"} {
		plans += snap.Counters[fmt.Sprintf(`ga_plans_total{resource=%q}`, res)]
	}
	if plans == 0 {
		t.Fatal("no GA plans counted")
	}
	// The snapshot-time engine collector ran.
	if snap.Gauges["pace_evaluations"] == 0 {
		t.Fatal("pace_evaluations collector not wired")
	}

	series := g.Sampler().Series()
	if len(series.Points) < 3 {
		t.Fatalf("series has %d points", len(series.Points))
	}
	lastPt := series.Points[len(series.Points)-1]
	if _, ok := lastPt.V[`sched_queue_depth{resource="slow"}`]; !ok {
		t.Fatalf("series point lacks per-resource queue depth: %v", lastPt.V)
	}
	if lastPt.V["grid_completed"] != 30 {
		t.Fatalf("final grid_completed = %g, want 30", lastPt.V["grid_completed"])
	}
	// ε is mean(deadline − completion): negative here because the tight
	// 25 s deadlines overload the grid — the probe just has to be live.
	if lastPt.V["grid_eps_s"] == 0 {
		t.Fatalf("final grid_eps_s = 0, want non-zero (probe dead?)")
	}
	// ε must be monotone non-decreasing in completions: just require the
	// probe present on interior points too.
	if _, ok := series.Points[1].V["grid_eps_s"]; !ok {
		t.Fatal("interior point lacks grid_eps_s probe")
	}

	if exp := g.TelemetryExport(); exp == nil || exp.Series == nil {
		t.Fatal("TelemetryExport missing series")
	}
	if smallGrid(t, Options{Policy: PolicyFIFO}).TelemetryExport() != nil {
		t.Fatal("uninstrumented grid exported telemetry")
	}
}
