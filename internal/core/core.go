// Package core is the top-level facade of the library: it wires the PACE
// evaluation engine, performance-driven local schedulers, the agent
// hierarchy and the discrete-event simulator into a Grid that accepts task
// requests and reports the §3.3 load-balancing metrics.
//
// A Grid is built from resource specs (one per local grid resource, with
// an optional parent forming the agent hierarchy of Fig. 7), configured
// with a local scheduling policy (GA or FIFO) and the agent-based
// discovery switch — the two dimensions of the paper's experiment design
// (Table 2) — then fed a workload and run to completion in virtual time.
package core

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/agent"
	"repro/internal/audit"
	"repro/internal/fault"
	"repro/internal/ga"
	"repro/internal/membership"
	"repro/internal/metrics"
	"repro/internal/pace"
	"repro/internal/schedule"
	"repro/internal/scheduler"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/trace"
	"repro/internal/workload"
)

// PolicyKind selects the local scheduling algorithm.
type PolicyKind string

// Local scheduling policies.
const (
	PolicyFIFO     PolicyKind = "fifo"      // §4.1 baseline, exhaustive 2^n−1 allocation search
	PolicyFIFOFast PolicyKind = "fifo-fast" // equivalence-tested fast allocation search
	PolicyGA       PolicyKind = "ga"        // §2.1 genetic algorithm
	PolicySA       PolicyKind = "sa"        // simulated annealing (the [1] comparison)
	PolicyTabu     PolicyKind = "tabu"      // tabu search (the [1] comparison)
)

// ParsePolicy resolves a policy name as written in scenario files and
// CLI flags. The empty string selects the default (GA, matching
// Options.setDefaults).
func ParsePolicy(name string) (PolicyKind, error) {
	switch k := PolicyKind(name); k {
	case PolicyFIFO, PolicyFIFOFast, PolicyGA, PolicySA, PolicyTabu:
		return k, nil
	case "":
		return PolicyGA, nil
	default:
		return "", fmt.Errorf("core: unknown policy %q (want fifo, fifo-fast, ga, sa or tabu)", name)
	}
}

// ResourceSpec declares one local grid resource and its place in the
// agent hierarchy.
type ResourceSpec struct {
	Name         string
	Hardware     string // a pace hardware model name, e.g. "SGIOrigin2000"
	Nodes        int
	Parent       string   // empty for the head of the hierarchy
	Environments []string // defaults to {"test"}
}

// Options configures a Grid.
type Options struct {
	Policy     PolicyKind // defaults to PolicyGA
	GA         ga.Config  // zero value -> ga.DefaultConfig()
	Weights    schedule.CostWeights
	UseAgents  bool    // enable agent-based service discovery (experiment 3)
	PullPeriod float64 // advertisement pull period; defaults to 10 s (§4.1)
	// PushAdverts enables event-triggered advertisement pushes (§3.1):
	// after accepting work, an agent whose freetime drifted past the
	// push threshold advertises to its neighbours immediately instead of
	// waiting for their next pull.
	PushAdverts bool
	Seed        uint64 // master seed for every stochastic component

	// Workers, when positive, overrides GA.Workers: the number of
	// goroutines each GA policy uses to evaluate its population's costs.
	// The GA is bit-identical for any worker count, so this is purely a
	// wall-clock knob.
	Workers int

	DisableFrontWeightedIdle bool // idle-weighting ablation
	DisableEvalCache         bool // §2.2 cache ablation
	Library                  *pace.Library

	// PredictionError enables the §5 prediction-accuracy study: actual
	// execution times deviate from predictions by up to this relative
	// error (uniform, deterministic per task). 0 is the paper's exact
	// test mode.
	PredictionError float64
	// PredictionBias shifts actual times multiplicatively: +0.2 means
	// the models are systematically 20% optimistic.
	PredictionBias float64

	// Trace, when set, records the lifecycle of every request (arrival,
	// dispatch, execution start, completion).
	Trace *trace.Recorder

	// Audit, when set, receives the run's full lifecycle stream live —
	// every trace event, execution record and dispatch as it happens, plus
	// the post-advance safe horizon — so the internal/audit invariants are
	// proven in O(in-flight) memory instead of over a retained history.
	// The observer only watches: results are byte-identical with it on or
	// off.
	Audit *audit.Observer

	// FaultPlan schedules deterministic grid-level failures (agent
	// crashes, link partitions, lossy links) against the run
	// (Experiment 4). Requires UseAgents: the fault model targets the
	// agent layer, not the standalone schedulers.
	FaultPlan *fault.Plan
	// AdvertTTL expires cached advertisements older than this many
	// seconds from discovery decisions, so dead resources stop
	// attracting dispatches. 0 (the default) never expires them — the
	// paper's fault-free behaviour.
	AdvertTTL float64
	// FailureThreshold overrides the per-peer consecutive-failure count
	// that trips an agent's circuit breaker; 0 keeps
	// agent.DefaultFailureThreshold.
	FailureThreshold int

	// Migration configures proactive task migration: drift-driven
	// rescheduling of queued work off resources whose observed
	// performance has fallen behind their PACE predictions. Requires
	// UseAgents — migration re-places tasks through agent discovery.
	// The zero value (disabled) changes nothing about a run.
	Migration MigrationPolicy

	// Reservation configures the advance-reservation submit path
	// (SubmitReservationAt): hold TTL, admission slip bound and the
	// expiry-sweep cadence. Inert — no events, no state, byte-identical
	// runs — until a reservation is actually submitted.
	Reservation ReservationPolicy

	// Churn schedules dynamic membership (internal/membership): agents
	// joining and gracefully leaving the hierarchy on the virtual clock,
	// with a leaver's subtree re-homed under its parent, its queue
	// drained back through discovery, and its advertisements expired
	// immediately. Requires UseAgents. Nil — the default — builds no
	// registry and schedules nothing: runs are byte-identical.
	Churn *membership.Plan
	// Rebalance enables the load-driven rebalancer: when one parent's
	// neighbourhood stays lopsided past the policy's hysteresis, a
	// subtree is re-homed under a less-loaded parent via an audited
	// propose→detach→attach chain. Requires UseAgents. Nil disables it.
	Rebalance *membership.Policy

	// Telemetry, when set, instruments every layer of the grid (agents,
	// schedulers, GA policies, the shared PACE engine) on one registry
	// and samples it on a virtual-time period during Run. Nil — the
	// default — leaves every hot path with a single nil-check branch and
	// zero allocations. Instruments are read-only observers: enabling
	// telemetry changes no scheduling decision and no RNG draw, so
	// results are byte-identical either way.
	Telemetry *telemetry.Registry
	// SamplePeriod is the virtual-time series sampling period in
	// simulated seconds; <= 0 defaults to 10 s (the advert pull cadence).
	// Ignored without Telemetry.
	SamplePeriod float64
}

func (o *Options) setDefaults() {
	if o.Policy == "" {
		o.Policy = PolicyGA
	}
	if o.GA == (ga.Config{}) {
		o.GA = ga.DefaultConfig()
	}
	if o.Workers > 0 {
		o.GA.Workers = o.Workers
	}
	if o.Weights == (schedule.CostWeights{}) {
		o.Weights = schedule.DefaultWeights()
	}
	if o.PullPeriod <= 0 {
		o.PullPeriod = agent.DefaultPullPeriod
	}
	if o.Library == nil {
		o.Library = pace.CaseStudyLibrary()
	}
}

// Grid is a complete simulated grid: schedulers, agents, engine and the
// virtual clock driving them.
type Grid struct {
	opts     Options
	engine   *pace.Engine
	lib      *pace.Library
	hier     *agent.Hierarchy
	locals   map[string]*scheduler.Local
	simr     *sim.Simulator
	injector *fault.Injector
	migrator *migrator
	resv     *reservist
	members  *memberState

	dispatches []agent.Dispatch
	errs       []error

	// due indexes which schedulers have a planned start at or before a
	// given virtual time, so a clock advance touches only the schedulers
	// with work due instead of all 10k. Entries are lazily deleted;
	// dueMu guards pushes from the parallel advance workers.
	due   dueHeap
	dueMu sync.Mutex

	// execs holds the per-resource lifecycle executors (nil when neither
	// tracing nor auditing is on). During a parallel advance each executor
	// buffers its records so the merge can replay them in resource-name
	// order — the exact stream a sequential advance would have produced.
	execs       map[string]*tracingExecutor
	workerCount int

	lastRequestAt float64
	requests      int
	nextReqID     uint64 // grid-wide request IDs, minted at SubmitAt
	ran           bool

	// Grid-level instruments and the virtual-time sampler; all nil (and
	// every use a no-op) when Options.Telemetry is unset.
	sampler     *telemetry.Sampler
	mRequests   *telemetry.Counter
	mErrors     *telemetry.Counter
	mDispatches *telemetry.Counter
}

// New builds a Grid from resource specs.
func New(specs []ResourceSpec, opts Options) (*Grid, error) {
	if len(specs) == 0 {
		return nil, fmt.Errorf("core: no resources")
	}
	opts.setDefaults()

	var engine *pace.Engine
	if opts.DisableEvalCache {
		engine = pace.NewEngineWithoutCache()
	} else {
		engine = pace.NewEngine()
	}

	g := &Grid{
		opts:   opts,
		engine: engine,
		lib:    opts.Library,
		locals: map[string]*scheduler.Local{},
		simr:   sim.NewSimulator(),
	}
	g.workerCount = opts.Workers
	if g.workerCount <= 0 {
		g.workerCount = runtime.GOMAXPROCS(0)
	}
	if opts.Trace != nil || opts.Audit != nil {
		g.execs = make(map[string]*tracingExecutor, len(specs))
	}

	master := sim.NewRNG(opts.Seed)
	agents := make(map[string]*agent.Agent, len(specs))
	var ordered []*agent.Agent
	for _, spec := range specs {
		a, err := g.buildResource(spec, master)
		if err != nil {
			return nil, err
		}
		agents[spec.Name] = a
		ordered = append(ordered, a)
	}
	for _, spec := range specs {
		if spec.Parent == "" {
			continue
		}
		parent, ok := agents[spec.Parent]
		if !ok {
			return nil, fmt.Errorf("core: resource %q: unknown parent %q", spec.Name, spec.Parent)
		}
		if err := agent.Link(parent, agents[spec.Name]); err != nil {
			return nil, err
		}
	}
	hier, err := agent.NewHierarchy(ordered)
	if err != nil {
		return nil, err
	}
	g.hier = hier

	for _, a := range ordered {
		a.AdvertTTL = opts.AdvertTTL
		if opts.FailureThreshold > 0 {
			a.FailureThreshold = opts.FailureThreshold
		}
	}
	if opts.FaultPlan != nil {
		if !opts.UseAgents {
			return nil, fmt.Errorf("core: fault injection requires agent-based discovery (UseAgents)")
		}
		// The injector's events fan through the grid's own event sink so
		// a streaming audit sees them too; the sink stays an untyped nil
		// when neither tracing nor auditing is on.
		var faultSink trace.Sink
		if opts.Trace != nil || opts.Audit != nil {
			faultSink = gridSink{g}
		}
		inj, err := fault.NewInjector(*opts.FaultPlan, hier, faultSink)
		if err != nil {
			return nil, err
		}
		g.injector = inj
		for _, a := range ordered {
			a.SetGate(inj.Registry())
		}
		// Degradation reaches the schedulers as a static function of the
		// plan: a task's slowdown is decided by its start time alone, so
		// the same plan always stretches the same tasks regardless of how
		// clock advances interleave with fault events.
		for _, name := range inj.Plan().Degraded() {
			plan, local := inj.Plan(), g.locals[name]
			agentName := name
			local.SetSlowdown(func(start float64) float64 {
				return plan.SlowdownAt(agentName, start)
			})
		}
	}
	if opts.Migration.Enabled {
		if !opts.UseAgents {
			return nil, fmt.Errorf("core: migration requires agent-based discovery (UseAgents)")
		}
		g.migrator = newMigrator(g, opts.Migration)
	}
	if reg := opts.Telemetry; reg != nil {
		engine.RegisterMetrics(reg)
		reg.Gauge("grid_resources").Set(float64(len(specs)))
		g.mRequests = reg.Counter("grid_requests_total")
		g.mErrors = reg.Counter("grid_request_errors_total")
		g.mDispatches = reg.Counter("grid_dispatches_total")
		g.sampler = telemetry.NewSampler(reg, opts.SamplePeriod)
		// Grid-wide ε over time: mean advance time (deadline − completion)
		// and count over every record already completed at the sample
		// instant. Probes run on the simulator goroutine only, so walking
		// committed scheduler state here is safe (see telemetry/series.go).
		g.sampler.AddProbe("grid_eps_s", func(now float64) float64 {
			var sum float64
			var n int
			for _, l := range g.locals {
				s, c := l.AdvanceBefore(now)
				sum += s
				n += c
			}
			if n == 0 {
				return 0
			}
			return sum / float64(n)
		})
		g.sampler.AddProbe("grid_completed", func(now float64) float64 {
			var n int
			for _, l := range g.locals {
				_, c := l.AdvanceBefore(now)
				n += c
			}
			return float64(n)
		})
	}
	if opts.Churn != nil || opts.Rebalance != nil {
		if !opts.UseAgents {
			return nil, fmt.Errorf("core: dynamic membership requires agent-based discovery (UseAgents)")
		}
		// Joiner agents are built here, after every base resource, so the
		// base schedulers draw exactly the same policy RNG streams a
		// membership-free build would hand them.
		ms, err := newMemberState(g, master)
		if err != nil {
			return nil, err
		}
		g.members = ms
	}
	return g, nil
}

// buildResource constructs one local scheduler and its fronting agent —
// the shared path for start-up resources and runtime joiners, so both
// get identical policy RNG splits (in master draw order), clocks, plan
// hooks, noise models and telemetry.
func (g *Grid) buildResource(spec ResourceSpec, master *sim.RNG) (*agent.Agent, error) {
	hw, ok := pace.LookupHardware(spec.Hardware)
	if !ok {
		return nil, fmt.Errorf("core: resource %q: unknown hardware %q", spec.Name, spec.Hardware)
	}
	if _, dup := g.locals[spec.Name]; dup {
		return nil, fmt.Errorf("core: duplicate resource %q", spec.Name)
	}
	pol, err := g.newPolicy(master.Split())
	if err != nil {
		return nil, err
	}
	cfg := scheduler.Config{
		Name:         spec.Name,
		HW:           hw,
		NumNodes:     spec.Nodes,
		Policy:       pol,
		Engine:       g.engine,
		Environments: spec.Environments,
	}
	if g.execs != nil {
		e := &tracingExecutor{g: g}
		cfg.Executor = e
		g.execs[spec.Name] = e
	}
	opts := g.opts
	if opts.PredictionError != 0 || opts.PredictionBias != 0 {
		noise := pace.NoiseModel{Rel: opts.PredictionError, Bias: opts.PredictionBias, Seed: opts.Seed}
		resKey := fnv64(spec.Name)
		cfg.ActualDuration = func(_ *pace.AppModel, _ int, predicted float64, taskID int) float64 {
			return noise.Apply(predicted, resKey^uint64(taskID))
		}
	}
	local, err := scheduler.NewLocal(cfg)
	if err != nil {
		return nil, err
	}
	// The shared clock keeps lazily advanced schedulers advertising
	// the same freetime an eagerly advanced one would; the plan hook
	// feeds the due index that makes the laziness sound.
	local.SetClock(g.simr.Now)
	name := spec.Name
	local.SetPlanHook(func(at float64) { g.pushDue(at, name) })
	a, err := agent.New(local, g.engine)
	if err != nil {
		return nil, err
	}
	a.PullPeriod = opts.PullPeriod
	if opts.Telemetry != nil {
		local.SetMetrics(scheduler.NewMetrics(opts.Telemetry, spec.Name))
		if gp, ok := pol.(*scheduler.GAPolicy); ok {
			gp.RegisterMetrics(opts.Telemetry, spec.Name)
		}
		a.RegisterMetrics(opts.Telemetry)
	}
	g.locals[spec.Name] = local
	return a, nil
}

func (g *Grid) newPolicy(rng *sim.RNG) (scheduler.Policy, error) {
	switch g.opts.Policy {
	case PolicyFIFO:
		return scheduler.NewFIFOPolicy(), nil
	case PolicyFIFOFast:
		return scheduler.NewFastFIFOPolicy(), nil
	case PolicyGA:
		p := scheduler.NewGAPolicy(g.opts.GA, rng)
		p.Weights = g.opts.Weights
		p.FrontWeighted = !g.opts.DisableFrontWeightedIdle
		return p, nil
	case PolicySA:
		p := scheduler.NewSAPolicy(rng)
		p.Weights = g.opts.Weights
		p.FrontWeighted = !g.opts.DisableFrontWeightedIdle
		return p, nil
	case PolicyTabu:
		p := scheduler.NewTabuPolicy(rng)
		p.Weights = g.opts.Weights
		p.FrontWeighted = !g.opts.DisableFrontWeightedIdle
		return p, nil
	}
	return nil, fmt.Errorf("core: unknown policy %q", g.opts.Policy)
}

// Library returns the application model library.
func (g *Grid) Library() *pace.Library { return g.lib }

// Engine returns the shared PACE evaluation engine.
func (g *Grid) Engine() *pace.Engine { return g.engine }

// Hierarchy returns the agent hierarchy.
func (g *Grid) Hierarchy() *agent.Hierarchy { return g.hier }

// Local returns the named local scheduler.
func (g *Grid) Local(name string) (*scheduler.Local, bool) {
	l, ok := g.locals[name]
	return l, ok
}

// NodesByResource maps resource names to node counts, as the metrics
// package expects.
func (g *Grid) NodesByResource() map[string]int {
	out := make(map[string]int, len(g.locals))
	for n, l := range g.locals {
		out[n] = l.NumNodes()
	}
	return out
}

// SubmitAt schedules a task request for virtual time at: the named
// application with a deadline deadlineRel seconds after arrival, arriving
// at the named agent. With UseAgents the request goes through service
// discovery; without it the receiving agent's local scheduler takes the
// task unconditionally (experiments 1 and 2).
func (g *Grid) SubmitAt(at float64, agentName, appName string, deadlineRel float64) error {
	if g.ran {
		return fmt.Errorf("core: grid already ran")
	}
	app, ok := g.lib.Lookup(appName)
	if !ok {
		return fmt.Errorf("core: unknown application %q", appName)
	}
	if _, ok := g.locals[agentName]; !ok {
		return fmt.Errorf("core: unknown agent %q", agentName)
	}
	if deadlineRel < 0 {
		return fmt.Errorf("core: negative relative deadline %g", deadlineRel)
	}
	if at > g.lastRequestAt {
		g.lastRequestAt = at
	}
	g.requests++
	// The grid-wide request ID is minted here, at arrival, in submission
	// order: it is the identity every lifecycle event, dispatch and
	// execution record of this request carries, no matter how many
	// resources the request crosses (scheduler-local task IDs restart at
	// 1 on every resource and cannot serve as a join key).
	g.nextReqID++
	reqID := g.nextReqID
	g.simr.At(at, func(now float64) {
		g.advanceAll(now)
		g.mRequests.Inc()
		deadline := now + deadlineRel
		arriveDetail := ""
		arrival := agentName
		arrivalDown := false
		if g.injector != nil {
			// A crashed agent cannot receive arrivals; the portal
			// retries the nearest live ancestor instead.
			target, ok := g.injector.RerouteArrival(agentName)
			switch {
			case !ok:
				arrivalDown = true
			case target != agentName:
				arrival = target
				arriveDetail = "rerouted to " + target + " (agent down)"
			}
		}
		if g.members != nil && !arrivalDown && !g.members.reg.Active(arrival) {
			// A departed agent cannot receive arrivals either — but it
			// left gracefully, so its last parent (transitively, the
			// closest still-active ancestor) stands in as the portal.
			target, ok := g.members.reg.Route(arrival)
			if !ok {
				arrivalDown = true
			} else {
				arrival = target
				if arriveDetail != "" {
					arriveDetail += "; "
				}
				arriveDetail += "rerouted to " + target + " (agent left)"
			}
		}
		// The arrive event is recorded unconditionally — the request did
		// enter the grid — so that every arrival terminates in exactly
		// one complete or fail (the conservation invariant internal/audit
		// checks).
		g.traceEvent(trace.Event{Time: now, Kind: trace.KindArrive, ReqID: reqID, Agent: agentName, App: appName, Detail: arriveDetail})
		if arrivalDown {
			err := fmt.Errorf("request at %g: no live agent for arrival at %s", now, agentName)
			g.errs = append(g.errs, err)
			g.mErrors.Inc()
			g.traceEvent(trace.Event{Time: now, Kind: trace.KindFail, ReqID: reqID, Agent: agentName, App: appName, Detail: err.Error()})
			return
		}
		if g.opts.UseAgents {
			a, _ := g.hier.Lookup(arrival)
			d, err := a.HandleRequest(agent.Request{ReqID: reqID, App: app, Env: "test", Deadline: deadline}, now)
			if err != nil {
				g.errs = append(g.errs, fmt.Errorf("request at %g: %w", now, err))
				g.mErrors.Inc()
				g.traceEvent(trace.Event{Time: now, Kind: trace.KindFail, ReqID: reqID, Agent: agentName, App: appName, Detail: err.Error()})
				return
			}
			g.recordDispatch(d)
			detail := fmt.Sprintf("hops=%d", d.Hops)
			if d.Fallback {
				detail += " fallback"
			}
			g.traceEvent(trace.Event{
				Time: now, Kind: trace.KindDispatch, ReqID: reqID, Agent: agentName,
				Resource: d.Resource, TaskID: d.TaskID, App: appName, Detail: detail,
			})
			if g.opts.PushAdverts {
				if acceptor, ok := g.hier.Lookup(d.Resource); ok {
					acceptor.MaybePush(now)
				}
			}
			return
		}
		id, err := g.locals[agentName].SubmitRequest(app, deadline, now, reqID)
		if err != nil {
			g.errs = append(g.errs, fmt.Errorf("request at %g: %w", now, err))
			g.mErrors.Inc()
			g.traceEvent(trace.Event{Time: now, Kind: trace.KindFail, ReqID: reqID, Agent: agentName, App: appName, Detail: err.Error()})
			return
		}
		g.recordDispatch(agent.Dispatch{Resource: agentName, TaskID: id, ReqID: reqID})
		g.traceEvent(trace.Event{
			Time: now, Kind: trace.KindDispatch, ReqID: reqID, Agent: agentName,
			Resource: agentName, TaskID: id, App: appName, Detail: "direct",
		})
	})
	return nil
}

// traceEvent fans one lifecycle event to the streaming audit and the
// trace recorder (and through them to any attached sinks).
func (g *Grid) traceEvent(ev trace.Event) {
	if g.opts.Audit != nil {
		g.opts.Audit.Observe(ev)
	}
	if g.opts.Trace != nil {
		g.opts.Trace.Record(ev)
	}
}

// recordDispatch commits a discovery decision to the dispatch log, the
// dispatch counter and the streaming audit.
func (g *Grid) recordDispatch(d agent.Dispatch) {
	g.dispatches = append(g.dispatches, d)
	g.mDispatches.Inc()
	if g.opts.Audit != nil {
		g.opts.Audit.ObserveDispatch(d)
	}
}

// gridSink adapts the grid's event fan-out to trace.Sink for subsystems
// (the fault injector) that emit lifecycle events on their own.
type gridSink struct{ g *Grid }

func (s gridSink) Record(ev trace.Event) { s.g.traceEvent(ev) }

// SubmitWorkload schedules a whole request stream.
func (g *Grid) SubmitWorkload(reqs []workload.Request) error {
	for _, r := range reqs {
		if err := g.SubmitAt(r.At, r.AgentName, r.AppName, r.DeadlineRel); err != nil {
			return err
		}
	}
	return nil
}

// pushDue records that the named scheduler may have a planned start at
// time at. Installed as every scheduler's plan hook; safe to call from
// the parallel advance workers.
func (g *Grid) pushDue(at float64, name string) {
	g.dueMu.Lock()
	g.due.push(dueEntry{at: at, name: name})
	g.dueMu.Unlock()
}

// advanceAll moves every scheduler with work due past the grid clock,
// then announces now as the safe horizon to the streaming consumers.
//
// The old implementation advanced all schedulers on every event —
// O(resources) per arrival, ruinous at 10k agents. The due heap makes
// the advance touch only the schedulers whose cached plan horizon
// (Local.NextPlannedStart) is at or before now: every finite horizon has
// a heap entry at exactly its value (refreshNextStart pushes one on
// every replan and promotion), so no promotion can be missed. Stale
// entries — the plan changed after the push — are harmless: AdvanceTo on
// a scheduler with nothing due is a constant-time clock bump. Names are
// sorted before advancing, so promotions happen in the same resource
// order the full sweep used and the lifecycle stream is byte-identical.
func (g *Grid) advanceAll(now float64) {
	for {
		g.dueMu.Lock()
		var names []string
		seen := map[string]bool{}
		for len(g.due) > 0 && g.due[0].at <= now {
			e := g.due.pop()
			if !seen[e.name] {
				seen[e.name] = true
				names = append(names, e.name)
			}
		}
		g.dueMu.Unlock()
		if len(names) == 0 {
			break
		}
		sort.Strings(names)
		g.forEachLocal(names, func(l *scheduler.Local) { l.AdvanceTo(now) })
	}
	g.afterAdvance(now)
}

// afterAdvance announces the watermark: every promotion at or before now
// has been committed, so all future lifecycle events and records carry
// times >= now. It must run only after the advance loop — announcing
// earlier would let streaming sinks flush past records still to come.
func (g *Grid) afterAdvance(now float64) {
	if g.opts.Audit != nil {
		g.opts.Audit.Advance(now)
	}
	if g.opts.Trace != nil {
		g.opts.Trace.Advance(now)
	}
}

// parallelMinItems gates the worker-pool paths: below this, goroutine
// startup costs more than the work.
const parallelMinItems = 8

// forEachLocal applies fn to the named schedulers, fanning across the
// worker pool when the batch is large enough. Lifecycle records emitted
// during a parallel batch are buffered per resource and replayed in name
// order afterwards, so the observable stream is exactly the sequential
// one no matter the worker count. fn must only touch the one scheduler
// it is handed (plus atomics and the mutex-guarded due heap).
func (g *Grid) forEachLocal(names []string, fn func(l *scheduler.Local)) {
	if g.workerCount > 1 && len(names) >= parallelMinItems {
		if g.execs != nil {
			for _, n := range names {
				g.execs[n].buffering = true
			}
		}
		g.parallelFor(len(names), func(i int) { fn(g.locals[names[i]]) })
		if g.execs != nil {
			for _, n := range names {
				e := g.execs[n]
				e.buffering = false
				for _, rec := range e.buf {
					g.emitRecord(rec)
				}
				e.buf = e.buf[:0]
			}
		}
		return
	}
	for _, n := range names {
		fn(g.locals[n])
	}
}

// parallelFor runs fn(0..n-1) across the grid's worker pool.
func (g *Grid) parallelFor(n int, fn func(i int)) {
	w := g.workerCount
	if w > n {
		w = n
	}
	if w <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	next.Store(-1)
	var wg sync.WaitGroup
	wg.Add(w)
	for k := 0; k < w; k++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1))
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// dueEntry marks that the named scheduler had a planned start at time at
// when the entry was pushed.
type dueEntry struct {
	at   float64
	name string
}

// dueHeap is a binary min-heap of dueEntry on at, hand-rolled over a
// value slice like sim.eventQueue. Ties need no secondary order: the
// advance loop collects every due name and sorts before advancing.
type dueHeap []dueEntry

func (q *dueHeap) push(e dueEntry) {
	*q = append(*q, e)
	h := *q
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if h[i].at >= h[parent].at {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
}

func (q *dueHeap) pop() dueEntry {
	h := *q
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h[n] = dueEntry{}
	h = h[:n]
	*q = h
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && h[l].at < h[smallest].at {
			smallest = l
		}
		if r < n && h[r].at < h[smallest].at {
			smallest = r
		}
		if smallest == i {
			break
		}
		h[i], h[smallest] = h[smallest], h[i]
		i = smallest
	}
	return top
}

// Run executes all scheduled requests in virtual time — with periodic
// advertisement pulls when agents are enabled — then drains every
// scheduler so all accepted tasks complete. It returns the combined
// error of any failed requests.
func (g *Grid) Run() error {
	if g.ran {
		return fmt.Errorf("core: grid already ran")
	}
	g.ran = true
	if g.opts.UseAgents && g.members != nil {
		// Dynamic membership: the advert exchange re-derives the live
		// agent set every tick, because joins, leaves and re-homes change
		// it mid-run. The static fast path below keeps its fixed arrays —
		// and its byte-identical stream — whenever membership is off.
		pull := func(now float64) {
			names := g.hier.Names()
			idx := make(map[string]int, len(names))
			for i, n := range names {
				idx[n] = i
			}
			base := make([]scheduler.ServiceInfo, len(names))
			live := make([]bool, len(names))
			lookup := func(name string) (scheduler.ServiceInfo, bool) {
				i, ok := idx[name]
				if !ok || !live[i] {
					return scheduler.ServiceInfo{}, false
				}
				return base[i], true
			}
			g.parallelFor(len(names), func(i int) {
				if g.injector != nil && g.injector.Registry().AgentDown(names[i]) {
					live[i] = false
					return
				}
				base[i] = g.locals[names[i]].ServiceInfo()
				live[i] = true
			})
			for _, name := range names {
				if g.injector != nil && g.injector.Registry().AgentDown(name) {
					continue
				}
				a, ok := g.hier.Lookup(name)
				if !ok {
					continue
				}
				a.PullBatched(now, lookup)
			}
		}
		pull(0)
		// Pulls continue through the churn tail so late joiners start
		// advertising even when every request has already arrived.
		last := g.lastRequestAt
		if t := g.opts.Churn.LastEventTime(); t > last {
			last = t
		}
		g.simr.Every(g.opts.PullPeriod, func(now float64) bool {
			pull(now)
			return now < last
		})
	} else if g.opts.UseAgents {
		names := g.hier.Names()
		idx := make(map[string]int, len(names))
		for i, n := range names {
			idx[n] = i
		}
		base := make([]scheduler.ServiceInfo, len(names))
		live := make([]bool, len(names))
		lookup := func(name string) (scheduler.ServiceInfo, bool) {
			i, ok := idx[name]
			if !ok || !live[i] {
				return scheduler.ServiceInfo{}, false
			}
			return base[i], true
		}
		pull := func(now float64) {
			// Phase 1: every live publisher computes its base
			// advertisement once. Scheduler state does not change within
			// a pull tick, so each puller of the same publisher would
			// compute an identical advertisement — the batch coalesces
			// those O(degree) computations into one per publisher, and
			// being read-only it fans across the worker pool.
			g.parallelFor(len(names), func(i int) {
				if g.injector != nil && g.injector.Registry().AgentDown(names[i]) {
					live[i] = false
					return
				}
				base[i] = g.locals[names[i]].ServiceInfo()
				live[i] = true
			})
			// Phase 2: the exchanges themselves, strictly sequential in
			// the legacy name order — lossy-gate draws and the live fault
			// counters stamped on each advert are order-sensitive.
			// A crashed agent neither pulls nor is pulled; the gate fails
			// its peers' exchanges, but skipping the crashed agent's own
			// loop keeps it from racking up failures against live peers.
			for _, name := range names {
				if g.injector != nil && g.injector.Registry().AgentDown(name) {
					continue
				}
				a, _ := g.hier.Lookup(name)
				a.PullBatched(now, lookup)
			}
		}
		pull(0)
		last := g.lastRequestAt
		g.simr.Every(g.opts.PullPeriod, func(now float64) bool {
			pull(now)
			return now < last
		})
	}
	if g.injector != nil {
		g.injector.Schedule(g.simr)
	}
	if g.migrator != nil {
		// Scheduled after the pull Every and the fault events so a
		// migration check at a coincident instant sees fresh adverts and
		// the post-fault grid. With the policy disabled no event is ever
		// queued — the stream the schedulers see is byte-identical.
		last := g.lastRequestAt
		g.simr.Every(g.migrator.pol.CheckPeriod, func(now float64) bool {
			g.migrator.check(now)
			return now < last
		})
	}
	if g.members != nil {
		// Join/leave events and the rebalance ticks are scheduled after
		// the pull Every, the fault events and the migrator, so a
		// membership mutation at a coincident instant acts on the
		// post-pull, post-fault grid. With membership off this branch
		// queues nothing: the event stream is byte-identical.
		g.members.schedule()
	}
	if g.resv != nil {
		// The expiry sweep retires holds whose TTL lapsed unconfirmed.
		// Scheduled only when a reservation was submitted, so runs without
		// reservations see a byte-identical event stream.
		last := g.lastRequestAt
		g.simr.Every(g.resv.pol.SweepPeriod, func(now float64) bool {
			g.resv.sweep(now)
			return now < last
		})
	}
	if g.sampler != nil {
		// Scheduled after the pull Every so at coincident fire times the
		// sample observes the post-pull state; the sampler itself mutates
		// nothing and draws no randomness, so the event stream the
		// schedulers see is identical with or without it.
		g.sampler.Sample(0)
		last := g.lastRequestAt
		g.simr.Every(g.sampler.Period(), func(now float64) bool {
			g.sampler.Sample(now)
			return now < last
		})
	}
	g.simr.RunAll(g.eventBudget())
	g.forEachLocal(g.allNames(), func(l *scheduler.Local) { l.Drain() })
	if g.sampler != nil {
		// One final point after the drain, at the completion time of the
		// last record, so the series ends with the finished grid.
		var end float64
		for _, r := range g.Records() {
			if r.End > end {
				end = r.End
			}
		}
		g.sampler.Sample(end)
	}
	return errors.Join(g.errs...)
}

// eventBudget derives the RunAll bound from the run's actual shape —
// one event per submitted request plus the periodic pull, migration and
// sampling ticks and the fault plan's scheduled events, with slack —
// instead of relying on the simulator's fixed default. A mega-grid run
// legitimately exceeds 10M events; a run that exceeds its own derived
// budget has a runaway event loop, and RunAll fails loudly rather than
// truncating the simulation silently. The default stays as a floor so
// the bound never tightens for existing workloads.
func (g *Grid) eventBudget() int {
	ticks := func(period float64) int {
		if period <= 0 {
			return 0
		}
		return int(g.lastRequestAt/period) + 2
	}
	budget := g.requests + 1024
	if g.opts.UseAgents {
		budget += ticks(g.opts.PullPeriod)
	}
	if g.migrator != nil {
		budget += ticks(g.migrator.pol.CheckPeriod)
	}
	if g.resv != nil {
		budget += ticks(g.resv.pol.SweepPeriod)
	}
	if g.sampler != nil {
		budget += ticks(g.sampler.Period())
	}
	if g.opts.FaultPlan != nil {
		budget += 4*len(g.opts.FaultPlan.Events) + 16
	}
	if g.members != nil {
		budget += 4*g.opts.Churn.Events() + 16
		if g.members.reb != nil {
			horizon := g.lastRequestAt
			if t := g.opts.Churn.LastEventTime(); t > horizon {
				horizon = t
			}
			budget += int(horizon/g.members.reb.Policy().CheckPeriod) + 2
		}
	}
	if budget < 10_000_000 {
		budget = 10_000_000
	}
	return budget
}

// SimEvents reports how many simulator events the run executed — the
// numerator of the events-per-second throughput figure.
func (g *Grid) SimEvents() uint64 { return g.simr.Executed() }

// allNames lists every scheduler in the grid's canonical natural order.
// Without dynamic membership that is exactly the hierarchy's name list;
// with it, departed agents are gone from the tree but their records and
// still-running tasks are not, so the walk covers all locals.
func (g *Grid) allNames() []string {
	if g.members == nil {
		return g.hier.Names()
	}
	names := make([]string, 0, len(g.locals))
	for n := range g.locals {
		names = append(names, n)
	}
	sort.Slice(names, func(i, j int) bool { return agent.LessAgentName(names[i], names[j]) })
	return names
}

// Records returns every execution record across the grid.
func (g *Grid) Records() []scheduler.Record {
	var out []scheduler.Record
	for _, name := range g.allNames() {
		out = append(out, g.locals[name].Records()...)
	}
	return out
}

// Dispatches returns where each request landed, in submission order.
func (g *Grid) Dispatches() []agent.Dispatch {
	out := make([]agent.Dispatch, len(g.dispatches))
	copy(out, g.dispatches)
	return out
}

// Metrics computes the §3.3 report over all records. minWindow sets the
// minimum measurement period (typically the request phase length).
func (g *Grid) Metrics(minWindow float64) (metrics.GridReport, error) {
	return g.MetricsOver(g.Records(), minWindow)
}

// MetricsOver is Metrics over a caller-held copy of the grid's records,
// so a mega-run's history is not copied a second time.
func (g *Grid) MetricsOver(recs []scheduler.Record, minWindow float64) (metrics.GridReport, error) {
	return metrics.Compute(recs, g.NodesByResource(), metrics.WindowOver(recs, minWindow))
}

// Requests returns the number of scheduled requests.
func (g *Grid) Requests() int { return g.requests }

// Telemetry returns the registry the grid was built with, nil when
// uninstrumented.
func (g *Grid) Telemetry() *telemetry.Registry { return g.opts.Telemetry }

// Sampler returns the virtual-time sampler, nil when uninstrumented.
func (g *Grid) Sampler() *telemetry.Sampler { return g.sampler }

// TelemetryExport bundles the final registry snapshot with the sampled
// virtual-time series for JSON export; nil when uninstrumented.
func (g *Grid) TelemetryExport() *telemetry.Export {
	if g.opts.Telemetry == nil {
		return nil
	}
	return telemetry.NewExport(g.opts.Telemetry, g.sampler)
}

// MigrationStats reports what the migration policy did during the run;
// the zero value when migration was not enabled.
func (g *Grid) MigrationStats() MigrationStats {
	if g.migrator == nil {
		return MigrationStats{}
	}
	return g.migrator.stats
}

// MembershipStats reports what the dynamic-hierarchy subsystem did
// during the run; the zero value when membership was not enabled.
func (g *Grid) MembershipStats() membership.Stats {
	if g.members == nil {
		return membership.Stats{}
	}
	return g.members.reg.Stats()
}

// FaultStats reports what the fault injector did during the run; the
// zero value when no fault plan was configured.
func (g *Grid) FaultStats() fault.Stats {
	if g.injector == nil {
		return fault.Stats{}
	}
	return g.injector.Stats()
}

// fnv64 hashes a string (FNV-1a), used to derive per-resource noise keys.
func fnv64(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// tracingExecutor forwards execution records into the grid's lifecycle
// stream. During a parallel advance it buffers instead (forEachLocal
// flips buffering around the batch and replays the buffers in name
// order), so the emitted stream is identical at any worker count.
type tracingExecutor struct {
	g         *Grid
	buffering bool
	buf       []scheduler.Record
}

// Launch implements scheduler.Executor.
func (e *tracingExecutor) Launch(rec scheduler.Record) {
	if e.buffering {
		e.buf = append(e.buf, rec)
		return
	}
	e.g.emitRecord(rec)
}

// emitRecord feeds one committed execution record to the streaming audit
// and synthesizes its start/complete lifecycle events — the record
// first, so a terminal complete event never retires a request before its
// record is counted.
func (g *Grid) emitRecord(rec scheduler.Record) {
	if g.opts.Audit != nil {
		g.opts.Audit.ObserveRecord(rec)
	}
	app := ""
	if rec.App != nil {
		app = rec.App.Name
	}
	g.traceEvent(trace.Event{
		Time: rec.Start, Kind: trace.KindStart,
		ReqID: rec.ReqID, Resource: rec.Resource, TaskID: rec.TaskID, App: app,
	})
	g.traceEvent(trace.Event{
		Time: rec.End, Kind: trace.KindComplete,
		ReqID: rec.ReqID, Resource: rec.Resource, TaskID: rec.TaskID, App: app,
		Detail: fmt.Sprintf("deadline_met=%v", rec.End <= rec.Deadline),
	})
}
