package core

import (
	"fmt"
	"math"

	"repro/internal/agent"
	"repro/internal/scheduler"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// Migration-policy defaults; see MigrationPolicy.
const (
	// DefaultMigrationCheckPeriod is the drift-check cadence in simulated
	// seconds, matching the §4.1 advertisement pull period so a check
	// always sees adverts at most one period old.
	DefaultMigrationCheckPeriod = 10.0
	// DefaultMigrationDriftThreshold is the relative drift (observed
	// durations over predicted, minus one) a check must exceed to count
	// as breached: 0.5 means tasks are running at least 50% longer than
	// the PACE model promised.
	DefaultMigrationDriftThreshold = 0.5
	// DefaultMigrationWindow is the hysteresis: consecutive breached
	// checks required before tasks are offered, so a single slow tick
	// never triggers churn.
	DefaultMigrationWindow = 2
)

// MigrationPolicy configures proactive task migration — the grid's
// answer to performance *drift* rather than outright failure. Each
// check period, every resource's observed execution durations over the
// last window are compared against the PACE predictions its plans were
// built on; when the relative drift stays above DriftThreshold for
// Window consecutive checks, the resource's not-yet-started tasks are
// offered back to the hierarchy, which re-places each one through the
// normal eq. 10 matchmaking under the same grid-wide request ID. Only
// placements expected to meet the task's deadline are accepted — a
// rejected offer leaves the task where it is.
//
// The zero value (Enabled false, the default) schedules nothing, draws
// no randomness and records no events: runs are byte-identical to a
// build without the policy.
type MigrationPolicy struct {
	Enabled bool
	// CheckPeriod is the drift-check cadence in simulated seconds;
	// <= 0 selects DefaultMigrationCheckPeriod.
	CheckPeriod float64
	// DriftThreshold is the relative drift that counts as breached;
	// <= 0 selects DefaultMigrationDriftThreshold.
	DriftThreshold float64
	// Window is the consecutive breached checks before an offer round;
	// <= 0 selects DefaultMigrationWindow.
	Window int
	// Cooldown is the minimum time between offer rounds on one
	// resource, so a still-degraded node is not drained on every check;
	// <= 0 selects 2×CheckPeriod.
	Cooldown float64
	// MaxPerRound caps the tasks offered per round per resource;
	// 0 offers every unstarted task.
	MaxPerRound int
}

// withDefaults resolves the zero fields.
func (p MigrationPolicy) withDefaults() MigrationPolicy {
	if p.CheckPeriod <= 0 {
		p.CheckPeriod = DefaultMigrationCheckPeriod
	}
	if p.DriftThreshold <= 0 {
		p.DriftThreshold = DefaultMigrationDriftThreshold
	}
	if p.Window <= 0 {
		p.Window = DefaultMigrationWindow
	}
	if p.Cooldown <= 0 {
		p.Cooldown = 2 * p.CheckPeriod
	}
	return p
}

// MigrationStats counts what the migration policy did during a run.
type MigrationStats struct {
	Checks   int // per-resource drift checks with a measurable signal
	Breaches int // checks whose drift exceeded the threshold
	Offers   int // tasks offered for re-placement
	Accepts  int // offers accepted: the task migrated
	Rejects  int // offers rejected: no deadline-meeting target, task stayed
}

// migState is the per-resource hysteresis state.
type migState struct {
	streak    int     // consecutive breached checks
	lastOffer float64 // virtual time of the last offer round
}

// migrator drives the migration policy on the simulator clock. It is
// owned by the Grid and shares its single-goroutine discipline.
type migrator struct {
	g   *Grid
	pol MigrationPolicy

	state map[string]*migState
	stats MigrationStats

	// Instruments; all nil (and every use a no-op) without telemetry.
	cOffers  *telemetry.Counter
	cAccepts *telemetry.Counter
	cRejects *telemetry.Counter
	// hLatency observes, per migrated task, the virtual seconds from the
	// request's arrival to its migration — how long the task sat on the
	// drifting resource before the policy rescued it.
	hLatency *telemetry.Histogram
}

func newMigrator(g *Grid, pol MigrationPolicy) *migrator {
	m := &migrator{g: g, pol: pol.withDefaults(), state: map[string]*migState{}}
	for name := range g.locals {
		m.state[name] = &migState{lastOffer: math.Inf(-1)}
	}
	if reg := g.opts.Telemetry; reg != nil {
		m.cOffers = reg.Counter("migration_offers_total")
		m.cAccepts = reg.Counter("migration_accepts_total")
		m.cRejects = reg.Counter("migration_rejects_total")
		m.hLatency = reg.Histogram("migration_latency_s")
	}
	return m
}

// check runs one drift check over every resource, offering tasks off
// the breached ones. Resources are visited in name order — the same
// deterministic order advanceAll uses.
func (m *migrator) check(now float64) {
	m.g.advanceAll(now) // commit every start the clock passed; Planned() is then strictly future work
	for _, name := range m.g.hier.Names() {
		m.checkResource(name, now)
	}
}

func (m *migrator) checkResource(name string, now float64) {
	st := m.state[name]
	if st == nil {
		// A runtime joiner (dynamic membership) was not known at build
		// time; its hysteresis state starts fresh on first sight.
		st = &migState{lastOffer: math.Inf(-1)}
		m.state[name] = st
	}
	if m.g.injector != nil && m.g.injector.Registry().AgentDown(name) {
		st.streak = 0 // a crashed resource is the injector's problem, not ours
		return
	}
	l := m.g.locals[name]
	obs, pred, n := l.DriftBetween(now-m.pol.CheckPeriod, now)
	if n == 0 || pred <= 0 {
		return // no completions this window: no signal, hold the streak
	}
	m.stats.Checks++
	drift := obs/pred - 1
	if drift < m.pol.DriftThreshold {
		st.streak = 0
		return
	}
	m.stats.Breaches++
	st.streak++
	if st.streak < m.pol.Window || now-st.lastOffer < m.pol.Cooldown {
		return
	}
	st.lastOffer = now
	st.streak = 0
	m.offerRound(name, l, now, drift)
}

// offerRound offers the resource's unstarted tasks to the hierarchy,
// earliest planned start first (the task that would otherwise block the
// degraded queue longest moves first).
func (m *migrator) offerRound(origin string, l *scheduler.Local, now, drift float64) {
	snapshot := l.Planned()
	if len(snapshot) == 0 {
		return
	}
	if m.pol.MaxPerRound > 0 && len(snapshot) > m.pol.MaxPerRound {
		snapshot = snapshot[:m.pol.MaxPerRound]
	}
	targets := m.targets(origin, now)
	if len(targets) == 0 {
		return
	}
	// Discovery at the target must avoid the drifting origin (its PACE
	// predictions still look attractive — that blindness is the whole
	// problem) and every currently-down agent.
	visited := []string{origin}
	if m.g.injector != nil {
		visited = append(visited, m.g.injector.Registry().Down()...)
	}
	for _, rec := range snapshot {
		// Deleting an earlier task replans the queue, which can pull a
		// later task's start back to now and promote it on the next
		// Delete's internal clock advance — so re-verify this task is
		// still waiting before offering it anywhere.
		if !stillPlanned(l, rec.TaskID) {
			continue
		}
		m.offerTask(origin, l, rec, targets, visited, now, drift)
	}
}

// offerTask runs the offer → withdraw → re-dispatch protocol for one
// task. The target dispatch and the origin withdrawal happen inside one
// simulator event — no virtual time passes between them — so the
// transient instant where both schedulers know the task is unobservable
// and the audit sees an atomic chain.
func (m *migrator) offerTask(origin string, l *scheduler.Local, rec scheduler.Record, targets []*agent.Agent, visited []string, now, drift float64) {
	app := ""
	if rec.App != nil {
		app = rec.App.Name
	}
	m.stats.Offers++
	m.cOffers.Inc()
	m.g.traceEvent(trace.Event{
		Time: now, Kind: trace.KindMigrateOffer, ReqID: rec.ReqID,
		Agent: origin, Resource: origin, TaskID: rec.TaskID, App: app,
		Detail: fmt.Sprintf("drift=%.2f", drift),
	})
	req := agent.Request{
		ReqID:    rec.ReqID,
		App:      rec.App,
		Env:      "test",
		Deadline: rec.Deadline,
		Visited:  append([]string(nil), visited...),
	}
	var d agent.Dispatch
	var acceptor *agent.Agent
	for _, t := range targets {
		dd, err := t.HandleMigration(req, now)
		if err == nil {
			d, acceptor = dd, t
			break
		}
	}
	if acceptor == nil {
		m.stats.Rejects++
		m.cRejects.Inc()
		return // the task stays queued on the origin
	}
	if err := l.Delete(rec.TaskID, now); err != nil {
		// Unreachable by construction (the task was re-verified as
		// planned an instant ago and the target never touches the
		// origin), but a migration must never duplicate work: surface
		// the double booking instead of hiding it.
		m.g.errs = append(m.g.errs, fmt.Errorf("core: migration of req %d: withdraw from %s failed: %w", rec.ReqID, origin, err))
		return
	}
	m.stats.Accepts++
	m.cAccepts.Inc()
	m.hLatency.Observe(now - rec.Arrival)
	m.g.traceEvent(trace.Event{
		Time: now, Kind: trace.KindMigrateWithdraw, ReqID: rec.ReqID,
		Resource: origin, TaskID: rec.TaskID, App: app,
		Detail: "target=" + d.Resource,
	})
	m.g.traceEvent(trace.Event{
		Time: now, Kind: trace.KindMigrateRedispatch, ReqID: rec.ReqID,
		Agent: acceptor.Name(), Resource: d.Resource, TaskID: d.TaskID, App: app,
		Detail: fmt.Sprintf("from=%s oldtask=%d", origin, rec.TaskID),
	})
}

// targets returns the agents a drifting origin offers to: its upper
// agent, or — at the head of the hierarchy — each lower in link order.
// An offer is an exchange like any other, so a crashed peer or a cut
// origin–peer link (an overlapping partition during the degradation)
// rules a target out for as long as the fault holds.
func (m *migrator) targets(origin string, now float64) []*agent.Agent {
	a, ok := m.g.hier.Lookup(origin)
	if !ok {
		return nil
	}
	reachable := func(name string) bool {
		if m.g.injector == nil {
			return true
		}
		return m.g.injector.Registry().ExchangeErr(origin, name, now) == nil
	}
	if up, ok := a.Upper().(*agent.Agent); ok && up != nil {
		if reachable(up.Name()) {
			return []*agent.Agent{up}
		}
		return nil // partitioned from the parent: lowers are not ours to offer to
	}
	var out []*agent.Agent
	for _, p := range a.Lowers() {
		if la, ok := p.(*agent.Agent); ok && reachable(la.Name()) {
			out = append(out, la)
		}
	}
	return out
}

// stillPlanned reports whether the task is still in the scheduler's
// unstarted plan.
func stillPlanned(l *scheduler.Local, taskID int) bool {
	for _, r := range l.Planned() {
		if r.TaskID == taskID {
			return true
		}
	}
	return false
}
