package core

import (
	"reflect"
	"testing"

	"repro/internal/metrics"
	"repro/internal/scheduler"
)

// TestRetiredHoldLeavesTable3Untouched is the release/expiry regression
// at grid level: a hold that is booked and then retired — released or
// TTL-expired — before traffic arrives must leave the whole run, records
// and Table 3 metrics alike, byte-identical to a grid that never booked.
func TestRetiredHoldLeavesTable3Untouched(t *testing.T) {
	run := func(prep func(l *scheduler.Local)) ([]scheduler.Record, metrics.GridReport) {
		g := smallGrid(t, Options{UseAgents: true, Seed: 907})
		if prep != nil {
			l, ok := g.Local("mid")
			if !ok {
				t.Fatal("no local mid")
			}
			prep(l)
		}
		// Traffic starts at t=40, after the expiry variant's sweep time,
		// so both runs drive every scheduler over the same instants.
		for i := 0; i < 12; i++ {
			if err := g.SubmitAt(40+float64(i)*15, "fast", "fft", 4000); err != nil {
				t.Fatal(err)
			}
		}
		if err := g.Run(); err != nil {
			t.Fatal(err)
		}
		rep, err := g.Metrics(0)
		if err != nil {
			t.Fatal(err)
		}
		return g.Records(), rep
	}

	plainRecs, plainRep := run(nil)

	released := func(l *scheduler.Local) {
		if err := l.HoldReservation(77, "ghost", 0b1111, 50, 500, 0, 30); err != nil {
			t.Fatal(err)
		}
		if err := l.ReleaseReservation(77, 0); err != nil {
			t.Fatal(err)
		}
	}
	expired := func(l *scheduler.Local) {
		if err := l.HoldReservation(77, "ghost", 0b1111, 50, 500, 0, 30); err != nil {
			t.Fatal(err)
		}
		if due := l.ExpireReservations(40); len(due) != 1 {
			t.Fatalf("expiry sweep returned %d bookings, want 1", len(due))
		}
	}
	for _, c := range []struct {
		name string
		prep func(l *scheduler.Local)
	}{
		{"released", released},
		{"expired", expired},
	} {
		recs, rep := run(c.prep)
		if !reflect.DeepEqual(recs, plainRecs) {
			t.Fatalf("%s hold changed the execution records", c.name)
		}
		if !reflect.DeepEqual(rep, plainRep) {
			t.Fatalf("%s hold changed the Table 3 metrics:\n%+v\n%+v", c.name, rep, plainRep)
		}
	}
}
