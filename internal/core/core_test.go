package core

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/ga"
	"repro/internal/trace"
	"repro/internal/workload"
)

func smallGrid(t testing.TB, opts Options) *Grid {
	t.Helper()
	specs := []ResourceSpec{
		{Name: "fast", Hardware: "SGIOrigin2000", Nodes: 8, Parent: ""},
		{Name: "mid", Hardware: "SunUltra5", Nodes: 8, Parent: "fast"},
		{Name: "slow", Hardware: "SunSPARCstation2", Nodes: 8, Parent: "fast"},
	}
	if opts.GA == (ga.Config{}) {
		cfg := ga.DefaultConfig()
		cfg.MaxGenerations = 12
		cfg.ConvergenceWindow = 4
		opts.GA = cfg
	}
	g, err := New(specs, opts)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, Options{}); err == nil {
		t.Error("empty spec accepted")
	}
	bad := []ResourceSpec{{Name: "x", Hardware: "VAX", Nodes: 4}}
	if _, err := New(bad, Options{}); err == nil {
		t.Error("unknown hardware accepted")
	}
	orphan := []ResourceSpec{
		{Name: "a", Hardware: "SGIOrigin2000", Nodes: 4},
		{Name: "b", Hardware: "SGIOrigin2000", Nodes: 4, Parent: "nope"},
	}
	if _, err := New(orphan, Options{}); err == nil {
		t.Error("unknown parent accepted")
	}
	twoHeads := []ResourceSpec{
		{Name: "a", Hardware: "SGIOrigin2000", Nodes: 4},
		{Name: "b", Hardware: "SGIOrigin2000", Nodes: 4},
	}
	if _, err := New(twoHeads, Options{}); err == nil {
		t.Error("two-headed grid accepted")
	}
	if _, err := New([]ResourceSpec{{Name: "a", Hardware: "SGIOrigin2000", Nodes: 4}},
		Options{Policy: PolicyKind("quantum")}); err == nil {
		t.Error("unknown policy accepted")
	}
}

func TestGridDefaults(t *testing.T) {
	g := smallGrid(t, Options{})
	if g.Library().Len() != 7 {
		t.Fatalf("default library has %d models", g.Library().Len())
	}
	if !g.Engine().CacheEnabled() {
		t.Fatal("evaluation cache disabled by default")
	}
	if _, ok := g.Local("fast"); !ok {
		t.Fatal("local lookup failed")
	}
	nodes := g.NodesByResource()
	if nodes["fast"] != 8 || len(nodes) != 3 {
		t.Fatalf("NodesByResource = %v", nodes)
	}
	if g.Hierarchy().Head().Name() != "fast" {
		t.Fatal("wrong hierarchy head")
	}
}

func TestGridRunDirectSubmission(t *testing.T) {
	g := smallGrid(t, Options{Policy: PolicyFIFO})
	for i := 0; i < 10; i++ {
		if err := g.SubmitAt(float64(i), "slow", "fft", 1e6); err != nil {
			t.Fatal(err)
		}
	}
	if g.Requests() != 10 {
		t.Fatalf("requests = %d", g.Requests())
	}
	if err := g.Run(); err != nil {
		t.Fatal(err)
	}
	recs := g.Records()
	if len(recs) != 10 {
		t.Fatalf("%d records, want 10", len(recs))
	}
	for _, r := range recs {
		if r.Resource != "slow" {
			t.Fatalf("direct submission landed on %s", r.Resource)
		}
	}
	if len(g.Dispatches()) != 10 {
		t.Fatalf("%d dispatches", len(g.Dispatches()))
	}
}

func TestGridRunWithAgentsRedistributes(t *testing.T) {
	g := smallGrid(t, Options{Policy: PolicyGA, UseAgents: true, Seed: 5})
	// Tight deadlines submitted to the slow agent must migrate to faster
	// resources through discovery.
	for i := 0; i < 20; i++ {
		if err := g.SubmitAt(float64(i), "slow", "sweep3d", 12); err != nil {
			t.Fatal(err)
		}
	}
	if err := g.Run(); err != nil {
		t.Fatal(err)
	}
	recs := g.Records()
	if len(recs) != 20 {
		t.Fatalf("%d records", len(recs))
	}
	bySite := map[string]int{}
	for _, r := range recs {
		bySite[r.Resource]++
	}
	if bySite["slow"] == 20 {
		t.Fatalf("agents did not redistribute: %v", bySite)
	}
	if bySite["fast"] == 0 {
		t.Fatalf("fast resource unused: %v", bySite)
	}
}

func TestGridMetrics(t *testing.T) {
	g := smallGrid(t, Options{Policy: PolicyFIFO})
	if err := g.SubmitAt(0, "fast", "closure", 100); err != nil {
		t.Fatal(err)
	}
	if err := g.Run(); err != nil {
		t.Fatal(err)
	}
	rep, err := g.Metrics(60)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Total.Tasks != 1 {
		t.Fatalf("metrics over %d tasks", rep.Total.Tasks)
	}
	if rep.Total.Epsilon <= 0 {
		t.Fatalf("an uncontended task missed its deadline: ε = %v", rep.Total.Epsilon)
	}
	if len(rep.PerResource) != 3 {
		t.Fatalf("%d resources in report", len(rep.PerResource))
	}
}

func TestGridSubmitValidation(t *testing.T) {
	g := smallGrid(t, Options{})
	if err := g.SubmitAt(0, "fast", "no-such-app", 10); err == nil {
		t.Error("unknown app accepted")
	}
	if err := g.SubmitAt(0, "no-such-agent", "fft", 10); err == nil {
		t.Error("unknown agent accepted")
	}
	if err := g.SubmitAt(0, "fast", "fft", -1); err == nil {
		t.Error("negative deadline accepted")
	}
}

func TestGridRunOnlyOnce(t *testing.T) {
	g := smallGrid(t, Options{})
	if err := g.Run(); err != nil {
		t.Fatal(err)
	}
	if err := g.Run(); err == nil {
		t.Error("second Run accepted")
	}
	if err := g.SubmitAt(0, "fast", "fft", 10); err == nil {
		t.Error("submission after Run accepted")
	}
}

func TestGridWorkloadIntegration(t *testing.T) {
	g := smallGrid(t, Options{Policy: PolicyGA, UseAgents: true, Seed: 9})
	spec := workload.Spec{
		Seed: 9, Count: 30, Interval: 1,
		AgentNames: []string{"fast", "mid", "slow"},
		Library:    g.Library(),
	}
	reqs, err := workload.Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.SubmitWorkload(reqs); err != nil {
		t.Fatal(err)
	}
	if err := g.Run(); err != nil {
		t.Fatal(err)
	}
	if got := len(g.Records()); got != 30 {
		t.Fatalf("%d records, want 30 (no tasks lost)", got)
	}
}

func TestGridDeterminism(t *testing.T) {
	run := func() string {
		g := smallGrid(t, Options{Policy: PolicyGA, UseAgents: true, Seed: 21})
		spec := workload.Spec{
			Seed: 21, Count: 25, Interval: 1,
			AgentNames: []string{"fast", "mid", "slow"},
			Library:    g.Library(),
		}
		reqs, _ := workload.Generate(spec)
		if err := g.SubmitWorkload(reqs); err != nil {
			t.Fatal(err)
		}
		if err := g.Run(); err != nil {
			t.Fatal(err)
		}
		var b strings.Builder
		for _, r := range g.Records() {
			b.WriteString(r.Resource)
			b.WriteString("|")
		}
		rep, _ := g.Metrics(25)
		fmt.Fprintf(&b, "===%v", rep.Total.Epsilon)
		return b.String()
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("same seed produced different runs:\n%s\n%s", a, b)
	}
}

func TestGridEvalCacheAblation(t *testing.T) {
	g := smallGrid(t, Options{DisableEvalCache: true})
	if g.Engine().CacheEnabled() {
		t.Fatal("cache ablation option ignored")
	}
}

func TestGridTraceRecordsLifecycle(t *testing.T) {
	rec := trace.NewRecorder(1000)
	g := smallGrid(t, Options{Policy: PolicyGA, UseAgents: true, Seed: 3, Trace: rec})
	for i := 0; i < 5; i++ {
		if err := g.SubmitAt(float64(i), "slow", "fft", 500); err != nil {
			t.Fatal(err)
		}
	}
	if err := g.Run(); err != nil {
		t.Fatal(err)
	}
	counts := rec.CountByKind()
	if counts[trace.KindArrive] != 5 || counts[trace.KindDispatch] != 5 {
		t.Fatalf("arrival/dispatch counts: %v", counts)
	}
	if counts[trace.KindStart] != 5 || counts[trace.KindComplete] != 5 {
		t.Fatalf("start/complete counts: %v", counts)
	}
	// Every dispatched request has a coherent history ending in completion.
	for _, d := range g.Dispatches() {
		if d.ReqID == 0 {
			t.Fatalf("dispatch %+v carries no request ID", d)
		}
		hist := rec.TaskHistory(d.ReqID)
		if len(hist) == 0 || hist[0].Kind != trace.KindArrive || hist[len(hist)-1].Kind != trace.KindComplete {
			t.Fatalf("request %d history: %+v", d.ReqID, hist)
		}
	}
}
