package core

import (
	"fmt"
	"reflect"
	"strings"
	"testing"

	"repro/internal/scheduler"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

func TestReservationRequiresAgents(t *testing.T) {
	g := smallGrid(t, Options{Seed: 1})
	err := g.SubmitReservationAt(0, "fast", "fft", 100, 50, 2, 1)
	if err == nil || !strings.Contains(err.Error(), "UseAgents") {
		t.Fatalf("err = %v, want UseAgents requirement", err)
	}
}

func TestReservationValidation(t *testing.T) {
	g := smallGrid(t, Options{UseAgents: true, Seed: 1})
	for _, c := range []struct {
		app                string
		startRel, duration float64
		nodes              int
	}{
		{"nosuch", 100, 50, 2},
		{"fft", -1, 50, 2},
		{"fft", 100, 0, 2},
		{"fft", 100, 50, 0},
	} {
		if err := g.SubmitReservationAt(0, "fast", c.app, c.startRel, c.duration, c.nodes, 1); err == nil {
			t.Errorf("accepted bad reservation %+v", c)
		}
	}
	if err := g.SubmitReservationAt(0, "ghost", "fft", 100, 50, 2, 1); err == nil {
		t.Error("accepted reservation at unknown agent")
	}
}

// reservedGrid mixes best-effort traffic with reservations on the
// three-resource grid, under trace + telemetry, and returns both.
func reservedGrid(t testing.TB) (*Grid, *trace.Recorder) {
	t.Helper()
	rec := trace.NewRecorder(4096)
	g := smallGrid(t, Options{
		UseAgents: true,
		Seed:      907,
		Trace:     rec,
		Telemetry: telemetry.NewRegistry(),
	})
	for i := 0; i < 12; i++ {
		if err := g.SubmitAt(float64(i)*15, "fast", "fft", 4000); err != nil {
			t.Fatal(err)
		}
	}
	return g, rec
}

// TestReservationGuaranteedStart is the tentpole end-to-end check: a
// confirmed reservation's task starts exactly at its booked window start
// no matter what best-effort traffic surrounds it, and the whole run
// passes the audit including the reservation invariants.
func TestReservationGuaranteedStart(t *testing.T) {
	g, rec := reservedGrid(t)
	if err := g.SubmitReservationAt(10, "fast", "fft", 400, 120, 3, 1); err != nil {
		t.Fatal(err)
	}
	if err := g.Run(); err != nil {
		t.Fatal(err)
	}
	st := g.ReservationStats()
	if st.Requested != 1 || st.Confirmed != 1 || st.Rejected != 0 || st.Parts != 1 {
		t.Fatalf("stats: %+v", st)
	}
	reserved := g.ReservedRequests()
	if len(reserved) != 1 {
		t.Fatalf("reserved reqIDs: %v", reserved)
	}
	var rrec *scheduler.Record
	for _, r := range g.Records() {
		if reserved[r.ReqID] {
			rr := r
			rrec = &rr
		}
	}
	if rrec == nil {
		t.Fatal("no execution record for the reserved request")
	}
	// Requested earliest was t=10+400=410 on an idle-enough grid: the
	// booked window starts at the quote, and the task runs exactly it.
	if rrec.Start < 410 {
		t.Fatalf("reserved task started at %g, before the requested earliest 410", rrec.Start)
	}
	if rrec.End != rrec.Start+120 {
		t.Fatalf("reserved task ran [%g,%g), want the booked 120 s", rrec.Start, rrec.End)
	}
	byKind := rec.CountByKind()
	if byKind[trace.KindReserveHold] != 1 || byKind[trace.KindReserveConfirm] != 1 {
		t.Fatalf("reservation events: %v", byKind)
	}
	reg := g.Telemetry()
	if v := reg.Counter("reservations_confirmed_total").Value(); v != 1 {
		t.Fatalf("reservations_confirmed_total = %d", v)
	}
	if res := auditRun(t, g, rec); !res.OK() {
		t.Fatalf("audit failed: %s\n%v", res.Summary(), res.Violations[:min(len(res.Violations), 5)])
	}
}

// TestCoAllocationSharedWindow reserves nodes on every resource of the
// grid for one common window: all parts must execute the same [start,
// end) on three distinct resources.
func TestCoAllocationSharedWindow(t *testing.T) {
	g, rec := reservedGrid(t)
	if err := g.SubmitReservationAt(20, "fast", "fft", 300, 90, 2, 3); err != nil {
		t.Fatal(err)
	}
	if err := g.Run(); err != nil {
		t.Fatal(err)
	}
	st := g.ReservationStats()
	if st.Confirmed != 1 || st.Parts != 3 {
		t.Fatalf("stats: %+v", st)
	}
	reserved := g.ReservedRequests()
	var parts []scheduler.Record
	for _, r := range g.Records() {
		if reserved[r.ReqID] {
			parts = append(parts, r)
		}
	}
	if len(parts) != 3 {
		t.Fatalf("%d reserved records, want 3 parts", len(parts))
	}
	resources := map[string]bool{}
	for _, p := range parts {
		resources[p.Resource] = true
		if p.Start != parts[0].Start || p.End != parts[0].End {
			t.Fatalf("part windows diverge: %+v", parts)
		}
	}
	if len(resources) != 3 {
		t.Fatalf("parts landed on %d distinct resources, want 3", len(resources))
	}
	if res := auditRun(t, g, rec); !res.OK() {
		t.Fatalf("audit failed: %s\n%v", res.Summary(), res.Violations[:min(len(res.Violations), 5)])
	}
}

// TestReservationRejectedBeyondMaxSlip books the whole grid solid, then
// asks for a window inside the blockade with a tight slip bound: the
// admission must be refused with nothing held, and the rejected request
// must still satisfy lifecycle conservation (arrive → fail).
func TestReservationRejectedBeyondMaxSlip(t *testing.T) {
	rec := trace.NewRecorder(4096)
	g := smallGrid(t, Options{
		UseAgents:   true,
		Seed:        31,
		Trace:       rec,
		Reservation: ReservationPolicy{MaxSlip: 10},
	})
	// Blockade: all 8 nodes of every resource for [100, 5000).
	if err := g.SubmitReservationAt(0, "fast", "fft", 100, 4900, 8, 3); err != nil {
		t.Fatal(err)
	}
	// The victim wants 2 nodes at t=200±10 — inside the blockade on every
	// resource, so the earliest feasible start slips to 5000.
	if err := g.SubmitReservationAt(50, "fast", "fft", 150, 60, 2, 1); err != nil {
		t.Fatal(err)
	}
	if err := g.Run(); err != nil {
		t.Fatal(err)
	}
	st := g.ReservationStats()
	if st.Confirmed != 1 || st.Rejected != 1 {
		t.Fatalf("stats: %+v", st)
	}
	byKind := rec.CountByKind()
	if byKind[trace.KindFail] != 1 {
		t.Fatalf("fail events: %v", byKind)
	}
	// Nothing may be left held anywhere after the rejection: the victim's
	// reservation ID (its first minted reqID, 4, after the blockade's
	// three parts) must not appear in any book.
	for _, name := range g.Hierarchy().Names() {
		l, _ := g.Local(name)
		if b := l.Book(); b != nil {
			if bk, ok := b.Get(4); ok {
				t.Fatalf("rejected reservation left booking %+v on %s", bk, name)
			}
		}
	}
	if res := auditRun(t, g, rec); !res.OK() {
		t.Fatalf("audit failed: %s\n%v", res.Summary(), res.Violations[:min(len(res.Violations), 5)])
	}
}

// TestReservationExpirySweep plants a hold directly on a local book —
// the abandoned-client case the TTL exists for — and checks the sweep
// retires it, frees the window, and emits the reserve-expire event the
// audit needs to close the booking's lifecycle.
func TestReservationExpirySweep(t *testing.T) {
	g, rec := reservedGrid(t)
	// A real reservation brings the reservist (and its sweep) to life.
	if err := g.SubmitReservationAt(10, "fast", "fft", 400, 60, 2, 1); err != nil {
		t.Fatal(err)
	}
	// The abandoned hold: placed before the run on mid's book with a 25 s
	// TTL, never confirmed. The matching hold event keeps the audit's
	// booking lifecycle consistent.
	l, _ := g.Local("mid")
	if err := l.HoldReservation(999, "client", 0b11, 1000, 1100, 0, 25); err != nil {
		t.Fatal(err)
	}
	rec.Record(trace.Event{Time: 0, Kind: trace.KindReserveHold, Resource: "mid",
		Detail: fmt.Sprintf("resv=%d mask=%x win=[%g,%g) exp=%g", 999, 0b11, 1000.0, 1100.0, 25.0)})
	if err := g.Run(); err != nil {
		t.Fatal(err)
	}
	st := g.ReservationStats()
	if st.Expired != 1 {
		t.Fatalf("stats: %+v, want 1 expiry", st)
	}
	if byKind := rec.CountByKind(); byKind[trace.KindReserveExpire] != 1 {
		t.Fatalf("reserve-expire events: %v", byKind)
	}
	// The hold is terminally expired, so its window no longer blocks.
	if bk, ok := l.Book().Get(999); !ok || bk.State.String() != "expired" {
		t.Fatalf("abandoned hold = %+v, want expired", bk)
	}
	if res := auditRun(t, g, rec); !res.OK() {
		t.Fatalf("audit failed: %s\n%v", res.Summary(), res.Violations[:min(len(res.Violations), 5)])
	}
}

// TestReservationPathInertWhenUnused pins the byte-identity contract:
// building the grid with a non-zero reservation policy but never
// submitting a reservation yields exactly the records of a grid that
// knows nothing of reservations.
func TestReservationPathInertWhenUnused(t *testing.T) {
	run := func(opts Options) []scheduler.Record {
		g := smallGrid(t, opts)
		for i := 0; i < 12; i++ {
			if err := g.SubmitAt(float64(i)*15, "fast", "fft", 4000); err != nil {
				t.Fatal(err)
			}
		}
		if err := g.Run(); err != nil {
			t.Fatal(err)
		}
		return g.Records()
	}
	plain := run(Options{UseAgents: true, Seed: 907})
	armed := run(Options{UseAgents: true, Seed: 907,
		Reservation: ReservationPolicy{HoldTTL: 5, MaxSlip: 1, SweepPeriod: 1}})
	if !reflect.DeepEqual(plain, armed) {
		t.Fatal("an unused reservation policy changed the run")
	}
}

// TestReservationDeterministic runs the mixed workload twice and demands
// identical records and stats.
func TestReservationDeterministic(t *testing.T) {
	run := func() ([]scheduler.Record, ReservationStats) {
		g, _ := reservedGrid(t)
		if err := g.SubmitReservationAt(10, "fast", "fft", 400, 120, 3, 2); err != nil {
			t.Fatal(err)
		}
		if err := g.Run(); err != nil {
			t.Fatal(err)
		}
		return g.Records(), g.ReservationStats()
	}
	r1, s1 := run()
	r2, s2 := run()
	if !reflect.DeepEqual(r1, r2) || s1 != s2 {
		t.Fatalf("two identical reservation runs diverged: %+v vs %+v", s1, s2)
	}
}
