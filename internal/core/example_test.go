package core_test

import (
	"fmt"

	"repro/internal/core"
)

// A minimal grid: two resources under an agent hierarchy, one request
// whose deadline the slow resource cannot meet, dispatched through
// service discovery.
func ExampleGrid() {
	grid, err := core.New([]core.ResourceSpec{
		{Name: "fast", Hardware: "SGIOrigin2000", Nodes: 16},
		{Name: "slow", Hardware: "SunSPARCstation2", Nodes: 16, Parent: "fast"},
	}, core.Options{Policy: core.PolicyGA, UseAgents: true, Seed: 1})
	if err != nil {
		panic(err)
	}
	// sweep3d needs at least 24 s on the SPARCstation2 but only 4 s on
	// the Origin: a 10-second deadline must migrate to "fast".
	if err := grid.SubmitAt(0, "slow", "sweep3d", 10); err != nil {
		panic(err)
	}
	if err := grid.Run(); err != nil {
		panic(err)
	}
	for _, r := range grid.Records() {
		fmt.Printf("%s ran on %s: [%g, %g], met deadline: %v\n",
			r.App.Name, r.Resource, r.Start, r.End, r.End <= r.Deadline)
	}
	// Output:
	// sweep3d ran on fast: [0, 4], met deadline: true
}
