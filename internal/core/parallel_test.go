package core

import (
	"strings"
	"testing"

	"repro/internal/audit"
	"repro/internal/trace"
	"repro/internal/workload"
)

// wideGrid builds a hierarchy wide enough (12 resources) that the
// sharded step loop actually goes parallel: forEachLocal only fans out
// when at least parallelMinItems locals are due at once.
func wideGrid(t testing.TB, opts Options) *Grid {
	t.Helper()
	hardware := []string{"SGIOrigin2000", "SunUltra5", "SunSPARCstation2"}
	specs := []ResourceSpec{{Name: "r0", Hardware: hardware[0], Nodes: 8}}
	for i := 1; i < 12; i++ {
		parent := "r0"
		if i > 3 {
			parent = specs[(i-1)/3].Name
		}
		specs = append(specs, ResourceSpec{
			Name:     "r" + string(rune('0'+i/10)) + string(rune('0'+i%10)),
			Hardware: hardware[i%len(hardware)],
			Nodes:    4 + 4*(i%2),
			Parent:   parent,
		})
	}
	g, err := New(specs, opts)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// runSharded drives a wide grid with trace and streaming audit attached
// and returns the run's full lifecycle stream as CSV. Run under -race
// this exercises the parallel advance/drain merge paths end to end.
func runSharded(t *testing.T, workers int) (string, *audit.Observer) {
	t.Helper()
	rec := trace.NewRecorder(100000)
	g := wideGrid(t, Options{
		Policy:    PolicyFIFOFast,
		UseAgents: true,
		Seed:      77,
		Workers:   workers,
		Trace:     rec,
	})
	names := g.hier.Names()
	obs := audit.NewObserver(g.NodesByResource())
	g.opts.Audit = obs
	spec := workload.Spec{
		Seed: 77, Count: 120, Interval: 0.5,
		AgentNames: names,
		Library:    g.Library(),
	}
	reqs, err := workload.Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.SubmitWorkload(reqs); err != nil {
		t.Fatal(err)
	}
	if err := g.Run(); err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := rec.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	return b.String(), obs
}

// TestShardedStepMergeDeterminism proves the tentpole merge contract at
// the core layer: the lifecycle stream a parallel step loop emits is
// byte-identical to the sequential one, and the streaming audit drains
// to zero in-flight state either way. Run with -race (CI does) it also
// serves as the data-race probe for the sharded advance.
func TestShardedStepMergeDeterminism(t *testing.T) {
	seq, seqObs := runSharded(t, 1)
	par, parObs := runSharded(t, 4)
	if seq != par {
		t.Fatalf("lifecycle stream differs between worker widths 1 and 4:\nseq:\n%s\npar:\n%s", seq, par)
	}
	for _, obs := range []*audit.Observer{seqObs, parObs} {
		if got := obs.InFlight(); got != 0 {
			t.Fatalf("streaming audit retained %d request states after the run drained", got)
		}
		if obs.PeakInFlight() == 0 {
			t.Fatal("streaming audit observed nothing")
		}
	}
}
