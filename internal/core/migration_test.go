package core

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/audit"
	"repro/internal/fault"
	"repro/internal/scheduler"
	"repro/internal/trace"
)

// testPolicy is tuned to the test workload below: fft on the slow
// resource runs 108 s (432 s degraded), so completions are sparse and a
// 50 s check window with no hysteresis catches the first one that lands
// inside the 480 s request phase.
func testPolicy() MigrationPolicy {
	return MigrationPolicy{Enabled: true, CheckPeriod: 50, Window: 1}
}

// degradedGrid builds the three-resource grid with the slow resource
// degraded 4x for the whole run and a steady trickle of work submitted
// to it under loose deadlines (so §3.2 local-first keeps the queue
// local and the migration policy — not initial matchmaking — is what
// moves work).
func degradedGrid(t testing.TB, pol MigrationPolicy, extra ...fault.Event) (*Grid, *trace.Recorder) {
	t.Helper()
	rec := trace.NewRecorder(1024)
	plan := &fault.Plan{Events: append([]fault.Event{
		{At: 0, Kind: fault.Degrade, Agent: "slow", Factor: 4},
		{At: 2000, Kind: fault.Restore, Agent: "slow"},
	}, extra...)}
	g := smallGrid(t, Options{
		UseAgents: true,
		Seed:      2003,
		Trace:     rec,
		FaultPlan: plan,
		Migration: pol,
	})
	for i := 0; i < 24; i++ {
		if err := g.SubmitAt(float64(i)*20, "slow", "fft", 4000); err != nil {
			t.Fatal(err)
		}
	}
	return g, rec
}

func auditRun(t testing.TB, g *Grid, rec *trace.Recorder) audit.Result {
	t.Helper()
	report, err := g.Metrics(0)
	if err != nil {
		t.Fatal(err)
	}
	return audit.Check(audit.Run{
		Events:     rec.Events(),
		Records:    g.Records(),
		Dispatches: g.Dispatches(),
		Nodes:      g.NodesByResource(),
		Report:     report,
		Dropped:    rec.Dropped(),
	})
}

func TestMigrationRequiresAgents(t *testing.T) {
	_, err := New([]ResourceSpec{
		{Name: "only", Hardware: "SGIOrigin2000", Nodes: 8},
	}, Options{Migration: MigrationPolicy{Enabled: true}})
	if err == nil || !strings.Contains(err.Error(), "UseAgents") {
		t.Fatalf("err = %v, want UseAgents requirement", err)
	}
}

func TestMigrationMovesWorkOffDegradedNode(t *testing.T) {
	g, rec := degradedGrid(t, testPolicy())
	if err := g.Run(); err != nil {
		t.Fatal(err)
	}
	st := g.MigrationStats()
	if st.Breaches == 0 {
		t.Fatal("a 4x-degraded resource never breached the drift threshold")
	}
	if st.Accepts == 0 {
		t.Fatalf("no task migrated: %+v", st)
	}
	moved := 0
	for _, r := range g.Records() {
		if r.Resource != "slow" {
			moved++
		}
	}
	if moved < st.Accepts {
		t.Fatalf("%d records off the degraded resource, %d migrations accepted", moved, st.Accepts)
	}
	byKind := rec.CountByKind()
	if byKind[trace.KindMigrateOffer] != st.Offers ||
		byKind[trace.KindMigrateWithdraw] != st.Accepts ||
		byKind[trace.KindMigrateRedispatch] != st.Accepts {
		t.Fatalf("trace events offer/withdraw/redispatch = %d/%d/%d, stats %+v",
			byKind[trace.KindMigrateOffer], byKind[trace.KindMigrateWithdraw],
			byKind[trace.KindMigrateRedispatch], st)
	}
	if res := auditRun(t, g, rec); !res.OK() {
		t.Fatalf("audit failed: %s\n%v", res.Summary(), res.Violations[:min(len(res.Violations), 5)])
	}
}

// TestMigrationDisabledIsInert pins the byte-identity contract from the
// other side: an *enabled* policy whose threshold can never be breached
// must produce the exact records of a disabled one — the drift checks
// themselves observe, and never perturb, the simulation.
func TestMigrationDisabledIsInert(t *testing.T) {
	run := func(pol MigrationPolicy) []scheduler.Record {
		g, _ := degradedGrid(t, pol)
		if err := g.Run(); err != nil {
			t.Fatal(err)
		}
		return g.Records()
	}
	off := run(MigrationPolicy{})
	inert := run(MigrationPolicy{Enabled: true, DriftThreshold: 1e12})
	if !reflect.DeepEqual(off, inert) {
		t.Fatal("an unbreachable enabled policy changed the run against a disabled one")
	}
}

// TestMigrationWithOverlappingPartition cuts the slow–fast link for the
// whole degradation window: the origin's only offer target is its upper
// agent, so every offer round must find no reachable target and the
// queue must drain locally — slowly, but exactly once per task.
func TestMigrationWithOverlappingPartition(t *testing.T) {
	g, rec := degradedGrid(t, testPolicy(),
		fault.Event{At: 0, Kind: fault.Cut, A: "slow", B: "fast"},
		fault.Event{At: 2000, Kind: fault.Heal, A: "slow", B: "fast"},
	)
	if err := g.Run(); err != nil {
		t.Fatal(err)
	}
	st := g.MigrationStats()
	if st.Breaches == 0 {
		t.Fatal("degradation went unnoticed")
	}
	if byKind := rec.CountByKind(); byKind[trace.KindMigrateRedispatch] != 0 {
		t.Fatalf("%d tasks migrated across a cut link", byKind[trace.KindMigrateRedispatch])
	}
	if res := auditRun(t, g, rec); !res.OK() {
		t.Fatalf("audit failed: %s", res.Summary())
	}
}

// TestMigrationRacesCrashRedispatch overlaps the two rescue mechanisms:
// the drift policy starts offering tasks off the degraded resource, and
// then the resource crashes outright, handing whatever is still queued
// to the injector's failure re-dispatch. Both paths re-place work under
// the same grid-wide ReqIDs; the audit proves no task ran twice or
// vanished in the scramble. (Run under -race in CI.)
func TestMigrationRacesCrashRedispatch(t *testing.T) {
	// The crash lands just after the t=450 offer round: migration has
	// already moved part of the queue (MaxPerRound keeps it from taking
	// everything) when failure re-dispatch grabs the rest.
	pol := testPolicy()
	pol.MaxPerRound = 4
	g, rec := degradedGrid(t, pol,
		fault.Event{At: 455, Kind: fault.Crash, Agent: "slow"},
		fault.Event{At: 600, Kind: fault.Recover, Agent: "slow"},
	)
	if err := g.Run(); err != nil {
		t.Fatal(err)
	}
	byKind := rec.CountByKind()
	if byKind[trace.KindRedispatch] == 0 {
		t.Fatal("the crash re-dispatched nothing; the race never happened")
	}
	if byKind[trace.KindMigrateRedispatch] == 0 {
		t.Fatal("no migration before the crash; the race never happened")
	}
	if len(g.Records()) != 24 {
		t.Fatalf("completed %d of 24 tasks", len(g.Records()))
	}
	if res := auditRun(t, g, rec); !res.OK() {
		t.Fatalf("audit failed: %s\n%v", res.Summary(), res.Violations[:min(len(res.Violations), 5)])
	}
}

// TestMigrationDeterministic runs the full degraded+migration scenario
// twice and demands identical records and stats.
func TestMigrationDeterministic(t *testing.T) {
	run := func() ([]scheduler.Record, MigrationStats) {
		g, _ := degradedGrid(t, testPolicy())
		if err := g.Run(); err != nil {
			t.Fatal(err)
		}
		return g.Records(), g.MigrationStats()
	}
	r1, s1 := run()
	r2, s2 := run()
	if !reflect.DeepEqual(r1, r2) || s1 != s2 {
		t.Fatalf("two identical migration runs diverged: %+v vs %+v", s1, s2)
	}
}
