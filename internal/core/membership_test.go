package core

import (
	"testing"

	"repro/internal/membership"
)

// churnOpts is the base configuration for the dynamic-membership tests:
// agents + GA over the three-resource smallGrid, with a joiner arriving
// mid-workload and the slow resource leaving before the end.
func churnOpts(seed uint64, workers int) Options {
	return Options{
		Policy: PolicyGA, UseAgents: true, Seed: seed, Workers: workers,
		Churn: &membership.Plan{
			Joins:  []membership.Join{{Time: 20, Name: "late", Hardware: "SGIOrigin2000", Nodes: 8, Parent: "mid"}},
			Leaves: []membership.Leave{{Time: 40, Name: "slow"}},
		},
		Rebalance: &membership.Policy{MinLoad: 1, Window: 1, Cooldown: 10, CheckPeriod: 7},
	}
}

// TestMembershipOffByteIdentical proves the subsystem is inert when its
// machinery is wired but has nothing to do: a grid whose churn plan only
// fires after the workload has drained, and whose rebalancer floor is
// unreachable, produces the exact dispatch and record stream of a grid
// built without membership at all. (Joiner agents are built at
// construction, so their RNG splits must come after every base split to
// keep the base schedulers' streams untouched — this is the test that
// catches an ordering regression.)
func TestMembershipOffByteIdentical(t *testing.T) {
	base := Options{Policy: PolicyGA, UseAgents: true, Seed: 42}
	plain := smallGrid(t, base)
	submitMixed(t, plain)
	if err := plain.Run(); err != nil {
		t.Fatal(err)
	}

	inert := base
	inert.Churn = &membership.Plan{
		Joins: []membership.Join{{Time: 1e6, Name: "late", Hardware: "SGIOrigin2000", Nodes: 8, Parent: "mid"}},
	}
	inert.Rebalance = &membership.Policy{MinLoad: 1 << 30}
	wired := smallGrid(t, inert)
	submitMixed(t, wired)
	if err := wired.Run(); err != nil {
		t.Fatal(err)
	}

	if got, want := runFingerprint(wired), runFingerprint(plain); got != want {
		t.Fatalf("inert membership perturbed the run:\n--- plain ---\n%s--- wired ---\n%s", want, got)
	}
}

// TestChurnDeterministicAcrossWorkers runs the full churn configuration
// at worker widths 1, 2 and 4 and demands identical streams: the GA
// evaluation pool must not leak scheduling order into membership runs.
func TestChurnDeterministicAcrossWorkers(t *testing.T) {
	var want string
	for _, workers := range []int{1, 2, 4} {
		g := smallGrid(t, churnOpts(7, workers))
		submitMixed(t, g)
		if err := g.Run(); err != nil {
			t.Fatal(err)
		}
		got := runFingerprint(g)
		if want == "" {
			want = got
			continue
		}
		if got != want {
			t.Fatalf("churn run diverged at %d workers:\n--- 1 worker ---\n%s--- %d workers ---\n%s", workers, want, workers, got)
		}
	}
	// And the same width twice: the churn path draws no hidden state.
	g := smallGrid(t, churnOpts(7, 2))
	submitMixed(t, g)
	if err := g.Run(); err != nil {
		t.Fatal(err)
	}
	if runFingerprint(g) != want {
		t.Fatal("repeated churn run diverged")
	}
}

// TestLeaveReroutesLateTraffic is the graceful-deregistration guarantee:
// after slow leaves at t=40, a request still addressed to it is rerouted
// through its former parent, completes elsewhere, and nothing new ever
// starts on the leaver.
func TestLeaveReroutesLateTraffic(t *testing.T) {
	opts := Options{
		Policy: PolicyGA, UseAgents: true, Seed: 11,
		Churn: &membership.Plan{Leaves: []membership.Leave{{Time: 40, Name: "slow"}}},
	}
	g := smallGrid(t, opts)
	// Early work lands everywhere; the late batch is addressed to the
	// departed agent by name.
	for i := 0; i < 10; i++ {
		if err := g.SubmitAt(float64(i)*2, "slow", "fft", 30); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 5; i++ {
		if err := g.SubmitAt(60+float64(i)*2, "slow", "fft", 30); err != nil {
			t.Fatal(err)
		}
	}
	if err := g.Run(); err != nil {
		t.Fatal(err)
	}
	if got := len(g.Records()); got != 15 {
		t.Fatalf("%d records, want 15 — traffic to the leaver was lost", got)
	}
	mbs := g.MembershipStats()
	if mbs.Leaves != 1 {
		t.Fatalf("leaves = %d, want 1", mbs.Leaves)
	}
	// The leaver may finish work it started before t=40, but no task may
	// start on it afterwards: its adverts expired at the leave instant.
	for _, r := range g.Records() {
		if r.Resource == "slow" && r.Start > 40 {
			t.Fatalf("task started on slow at %.1f, after its leave at 40", r.Start)
		}
	}
	// The late batch completed on the survivors.
	late := 0
	for _, d := range g.Dispatches() {
		if d.Resource != "slow" {
			late++
		}
	}
	if late == 0 {
		t.Fatal("no dispatch landed on a surviving resource")
	}
}

// TestJoinerAbsorbsWork: an agent joining mid-run must become a real
// dispatch target through the ordinary advert exchange. The workload is
// arranged so the joiner is the only resource that can win: fft takes
// 18s on SGIOrigin2000 and 108s on the entry point's SunSPARCstation2,
// so a 25s relative deadline rules out the entry point locally, and the
// head (the other SGI machine) is preloaded with enough sweep3d work
// that its advertised freetime pushes its η past the deadline too.
func TestJoinerAbsorbsWork(t *testing.T) {
	opts := Options{
		Policy: PolicyGA, UseAgents: true, Seed: 3,
		Churn: &membership.Plan{
			Joins: []membership.Join{{Time: 20, Name: "late", Hardware: "SGIOrigin2000", Nodes: 8, Parent: "slow"}},
		},
	}
	g := smallGrid(t, opts)
	for i := 0; i < 30; i++ {
		if err := g.SubmitAt(0.5*float64(i), "fast", "sweep3d", 500); err != nil {
			t.Fatal(err)
		}
	}
	// Probes arrive after the t=30 pull has spread the joiner's advert.
	for i := 0; i < 10; i++ {
		if err := g.SubmitAt(31+float64(i), "slow", "fft", 25); err != nil {
			t.Fatal(err)
		}
	}
	if err := g.Run(); err != nil {
		t.Fatal(err)
	}
	onJoiner := 0
	for _, d := range g.Dispatches() {
		if d.Resource == "late" {
			onJoiner++
			if d.Hops == 0 {
				t.Fatal("dispatch on the joiner skipped discovery")
			}
		}
	}
	if onJoiner == 0 {
		t.Fatal("the runtime joiner never received a dispatch")
	}
	if g.MembershipStats().Joins != 1 {
		t.Fatalf("joins = %d, want 1", g.MembershipStats().Joins)
	}
}
