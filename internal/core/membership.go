package core

import (
	"fmt"
	"strings"

	"repro/internal/agent"
	"repro/internal/membership"
	"repro/internal/pace"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// memberState drives the dynamic-hierarchy subsystem on the simulator
// clock: it owns the membership registry, the pre-built joiner agents,
// the optional rebalancer and the per-check dispatch-traffic baseline.
// It is owned by the Grid and shares its single-goroutine discipline.
type memberState struct {
	g   *Grid
	reg *membership.Registry
	reb *membership.Rebalancer

	// pending holds joiner agents built at grid construction (so the
	// base schedulers' RNG streams are untouched) but attached only when
	// their join event fires.
	pending map[string]*agent.Agent

	// lastAccept is each resource's local-accept count at the previous
	// rebalance check; the delta is the dispatch-traffic half of the
	// pressure signal.
	lastAccept map[string]uint64

	// Instruments; all nil (and every use a no-op) without telemetry.
	cJoins   *telemetry.Counter
	cLeaves  *telemetry.Counter
	cDrained *telemetry.Counter
	cMoves   *telemetry.Counter
}

// newMemberState validates the churn plan, pre-builds every joiner and
// wires the rebalancer. Called from New after all base resources, so the
// joiners' policy RNG splits come strictly after the base ones.
func newMemberState(g *Grid, master *sim.RNG) (*memberState, error) {
	ms := &memberState{
		g:          g,
		reg:        membership.NewRegistry(g.hier),
		pending:    map[string]*agent.Agent{},
		lastAccept: map[string]uint64{},
	}
	if plan := g.opts.Churn; plan != nil {
		if err := plan.Validate(g.hier.Head().Name(), g.hier.Names()); err != nil {
			return nil, err
		}
		for _, j := range plan.Joins {
			a, err := g.buildResource(ResourceSpec{
				Name: j.Name, Hardware: j.Hardware, Nodes: j.Nodes,
				Environments: j.Environments,
			}, master)
			if err != nil {
				return nil, err
			}
			a.AdvertTTL = g.opts.AdvertTTL
			if g.opts.FailureThreshold > 0 {
				a.FailureThreshold = g.opts.FailureThreshold
			}
			if g.injector != nil {
				a.SetGate(g.injector.Registry())
			}
			ms.pending[j.Name] = a
		}
	}
	if pol := g.opts.Rebalance; pol != nil {
		ms.reb = membership.NewRebalancer(ms.reg, *pol)
	}
	if reg := g.opts.Telemetry; reg != nil {
		ms.cJoins = reg.Counter("membership_joins_total")
		ms.cLeaves = reg.Counter("membership_leaves_total")
		ms.cDrained = reg.Counter("membership_drained_total")
		ms.cMoves = reg.Counter("membership_moves_total")
	}
	return ms, nil
}

// schedule queues the plan's join/leave events and the rebalance ticks.
func (ms *memberState) schedule() {
	if plan := ms.g.opts.Churn; plan != nil {
		for _, j := range plan.Joins {
			j := j
			ms.g.simr.At(j.Time, func(now float64) { ms.join(j, now) })
		}
		for _, l := range plan.Leaves {
			l := l
			ms.g.simr.At(l.Time, func(now float64) { ms.leave(l.Name, now) })
		}
	}
	if ms.reb != nil {
		last := ms.g.lastRequestAt
		if t := ms.g.opts.Churn.LastEventTime(); t > last {
			last = t
		}
		ms.g.simr.Every(ms.reb.Policy().CheckPeriod, func(now float64) bool {
			ms.rebalance(now)
			return now < last
		})
	}
}

// join attaches a pre-built agent at its scheduled instant.
func (ms *memberState) join(j membership.Join, now float64) {
	ms.g.advanceAll(now)
	a, ok := ms.pending[j.Name]
	if !ok {
		ms.g.errs = append(ms.g.errs, fmt.Errorf("core: join at %g: no pending agent %q", now, j.Name))
		return
	}
	parent, err := ms.reg.Join(a, j.Parent)
	if err != nil {
		ms.g.errs = append(ms.g.errs, fmt.Errorf("core: join at %g: %w", now, err))
		return
	}
	delete(ms.pending, j.Name)
	ms.cJoins.Inc()
	ms.g.traceEvent(trace.Event{
		Time: now, Kind: trace.KindJoin, Agent: j.Name, Resource: j.Name,
		Detail: "parent=" + parent,
	})
}

// leave detaches the named agent: the registry re-homes its subtree and
// expires its adverts, then the grid drains its queued tasks back
// through discovery so nothing is lost with the departing resource.
func (ms *memberState) leave(name string, now float64) {
	ms.g.advanceAll(now)
	res, err := ms.reg.Leave(name)
	if err != nil {
		ms.g.errs = append(ms.g.errs, fmt.Errorf("core: leave at %g: %w", now, err))
		return
	}
	ms.cLeaves.Inc()
	detail := "parent=" + res.Parent.Name()
	if len(res.Rehomed) > 0 {
		detail += " rehomed=" + strings.Join(res.Rehomed, ",")
	}
	ms.g.traceEvent(trace.Event{
		Time: now, Kind: trace.KindLeave, Agent: name, Resource: name,
		Detail: detail,
	})
	ms.drain(res, now)
}

// drain re-places the leaver's not-yet-started tasks through its former
// parent's discovery, one offer→withdraw→redispatch chain per task — the
// same protocol (and the same audited invariant: never lost, never run
// twice) as drift migration, in the same single simulator event, so no
// virtual time passes while a task is on two schedulers. Unlike drift
// migration the drain uses full discovery including the best-effort
// fallback: the origin is leaving, so "stay put" is not an option, and a
// late placement beats a lost task. Already-started tasks run to
// completion on the leaver — the grid keeps advancing every scheduler it
// ever built — but nothing new is dispatched to it (its adverts are gone
// and it is no longer anyone's neighbour), which the audit enforces.
func (ms *memberState) drain(res membership.LeaveResult, now float64) {
	origin := res.Agent.Name()
	l := ms.g.locals[origin]
	snapshot := l.Planned()
	if len(snapshot) == 0 {
		return
	}
	// Discovery must not hand a task back to the leaver (stale caches
	// elsewhere could still advertise it) nor route into a crashed agent.
	visited := []string{origin}
	if ms.g.injector != nil {
		visited = append(visited, ms.g.injector.Registry().Down()...)
	}
	drained := 0
	for _, rec := range snapshot {
		// Deleting an earlier task replans the queue and can promote a
		// later one; re-verify this task is still waiting.
		if !stillPlanned(l, rec.TaskID) {
			continue
		}
		app := ""
		if rec.App != nil {
			app = rec.App.Name
		}
		ms.g.traceEvent(trace.Event{
			Time: now, Kind: trace.KindMigrateOffer, ReqID: rec.ReqID,
			Agent: origin, Resource: origin, TaskID: rec.TaskID, App: app,
			Detail: "leave-drain",
		})
		req := agent.Request{
			ReqID:    rec.ReqID,
			App:      rec.App,
			Env:      "test",
			Deadline: rec.Deadline,
			Visited:  append([]string(nil), visited...),
		}
		d, err := res.Parent.HandleRequest(req, now)
		if err != nil {
			// No reachable resource supports the environment at all: the
			// task stays on the leaver and runs there. Surface it — a
			// drain that strands work is worth failing a run over.
			ms.g.errs = append(ms.g.errs, fmt.Errorf("core: drain of req %d off leaving %s: %w", rec.ReqID, origin, err))
			continue
		}
		if err := l.Delete(rec.TaskID, now); err != nil {
			ms.g.errs = append(ms.g.errs, fmt.Errorf("core: drain of req %d: withdraw from %s failed: %w", rec.ReqID, origin, err))
			continue
		}
		drained++
		ms.g.traceEvent(trace.Event{
			Time: now, Kind: trace.KindMigrateWithdraw, ReqID: rec.ReqID,
			Resource: origin, TaskID: rec.TaskID, App: app,
			Detail: "target=" + d.Resource + " leave-drain",
		})
		ms.g.traceEvent(trace.Event{
			Time: now, Kind: trace.KindMigrateRedispatch, ReqID: rec.ReqID,
			Agent: res.Parent.Name(), Resource: d.Resource, TaskID: d.TaskID, App: app,
			Detail: fmt.Sprintf("from=%s oldtask=%d leave-drain", origin, rec.TaskID),
		})
	}
	ms.reg.CountDrained(drained)
	ms.cDrained.Add(uint64(drained))
}

// capacity scores an agent's relative service rate for the rebalancer's
// target choice: processing nodes over the hardware slowdown factor, so
// sixteen SGI nodes outrank sixteen SunUltra1 nodes three to one.
func (ms *memberState) capacity(name string) float64 {
	l, ok := ms.g.locals[name]
	if !ok {
		return 0
	}
	si := l.ServiceInfo()
	if hw, ok := pace.LookupHardware(si.HWType); ok && hw.Factor > 0 {
		return float64(si.NProc) / hw.Factor
	}
	return float64(si.NProc)
}

// rebalance runs one load check and executes at most one move: the
// audited propose→detach→attach chain, all inside this one simulator
// event so the tree is never observably between parents.
func (ms *memberState) rebalance(now float64) {
	ms.g.advanceAll(now)
	// Pressure snapshot: queue depth plus local-accept traffic since the
	// previous check, per attached agent, taken once so the rebalancer's
	// repeated lookups all see the same instant.
	loads := map[string]int{}
	for _, name := range ms.g.hier.Names() {
		a, ok := ms.g.hier.Lookup(name)
		if !ok {
			continue
		}
		accepts := uint64(a.Stats().LocalAccept)
		delta := int(accepts - ms.lastAccept[name])
		ms.lastAccept[name] = accepts
		loads[name] = ms.g.locals[name].QueueLen() + delta
	}
	mv, ok := ms.reb.Plan(now,
		func(name string) int { return loads[name] },
		func(name string) float64 { return ms.capacity(name) })
	if !ok {
		return
	}
	ms.g.traceEvent(trace.Event{
		Time: now, Kind: trace.KindRehomePropose, Agent: mv.Subtree,
		Detail: fmt.Sprintf("from=%s to=%s load=%d/%d", mv.From, mv.To, mv.FromLoad, mv.ToLoad),
	})
	old, err := ms.reg.Rehome(mv.Subtree, mv.To)
	if err != nil {
		ms.g.errs = append(ms.g.errs, fmt.Errorf("core: rebalance at %g: %w", now, err))
		return
	}
	ms.reb.Moved(now)
	ms.cMoves.Inc()
	ms.g.traceEvent(trace.Event{
		Time: now, Kind: trace.KindRehomeDetach, Agent: mv.Subtree,
		Detail: "from=" + old.Name(),
	})
	ms.g.traceEvent(trace.Event{
		Time: now, Kind: trace.KindRehomeAttach, Agent: mv.Subtree,
		Detail: "to=" + mv.To,
	})
}
