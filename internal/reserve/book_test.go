package reserve

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/schedule"
)

func TestHoldAdmission(t *testing.T) {
	bk := NewBook(4)
	if err := bk.Hold(1, "u@g", 0b0011, 100, 200, 0, 30); err != nil {
		t.Fatalf("first hold: %v", err)
	}
	// Overlapping window on a shared node is rejected.
	if err := bk.Hold(2, "u@g", 0b0010, 150, 250, 0, 30); err == nil {
		t.Fatalf("overlapping hold admitted")
	}
	// Same window on disjoint nodes is fine.
	if err := bk.Hold(3, "u@g", 0b1100, 150, 250, 0, 30); err != nil {
		t.Fatalf("disjoint hold: %v", err)
	}
	// Touching windows (end == start) do not conflict.
	if err := bk.Hold(4, "u@g", 0b0011, 200, 300, 0, 30); err != nil {
		t.Fatalf("touching hold: %v", err)
	}
	// Zero-width windows conflict with nothing.
	if err := bk.Hold(5, "u@g", 0b0011, 150, 150, 0, 30); err != nil {
		t.Fatalf("zero-width hold: %v", err)
	}
	for _, bad := range []struct {
		name string
		err  error
	}{
		{"duplicate id", bk.Hold(1, "u@g", 1, 400, 410, 0, 30)},
		{"empty mask", bk.Hold(10, "u@g", 0, 400, 410, 0, 30)},
		{"node out of range", bk.Hold(11, "u@g", 1 << 4, 400, 410, 0, 30)},
		{"backwards window", bk.Hold(12, "u@g", 1, 410, 400, 0, 30)},
		{"past start", bk.Hold(13, "u@g", 1, 5, 10, 20, 30)},
		{"no ttl", bk.Hold(14, "u@g", 1, 400, 410, 0, 0)},
	} {
		if bad.err == nil {
			t.Errorf("%s admitted", bad.name)
		}
	}
}

func TestTwoPhaseLifecycle(t *testing.T) {
	bk := NewBook(2)
	if err := bk.Hold(1, "u@g", 0b01, 50, 60, 0, 10); err != nil {
		t.Fatal(err)
	}
	if err := bk.Confirm(1, 5); err != nil {
		t.Fatalf("confirm: %v", err)
	}
	if err := bk.Confirm(1, 6); err == nil {
		t.Fatal("double confirm succeeded")
	}
	if err := bk.Release(1, 7); err != nil {
		t.Fatalf("release of confirmed: %v", err)
	}
	if b, _ := bk.Get(1); b.State != Released || b.Active(8) {
		t.Fatalf("booking = %+v, want released and inactive", b)
	}
	// A released window admits a replacement.
	if err := bk.Hold(2, "v@g", 0b01, 50, 60, 8, 10); err != nil {
		t.Fatalf("rebook after release: %v", err)
	}
}

func TestHoldExpiry(t *testing.T) {
	bk := NewBook(2)
	if err := bk.Hold(1, "u@g", 0b01, 50, 60, 0, 10); err != nil {
		t.Fatal(err)
	}
	// Past the TTL the hold stops blocking even before a sweep runs.
	if err := bk.Hold(2, "v@g", 0b01, 50, 60, 10, 10); err != nil {
		t.Fatalf("hold against expired hold: %v", err)
	}
	if err := bk.Confirm(1, 10); err == nil {
		t.Fatal("confirm after expiry succeeded")
	}
	due := bk.ExpireDue(10)
	if len(due) != 0 {
		t.Fatalf("ExpireDue returned %d bookings after the failed confirm already expired it", len(due))
	}
	if b, _ := bk.Get(1); b.State != Expired {
		t.Fatalf("state = %s, want expired", b.State)
	}
}

func TestExpireDueOrder(t *testing.T) {
	bk := NewBook(4)
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(bk.Hold(3, "u@g", 0b0001, 100, 110, 0, 20))
	must(bk.Hold(1, "u@g", 0b0010, 100, 110, 0, 10))
	must(bk.Hold(2, "u@g", 0b0100, 100, 110, 0, 10))
	due := bk.ExpireDue(25)
	var ids []uint64
	for _, b := range due {
		ids = append(ids, b.ID)
	}
	if !reflect.DeepEqual(ids, []uint64{1, 2, 3}) {
		t.Fatalf("expiry order = %v, want [1 2 3] (by expiry then id)", ids)
	}
}

func TestWindowsAndHorizon(t *testing.T) {
	bk := NewBook(3)
	if bk.Windows(0) != nil {
		t.Fatal("empty book returned non-nil windows")
	}
	if bk.Horizon(7) != 7 {
		t.Fatalf("empty horizon = %g, want now", bk.Horizon(7))
	}
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(bk.Hold(1, "u@g", 0b011, 100, 120, 0, 1000))
	must(bk.Hold(2, "u@g", 0b010, 20, 30, 0, 1000))
	must(bk.Confirm(1, 0))
	must(bk.Confirm(2, 0))
	got := bk.Windows(0)
	want := [][]schedule.Window{
		{{Start: 100, End: 120}},
		{{Start: 20, End: 30}, {Start: 100, End: 120}},
		nil,
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Windows(0) = %v, want %v", got, want)
	}
	// A window wholly in the past is pruned.
	got = bk.Windows(50)
	if len(got[1]) != 1 || got[1][0].Start != 100 {
		t.Fatalf("Windows(50) node 1 = %v, want only the future window", got[1])
	}
	if h := bk.Horizon(0); h != 120 {
		t.Fatalf("horizon = %g, want 120", h)
	}
}

func TestFindWindow(t *testing.T) {
	bk := NewBook(4)
	avail := []float64{0, 5, 0, 0}
	// Unconstrained: lowest-indexed free nodes at the requested start.
	mask, start, ok := bk.FindWindow(2, 10, 20, avail, 0)
	if !ok || mask != 0b0011 || start != 10 {
		t.Fatalf("quote = mask %b start %g ok %v, want 0011 at 10", mask, start, ok)
	}
	// A floor above the requested start pushes the quote.
	mask, start, ok = bk.FindWindow(4, 0, 20, avail, 0)
	if !ok || mask != 0b1111 || start != 5 {
		t.Fatalf("quote = mask %b start %g ok %v, want 1111 at 5", mask, start, ok)
	}
	// Book nodes 0 and 2 over [10, 40): a 2-node quote at 10 must use
	// the other pair; a 3-node quote must wait for the window's end.
	if err := bk.Hold(1, "u@g", 0b0101, 10, 40, 0, 1000); err != nil {
		t.Fatal(err)
	}
	mask, start, ok = bk.FindWindow(2, 10, 20, avail, 0)
	if !ok || mask != 0b1010 || start != 10 {
		t.Fatalf("quote = mask %b start %g ok %v, want 1010 at 10", mask, start, ok)
	}
	mask, start, ok = bk.FindWindow(3, 10, 20, avail, 0)
	if !ok || start != 40 || mask != 0b0111 {
		t.Fatalf("quote = mask %b start %g ok %v, want 0111 at 40", mask, start, ok)
	}
	// A short reservation slips in front of the window on the nodes that
	// are free right away.
	mask, start, ok = bk.FindWindow(3, 0, 5, avail, 0)
	if !ok || start != 0 || mask != 0b1101 {
		t.Fatalf("gap quote = mask %b start %g ok %v, want 1101 at 0", mask, start, ok)
	}
	// Down nodes (infinite floor) never qualify.
	down := []float64{0, math.Inf(1), math.Inf(1), math.Inf(1)}
	if _, _, ok := bk.FindWindow(2, 0, 5, down, 0); ok {
		t.Fatal("quote used down nodes")
	}
	if _, _, ok := bk.FindWindow(1, 0, 5, down, 0); !ok {
		t.Fatal("single up node not quoted")
	}
}
