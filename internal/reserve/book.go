// Package reserve implements advance reservation of grid resources: a
// per-resource reservation book holding node×time bookings, with the
// two-phase hold → confirm/release protocol the agent layer shops with.
//
// A reservation is an immovable claim on a node set over a half-open
// time window [Start, End). The book admits a booking only if it does
// not overlap any other active booking on a shared node; the scheduler
// then plans best-effort work around the booked windows (see
// schedule.AdjustStart), so a confirmed reservation's start time is a
// guarantee, not a prediction. Holds carry a TTL on the virtual clock:
// a hold that is neither confirmed nor released by its expiry stops
// blocking the window the instant the clock passes it.
//
// The model follows "Advance Reservation of Resources for Task
// Execution in Grid Environments" (arXiv:1106.5310): admission is a
// pure interval check against prior bookings, and co-allocation (the
// agent layer reserving node sets on several resources for one common
// window) is built from per-resource holds that either all confirm or
// all release.
package reserve

import (
	"fmt"
	"math"
	"math/bits"
	"sort"

	"repro/internal/schedule"
)

// State is a booking's lifecycle state.
type State uint8

const (
	// Held is the first phase of the two-phase commit: the window is
	// blocked, but the booking evaporates at ExpiresAt unless confirmed.
	Held State = iota
	// Confirmed bookings block their window unconditionally until
	// released; the scheduler turns them into guaranteed-start tasks.
	Confirmed
	// Released bookings were cancelled by their holder (from either the
	// held or the confirmed state) and block nothing.
	Released
	// Expired holds ran past their TTL without a confirm and block
	// nothing.
	Expired
)

// String implements fmt.Stringer.
func (s State) String() string {
	switch s {
	case Held:
		return "held"
	case Confirmed:
		return "confirmed"
	case Released:
		return "released"
	case Expired:
		return "expired"
	}
	return fmt.Sprintf("state(%d)", uint8(s))
}

// Booking is one reservation in a resource's book.
type Booking struct {
	ID     uint64 // grid-wide reservation identity, minted by the caller
	Holder string // requester identity (the contact email of Fig. 6)
	Mask   uint64 // reserved node set, bit i = node i
	Start  float64
	End    float64
	State  State
	// ExpiresAt is the hold's TTL deadline on the virtual clock; it is
	// meaningless once the booking leaves the held state.
	ExpiresAt float64
}

// Active reports whether the booking blocks its window at time now.
func (b Booking) Active(now float64) bool {
	switch b.State {
	case Held:
		return now < b.ExpiresAt
	case Confirmed:
		return true
	}
	return false
}

// Book is one resource's reservation book. It is not safe for
// concurrent use; callers serialise access exactly as they do for the
// local scheduler that shares its node pool.
type Book struct {
	numNodes int
	bookings map[uint64]*Booking
	order    []uint64 // insertion order, for deterministic iteration
}

// NewBook returns an empty book over numNodes nodes.
func NewBook(numNodes int) *Book {
	if numNodes < 1 || numNodes > schedule.MaxNodes {
		panic(fmt.Sprintf("reserve: node count %d outside [1, %d]", numNodes, schedule.MaxNodes))
	}
	return &Book{numNodes: numNodes, bookings: map[uint64]*Booking{}}
}

// NumNodes returns the size of the node pool the book covers.
func (bk *Book) NumNodes() int { return bk.numNodes }

// Hold admits a new booking in the held state, or explains why not. The
// admission check is purely against other active bookings: feasibility
// against already-committed best-effort work is the scheduler's job
// (it quotes the window via FindWindow before holding).
func (bk *Book) Hold(id uint64, holder string, mask uint64, start, end, now, ttl float64) error {
	if _, dup := bk.bookings[id]; dup {
		return fmt.Errorf("reserve: booking %d already exists", id)
	}
	if mask == 0 {
		return fmt.Errorf("reserve: booking %d reserves no nodes", id)
	}
	if highest := bits.Len64(mask); highest > bk.numNodes {
		return fmt.Errorf("reserve: booking %d uses node %d of %d", id, highest-1, bk.numNodes)
	}
	if end < start {
		return fmt.Errorf("reserve: booking %d window ends (%g) before it starts (%g)", id, end, start)
	}
	if start < now {
		return fmt.Errorf("reserve: booking %d starts at %g, in the past of %g", id, start, now)
	}
	if ttl <= 0 {
		return fmt.Errorf("reserve: booking %d needs a positive hold TTL", id)
	}
	for _, oid := range bk.order {
		o := bk.bookings[oid]
		if !o.Active(now) || o.Mask&mask == 0 {
			continue
		}
		if (schedule.Window{Start: o.Start, End: o.End}).Overlaps(start, end) {
			return fmt.Errorf("reserve: booking %d [%g, %g) overlaps booking %d [%g, %g) on shared nodes",
				id, start, end, o.ID, o.Start, o.End)
		}
	}
	bk.bookings[id] = &Booking{
		ID: id, Holder: holder, Mask: mask,
		Start: start, End: end, State: Held, ExpiresAt: now + ttl,
	}
	bk.order = append(bk.order, id)
	return nil
}

// Confirm moves a live hold to the confirmed state.
func (bk *Book) Confirm(id uint64, now float64) error {
	b, ok := bk.bookings[id]
	if !ok {
		return fmt.Errorf("reserve: confirm of unknown booking %d", id)
	}
	if b.State != Held {
		return fmt.Errorf("reserve: confirm of booking %d in state %s", id, b.State)
	}
	if now >= b.ExpiresAt {
		b.State = Expired
		return fmt.Errorf("reserve: confirm of booking %d after its hold expired at %g", id, b.ExpiresAt)
	}
	b.State = Confirmed
	return nil
}

// Release cancels a held or confirmed booking; its window stops
// blocking immediately.
func (bk *Book) Release(id uint64, now float64) error {
	b, ok := bk.bookings[id]
	if !ok {
		return fmt.Errorf("reserve: release of unknown booking %d", id)
	}
	switch b.State {
	case Held:
		if now >= b.ExpiresAt {
			b.State = Expired
			return fmt.Errorf("reserve: release of booking %d after its hold expired at %g", id, b.ExpiresAt)
		}
	case Confirmed:
	default:
		return fmt.Errorf("reserve: release of booking %d in state %s", id, b.State)
	}
	b.State = Released
	return nil
}

// ExpireDue marks every held booking whose TTL the clock has passed as
// expired and returns them ordered by (expiry, ID), so the caller can
// emit one deterministic trace event per leak-proofed hold. Active
// checks already treat a past-TTL hold as dead; this sweep only makes
// the transition observable.
func (bk *Book) ExpireDue(now float64) []Booking {
	var due []Booking
	for _, id := range bk.order {
		b := bk.bookings[id]
		if b.State == Held && now >= b.ExpiresAt {
			b.State = Expired
			due = append(due, *b)
		}
	}
	sort.Slice(due, func(i, j int) bool {
		if due[i].ExpiresAt != due[j].ExpiresAt {
			return due[i].ExpiresAt < due[j].ExpiresAt
		}
		return due[i].ID < due[j].ID
	})
	return due
}

// Get returns a copy of the booking, if it exists.
func (bk *Book) Get(id uint64) (Booking, bool) {
	b, ok := bk.bookings[id]
	if !ok {
		return Booking{}, false
	}
	return *b, true
}

// Active returns the number of bookings blocking windows at time now.
func (bk *Book) Active(now float64) int {
	n := 0
	for _, b := range bk.bookings {
		if b.Active(now) {
			n++
		}
	}
	return n
}

// Windows returns, per node, the active booked windows that still end
// after now, sorted by start — the shape schedule.Resource.Booked
// wants. It returns nil when nothing is booked, so downstream planning
// stays on its reservation-free path (and byte-identical to a build
// without this package).
func (bk *Book) Windows(now float64) [][]schedule.Window {
	var out [][]schedule.Window
	for _, id := range bk.order {
		b := bk.bookings[id]
		if !b.Active(now) || b.End <= now {
			continue
		}
		if out == nil {
			out = make([][]schedule.Window, bk.numNodes)
		}
		w := schedule.Window{Start: b.Start, End: b.End}
		for m := b.Mask; m != 0; m &= m - 1 {
			i := bits.TrailingZeros64(m)
			out[i] = append(out[i], w)
		}
	}
	for _, ws := range out {
		sort.Slice(ws, func(i, j int) bool { return ws[i].Start < ws[j].Start })
	}
	return out
}

// Horizon returns the latest end among active bookings still ending
// after now, or now if there are none — the booked part of the
// resource's advertised freetime.
func (bk *Book) Horizon(now float64) float64 {
	h := now
	for _, b := range bk.bookings {
		if b.Active(now) && b.End > h {
			h = b.End
		}
	}
	return h
}

// FindWindow quotes the earliest start ≥ earliest at which k nodes are
// simultaneously free for dur seconds: free of active bookings and past
// their committed-work floor (avail[i], absolute virtual time; pass
// +Inf for nodes that are down). It returns the chosen node mask and
// start, or ok=false if fewer than k nodes have a finite floor. The
// search is deterministic: among eligible nodes at the minimal feasible
// start, the k lowest-indexed win.
func (bk *Book) FindWindow(k int, earliest, dur float64, avail []float64, now float64) (mask uint64, start float64, ok bool) {
	if k < 1 || k > bk.numNodes || len(avail) != bk.numNodes {
		return 0, 0, false
	}
	// Candidate starts: the request's own earliest, each node's floor,
	// and each active window's end. The minimal feasible start for any
	// node set is one of these (between candidates the eligible-node set
	// only shrinks going backwards in time).
	cands := []float64{earliest}
	for _, a := range avail {
		if a > earliest && !math.IsInf(a, 1) {
			cands = append(cands, a)
		}
	}
	for _, id := range bk.order {
		b := bk.bookings[id]
		if b.Active(now) && b.End > earliest {
			cands = append(cands, b.End)
		}
	}
	sort.Float64s(cands)
	for _, t := range cands {
		var m uint64
		n := 0
		for i := 0; i < bk.numNodes && n < k; i++ {
			if avail[i] > t {
				continue
			}
			if bk.nodeBlocked(i, t, t+dur, now) {
				continue
			}
			m |= uint64(1) << uint(i)
			n++
		}
		if n == k {
			return m, t, true
		}
	}
	return 0, 0, false
}

// nodeBlocked reports whether any active booking overlaps [start, end)
// on node i.
func (bk *Book) nodeBlocked(i int, start, end, now float64) bool {
	bit := uint64(1) << uint(i)
	for _, id := range bk.order {
		b := bk.bookings[id]
		if b.Mask&bit == 0 || !b.Active(now) {
			continue
		}
		if (schedule.Window{Start: b.Start, End: b.End}).Overlaps(start, end) {
			return true
		}
	}
	return false
}
