// Package workload generates the case study's request stream (§4.1):
// requests for one of the seven test applications sent at one-second
// intervals to randomly selected agents, each with a deadline drawn
// uniformly from the application's requirement domain (Table 1). The
// random seed is fixed so the workload is identical across experiments.
package workload

import (
	"fmt"

	"repro/internal/pace"
	"repro/internal/sim"
)

// Request is one task execution request to be injected at virtual time At.
type Request struct {
	At          float64 // arrival time in virtual seconds
	AgentName   string  // randomly selected target agent
	AppName     string  // one of the Table 1 applications
	DeadlineRel float64 // required deadline relative to arrival (δ − arrival)
}

// Deadline returns the absolute deadline.
func (r Request) Deadline() float64 { return r.At + r.DeadlineRel }

// Spec parameterises a workload. The §4.1 case study uses Count=600,
// Interval=1, the 12 agents of Fig. 7 and the Table 1 library.
type Spec struct {
	Seed       uint64
	Count      int
	Interval   float64
	AgentNames []string
	Library    *pace.Library
}

// CaseStudySpec returns the §4.1 parameters over the given agents: 600
// requests at one-second intervals ("the request phase of each experiment
// lasts for ten minutes during which 600 task execution requests are sent
// out").
func CaseStudySpec(seed uint64, agentNames []string) Spec {
	return Spec{
		Seed:       seed,
		Count:      600,
		Interval:   1,
		AgentNames: agentNames,
		Library:    pace.CaseStudyLibrary(),
	}
}

// Generate produces the request stream. The same Spec (including Seed)
// always yields the identical stream, which is what makes the three
// experiments comparable ("the seed is set to the same so that the
// workload for each experiment is identical", §4.1).
func Generate(spec Spec) ([]Request, error) {
	if spec.Count < 0 {
		return nil, fmt.Errorf("workload: negative request count %d", spec.Count)
	}
	if spec.Interval <= 0 {
		return nil, fmt.Errorf("workload: non-positive interval %g", spec.Interval)
	}
	if len(spec.AgentNames) == 0 {
		return nil, fmt.Errorf("workload: no agents to target")
	}
	if spec.Library == nil || spec.Library.Len() == 0 {
		return nil, fmt.Errorf("workload: empty application library")
	}
	apps := spec.Library.Models()
	for _, m := range apps {
		if !m.HasDeadlineDomain() {
			return nil, fmt.Errorf("workload: model %q has no deadline domain", m.Name)
		}
	}

	rng := sim.NewRNG(spec.Seed)
	out := make([]Request, spec.Count)
	for i := range out {
		app := apps[rng.Intn(len(apps))]
		out[i] = Request{
			At:          float64(i) * spec.Interval,
			AgentName:   spec.AgentNames[rng.Intn(len(spec.AgentNames))],
			AppName:     app.Name,
			DeadlineRel: rng.UniformIn(app.DeadlineLo, app.DeadlineHi),
		}
	}
	return out, nil
}

// Summary tallies a workload by application and by agent, for reports and
// sanity tests.
type Summary struct {
	ByApp   map[string]int
	ByAgent map[string]int
	Span    float64 // time of the last request
}

// Summarise computes a Summary.
func Summarise(reqs []Request) Summary {
	s := Summary{ByApp: map[string]int{}, ByAgent: map[string]int{}}
	for _, r := range reqs {
		s.ByApp[r.AppName]++
		s.ByAgent[r.AgentName]++
		if r.At > s.Span {
			s.Span = r.At
		}
	}
	return s
}
