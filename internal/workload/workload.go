// Package workload generates the case study's request stream (§4.1):
// requests for one of the seven test applications sent at one-second
// intervals to randomly selected agents, each with a deadline drawn
// uniformly from the application's requirement domain (Table 1). The
// random seed is fixed so the workload is identical across experiments.
package workload

import (
	"fmt"

	"repro/internal/pace"
	"repro/internal/sim"
)

// Request is one task execution request to be injected at virtual time At.
type Request struct {
	At          float64 // arrival time in virtual seconds
	AgentName   string  // randomly selected target agent
	AppName     string  // one of the Table 1 applications
	DeadlineRel float64 // required deadline relative to arrival (δ − arrival)
}

// Deadline returns the absolute deadline.
func (r Request) Deadline() float64 { return r.At + r.DeadlineRel }

// Spec parameterises a workload. The §4.1 case study uses Count=600,
// Interval=1, the 12 agents of Fig. 7 and the Table 1 library.
type Spec struct {
	Seed       uint64
	Count      int
	Interval   float64 // fixed-interval spacing; used only when Arrivals is nil
	AgentNames []string
	Library    *pace.Library

	// Arrivals selects the arrival process. nil keeps the paper's
	// FixedInterval{Interval} behaviour (and its exact byte-identical
	// stream). Arrival randomness comes from a stream split off the
	// workload seed, disjoint from the app/agent/deadline draws, so two
	// specs differing only in Arrivals ask for the same work at
	// different times.
	Arrivals ArrivalProcess

	// AppWeights biases the application mix. nil draws uniformly over
	// the library (the paper's behaviour, byte-identical); otherwise
	// each listed application is drawn proportionally to its weight and
	// unlisted applications are never drawn.
	AppWeights map[string]float64

	// DeadlineScale multiplies every drawn relative deadline: values
	// below 1 tighten the Table 1 requirement domains, above 1 relax
	// them. 0 means 1 (unscaled).
	DeadlineScale float64
}

// CaseStudySpec returns the §4.1 parameters over the given agents: 600
// requests at one-second intervals ("the request phase of each experiment
// lasts for ten minutes during which 600 task execution requests are sent
// out").
func CaseStudySpec(seed uint64, agentNames []string) Spec {
	return Spec{
		Seed:       seed,
		Count:      600,
		Interval:   1,
		AgentNames: agentNames,
		Library:    pace.CaseStudyLibrary(),
	}
}

// Generate produces the request stream. The same Spec (including Seed)
// always yields the identical stream, which is what makes the three
// experiments comparable ("the seed is set to the same so that the
// workload for each experiment is identical", §4.1).
func Generate(spec Spec) ([]Request, error) {
	if spec.Count < 0 {
		return nil, fmt.Errorf("workload: negative request count %d", spec.Count)
	}
	arrivals := spec.Arrivals
	if arrivals == nil {
		arrivals = FixedInterval{Interval: spec.Interval}
	}
	if err := arrivals.Validate(); err != nil {
		return nil, err
	}
	if len(spec.AgentNames) == 0 {
		return nil, fmt.Errorf("workload: no agents to target")
	}
	if spec.Library == nil || spec.Library.Len() == 0 {
		return nil, fmt.Errorf("workload: empty application library")
	}
	if spec.DeadlineScale < 0 {
		return nil, fmt.Errorf("workload: negative deadline scale %g", spec.DeadlineScale)
	}
	scale := spec.DeadlineScale
	if scale == 0 {
		scale = 1
	}
	apps := spec.Library.Models()
	for _, m := range apps {
		if !m.HasDeadlineDomain() {
			return nil, fmt.Errorf("workload: model %q has no deadline domain", m.Name)
		}
	}
	weights, totalWeight, err := appWeights(apps, spec.AppWeights)
	if err != nil {
		return nil, err
	}

	// The body stream (app, agent, deadline per request) is exactly the
	// seed's NewRNG(Seed) sequence; arrivals draw from a stream split
	// off a sibling generator so that changing the arrival process — or
	// it consuming a different amount of randomness — never changes what
	// each request asks for.
	rng := sim.NewRNG(spec.Seed)
	times := arrivals.Times(sim.NewRNG(spec.Seed).Split(), spec.Count)
	out := make([]Request, len(times))
	for i := range out {
		var app *pace.AppModel
		if weights == nil {
			app = apps[rng.Intn(len(apps))]
		} else {
			app = pickWeighted(apps, weights, totalWeight, rng)
		}
		out[i] = Request{
			At:          times[i],
			AgentName:   spec.AgentNames[rng.Intn(len(spec.AgentNames))],
			AppName:     app.Name,
			DeadlineRel: rng.UniformIn(app.DeadlineLo, app.DeadlineHi) * scale,
		}
	}
	return out, nil
}

// appWeights resolves Spec.AppWeights against the library's model order.
// A nil map returns a nil slice: the caller then uses the unbiased (and
// byte-identical) uniform draw.
func appWeights(apps []*pace.AppModel, byName map[string]float64) ([]float64, float64, error) {
	if byName == nil {
		return nil, 0, nil
	}
	known := make(map[string]bool, len(apps))
	for _, m := range apps {
		known[m.Name] = true
	}
	var total float64
	for name, w := range byName {
		if !known[name] {
			return nil, 0, fmt.Errorf("workload: app weight for unknown application %q", name)
		}
		if w < 0 {
			return nil, 0, fmt.Errorf("workload: negative weight %g for application %q", w, name)
		}
		total += w
	}
	if total <= 0 {
		return nil, 0, fmt.Errorf("workload: app weights sum to %g, need a positive total", total)
	}
	weights := make([]float64, len(apps))
	for i, m := range apps {
		weights[i] = byName[m.Name]
	}
	return weights, total, nil
}

// pickWeighted draws one application proportionally to its weight.
func pickWeighted(apps []*pace.AppModel, weights []float64, total float64, rng *sim.RNG) *pace.AppModel {
	u := rng.Float64() * total
	for i, w := range weights {
		u -= w
		if u < 0 {
			return apps[i]
		}
	}
	// Rounding can leave u at a hair above zero after the last positive
	// weight; fall back to the last weighted application.
	for i := len(weights) - 1; i >= 0; i-- {
		if weights[i] > 0 {
			return apps[i]
		}
	}
	return apps[len(apps)-1]
}

// Summary tallies a workload by application and by agent, for reports and
// sanity tests.
type Summary struct {
	ByApp   map[string]int
	ByAgent map[string]int
	Span    float64 // time of the last request
}

// Summarise computes a Summary.
func Summarise(reqs []Request) Summary {
	s := Summary{ByApp: map[string]int{}, ByAgent: map[string]int{}}
	for _, r := range reqs {
		s.ByApp[r.AppName]++
		s.ByAgent[r.AgentName]++
		if r.At > s.Span {
			s.Span = r.At
		}
	}
	return s
}
