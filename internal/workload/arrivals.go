package workload

import (
	"fmt"
	"math"

	"repro/internal/sim"
)

// ArrivalProcess describes how request arrival times are produced. The
// §4.1 case study sends requests at fixed one-second intervals, but a
// grid that "handles as many scenarios as you can imagine" needs open
// workloads too: Poisson streams, bursty on/off traffic, flash-crowd
// ramps and recorded traces. Each process draws only from the RNG it is
// handed — Generate gives arrivals their own stream, derived from the
// workload seed but disjoint from the app/agent/deadline stream, so
// switching processes never perturbs what each request asks for.
type ArrivalProcess interface {
	// Times produces up to max arrival times in non-decreasing order,
	// starting from virtual time zero. Returning fewer than max means
	// the process is exhausted (e.g. a trace ran out); Generate then
	// emits that many requests.
	Times(rng *sim.RNG, max int) []float64
	// Validate reports a configuration error before any generation.
	Validate() error
	// String names the process and its parameters for reports.
	String() string
}

// FixedInterval is the paper's arrival process: request i arrives at
// exactly i×Interval seconds. It consumes no randomness.
type FixedInterval struct {
	Interval float64
}

// Times implements ArrivalProcess.
func (f FixedInterval) Times(_ *sim.RNG, max int) []float64 {
	out := make([]float64, max)
	for i := range out {
		out[i] = float64(i) * f.Interval
	}
	return out
}

// Validate implements ArrivalProcess.
func (f FixedInterval) Validate() error {
	if f.Interval <= 0 {
		return fmt.Errorf("workload: non-positive interval %g", f.Interval)
	}
	return nil
}

func (f FixedInterval) String() string {
	return fmt.Sprintf("fixed(interval=%gs)", f.Interval)
}

// Poisson is a homogeneous Poisson process: independent exponential
// inter-arrival times with mean 1/Rate seconds.
type Poisson struct {
	Rate float64 // arrivals per virtual second
}

// Times implements ArrivalProcess.
func (p Poisson) Times(rng *sim.RNG, max int) []float64 {
	out := make([]float64, max)
	t := 0.0
	for i := range out {
		t += rng.ExpFloat64() / p.Rate
		out[i] = t
	}
	return out
}

// Validate implements ArrivalProcess.
func (p Poisson) Validate() error {
	if p.Rate <= 0 {
		return fmt.Errorf("workload: poisson rate %g must be positive", p.Rate)
	}
	return nil
}

func (p Poisson) String() string {
	return fmt.Sprintf("poisson(rate=%g/s)", p.Rate)
}

// Bursty is a two-state Markov-modulated Poisson process: the stream
// alternates between an "on" phase emitting at OnRate and an "off" phase
// emitting at OffRate (0 for silent gaps), with phase durations drawn
// exponentially with means OnMean and OffMean. The process starts in the
// on phase. Because phase changes are memoryless, an arrival candidate
// that lands past the current phase boundary is discarded and redrawn
// under the next phase's rate — the standard exponential-restart
// construction.
type Bursty struct {
	OnRate  float64 // arrivals per second while on
	OffRate float64 // arrivals per second while off (may be 0)
	OnMean  float64 // mean on-phase duration, seconds
	OffMean float64 // mean off-phase duration, seconds
}

// Times implements ArrivalProcess.
func (b Bursty) Times(rng *sim.RNG, max int) []float64 {
	out := make([]float64, 0, max)
	t := 0.0
	on := true
	phaseEnd := rng.ExpFloat64() * b.OnMean
	for len(out) < max {
		rate := b.OnRate
		if !on {
			rate = b.OffRate
		}
		next := math.Inf(1)
		if rate > 0 {
			next = t + rng.ExpFloat64()/rate
		}
		if next > phaseEnd {
			t = phaseEnd
			on = !on
			mean := b.OnMean
			if !on {
				mean = b.OffMean
			}
			phaseEnd = t + rng.ExpFloat64()*mean
			continue
		}
		t = next
		out = append(out, t)
	}
	return out
}

// Validate implements ArrivalProcess.
func (b Bursty) Validate() error {
	if b.OnRate <= 0 {
		return fmt.Errorf("workload: bursty on-rate %g must be positive", b.OnRate)
	}
	if b.OffRate < 0 {
		return fmt.Errorf("workload: bursty off-rate %g must be non-negative", b.OffRate)
	}
	if b.OnMean <= 0 || b.OffMean <= 0 {
		return fmt.Errorf("workload: bursty phase means (%g, %g) must be positive", b.OnMean, b.OffMean)
	}
	return nil
}

func (b Bursty) String() string {
	return fmt.Sprintf("bursty(on=%g/s×%gs, off=%g/s×%gs)", b.OnRate, b.OnMean, b.OffRate, b.OffMean)
}

// FlashCrowd is a non-homogeneous Poisson process modelling a sudden
// audience spike: the rate sits at BaseRate, ramps linearly to PeakRate
// over [RampStart, RampStart+RampDuration], holds the peak for Hold
// seconds, then ramps back down over another RampDuration. Sampled by
// thinning: candidates are drawn at the peak rate and accepted with
// probability rate(t)/peak, which is exact for any bounded rate
// function.
type FlashCrowd struct {
	BaseRate     float64 // steady-state arrivals per second
	PeakRate     float64 // arrivals per second at the top of the crowd
	RampStart    float64 // virtual time the ramp begins
	RampDuration float64 // seconds to climb from base to peak (and back)
	Hold         float64 // seconds the peak is held
}

// RateAt returns the instantaneous arrival rate at virtual time t.
func (f FlashCrowd) RateAt(t float64) float64 {
	up0, up1 := f.RampStart, f.RampStart+f.RampDuration
	down0 := up1 + f.Hold
	down1 := down0 + f.RampDuration
	switch {
	case t < up0 || t >= down1:
		return f.BaseRate
	case t < up1:
		return f.BaseRate + (f.PeakRate-f.BaseRate)*(t-up0)/f.RampDuration
	case t < down0:
		return f.PeakRate
	default:
		return f.PeakRate - (f.PeakRate-f.BaseRate)*(t-down0)/f.RampDuration
	}
}

// Times implements ArrivalProcess.
func (f FlashCrowd) Times(rng *sim.RNG, max int) []float64 {
	peak := math.Max(f.BaseRate, f.PeakRate)
	out := make([]float64, 0, max)
	t := 0.0
	for len(out) < max {
		t += rng.ExpFloat64() / peak
		if rng.Float64()*peak <= f.RateAt(t) {
			out = append(out, t)
		}
	}
	return out
}

// Validate implements ArrivalProcess.
func (f FlashCrowd) Validate() error {
	if f.BaseRate <= 0 {
		return fmt.Errorf("workload: flash-crowd base rate %g must be positive", f.BaseRate)
	}
	if f.PeakRate < f.BaseRate {
		return fmt.Errorf("workload: flash-crowd peak rate %g below base rate %g", f.PeakRate, f.BaseRate)
	}
	if f.RampStart < 0 || f.RampDuration <= 0 || f.Hold < 0 {
		return fmt.Errorf("workload: flash-crowd timing (start=%g, ramp=%g, hold=%g) invalid", f.RampStart, f.RampDuration, f.Hold)
	}
	return nil
}

func (f FlashCrowd) String() string {
	return fmt.Sprintf("flashcrowd(base=%g/s, peak=%g/s at t=%g+%g hold %g)",
		f.BaseRate, f.PeakRate, f.RampStart, f.RampDuration, f.Hold)
}

// TraceReplay replays recorded arrival times verbatim — the bridge from
// real request logs to the simulator. The trace may end before max
// requests; Generate then emits a shorter stream.
type TraceReplay struct {
	At []float64 // non-decreasing arrival times, seconds
}

// Times implements ArrivalProcess.
func (tr TraceReplay) Times(_ *sim.RNG, max int) []float64 {
	n := len(tr.At)
	if max < n {
		n = max
	}
	out := make([]float64, n)
	copy(out, tr.At[:n])
	return out
}

// Validate implements ArrivalProcess.
func (tr TraceReplay) Validate() error {
	if len(tr.At) == 0 {
		return fmt.Errorf("workload: empty arrival trace")
	}
	prev := math.Inf(-1)
	for i, t := range tr.At {
		if t < 0 {
			return fmt.Errorf("workload: trace arrival %d at negative time %g", i, t)
		}
		if t < prev {
			return fmt.Errorf("workload: trace arrival %d at %g before predecessor %g", i, t, prev)
		}
		prev = t
	}
	return nil
}

func (tr TraceReplay) String() string {
	return fmt.Sprintf("trace(%d arrivals over %gs)", len(tr.At), tr.At[len(tr.At)-1])
}
