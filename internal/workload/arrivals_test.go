package workload

import (
	"math"
	"testing"

	"repro/internal/sim"
)

func TestFixedIntervalMatchesLegacyStream(t *testing.T) {
	// The refactor must be invisible to the §4.1 case study: a spec with
	// no Arrivals and one with an explicit FixedInterval produce the
	// identical stream, and the stream keeps the i×Interval timeline.
	implicit := CaseStudySpec(2003, agents())
	explicit := implicit
	explicit.Arrivals = FixedInterval{Interval: implicit.Interval}

	a, err := Generate(implicit)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(explicit)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) || len(a) != 600 {
		t.Fatalf("lengths %d vs %d, want 600", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("request %d differs: %+v vs %+v", i, a[i], b[i])
		}
		if a[i].At != float64(i) {
			t.Fatalf("request %d at %v, want %d", i, a[i].At, i)
		}
	}
}

func TestArrivalProcessDoesNotPerturbBodyStream(t *testing.T) {
	// Two specs differing only in the arrival process must ask for the
	// same work: same apps, same target agents, same relative deadlines.
	base := CaseStudySpec(7, agents())
	base.Count = 200
	poisson := base
	poisson.Arrivals = Poisson{Rate: 3}

	a, err := Generate(base)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(poisson)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i].AppName != b[i].AppName || a[i].AgentName != b[i].AgentName || a[i].DeadlineRel != b[i].DeadlineRel {
			t.Fatalf("request %d body differs across arrival processes: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestPoissonInterArrivals(t *testing.T) {
	rng := sim.NewRNG(11)
	const rate, n = 4.0, 50000
	times := Poisson{Rate: rate}.Times(rng, n)
	if len(times) != n {
		t.Fatalf("%d times, want %d", len(times), n)
	}
	prev := 0.0
	var sum float64
	for i, at := range times {
		if at <= prev {
			t.Fatalf("arrival %d at %v not after %v", i, at, prev)
		}
		sum += at - prev
		prev = at
	}
	mean := sum / n
	if math.Abs(mean-1/rate) > 0.01 {
		t.Fatalf("mean inter-arrival %v, want ~%v", mean, 1/rate)
	}
}

func TestBurstyAlternatesPhases(t *testing.T) {
	rng := sim.NewRNG(3)
	b := Bursty{OnRate: 10, OffRate: 0, OnMean: 5, OffMean: 5}
	times := b.Times(rng, 5000)
	if len(times) != 5000 {
		t.Fatalf("%d times, want 5000", len(times))
	}
	// With a silent off phase at 50% duty cycle the long-run rate is
	// ~OnRate/2; the span should reflect that, and the stream must be
	// non-decreasing with visible silent gaps (inter-arrival ≫ 1/OnRate).
	prev := 0.0
	gaps := 0
	for i, at := range times {
		if at < prev {
			t.Fatalf("arrival %d at %v before %v", i, at, prev)
		}
		if at-prev > 1 { // 10× the mean on-phase spacing
			gaps++
		}
		prev = at
	}
	if gaps < 50 {
		t.Fatalf("only %d silent gaps in a 50%% duty-cycle burst stream", gaps)
	}
	span := times[len(times)-1]
	effRate := float64(len(times)) / span
	if effRate < 3.5 || effRate > 6.5 {
		t.Fatalf("effective rate %v, want ~5 (10/s at 50%% duty)", effRate)
	}
}

func TestFlashCrowdConcentratesArrivals(t *testing.T) {
	f := FlashCrowd{BaseRate: 1, PeakRate: 20, RampStart: 100, RampDuration: 20, Hold: 60}
	if got := f.RateAt(0); got != 1 {
		t.Fatalf("rate before ramp = %v, want 1", got)
	}
	if got := f.RateAt(130); got != 20 {
		t.Fatalf("rate at peak = %v, want 20", got)
	}
	if got := f.RateAt(110); math.Abs(got-10.5) > 1e-9 {
		t.Fatalf("rate mid-ramp = %v, want 10.5", got)
	}
	if got := f.RateAt(500); got != 1 {
		t.Fatalf("rate after crowd = %v, want 1", got)
	}

	rng := sim.NewRNG(21)
	times := f.Times(rng, 3000)
	inCrowd, before := 0, 0
	for _, at := range times {
		switch {
		case at >= 100 && at < 200:
			inCrowd++
		case at < 100:
			before++
		}
	}
	// 100 s of pre-crowd base traffic ≈ 100 arrivals; the 100 s crowd
	// window carries ~10–20× that.
	if before < 60 || before > 150 {
		t.Fatalf("%d arrivals before the crowd, want ~100", before)
	}
	if inCrowd < 10*before {
		t.Fatalf("crowd window holds %d arrivals vs %d before — spike not visible", inCrowd, before)
	}
}

func TestTraceReplay(t *testing.T) {
	tr := TraceReplay{At: []float64{0, 0.5, 0.5, 2, 7}}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	got := tr.Times(nil, 10)
	if len(got) != 5 {
		t.Fatalf("trace replay produced %d times, want all 5", len(got))
	}
	if got2 := tr.Times(nil, 3); len(got2) != 3 || got2[2] != 0.5 {
		t.Fatalf("truncated replay = %v, want first 3", got2)
	}

	spec := CaseStudySpec(1, agents())
	spec.Count = 10
	spec.Arrivals = tr
	reqs, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(reqs) != 5 {
		t.Fatalf("generated %d requests from a 5-arrival trace, want 5", len(reqs))
	}
	if reqs[4].At != 7 {
		t.Fatalf("last request at %v, want 7", reqs[4].At)
	}

	bad := TraceReplay{At: []float64{1, 0.5}}
	if err := bad.Validate(); err == nil {
		t.Fatal("descending trace validated")
	}
}

func TestArrivalValidation(t *testing.T) {
	cases := []ArrivalProcess{
		FixedInterval{Interval: 0},
		Poisson{Rate: 0},
		Bursty{OnRate: 0, OnMean: 1, OffMean: 1},
		Bursty{OnRate: 1, OnMean: 0, OffMean: 1},
		FlashCrowd{BaseRate: 2, PeakRate: 1, RampDuration: 1},
		FlashCrowd{BaseRate: 1, PeakRate: 2, RampDuration: 0},
		TraceReplay{},
	}
	for i, p := range cases {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d (%v): invalid process validated", i, p)
		}
	}
}

func TestAppWeightsBiasMix(t *testing.T) {
	spec := CaseStudySpec(5, agents())
	spec.Count = 4000
	names := spec.Library.SortedNames()
	heavy, light := names[0], names[1]
	spec.AppWeights = map[string]float64{heavy: 3, light: 1}
	reqs, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	s := Summarise(reqs)
	if len(s.ByApp) != 2 {
		t.Fatalf("weighted mix drew %d apps, want exactly the 2 weighted ones: %v", len(s.ByApp), s.ByApp)
	}
	ratio := float64(s.ByApp[heavy]) / float64(s.ByApp[light])
	if ratio < 2.6 || ratio > 3.5 {
		t.Fatalf("heavy/light ratio %v, want ~3", ratio)
	}

	spec.AppWeights = map[string]float64{"no-such-app": 1}
	if _, err := Generate(spec); err == nil {
		t.Fatal("unknown app weight accepted")
	}
	spec.AppWeights = map[string]float64{heavy: 0}
	if _, err := Generate(spec); err == nil {
		t.Fatal("zero-total weights accepted")
	}
}

func TestDeadlineScale(t *testing.T) {
	base := CaseStudySpec(9, agents())
	base.Count = 50
	tight := base
	tight.DeadlineScale = 0.5
	a, err := Generate(base)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(tight)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if math.Abs(b[i].DeadlineRel-0.5*a[i].DeadlineRel) > 1e-12 {
			t.Fatalf("request %d: scaled deadline %v, want half of %v", i, b[i].DeadlineRel, a[i].DeadlineRel)
		}
	}
	bad := base
	bad.DeadlineScale = -1
	if _, err := Generate(bad); err == nil {
		t.Fatal("negative deadline scale accepted")
	}
}
