package workload

import (
	"testing"

	"repro/internal/pace"
)

func agents() []string {
	return []string{"S1", "S2", "S3", "S4"}
}

func TestGenerateCaseStudyShape(t *testing.T) {
	spec := CaseStudySpec(2003, agents())
	reqs, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(reqs) != 600 {
		t.Fatalf("%d requests, want 600 (§4.1)", len(reqs))
	}
	for i, r := range reqs {
		if r.At != float64(i) {
			t.Fatalf("request %d at %v, want one-second intervals", i, r.At)
		}
	}
	s := Summarise(reqs)
	if s.Span != 599 {
		t.Fatalf("request phase spans %v, want 599 (ten minutes)", s.Span)
	}
	if len(s.ByApp) != 7 {
		t.Fatalf("workload uses %d apps, want all 7", len(s.ByApp))
	}
	if len(s.ByAgent) != 4 {
		t.Fatalf("workload targets %d agents, want all 4", len(s.ByAgent))
	}
}

func TestGenerateDeterministicSeed(t *testing.T) {
	a, err := Generate(CaseStudySpec(42, agents()))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(CaseStudySpec(42, agents()))
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("request %d differs under identical seed: %+v vs %+v", i, a[i], b[i])
		}
	}
	c, err := Generate(CaseStudySpec(43, agents()))
	if err != nil {
		t.Fatal(err)
	}
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("different seeds produced identical workloads")
	}
}

func TestGenerateDeadlinesWithinDomains(t *testing.T) {
	lib := pace.CaseStudyLibrary()
	reqs, err := Generate(CaseStudySpec(7, agents()))
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range reqs {
		m, ok := lib.Lookup(r.AppName)
		if !ok {
			t.Fatalf("unknown app %q in workload", r.AppName)
		}
		if r.DeadlineRel < m.DeadlineLo || r.DeadlineRel > m.DeadlineHi {
			t.Fatalf("%s deadline %v outside [%v, %v]", r.AppName, r.DeadlineRel, m.DeadlineLo, m.DeadlineHi)
		}
		if r.Deadline() != r.At+r.DeadlineRel {
			t.Fatal("Deadline() arithmetic wrong")
		}
	}
}

func TestGenerateUniformAgentSpread(t *testing.T) {
	reqs, err := Generate(CaseStudySpec(11, agents()))
	if err != nil {
		t.Fatal(err)
	}
	s := Summarise(reqs)
	for name, n := range s.ByAgent {
		if n < 100 || n > 200 { // 150 expected of 600 across 4 agents
			t.Fatalf("agent %s received %d of 600 requests; selection not uniform", name, n)
		}
	}
}

func TestGenerateValidation(t *testing.T) {
	lib := pace.CaseStudyLibrary()
	cases := []Spec{
		{Seed: 1, Count: -1, Interval: 1, AgentNames: agents(), Library: lib},
		{Seed: 1, Count: 10, Interval: 0, AgentNames: agents(), Library: lib},
		{Seed: 1, Count: 10, Interval: 1, AgentNames: nil, Library: lib},
		{Seed: 1, Count: 10, Interval: 1, AgentNames: agents(), Library: nil},
		{Seed: 1, Count: 10, Interval: 1, AgentNames: agents(), Library: pace.NewLibrary()},
	}
	for i, spec := range cases {
		if _, err := Generate(spec); err == nil {
			t.Errorf("bad spec %d accepted", i)
		}
	}
}

func TestGenerateRejectsModelsWithoutDeadlines(t *testing.T) {
	lib := pace.NewLibrary()
	if err := lib.AddSource("application bare { param n; time = n; }"); err != nil {
		t.Fatal(err)
	}
	_, err := Generate(Spec{Seed: 1, Count: 1, Interval: 1, AgentNames: agents(), Library: lib})
	if err == nil {
		t.Fatal("model without deadline domain accepted")
	}
}

func TestGenerateZeroCount(t *testing.T) {
	reqs, err := Generate(Spec{Seed: 1, Count: 0, Interval: 1, AgentNames: agents(), Library: pace.CaseStudyLibrary()})
	if err != nil {
		t.Fatal(err)
	}
	if len(reqs) != 0 {
		t.Fatalf("%d requests from zero count", len(reqs))
	}
}
