package xmlmsg

import (
	"encoding/xml"
	"fmt"
	"strconv"
)

// Reservation message kinds: Reserve carries one phase of the advance
// reservation protocol (quote, hold, confirm, release) through the
// hierarchy; ReserveAck answers it.
const (
	KindReserve    Kind = "reserve"
	KindReserveAck Kind = "reserveack"
)

// Reservation wire actions, mirroring agent.ReserveAction.
const (
	ReserveActionQuote   = "quote"
	ReserveActionHold    = "hold"
	ReserveActionConfirm = "confirm"
	ReserveActionRelease = "release"
)

// FormatSeconds renders a virtual time or duration as a decimal-seconds
// string that round-trips the float64 exactly. Reservation windows are
// contractual — a booking confirmed over the wire must match the held
// window bit for bit — so they cannot ride the one-second-resolution
// ANSIC timestamps the Fig. 5/6 fields use.
func FormatSeconds(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// ParseSeconds inverts FormatSeconds.
func ParseSeconds(s string) (float64, error) {
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("xmlmsg: bad seconds %q: %w", s, err)
	}
	return v, nil
}

// FormatMask renders a node mask in hex.
func FormatMask(m uint64) string { return strconv.FormatUint(m, 16) }

// ParseMask inverts FormatMask; the empty string is the zero mask.
func ParseMask(s string) (uint64, error) {
	if s == "" {
		return 0, nil
	}
	m, err := strconv.ParseUint(s, 16, 64)
	if err != nil {
		return 0, fmt.Errorf("xmlmsg: bad node mask %q: %w", s, err)
	}
	return m, nil
}

// Reserve is one phase of the advance-reservation protocol on the wire.
// Which fields are meaningful depends on Action: quote uses Nodes,
// Earliest and Duration (and Resource for a targeted re-quote — empty
// floods the hierarchy); hold uses Resource, Mask, Start, End and TTL;
// confirm uses Resource, ReqID and Model; release uses Resource. ResvID
// names the reservation in every phase after quote, and Visited carries
// the same loop protection as a Fig. 6 request.
type Reserve struct {
	XMLName  xml.Name `xml:"agentgrid"`
	Type     string   `xml:"type,attr"`   // always "reserve"
	Action   string   `xml:"action,attr"` // quote | hold | confirm | release
	ResvID   uint64   `xml:"resvid,attr,omitempty"`
	ReqID    uint64   `xml:"reqid,attr,omitempty"`
	Resource string   `xml:"resource,omitempty"`
	Holder   string   `xml:"holder,omitempty"`
	Nodes    int      `xml:"nodes,omitempty"`
	Earliest string   `xml:"earliest,omitempty"` // decimal virtual seconds
	Duration string   `xml:"duration,omitempty"` // decimal seconds
	Mask     string   `xml:"mask,omitempty"`     // hex node mask
	Start    string   `xml:"start,omitempty"`    // decimal virtual seconds
	End      string   `xml:"end,omitempty"`      // decimal virtual seconds
	TTL      string   `xml:"ttl,omitempty"`      // decimal seconds
	Model    string   `xml:"model,omitempty"`    // PACE model name (confirm)
	Visited  []string `xml:"visited>agent,omitempty"`
}

// QuoteEntry is one resource's offer inside a ReserveAck.
type QuoteEntry struct {
	Resource string `xml:"resource"`
	Mask     string `xml:"mask"`  // hex node mask
	Start    string `xml:"start"` // decimal virtual seconds
	End      string `xml:"end"`   // decimal virtual seconds
}

// ReserveAck answers a Reserve: the aggregated quotes for a quote
// action, the scheduler-local task ID for a confirm, nothing beyond
// success for hold and release (failures travel as ErrorReply).
type ReserveAck struct {
	XMLName xml.Name     `xml:"agentgrid"`
	Type    string       `xml:"type,attr"` // always "reserveack"
	TaskID  int          `xml:"taskid,omitempty"`
	Quotes  []QuoteEntry `xml:"quote,omitempty"`
}

// NewReserveAck builds an acknowledgement.
func NewReserveAck(taskID int, quotes []QuoteEntry) ReserveAck {
	return ReserveAck{Type: "reserveack", TaskID: taskID, Quotes: quotes}
}

// decodeReserveKinds handles the reservation kinds for Decode; ok
// reports whether the envelope matched one.
func decodeReserveKinds(env envelope, data []byte) (interface{}, Kind, bool, error) {
	switch Kind(env.Type) {
	case KindReserve:
		var m Reserve
		if err := xml.Unmarshal(data, &m); err != nil {
			return nil, "", true, fmt.Errorf("xmlmsg: decode reserve: %w", err)
		}
		return &m, KindReserve, true, nil
	case KindReserveAck:
		var m ReserveAck
		if err := xml.Unmarshal(data, &m); err != nil {
			return nil, "", true, fmt.Errorf("xmlmsg: decode reserve ack: %w", err)
		}
		return &m, KindReserveAck, true, nil
	}
	return nil, "", false, nil
}
