package xmlmsg

import (
	"bufio"
	"encoding/binary"
	"encoding/xml"
	"fmt"
	"io"
)

// Multiplexed framing. The original stream framing (codec.go) carries one
// anonymous message per frame, which forces strict request/reply lockstep
// on a connection. The mux frame adds a header so many exchanges can share
// one keep-alive connection and replies can return out of order:
//
//	offset  size  field
//	0       1     marker 'M' (a legacy frame starts with a decimal digit)
//	1       1     codec: 'x' XML, 'b' compact binary
//	2       8     exchange ID, big-endian uint64
//	10      4     payload length, big-endian uint32
//	14      n     payload (message encoded with the frame's codec)
//
// The marker byte disambiguates the two framings on the same listener: a
// server peeks one byte and speaks whichever protocol the client opened
// with, so legacy one-shot clients (and the byte-compatible portal XML)
// keep working against upgraded servers.
const (
	// MuxMarker is the first byte of a multiplexed frame.
	MuxMarker = 'M'
	// CodecXML identifies the indented agentgrid XML payload encoding.
	CodecXML = 'x'
	// CodecBinary identifies the compact binary payload encoding.
	CodecBinary = 'b'
	// muxHeaderLen is the fixed mux frame header size.
	muxHeaderLen = 14
)

// ValidCodec reports whether c names a payload encoding this package can
// speak.
func ValidCodec(c byte) bool { return c == CodecXML || c == CodecBinary }

// MuxFrame is one multiplexed message: the exchange ID ties a reply back
// to its request, the codec says how Payload is encoded.
type MuxFrame struct {
	ID      uint64
	Codec   byte
	Payload []byte
}

// WriteMuxFrame writes one multiplexed frame to w in a single Write call,
// so concurrent writers serialised by a mutex never interleave partial
// frames.
func WriteMuxFrame(w io.Writer, f MuxFrame) error {
	if !ValidCodec(f.Codec) {
		return fmt.Errorf("xmlmsg: write mux frame: unknown codec %q", f.Codec)
	}
	if len(f.Payload) > MaxFrame {
		return fmt.Errorf("xmlmsg: mux frame of %d bytes exceeds limit %d", len(f.Payload), MaxFrame)
	}
	buf := make([]byte, muxHeaderLen+len(f.Payload))
	buf[0] = MuxMarker
	buf[1] = f.Codec
	binary.BigEndian.PutUint64(buf[2:10], f.ID)
	binary.BigEndian.PutUint32(buf[10:14], uint32(len(f.Payload)))
	copy(buf[muxHeaderLen:], f.Payload)
	if _, err := w.Write(buf); err != nil {
		return fmt.Errorf("xmlmsg: write mux frame: %w", err)
	}
	return nil
}

// ReadMuxFrame reads one multiplexed frame from r. io.EOF passes through
// untouched when the stream ends cleanly between frames.
func ReadMuxFrame(r *bufio.Reader) (MuxFrame, error) {
	head := make([]byte, muxHeaderLen)
	if _, err := io.ReadFull(r, head); err != nil {
		if err == io.EOF {
			return MuxFrame{}, err
		}
		return MuxFrame{}, fmt.Errorf("xmlmsg: read mux header: %w", err)
	}
	if head[0] != MuxMarker {
		return MuxFrame{}, fmt.Errorf("xmlmsg: not a mux frame (marker %q)", head[0])
	}
	f := MuxFrame{ID: binary.BigEndian.Uint64(head[2:10]), Codec: head[1]}
	if !ValidCodec(f.Codec) {
		return MuxFrame{}, fmt.Errorf("xmlmsg: mux frame with unknown codec %q", f.Codec)
	}
	n := binary.BigEndian.Uint32(head[10:14])
	if n > MaxFrame {
		return MuxFrame{}, fmt.Errorf("xmlmsg: mux frame of %d bytes exceeds limit %d", n, MaxFrame)
	}
	f.Payload = make([]byte, n)
	if _, err := io.ReadFull(r, f.Payload); err != nil {
		return MuxFrame{}, fmt.Errorf("xmlmsg: short mux frame: %w", err)
	}
	return f, nil
}

// IsMuxConn peeks one byte to tell which framing the peer opened with:
// true for the mux marker, false for a legacy digit-prefixed frame.
func IsMuxConn(r *bufio.Reader) (bool, error) {
	b, err := r.Peek(1)
	if err != nil {
		return false, err
	}
	return b[0] == MuxMarker, nil
}

// Encode renders a message with the given codec.
func Encode(codec byte, v interface{}) ([]byte, error) {
	switch codec {
	case CodecXML:
		return Marshal(v)
	case CodecBinary:
		return MarshalBinary(v)
	}
	return nil, fmt.Errorf("xmlmsg: encode with unknown codec %q", codec)
}

// DecodeWith parses a payload encoded with the given codec.
func DecodeWith(codec byte, data []byte) (interface{}, Kind, error) {
	switch codec {
	case CodecXML:
		return Decode(data)
	case CodecBinary:
		return UnmarshalBinary(data)
	}
	return nil, "", fmt.Errorf("xmlmsg: decode with unknown codec %q", codec)
}

// Hello is the per-connection codec negotiation message: the first
// exchange on a multiplexed connection. Codecs lists the encodings the
// client can speak ("xb"); the reply's Codecs is the single codec the
// server chose for the rest of the connection. XML stays the wire default:
// a server that does not allow the binary codec answers "x" and both
// sides fall back without dropping the connection.
type Hello struct {
	XMLName xml.Name `xml:"agentgrid"`
	Type    string   `xml:"type,attr"` // always "hello"
	Codecs  string   `xml:"codecs"`
}

// NewHello builds a negotiation message offering the given codecs.
func NewHello(codecs string) Hello { return Hello{Type: "hello", Codecs: codecs} }

// KindHello identifies a Hello on the wire.
const KindHello Kind = "hello"

// Busy is the typed admission-control reply: the server's ingress queue
// crossed its bound, so this exchange was shed before reaching the
// handler. Unlike an ErrorReply it is a transport-level, retryable
// condition — the peer is alive, just saturated.
type Busy struct {
	XMLName xml.Name `xml:"agentgrid"`
	Type    string   `xml:"type,attr"` // always "busy"
	Depth   int      `xml:"depth"`     // in-flight exchanges at shed time
	Limit   int      `xml:"limit"`     // the admission bound that tripped
}

// NewBusy builds an admission-control shed reply.
func NewBusy(depth, limit int) Busy { return Busy{Type: "busy", Depth: depth, Limit: limit} }

// KindBusy identifies a Busy reply on the wire.
const KindBusy Kind = "busy"

// decodeFrameKinds handles the mux-plumbing kinds in the Decode switch.
func decodeFrameKinds(env envelope, data []byte) (interface{}, Kind, bool, error) {
	switch Kind(env.Type) {
	case KindHello:
		var m Hello
		if err := xml.Unmarshal(data, &m); err != nil {
			return nil, "", true, fmt.Errorf("xmlmsg: decode hello: %w", err)
		}
		return &m, KindHello, true, nil
	case KindBusy:
		var m Busy
		if err := xml.Unmarshal(data, &m); err != nil {
			return nil, "", true, fmt.Errorf("xmlmsg: decode busy: %w", err)
		}
		return &m, KindBusy, true, nil
	}
	return nil, "", false, nil
}
