package xmlmsg

import (
	"encoding/xml"
	"fmt"
)

// Additional agentgrid message kinds used by the networked deployment
// (cmd/gridagent and cmd/gridsched). The Fig. 5/6 formats cover
// advertisement and submission; these cover the query/ack plumbing around
// them.
const (
	KindQuery    Kind = "query"
	KindDispatch Kind = "dispatch"
	KindError    Kind = "error"
)

// Query asks a peer for information: "service" pulls the peer's Fig. 5
// advertisement; "results" fetches task execution results (the
// communication module's first output, §2.2), optionally filtered by the
// submitting email.
type Query struct {
	XMLName xml.Name `xml:"agentgrid"`
	Type    string   `xml:"type,attr"` // always "query"
	What    string   `xml:"what"`
	Email   string   `xml:"email,omitempty"`
}

// NewServiceQuery builds the advertisement pull message.
func NewServiceQuery() Query {
	return Query{Type: "query", What: "service"}
}

// NewResultsQuery builds a results poll; email "" returns everything.
func NewResultsQuery(email string) Query {
	return Query{Type: "query", What: "results", Email: email}
}

// TaskResult is one entry of a ResultSet: a task's outcome on the
// resource that executed it.
type TaskResult struct {
	App      string `xml:"app"`
	TaskID   int    `xml:"id"`
	Resource string `xml:"resource"`
	NProc    int    `xml:"nproc"`
	Start    string `xml:"start"`
	End      string `xml:"end"`
	Deadline string `xml:"deadline"`
	Met      bool   `xml:"met"`
	Done     bool   `xml:"done"` // false while still executing at query time
	Email    string `xml:"email,omitempty"`
}

// EndSeconds decodes the completion timestamp.
func (r TaskResult) EndSeconds() (float64, error) { return ParseVirtual(r.End) }

// ResultSet answers a results query.
type ResultSet struct {
	XMLName xml.Name     `xml:"agentgrid"`
	Type    string       `xml:"type,attr"` // always "results"
	Tasks   []TaskResult `xml:"task"`
}

// NewResultSet wraps task results for the wire.
func NewResultSet(tasks []TaskResult) ResultSet {
	return ResultSet{Type: "results", Tasks: tasks}
}

// KindResults identifies a ResultSet on the wire.
const KindResults Kind = "results"

// DispatchAck acknowledges a request, reporting where the task landed.
// ReqID echoes the grid-wide request identity of the request being
// acknowledged, so the submitter can join the ack (and later results)
// back to its request without relying on the scheduler-local task ID.
type DispatchAck struct {
	XMLName  xml.Name `xml:"agentgrid"`
	Type     string   `xml:"type,attr"` // always "dispatch"
	Resource string   `xml:"resource"`
	TaskID   int      `xml:"taskid"`
	ReqID    uint64   `xml:"reqid,omitempty"`
	Eta      string   `xml:"eta,omitempty"` // expected completion, virtual timestamp
	Hops     int      `xml:"hops"`
	Fallback bool     `xml:"fallback"`
}

// NewDispatchAck builds an acknowledgement.
func NewDispatchAck(resource string, taskID int, reqID uint64, etaSec float64, hops int, fallback bool) DispatchAck {
	return DispatchAck{
		Type:     "dispatch",
		Resource: resource,
		TaskID:   taskID,
		ReqID:    reqID,
		Eta:      FormatVirtual(etaSec),
		Hops:     hops,
		Fallback: fallback,
	}
}

// EtaSeconds decodes the expected completion timestamp.
func (d DispatchAck) EtaSeconds() (float64, error) { return ParseVirtual(d.Eta) }

// ErrorReply reports a failed exchange.
type ErrorReply struct {
	XMLName xml.Name `xml:"agentgrid"`
	Type    string   `xml:"type,attr"` // always "error"
	Message string   `xml:"message"`
}

// NewErrorReply wraps an error for the wire.
func NewErrorReply(err error) ErrorReply {
	return ErrorReply{Type: "error", Message: err.Error()}
}

// Err converts the reply back to an error.
func (e ErrorReply) Err() error { return fmt.Errorf("xmlmsg: remote error: %s", e.Message) }

// Dispatch modes carried in a request's mode attribute: "discover" (or
// empty) runs service discovery at the receiver, "direct" queues on the
// receiver's local scheduler unconditionally — used by the head's
// fallback.
const (
	ModeDiscover = "discover"
	ModeDirect   = "direct"
)

// NewWireRequest builds a networked request: a Fig. 6 request carrying
// the discovery bookkeeping (grid-wide request ID, dispatch mode and
// visited-agent list) the hierarchy needs on the wire.
func NewWireRequest(reqID uint64, appName, env string, deadlineSec float64, email, mode string, visited []string) Request {
	r := NewRequest(appName, "", appName, env, deadlineSec, email)
	r.ReqID = reqID
	r.Mode = mode
	r.Visited = visited
	return r
}

// decodeExtended handles the wire-plumbing kinds; the switch in codec.go
// handles the Fig. 5/6 kinds.
func decodeExtended(env envelope, data []byte) (interface{}, Kind, error) {
	if m, kind, ok, err := decodeFrameKinds(env, data); ok || err != nil {
		return m, kind, err
	}
	if m, kind, ok, err := decodeReserveKinds(env, data); ok || err != nil {
		return m, kind, err
	}
	if m, kind, ok, err := decodeMembershipKinds(env, data); ok || err != nil {
		return m, kind, err
	}
	switch Kind(env.Type) {
	case KindQuery:
		var m Query
		if err := xml.Unmarshal(data, &m); err != nil {
			return nil, "", fmt.Errorf("xmlmsg: decode query: %w", err)
		}
		return &m, KindQuery, nil
	case KindDispatch:
		var m DispatchAck
		if err := xml.Unmarshal(data, &m); err != nil {
			return nil, "", fmt.Errorf("xmlmsg: decode dispatch: %w", err)
		}
		return &m, KindDispatch, nil
	case KindError:
		var m ErrorReply
		if err := xml.Unmarshal(data, &m); err != nil {
			return nil, "", fmt.Errorf("xmlmsg: decode error reply: %w", err)
		}
		return &m, KindError, nil
	case KindResults:
		var m ResultSet
		if err := xml.Unmarshal(data, &m); err != nil {
			return nil, "", fmt.Errorf("xmlmsg: decode result set: %w", err)
		}
		return &m, KindResults, nil
	}
	return nil, "", fmt.Errorf("xmlmsg: unknown agentgrid type %q", env.Type)
}
