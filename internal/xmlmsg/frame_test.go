package xmlmsg

import (
	"bufio"
	"bytes"
	"reflect"
	"strings"
	"testing"
)

func TestMuxFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	frames := []MuxFrame{
		{ID: 1, Codec: CodecXML, Payload: []byte("<agentgrid/>")},
		{ID: 1<<63 + 7, Codec: CodecBinary, Payload: []byte{1, 2, 3}},
		{ID: 0, Codec: CodecXML, Payload: nil},
	}
	for _, f := range frames {
		if err := WriteMuxFrame(&buf, f); err != nil {
			t.Fatal(err)
		}
	}
	r := bufio.NewReader(&buf)
	for i, want := range frames {
		got, err := ReadMuxFrame(r)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if got.ID != want.ID || got.Codec != want.Codec || !bytes.Equal(got.Payload, want.Payload) {
			t.Fatalf("frame %d: got %+v, want %+v", i, got, want)
		}
	}
}

func TestMuxFrameRejectsBadInput(t *testing.T) {
	if err := WriteMuxFrame(&bytes.Buffer{}, MuxFrame{Codec: 'z'}); err == nil {
		t.Fatal("unknown codec accepted")
	}
	if err := WriteMuxFrame(&bytes.Buffer{}, MuxFrame{Codec: CodecXML, Payload: make([]byte, MaxFrame+1)}); err == nil {
		t.Fatal("oversized frame accepted")
	}
	// A legacy frame is not a mux frame.
	var legacy bytes.Buffer
	if err := WriteFrame(&legacy, []byte("<agentgrid/>")); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadMuxFrame(bufio.NewReader(&legacy)); err == nil {
		t.Fatal("legacy frame read as mux frame")
	}
	// Oversized length in the header.
	head := make([]byte, muxHeaderLen)
	head[0] = MuxMarker
	head[1] = CodecXML
	head[10], head[11], head[12], head[13] = 0xff, 0xff, 0xff, 0xff
	if _, err := ReadMuxFrame(bufio.NewReader(bytes.NewReader(head))); err == nil || !strings.Contains(err.Error(), "exceeds limit") {
		t.Fatalf("oversized header err = %v", err)
	}
}

func TestIsMuxConnDetectsBothFramings(t *testing.T) {
	var legacy bytes.Buffer
	_ = WriteFrame(&legacy, []byte("<agentgrid/>"))
	var mux bytes.Buffer
	_ = WriteMuxFrame(&mux, MuxFrame{ID: 1, Codec: CodecXML, Payload: []byte("<agentgrid/>")})

	if is, err := IsMuxConn(bufio.NewReader(&legacy)); err != nil || is {
		t.Fatalf("legacy detected as mux (is=%v err=%v)", is, err)
	}
	if is, err := IsMuxConn(bufio.NewReader(&mux)); err != nil || !is {
		t.Fatalf("mux not detected (is=%v err=%v)", is, err)
	}
}

func TestHelloAndBusyXMLRoundTrip(t *testing.T) {
	h := NewHello("xb")
	data, err := Marshal(h)
	if err != nil {
		t.Fatal(err)
	}
	got, kind, err := Decode(data)
	if err != nil || kind != KindHello {
		t.Fatalf("decode hello: kind %v err %v", kind, err)
	}
	if got.(*Hello).Codecs != "xb" {
		t.Fatalf("hello round trip: %+v", got)
	}

	b := NewBusy(65, 64)
	data, err = Marshal(b)
	if err != nil {
		t.Fatal(err)
	}
	got, kind, err = Decode(data)
	if err != nil || kind != KindBusy {
		t.Fatalf("decode busy: kind %v err %v", kind, err)
	}
	if bb := got.(*Busy); bb.Depth != 65 || bb.Limit != 64 {
		t.Fatalf("busy round trip: %+v", bb)
	}
}

// binaryCases is the full wire vocabulary; every message must survive the
// binary codec with the exact field values the XML codec would produce.
func binaryCases() []interface{} {
	req := NewWireRequest(9001, "sweep3d", "mpi", 1234.5, "u@example.org", ModeDiscover, []string{"S1", "S9"})
	req.Application.Binary.File = "/bin/sweep3d"
	req.Application.Binary.InputFile = "in.dat"
	si := NewServiceInfo(Endpoint{Address: "10.0.0.1", Port: 7001}, Endpoint{Address: "10.0.0.2", Port: 7002},
		"SGIOrigin2000", 16, []string{"test", "mpi", "pvm"}, 321)
	si.Local.Name = "S3"
	return []interface{}{
		si,
		req,
		NewResult("fft", 12, "S4", 8, 10, 20, 30, "u@example.org"),
		NewServiceQuery(),
		NewResultsQuery("someone@grid"),
		NewDispatchAck("S7", 42, 9001, 99.5, 3, true),
		NewErrorReply(errString("scheduler full")),
		NewResultSet([]TaskResult{
			{App: "improc", TaskID: 1, Resource: "S1", NProc: 4, Start: FormatVirtual(1), End: FormatVirtual(2), Deadline: FormatVirtual(3), Met: true, Done: true, Email: "a@b"},
			{App: "closure", TaskID: 2, Resource: "S2", NProc: 1, Start: FormatVirtual(4), End: FormatVirtual(5), Deadline: FormatVirtual(6)},
		}),
		NewResultSet(nil),
		NewHello("xb"),
		NewBusy(100, 64),
	}
}

type errString string

func (e errString) Error() string { return string(e) }

func TestBinaryCodecMatchesXMLCodec(t *testing.T) {
	for i, msg := range binaryCases() {
		xdata, err := Marshal(msg)
		if err != nil {
			t.Fatalf("case %d: xml marshal: %v", i, err)
		}
		viaXML, xkind, err := Decode(xdata)
		if err != nil {
			t.Fatalf("case %d: xml decode: %v", i, err)
		}
		bdata, err := MarshalBinary(msg)
		if err != nil {
			t.Fatalf("case %d: binary marshal: %v", i, err)
		}
		viaBin, bkind, err := UnmarshalBinary(bdata)
		if err != nil {
			t.Fatalf("case %d: binary unmarshal: %v", i, err)
		}
		if xkind != bkind {
			t.Fatalf("case %d: kind %q via xml, %q via binary", i, xkind, bkind)
		}
		if !reflect.DeepEqual(viaXML, viaBin) {
			t.Fatalf("case %d (%s): codecs disagree\nxml:    %#v\nbinary: %#v", i, xkind, viaXML, viaBin)
		}
		if len(bdata) >= len(xdata) {
			t.Errorf("case %d (%s): binary form (%d bytes) not smaller than XML (%d bytes)", i, xkind, len(bdata), len(xdata))
		}
	}
}

func TestBinaryCodecAcceptsPointers(t *testing.T) {
	q := NewServiceQuery()
	a, err := MarshalBinary(q)
	if err != nil {
		t.Fatal(err)
	}
	b, err := MarshalBinary(&q)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("pointer and value forms encode differently")
	}
}

func TestBinaryCodecRejectsGarbage(t *testing.T) {
	if _, _, err := UnmarshalBinary(nil); err == nil {
		t.Fatal("empty message accepted")
	}
	if _, _, err := UnmarshalBinary([]byte{200}); err == nil {
		t.Fatal("unknown tag accepted")
	}
	// Truncate every valid encoding at every length: must error, not panic.
	for i, msg := range binaryCases() {
		data, err := MarshalBinary(msg)
		if err != nil {
			t.Fatal(err)
		}
		for n := 1; n < len(data); n++ {
			if _, _, err := UnmarshalBinary(data[:n]); err == nil {
				t.Fatalf("case %d: truncation to %d/%d bytes accepted", i, n, len(data))
			}
		}
		// Trailing junk after a complete message is a protocol error.
		if _, _, err := UnmarshalBinary(append(append([]byte{}, data...), 0)); err == nil {
			t.Fatalf("case %d: trailing byte accepted", i)
		}
	}
	if _, err := MarshalBinary(struct{}{}); err == nil {
		t.Fatal("unknown type encoded")
	}
}

// TestPortalRequestXMLBytesPinned pins the portal's Fig. 6 output: the
// exact bytes gridsubmit -dry-run prints. The binary codec and the mux
// framing are connection-level negotiations — they must never change this
// document.
func TestPortalRequestXMLBytesPinned(t *testing.T) {
	req := NewRequest("sweep3d", "", "sweep3d", "test", 60, "user@example.org")
	data, err := Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	want := `<agentgrid type="request">
  <application>
    <name>sweep3d</name>
    <binary>
      <file></file>
    </binary>
    <performance>
      <datatype>pacemodel</datatype>
      <modelname>sweep3d</modelname>
    </performance>
  </application>
  <requirement>
    <environment>test</environment>
    <deadline>Thu Nov 15 04:44:10 2001</deadline>
  </requirement>
  <email>user@example.org</email>
  <visited></visited>
</agentgrid>
`
	if string(data) != want {
		t.Fatalf("portal XML drifted:\n got: %q\nwant: %q", data, want)
	}
}
