package xmlmsg

import (
	"bufio"
	"bytes"
	"io"
	"strings"
	"testing"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	msgs := [][]byte{
		[]byte("<agentgrid/>"),
		[]byte(""),
		bytes.Repeat([]byte("x"), 10000),
	}
	for _, m := range msgs {
		if err := WriteFrame(&buf, m); err != nil {
			t.Fatal(err)
		}
	}
	r := bufio.NewReader(&buf)
	for i, want := range msgs {
		got, err := ReadFrame(r)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("frame %d: got %d bytes, want %d", i, len(got), len(want))
		}
	}
	if _, err := ReadFrame(r); err != io.EOF {
		t.Fatalf("EOF not surfaced: %v", err)
	}
}

func TestReadFrameMalformedHeader(t *testing.T) {
	r := bufio.NewReader(strings.NewReader("abcdefghij body"))
	if _, err := ReadFrame(r); err == nil {
		t.Fatal("malformed header accepted")
	}
}

func TestReadFrameTruncatedBody(t *testing.T) {
	var buf bytes.Buffer
	_ = WriteFrame(&buf, []byte("hello"))
	data := buf.Bytes()[:buf.Len()-2]
	if _, err := ReadFrame(bufio.NewReader(bytes.NewReader(data))); err == nil {
		t.Fatal("truncated frame accepted")
	}
}

func TestReadFrameOversize(t *testing.T) {
	r := bufio.NewReader(strings.NewReader("9999999999"))
	if _, err := ReadFrame(r); err == nil || !strings.Contains(err.Error(), "exceeds limit") {
		t.Fatalf("oversize frame: %v", err)
	}
}

func TestWriteReadMessage(t *testing.T) {
	var buf bytes.Buffer
	req := NewRequest("cpi", "/bin/cpi", "/m/cpi", "test", 50, "x@y")
	if err := WriteMessage(&buf, req); err != nil {
		t.Fatal(err)
	}
	si := NewServiceInfo(Endpoint{"a", 1}, Endpoint{"a", 2}, "SunUltra5", 16, []string{"test"}, 9)
	if err := WriteMessage(&buf, si); err != nil {
		t.Fatal(err)
	}
	r := bufio.NewReader(&buf)
	m1, k1, err := ReadMessage(r)
	if err != nil || k1 != KindRequest {
		t.Fatalf("first message: %v %v", k1, err)
	}
	if m1.(*Request).Application.Name != "cpi" {
		t.Fatalf("request content lost: %+v", m1)
	}
	m2, k2, err := ReadMessage(r)
	if err != nil || k2 != KindService {
		t.Fatalf("second message: %v %v", k2, err)
	}
	if m2.(*ServiceInfo).Local.HWType != "SunUltra5" {
		t.Fatalf("service content lost: %+v", m2)
	}
}

func TestPretty(t *testing.T) {
	in := []byte(`<a><b>1</b></a>`)
	out := Pretty(in)
	if !strings.Contains(out, "\n") || !strings.Contains(out, "<b>1</b>") {
		t.Fatalf("Pretty output %q", out)
	}
	// Invalid input passes through unchanged.
	if got := Pretty([]byte("<broken")); got != "<broken" {
		t.Fatalf("Pretty on invalid input = %q", got)
	}
}

func TestEndpointString(t *testing.T) {
	if got := (Endpoint{Address: "host", Port: 99}).String(); got != "host:99" {
		t.Fatalf("Endpoint.String() = %q", got)
	}
}
