// Package xmlmsg defines the XML message formats the agents exchange:
// service information (Fig. 5), task requests (Fig. 6) and task execution
// results. Agents "are implemented using Java and data are represented in
// an XML format" (§3.2); here encoding/xml provides the same wire format
// for the Go daemons in cmd/gridagent, cmd/gridsched and cmd/gridsubmit.
package xmlmsg

import (
	"encoding/xml"
	"fmt"
	"time"
)

// Epoch anchors virtual time: virtual second 0 corresponds to this wall
// instant. The paper's messages carry asctime-style timestamps (Fig. 5
// shows "Sun Nov 15 04:43:10 2001"); virtual seconds are converted through
// this epoch when marshalled.
var Epoch = time.Date(2001, time.November, 15, 4, 43, 10, 0, time.UTC)

// FormatVirtual renders a virtual time (seconds since Epoch) in the ANSIC
// format used by the paper's messages.
func FormatVirtual(sec float64) string {
	return Epoch.Add(time.Duration(sec * float64(time.Second))).UTC().Format(time.ANSIC)
}

// ParseVirtual inverts FormatVirtual with one-second resolution.
func ParseVirtual(s string) (float64, error) {
	t, err := time.ParseInLocation(time.ANSIC, s, time.UTC)
	if err != nil {
		return 0, fmt.Errorf("xmlmsg: bad timestamp %q: %w", s, err)
	}
	return t.Sub(Epoch).Seconds(), nil
}

// Endpoint identifies an agent or local scheduler by the address and port
// used to initiate communication (§3.2).
type Endpoint struct {
	Address string `xml:"address"`
	Port    int    `xml:"port"`
}

func (e Endpoint) String() string { return fmt.Sprintf("%s:%d", e.Address, e.Port) }

// ServiceInfo is the Fig. 5 message: the advertisement describing one grid
// resource, submitted by a local scheduler to its agent and propagated
// through the hierarchy.
type ServiceInfo struct {
	XMLName xml.Name `xml:"agentgrid"`
	Type    string   `xml:"type,attr"` // always "service"
	Agent   Endpoint `xml:"agent"`
	Local   Local    `xml:"local"`
}

// Local is the resource block of a service advertisement. Name is an
// additive extension used by pushed advertisements so the receiver can
// key its service set (the paper identifies peers by address/port).
type Local struct {
	Name         string   `xml:"name,omitempty"`
	Address      string   `xml:"address"`
	Port         int      `xml:"port"`
	HWType       string   `xml:"type"`
	NProc        int      `xml:"nproc"`
	Environments []string `xml:"environment"`
	Freetime     string   `xml:"freetime"`
}

// NewServiceInfo builds a Fig. 5 message.
func NewServiceInfo(agent, local Endpoint, hwType string, nproc int, envs []string, freetimeSec float64) ServiceInfo {
	return ServiceInfo{
		Type:  "service",
		Agent: agent,
		Local: Local{
			Address:      local.Address,
			Port:         local.Port,
			HWType:       hwType,
			NProc:        nproc,
			Environments: envs,
			Freetime:     FormatVirtual(freetimeSec),
		},
	}
}

// FreetimeSeconds decodes the freetime timestamp to virtual seconds.
func (s ServiceInfo) FreetimeSeconds() (float64, error) {
	return ParseVirtual(s.Local.Freetime)
}

// Request is the Fig. 6 message: a task execution request from a user
// portal, carrying the application (binary plus PACE performance model),
// the requirements (environment and deadline) and contact information.
// Mode, ReqID and Visited are wire-protocol extensions used between
// networked agents (see ModeDiscover/ModeDirect); all are empty on plain
// portal submissions, keeping those byte-compatible with the figure.
// ReqID is the grid-wide request identity minted where the request enters
// the grid; it survives every forward hop so lifecycle events on
// different resources can be joined (scheduler-local task IDs cannot —
// they restart at 1 on every resource).
type Request struct {
	XMLName     xml.Name    `xml:"agentgrid"`
	Type        string      `xml:"type,attr"` // always "request"
	Mode        string      `xml:"mode,attr,omitempty"`
	ReqID       uint64      `xml:"reqid,attr,omitempty"`
	Application Application `xml:"application"`
	Requirement Requirement `xml:"requirement"`
	Email       string      `xml:"email"`
	Visited     []string    `xml:"visited>agent,omitempty"`
}

// Application identifies the program and its performance model.
type Application struct {
	Name        string      `xml:"name"`
	Binary      Binary      `xml:"binary"`
	Performance Performance `xml:"performance"`
}

// Binary locates the pre-compiled executable and its input, assumed
// available in all local file systems (§3.2).
type Binary struct {
	File      string `xml:"file"`
	InputFile string `xml:"inputfile,omitempty"`
}

// Performance locates the PACE application model.
type Performance struct {
	DataType  string `xml:"datatype"` // "pacemodel"
	ModelName string `xml:"modelname"`
}

// Requirement carries the execution environment and required deadline.
type Requirement struct {
	Environment string `xml:"environment"`
	Deadline    string `xml:"deadline"`
}

// NewRequest builds a Fig. 6 message with a virtual-time deadline.
func NewRequest(appName, binaryFile, modelName, env string, deadlineSec float64, email string) Request {
	return Request{
		Type: "request",
		Application: Application{
			Name:        appName,
			Binary:      Binary{File: binaryFile},
			Performance: Performance{DataType: "pacemodel", ModelName: modelName},
		},
		Requirement: Requirement{Environment: env, Deadline: FormatVirtual(deadlineSec)},
		Email:       email,
	}
}

// DeadlineSeconds decodes the deadline timestamp to virtual seconds.
func (r Request) DeadlineSeconds() (float64, error) {
	return ParseVirtual(r.Requirement.Deadline)
}

// Validate checks the fields every consumer relies on.
func (r Request) Validate() error {
	if r.Type != "request" {
		return fmt.Errorf("xmlmsg: request has type %q", r.Type)
	}
	if r.Application.Name == "" {
		return fmt.Errorf("xmlmsg: request has no application name")
	}
	if r.Requirement.Environment == "" {
		return fmt.Errorf("xmlmsg: request has no execution environment")
	}
	if _, err := r.DeadlineSeconds(); err != nil {
		return err
	}
	return nil
}

// Result reports a task's execution outcome back to the user from the
// resource that ran it (the communication module's first output, §2.2).
type Result struct {
	XMLName     xml.Name `xml:"agentgrid"`
	Type        string   `xml:"type,attr"` // always "result"
	AppName     string   `xml:"application>name"`
	TaskID      int      `xml:"task>id"`
	Resource    string   `xml:"task>resource"`
	NProc       int      `xml:"task>nproc"`
	Start       string   `xml:"task>start"`
	End         string   `xml:"task>end"`
	Deadline    string   `xml:"task>deadline"`
	MetDeadline bool     `xml:"task>met"`
	Email       string   `xml:"email"`
}

// NewResult builds a result message from virtual times.
func NewResult(appName string, taskID int, resource string, nproc int, start, end, deadline float64, email string) Result {
	return Result{
		Type:        "result",
		AppName:     appName,
		TaskID:      taskID,
		Resource:    resource,
		NProc:       nproc,
		Start:       FormatVirtual(start),
		End:         FormatVirtual(end),
		Deadline:    FormatVirtual(deadline),
		MetDeadline: end <= deadline,
		Email:       email,
	}
}
