package xmlmsg

import (
	"bufio"
	"bytes"
	"encoding/xml"
	"fmt"
	"io"
)

// Kind discriminates the agentgrid message types on the wire.
type Kind string

// Message kinds.
const (
	KindService Kind = "service"
	KindRequest Kind = "request"
	KindResult  Kind = "result"
)

// Marshal renders a message as an indented agentgrid XML document.
func Marshal(v interface{}) ([]byte, error) {
	out, err := xml.MarshalIndent(v, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("xmlmsg: marshal: %w", err)
	}
	return append(out, '\n'), nil
}

// envelope peeks at the agentgrid type attribute.
type envelope struct {
	XMLName xml.Name `xml:"agentgrid"`
	Type    string   `xml:"type,attr"`
}

// Decode parses an agentgrid document and returns the typed message:
// *ServiceInfo, *Request or *Result.
func Decode(data []byte) (interface{}, Kind, error) {
	var env envelope
	if err := xml.Unmarshal(data, &env); err != nil {
		return nil, "", fmt.Errorf("xmlmsg: decode envelope: %w", err)
	}
	switch Kind(env.Type) {
	case KindService:
		var m ServiceInfo
		if err := xml.Unmarshal(data, &m); err != nil {
			return nil, "", fmt.Errorf("xmlmsg: decode service: %w", err)
		}
		return &m, KindService, nil
	case KindRequest:
		var m Request
		if err := xml.Unmarshal(data, &m); err != nil {
			return nil, "", fmt.Errorf("xmlmsg: decode request: %w", err)
		}
		return &m, KindRequest, nil
	case KindResult:
		var m Result
		if err := xml.Unmarshal(data, &m); err != nil {
			return nil, "", fmt.Errorf("xmlmsg: decode result: %w", err)
		}
		return &m, KindResult, nil
	}
	return decodeExtended(env, data)
}

// Framing on stream transports: a 10-digit decimal length prefix followed
// by the XML document. Fixed-width keeps the framing trivially parseable
// from any language.
const lenDigits = 10

// WriteFrame writes one length-prefixed message to w.
func WriteFrame(w io.Writer, data []byte) error {
	if _, err := fmt.Fprintf(w, "%0*d", lenDigits, len(data)); err != nil {
		return fmt.Errorf("xmlmsg: write frame header: %w", err)
	}
	if _, err := w.Write(data); err != nil {
		return fmt.Errorf("xmlmsg: write frame body: %w", err)
	}
	return nil
}

// MaxFrame bounds a single message; anything larger is a protocol error.
const MaxFrame = 1 << 20

// ReadFrame reads one length-prefixed message from r.
func ReadFrame(r *bufio.Reader) ([]byte, error) {
	head := make([]byte, lenDigits)
	if _, err := io.ReadFull(r, head); err != nil {
		return nil, err // io.EOF passes through for clean shutdown
	}
	n := 0
	for _, c := range head {
		if c < '0' || c > '9' {
			return nil, fmt.Errorf("xmlmsg: malformed frame header %q", head)
		}
		n = n*10 + int(c-'0')
	}
	if n > MaxFrame {
		return nil, fmt.Errorf("xmlmsg: frame of %d bytes exceeds limit %d", n, MaxFrame)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, fmt.Errorf("xmlmsg: short frame: %w", err)
	}
	return body, nil
}

// WriteMessage marshals and frames a message in one step.
func WriteMessage(w io.Writer, v interface{}) error {
	data, err := Marshal(v)
	if err != nil {
		return err
	}
	return WriteFrame(w, data)
}

// ReadMessage reads and decodes one framed message.
func ReadMessage(r *bufio.Reader) (interface{}, Kind, error) {
	data, err := ReadFrame(r)
	if err != nil {
		return nil, "", err
	}
	return Decode(data)
}

// Pretty re-indents an XML document for display; invalid input is
// returned unchanged.
func Pretty(data []byte) string {
	var buf bytes.Buffer
	dec := xml.NewDecoder(bytes.NewReader(data))
	enc := xml.NewEncoder(&buf)
	enc.Indent("", "  ")
	for {
		tok, err := dec.Token()
		if err == io.EOF {
			break
		}
		if err != nil {
			return string(data)
		}
		if err := enc.EncodeToken(tok); err != nil {
			return string(data)
		}
	}
	if err := enc.Flush(); err != nil {
		return string(data)
	}
	return buf.String()
}
