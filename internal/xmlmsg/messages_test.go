package xmlmsg

import (
	"strings"
	"testing"
)

func TestFormatParseVirtualRoundTrip(t *testing.T) {
	for _, sec := range []float64{0, 1, 59, 600, 86400, 123456} {
		s := FormatVirtual(sec)
		got, err := ParseVirtual(s)
		if err != nil {
			t.Fatalf("ParseVirtual(%q): %v", s, err)
		}
		if got != sec {
			t.Fatalf("round trip %v -> %q -> %v", sec, s, got)
		}
	}
}

func TestFormatVirtualMatchesFig5Style(t *testing.T) {
	// Fig. 5 shows "Sun Nov 15 04:43:10 2001" — ANSIC layout. Virtual 0
	// is the epoch itself.
	s := FormatVirtual(0)
	if !strings.Contains(s, "Nov 15 04:43:10 2001") {
		t.Fatalf("epoch formats as %q", s)
	}
}

func TestParseVirtualRejectsGarbage(t *testing.T) {
	if _, err := ParseVirtual("not a time"); err == nil {
		t.Fatal("garbage timestamp accepted")
	}
}

func TestServiceInfoRoundTrip(t *testing.T) {
	si := NewServiceInfo(
		Endpoint{Address: "gem.dcs.warwick.ac.uk", Port: 1000},
		Endpoint{Address: "gem.dcs.warwick.ac.uk", Port: 10000},
		"SunUltra10", 16, []string{"mpi", "pvm", "test"}, 600,
	)
	data, err := Marshal(si)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`type="service"`, "<agent>", "<local>", "<nproc>16</nproc>",
		"<type>SunUltra10</type>", "<environment>mpi</environment>",
		"<environment>pvm</environment>", "<environment>test</environment>",
		"<freetime>",
	} {
		if !strings.Contains(string(data), want) {
			t.Fatalf("marshalled service info missing %q:\n%s", want, data)
		}
	}
	back, kind, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if kind != KindService {
		t.Fatalf("kind = %v", kind)
	}
	got := back.(*ServiceInfo)
	if got.Local.HWType != "SunUltra10" || got.Local.NProc != 16 {
		t.Fatalf("round trip lost fields: %+v", got)
	}
	ft, err := got.FreetimeSeconds()
	if err != nil {
		t.Fatal(err)
	}
	if ft != 600 {
		t.Fatalf("freetime = %v, want 600", ft)
	}
	if len(got.Local.Environments) != 3 {
		t.Fatalf("environments = %v", got.Local.Environments)
	}
}

func TestRequestRoundTrip(t *testing.T) {
	r := NewRequest("sweep3d", "/bin/sweep3d", "/models/sweep3d", "test", 127, "junwei@dcs.warwick.ac.uk")
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
	data, err := Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`type="request"`, "<name>sweep3d</name>",
		"<datatype>pacemodel</datatype>", "<deadline>",
		"<email>junwei@dcs.warwick.ac.uk</email>",
	} {
		if !strings.Contains(string(data), want) {
			t.Fatalf("marshalled request missing %q:\n%s", want, data)
		}
	}
	back, kind, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if kind != KindRequest {
		t.Fatalf("kind = %v", kind)
	}
	got := back.(*Request)
	dl, err := got.DeadlineSeconds()
	if err != nil {
		t.Fatal(err)
	}
	if dl != 127 {
		t.Fatalf("deadline = %v, want 127", dl)
	}
}

func TestRequestValidate(t *testing.T) {
	good := NewRequest("fft", "/bin/fft", "/m/fft", "test", 10, "a@b")
	cases := []func(Request) Request{
		func(r Request) Request { r.Type = "service"; return r },
		func(r Request) Request { r.Application.Name = ""; return r },
		func(r Request) Request { r.Requirement.Environment = ""; return r },
		func(r Request) Request { r.Requirement.Deadline = "junk"; return r },
	}
	for i, mut := range cases {
		if err := mut(good).Validate(); err == nil {
			t.Errorf("bad request %d validated", i)
		}
	}
}

func TestResultRoundTrip(t *testing.T) {
	res := NewResult("jacobi", 42, "S3", 8, 100, 140, 150, "user@grid")
	if !res.MetDeadline {
		t.Fatal("deadline met flag wrong")
	}
	data, err := Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	back, kind, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if kind != KindResult {
		t.Fatalf("kind = %v", kind)
	}
	got := back.(*Result)
	if got.TaskID != 42 || got.Resource != "S3" || got.NProc != 8 || !got.MetDeadline {
		t.Fatalf("round trip lost fields: %+v", got)
	}
	late := NewResult("jacobi", 1, "S3", 8, 100, 160, 150, "u@g")
	if late.MetDeadline {
		t.Fatal("late task marked as meeting its deadline")
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, _, err := Decode([]byte("<notxml")); err == nil {
		t.Error("malformed XML decoded")
	}
	if _, _, err := Decode([]byte(`<agentgrid type="bogus"></agentgrid>`)); err == nil {
		t.Error("unknown type decoded")
	}
	if _, _, err := Decode([]byte(`<other/>`)); err == nil {
		t.Error("non-agentgrid document decoded")
	}
}
