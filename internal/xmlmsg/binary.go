package xmlmsg

import (
	"encoding/binary"
	"encoding/xml"
	"fmt"
)

// Compact binary codec, negotiated per connection alongside the XML wire
// default (see Hello). The encoding is a one-byte message tag followed by
// the struct fields in declaration order: uvarint for non-negative
// integers, length-prefixed UTF-8 for strings, one byte for bools,
// IEEE-754 bits for floats. Timestamps stay the ANSIC strings of the XML
// schema so a message round-trips bit-identically through either codec —
// the binary form is a compression of the XML document, not a different
// message.

// Message tags. New kinds append; existing tags never change, so a mixed
// deployment can negotiate the codec safely.
const (
	binTagService       byte = 1
	binTagRequest       byte = 2
	binTagResult        byte = 3
	binTagQuery         byte = 4
	binTagAck           byte = 5
	binTagError         byte = 6
	binTagResults       byte = 7
	binTagHello         byte = 8
	binTagBusy          byte = 9
	binTagReserve       byte = 10
	binTagReserveAck    byte = 11
	binTagMembership    byte = 12
	binTagMembershipAck byte = 13
)

type binWriter struct{ buf []byte }

func (w *binWriter) u64(v uint64) { w.buf = binary.AppendUvarint(w.buf, v) }
func (w *binWriter) i(v int) error {
	if v < 0 {
		return fmt.Errorf("xmlmsg: binary codec: negative integer %d", v)
	}
	w.u64(uint64(v))
	return nil
}
func (w *binWriter) str(s string) {
	w.u64(uint64(len(s)))
	w.buf = append(w.buf, s...)
}
func (w *binWriter) strs(ss []string) {
	w.u64(uint64(len(ss)))
	for _, s := range ss {
		w.str(s)
	}
}
func (w *binWriter) boolean(b bool) {
	if b {
		w.buf = append(w.buf, 1)
	} else {
		w.buf = append(w.buf, 0)
	}
}

type binReader struct {
	buf []byte
	err error
}

func (r *binReader) fail(what string) {
	if r.err == nil {
		r.err = fmt.Errorf("xmlmsg: binary codec: truncated %s", what)
	}
}

func (r *binReader) u64(what string) uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.buf)
	if n <= 0 {
		r.fail(what)
		return 0
	}
	r.buf = r.buf[n:]
	return v
}

func (r *binReader) i(what string) int { return int(r.u64(what)) }

func (r *binReader) str(what string) string {
	n := r.u64(what)
	if r.err != nil {
		return ""
	}
	if n > uint64(len(r.buf)) {
		r.fail(what)
		return ""
	}
	s := string(r.buf[:n])
	r.buf = r.buf[n:]
	return s
}

func (r *binReader) strs(what string) []string {
	n := r.u64(what)
	if r.err != nil || n == 0 {
		return nil
	}
	if n > uint64(len(r.buf)) { // each entry needs >= 1 byte of length
		r.fail(what)
		return nil
	}
	out := make([]string, 0, n)
	for i := uint64(0); i < n && r.err == nil; i++ {
		out = append(out, r.str(what))
	}
	return out
}

func (r *binReader) boolean(what string) bool {
	if r.err != nil {
		return false
	}
	if len(r.buf) < 1 {
		r.fail(what)
		return false
	}
	b := r.buf[0]
	r.buf = r.buf[1:]
	return b != 0
}

// agName is the XMLName value encoding/xml sets when decoding an
// agentgrid document; the binary decoder sets the same so a message is
// identical whichever codec carried it.
var agName = xml.Name{Local: "agentgrid"}

// MarshalBinary encodes a message with the compact binary codec. Both
// value and pointer forms of every wire type are accepted, mirroring
// Marshal.
func MarshalBinary(v interface{}) ([]byte, error) {
	w := &binWriter{buf: make([]byte, 0, 128)}
	switch m := deref(v).(type) {
	case ServiceInfo:
		w.buf = append(w.buf, binTagService)
		w.str(m.Agent.Address)
		if err := w.i(m.Agent.Port); err != nil {
			return nil, err
		}
		w.str(m.Local.Name)
		w.str(m.Local.Address)
		if err := w.i(m.Local.Port); err != nil {
			return nil, err
		}
		w.str(m.Local.HWType)
		if err := w.i(m.Local.NProc); err != nil {
			return nil, err
		}
		w.strs(m.Local.Environments)
		w.str(m.Local.Freetime)
	case Request:
		w.buf = append(w.buf, binTagRequest)
		w.str(m.Mode)
		w.u64(m.ReqID)
		w.str(m.Application.Name)
		w.str(m.Application.Binary.File)
		w.str(m.Application.Binary.InputFile)
		w.str(m.Application.Performance.DataType)
		w.str(m.Application.Performance.ModelName)
		w.str(m.Requirement.Environment)
		w.str(m.Requirement.Deadline)
		w.str(m.Email)
		w.strs(m.Visited)
	case Result:
		w.buf = append(w.buf, binTagResult)
		w.str(m.AppName)
		if err := w.i(m.TaskID); err != nil {
			return nil, err
		}
		w.str(m.Resource)
		if err := w.i(m.NProc); err != nil {
			return nil, err
		}
		w.str(m.Start)
		w.str(m.End)
		w.str(m.Deadline)
		w.boolean(m.MetDeadline)
		w.str(m.Email)
	case Query:
		w.buf = append(w.buf, binTagQuery)
		w.str(m.What)
		w.str(m.Email)
	case DispatchAck:
		w.buf = append(w.buf, binTagAck)
		w.str(m.Resource)
		if err := w.i(m.TaskID); err != nil {
			return nil, err
		}
		w.u64(m.ReqID)
		w.str(m.Eta)
		if err := w.i(m.Hops); err != nil {
			return nil, err
		}
		w.boolean(m.Fallback)
	case ErrorReply:
		w.buf = append(w.buf, binTagError)
		w.str(m.Message)
	case ResultSet:
		w.buf = append(w.buf, binTagResults)
		w.u64(uint64(len(m.Tasks)))
		for _, t := range m.Tasks {
			w.str(t.App)
			if err := w.i(t.TaskID); err != nil {
				return nil, err
			}
			w.str(t.Resource)
			if err := w.i(t.NProc); err != nil {
				return nil, err
			}
			w.str(t.Start)
			w.str(t.End)
			w.str(t.Deadline)
			w.boolean(t.Met)
			w.boolean(t.Done)
			w.str(t.Email)
		}
	case Reserve:
		w.buf = append(w.buf, binTagReserve)
		w.str(m.Action)
		w.u64(m.ResvID)
		w.u64(m.ReqID)
		w.str(m.Resource)
		w.str(m.Holder)
		if err := w.i(m.Nodes); err != nil {
			return nil, err
		}
		w.str(m.Earliest)
		w.str(m.Duration)
		w.str(m.Mask)
		w.str(m.Start)
		w.str(m.End)
		w.str(m.TTL)
		w.str(m.Model)
		w.strs(m.Visited)
	case ReserveAck:
		w.buf = append(w.buf, binTagReserveAck)
		if err := w.i(m.TaskID); err != nil {
			return nil, err
		}
		w.u64(uint64(len(m.Quotes)))
		for _, q := range m.Quotes {
			w.str(q.Resource)
			w.str(q.Mask)
			w.str(q.Start)
			w.str(q.End)
		}
	case Membership:
		w.buf = append(w.buf, binTagMembership)
		w.str(m.Op)
		w.str(m.Agent)
		w.str(m.Address)
		if err := w.i(m.Port); err != nil {
			return nil, err
		}
	case MembershipAck:
		w.buf = append(w.buf, binTagMembershipAck)
		w.str(m.Op)
		w.str(m.Upper)
	case Hello:
		w.buf = append(w.buf, binTagHello)
		w.str(m.Codecs)
	case Busy:
		w.buf = append(w.buf, binTagBusy)
		if err := w.i(m.Depth); err != nil {
			return nil, err
		}
		if err := w.i(m.Limit); err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("xmlmsg: binary codec cannot encode %T", v)
	}
	return w.buf, nil
}

// deref normalises the pointer forms Decode hands out back to values.
func deref(v interface{}) interface{} {
	switch m := v.(type) {
	case *ServiceInfo:
		return *m
	case *Request:
		return *m
	case *Result:
		return *m
	case *Query:
		return *m
	case *DispatchAck:
		return *m
	case *ErrorReply:
		return *m
	case *ResultSet:
		return *m
	case *Hello:
		return *m
	case *Busy:
		return *m
	case *Reserve:
		return *m
	case *ReserveAck:
		return *m
	case *Membership:
		return *m
	case *MembershipAck:
		return *m
	}
	return v
}

// UnmarshalBinary decodes a compact binary message, returning the same
// pointer types and Kind that Decode returns for the XML form.
func UnmarshalBinary(data []byte) (interface{}, Kind, error) {
	if len(data) == 0 {
		return nil, "", fmt.Errorf("xmlmsg: empty binary message")
	}
	r := &binReader{buf: data[1:]}
	var (
		out  interface{}
		kind Kind
	)
	switch data[0] {
	case binTagService:
		m := &ServiceInfo{XMLName: agName, Type: "service"}
		m.Agent.Address = r.str("service agent address")
		m.Agent.Port = r.i("service agent port")
		m.Local.Name = r.str("service name")
		m.Local.Address = r.str("service address")
		m.Local.Port = r.i("service port")
		m.Local.HWType = r.str("service hwtype")
		m.Local.NProc = r.i("service nproc")
		m.Local.Environments = r.strs("service environments")
		m.Local.Freetime = r.str("service freetime")
		out, kind = m, KindService
	case binTagRequest:
		m := &Request{XMLName: agName, Type: "request"}
		m.Mode = r.str("request mode")
		m.ReqID = r.u64("request reqid")
		m.Application.Name = r.str("request app name")
		m.Application.Binary.File = r.str("request binary file")
		m.Application.Binary.InputFile = r.str("request input file")
		m.Application.Performance.DataType = r.str("request datatype")
		m.Application.Performance.ModelName = r.str("request modelname")
		m.Requirement.Environment = r.str("request environment")
		m.Requirement.Deadline = r.str("request deadline")
		m.Email = r.str("request email")
		m.Visited = r.strs("request visited")
		out, kind = m, KindRequest
	case binTagResult:
		m := &Result{XMLName: agName, Type: "result"}
		m.AppName = r.str("result app")
		m.TaskID = r.i("result task id")
		m.Resource = r.str("result resource")
		m.NProc = r.i("result nproc")
		m.Start = r.str("result start")
		m.End = r.str("result end")
		m.Deadline = r.str("result deadline")
		m.MetDeadline = r.boolean("result met")
		m.Email = r.str("result email")
		out, kind = m, KindResult
	case binTagQuery:
		m := &Query{XMLName: agName, Type: "query"}
		m.What = r.str("query what")
		m.Email = r.str("query email")
		out, kind = m, KindQuery
	case binTagAck:
		m := &DispatchAck{XMLName: agName, Type: "dispatch"}
		m.Resource = r.str("ack resource")
		m.TaskID = r.i("ack task id")
		m.ReqID = r.u64("ack reqid")
		m.Eta = r.str("ack eta")
		m.Hops = r.i("ack hops")
		m.Fallback = r.boolean("ack fallback")
		out, kind = m, KindDispatch
	case binTagError:
		m := &ErrorReply{XMLName: agName, Type: "error"}
		m.Message = r.str("error message")
		out, kind = m, KindError
	case binTagResults:
		m := &ResultSet{XMLName: agName, Type: "results"}
		n := r.u64("results count")
		if n > uint64(len(r.buf)) { // each task needs >= 1 byte
			r.fail("results count")
			n = 0
		}
		for i := uint64(0); i < n && r.err == nil; i++ {
			var t TaskResult
			t.App = r.str("task app")
			t.TaskID = r.i("task id")
			t.Resource = r.str("task resource")
			t.NProc = r.i("task nproc")
			t.Start = r.str("task start")
			t.End = r.str("task end")
			t.Deadline = r.str("task deadline")
			t.Met = r.boolean("task met")
			t.Done = r.boolean("task done")
			t.Email = r.str("task email")
			m.Tasks = append(m.Tasks, t)
		}
		out, kind = m, KindResults
	case binTagReserve:
		m := &Reserve{XMLName: agName, Type: "reserve"}
		m.Action = r.str("reserve action")
		m.ResvID = r.u64("reserve resvid")
		m.ReqID = r.u64("reserve reqid")
		m.Resource = r.str("reserve resource")
		m.Holder = r.str("reserve holder")
		m.Nodes = r.i("reserve nodes")
		m.Earliest = r.str("reserve earliest")
		m.Duration = r.str("reserve duration")
		m.Mask = r.str("reserve mask")
		m.Start = r.str("reserve start")
		m.End = r.str("reserve end")
		m.TTL = r.str("reserve ttl")
		m.Model = r.str("reserve model")
		m.Visited = r.strs("reserve visited")
		out, kind = m, KindReserve
	case binTagReserveAck:
		m := &ReserveAck{XMLName: agName, Type: "reserveack"}
		m.TaskID = r.i("reserve ack task id")
		n := r.u64("reserve ack quote count")
		if n > uint64(len(r.buf)) { // each quote needs >= 1 byte
			r.fail("reserve ack quote count")
			n = 0
		}
		for i := uint64(0); i < n && r.err == nil; i++ {
			var q QuoteEntry
			q.Resource = r.str("quote resource")
			q.Mask = r.str("quote mask")
			q.Start = r.str("quote start")
			q.End = r.str("quote end")
			m.Quotes = append(m.Quotes, q)
		}
		out, kind = m, KindReserveAck
	case binTagMembership:
		m := &Membership{XMLName: agName, Type: "membership"}
		m.Op = r.str("membership op")
		m.Agent = r.str("membership agent")
		m.Address = r.str("membership address")
		m.Port = r.i("membership port")
		out, kind = m, KindMembership
	case binTagMembershipAck:
		m := &MembershipAck{XMLName: agName, Type: "membershipack"}
		m.Op = r.str("membership ack op")
		m.Upper = r.str("membership ack upper")
		out, kind = m, KindMembershipAck
	case binTagHello:
		m := &Hello{XMLName: agName, Type: "hello"}
		m.Codecs = r.str("hello codecs")
		out, kind = m, KindHello
	case binTagBusy:
		m := &Busy{XMLName: agName, Type: "busy"}
		m.Depth = r.i("busy depth")
		m.Limit = r.i("busy limit")
		out, kind = m, KindBusy
	default:
		return nil, "", fmt.Errorf("xmlmsg: unknown binary tag %d", data[0])
	}
	if r.err != nil {
		return nil, "", r.err
	}
	if len(r.buf) != 0 {
		return nil, "", fmt.Errorf("xmlmsg: %d trailing bytes after binary %s", len(r.buf), kind)
	}
	return out, kind, nil
}
