package xmlmsg

import (
	"bufio"
	"bytes"
	"math"
	"strings"
	"testing"
	"testing/quick"
)

// sanitise keeps generated strings inside XML's character set so the
// property tests exercise the codec, not Go's XML charset validation.
func sanitise(s string) string {
	var b strings.Builder
	for _, r := range s {
		if r >= 0x20 && r != '<' && r != '>' && r != '&' && r <= 0xFFFD {
			b.WriteRune(r)
		}
	}
	return b.String()
}

// Property: any request built from generated fields survives a marshal/
// decode round trip with its semantic content — including the grid-wide
// request ID — intact.
func TestRequestRoundTripProperty(t *testing.T) {
	prop := func(appRaw, envRaw, emailRaw string, reqID uint64, deadlineRaw uint32, visitedRaw []string) bool {
		app := sanitise(appRaw)
		env := sanitise(envRaw)
		if app == "" {
			app = "fft"
		}
		if env == "" {
			env = "test"
		}
		deadline := float64(deadlineRaw % 1000000)
		visited := make([]string, 0, len(visitedRaw))
		for _, v := range visitedRaw {
			if s := sanitise(v); s != "" {
				visited = append(visited, s)
			}
		}
		req := NewWireRequest(reqID, app, env, deadline, sanitise(emailRaw), ModeDiscover, visited)
		data, err := Marshal(req)
		if err != nil {
			return false
		}
		back, kind, err := Decode(data)
		if err != nil || kind != KindRequest {
			return false
		}
		got := back.(*Request)
		if got.ReqID != reqID {
			return false
		}
		if got.Application.Name != app || got.Requirement.Environment != env {
			return false
		}
		dl, err := got.DeadlineSeconds()
		if err != nil || math.Abs(dl-deadline) > 0.5 { // 1-second timestamp resolution
			return false
		}
		if len(got.Visited) != len(visited) {
			return false
		}
		for i := range visited {
			if got.Visited[i] != visited[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: service advertisements round-trip through marshal/decode and
// framing together.
func TestServiceRoundTripProperty(t *testing.T) {
	prop := func(hwRaw string, nproc uint8, freetimeRaw uint32, envsRaw []string) bool {
		hw := sanitise(hwRaw)
		if hw == "" {
			hw = "SunUltra5"
		}
		envs := make([]string, 0, len(envsRaw))
		for _, e := range envsRaw {
			if s := sanitise(e); s != "" {
				envs = append(envs, s)
			}
		}
		ft := float64(freetimeRaw % 10000000)
		si := NewServiceInfo(Endpoint{"a", 1}, Endpoint{"b", 2}, hw, int(nproc)+1, envs, ft)

		var buf bytes.Buffer
		if err := WriteMessage(&buf, si); err != nil {
			return false
		}
		back, kind, err := ReadMessage(bufio.NewReader(&buf))
		if err != nil || kind != KindService {
			return false
		}
		got := back.(*ServiceInfo)
		if got.Local.HWType != hw || got.Local.NProc != int(nproc)+1 {
			return false
		}
		gotFt, err := got.FreetimeSeconds()
		if err != nil || math.Abs(gotFt-ft) > 0.5 {
			return false
		}
		return len(got.Local.Environments) == len(envs)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: framing survives arbitrary binary payloads back to back.
func TestFrameRoundTripProperty(t *testing.T) {
	prop := func(payloads [][]byte) bool {
		var buf bytes.Buffer
		for _, p := range payloads {
			if len(p) > MaxFrame {
				p = p[:MaxFrame]
			}
			if err := WriteFrame(&buf, p); err != nil {
				return false
			}
		}
		r := bufio.NewReader(&buf)
		for _, p := range payloads {
			if len(p) > MaxFrame {
				p = p[:MaxFrame]
			}
			got, err := ReadFrame(r)
			if err != nil {
				return false
			}
			if !bytes.Equal(got, p) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
