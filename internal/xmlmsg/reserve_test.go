package xmlmsg

import (
	"reflect"
	"testing"
)

func sampleReserve() Reserve {
	return Reserve{
		Type:     "reserve",
		Action:   ReserveActionHold,
		ResvID:   42,
		ReqID:    7,
		Resource: "S3",
		Holder:   "user@grid",
		Nodes:    4,
		Earliest: FormatSeconds(120.5),
		Duration: FormatSeconds(300),
		Mask:     FormatMask(0b1011),
		Start:    FormatSeconds(150.25),
		End:      FormatSeconds(450.25),
		TTL:      FormatSeconds(30),
		Model:    "fft",
		Visited:  []string{"S1", "S2"},
	}
}

func TestReserveXMLRoundTrip(t *testing.T) {
	in := sampleReserve()
	data, err := Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	back, kind, err := Decode(data)
	if err != nil || kind != KindReserve {
		t.Fatalf("decode: kind=%s err=%v", kind, err)
	}
	got := back.(*Reserve)
	in.XMLName = got.XMLName
	if !reflect.DeepEqual(*got, in) {
		t.Fatalf("round trip:\n got %+v\nwant %+v", *got, in)
	}
	if m, _ := ParseMask(got.Mask); m != 0b1011 {
		t.Fatalf("mask = %b", m)
	}
	if s, _ := ParseSeconds(got.Start); s != 150.25 {
		t.Fatalf("start = %g", s)
	}
}

func TestReserveAckXMLRoundTrip(t *testing.T) {
	in := NewReserveAck(9, []QuoteEntry{
		{Resource: "S1", Mask: FormatMask(3), Start: FormatSeconds(100), End: FormatSeconds(200)},
		{Resource: "S2", Mask: FormatMask(12), Start: FormatSeconds(150), End: FormatSeconds(250)},
	})
	data, err := Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	back, kind, err := Decode(data)
	if err != nil || kind != KindReserveAck {
		t.Fatalf("decode: kind=%s err=%v", kind, err)
	}
	got := back.(*ReserveAck)
	in.XMLName = got.XMLName
	if !reflect.DeepEqual(*got, in) {
		t.Fatalf("round trip:\n got %+v\nwant %+v", *got, in)
	}
}

// The binary codec must reproduce exactly the message the XML codec
// carries: a reservation negotiated over mixed-codec links is the same
// reservation.
func TestReserveBinaryMatchesXML(t *testing.T) {
	for _, v := range []interface{}{
		sampleReserve(),
		NewReserveAck(0, []QuoteEntry{{Resource: "S1", Mask: "f", Start: "0", End: "10"}}),
		NewReserveAck(3, nil),
	} {
		xdata, err := Marshal(v)
		if err != nil {
			t.Fatal(err)
		}
		viaXML, _, err := Decode(xdata)
		if err != nil {
			t.Fatal(err)
		}
		bdata, err := MarshalBinary(v)
		if err != nil {
			t.Fatal(err)
		}
		viaBin, _, err := UnmarshalBinary(bdata)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(viaXML, viaBin) {
			t.Fatalf("codecs disagree:\n xml %+v\n bin %+v", viaXML, viaBin)
		}
		if len(bdata) >= len(xdata) {
			t.Fatalf("binary form (%d bytes) not smaller than XML (%d bytes)", len(bdata), len(xdata))
		}
	}
}

// Pinned wire bytes: the XML serialisation of a reserve message is
// interface, not implementation — tools in other languages parse it.
func TestReserveXMLBytesPinned(t *testing.T) {
	data, err := Marshal(Reserve{
		Type:     "reserve",
		Action:   ReserveActionQuote,
		Nodes:    2,
		Earliest: FormatSeconds(100),
		Duration: FormatSeconds(60),
	})
	if err != nil {
		t.Fatal(err)
	}
	// The empty <visited> wrapper matches how a Fig. 6 request with no
	// visited agents marshals (encoding/xml keeps the nested-path parent).
	want := `<agentgrid type="reserve" action="quote">
  <nodes>2</nodes>
  <earliest>100</earliest>
  <duration>60</duration>
  <visited></visited>
</agentgrid>
`
	if string(data) != want {
		t.Fatalf("wire bytes changed:\n got %q\nwant %q", data, want)
	}
}

func TestFormatSecondsExactRoundTrip(t *testing.T) {
	for _, v := range []float64{0, 0.1, 1.0 / 3.0, 12345.6789, 1e-9, 9e15} {
		got, err := ParseSeconds(FormatSeconds(v))
		if err != nil || got != v {
			t.Fatalf("round trip of %v: got %v err %v", v, got, err)
		}
	}
}
