package xmlmsg

import (
	"encoding/xml"
	"fmt"
)

// Membership message kinds: Membership carries one dynamic-hierarchy
// operation (a child registering under an upper agent, or gracefully
// deregistering) through the wire; MembershipAck answers it.
const (
	KindMembership    Kind = "membership"
	KindMembershipAck Kind = "membershipack"
)

// Membership wire operations.
const (
	MembershipOpJoin  = "join"
	MembershipOpLeave = "leave"
)

// Membership is one dynamic-hierarchy operation on the wire, sent child
// → upper. A join registers the sender as a lower neighbour: the upper
// starts pulling the sender's Fig. 5 advertisements on its next tick and
// routes matching requests to it. A leave deregisters it: the upper
// drops the neighbour link and forgets its advertisement and breaker
// history immediately — graceful departure must not wait out the advert
// TTL the way a crash does.
type Membership struct {
	XMLName xml.Name `xml:"agentgrid"`
	Type    string   `xml:"type,attr"` // always "membership"
	Op      string   `xml:"op,attr"`   // join | leave
	Agent   string   `xml:"agent"`     // the child's resource name
	Address string   `xml:"address,omitempty"`
	Port    int      `xml:"port,omitempty"`
}

// NewJoin builds a child's registration message.
func NewJoin(agent, address string, port int) Membership {
	return Membership{Type: "membership", Op: MembershipOpJoin, Agent: agent, Address: address, Port: port}
}

// NewLeave builds a child's deregistration message.
func NewLeave(agent string) Membership {
	return Membership{Type: "membership", Op: MembershipOpLeave, Agent: agent}
}

// MembershipAck answers a Membership operation; Upper names the agent
// that accepted it (failures travel as ErrorReply).
type MembershipAck struct {
	XMLName xml.Name `xml:"agentgrid"`
	Type    string   `xml:"type,attr"` // always "membershipack"
	Op      string   `xml:"op,attr"`
	Upper   string   `xml:"upper"`
}

// NewMembershipAck builds an acknowledgement.
func NewMembershipAck(op, upper string) MembershipAck {
	return MembershipAck{Type: "membershipack", Op: op, Upper: upper}
}

// decodeMembershipKinds handles the membership kinds for Decode; ok
// reports whether the envelope matched one.
func decodeMembershipKinds(env envelope, data []byte) (interface{}, Kind, bool, error) {
	switch Kind(env.Type) {
	case KindMembership:
		var m Membership
		if err := xml.Unmarshal(data, &m); err != nil {
			return nil, "", true, fmt.Errorf("xmlmsg: decode membership: %w", err)
		}
		return &m, KindMembership, true, nil
	case KindMembershipAck:
		var m MembershipAck
		if err := xml.Unmarshal(data, &m); err != nil {
			return nil, "", true, fmt.Errorf("xmlmsg: decode membership ack: %w", err)
		}
		return &m, KindMembershipAck, true, nil
	}
	return nil, "", false, nil
}
