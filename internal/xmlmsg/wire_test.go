package xmlmsg

import (
	"strings"
	"testing"
)

func roundTrip(t *testing.T, v interface{}, wantKind Kind) interface{} {
	t.Helper()
	data, err := Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	back, kind, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if kind != wantKind {
		t.Fatalf("kind = %v, want %v", kind, wantKind)
	}
	return back
}

func TestServiceQueryRoundTrip(t *testing.T) {
	q := NewServiceQuery()
	got := roundTrip(t, q, KindQuery).(*Query)
	if got.What != "service" || got.Email != "" {
		t.Fatalf("query: %+v", got)
	}
}

func TestResultsQueryRoundTrip(t *testing.T) {
	q := NewResultsQuery("alice@grid")
	got := roundTrip(t, q, KindQuery).(*Query)
	if got.What != "results" || got.Email != "alice@grid" {
		t.Fatalf("query: %+v", got)
	}
}

func TestDispatchAckRoundTrip(t *testing.T) {
	ack := NewDispatchAck("S3", 42, 7001, 123, 2, true)
	got := roundTrip(t, ack, KindDispatch).(*DispatchAck)
	if got.Resource != "S3" || got.TaskID != 42 || got.ReqID != 7001 || got.Hops != 2 || !got.Fallback {
		t.Fatalf("ack: %+v", got)
	}
	eta, err := got.EtaSeconds()
	if err != nil || eta != 123 {
		t.Fatalf("eta %v err %v", eta, err)
	}
}

type errFake struct{}

func (errFake) Error() string { return "synthetic failure" }

func TestErrorReplyRoundTrip(t *testing.T) {
	er := NewErrorReply(errFake{})
	got := roundTrip(t, er, KindError).(*ErrorReply)
	if !strings.Contains(got.Err().Error(), "synthetic failure") {
		t.Fatalf("error reply: %v", got.Err())
	}
}

func TestResultSetRoundTrip(t *testing.T) {
	rs := NewResultSet([]TaskResult{
		{App: "fft", TaskID: 1, Resource: "S1", NProc: 4,
			Start: FormatVirtual(10), End: FormatVirtual(20), Deadline: FormatVirtual(30),
			Met: true, Done: true, Email: "a@b"},
		{App: "cpi", TaskID: 2, Resource: "S1", NProc: 12,
			Start: FormatVirtual(5), End: FormatVirtual(50), Deadline: FormatVirtual(40)},
	})
	got := roundTrip(t, rs, KindResults).(*ResultSet)
	if len(got.Tasks) != 2 {
		t.Fatalf("%d tasks", len(got.Tasks))
	}
	first := got.Tasks[0]
	if first.App != "fft" || !first.Met || !first.Done || first.Email != "a@b" {
		t.Fatalf("first task: %+v", first)
	}
	end, err := first.EndSeconds()
	if err != nil || end != 20 {
		t.Fatalf("end %v err %v", end, err)
	}
	if got.Tasks[1].Met || got.Tasks[1].Done {
		t.Fatalf("second task flags: %+v", got.Tasks[1])
	}
}

func TestEmptyResultSetRoundTrip(t *testing.T) {
	got := roundTrip(t, NewResultSet(nil), KindResults).(*ResultSet)
	if len(got.Tasks) != 0 {
		t.Fatalf("tasks: %+v", got.Tasks)
	}
}

func TestWireRequestModeAndVisited(t *testing.T) {
	r := NewWireRequest(31, "jacobi", "mpi", 77, "u@g", ModeDirect, []string{"S1", "S2"})
	got := roundTrip(t, r, KindRequest).(*Request)
	if got.Mode != ModeDirect {
		t.Fatalf("mode %q", got.Mode)
	}
	if got.ReqID != 31 {
		t.Fatalf("reqid %d", got.ReqID)
	}
	if len(got.Visited) != 2 || got.Visited[0] != "S1" {
		t.Fatalf("visited %v", got.Visited)
	}
	if got.Application.Performance.ModelName != "jacobi" {
		t.Fatalf("model name %q", got.Application.Performance.ModelName)
	}
}

func TestDecodeExtendedMalformed(t *testing.T) {
	// Valid envelope types with bodies that cannot unmarshal into the
	// target structs are rejected.
	for _, data := range []string{
		`<agentgrid type="dispatch"><taskid>notanumber</taskid></agentgrid>`,
		`<agentgrid type="results"><task><id>x</id></task></agentgrid>`,
	} {
		if _, _, err := Decode([]byte(data)); err == nil {
			t.Errorf("malformed %q decoded", data)
		}
	}
}
