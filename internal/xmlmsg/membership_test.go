package xmlmsg

import (
	"reflect"
	"testing"
)

func TestMembershipXMLRoundTrip(t *testing.T) {
	for _, in := range []Membership{
		NewJoin("S13", "10.0.0.7", 4120),
		NewLeave("S9"),
	} {
		data, err := Marshal(in)
		if err != nil {
			t.Fatal(err)
		}
		back, kind, err := Decode(data)
		if err != nil || kind != KindMembership {
			t.Fatalf("decode: kind=%s err=%v", kind, err)
		}
		got := back.(*Membership)
		in.XMLName = got.XMLName
		if !reflect.DeepEqual(*got, in) {
			t.Fatalf("round trip:\n got %+v\nwant %+v", *got, in)
		}
	}
}

func TestMembershipAckXMLRoundTrip(t *testing.T) {
	in := NewMembershipAck(MembershipOpJoin, "S5")
	data, err := Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	back, kind, err := Decode(data)
	if err != nil || kind != KindMembershipAck {
		t.Fatalf("decode: kind=%s err=%v", kind, err)
	}
	got := back.(*MembershipAck)
	in.XMLName = got.XMLName
	if !reflect.DeepEqual(*got, in) {
		t.Fatalf("round trip:\n got %+v\nwant %+v", *got, in)
	}
}

func TestMembershipBinaryMatchesXML(t *testing.T) {
	for _, v := range []interface{}{
		NewJoin("S13", "10.0.0.7", 4120),
		NewLeave("S9"),
		NewMembershipAck(MembershipOpJoin, "S5"),
		NewMembershipAck(MembershipOpLeave, "S1"),
	} {
		xdata, err := Marshal(v)
		if err != nil {
			t.Fatal(err)
		}
		viaXML, _, err := Decode(xdata)
		if err != nil {
			t.Fatal(err)
		}
		bdata, err := MarshalBinary(v)
		if err != nil {
			t.Fatal(err)
		}
		viaBin, _, err := UnmarshalBinary(bdata)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(viaXML, viaBin) {
			t.Fatalf("codecs disagree:\n xml %+v\n bin %+v", viaXML, viaBin)
		}
	}
}
