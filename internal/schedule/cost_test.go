package schedule

import (
	"testing"

	"repro/internal/sim"
)

func TestCostMakespanTerm(t *testing.T) {
	tasks := makeTasks(1, 1e9)
	res := NewResource(1)
	sol := Solution{Order: []int{0}, Maps: []uint64{1}}
	s := Build(sol, tasks, res, 0, constPredictor(40))
	c := Cost(s, tasks, CostWeights{Makespan: 1}, true)
	if c.Makespan != 40 {
		t.Fatalf("makespan term = %v, want 40", c.Makespan)
	}
	if c.Combined != 40 {
		t.Fatalf("combined = %v, want 40 with only the makespan weighted", c.Combined)
	}
}

func TestCostContractPenalty(t *testing.T) {
	tasks := []Task{{ID: 0, Deadline: 5}, {ID: 1, Deadline: 25}}
	res := NewResource(1)
	sol := Solution{Order: []int{0, 1}, Maps: []uint64{1, 1}}
	s := Build(sol, tasks, res, 0, constPredictor(10))
	// Task 0 ends at 10 (5 late); task 1 ends at 20 (on time).
	c := Cost(s, tasks, DefaultWeights(), true)
	if c.ContractPen != 5 {
		t.Fatalf("contract penalty = %v, want 5", c.ContractPen)
	}
}

func TestCostIdleTimeMeasured(t *testing.T) {
	// Two nodes, one task on node 0 for 10s: node 1 idles the whole
	// horizon, node 0 none. Unweighted idle averaged per node = 5.
	tasks := makeTasks(1, 1e9)
	res := NewResource(2)
	sol := Solution{Order: []int{0}, Maps: []uint64{0b01}}
	s := Build(sol, tasks, res, 0, constPredictor(10))
	c := Cost(s, tasks, DefaultWeights(), false)
	if c.IdleRaw != 5 {
		t.Fatalf("raw idle = %v, want 5", c.IdleRaw)
	}
	if c.Idle != c.IdleRaw {
		t.Fatalf("unweighted idle %v != raw idle %v", c.Idle, c.IdleRaw)
	}
}

func TestCostFrontWeighting(t *testing.T) {
	// Horizon [0,20] on 2 nodes. Node 0 busy the whole horizon. Node 1
	// either idles [0,10] then works (early gap) or works then idles
	// [10,20] (late gap). Equal raw idle; the front-weighted idle must be
	// strictly larger for the early gap (§2.1: idle at the front of the
	// schedule is wasted first and least likely to be recovered).
	mk := func(start float64) *Schedule {
		return &Schedule{
			Items: []Placed{
				{TaskPos: 0, Mask: 0b01, Start: 0, End: 20},
				{TaskPos: 1, Mask: 0b10, Start: start, End: start + 10},
			},
			NodeBusy: []float64{20, start + 10},
			Makespan: 20,
			Base:     0,
		}
	}
	tasks := makeTasks(2, 1e9)
	w := CostWeights{Idle: 1}
	early := Cost(mk(10), tasks, w, true) // gap [0,10] before the task
	late := Cost(mk(0), tasks, w, true)   // gap [10,20] after the task
	if early.IdleRaw != late.IdleRaw {
		t.Fatalf("raw idle differs: %v vs %v", early.IdleRaw, late.IdleRaw)
	}
	if early.Idle <= late.Idle {
		t.Fatalf("front-weighted idle: early gap %v not penalised above late gap %v", early.Idle, late.Idle)
	}
	// Unweighted mode treats them identically.
	earlyU := Cost(mk(10), tasks, w, false)
	lateU := Cost(mk(0), tasks, w, false)
	if earlyU.Idle != lateU.Idle {
		t.Fatalf("unweighted idle differs: %v vs %v", earlyU.Idle, lateU.Idle)
	}
}

func TestCostWeightsCombine(t *testing.T) {
	s := &Schedule{
		Items:    []Placed{{TaskPos: 0, Mask: 1, Start: 0, End: 10}},
		NodeBusy: []float64{10},
		Makespan: 10,
	}
	tasks := []Task{{ID: 0, Deadline: 4}} // 6 late
	c := Cost(s, tasks, CostWeights{Makespan: 1, Idle: 1, Deadline: 2}, true)
	want := (1*10.0 + 1*0.0 + 2*6.0) / 4.0
	if c.Combined != want {
		t.Fatalf("combined = %v, want %v", c.Combined, want)
	}
}

func TestCostZeroWeightsDoNotDivideByZero(t *testing.T) {
	s := &Schedule{Items: nil, NodeBusy: []float64{0}, Makespan: 0}
	c := Cost(s, nil, CostWeights{}, true)
	if c.Combined != 0 {
		t.Fatalf("combined = %v for empty schedule with zero weights", c.Combined)
	}
}

func TestCostEmptySchedule(t *testing.T) {
	res := NewResource(4)
	s := Build(Solution{Order: []int{}, Maps: []uint64{}}, nil, res, 100, constPredictor(1))
	c := Cost(s, nil, DefaultWeights(), true)
	if c.Combined != 0 || c.Makespan != 0 || c.Idle != 0 {
		t.Fatalf("empty schedule cost = %+v, want zeros", c)
	}
}

func TestWeightedGapProperties(t *testing.T) {
	// Weight is in (1,2) and decreases towards the makespan.
	front := weightedGap(0, 10, 0, 100, true)
	back := weightedGap(90, 100, 0, 100, true)
	if front <= back {
		t.Fatalf("front gap weight %v <= back gap weight %v", front, back)
	}
	if front > 2*10 || back < 10 {
		t.Fatalf("gap weights out of [1,2] band: front=%v back=%v", front, back)
	}
	if got := weightedGap(5, 5, 0, 100, true); got != 0 {
		t.Fatalf("zero-length gap = %v", got)
	}
	if got := weightedGap(0, 10, 0, 100, false); got != 10 {
		t.Fatalf("unweighted gap = %v, want 10", got)
	}
	if got := weightedGap(0, 10, 0, 0, true); got != 10 {
		t.Fatalf("degenerate horizon gap = %v, want raw 10", got)
	}
}

// Integration: local search over the scheduling problem improves on random
// solutions, confirming the cost surface rewards balanced schedules.
func TestCostSurfaceRewardsBalance(t *testing.T) {
	tasks := makeTasks(8, 1e9)
	res := NewResource(4)
	p := NewProblem(tasks, res, 0, scalePredictor(40))
	rng := sim.NewRNG(12)

	randomBest := 1e18
	for i := 0; i < 200; i++ {
		if c := p.Cost(p.Random(rng)); c < randomBest {
			randomBest = c
		}
	}
	best := p.GreedySeed()
	bestCost := p.Cost(best)
	for gen := 0; gen < 400; gen++ {
		m := p.Mutate(best, rng)
		if c := p.Cost(m); c < bestCost {
			best, bestCost = m, c
		}
	}
	if bestCost > randomBest {
		t.Fatalf("hill-climb from greedy seed (%v) did not beat 200 random draws (%v)", bestCost, randomBest)
	}
}

func TestGreedySeedIsLegitimateAndReasonable(t *testing.T) {
	tasks := makeTasks(10, 1e9)
	res := NewResource(4)
	p := NewProblem(tasks, res, 0, scalePredictor(40))
	seed := p.GreedySeed()
	if err := seed.Validate(10, 4); err != nil {
		t.Fatalf("greedy seed invalid: %v", err)
	}
	s := Build(seed, tasks, res, 0, scalePredictor(40))
	// Perfectly scalable work: the serial bound is 10*40/4 = 100.
	if s.Makespan > 150 {
		t.Fatalf("greedy seed makespan %v is worse than plausible bounds", s.Makespan)
	}
}

func TestCheapestNodesPicksEarliest(t *testing.T) {
	busy := []float64{9, 2, 5, 7}
	mask, start := cheapestNodes(busy, 2, 0)
	if mask != 0b0110 { // nodes 1 and 2
		t.Fatalf("mask = %b, want 0110", mask)
	}
	if start != 5 {
		t.Fatalf("start = %v, want 5 (latest of chosen)", start)
	}
	_, start = cheapestNodes(busy, 1, 10)
	if start != 10 {
		t.Fatalf("floor not applied: start = %v", start)
	}
}
