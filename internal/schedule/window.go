package schedule

import "math/bits"

// Window is a half-open [Start, End) interval of reserved node time: an
// advance reservation holds its node set for exactly this span, and the
// schedule builder treats it as an immovable constraint — best-effort
// tasks are placed around it, never inside it. A zero-width window
// (Start == End) reserves nothing and conflicts with nothing.
type Window struct {
	Start float64
	End   float64
}

// Overlaps reports whether the window intersects the half-open interval
// [start, end). Empty intervals on either side intersect nothing.
func (w Window) Overlaps(start, end float64) bool {
	lo, hi := start, end
	if w.Start > lo {
		lo = w.Start
	}
	if w.End < hi {
		hi = w.End
	}
	return lo < hi
}

// AdjustStart pushes start forward until the interval [start, start+dur)
// clears every booked window on the nodes of mask, and returns the
// adjusted start. booked holds, per node, the reserved windows sorted by
// start and non-overlapping (Resource.Validate enforces this); nil or
// empty means no reservations and start is returned unchanged. The push
// runs to a fixed point: clearing a window on one node can land the
// interval inside a window on another, so nodes are re-scanned until no
// window moves the start. The loop terminates because each move advances
// start strictly to some window's End and there are finitely many.
//
// It is shared by the schedule builder and by policies that project node
// availability themselves (the FIFO baseline's allocation search).
func AdjustStart(booked [][]Window, mask uint64, start, dur float64) float64 {
	if len(booked) == 0 {
		return start
	}
	for {
		moved := false
		for m := mask; m != 0; m &= m - 1 {
			i := bits.TrailingZeros64(m)
			if i >= len(booked) {
				break
			}
			for _, w := range booked[i] {
				if w.Start >= start+dur {
					break // sorted by start: nothing later can overlap
				}
				if w.Overlaps(start, start+dur) {
					start = w.End
					moved = true
				}
			}
		}
		if !moved {
			return start
		}
	}
}
