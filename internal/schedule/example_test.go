package schedule_test

import (
	"fmt"

	"repro/internal/pace"
	"repro/internal/schedule"
)

// Build times a two-part solution string against a resource: tasks run in
// the ordering part's sequence, each on the node set its mapping part
// allocates, starting in unison when all of those nodes are free.
func ExampleBuild() {
	tasks := []schedule.Task{
		{ID: 1, Deadline: 100},
		{ID: 2, Deadline: 100},
		{ID: 3, Deadline: 100},
	}
	sol := schedule.Solution{
		Order: []int{0, 1, 2},
		Maps:  []uint64{0b11, 0b10, 0b01}, // task 1 on both nodes, 2 and 3 on one each
	}
	tenSeconds := func(*pace.AppModel, int) float64 { return 10 }
	s := schedule.Build(sol, tasks, schedule.NewResource(2), 0, tenSeconds)
	for _, it := range s.Items {
		fmt.Printf("task %d: nodes %v, [%g, %g]\n", tasks[it.TaskPos].ID, it.Nodes(), it.Start, it.End)
	}
	fmt.Printf("makespan %g\n", s.Makespan)
	// Output:
	// task 1: nodes [0 1], [0, 10]
	// task 2: nodes [1], [10, 20]
	// task 3: nodes [0], [10, 20]
	// makespan 20
}

// The combined cost of eq. 8 weighs makespan, front-weighted idle time
// and deadline overruns.
func ExampleCost() {
	tasks := []schedule.Task{{ID: 1, Deadline: 6}}
	sol := schedule.Solution{Order: []int{0}, Maps: []uint64{0b01}}
	tenSeconds := func(*pace.AppModel, int) float64 { return 10 }
	s := schedule.Build(sol, tasks, schedule.NewResource(2), 0, tenSeconds)

	c := schedule.Cost(s, tasks, schedule.CostWeights{Makespan: 1, Idle: 1, Deadline: 1}, false)
	fmt.Printf("makespan %g, idle %g, contract penalty %g, combined %g\n",
		c.Makespan, c.Idle, c.ContractPen, c.Combined)
	// Output:
	// makespan 10, idle 5, contract penalty 4, combined 6.333333333333333
}
