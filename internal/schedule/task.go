// Package schedule implements the task scheduling model of §2.1: parallel
// tasks with PACE application models and deadlines, schedules that allocate
// a set of homogeneous processing nodes and a unison start time to each
// task, the two-part solution coding scheme of Fig. 2 with its specialised
// crossover and mutation operators, and the combined cost function of
// eq. 8 (makespan, front-weighted idle time and deadline contract penalty).
package schedule

import (
	"fmt"

	"repro/internal/pace"
)

// MaxNodes bounds the node count of a single local grid resource; node
// sets are stored as bitmasks in a uint64. The case study uses 16 nodes
// per resource.
const MaxNodes = 64

// Task is one T_j of the model: a parallel application with a performance
// model σ_j, an arrival time, and a user-required execution deadline δ_j
// (absolute virtual time).
type Task struct {
	ID       int    // scheduler-local ID, unique per resource only
	ReqID    uint64 // grid-wide request identity; 0 outside a grid run
	App      *pace.AppModel
	Arrival  float64
	Deadline float64
}

func (t Task) String() string {
	app := "<nil>"
	if t.App != nil {
		app = t.App.Name
	}
	return fmt.Sprintf("task{#%d %s arrival=%g deadline=%g}", t.ID, app, t.Arrival, t.Deadline)
}

// Predictor supplies t_x(ρ_j, σ_j): the predicted execution time of an
// application on nprocs homogeneous nodes of the local resource. In the
// full system this is the PACE evaluation engine specialised to the
// resource's hardware model.
type Predictor func(app *pace.AppModel, nprocs int) float64

// Resource is the node pool visible to one scheduling decision: the number
// of nodes and each node's earliest availability (absolute virtual time,
// i.e. when the tasks already committed to it finish).
type Resource struct {
	NumNodes int
	Avail    []float64
	// Booked lists, per node, the advance-reservation windows the
	// schedule must leave untouched: best-effort tasks are placed around
	// them (see AdjustStart) and the booked time does not count as idle
	// in the cost function. Each node's windows are sorted by start and
	// non-overlapping. nil — the default, and the only state reachable
	// without the reservation subsystem — changes nothing.
	Booked [][]Window
}

// NewResource returns a resource whose nodes are all free at time 0.
func NewResource(numNodes int) Resource {
	if numNodes < 1 || numNodes > MaxNodes {
		panic(fmt.Sprintf("schedule: node count %d outside [1, %d]", numNodes, MaxNodes))
	}
	return Resource{NumNodes: numNodes, Avail: make([]float64, numNodes)}
}

// Clone returns an independent copy of the resource.
func (r Resource) Clone() Resource {
	avail := make([]float64, len(r.Avail))
	copy(avail, r.Avail)
	var booked [][]Window
	if r.Booked != nil {
		booked = make([][]Window, len(r.Booked))
		for i, ws := range r.Booked {
			booked[i] = append([]Window(nil), ws...)
		}
	}
	return Resource{NumNodes: r.NumNodes, Avail: avail, Booked: booked}
}

// Validate checks internal consistency.
func (r Resource) Validate() error {
	if r.NumNodes < 1 || r.NumNodes > MaxNodes {
		return fmt.Errorf("schedule: node count %d outside [1, %d]", r.NumNodes, MaxNodes)
	}
	if len(r.Avail) != r.NumNodes {
		return fmt.Errorf("schedule: %d availability entries for %d nodes", len(r.Avail), r.NumNodes)
	}
	if r.Booked != nil {
		if len(r.Booked) != r.NumNodes {
			return fmt.Errorf("schedule: %d booked-window lists for %d nodes", len(r.Booked), r.NumNodes)
		}
		for i, ws := range r.Booked {
			for k, w := range ws {
				if w.End < w.Start {
					return fmt.Errorf("schedule: node %d window %d ends (%g) before it starts (%g)", i, k, w.End, w.Start)
				}
				if k > 0 && w.Start < ws[k-1].End {
					return fmt.Errorf("schedule: node %d windows %d and %d overlap or are unsorted", i, k-1, k)
				}
			}
		}
	}
	return nil
}

// EarliestAvail returns the smallest availability across nodes.
func (r Resource) EarliestAvail() float64 {
	if len(r.Avail) == 0 {
		return 0
	}
	min := r.Avail[0]
	for _, a := range r.Avail[1:] {
		if a < min {
			min = a
		}
	}
	return min
}

// LatestAvail returns the largest availability across nodes: the earliest
// time at which every node is free, which is the ω freetime the local
// scheduler advertises to its agent (§3.2).
func (r Resource) LatestAvail() float64 {
	var max float64
	for _, a := range r.Avail {
		if a > max {
			max = a
		}
	}
	return max
}
