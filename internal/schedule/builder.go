package schedule

import (
	"fmt"
	"math/bits"
)

// Placed records one task's slot in a built schedule: the allocated node
// set ρ_j, the unison start time τ_j and the completion time η_j = τ_j +
// t_x(ρ_j, σ_j) (eq. 6).
type Placed struct {
	TaskPos int // position of the task in the task slice
	Mask    uint64
	Start   float64
	End     float64
}

// Nodes returns the allocated node indices in ascending order.
func (p Placed) Nodes() []int {
	out := make([]int, 0, bits.OnesCount64(p.Mask))
	for m := p.Mask; m != 0; {
		i := bits.TrailingZeros64(m)
		out = append(out, i)
		m &= m - 1
	}
	return out
}

// Schedule is a fully timed allocation of tasks to nodes.
type Schedule struct {
	Items    []Placed  // one per task, in execution order
	NodeBusy []float64 // per-node availability after the schedule
	Makespan float64   // ω: the latest completion time (eq. 7), absolute
	Base     float64   // the scheduling instant the schedule was built at

	// Booked aliases the resource's reservation windows the schedule was
	// built around, so Cost can discount booked time from the idle terms
	// (reserved time is sold, not wasted). nil without reservations.
	Booked [][]Window

	byTask []int32 // lazy TaskPos -> Items index (+1, 0 = absent)
}

// ItemFor returns the placement of the task at taskPos. The first call
// builds a position index over Items, making subsequent lookups O(1) —
// the executor resolves every task through here. Items must not be
// mutated once ItemFor has been called.
func (s *Schedule) ItemFor(taskPos int) (Placed, bool) {
	if s.byTask == nil {
		max := -1
		for _, it := range s.Items {
			if it.TaskPos > max {
				max = it.TaskPos
			}
		}
		idx := make([]int32, max+1)
		for i, it := range s.Items {
			idx[it.TaskPos] = int32(i) + 1
		}
		s.byTask = idx
	}
	if taskPos < 0 || taskPos >= len(s.byTask) || s.byTask[taskPos] == 0 {
		return Placed{}, false
	}
	return s.Items[s.byTask[taskPos]-1], true
}

// Build times a solution against the tasks and resource. Tasks are placed
// in the solution's order; each task starts at the latest availability of
// its allocated nodes (the nodes begin "in unison", §2.1) and no earlier
// than base (the scheduling instant) or its own arrival. Build panics on
// an illegitimate solution; genetic operators maintain legitimacy, so a
// violation is a programming error.
func Build(sol Solution, tasks []Task, res Resource, base float64, predict Predictor) *Schedule {
	return build(sol, tasks, res, base, predict, false)
}

// BuildSequential is Build with strict queue semantics: start times are
// non-decreasing in the solution's order, i.e. a task cannot begin before
// the task ahead of it in the queue has begun (no backfilling). This is
// the behaviour of the FIFO baseline: it "does not change the order of
// tasks" (§4.1), so a wide task at the head of the queue holds narrower
// tasks behind it — exactly the idle time the GA's reordering recovers.
func BuildSequential(sol Solution, tasks []Task, res Resource, base float64, predict Predictor) *Schedule {
	return build(sol, tasks, res, base, predict, true)
}

func build(sol Solution, tasks []Task, res Resource, base float64, predict Predictor, sequential bool) *Schedule {
	if err := sol.Validate(len(tasks), res.NumNodes); err != nil {
		panic(fmt.Sprintf("schedule: Build on invalid solution: %v", err))
	}
	if err := res.Validate(); err != nil {
		panic(fmt.Sprintf("schedule: Build on invalid resource: %v", err))
	}
	out := &Schedule{
		Items:    make([]Placed, 0, len(tasks)),
		NodeBusy: make([]float64, res.NumNodes),
		Base:     base,
		Booked:   res.Booked,
	}
	out.Makespan = buildInto(out, sol, tasks, res, base, predict, sequential)
	return out
}

// buildInto runs the placement loop of eq. 6 against the schedule's
// pre-sized Items and NodeBusy buffers and returns the makespan. It is
// the allocation-free core shared by Build and Builder.Build; validation
// is the caller's responsibility.
func buildInto(out *Schedule, sol Solution, tasks []Task, res Resource, base float64, predict Predictor, sequential bool) float64 {
	busy := out.NodeBusy
	copy(busy, res.Avail)
	makespan := base
	for _, a := range busy {
		if a > makespan {
			makespan = a
		}
	}

	prevStart := base
	for _, taskPos := range sol.Order {
		t := tasks[taskPos]
		mask := sol.Maps[taskPos]
		start := base
		if t.Arrival > start {
			start = t.Arrival
		}
		if sequential && prevStart > start {
			start = prevStart
		}
		for m := mask; m != 0; {
			i := bits.TrailingZeros64(m)
			if busy[i] > start {
				start = busy[i]
			}
			m &= m - 1
		}
		dur := predict(t.App, bits.OnesCount64(mask))
		if dur < 0 {
			panic(fmt.Sprintf("schedule: negative predicted duration %g for %s", dur, t))
		}
		if res.Booked != nil {
			// Reservations are immovable: push the task past any booked
			// window it would overlap on its allocated nodes.
			start = AdjustStart(res.Booked, mask, start, dur)
		}
		end := start + dur
		for m := mask; m != 0; {
			i := bits.TrailingZeros64(m)
			busy[i] = end
			m &= m - 1
		}
		if end > makespan {
			makespan = end
		}
		out.Items = append(out.Items, Placed{TaskPos: taskPos, Mask: mask, Start: start, End: end})
		prevStart = start
	}
	return makespan
}

// Builder repeatedly times solutions against one fixed problem instance
// (tasks, resource, predictor) without per-call allocation: the schedule,
// its placement list and the per-node busy vector are scratch buffers
// reused across calls. This is the GA's cost hot path — the paper's own
// cost argument (§2.2) makes every scheduling event worth ~1000 builds —
// so the per-Build garbage of the general entry point matters.
//
// Validation is hoisted to construction: NewBuilder checks the resource
// once, and Build trusts the solution (the genetic operators maintain
// legitimacy; validate seeds once per Plan with Solution.Validate). A
// Builder is not safe for concurrent use; use one per goroutine.
type Builder struct {
	tasks   []Task
	res     Resource
	predict Predictor
	sched   Schedule
}

// NewBuilder validates the resource once and returns a builder for the
// problem instance.
func NewBuilder(tasks []Task, res Resource, predict Predictor) (*Builder, error) {
	if err := res.Validate(); err != nil {
		return nil, err
	}
	if predict == nil {
		return nil, fmt.Errorf("schedule: builder needs a predictor")
	}
	return &Builder{
		tasks:   tasks,
		res:     res,
		predict: predict,
		sched: Schedule{
			Items:    make([]Placed, 0, len(tasks)),
			NodeBusy: make([]float64, res.NumNodes),
			Booked:   res.Booked,
		},
	}, nil
}

// Build times sol at the scheduling instant base. The returned schedule
// aliases the builder's scratch buffers: it is valid only until the next
// Build call and must be copied (or rebuilt via the package-level Build)
// if it is to be retained. sol must be legitimate for the builder's
// problem instance; Build does not re-validate it.
func (b *Builder) Build(sol Solution, base float64) *Schedule {
	b.sched.Items = b.sched.Items[:0]
	b.sched.Base = base
	b.sched.byTask = nil
	b.sched.Makespan = buildInto(&b.sched, sol, b.tasks, b.res, base, b.predict, false)
	return &b.sched
}
