package schedule

import (
	"fmt"
	"math/bits"
)

// Placed records one task's slot in a built schedule: the allocated node
// set ρ_j, the unison start time τ_j and the completion time η_j = τ_j +
// t_x(ρ_j, σ_j) (eq. 6).
type Placed struct {
	TaskPos int // position of the task in the task slice
	Mask    uint64
	Start   float64
	End     float64
}

// Nodes returns the allocated node indices in ascending order.
func (p Placed) Nodes() []int {
	out := make([]int, 0, bits.OnesCount64(p.Mask))
	for m := p.Mask; m != 0; {
		i := bits.TrailingZeros64(m)
		out = append(out, i)
		m &= m - 1
	}
	return out
}

// Schedule is a fully timed allocation of tasks to nodes.
type Schedule struct {
	Items    []Placed  // one per task, in execution order
	NodeBusy []float64 // per-node availability after the schedule
	Makespan float64   // ω: the latest completion time (eq. 7), absolute
	Base     float64   // the scheduling instant the schedule was built at
}

// ItemFor returns the placement of the task at taskPos.
func (s *Schedule) ItemFor(taskPos int) (Placed, bool) {
	for _, it := range s.Items {
		if it.TaskPos == taskPos {
			return it, true
		}
	}
	return Placed{}, false
}

// Build times a solution against the tasks and resource. Tasks are placed
// in the solution's order; each task starts at the latest availability of
// its allocated nodes (the nodes begin "in unison", §2.1) and no earlier
// than base (the scheduling instant) or its own arrival. Build panics on
// an illegitimate solution; genetic operators maintain legitimacy, so a
// violation is a programming error.
func Build(sol Solution, tasks []Task, res Resource, base float64, predict Predictor) *Schedule {
	return build(sol, tasks, res, base, predict, false)
}

// BuildSequential is Build with strict queue semantics: start times are
// non-decreasing in the solution's order, i.e. a task cannot begin before
// the task ahead of it in the queue has begun (no backfilling). This is
// the behaviour of the FIFO baseline: it "does not change the order of
// tasks" (§4.1), so a wide task at the head of the queue holds narrower
// tasks behind it — exactly the idle time the GA's reordering recovers.
func BuildSequential(sol Solution, tasks []Task, res Resource, base float64, predict Predictor) *Schedule {
	return build(sol, tasks, res, base, predict, true)
}

func build(sol Solution, tasks []Task, res Resource, base float64, predict Predictor, sequential bool) *Schedule {
	if err := sol.Validate(len(tasks), res.NumNodes); err != nil {
		panic(fmt.Sprintf("schedule: Build on invalid solution: %v", err))
	}
	if err := res.Validate(); err != nil {
		panic(fmt.Sprintf("schedule: Build on invalid resource: %v", err))
	}

	busy := make([]float64, res.NumNodes)
	copy(busy, res.Avail)
	out := &Schedule{
		Items:    make([]Placed, 0, len(tasks)),
		NodeBusy: busy,
		Base:     base,
	}
	makespan := base
	for _, a := range busy {
		if a > makespan {
			makespan = a
		}
	}

	prevStart := base
	for _, taskPos := range sol.Order {
		t := tasks[taskPos]
		mask := sol.Maps[taskPos]
		start := base
		if t.Arrival > start {
			start = t.Arrival
		}
		if sequential && prevStart > start {
			start = prevStart
		}
		for m := mask; m != 0; {
			i := bits.TrailingZeros64(m)
			if busy[i] > start {
				start = busy[i]
			}
			m &= m - 1
		}
		dur := predict(t.App, bits.OnesCount64(mask))
		if dur < 0 {
			panic(fmt.Sprintf("schedule: negative predicted duration %g for %s", dur, t))
		}
		end := start + dur
		for m := mask; m != 0; {
			i := bits.TrailingZeros64(m)
			busy[i] = end
			m &= m - 1
		}
		if end > makespan {
			makespan = end
		}
		out.Items = append(out.Items, Placed{TaskPos: taskPos, Mask: mask, Start: start, End: end})
		prevStart = start
	}
	out.Makespan = makespan
	return out
}
