package schedule

import (
	"strings"
	"testing"

	"repro/internal/pace"
)

// TestGanttFig2Example reproduces the shape of Fig. 2: six tasks on five
// processors with the ordering 3 5 2 1 6 4 and explicit node maps.
func TestGanttFig2Example(t *testing.T) {
	// Fig. 2 maps (nodes P1..P5 encoded as bits 0..4, leftmost digit of
	// the figure's string = P1): task3=11010, task5=01010, task2=11110,
	// task1=01000, task6=10111, task4=01001.
	parse := func(s string) uint64 {
		var m uint64
		for i, c := range s {
			if c == '1' {
				m |= 1 << uint(i)
			}
		}
		return m
	}
	// Task positions 0..5 represent tasks #1..#6.
	maps := []uint64{
		parse("01000"), // task #1
		parse("11110"), // task #2
		parse("11010"), // task #3
		parse("01001"), // task #4
		parse("01010"), // task #5
		parse("10111"), // task #6
	}
	order := []int{2, 4, 1, 0, 5, 3} // task ordering 3 5 2 1 6 4, base-0
	sol := Solution{Order: order, Maps: maps}
	if err := sol.Validate(6, 5); err != nil {
		t.Fatal(err)
	}
	tasks := makeTasks(6, 1e9)
	s := Build(sol, tasks, NewResource(5), 0, constPredictor(10))
	out := Gantt(s, 60)

	// Five processor rows, highest processor first.
	for _, want := range []string{"P5 ", "P4 ", "P3 ", "P2 ", "P1 ", "makespan"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Gantt output missing %q:\n%s", want, out)
		}
	}
	// Task #3 runs first on P1 (bit 0), so row P1 begins with glyph '3'.
	lines := strings.Split(out, "\n")
	var p1 string
	for _, l := range lines {
		if strings.HasPrefix(l, "P1 ") {
			p1 = l
		}
	}
	if !strings.Contains(p1, "|3") {
		t.Fatalf("P1 row does not start with task 3:\n%s", out)
	}
}

func TestGanttEmptySchedule(t *testing.T) {
	s := Build(Solution{Order: []int{}, Maps: []uint64{}}, nil, NewResource(2), 0, constPredictor(1))
	out := Gantt(s, 20)
	if !strings.Contains(out, "P1") || !strings.Contains(out, "P2") {
		t.Fatalf("empty Gantt missing processor rows:\n%s", out)
	}
}

func TestGanttMinimumWidth(t *testing.T) {
	tasks := makeTasks(1, 1e9)
	s := Build(Solution{Order: []int{0}, Maps: []uint64{1}}, tasks, NewResource(1), 0, constPredictor(5))
	out := Gantt(s, 1) // clamped up to 10
	if !strings.Contains(out, strings.Repeat("1", 10)) {
		t.Fatalf("minimum-width Gantt wrong:\n%s", out)
	}
}

func TestTaskGlyph(t *testing.T) {
	if taskGlyph(0) != '1' || taskGlyph(8) != '9' {
		t.Fatal("digit glyphs wrong")
	}
	if taskGlyph(9) != 'a' || taskGlyph(34) != 'z' {
		t.Fatal("letter glyphs wrong")
	}
	if taskGlyph(35) != '#' || taskGlyph(1000) != '#' {
		t.Fatal("overflow glyph wrong")
	}
}

func TestGanttShortTaskStillVisible(t *testing.T) {
	// A task much shorter than one cell must still occupy one column.
	tasks := makeTasks(2, 1e9)
	sol := Solution{Order: []int{0, 1}, Maps: []uint64{0b01, 0b10}}
	durs := []float64{0.01, 100}
	i := 0
	s := Build(sol, tasks, NewResource(2), 0, func(_ *pace.AppModel, _ int) float64 {
		d := durs[i]
		i++
		return d
	})
	out := Gantt(s, 50)
	if !strings.Contains(out, "|1") {
		t.Fatalf("sub-cell task invisible:\n%s", out)
	}
}
