package schedule

import (
	"fmt"
	"math/bits"
	"strings"
)

// Gantt renders a built schedule as an ASCII chart in the style of Fig. 2:
// one row per processor, time flowing left to right, each cell showing the
// task occupying that node (by task position, rendered base-1 to match the
// figure) or '.' for idle. width is the number of character columns used
// for the time axis.
func Gantt(s *Schedule, width int) string {
	if width < 10 {
		width = 10
	}
	n := len(s.NodeBusy)
	span := s.Makespan - s.Base
	if span <= 0 {
		span = 1
	}
	cell := span / float64(width)

	rows := make([][]byte, n)
	for i := range rows {
		rows[i] = []byte(strings.Repeat(".", width))
	}
	for _, it := range s.Items {
		label := taskGlyph(it.TaskPos)
		from := int((it.Start - s.Base) / cell)
		to := int((it.End - s.Base) / cell)
		if to <= from {
			to = from + 1
		}
		if to > width {
			to = width
		}
		for m := it.Mask; m != 0; m &= m - 1 {
			node := bits.TrailingZeros64(m)
			if node >= n {
				continue
			}
			for c := from; c < to; c++ {
				rows[node][c] = label
			}
		}
	}

	var b strings.Builder
	fmt.Fprintf(&b, "time %.1f .. %.1f (makespan %.1f)\n", s.Base, s.Makespan, s.Makespan-s.Base)
	for i := n - 1; i >= 0; i-- {
		fmt.Fprintf(&b, "P%-2d |%s|\n", i+1, rows[i])
	}
	b.WriteString("    +" + strings.Repeat("-", width) + "+ time ->")
	return b.String()
}

// taskGlyph maps a task position to a display character: 1-9, then a-z,
// then '#' for anything beyond.
func taskGlyph(pos int) byte {
	switch {
	case pos < 9:
		return byte('1' + pos)
	case pos < 9+26:
		return byte('a' + pos - 9)
	default:
		return '#'
	}
}
