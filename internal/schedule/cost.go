package schedule

// CostWeights are the W_m, W_i, W_c of eq. 8, weighting makespan ω,
// weighted idle time φ and contract (deadline) penalty θ in the combined
// cost. The paper leaves the values unspecified; DefaultWeights biases
// towards meeting deadlines, matching the stated goal of minimising
// makespan and idle time "whilst meeting the deadlines set for each task".
type CostWeights struct {
	Makespan float64 // W_m
	Idle     float64 // W_i
	Deadline float64 // W_c
}

// DefaultWeights returns the weights used by the case study. The idle
// weight dominates the makespan weight so the GA prefers keeping nodes
// busy (wider allocations, denser packing) over shaving the horizon —
// the balance that reproduces the paper's utilisation gains in
// experiment 2 (see the idle-weighting ablation bench).
func DefaultWeights() CostWeights {
	return CostWeights{Makespan: 1, Idle: 3, Deadline: 2}
}

// CostBreakdown exposes the individual metrics behind a combined cost,
// for diagnostics and the idle-weighting ablation.
type CostBreakdown struct {
	Makespan    float64 // ω_k relative to the scheduling instant
	Idle        float64 // φ_k: front-weighted idle time, averaged per node
	IdleRaw     float64 // unweighted idle time, averaged per node
	ContractPen float64 // θ_k: total deadline overrun in task-seconds
	Combined    float64 // f_c of eq. 8
}

// Cost evaluates the combined cost function (eq. 8) for a built schedule:
//
//	f_c = (W_m·ω + W_i·φ + W_c·θ) / (W_m + W_i + W_c)
//
// ω is the makespan measured from the scheduling instant. φ is the
// weighted idle time: idle at the front of the schedule is "particularly
// undesirable" (§2.1) because it is wasted first and least likely to be
// recovered, so a pocket of idle time occupying [a, b] within the horizon
// [base, makespan] is weighted linearly from 2 (at the front) down to 1
// (at the makespan). θ is the contract penalty: the total amount by which
// task completions overrun their deadlines. φ is averaged over nodes so
// all three terms share seconds as their unit.
func Cost(s *Schedule, tasks []Task, w CostWeights, frontWeighted bool) CostBreakdown {
	var out CostBreakdown
	out.Makespan = s.Makespan - s.Base
	if out.Makespan < 0 {
		out.Makespan = 0
	}

	// Walk each node's busy intervals directly off the placement list
	// instead of materialising per-node interval slices: this is the GA's
	// cost hot path, called once per fitness evaluation, and the O(nodes ×
	// items) scan is allocation-free. The traversal order (node-major,
	// items in placement order) matches the interval-list formulation
	// exactly, so the floating-point accumulation is bit-identical.
	n := len(s.NodeBusy)
	horizon := s.Makespan - s.Base
	var idleW, idleRaw float64
	for i := 0; i < n; i++ {
		// Items are appended in execution order; on a single node their
		// intervals are non-overlapping and start-sorted because each
		// placement pushes the node's availability forward.
		bit := uint64(1) << uint(i)
		var booked []Window
		if s.Booked != nil && i < len(s.Booked) {
			booked = s.Booked[i]
		}
		cursor := s.Base
		for _, it := range s.Items {
			if it.Mask&bit == 0 {
				continue
			}
			if it.Start > cursor {
				r, w := gapCost(cursor, it.Start, booked, s.Base, horizon, frontWeighted)
				idleRaw += r
				idleW += w
			}
			if it.End > cursor {
				cursor = it.End
			}
		}
		if s.Makespan > cursor {
			r, w := gapCost(cursor, s.Makespan, booked, s.Base, horizon, frontWeighted)
			idleRaw += r
			idleW += w
		}
	}
	if n > 0 {
		out.Idle = idleW / float64(n)
		out.IdleRaw = idleRaw / float64(n)
	}

	for _, it := range s.Items {
		if d := tasks[it.TaskPos].Deadline; it.End > d {
			out.ContractPen += it.End - d
		}
	}

	den := w.Makespan + w.Idle + w.Deadline
	if den <= 0 {
		den = 1
	}
	out.Combined = (w.Makespan*out.Makespan + w.Idle*out.Idle + w.Deadline*out.ContractPen) / den
	return out
}

// gapCost accounts the gap [a, b] on one node as idle time, minus any
// reserved windows inside it: booked time is sold to a reservation
// holder, so charging the scheduler idle-time cost for it would punish
// exactly the plans that correctly leave it free. With no booked windows
// (the only state without the reservation subsystem) it reduces to the
// single weightedGap accumulation and is bit-identical to it.
func gapCost(a, b float64, booked []Window, base, horizon float64, frontWeighted bool) (raw, weighted float64) {
	if len(booked) == 0 {
		return b - a, weightedGap(a, b, base, horizon, frontWeighted)
	}
	cur := a
	for _, w := range booked {
		if w.Start >= b {
			break
		}
		if !w.Overlaps(cur, b) {
			continue
		}
		if w.Start > cur {
			raw += w.Start - cur
			weighted += weightedGap(cur, w.Start, base, horizon, frontWeighted)
		}
		if w.End > cur {
			cur = w.End
		}
		if cur >= b {
			return raw, weighted
		}
	}
	raw += b - cur
	weighted += weightedGap(cur, b, base, horizon, frontWeighted)
	return raw, weighted
}

// weightedGap integrates the idle weight over the gap [a, b]. With front
// weighting the weight decreases linearly from 2 at the schedule base to 1
// at the makespan; without it the weight is uniformly 1 (the ablation
// baseline).
func weightedGap(a, b, base, horizon float64, frontWeighted bool) float64 {
	d := b - a
	if d <= 0 {
		return 0
	}
	if !frontWeighted || horizon <= 0 {
		return d
	}
	mid := (a+b)/2 - base
	w := 2 - mid/horizon // linear from 2 (front) to 1 (makespan)
	return d * w
}
