package schedule

import (
	"fmt"
	"math/bits"
	"sync"

	"repro/internal/sim"
)

// Problem adapts the scheduling model to the generic GA engine: genomes
// are two-part Solutions, the cost is eq. 8 evaluated on the built
// schedule. It implements ga.Problem[Solution].
//
// Cost is safe for concurrent use (the parallel GA evaluates the
// population on a worker pool): each call borrows a scratch Builder from
// an internal pool, so concurrent evaluations never share buffers. Use
// Problem by pointer only — the pool must not be copied.
type Problem struct {
	Tasks         []Task
	Res           Resource
	Base          float64 // the scheduling instant
	Predict       Predictor
	Weights       CostWeights
	FrontWeighted bool // front-weighted idle time (§2.1); ablation knob

	builders sync.Pool // *Builder scratch, one per concurrent Cost call
}

// NewProblem returns a Problem with default weights and front-weighted
// idle time enabled.
func NewProblem(tasks []Task, res Resource, base float64, predict Predictor) *Problem {
	return &Problem{
		Tasks:         tasks,
		Res:           res,
		Base:          base,
		Predict:       predict,
		Weights:       DefaultWeights(),
		FrontWeighted: true,
	}
}

// Random returns a uniformly random legitimate solution.
func (p *Problem) Random(rng *sim.RNG) Solution {
	return NewRandomSolution(len(p.Tasks), p.Res.NumNodes, rng)
}

// Crossover applies the two-part crossover of §2.1.
func (p *Problem) Crossover(a, b Solution, rng *sim.RNG) (Solution, Solution) {
	return Crossover(a, b, p.Res.NumNodes, rng)
}

// Mutate applies the two-part mutation of §2.1.
func (p *Problem) Mutate(g Solution, rng *sim.RNG) Solution {
	return Mutate(g, p.Res.NumNodes, rng)
}

// Cost builds the genome's schedule and evaluates eq. 8. Solution
// validation is hoisted out of this inner loop: the genetic operators
// maintain legitimacy, so only externally supplied solutions (seeds) need
// a Solution.Validate, once per Plan, not once per cost evaluation.
func (p *Problem) Cost(g Solution) float64 {
	b, _ := p.builders.Get().(*Builder)
	if b == nil {
		var err error
		b, err = NewBuilder(p.Tasks, p.Res, p.Predict)
		if err != nil {
			panic(fmt.Sprintf("schedule: Cost on invalid problem: %v", err))
		}
	}
	s := b.Build(g, p.Base)
	c := Cost(s, p.Tasks, p.Weights, p.FrontWeighted).Combined
	p.builders.Put(b)
	return c
}

// Clone deep-copies a genome.
func (p *Problem) Clone(g Solution) Solution { return g.Clone() }

// GreedySeed constructs a reasonable initial solution: tasks in arrival
// order, each allocated the node count that minimises its own completion
// time on the currently-best nodes. It gives the GA population a
// list-scheduling baseline to improve on and is also the shape of
// solution the previous scheduling round's best maps onto after task
// arrivals and departures.
func (p *Problem) GreedySeed() Solution {
	n := len(p.Tasks)
	sol := Solution{Order: make([]int, n), Maps: make([]uint64, n)}
	busy := make([]float64, p.Res.NumNodes)
	copy(busy, p.Res.Avail)
	for i := range sol.Order {
		sol.Order[i] = i
	}
	for _, taskPos := range sol.Order {
		t := p.Tasks[taskPos]
		bestMask, bestEnd := uint64(0), 0.0
		for k := 1; k <= p.Res.NumNodes; k++ {
			mask, start := cheapestNodes(busy, k, maxf(p.Base, t.Arrival))
			end := start + p.Predict(t.App, k)
			if bestMask == 0 || end < bestEnd {
				bestMask, bestEnd = mask, end
			}
		}
		sol.Maps[taskPos] = bestMask
		for m := bestMask; m != 0; m &= m - 1 {
			busy[bits.TrailingZeros64(m)] = bestEnd
		}
	}
	return sol
}

// cheapestNodes picks the k nodes with the earliest availability and
// returns their mask plus the unison start time (the latest availability
// among them, clamped below by floor).
func cheapestNodes(busy []float64, k int, floor float64) (uint64, float64) {
	type na struct {
		idx   int
		avail float64
	}
	nodes := make([]na, len(busy))
	for i, a := range busy {
		nodes[i] = na{i, a}
	}
	// Insertion sort: node counts are small (≤ 64) and this avoids
	// allocating a closure for sort.Slice in the hot seeding path.
	for i := 1; i < len(nodes); i++ {
		for j := i; j > 0 && (nodes[j].avail < nodes[j-1].avail ||
			(nodes[j].avail == nodes[j-1].avail && nodes[j].idx < nodes[j-1].idx)); j-- {
			nodes[j], nodes[j-1] = nodes[j-1], nodes[j]
		}
	}
	var mask uint64
	start := floor
	for i := 0; i < k; i++ {
		mask |= uint64(1) << uint(nodes[i].idx)
		if nodes[i].avail > start {
			start = nodes[i].avail
		}
	}
	return mask, start
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
