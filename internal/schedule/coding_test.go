package schedule

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func TestRandomSolutionIsLegitimate(t *testing.T) {
	rng := sim.NewRNG(1)
	for trial := 0; trial < 200; trial++ {
		nTasks := rng.IntIn(0, 20)
		nNodes := rng.IntIn(1, 16)
		s := NewRandomSolution(nTasks, nNodes, rng)
		if err := s.Validate(nTasks, nNodes); err != nil {
			t.Fatalf("trial %d (%d tasks, %d nodes): %v", trial, nTasks, nNodes, err)
		}
	}
}

func TestRandomSolution64Nodes(t *testing.T) {
	rng := sim.NewRNG(2)
	s := NewRandomSolution(5, 64, rng)
	if err := s.Validate(5, 64); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejectsBadSolutions(t *testing.T) {
	cases := []struct {
		name    string
		s       Solution
		wantSub string
	}{
		{"short order", Solution{Order: []int{0}, Maps: []uint64{1, 1}}, "sized"},
		{"oob position", Solution{Order: []int{0, 5}, Maps: []uint64{1, 1}}, "out of range"},
		{"negative position", Solution{Order: []int{0, -1}, Maps: []uint64{1, 1}}, "out of range"},
		{"duplicate position", Solution{Order: []int{1, 1}, Maps: []uint64{1, 1}}, "repeats"},
		{"empty map", Solution{Order: []int{0, 1}, Maps: []uint64{1, 0}}, "no nodes"},
		{"map outside pool", Solution{Order: []int{0, 1}, Maps: []uint64{1, 1 << 10}}, "outside"},
	}
	for _, c := range cases {
		if err := c.s.Validate(2, 4); err == nil || !strings.Contains(err.Error(), c.wantSub) {
			t.Errorf("%s: err = %v, want substring %q", c.name, err, c.wantSub)
		}
	}
}

func TestCloneIsIndependent(t *testing.T) {
	rng := sim.NewRNG(3)
	a := NewRandomSolution(6, 8, rng)
	b := a.Clone()
	b.Order[0], b.Order[1] = b.Order[1], b.Order[0]
	b.Maps[0] = 0xFF
	if a.Maps[0] == 0xFF && a.Order[0] == b.Order[0] {
		t.Fatal("clone shares storage with original")
	}
}

// Property: crossover of legitimate parents yields legitimate children and
// leaves the parents untouched.
func TestCrossoverPreservesLegitimacy(t *testing.T) {
	rng := sim.NewRNG(4)
	prop := func(nTasksRaw, nNodesRaw uint8) bool {
		nTasks := int(nTasksRaw)%15 + 1
		nNodes := int(nNodesRaw)%16 + 1
		a := NewRandomSolution(nTasks, nNodes, rng)
		b := NewRandomSolution(nTasks, nNodes, rng)
		aSnap, bSnap := a.Clone(), b.Clone()
		c, d := Crossover(a, b, nNodes, rng)
		if c.Validate(nTasks, nNodes) != nil || d.Validate(nTasks, nNodes) != nil {
			return false
		}
		return solutionsEqual(a, aSnap) && solutionsEqual(b, bSnap)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

func solutionsEqual(a, b Solution) bool {
	if len(a.Order) != len(b.Order) || len(a.Maps) != len(b.Maps) {
		return false
	}
	for i := range a.Order {
		if a.Order[i] != b.Order[i] {
			return false
		}
	}
	for i := range a.Maps {
		if a.Maps[i] != b.Maps[i] {
			return false
		}
	}
	return true
}

// Property: mutation yields a legitimate solution and leaves the input
// untouched.
func TestMutatePreservesLegitimacy(t *testing.T) {
	rng := sim.NewRNG(5)
	prop := func(nTasksRaw, nNodesRaw uint8) bool {
		nTasks := int(nTasksRaw)%15 + 1
		nNodes := int(nNodesRaw)%16 + 1
		a := NewRandomSolution(nTasks, nNodes, rng)
		snap := a.Clone()
		m := Mutate(a, nNodes, rng)
		return m.Validate(nTasks, nNodes) == nil && solutionsEqual(a, snap)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

func TestMutateNeverEmptiesSingleNodeMap(t *testing.T) {
	// On a single-node resource the only possible flip would empty the
	// map; the repair must keep it set.
	rng := sim.NewRNG(6)
	a := Solution{Order: []int{0}, Maps: []uint64{1}}
	for i := 0; i < 100; i++ {
		m := Mutate(a, 1, rng)
		if m.Maps[0] != 1 {
			t.Fatalf("mutation produced map %b on a 1-node pool", m.Maps[0])
		}
	}
}

func TestCrossoverPreservesTaskMappingAssociation(t *testing.T) {
	// The defining property of the paper's operator: the node mapping
	// stays associated with its task across reordering. With identical
	// parents the children must equal the parents regardless of cut
	// points.
	rng := sim.NewRNG(7)
	for trial := 0; trial < 100; trial++ {
		a := NewRandomSolution(8, 8, rng)
		c, d := Crossover(a, a, 8, rng)
		if !solutionsEqual(c, a) || !solutionsEqual(d, a) {
			t.Fatalf("crossover of identical parents changed the solution:\na=%v\nc=%v\nd=%v", a, c, d)
		}
	}
}

func TestCrossoverEmptySolutions(t *testing.T) {
	rng := sim.NewRNG(8)
	a := Solution{Order: []int{}, Maps: []uint64{}}
	c, d := Crossover(a, a, 4, rng)
	if len(c.Order) != 0 || len(d.Order) != 0 {
		t.Fatal("crossover of empty solutions produced tasks")
	}
}

func TestCrossoverMixedSizesPanics(t *testing.T) {
	rng := sim.NewRNG(9)
	a := NewRandomSolution(3, 4, rng)
	b := NewRandomSolution(4, 4, rng)
	defer func() {
		if recover() == nil {
			t.Fatal("size-mismatched crossover did not panic")
		}
	}()
	Crossover(a, b, 4, rng)
}

func TestSpliceOrderKeepsHeadAndRelativeTailOrder(t *testing.T) {
	head := []int{3, 1, 4, 0, 2}
	tail := []int{0, 1, 2, 3, 4}
	got := spliceOrder(head, tail, 2)
	want := []int{3, 1, 0, 2, 4}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("spliceOrder = %v, want %v", got, want)
		}
	}
}

func TestNodeCount(t *testing.T) {
	s := Solution{Order: []int{0, 1}, Maps: []uint64{0b1011, 0b1}}
	if s.NodeCount(0) != 3 || s.NodeCount(1) != 1 {
		t.Fatalf("NodeCount = %d, %d", s.NodeCount(0), s.NodeCount(1))
	}
}

func TestSolutionStringShowsBothParts(t *testing.T) {
	s := Solution{Order: []int{1, 0}, Maps: []uint64{0b01, 0b10}}
	str := s.String()
	if !strings.Contains(str, "order: 1 0") || !strings.Contains(str, "maps:") {
		t.Fatalf("String() = %q", str)
	}
}

func TestFullMask(t *testing.T) {
	if fullMask(1) != 1 || fullMask(16) != 0xFFFF || fullMask(64) != ^uint64(0) {
		t.Fatalf("fullMask wrong: %b %b %b", fullMask(1), fullMask(16), fullMask(64))
	}
}
