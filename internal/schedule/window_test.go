package schedule

import (
	"math/bits"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func TestWindowOverlaps(t *testing.T) {
	w := Window{Start: 10, End: 20}
	cases := []struct {
		lo, hi float64
		want   bool
	}{
		{0, 10, false},  // touches the start: half-open, no overlap
		{20, 30, false}, // starts at the end: half-open, no overlap
		{0, 11, true},
		{19, 30, true},
		{12, 15, true},  // inside
		{0, 100, true},  // covers
		{15, 15, false}, // empty interval intersects nothing
	}
	for _, c := range cases {
		if got := w.Overlaps(c.lo, c.hi); got != c.want {
			t.Errorf("[10,20).Overlaps(%g, %g) = %v, want %v", c.lo, c.hi, got, c.want)
		}
	}
	zero := Window{Start: 15, End: 15}
	if zero.Overlaps(0, 100) {
		t.Error("a zero-width window overlapped something")
	}
}

func TestAdjustStartZeroWidthWindow(t *testing.T) {
	// "A zero-width window (Start == End) reserves nothing and conflicts
	// with nothing": it must never move a start, even one landing on it.
	booked := [][]Window{{{Start: 5, End: 5}}}
	for _, start := range []float64{0, 4, 5, 6} {
		if got := AdjustStart(booked, 1, start, 10); got != start {
			t.Errorf("zero-width window moved start %g -> %g", start, got)
		}
	}
}

func TestAdjustStartWindowAtStart(t *testing.T) {
	// A window opening exactly at the candidate start is the hot case for a
	// reservation granted at `now`: the task must land at the window's end.
	booked := [][]Window{{{Start: 0, End: 30}}}
	if got := AdjustStart(booked, 1, 0, 10); got != 30 {
		t.Fatalf("start pushed to %g, want 30", got)
	}
	// An unbooked node is unaffected.
	booked = append(booked, nil)
	if got := AdjustStart(booked, 0b10, 0, 10); got != 0 {
		t.Fatalf("unbooked node moved start to %g", got)
	}
}

func TestAdjustStartFixedPointAcrossNodes(t *testing.T) {
	// Clearing the window on node 0 lands the interval inside the window on
	// node 1; clearing that lands it in node 0's second window. The push
	// must chase the fixed point across nodes, not stop after one scan.
	booked := [][]Window{
		{{Start: 0, End: 10}, {Start: 22, End: 40}},
		{{Start: 10, End: 20}},
	}
	if got := AdjustStart(booked, 0b11, 0, 5); got != 40 {
		t.Fatalf("fixed point = %g, want 40", got)
	}
	// A single node only clears its own windows.
	if got := AdjustStart(booked, 0b01, 0, 5); got != 10 {
		t.Fatalf("node-0-only push = %g, want 10", got)
	}
}

func TestAdjustStartBackToBackWindows(t *testing.T) {
	// Adjacent windows with no usable gap: the start must clear them all.
	booked := [][]Window{{{Start: 0, End: 10}, {Start: 10, End: 20}, {Start: 20, End: 30}}}
	if got := AdjustStart(booked, 1, 0, 1); got != 30 {
		t.Fatalf("start = %g, want 30", got)
	}
	// A gap exactly the duration wide is usable (half-open windows).
	booked = [][]Window{{{Start: 0, End: 10}, {Start: 15, End: 20}}}
	if got := AdjustStart(booked, 1, 0, 5); got != 10 {
		t.Fatalf("start = %g, want the exact-fit gap at 10", got)
	}
}

func TestBuildZeroWidthWindowsChangeNothing(t *testing.T) {
	// A Booked structure made purely of zero-width windows must yield the
	// schedule of an unbooked resource, placement for placement.
	rng := sim.NewRNG(11)
	tasks := makeTasks(6, 1e9)
	plain := NewResource(4)
	booked := NewResource(4)
	booked.Booked = [][]Window{
		{{Start: 3, End: 3}}, {{Start: 0, End: 0}}, nil, {{Start: 7, End: 7}},
	}
	for round := 0; round < 20; round++ {
		sol := NewRandomSolution(len(tasks), 4, rng)
		a := Build(sol, tasks, plain, 0, scalePredictor(20))
		b := Build(sol, tasks, booked, 0, scalePredictor(20))
		if !reflect.DeepEqual(a.Items, b.Items) {
			t.Fatalf("round %d: zero-width windows changed the schedule:\n%+v\n%+v", round, a.Items, b.Items)
		}
	}
}

func TestBuildAroundWindowAtBase(t *testing.T) {
	// Every node booked [0, 50) at base 0: the whole schedule starts at 50.
	tasks := makeTasks(3, 1e9)
	res := NewResource(2)
	res.Booked = [][]Window{
		{{Start: 0, End: 50}},
		{{Start: 0, End: 50}},
	}
	sol := Solution{Order: []int{0, 1, 2}, Maps: []uint64{0b01, 0b10, 0b11}}
	s := Build(sol, tasks, res, 0, constPredictor(10))
	for _, it := range s.Items {
		if it.Start < 50 {
			t.Fatalf("task placed at %g inside the booked [0,50): %+v", it.Start, it)
		}
	}
}

func TestBuildFullyBookedHorizonPushesPastIt(t *testing.T) {
	// A resource booked solid for a long horizon still yields a valid
	// schedule: everything lands at the horizon's end, nothing inside it.
	tasks := makeTasks(4, 1e9)
	res := NewResource(3)
	res.Booked = make([][]Window, 3)
	for i := range res.Booked {
		res.Booked[i] = []Window{{Start: 0, End: 1000}}
	}
	sol := NewRandomSolution(len(tasks), 3, sim.NewRNG(7))
	s := Build(sol, tasks, res, 0, constPredictor(5))
	if len(s.Items) != len(tasks) {
		t.Fatalf("%d placements for %d tasks", len(s.Items), len(tasks))
	}
	for _, it := range s.Items {
		if it.Start < 1000 {
			t.Fatalf("task started at %g inside the full booking: %+v", it.Start, it)
		}
	}
}

// TestBuildNeverOverlapsBookedWindows is the blocked-window property: for
// random booked windows and random legitimate solutions, no placement may
// intersect a booked window on any node it occupies.
func TestBuildNeverOverlapsBookedWindows(t *testing.T) {
	rng := sim.NewRNG(23)
	prop := func(nTasksRaw, nNodesRaw uint8, seedRaw uint16) bool {
		nTasks := int(nTasksRaw)%8 + 1
		nNodes := int(nNodesRaw)%6 + 1
		tasks := makeTasks(nTasks, 1e9)
		res := NewResource(nNodes)
		res.Booked = make([][]Window, nNodes)
		for i := range res.Booked {
			// 0–2 windows per node, sorted and non-overlapping by
			// construction (cursor only moves forward).
			cursor := float64(rng.Intn(30))
			for w := rng.Intn(3); w > 0; w-- {
				width := float64(rng.Intn(25)) // zero-width allowed
				res.Booked[i] = append(res.Booked[i], Window{Start: cursor, End: cursor + width})
				cursor += width + float64(rng.Intn(10)+1)
			}
		}
		if err := res.Validate(); err != nil {
			t.Fatalf("generated an invalid resource: %v", err)
		}
		sol := NewRandomSolution(nTasks, nNodes, rng)
		s := Build(sol, tasks, res, float64(seedRaw%50), scalePredictor(40))
		for _, it := range s.Items {
			for m := it.Mask; m != 0; m &= m - 1 {
				node := bits.TrailingZeros64(m)
				for _, w := range res.Booked[node] {
					if w.Overlaps(it.Start, it.End) {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestBuilderMatchesBuildWithBooked extends the zero-alloc builder's
// equivalence contract to booked resources: the scratch path must apply
// the same window pushes as the general entry point.
func TestBuilderMatchesBuildWithBooked(t *testing.T) {
	rng := sim.NewRNG(31)
	tasks := makeTasks(8, 1e9)
	res := NewResource(4)
	res.Booked = [][]Window{
		{{Start: 5, End: 25}},
		{{Start: 0, End: 10}, {Start: 40, End: 60}},
		nil,
		{{Start: 12, End: 12}}, // zero-width
	}
	pred := scalePredictor(30)
	b, err := NewBuilder(tasks, res, pred)
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 40; round++ {
		sol := NewRandomSolution(len(tasks), 4, rng)
		want := Build(sol, tasks, res, 1, pred)
		got := b.Build(sol, 1)
		if !reflect.DeepEqual(got.Items, want.Items) {
			t.Fatalf("round %d: builder diverged from Build around booked windows:\n%+v\n%+v",
				round, got.Items, want.Items)
		}
		if got.Makespan != want.Makespan {
			t.Fatalf("round %d: makespan %g, want %g", round, got.Makespan, want.Makespan)
		}
	}
}

// TestBuildSequentialRespectsBooked covers the sequential builder variant
// used by policies that forbid out-of-order placement.
func TestBuildSequentialRespectsBooked(t *testing.T) {
	tasks := makeTasks(2, 1e9)
	res := NewResource(2)
	res.Booked = [][]Window{{{Start: 0, End: 20}}, {{Start: 0, End: 20}}}
	sol := Solution{Order: []int{0, 1}, Maps: []uint64{0b01, 0b10}}
	s := BuildSequential(sol, tasks, res, 0, constPredictor(5))
	for _, it := range s.Items {
		if it.Start < 20 {
			t.Fatalf("sequential build placed a task at %g inside [0,20)", it.Start)
		}
	}
}
