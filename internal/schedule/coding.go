package schedule

import (
	"fmt"
	"math/bits"
	"strings"

	"repro/internal/sim"
)

// Solution is the two-part coding scheme of Fig. 2. The ordering part is a
// permutation of task positions specifying execution order; the mapping
// part allocates a node set (bitmask) to each task. Maps is indexed by
// task position in the task slice (not by order rank), which keeps the
// node mapping associated with a particular task across reordering — the
// property the paper's crossover preserves by reordering the mapping part
// before recombining.
type Solution struct {
	Order []int
	Maps  []uint64
}

// NewRandomSolution draws a uniform solution: a random task permutation
// and an independent non-empty random node subset per task.
func NewRandomSolution(numTasks, numNodes int, rng *sim.RNG) Solution {
	s := Solution{
		Order: rng.Perm(numTasks),
		Maps:  make([]uint64, numTasks),
	}
	for i := range s.Maps {
		s.Maps[i] = randomMask(numNodes, rng)
	}
	return s
}

// randomMask returns a uniformly random non-empty subset of numNodes bits.
func randomMask(numNodes int, rng *sim.RNG) uint64 {
	full := fullMask(numNodes)
	for {
		var m uint64
		if numNodes == 64 {
			m = rng.Uint64()
		} else {
			m = rng.Uint64() & full
		}
		if m != 0 {
			return m
		}
	}
}

// fullMask returns the mask with the low numNodes bits set.
func fullMask(numNodes int) uint64 {
	if numNodes >= 64 {
		return ^uint64(0)
	}
	return (uint64(1) << uint(numNodes)) - 1
}

// Clone returns an independent deep copy.
func (s Solution) Clone() Solution {
	out := Solution{
		Order: make([]int, len(s.Order)),
		Maps:  make([]uint64, len(s.Maps)),
	}
	copy(out.Order, s.Order)
	copy(out.Maps, s.Maps)
	return out
}

// Validate checks that s is a legitimate solution for numTasks tasks on
// numNodes nodes: the ordering is a permutation and every mapping is a
// non-empty subset of the node pool.
func (s Solution) Validate(numTasks, numNodes int) error {
	if len(s.Order) != numTasks || len(s.Maps) != numTasks {
		return fmt.Errorf("schedule: solution sized %d/%d for %d tasks", len(s.Order), len(s.Maps), numTasks)
	}
	seen := make([]bool, numTasks)
	for _, p := range s.Order {
		if p < 0 || p >= numTasks {
			return fmt.Errorf("schedule: ordering entry %d out of range", p)
		}
		if seen[p] {
			return fmt.Errorf("schedule: ordering repeats task position %d", p)
		}
		seen[p] = true
	}
	full := fullMask(numNodes)
	for i, m := range s.Maps {
		if m == 0 {
			return fmt.Errorf("schedule: task position %d mapped to no nodes", i)
		}
		if m&^full != 0 {
			return fmt.Errorf("schedule: task position %d mapped outside the %d-node pool", i, numNodes)
		}
	}
	return nil
}

// Crossover implements the specialised two-part operator of §2.1. The
// ordering strings are spliced at a random location and the pairs
// reordered to produce legitimate permutations (one-point order
// crossover). The mapping parts are first reordered to be consistent with
// the new task order and then recombined with a single-point binary
// crossover over the concatenated bit string, so the cut may fall inside
// one task's node map.
func Crossover(a, b Solution, numNodes int, rng *sim.RNG) (Solution, Solution) {
	n := len(a.Order)
	if n != len(b.Order) {
		panic("schedule: crossover of differently sized solutions")
	}
	if n == 0 {
		return a.Clone(), b.Clone()
	}
	cut := rng.Intn(n + 1)
	c1 := spliceOrder(a.Order, b.Order, cut)
	c2 := spliceOrder(b.Order, a.Order, cut)

	bitCut := rng.Intn(n*numNodes + 1)
	m1 := spliceMaps(c1, a.Maps, b.Maps, numNodes, bitCut)
	m2 := spliceMaps(c2, b.Maps, a.Maps, numNodes, bitCut)

	return Solution{Order: c1, Maps: m1}, Solution{Order: c2, Maps: m2}
}

// spliceOrder keeps head[:cut] and appends the remaining task positions in
// tail's relative order, yielding a legitimate permutation. Membership of
// the kept prefix is tracked in a bitmask for the common ≤64-task case
// (crossover runs hundreds of times per scheduling event) and falls back
// to a scratch slice for larger queues.
func spliceOrder(head, tail []int, cut int) []int {
	out := make([]int, 0, len(head))
	if len(head) <= 64 {
		var used uint64
		for _, p := range head[:cut] {
			out = append(out, p)
			used |= uint64(1) << uint(p)
		}
		for _, p := range tail {
			if used&(uint64(1)<<uint(p)) == 0 {
				out = append(out, p)
			}
		}
		return out
	}
	used := make([]bool, len(head))
	for _, p := range head[:cut] {
		out = append(out, p)
		used[p] = true
	}
	for _, p := range tail {
		if !used[p] {
			out = append(out, p)
		}
	}
	return out
}

// spliceMaps builds the child's task-indexed mapping. Conceptually the two
// parents' mapping strings are reordered to match the child's task order
// and concatenated into bit strings; the child takes bits before bitCut
// from the first parent and bits after it from the second. The rank of a
// task in the child's order therefore decides which parent supplies its
// node map, with the boundary task receiving a hybrid mask (repaired to be
// non-empty).
func spliceMaps(order []int, first, second []uint64, numNodes int, bitCut int) []uint64 {
	out := make([]uint64, len(order))
	for rank, taskPos := range order {
		lo := rank * numNodes
		hi := lo + numNodes
		var m uint64
		switch {
		case hi <= bitCut:
			m = first[taskPos]
		case lo >= bitCut:
			m = second[taskPos]
		default:
			// The cut falls inside this task's map: low-order bits (< cut
			// offset) from the first parent, the rest from the second.
			k := uint(bitCut - lo)
			lowBits := (uint64(1) << k) - 1
			m = first[taskPos]&lowBits | second[taskPos]&^lowBits
		}
		if m == 0 {
			// Repair: an empty allocation is not a legitimate solution.
			m = first[taskPos] | second[taskPos]
			if m == 0 {
				m = 1
			}
		}
		out[taskPos] = m
	}
	return out
}

// Mutate implements the two-part mutation of §2.1: a switching operator
// swaps two positions of the ordering part, and a random bit-flip is
// applied to the mapping part (repaired to keep allocations non-empty).
// The receiver is left intact.
func Mutate(s Solution, numNodes int, rng *sim.RNG) Solution {
	out := s.Clone()
	n := len(out.Order)
	if n == 0 {
		return out
	}
	// Switching operator on the ordering part.
	i, j := rng.Intn(n), rng.Intn(n)
	out.Order[i], out.Order[j] = out.Order[j], out.Order[i]

	// Random bit-flip on the mapping part.
	t := rng.Intn(n)
	bit := uint64(1) << uint(rng.Intn(numNodes))
	out.Maps[t] ^= bit
	if out.Maps[t] == 0 {
		out.Maps[t] = bit // flipping the last set bit would orphan the task
	}
	return out
}

// NodeCount returns the number of nodes allocated to the task at position
// taskPos.
func (s Solution) NodeCount(taskPos int) int {
	return bits.OnesCount64(s.Maps[taskPos])
}

// String renders the solution in the style of Fig. 2: the ordering part
// above the mapping part, with maps shown in task order.
func (s Solution) String() string {
	var b strings.Builder
	b.WriteString("order:")
	for _, p := range s.Order {
		fmt.Fprintf(&b, " %d", p)
	}
	b.WriteString("\nmaps: ")
	for i, p := range s.Order {
		if i > 0 {
			b.WriteString(" ")
		}
		fmt.Fprintf(&b, "%d:%b", p, s.Maps[p])
	}
	return b.String()
}
