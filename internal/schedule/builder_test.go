package schedule

import (
	"math/bits"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/pace"
	"repro/internal/sim"
)

// constPredictor ignores the model and charges dur seconds regardless of
// node count.
func constPredictor(dur float64) Predictor {
	return func(*pace.AppModel, int) float64 { return dur }
}

// scalePredictor models perfect speedup of work w: t = w / nprocs.
func scalePredictor(w float64) Predictor {
	return func(_ *pace.AppModel, n int) float64 { return w / float64(n) }
}

func makeTasks(n int, deadline float64) []Task {
	tasks := make([]Task, n)
	for i := range tasks {
		tasks[i] = Task{ID: i, Deadline: deadline}
	}
	return tasks
}

func TestBuildSequentialOnOneNode(t *testing.T) {
	tasks := makeTasks(3, 1e9)
	res := NewResource(1)
	sol := Solution{Order: []int{0, 1, 2}, Maps: []uint64{1, 1, 1}}
	s := Build(sol, tasks, res, 0, constPredictor(10))
	wantStarts := []float64{0, 10, 20}
	for i, it := range s.Items {
		if it.Start != wantStarts[i] || it.End != wantStarts[i]+10 {
			t.Fatalf("item %d = %+v, want start %v", i, it, wantStarts[i])
		}
	}
	if s.Makespan != 30 {
		t.Fatalf("makespan = %v, want 30", s.Makespan)
	}
}

func TestBuildParallelDisjointNodes(t *testing.T) {
	tasks := makeTasks(2, 1e9)
	res := NewResource(2)
	sol := Solution{Order: []int{0, 1}, Maps: []uint64{0b01, 0b10}}
	s := Build(sol, tasks, res, 0, constPredictor(7))
	for _, it := range s.Items {
		if it.Start != 0 || it.End != 7 {
			t.Fatalf("disjoint tasks did not run in parallel: %+v", it)
		}
	}
	if s.Makespan != 7 {
		t.Fatalf("makespan = %v, want 7", s.Makespan)
	}
}

func TestBuildUnisonStart(t *testing.T) {
	// Node 1 is busy until t=5; a task mapped to nodes {0,1} must wait for
	// both ("the allocated nodes all begin to execute the task in unison").
	tasks := makeTasks(1, 1e9)
	res := Resource{NumNodes: 2, Avail: []float64{0, 5}}
	sol := Solution{Order: []int{0}, Maps: []uint64{0b11}}
	s := Build(sol, tasks, res, 0, constPredictor(3))
	if s.Items[0].Start != 5 || s.Items[0].End != 8 {
		t.Fatalf("unison start violated: %+v", s.Items[0])
	}
	if s.NodeBusy[0] != 8 || s.NodeBusy[1] != 8 {
		t.Fatalf("node busy times = %v, want both 8", s.NodeBusy)
	}
}

func TestBuildRespectsBaseAndArrival(t *testing.T) {
	tasks := []Task{{ID: 0, Arrival: 12, Deadline: 1e9}}
	res := NewResource(2)
	sol := Solution{Order: []int{0}, Maps: []uint64{0b1}}
	s := Build(sol, tasks, res, 10, constPredictor(1))
	if s.Items[0].Start != 12 {
		t.Fatalf("task started at %v before its arrival 12", s.Items[0].Start)
	}
	tasks[0].Arrival = 0
	s = Build(sol, tasks, res, 10, constPredictor(1))
	if s.Items[0].Start != 10 {
		t.Fatalf("task started at %v before the scheduling instant 10", s.Items[0].Start)
	}
}

func TestBuildLaterTaskMaySlotInEarlier(t *testing.T) {
	// Order is (long on node 0), (short on node 1): the second task does
	// not wait behind the first because their node sets are disjoint.
	tasks := makeTasks(2, 1e9)
	res := NewResource(2)
	sol := Solution{Order: []int{0, 1}, Maps: []uint64{0b01, 0b10}}
	pred := func(_ *pace.AppModel, n int) float64 { return 100 }
	s := Build(sol, tasks, res, 0, pred)
	if s.Items[1].Start != 0 {
		t.Fatalf("second task queued unnecessarily: %+v", s.Items[1])
	}
}

func TestBuildPanicsOnInvalidInput(t *testing.T) {
	tasks := makeTasks(1, 1e9)
	cases := []struct {
		name string
		sol  Solution
		res  Resource
	}{
		{"empty map", Solution{Order: []int{0}, Maps: []uint64{0}}, NewResource(2)},
		{"bad resource", Solution{Order: []int{0}, Maps: []uint64{1}}, Resource{NumNodes: 2, Avail: []float64{0}}},
	}
	for _, c := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: Build did not panic", c.name)
				}
			}()
			Build(c.sol, tasks, c.res, 0, constPredictor(1))
		}()
	}
}

func TestBuildMakespanIncludesPreexistingBusy(t *testing.T) {
	// A resource whose nodes are busy beyond all new work keeps that as
	// the makespan floor.
	tasks := makeTasks(1, 1e9)
	res := Resource{NumNodes: 2, Avail: []float64{0, 50}}
	sol := Solution{Order: []int{0}, Maps: []uint64{0b01}}
	s := Build(sol, tasks, res, 0, constPredictor(1))
	if s.Makespan != 50 {
		t.Fatalf("makespan = %v, want 50 (busy node dominates)", s.Makespan)
	}
}

func TestBuildNodeCountDrivesPrediction(t *testing.T) {
	tasks := makeTasks(1, 1e9)
	res := NewResource(4)
	for k := 1; k <= 4; k++ {
		mask := uint64(1)<<uint(k) - 1
		sol := Solution{Order: []int{0}, Maps: []uint64{mask}}
		s := Build(sol, tasks, res, 0, scalePredictor(100))
		want := 100 / float64(k)
		if s.Items[0].End != want {
			t.Fatalf("k=%d: end = %v, want %v", k, s.Items[0].End, want)
		}
	}
}

// Property: for any random legitimate solution, the built schedule is
// self-consistent — node busy times equal the max completion over that
// node's tasks, no two tasks overlap on one node, starts respect base, and
// the makespan is the max of completions and initial availability.
func TestBuildInvariants(t *testing.T) {
	rng := sim.NewRNG(42)
	prop := func(nTasksRaw, nNodesRaw uint8, baseRaw uint16) bool {
		nTasks := int(nTasksRaw)%10 + 1
		nNodes := int(nNodesRaw)%8 + 1
		base := float64(baseRaw % 100)
		tasks := makeTasks(nTasks, 1e9)
		res := NewResource(nNodes)
		for i := range res.Avail {
			res.Avail[i] = base + float64(rng.Intn(20))
		}
		sol := NewRandomSolution(nTasks, nNodes, rng)
		s := Build(sol, tasks, res, base, scalePredictor(30))

		// Per-node interval consistency.
		for node := 0; node < nNodes; node++ {
			type iv struct{ a, b float64 }
			var ivs []iv
			for _, it := range s.Items {
				if it.Mask&(1<<uint(node)) != 0 {
					ivs = append(ivs, iv{it.Start, it.End})
				}
			}
			last := res.Avail[node]
			cursor := res.Avail[node]
			for _, v := range ivs {
				if v.a < cursor-1e-9 { // overlap on a node
					return false
				}
				cursor = v.b
				if v.b > last {
					last = v.b
				}
			}
			if s.NodeBusy[node] != last {
				return false
			}
		}
		// Makespan and start floors.
		maxEnd := base
		for _, a := range res.Avail {
			if a > maxEnd {
				maxEnd = a
			}
		}
		for _, it := range s.Items {
			if it.Start < base {
				return false
			}
			if it.End < it.Start {
				return false
			}
			if it.End > maxEnd {
				maxEnd = it.End
			}
		}
		return s.Makespan == maxEnd
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestPlacedNodes(t *testing.T) {
	p := Placed{Mask: 0b10110}
	nodes := p.Nodes()
	want := []int{1, 2, 4}
	if len(nodes) != len(want) {
		t.Fatalf("Nodes() = %v", nodes)
	}
	for i := range want {
		if nodes[i] != want[i] {
			t.Fatalf("Nodes() = %v, want %v", nodes, want)
		}
	}
}

func TestItemFor(t *testing.T) {
	tasks := makeTasks(2, 1e9)
	res := NewResource(2)
	sol := Solution{Order: []int{1, 0}, Maps: []uint64{0b01, 0b10}}
	s := Build(sol, tasks, res, 0, constPredictor(1))
	it, ok := s.ItemFor(1)
	if !ok || it.TaskPos != 1 {
		t.Fatalf("ItemFor(1) = %+v, %v", it, ok)
	}
	if _, ok := s.ItemFor(99); ok {
		t.Fatal("ItemFor(99) found a phantom task")
	}
}

func TestResourceHelpers(t *testing.T) {
	r := Resource{NumNodes: 3, Avail: []float64{5, 2, 9}}
	if r.EarliestAvail() != 2 {
		t.Fatalf("EarliestAvail = %v", r.EarliestAvail())
	}
	if r.LatestAvail() != 9 {
		t.Fatalf("LatestAvail = %v", r.LatestAvail())
	}
	c := r.Clone()
	c.Avail[0] = 100
	if r.Avail[0] != 5 {
		t.Fatal("Clone shares storage")
	}
	empty := Resource{}
	if empty.EarliestAvail() != 0 || empty.LatestAvail() != 0 {
		t.Fatal("empty resource availability not zero")
	}
}

func TestNewResourcePanicsOnBadCount(t *testing.T) {
	for _, n := range []int{0, -1, 65} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewResource(%d) did not panic", n)
				}
			}()
			NewResource(n)
		}()
	}
}

func TestTaskString(t *testing.T) {
	lib := pace.CaseStudyLibrary()
	m, _ := lib.Lookup("fft")
	s := Task{ID: 3, App: m, Deadline: 40}.String()
	if !strings.Contains(s, "#3") || !strings.Contains(s, "fft") {
		t.Fatalf("Task.String() = %q", s)
	}
	if !strings.Contains(Task{}.String(), "<nil>") {
		t.Fatal("nil-app task String lacks <nil>")
	}
}

func TestBuildMaskPopcountMatchesNodeCount(t *testing.T) {
	rng := sim.NewRNG(9)
	sol := NewRandomSolution(5, 10, rng)
	for i := range sol.Maps {
		if sol.NodeCount(i) != bits.OnesCount64(sol.Maps[i]) {
			t.Fatal("NodeCount disagrees with popcount")
		}
	}
}

// TestBuilderMatchesBuild asserts the zero-alloc builder produces exactly
// the schedule of the general entry point, across repeated reuse.
func TestBuilderMatchesBuild(t *testing.T) {
	rng := sim.NewRNG(3)
	tasks := make([]Task, 12)
	for i := range tasks {
		tasks[i] = Task{ID: i, Arrival: float64(i) * 0.5, Deadline: 100}
	}
	res := NewResource(8)
	pred := func(_ *pace.AppModel, k int) float64 { return 10 / float64(k) }
	b, err := NewBuilder(tasks, res, pred)
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 50; round++ {
		sol := NewRandomSolution(len(tasks), 8, rng)
		want := Build(sol, tasks, res, 2, pred)
		got := b.Build(sol, 2)
		if got.Makespan != want.Makespan || got.Base != want.Base {
			t.Fatalf("round %d: makespan/base %g/%g, want %g/%g",
				round, got.Makespan, got.Base, want.Makespan, want.Base)
		}
		if len(got.Items) != len(want.Items) {
			t.Fatalf("round %d: %d items, want %d", round, len(got.Items), len(want.Items))
		}
		for i := range got.Items {
			if got.Items[i] != want.Items[i] {
				t.Fatalf("round %d item %d: %+v, want %+v", round, i, got.Items[i], want.Items[i])
			}
		}
		for i := range got.NodeBusy {
			if got.NodeBusy[i] != want.NodeBusy[i] {
				t.Fatalf("round %d node %d busy %g, want %g", round, i, got.NodeBusy[i], want.NodeBusy[i])
			}
		}
	}
}

// TestBuilderDoesNotAllocate pins the tentpole's zero-alloc contract for
// the GA cost hot path.
func TestBuilderDoesNotAllocate(t *testing.T) {
	tasks := make([]Task, 10)
	for i := range tasks {
		tasks[i] = Task{ID: i, Deadline: 50}
	}
	res := NewResource(8)
	b, err := NewBuilder(tasks, res, constPredictor(3))
	if err != nil {
		t.Fatal(err)
	}
	sol := NewRandomSolution(len(tasks), 8, sim.NewRNG(1))
	b.Build(sol, 0) // warm the scratch buffers
	allocs := testing.AllocsPerRun(100, func() {
		s := b.Build(sol, 0)
		if s.Makespan <= 0 {
			t.Fatal("empty schedule")
		}
	})
	if allocs != 0 {
		t.Fatalf("Builder.Build allocates %v objects per run, want 0", allocs)
	}
}

// TestCostDoesNotAllocate pins the allocation-free cost evaluation.
func TestCostDoesNotAllocate(t *testing.T) {
	tasks := make([]Task, 10)
	for i := range tasks {
		tasks[i] = Task{ID: i, Deadline: 20}
	}
	res := NewResource(8)
	s := Build(NewRandomSolution(len(tasks), 8, sim.NewRNG(2)), tasks, res, 0, constPredictor(3))
	allocs := testing.AllocsPerRun(100, func() {
		if Cost(s, tasks, DefaultWeights(), true).Combined < 0 {
			t.Fatal("negative cost")
		}
	})
	if allocs != 0 {
		t.Fatalf("Cost allocates %v objects per run, want 0", allocs)
	}
}

// TestBuilderValidatesResource asserts validation is hoisted to
// construction, not dropped.
func TestBuilderValidatesResource(t *testing.T) {
	if _, err := NewBuilder(nil, Resource{NumNodes: 2, Avail: []float64{0}}, constPredictor(1)); err == nil {
		t.Fatal("NewBuilder accepted an inconsistent resource")
	}
	if _, err := NewBuilder(nil, NewResource(2), nil); err == nil {
		t.Fatal("NewBuilder accepted a nil predictor")
	}
}

// TestItemForIndexed exercises the position index over a larger schedule
// and after repeated lookups.
func TestItemForIndexed(t *testing.T) {
	tasks := make([]Task, 30)
	for i := range tasks {
		tasks[i] = Task{ID: i, Deadline: 1e9}
	}
	res := NewResource(16)
	s := Build(NewRandomSolution(len(tasks), 16, sim.NewRNG(5)), tasks, res, 0, constPredictor(2))
	for pass := 0; pass < 2; pass++ { // second pass hits the built index
		for pos := 0; pos < len(tasks); pos++ {
			it, ok := s.ItemFor(pos)
			if !ok || it.TaskPos != pos {
				t.Fatalf("pass %d: ItemFor(%d) = %+v, %v", pass, pos, it, ok)
			}
		}
		if _, ok := s.ItemFor(len(tasks)); ok {
			t.Fatalf("pass %d: ItemFor out of range found a phantom task", pass)
		}
		if _, ok := s.ItemFor(-1); ok {
			t.Fatalf("pass %d: ItemFor(-1) found a phantom task", pass)
		}
	}
}
