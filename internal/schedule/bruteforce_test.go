package schedule

import (
	"math"
	"math/bits"
	"testing"

	"repro/internal/pace"
	"repro/internal/sim"
)

// bruteForceBest enumerates EVERY legitimate solution of a tiny instance
// (all task permutations × all non-empty node subsets per task) and
// returns the minimal combined cost. It is the ground truth the heuristics
// are verified against.
func bruteForceBest(p *Problem) float64 {
	n := len(p.Tasks)
	nodes := p.Res.NumNodes
	best := math.Inf(1)

	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	maps := make([]uint64, n)

	var tryMaps func(pos int)
	var tryPerms func(k int)

	evaluate := func() {
		sol := Solution{Order: append([]int(nil), perm...), Maps: append([]uint64(nil), maps...)}
		if c := p.Cost(sol); c < best {
			best = c
		}
	}
	tryMaps = func(pos int) {
		if pos == n {
			evaluate()
			return
		}
		total := uint64(1) << uint(nodes)
		for m := uint64(1); m < total; m++ {
			maps[pos] = m
			tryMaps(pos + 1)
		}
	}
	tryPerms = func(k int) {
		if k == n {
			tryMaps(0)
			return
		}
		for i := k; i < n; i++ {
			perm[k], perm[i] = perm[i], perm[k]
			tryPerms(k + 1)
			perm[k], perm[i] = perm[i], perm[k]
		}
	}
	tryPerms(0)
	return best
}

func bruteProblem(t *testing.T, appNames []string, nodes int, deadline float64) *Problem {
	t.Helper()
	lib := pace.CaseStudyLibrary()
	engine := pace.NewEngine()
	tasks := make([]Task, len(appNames))
	for i, name := range appNames {
		m, ok := lib.Lookup(name)
		if !ok {
			t.Fatalf("no model %s", name)
		}
		tasks[i] = Task{ID: i + 1, App: m, Deadline: deadline}
	}
	pred := func(app *pace.AppModel, k int) float64 {
		return engine.MustPredict(app, pace.SGIOrigin2000, k)
	}
	return NewProblem(tasks, NewResource(nodes), 0, pred)
}

// TestGreedySeedNearBruteForceOptimum pins the greedy heuristic against
// ground truth on instances small enough to enumerate completely
// (3 tasks × 3 nodes = 6 × 7³ = 2058 solutions).
func TestGreedySeedNearBruteForceOptimum(t *testing.T) {
	p := bruteProblem(t, []string{"fft", "closure", "memsort"}, 3, 1000)
	optimal := bruteForceBest(p)
	greedy := p.Cost(p.GreedySeed())
	if greedy < optimal-1e-9 {
		t.Fatalf("greedy (%v) beat the enumerated optimum (%v): enumeration is broken", greedy, optimal)
	}
	// Greedy is only a seed — it over-allocates nodes per task — but it
	// must stay within small factors of the optimum on a tiny instance.
	if greedy > optimal*2.5 {
		t.Fatalf("greedy cost %v vs optimal %v", greedy, optimal)
	}
}

// TestLocalSearchReachesBruteForceOptimum verifies the mutation
// neighbourhood can actually reach the global optimum: a long random
// descent over the full solution space must land on it.
func TestLocalSearchReachesBruteForceOptimum(t *testing.T) {
	p := bruteProblem(t, []string{"fft", "closure"}, 3, 1000)
	optimal := bruteForceBest(p)

	rng := sim.NewRNG(5)
	best := math.Inf(1)
	cur := p.GreedySeed()
	curCost := p.Cost(cur)
	for i := 0; i < 4000; i++ {
		cand := p.Mutate(cur, rng)
		c := p.Cost(cand)
		// Accept sideways and downhill moves so plateaus are crossable.
		if c <= curCost {
			cur, curCost = cand, c
		}
		if c < best {
			best = c
		}
		if i%500 == 499 { // occasional restart
			cur = p.Random(rng)
			curCost = p.Cost(cur)
		}
	}
	if best > optimal+1e-9 {
		t.Fatalf("local search best %v never reached enumerated optimum %v", best, optimal)
	}
}

// TestBruteForceConfirmsFIFOAllocationOptimality cross-checks the FIFO
// baseline's claim: for a single task on an idle resource, the completion
// time of the best allocation equals the brute-force best completion over
// all subsets.
func TestBruteForceConfirmsFIFOAllocationOptimality(t *testing.T) {
	lib := pace.CaseStudyLibrary()
	engine := pace.NewEngine()
	pred := func(app *pace.AppModel, k int) float64 {
		return engine.MustPredict(app, pace.SGIOrigin2000, k)
	}
	rng := sim.NewRNG(8)
	for _, name := range pace.CaseStudyAppNames {
		m, _ := lib.Lookup(name)
		busy := make([]float64, 6)
		for i := range busy {
			busy[i] = float64(rng.Intn(20))
		}
		// Brute force over every subset.
		bestEnd := math.Inf(1)
		for mask := uint64(1); mask < 1<<6; mask++ {
			start := 0.0
			for mm := mask; mm != 0; mm &= mm - 1 {
				if a := busy[bits.TrailingZeros64(mm)]; a > start {
					start = a
				}
			}
			if end := start + pred(m, bits.OnesCount64(mask)); end < bestEnd {
				bestEnd = end
			}
		}
		// The production paths must match it exactly; their tie-break and
		// search structure are verified elsewhere.
		sol := Solution{Order: []int{0}, Maps: []uint64{0}}
		_ = sol
		tasks := []Task{{ID: 1, App: m, Deadline: 1e9}}
		res := Resource{NumNodes: 6, Avail: busy}
		p := NewProblem(tasks, res, 0, pred)
		bf := bruteForceBestCompletion(p)
		if math.Abs(bf-bestEnd) > 1e-9 {
			t.Fatalf("%s: single-task enumerations disagree: %v vs %v", name, bf, bestEnd)
		}
	}
}

// bruteForceBestCompletion enumerates single-task allocations via the
// schedule builder, returning the minimal completion time.
func bruteForceBestCompletion(p *Problem) float64 {
	best := math.Inf(1)
	total := uint64(1) << uint(p.Res.NumNodes)
	for mask := uint64(1); mask < total; mask++ {
		sol := Solution{Order: []int{0}, Maps: []uint64{mask}}
		s := Build(sol, p.Tasks, p.Res, p.Base, p.Predict)
		if end := s.Items[0].End; end < best {
			best = end
		}
	}
	return best
}

func TestBuildSequentialEnforcesQueueOrder(t *testing.T) {
	// Two tasks on disjoint nodes: plain Build lets the second start at 0;
	// sequential Build holds it behind the first task's start.
	tasks := []Task{
		{ID: 1, Arrival: 5, Deadline: 1e9}, // head of queue, can't start before 5
		{ID: 2, Arrival: 0, Deadline: 1e9},
	}
	res := NewResource(2)
	sol := Solution{Order: []int{0, 1}, Maps: []uint64{0b01, 0b10}}
	pred := func(*pace.AppModel, int) float64 { return 10 }

	plain := Build(sol, tasks, res, 0, pred)
	if plain.Items[1].Start != 0 {
		t.Fatalf("plain Build blocked an independent task: %+v", plain.Items[1])
	}
	seq := BuildSequential(sol, tasks, res, 0, pred)
	if seq.Items[0].Start != 5 {
		t.Fatalf("head start %v, want 5", seq.Items[0].Start)
	}
	if seq.Items[1].Start != 5 {
		t.Fatalf("sequential Build let task 2 start at %v before the head's start 5", seq.Items[1].Start)
	}
}

func TestBuildSequentialStartsNonDecreasing(t *testing.T) {
	rng := sim.NewRNG(11)
	lib := pace.CaseStudyLibrary()
	engine := pace.NewEngine()
	pred := func(app *pace.AppModel, k int) float64 {
		return engine.MustPredict(app, pace.SunUltra5, k)
	}
	names := lib.Names()
	for trial := 0; trial < 50; trial++ {
		n := rng.IntIn(1, 8)
		tasks := make([]Task, n)
		for i := range tasks {
			m, _ := lib.Lookup(names[rng.Intn(len(names))])
			tasks[i] = Task{ID: i + 1, App: m, Arrival: float64(rng.Intn(30)), Deadline: 1e9}
		}
		sol := NewRandomSolution(n, 6, rng)
		s := BuildSequential(sol, tasks, NewResource(6), 0, pred)
		prev := math.Inf(-1)
		for i, it := range s.Items {
			if it.Start < prev-1e-9 {
				t.Fatalf("trial %d: start order violated at item %d: %+v", trial, i, s.Items)
			}
			prev = it.Start
		}
	}
}
