package scheduler

import (
	"math/bits"
	"testing"
	"testing/quick"

	"repro/internal/pace"
	"repro/internal/schedule"
	"repro/internal/sim"
)

func testLib(t testing.TB) *pace.Library {
	t.Helper()
	return pace.CaseStudyLibrary()
}

func appOf(t testing.TB, name string) *pace.AppModel {
	t.Helper()
	m, ok := pace.CaseStudyLibrary().Lookup(name)
	if !ok {
		t.Fatalf("no model %q", name)
	}
	return m
}

// enginePredictor builds a schedule.Predictor over the reference platform.
func enginePredictor(e *pace.Engine, hw pace.Hardware) schedule.Predictor {
	return func(app *pace.AppModel, k int) float64 { return e.MustPredict(app, hw, k) }
}

func TestFIFONeverReorders(t *testing.T) {
	f := NewFIFOPolicy()
	e := pace.NewEngine()
	pred := enginePredictor(e, pace.SGIOrigin2000)
	tasks := []schedule.Task{
		{ID: 1, App: appOf(t, "sweep3d"), Arrival: 0, Deadline: 1e9},
		{ID: 2, App: appOf(t, "fft"), Arrival: 1, Deadline: 1e9},
		{ID: 3, App: appOf(t, "cpi"), Arrival: 2, Deadline: 1e9},
	}
	s := f.Plan(tasks, schedule.NewResource(4), 2, pred)
	for i, it := range s.Items {
		if it.TaskPos != i {
			t.Fatalf("FIFO reordered tasks: items %+v", s.Items)
		}
	}
}

func TestFIFOAllocationIsFixedAcrossPlans(t *testing.T) {
	f := NewFIFOPolicy()
	e := pace.NewEngine()
	pred := enginePredictor(e, pace.SGIOrigin2000)
	tasks := []schedule.Task{{ID: 1, App: appOf(t, "improc"), Deadline: 1e9}}
	s1 := f.Plan(tasks, schedule.NewResource(8), 0, pred)
	mask1 := s1.Items[0].Mask

	// New task arrives; the first task's allocation must not move even
	// though the pool state it was optimised against has changed.
	tasks = append(tasks, schedule.Task{ID: 2, App: appOf(t, "fft"), Arrival: 1, Deadline: 1e9})
	s2 := f.Plan(tasks, schedule.NewResource(8), 1, pred)
	if s2.Items[0].Mask != mask1 {
		t.Fatalf("FIFO allocation drifted: %b -> %b", mask1, s2.Items[0].Mask)
	}
}

func TestFIFOPicksOptimalNodeCount(t *testing.T) {
	// improc is fastest at 8 processors (20s); on an idle 16-node pool the
	// baseline must allocate exactly 8 nodes.
	f := NewFIFOPolicy()
	e := pace.NewEngine()
	pred := enginePredictor(e, pace.SGIOrigin2000)
	tasks := []schedule.Task{{ID: 1, App: appOf(t, "improc"), Deadline: 1e9}}
	s := f.Plan(tasks, schedule.NewResource(16), 0, pred)
	if k := bits.OnesCount64(s.Items[0].Mask); k != 8 {
		t.Fatalf("FIFO allocated %d nodes to improc, want 8 (Table 1 optimum)", k)
	}
	if s.Items[0].End != 20 {
		t.Fatalf("improc completion %v, want 20", s.Items[0].End)
	}
}

func TestFIFOExhaustiveMatchesFastPath(t *testing.T) {
	// Property (§4.1 search equivalence): on a homogeneous resource the
	// exhaustive 2^n−1 enumeration and the sorted-prefix search find
	// allocations with identical completion time and node count.
	lib := testLib(t)
	names := lib.Names()
	e := pace.NewEngine()
	rng := sim.NewRNG(5)
	prop := func(appIdx uint8, busyRaw [8]uint8, floorRaw uint8) bool {
		app, _ := lib.Lookup(names[int(appIdx)%len(names)])
		busy := make([]float64, 8)
		for i, b := range busyRaw {
			busy[i] = float64(b % 50)
		}
		floor := float64(floorRaw % 60)
		pred := enginePredictor(e, pace.SunUltra5)
		em := bestAllocationExhaustive(busy, nil, floor, app, pred)
		fm := bestAllocationFast(busy, nil, floor, app, pred)

		end := func(mask uint64) float64 {
			start := floor
			for m := mask; m != 0; m &= m - 1 {
				if a := busy[bits.TrailingZeros64(m)]; a > start {
					start = a
				}
			}
			return start + pred(app, bits.OnesCount64(mask))
		}
		_ = rng
		return end(em) == end(fm) && bits.OnesCount64(em) == bits.OnesCount64(fm)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestFIFOForgetReleasesAllocation(t *testing.T) {
	f := NewFIFOPolicy()
	e := pace.NewEngine()
	pred := enginePredictor(e, pace.SGIOrigin2000)
	tasks := []schedule.Task{{ID: 1, App: appOf(t, "fft"), Deadline: 1e9}}
	_ = f.Plan(tasks, schedule.NewResource(4), 0, pred)
	f.Forget(1)
	// Re-plan with a busier pool: without the fixed entry the task is
	// re-optimised against the new availability.
	res := schedule.Resource{NumNodes: 4, Avail: []float64{100, 100, 100, 0}}
	s2 := f.Plan(tasks, res, 0, pred)
	// fft on the one free node completes at 25; had a stale multi-node
	// allocation survived it would wait for the busy nodes (>= 100).
	if s2.Items[0].End >= 100 {
		t.Fatalf("Forget did not release the fixed allocation: end %v", s2.Items[0].End)
	}
}

func TestFIFOPlanEmptyQueue(t *testing.T) {
	f := NewFIFOPolicy()
	e := pace.NewEngine()
	s := f.Plan(nil, schedule.NewResource(4), 10, enginePredictor(e, pace.SGIOrigin2000))
	if len(s.Items) != 0 {
		t.Fatalf("empty plan has %d items", len(s.Items))
	}
}

func TestFIFOName(t *testing.T) {
	if NewFIFOPolicy().Name() != "fifo" {
		t.Fatal("wrong policy name")
	}
	if !NewFIFOPolicy().Exhaustive {
		t.Fatal("default FIFO is not the paper's exhaustive search")
	}
	if NewFastFIFOPolicy().Exhaustive {
		t.Fatal("fast FIFO claims to be exhaustive")
	}
}

func TestBestAllocationDeterministic(t *testing.T) {
	e := pace.NewEngine()
	pred := enginePredictor(e, pace.SGIOrigin2000)
	app := appOf(t, "closure")
	busy := []float64{3, 1, 4, 1, 5, 9, 2, 6}
	a := bestAllocationExhaustive(busy, nil, 0, app, pred)
	b := bestAllocationExhaustive(busy, nil, 0, app, pred)
	if a != b {
		t.Fatalf("exhaustive search nondeterministic: %b vs %b", a, b)
	}
}
