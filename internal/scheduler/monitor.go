package scheduler

import (
	"fmt"
	"sort"
)

// DefaultPollInterval is the resource monitor's query period: "the
// resource monitor queries each known node every five minutes" (§2.2).
const DefaultPollInterval = 300.0

// AvailabilityEvent records one observed node state change.
type AvailabilityEvent struct {
	Time float64
	Node int
	Up   bool
}

// Monitor is the resource-monitoring module of Fig. 3. It tracks host
// availability — the only statistic the paper's implementation supports —
// and feeds the GA scheduler the set of nodes tasks may be scheduled on.
// Failure injection for tests and examples goes through SetNodeDown.
type Monitor struct {
	numNodes     int
	down         map[int]bool
	PollInterval float64
	events       []AvailabilityEvent
}

// NewMonitor returns a monitor over numNodes nodes, all up.
func NewMonitor(numNodes int) *Monitor {
	if numNodes < 1 {
		panic(fmt.Sprintf("scheduler: monitor over %d nodes", numNodes))
	}
	return &Monitor{
		numNodes:     numNodes,
		down:         map[int]bool{},
		PollInterval: DefaultPollInterval,
	}
}

// NumNodes returns the total node count, up or down.
func (m *Monitor) NumNodes() int { return m.numNodes }

// SetNodeDown marks a node down (or back up) as of virtual time now.
// Out-of-range nodes are rejected.
func (m *Monitor) SetNodeDown(node int, down bool, now float64) error {
	if node < 0 || node >= m.numNodes {
		return fmt.Errorf("scheduler: node %d outside [0, %d)", node, m.numNodes)
	}
	if m.down[node] == down {
		return nil // no state change, no event
	}
	if down {
		m.down[node] = true
	} else {
		delete(m.down, node)
	}
	m.events = append(m.events, AvailabilityEvent{Time: now, Node: node, Up: !down})
	return nil
}

// IsUp reports whether the node is available.
func (m *Monitor) IsUp(node int) bool {
	return node >= 0 && node < m.numNodes && !m.down[node]
}

// UpNodes returns the available node indices in ascending order.
func (m *Monitor) UpNodes() []int {
	out := make([]int, 0, m.numNodes-len(m.down))
	for i := 0; i < m.numNodes; i++ {
		if !m.down[i] {
			out = append(out, i)
		}
	}
	return out
}

// NumUp returns the number of available nodes.
func (m *Monitor) NumUp() int { return m.numNodes - len(m.down) }

// Events returns the observed availability changes in time order.
func (m *Monitor) Events() []AvailabilityEvent {
	out := make([]AvailabilityEvent, len(m.events))
	copy(out, m.events)
	sort.SliceStable(out, func(i, j int) bool { return out[i].Time < out[j].Time })
	return out
}
