package scheduler

import (
	"math/bits"
	"testing"

	"repro/internal/ga"
	"repro/internal/pace"
	"repro/internal/sim"
)

func newTestLocal(t testing.TB, name string, policy Policy, nodes int) *Local {
	t.Helper()
	l, err := NewLocal(Config{
		Name:     name,
		HW:       pace.SGIOrigin2000,
		NumNodes: nodes,
		Policy:   policy,
		Engine:   pace.NewEngine(),
	})
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func newGAForTest(seed uint64) *GAPolicy {
	cfg := ga.DefaultConfig()
	cfg.MaxGenerations = 25
	cfg.ConvergenceWindow = 6
	return NewGAPolicy(cfg, sim.NewRNG(seed))
}

func TestNewLocalValidation(t *testing.T) {
	good := Config{Name: "S1", HW: pace.SGIOrigin2000, NumNodes: 4, Policy: NewFIFOPolicy(), Engine: pace.NewEngine()}
	if _, err := NewLocal(good); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	cases := []func(Config) Config{
		func(c Config) Config { c.Name = ""; return c },
		func(c Config) Config { c.HW = pace.Hardware{}; return c },
		func(c Config) Config { c.NumNodes = 0; return c },
		func(c Config) Config { c.NumNodes = 100; return c },
		func(c Config) Config { c.Policy = nil; return c },
		func(c Config) Config { c.Engine = nil; return c },
	}
	for i, mut := range cases {
		if _, err := NewLocal(mut(good)); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestLocalDefaults(t *testing.T) {
	l := newTestLocal(t, "S1", NewFIFOPolicy(), 4)
	envs := l.Environments()
	if len(envs) != 1 || envs[0] != "test" {
		t.Fatalf("default environments = %v, want [test]", envs)
	}
	if !l.SupportsEnvironment("test") || l.SupportsEnvironment("mpi") {
		t.Fatal("environment matchmaking wrong")
	}
	if l.PolicyName() != "fifo" {
		t.Fatalf("policy name %q", l.PolicyName())
	}
}

func TestLocalLifecycleFIFO(t *testing.T) {
	l := newTestLocal(t, "S1", NewFIFOPolicy(), 16)
	app := appOf(t, "fft") // 10s on 16 nodes, 25s on 1

	id, err := l.Submit(app, 1000, 0)
	if err != nil {
		t.Fatal(err)
	}
	if id == 0 {
		t.Fatal("zero task ID")
	}
	if l.QueueLen() != 1 {
		t.Fatalf("queue length %d after submit", l.QueueLen())
	}
	// The plan starts the task immediately; advancing past 0 promotes it.
	l.AdvanceTo(1)
	if l.QueueLen() != 0 {
		t.Fatalf("task not promoted at its start time; queue %d", l.QueueLen())
	}
	recs := l.Records()
	if len(recs) != 1 {
		t.Fatalf("%d records", len(recs))
	}
	r := recs[0]
	if r.TaskID != id || r.Resource != "S1" || r.Start != 0 {
		t.Fatalf("record %+v", r)
	}
	if r.End != 10 { // fft on all 16 nodes
		t.Fatalf("fft completion %v, want 10", r.End)
	}
}

func TestLocalDrainCompletesEverything(t *testing.T) {
	l := newTestLocal(t, "S1", NewFIFOPolicy(), 2)
	app := appOf(t, "sweep3d")
	for i := 0; i < 5; i++ {
		if _, err := l.Submit(app, 1e9, float64(i)); err != nil {
			t.Fatal(err)
		}
	}
	end := l.Drain()
	if l.QueueLen() != 0 {
		t.Fatalf("queue not drained: %d", l.QueueLen())
	}
	recs := l.Records()
	if len(recs) != 5 {
		t.Fatalf("%d records after drain, want 5", len(recs))
	}
	var maxEnd float64
	for _, r := range recs {
		if r.End > maxEnd {
			maxEnd = r.End
		}
	}
	if end != maxEnd {
		t.Fatalf("Drain returned %v, want %v", end, maxEnd)
	}
}

func TestLocalNoNodeOverlapInRecords(t *testing.T) {
	for _, pol := range []Policy{NewFIFOPolicy(), newGAForTest(1)} {
		l := newTestLocal(t, "S1", pol, 4)
		apps := []string{"sweep3d", "fft", "improc", "closure", "jacobi", "memsort", "cpi"}
		for i := 0; i < 20; i++ {
			if _, err := l.Submit(appOf(t, apps[i%len(apps)]), 1e9, float64(i)*2); err != nil {
				t.Fatal(err)
			}
		}
		l.Drain()
		recs := l.Records()
		if len(recs) != 20 {
			t.Fatalf("%s: %d records, want 20", pol.Name(), len(recs))
		}
		// No two records may overlap on a node.
		for node := 0; node < 4; node++ {
			type iv struct{ a, b float64 }
			var ivs []iv
			for _, r := range recs {
				if r.Mask&(1<<uint(node)) != 0 {
					ivs = append(ivs, iv{r.Start, r.End})
				}
			}
			for i := 0; i < len(ivs); i++ {
				for j := i + 1; j < len(ivs); j++ {
					a, b := ivs[i], ivs[j]
					if a.a < b.b-1e-9 && b.a < a.b-1e-9 {
						t.Fatalf("%s: node %d double-booked: %+v and %+v", pol.Name(), node, a, b)
					}
				}
			}
		}
		// Every record respects arrival and uses at least one node.
		for _, r := range recs {
			if r.Start < r.Arrival {
				t.Fatalf("%s: task %d started %v before arrival %v", pol.Name(), r.TaskID, r.Start, r.Arrival)
			}
			if r.Mask == 0 {
				t.Fatalf("%s: task %d has empty node mask", pol.Name(), r.TaskID)
			}
		}
	}
}

func TestLocalGAMeetsDeadlinesBetterThanFIFO(t *testing.T) {
	// A queue where FIFO's fixed order wastes capacity: long sweep3d tasks
	// with loose deadlines arrive before short closure tasks with tight
	// deadlines. The GA can reorder; FIFO cannot.
	run := func(pol Policy) (met int) {
		l := newTestLocal(t, "S", pol, 4)
		var ids []int
		for i := 0; i < 6; i++ {
			id, err := l.Submit(appOf(t, "sweep3d"), 2000, 0)
			if err != nil {
				t.Fatal(err)
			}
			ids = append(ids, id)
		}
		for i := 0; i < 6; i++ {
			id, err := l.Submit(appOf(t, "closure"), 40, 0.5)
			if err != nil {
				t.Fatal(err)
			}
			ids = append(ids, id)
		}
		l.Drain()
		for _, r := range l.Records() {
			if r.End <= r.Deadline {
				met++
			}
		}
		return met
	}
	fifoMet := run(NewFIFOPolicy())
	gaMet := run(newGAForTest(2))
	if gaMet < fifoMet {
		t.Fatalf("GA met %d deadlines, FIFO met %d; GA must not be worse on a reorderable workload", gaMet, fifoMet)
	}
}

func TestLocalDelete(t *testing.T) {
	l := newTestLocal(t, "S1", NewFIFOPolicy(), 1)
	app := appOf(t, "fft")
	id1, _ := l.Submit(app, 1e9, 0)
	// Task 1 starts at 0 immediately; it cannot be deleted at t=1.
	id2, _ := l.Submit(app, 1e9, 1)
	if err := l.Delete(id1, 1); err == nil {
		t.Fatal("deleted a task that already began execution")
	}
	if err := l.Delete(id2, 1); err != nil {
		t.Fatalf("deleting a waiting task: %v", err)
	}
	if l.QueueLen() != 0 {
		t.Fatalf("queue length %d after delete", l.QueueLen())
	}
	if err := l.Delete(9999, 2); err == nil {
		t.Fatal("deleted a phantom task")
	}
	l.Drain()
	if len(l.Records()) != 1 {
		t.Fatalf("%d records, want only the first task", len(l.Records()))
	}
}

func TestLocalClockMonotonic(t *testing.T) {
	l := newTestLocal(t, "S1", NewFIFOPolicy(), 1)
	l.AdvanceTo(10)
	defer func() {
		if recover() == nil {
			t.Fatal("backwards AdvanceTo did not panic")
		}
	}()
	l.AdvanceTo(5)
}

func TestLocalFreetimeTracksPlan(t *testing.T) {
	l := newTestLocal(t, "S1", NewFIFOPolicy(), 16)
	if ft := l.Freetime(); ft != 0 {
		t.Fatalf("idle freetime = %v, want 0", ft)
	}
	// fft on 16 nodes takes 10s.
	_, _ = l.Submit(appOf(t, "fft"), 1e9, 0)
	if ft := l.Freetime(); ft != 10 {
		t.Fatalf("freetime = %v, want 10 (the plan makespan)", ft)
	}
	l.AdvanceTo(4)
	if ft := l.Freetime(); ft != 10 {
		t.Fatalf("freetime after promotion = %v, want 10 (committed busy horizon)", ft)
	}
	l.AdvanceTo(50)
	if ft := l.Freetime(); ft != 50 {
		t.Fatalf("freetime = %v, want now (=50) once all work is done", ft)
	}
}

func TestLocalEstimateCompletionEq10(t *testing.T) {
	l := newTestLocal(t, "S1", NewFIFOPolicy(), 16)
	// Idle resource: η_r = 0 + min_k t(k). For sweep3d min over Table 1 is
	// 4 (at 15-16 procs).
	eta, err := l.EstimateCompletion(appOf(t, "sweep3d"))
	if err != nil {
		t.Fatal(err)
	}
	if eta != 4 {
		t.Fatalf("η = %v, want 4", eta)
	}
	// With work queued, the estimate shifts by the freetime ω.
	_, _ = l.Submit(appOf(t, "fft"), 1e9, 0) // occupies pool until t=10
	eta, err = l.EstimateCompletion(appOf(t, "sweep3d"))
	if err != nil {
		t.Fatal(err)
	}
	if eta != 14 {
		t.Fatalf("η = %v, want 10 + 4", eta)
	}
}

func TestLocalEstimateCompletionFewerUpNodes(t *testing.T) {
	l := newTestLocal(t, "S1", NewFIFOPolicy(), 16)
	// cpi: min over k=1..16 is 2 (k=12); min over k=1..4 is 17.
	for n := 4; n < 16; n++ {
		_ = l.Monitor().SetNodeDown(n, true, 0)
	}
	eta, err := l.EstimateCompletion(appOf(t, "cpi"))
	if err != nil {
		t.Fatal(err)
	}
	if eta != 17 {
		t.Fatalf("η with 4 up nodes = %v, want 17", eta)
	}
}

func TestLocalFailedNodesNotScheduled(t *testing.T) {
	l := newTestLocal(t, "S1", NewFIFOPolicy(), 4)
	_ = l.Monitor().SetNodeDown(2, true, 0)
	for i := 0; i < 8; i++ {
		if _, err := l.Submit(appOf(t, "closure"), 1e9, float64(i)); err != nil {
			t.Fatal(err)
		}
	}
	l.Drain()
	for _, r := range l.Records() {
		if r.Mask&(1<<2) != 0 {
			t.Fatalf("task %d scheduled on a down node: mask %b", r.TaskID, r.Mask)
		}
	}
}

func TestLocalSubmitFailsWithAllNodesDown(t *testing.T) {
	l := newTestLocal(t, "S1", NewFIFOPolicy(), 2)
	_ = l.Monitor().SetNodeDown(0, true, 0)
	_ = l.Monitor().SetNodeDown(1, true, 0)
	if _, err := l.Submit(appOf(t, "fft"), 1e9, 0); err == nil {
		t.Fatal("submit succeeded with zero up nodes")
	}
}

func TestLocalServiceInfo(t *testing.T) {
	l := newTestLocal(t, "S7", NewFIFOPolicy(), 16)
	si := l.ServiceInfo()
	if si.Name != "S7" || si.HWType != "SGIOrigin2000" || si.NProc != 16 {
		t.Fatalf("service info %+v", si)
	}
	if si.Freetime != 0 {
		t.Fatalf("idle freetime %v", si.Freetime)
	}
	if len(si.Environments) != 1 || si.Environments[0] != "test" {
		t.Fatalf("environments %v", si.Environments)
	}
	// Mutating the returned slice must not affect the scheduler.
	si.Environments[0] = "hacked"
	if !l.SupportsEnvironment("test") {
		t.Fatal("service info aliases internal state")
	}
}

func TestLocalSubmitNilApp(t *testing.T) {
	l := newTestLocal(t, "S1", NewFIFOPolicy(), 2)
	if _, err := l.Submit(nil, 1e9, 0); err == nil {
		t.Fatal("nil app accepted")
	}
}

func TestLocalExecutorSeesLaunches(t *testing.T) {
	exec := &TestExecutor{}
	l, err := NewLocal(Config{
		Name: "S1", HW: pace.SGIOrigin2000, NumNodes: 2,
		Policy: NewFIFOPolicy(), Engine: pace.NewEngine(), Executor: exec,
	})
	if err != nil {
		t.Fatal(err)
	}
	_, _ = l.Submit(appOf(t, "fft"), 1e9, 0)
	l.Drain()
	if len(exec.Launched) != 1 {
		t.Fatalf("executor saw %d launches, want 1", len(exec.Launched))
	}
}

func TestLocalRecordsSortedByStart(t *testing.T) {
	l := newTestLocal(t, "S1", newGAForTest(3), 4)
	for i := 0; i < 12; i++ {
		_, _ = l.Submit(appOf(t, "memsort"), 1e9, float64(i))
	}
	l.Drain()
	recs := l.Records()
	for i := 1; i < len(recs); i++ {
		if recs[i].Start < recs[i-1].Start {
			t.Fatalf("records unsorted at %d", i)
		}
	}
}

func TestLocalGADeterministic(t *testing.T) {
	run := func() []Record {
		l := newTestLocal(t, "S1", newGAForTest(77), 8)
		for i := 0; i < 10; i++ {
			_, _ = l.Submit(appOf(t, "jacobi"), 200, float64(i))
		}
		l.Drain()
		return l.Records()
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		// The App pointers come from per-run libraries; compare by name.
		x, y := a[i], b[i]
		if x.App.Name != y.App.Name {
			t.Fatalf("record %d app differs: %s vs %s", i, x.App.Name, y.App.Name)
		}
		x.App, y.App = nil, nil
		if x != y {
			t.Fatalf("record %d differs: %+v vs %+v", i, x, y)
		}
	}
}

func TestLocalMaskWithinPool(t *testing.T) {
	l := newTestLocal(t, "S1", newGAForTest(4), 5)
	for i := 0; i < 10; i++ {
		_, _ = l.Submit(appOf(t, "cpi"), 1e9, float64(i))
	}
	l.Drain()
	for _, r := range l.Records() {
		if r.Mask&^uint64(0b11111) != 0 {
			t.Fatalf("mask %b outside the 5-node pool", r.Mask)
		}
		if bits.OnesCount64(r.Mask) < 1 {
			t.Fatal("empty mask")
		}
	}
}

func TestLocalPlanned(t *testing.T) {
	l := newTestLocal(t, "S1", NewFIFOPolicy(), 16)
	if got := l.Planned(); len(got) != 0 {
		t.Fatalf("fresh scheduler has %d planned tasks", len(got))
	}
	// Two fft tasks: the first occupies the whole pool, the second queues.
	id1, _ := l.Submit(appOf(t, "fft"), 1e9, 0)
	id2, _ := l.Submit(appOf(t, "fft"), 1e9, 0.5)
	// At t=0.5 the first task has started (start 0 <= now); only the
	// second remains planned.
	planned := l.Planned()
	if len(planned) != 1 || planned[0].TaskID != id2 {
		t.Fatalf("planned = %+v", planned)
	}
	if planned[0].Start < 10 { // behind the first task's 10s run
		t.Fatalf("planned start %v, want >= 10", planned[0].Start)
	}
	_ = id1
	l.Drain()
	if got := l.Planned(); len(got) != 0 {
		t.Fatalf("%d planned tasks after drain", len(got))
	}
	if len(l.Records()) != 2 {
		t.Fatalf("%d records", len(l.Records()))
	}
}
