package scheduler

import (
	"repro/internal/telemetry"
)

// Metrics is the set of telemetry instruments a Local scheduler updates
// as it runs: queue depth and freetime backlog after every queue
// change, plan count and wall-clock planning latency per policy run,
// task flow counters. The zero value (all nil) is the disabled
// configuration — every instrument method no-ops, so an uninstrumented
// scheduler pays one branch per site and allocates nothing.
type Metrics struct {
	QueueDepth     *telemetry.Gauge     // tasks waiting to start
	Backlog        *telemetry.Gauge     // Freetime() − now, seconds
	Plans          *telemetry.Counter   // policy runs
	PlanLatency    *telemetry.Histogram // wall-clock seconds per policy run
	TasksSubmitted *telemetry.Counter   // requests accepted into the queue
	TasksStarted   *telemetry.Counter   // tasks promoted into execution
}

// NewMetrics builds the per-resource scheduler instruments on reg; the
// zero (disabled) Metrics on a nil registry.
func NewMetrics(reg *telemetry.Registry, resource string) Metrics {
	if reg == nil {
		return Metrics{}
	}
	l := func(name string) string { return telemetry.Label(name, "resource", resource) }
	return Metrics{
		QueueDepth:     reg.Gauge(l("sched_queue_depth")),
		Backlog:        reg.Gauge(l("sched_backlog_s")),
		Plans:          reg.Counter(l("sched_plans_total")),
		PlanLatency:    reg.Histogram(l("sched_plan_latency_s")),
		TasksSubmitted: reg.Counter(l("sched_tasks_submitted_total")),
		TasksStarted:   reg.Counter(l("sched_tasks_started_total")),
	}
}
