package scheduler

import (
	"strings"
	"testing"

	"repro/internal/pace"
)

func TestCommandExecutorRunsMappedCommand(t *testing.T) {
	e := NewCommandExecutor()
	if err := e.Map("fft", "echo", "task={task}", "nproc={nproc}", "app={app}"); err != nil {
		t.Fatal(err)
	}
	l, err := NewLocal(Config{
		Name: "S1", HW: pace.SGIOrigin2000, NumNodes: 4,
		Policy: NewFIFOPolicy(), Engine: pace.NewEngine(), Executor: e,
	})
	if err != nil {
		t.Fatal(err)
	}
	id, err := l.Submit(appOf(t, "fft"), 1e9, 0)
	if err != nil {
		t.Fatal(err)
	}
	l.Drain()
	e.Wait()

	if got := e.Launched(); len(got) != 1 || got[0].TaskID != id {
		t.Fatalf("launched: %+v", got)
	}
	res := e.Results()
	if len(res) != 1 {
		t.Fatalf("%d process results", len(res))
	}
	if res[0].Err != nil {
		t.Fatalf("process failed: %v (%s)", res[0].Err, res[0].Output)
	}
	// fft on an idle 4-node pool allocates all 4 nodes (Table 1 is
	// monotone decreasing to 16).
	for _, want := range []string{"task=", "nproc=4", "app=fft"} {
		if !strings.Contains(res[0].Output, want) {
			t.Fatalf("output %q missing %q", res[0].Output, want)
		}
	}
}

func TestCommandExecutorUnmappedFallsBackToTestMode(t *testing.T) {
	e := NewCommandExecutor()
	l, err := NewLocal(Config{
		Name: "S1", HW: pace.SGIOrigin2000, NumNodes: 2,
		Policy: NewFIFOPolicy(), Engine: pace.NewEngine(), Executor: e,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Submit(appOf(t, "closure"), 1e9, 0); err != nil {
		t.Fatal(err)
	}
	l.Drain()
	e.Wait()
	if len(e.Launched()) != 1 {
		t.Fatal("launch not recorded")
	}
	if len(e.Results()) != 0 {
		t.Fatal("unmapped app spawned a process")
	}
}

func TestCommandExecutorFailedProcessReported(t *testing.T) {
	e := NewCommandExecutor()
	if err := e.Map("closure", "false"); err != nil {
		t.Fatal(err)
	}
	l, err := NewLocal(Config{
		Name: "S1", HW: pace.SGIOrigin2000, NumNodes: 2,
		Policy: NewFIFOPolicy(), Engine: pace.NewEngine(), Executor: e,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Submit(appOf(t, "closure"), 1e9, 0); err != nil {
		t.Fatal(err)
	}
	l.Drain()
	e.Wait()
	res := e.Results()
	if len(res) != 1 || res[0].Err == nil {
		t.Fatalf("failing process not reported: %+v", res)
	}
}

func TestCommandExecutorParseMapping(t *testing.T) {
	e := NewCommandExecutor()
	if err := e.ParseMapping("sweep3d=/bin/echo hello {task}"); err != nil {
		t.Fatal(err)
	}
	for _, bad := range []string{"nosign", "=", "app=", "=cmd"} {
		if err := e.ParseMapping(bad); err == nil {
			t.Errorf("bad mapping %q accepted", bad)
		}
	}
	if err := e.Map("", "x"); err == nil {
		t.Error("empty app accepted")
	}
	if err := e.Map("x"); err == nil {
		t.Error("empty argv accepted")
	}
}
