package scheduler

import (
	"fmt"
	"math"
	"math/bits"
	"sort"
	"time"

	"repro/internal/pace"
	"repro/internal/reserve"
	"repro/internal/schedule"
)

// Record is the completed placement of one task: which physical nodes ran
// it, when it started and completed, and the contract it had to meet. The
// metrics of §3.3 are computed over these records.
type Record struct {
	TaskID int // scheduler-local ID; restarts at 1 on every resource
	// ReqID is the grid-wide request identity minted at arrival
	// (core.SubmitAt) and preserved across re-dispatches; 0 for tasks
	// submitted directly to a standalone scheduler.
	ReqID    uint64
	App      *pace.AppModel
	Arrival  float64
	Deadline float64
	Mask     uint64 // physical node mask on the owning resource
	Start    float64
	End      float64
	Resource string
	// Predicted is the PACE-predicted execution duration the plan was
	// built on. End−Start equals Predicted unless an ActualDuration hook
	// or a degradation slowdown stretched the real execution — the gap is
	// the drift signal the migration policy watches.
	Predicted float64
}

// Executor is the task-execution module of Fig. 3. Under the paper's test
// mode tasks are not actually executed: "the predictive application
// execution times are scheduled and assumed to be accurate" (§3.2).
type Executor interface {
	// Launch is called exactly once per task, when it begins execution.
	Launch(rec Record)
}

// TestExecutor implements test mode: it records launches and does nothing
// else.
type TestExecutor struct {
	Launched []Record
}

// Launch implements Executor.
func (e *TestExecutor) Launch(rec Record) { e.Launched = append(e.Launched, rec) }

// Config configures a Local scheduler.
type Config struct {
	Name         string        // resource/agent identity, e.g. "S1"
	HW           pace.Hardware // static resource model for all nodes
	NumNodes     int           // homogeneous processing nodes (§3.2)
	Policy       Policy        // GA or FIFO
	Engine       *pace.Engine  // PACE evaluation engine (shared or private)
	Environments []string      // supported execution environments; defaults to {"test"}
	Executor     Executor      // defaults to a TestExecutor

	// ActualDuration, when set, supplies the task's real execution time
	// given the prediction — the §5 prediction-accuracy study. The
	// scheduler keeps planning with predictions; reality diverges at
	// execution time and subsequent plans see the true node availability.
	// nil means predictions are exact (the paper's test mode).
	ActualDuration func(app *pace.AppModel, nprocs int, predicted float64, taskID int) float64
}

// Local is a performance-driven local grid scheduler (Fig. 3): one input
// (requests), two outputs (results, service information) and the task
// management, GA scheduling, resource monitoring, task execution and PACE
// evaluation modules in between.
//
// Local is driven in virtual time by its caller: AdvanceTo promotes
// planned tasks into execution as the clock passes their start times, and
// Submit enqueues work and replans the queue. It is not safe for
// concurrent use; the networked daemon in cmd/gridsched serialises access.
type Local struct {
	cfg     Config
	monitor *Monitor
	metrics Metrics

	pending   []schedule.Task // the GA's optimisation set T, arrival order
	plan      *schedule.Schedule
	planPhys  []int // compact node index -> physical node index for plan
	committed []Record
	nodeBusy  []float64 // physical per-node busy-until from committed tasks

	// book is the resource's advance-reservation book, created on first
	// use; reserved holds the confirmed reservations waiting for their
	// windows, sorted by window start. Both stay nil/empty — and cost
	// nothing — until a reservation reaches this resource.
	book     *reserve.Book
	reserved []reservedTask

	nextID int
	now    float64

	// nextStart caches the earliest planned start time (+Inf with no
	// plan), letting AdvanceTo return without touching the plan when the
	// clock has not reached it — the grid advances thousands of idle
	// schedulers per arrival otherwise. planHook, when set, is told the
	// new horizon after every plan change so the grid can maintain a
	// due-time index instead of polling every scheduler.
	nextStart float64
	planHook  func(at float64)

	// clock, when set, supplies the grid's virtual time. Freetime floors
	// at it so advertisements stay correct while l.now lags behind under
	// lazy advancement (an idle scheduler's clock is only moved when work
	// or a planned start reaches it).
	clock func() float64

	// slowdown, when set, multiplies the execution duration of every task
	// by the factor in effect at its start time — how fault-plan
	// degradation windows reach the scheduler. It stacks on top of any
	// ActualDuration hook, and unlike that hook it is keyed on the start
	// instant, so the same plan always degrades the same tasks no matter
	// how clock advances interleave with fault events.
	slowdown func(start float64) float64
}

// NewLocal validates cfg and returns a scheduler at virtual time 0.
func NewLocal(cfg Config) (*Local, error) {
	if cfg.Name == "" {
		return nil, fmt.Errorf("scheduler: config needs a name")
	}
	if err := cfg.HW.Valid(); err != nil {
		return nil, err
	}
	if cfg.NumNodes < 1 || cfg.NumNodes > schedule.MaxNodes {
		return nil, fmt.Errorf("scheduler: %q: node count %d outside [1, %d]", cfg.Name, cfg.NumNodes, schedule.MaxNodes)
	}
	if cfg.Policy == nil {
		return nil, fmt.Errorf("scheduler: %q: no scheduling policy", cfg.Name)
	}
	if cfg.Engine == nil {
		return nil, fmt.Errorf("scheduler: %q: no PACE evaluation engine", cfg.Name)
	}
	if len(cfg.Environments) == 0 {
		cfg.Environments = []string{"test"}
	}
	if cfg.Executor == nil {
		cfg.Executor = &TestExecutor{}
	}
	return &Local{
		cfg:       cfg,
		monitor:   NewMonitor(cfg.NumNodes),
		nodeBusy:  make([]float64, cfg.NumNodes),
		nextStart: math.Inf(1),
	}, nil
}

// SetClock installs a shared virtual-time source (nil removes it).
// Freetime — and therefore every advertisement and eq. 10 estimate —
// floors at the shared clock, so a scheduler whose own clock lags under
// lazy advancement still reports the same freetime an eagerly advanced
// one would.
func (l *Local) SetClock(fn func() float64) { l.clock = fn }

// SetPlanHook installs fn (nil removes it), called with the earliest
// planned start time whenever a replan or promotion changes the plan and
// at least one task remains planned. The grid uses it to index which
// schedulers are due at a given virtual time.
func (l *Local) SetPlanHook(fn func(at float64)) { l.planHook = fn }

// NextPlannedStart returns the earliest planned start time, or +Inf when
// nothing is planned.
func (l *Local) NextPlannedStart() float64 { return l.nextStart }

// refreshNextStart recomputes the cached plan horizon and notifies the
// plan hook.
func (l *Local) refreshNextStart() {
	next := math.Inf(1)
	if l.plan != nil {
		for _, it := range l.plan.Items {
			if it.Start < next {
				next = it.Start
			}
		}
	}
	for _, r := range l.reserved {
		if r.start < next {
			next = r.start
		}
	}
	l.nextStart = next
	if l.planHook != nil && !math.IsInf(next, 1) {
		l.planHook(next)
	}
}

// Name returns the resource identity.
func (l *Local) Name() string { return l.cfg.Name }

// Hardware returns the static resource model.
func (l *Local) Hardware() pace.Hardware { return l.cfg.HW }

// NumNodes returns the configured node count.
func (l *Local) NumNodes() int { return l.cfg.NumNodes }

// Environments returns the supported execution environments.
func (l *Local) Environments() []string { return l.cfg.Environments }

// Monitor exposes the resource monitor (for failure injection).
func (l *Local) Monitor() *Monitor { return l.monitor }

// Engine returns the PACE evaluation engine this scheduler queries.
func (l *Local) Engine() *pace.Engine { return l.cfg.Engine }

// Policy returns the active scheduling policy.
func (l *Local) Policy() Policy { return l.cfg.Policy }

// SetMetrics installs telemetry instruments; the zero Metrics disables
// instrumentation again. Call before driving the scheduler.
func (l *Local) SetMetrics(m Metrics) { l.metrics = m }

// updateGauges refreshes the queue-shape gauges after a queue change.
// Backlog is gated on its instrument because Freetime() walks the node
// horizon — with telemetry off this must stay free.
func (l *Local) updateGauges() {
	l.metrics.QueueDepth.Set(float64(len(l.pending)))
	if l.metrics.Backlog != nil {
		l.metrics.Backlog.Set(l.Freetime() - l.now)
	}
}

// PolicyName reports the active scheduling policy.
func (l *Local) PolicyName() string { return l.cfg.Policy.Name() }

// Now returns the scheduler's current virtual time.
func (l *Local) Now() float64 { return l.now }

// QueueLen returns the number of tasks waiting to start.
func (l *Local) QueueLen() int { return len(l.pending) }

// duration returns t_x(k, app) for this resource's hardware. The call
// goes straight to the evaluation engine: the demand-driven cache of past
// evaluations "between the scheduler and the PACE evaluation engine"
// (§2.2) lives inside the engine, so disabling it for the ablation study
// exposes the full evaluation cost to the GA.
func (l *Local) duration(app *pace.AppModel, k int) float64 {
	return l.cfg.Engine.MustPredict(app, l.cfg.HW, k)
}

// Submit enqueues a task with the given application model and absolute
// deadline, replans the queue, and returns the task's scheduler-local ID.
// The clock is advanced to now first, promoting any planned starts the
// clock passes. Tasks submitted this way carry no grid-wide request
// identity; grid-level callers use SubmitRequest.
func (l *Local) Submit(app *pace.AppModel, deadline float64, now float64) (int, error) {
	return l.SubmitRequest(app, deadline, now, 0)
}

// SubmitRequest is Submit with the grid-wide request ID minted at arrival
// threaded through: the ID is stamped on the queued task and every
// execution record derived from it, so lifecycle events can be joined
// across resources (scheduler-local IDs restart at 1 on each resource).
func (l *Local) SubmitRequest(app *pace.AppModel, deadline, now float64, reqID uint64) (int, error) {
	if app == nil {
		return 0, fmt.Errorf("scheduler: %q: nil application model", l.cfg.Name)
	}
	if l.monitor.NumUp() == 0 {
		return 0, fmt.Errorf("scheduler: %q: no processing nodes available", l.cfg.Name)
	}
	l.AdvanceTo(now)
	l.nextID++
	id := l.nextID
	l.pending = append(l.pending, schedule.Task{ID: id, ReqID: reqID, App: app, Arrival: now, Deadline: deadline})
	l.replan()
	l.metrics.TasksSubmitted.Inc()
	l.updateGauges()
	return id, nil
}

// Delete removes a waiting task from the queue (task management supports
// "adding, deleting or inserting tasks", §2.2). Tasks that already began
// execution cannot be deleted.
func (l *Local) Delete(taskID int, now float64) error {
	l.AdvanceTo(now)
	for i, t := range l.pending {
		if t.ID == taskID {
			l.pending = append(l.pending[:i], l.pending[i+1:]...)
			l.cfg.Policy.Forget(taskID)
			l.replan()
			l.updateGauges()
			return nil
		}
	}
	return fmt.Errorf("scheduler: %q: task %d is not waiting", l.cfg.Name, taskID)
}

// replan runs the scheduling policy over the pending queue against the
// currently available nodes.
func (l *Local) replan() {
	defer l.refreshNextStart()
	up := l.monitor.UpNodes()
	if len(up) == 0 {
		l.plan, l.planPhys = nil, nil
		return
	}
	res := schedule.Resource{NumNodes: len(up), Avail: make([]float64, len(up))}
	for c, phys := range up {
		res.Avail[c] = l.nodeBusy[phys]
	}
	if l.book != nil {
		// Booked windows are immovable constraints: map the active
		// physical-node windows into the plan's compact node space.
		if wins := l.book.Windows(l.now); wins != nil {
			booked := make([][]schedule.Window, len(up))
			for c, phys := range up {
				booked[c] = wins[phys]
			}
			res.Booked = booked
		}
	}
	predict := func(app *pace.AppModel, k int) float64 { return l.duration(app, k) }
	l.metrics.Plans.Inc()
	if l.metrics.PlanLatency != nil {
		t0 := time.Now()
		l.plan = l.cfg.Policy.Plan(l.pending, res, l.now, predict)
		l.metrics.PlanLatency.Observe(time.Since(t0).Seconds())
	} else {
		l.plan = l.cfg.Policy.Plan(l.pending, res, l.now, predict)
	}
	l.planPhys = up
}

// AdvanceTo moves the scheduler's clock to now, promoting every planned
// task whose start time has been reached into execution ("once a task
// begins execution, it is removed from the task set T", §2.2).
func (l *Local) AdvanceTo(now float64) {
	if now < l.now {
		panic(fmt.Sprintf("scheduler: %q: clock moved backwards %v -> %v", l.cfg.Name, l.now, now))
	}
	l.now = now
	// Nothing is due strictly before the cached plan horizon; skip the
	// promotion scan (it copies and sorts the plan). now == nextStart must
	// fall through: a replan can place a start exactly at the current
	// instant and the next advance to that same instant promotes it.
	if now < l.nextStart {
		return
	}
	l.promoteReserved(now)
	l.promote(func(p schedule.Placed) bool { return p.Start <= now })
}

// Drain promotes every remaining planned task regardless of the clock,
// completing the simulation of the queue. It returns the final makespan
// (the time the last task completes), or the current time for an empty
// queue.
func (l *Local) Drain() float64 {
	l.promoteReserved(math.Inf(1))
	l.promote(func(schedule.Placed) bool { return true })
	end := l.now
	for _, b := range l.nodeBusy {
		if b > end {
			end = b
		}
	}
	return end
}

// promote moves planned tasks matching ready into the committed set, in
// start-time order. The surviving items keep their timing: they were
// computed jointly with the promoted ones, so the residual plan stays
// feasible and consistent. The policy replans on the next Submit or
// Delete; rerunning the GA on every clock advance would add cost without
// new information.
func (l *Local) promote(ready func(schedule.Placed) bool) {
	if l.plan == nil || len(l.plan.Items) == 0 {
		return
	}
	byStart := make([]schedule.Placed, len(l.plan.Items))
	copy(byStart, l.plan.Items)
	sort.SliceStable(byStart, func(i, j int) bool { return byStart[i].Start < byStart[j].Start })

	// Active reservation windows, in physical node space: a best-effort
	// start pushed late by real execution times must slide past them, not
	// into them (the plan avoided the windows with predicted durations;
	// reality can overrun the gap in front of one).
	var wins [][]schedule.Window
	if l.book != nil {
		wins = l.book.Windows(l.now)
	}

	oldPending := l.pending
	promoted := map[int]bool{} // keyed by task ID
	for _, it := range byStart {
		if !ready(it) {
			continue
		}
		t := oldPending[it.TaskPos]
		mask := l.physMask(it.Mask)
		// When actual execution times diverge from predictions, a node may
		// still be busy past the planned start; the task then begins late
		// (in reality the earlier task has not released the node yet).
		start := it.Start
		for m := mask; m != 0; m &= m - 1 {
			if b := l.nodeBusy[bits.TrailingZeros64(m)]; b > start {
				start = b
			}
		}
		predicted := it.End - it.Start
		dur := predicted
		if l.cfg.ActualDuration != nil {
			dur = l.cfg.ActualDuration(t.App, bits.OnesCount64(it.Mask), dur, t.ID)
			if dur < 0 {
				dur = 0
			}
		}
		base := dur // actual duration before any start-keyed slowdown
		if l.slowdown != nil {
			if f := l.slowdown(start); f > 0 {
				dur *= f
			}
		}
		if wins != nil {
			// Fixed point: clearing a window can move the start into a
			// different slowdown regime, which changes the duration, which
			// can hit another window. The start only ever moves forward.
			for {
				adj := schedule.AdjustStart(wins, mask, start, dur)
				if adj == start {
					break
				}
				start = adj
				dur = base
				if l.slowdown != nil {
					if f := l.slowdown(start); f > 0 {
						dur = base * f
					}
				}
			}
		}
		rec := Record{
			TaskID:    t.ID,
			ReqID:     t.ReqID,
			App:       t.App,
			Arrival:   t.Arrival,
			Deadline:  t.Deadline,
			Mask:      mask,
			Start:     start,
			End:       start + dur,
			Resource:  l.cfg.Name,
			Predicted: predicted,
		}
		l.committed = append(l.committed, rec)
		l.cfg.Executor.Launch(rec)
		for m := rec.Mask; m != 0; m &= m - 1 {
			phys := bits.TrailingZeros64(m)
			if rec.End > l.nodeBusy[phys] {
				l.nodeBusy[phys] = rec.End
			}
		}
		promoted[t.ID] = true
		l.cfg.Policy.Forget(t.ID)
	}
	if len(promoted) == 0 {
		return
	}
	defer l.refreshNextStart()
	l.metrics.TasksStarted.Add(uint64(len(promoted)))
	defer l.updateGauges()

	// Rebuild pending and translate the surviving plan items to the new
	// task positions.
	newPos := make(map[int]int, len(oldPending)) // task ID -> new position
	newPending := make([]schedule.Task, 0, len(oldPending)-len(promoted))
	for _, t := range oldPending {
		if !promoted[t.ID] {
			newPos[t.ID] = len(newPending)
			newPending = append(newPending, t)
		}
	}
	l.pending = newPending
	if len(l.pending) == 0 {
		l.plan, l.planPhys = nil, nil
		return
	}
	residual := make([]schedule.Placed, 0, len(l.pending))
	for _, it := range l.plan.Items {
		id := oldPending[it.TaskPos].ID
		if promoted[id] {
			continue
		}
		it.TaskPos = newPos[id]
		residual = append(residual, it)
	}
	l.plan = &schedule.Schedule{
		Items:    residual,
		NodeBusy: l.plan.NodeBusy,
		Makespan: l.plan.Makespan,
		Base:     l.plan.Base,
	}
}

// physMask translates a plan-space (compacted) node mask to physical node
// indices.
func (l *Local) physMask(compact uint64) uint64 {
	var phys uint64
	for m := compact; m != 0; m &= m - 1 {
		c := bits.TrailingZeros64(m)
		phys |= uint64(1) << uint(l.planPhys[c])
	}
	return phys
}

// AdvanceBefore returns the summed advance time Σ(δ_r − end) and the
// count over committed tasks that have completed by virtual time t —
// the running ε numerator and denominator, which the telemetry sampler
// probes mid-run to chart grid-wide ε over time. Read-only.
func (l *Local) AdvanceBefore(t float64) (sum float64, n int) {
	for _, r := range l.committed {
		if r.End <= t {
			sum += r.Deadline - r.End
			n++
		}
	}
	return sum, n
}

// SetSlowdown installs (or, with nil, removes) the degradation hook: fn
// returns the execution-time multiplier in effect for a task starting at
// the given virtual time (1 or less means no slowdown). Call before
// driving the scheduler; already-committed tasks are unaffected.
func (l *Local) SetSlowdown(fn func(start float64) float64) { l.slowdown = fn }

// DriftBetween measures how far observed execution times drifted from
// the PACE predictions over committed tasks completing in (t0, t1]: the
// summed observed and predicted durations plus the task count. The
// relative drift obs/pred − 1 is the migration policy's trigger signal —
// 0 when reality matches the model, 2 when a factor-3 degradation is in
// effect. Read-only, like AdvanceBefore.
func (l *Local) DriftBetween(t0, t1 float64) (obs, pred float64, n int) {
	for _, r := range l.committed {
		if r.End > t0 && r.End <= t1 {
			obs += r.End - r.Start
			if r.Predicted > 0 {
				pred += r.Predicted
			} else {
				pred += r.End - r.Start // pre-Predicted records: no drift
			}
			n++
		}
	}
	return obs, pred, n
}

// Records returns the committed (started or finished) tasks in start
// order.
func (l *Local) Records() []Record {
	out := make([]Record, len(l.committed))
	copy(out, l.committed)
	sort.SliceStable(out, func(i, j int) bool { return out[i].Start < out[j].Start })
	return out
}

// Planned returns the current schedule for tasks that have not begun
// execution, as records carrying the planned start/completion times, in
// start order. The plan changes as tasks arrive, start, or are deleted.
func (l *Local) Planned() []Record {
	if l.plan == nil {
		return nil
	}
	out := make([]Record, 0, len(l.plan.Items))
	for _, it := range l.plan.Items {
		t := l.pending[it.TaskPos]
		out = append(out, Record{
			TaskID:   t.ID,
			ReqID:    t.ReqID,
			App:      t.App,
			Arrival:  t.Arrival,
			Deadline: t.Deadline,
			Mask:     l.physMask(it.Mask),
			Start:    it.Start,
			End:      it.End,
			Resource: l.cfg.Name,
		})
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Start < out[j].Start })
	return out
}

// Freetime returns ω: "the earliest (approximate) time that corresponding
// processors become available for more tasks" (§3.2) — the maximum of the
// current clock, the committed per-node busy horizon, and the makespan of
// the latest schedule over pending work. The plan's makespan alone is not
// enough: under the §5 prediction-error study actual execution times can
// run past the planned horizon, and a plan over a degraded node set never
// sees the busy times of down nodes — either way an agent advertising
// only the makespan would promise optimistic freetime.
func (l *Local) Freetime() float64 {
	ft := l.now
	if l.clock != nil {
		if c := l.clock(); c > ft {
			ft = c
		}
	}
	if l.book != nil {
		// Booked windows are sold: the nodes are not available for more
		// tasks until the last active booking ends, so the advertised
		// freetime covers it — and snaps back the instant a hold expires
		// or a booking is released.
		if h := l.book.Horizon(ft); h > ft {
			ft = h
		}
	}
	for _, b := range l.nodeBusy {
		if b > ft {
			ft = b
		}
	}
	if l.plan != nil && len(l.plan.Items) > 0 && l.plan.Makespan > ft {
		ft = l.plan.Makespan
	}
	return ft
}

// EstimateCompletion implements eq. 10 for this resource: the expected
// completion time of app if it were dispatched here now,
//
//	η_r = ω + min over node subsets of t_x(ρ, σ_r),
//
// which for a homogeneous resource means evaluating the PACE engine once
// per node count (§3.2).
func (l *Local) EstimateCompletion(app *pace.AppModel) (float64, error) {
	up := l.monitor.NumUp()
	if up == 0 {
		return 0, fmt.Errorf("scheduler: %q: no processing nodes available", l.cfg.Name)
	}
	best := math.Inf(1)
	for k := 1; k <= up; k++ {
		d, err := l.cfg.Engine.Predict(app, l.cfg.HW, k)
		if err != nil {
			return 0, err
		}
		if d < best {
			best = d
		}
	}
	return l.Freetime() + best, nil
}

// ServiceInfo is the advertisement a local scheduler submits to its agent
// (Fig. 5): identity, hardware model, node count, supported execution
// environments and the freetime estimate the agents use to judge
// workload.
type ServiceInfo struct {
	Name         string
	HWType       string
	NProc        int
	Environments []string
	Freetime     float64

	// FailedPulls and Redispatches are the publishing agent's fault
	// counters, filled in by the agent layer so peers (and the Experiment
	// 4 harness) can observe a resource's failure history alongside its
	// advertisement. The scheduler itself always reports zero.
	FailedPulls  int
	Redispatches int
}

// ServiceInfo returns the current advertisement.
func (l *Local) ServiceInfo() ServiceInfo {
	envs := make([]string, len(l.cfg.Environments))
	copy(envs, l.cfg.Environments)
	return ServiceInfo{
		Name:         l.cfg.Name,
		HWType:       l.cfg.HW.Name,
		NProc:        l.cfg.NumNodes,
		Environments: envs,
		Freetime:     l.Freetime(),
	}
}

// SupportsEnvironment reports whether the scheduler can execute tasks in
// the given environment (matchmaking precondition, §3.2).
func (l *Local) SupportsEnvironment(env string) bool {
	for _, e := range l.cfg.Environments {
		if e == env {
			return true
		}
	}
	return false
}
