package scheduler

import (
	"fmt"
	"os/exec"
	"strconv"
	"strings"
	"sync"
)

// CommandExecutor is the task-execution module's real mode: when a task
// begins execution it launches a pre-compiled program, the way the
// paper's system runs MPI/PVM binaries that "must be pre-compiled and
// available in all local file systems" (§2.2). Commands are looked up by
// application name; tasks without a mapping fall back to test mode
// (recorded, not executed).
//
// Command templates may reference placeholders, substituted per launch:
//
//	{task}  the task ID
//	{nproc} the allocated node count
//	{app}   the application model name
//
// Launches are asynchronous — the virtual schedule is authoritative for
// timing (test-mode semantics); the spawned process is the side effect.
// CommandExecutor is safe for concurrent use.
type CommandExecutor struct {
	mu       sync.Mutex
	commands map[string][]string // app name -> argv template
	launched []Record
	done     []LaunchResult
	wg       sync.WaitGroup
}

// LaunchResult records one finished process.
type LaunchResult struct {
	TaskID int
	App    string
	Err    error // nil on exit status 0
	Output string
}

// NewCommandExecutor returns an executor with no command mappings.
func NewCommandExecutor() *CommandExecutor {
	return &CommandExecutor{commands: map[string][]string{}}
}

// Map registers the argv template to run for an application. The first
// element is the binary path.
func (e *CommandExecutor) Map(app string, argv ...string) error {
	if app == "" || len(argv) == 0 || argv[0] == "" {
		return fmt.Errorf("scheduler: command mapping needs an app name and a binary")
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	e.commands[app] = append([]string(nil), argv...)
	return nil
}

// ParseMapping registers a mapping in "app=binary arg arg..." form, the
// shape the CLI flags use.
func (e *CommandExecutor) ParseMapping(spec string) error {
	app, cmdline, ok := strings.Cut(spec, "=")
	if !ok {
		return fmt.Errorf("scheduler: bad exec mapping %q, want app=binary args...", spec)
	}
	fields := strings.Fields(cmdline)
	return e.Map(strings.TrimSpace(app), fields...)
}

// Launch implements Executor: record the start and, when a command is
// mapped, spawn it asynchronously.
func (e *CommandExecutor) Launch(rec Record) {
	e.mu.Lock()
	e.launched = append(e.launched, rec)
	app := ""
	if rec.App != nil {
		app = rec.App.Name
	}
	argv, ok := e.commands[app]
	e.mu.Unlock()
	if !ok {
		return // test mode for unmapped applications
	}

	nproc := 0
	for m := rec.Mask; m != 0; m &= m - 1 {
		nproc++
	}
	expanded := make([]string, len(argv))
	for i, a := range argv {
		a = strings.ReplaceAll(a, "{task}", strconv.Itoa(rec.TaskID))
		a = strings.ReplaceAll(a, "{nproc}", strconv.Itoa(nproc))
		a = strings.ReplaceAll(a, "{app}", app)
		expanded[i] = a
	}

	e.wg.Add(1)
	go func() {
		defer e.wg.Done()
		out, err := exec.Command(expanded[0], expanded[1:]...).CombinedOutput()
		e.mu.Lock()
		e.done = append(e.done, LaunchResult{TaskID: rec.TaskID, App: app, Err: err, Output: string(out)})
		e.mu.Unlock()
	}()
}

// Wait blocks until every spawned process has finished.
func (e *CommandExecutor) Wait() {
	e.wg.Wait()
}

// Launched returns the records seen by Launch, in order.
func (e *CommandExecutor) Launched() []Record {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]Record, len(e.launched))
	copy(out, e.launched)
	return out
}

// Results returns the finished process results (order is completion
// order, not launch order).
func (e *CommandExecutor) Results() []LaunchResult {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]LaunchResult, len(e.done))
	copy(out, e.done)
	return out
}
