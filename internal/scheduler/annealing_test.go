package scheduler

import (
	"testing"

	"repro/internal/pace"
	"repro/internal/schedule"
	"repro/internal/sim"
)

func heuristicTasks(t *testing.T, n int) []schedule.Task {
	t.Helper()
	names := pace.CaseStudyAppNames
	tasks := make([]schedule.Task, n)
	for i := range tasks {
		tasks[i] = schedule.Task{ID: i + 1, App: appOf(t, names[i%len(names)]), Deadline: 300}
	}
	return tasks
}

func TestSAPolicyPlansAllTasks(t *testing.T) {
	s := NewSAPolicy(sim.NewRNG(1))
	s.Iterations = 400
	e := pace.NewEngine()
	pred := enginePredictor(e, pace.SunUltra5)
	tasks := heuristicTasks(t, 8)
	plan := s.Plan(tasks, schedule.NewResource(8), 0, pred)
	if len(plan.Items) != 8 {
		t.Fatalf("plan has %d items", len(plan.Items))
	}
	if s.Name() != "sa" {
		t.Fatal("wrong name")
	}
}

func TestTabuPolicyPlansAllTasks(t *testing.T) {
	tp := NewTabuPolicy(sim.NewRNG(2))
	tp.Moves, tp.Iterations = 20, 10
	e := pace.NewEngine()
	pred := enginePredictor(e, pace.SunUltra5)
	tasks := heuristicTasks(t, 8)
	plan := tp.Plan(tasks, schedule.NewResource(8), 0, pred)
	if len(plan.Items) != 8 {
		t.Fatalf("plan has %d items", len(plan.Items))
	}
	if tp.Name() != "tabu" {
		t.Fatal("wrong name")
	}
}

func TestHeuristicsBeatOrMatchGreedy(t *testing.T) {
	e := pace.NewEngine()
	pred := enginePredictor(e, pace.SunUltra5)
	tasks := heuristicTasks(t, 10)
	res := schedule.NewResource(16)
	p := schedule.NewProblem(tasks, res, 0, pred)
	greedy := p.Cost(p.GreedySeed())

	sa := NewSAPolicy(sim.NewRNG(3))
	saCost := p.Cost(planToSolution(t, sa, tasks, res, pred))
	tb := NewTabuPolicy(sim.NewRNG(4))
	tbCost := p.Cost(planToSolution(t, tb, tasks, res, pred))

	if saCost > greedy+1e-9 {
		t.Errorf("SA cost %v worse than greedy %v", saCost, greedy)
	}
	if tbCost > greedy+1e-9 {
		t.Errorf("tabu cost %v worse than greedy %v", tbCost, greedy)
	}
}

// planToSolution reconstructs the solution a policy settled on from its
// built schedule (order by execution sequence, masks from placements).
func planToSolution(t *testing.T, pol Policy, tasks []schedule.Task, res schedule.Resource, pred schedule.Predictor) schedule.Solution {
	t.Helper()
	s := pol.Plan(tasks, res, 0, pred)
	sol := schedule.Solution{Order: make([]int, 0, len(tasks)), Maps: make([]uint64, len(tasks))}
	for _, it := range s.Items {
		sol.Order = append(sol.Order, it.TaskPos)
		sol.Maps[it.TaskPos] = it.Mask
	}
	if err := sol.Validate(len(tasks), res.NumNodes); err != nil {
		t.Fatal(err)
	}
	return sol
}

func TestSAPolicyEmptyQueueAndForget(t *testing.T) {
	s := NewSAPolicy(sim.NewRNG(5))
	e := pace.NewEngine()
	plan := s.Plan(nil, schedule.NewResource(4), 3, enginePredictor(e, pace.SGIOrigin2000))
	if len(plan.Items) != 0 {
		t.Fatal("empty plan has items")
	}
	s.Forget(99) // must not panic on unknown IDs
}

func TestTabuPolicyEmptyQueueAndForget(t *testing.T) {
	tp := NewTabuPolicy(sim.NewRNG(6))
	e := pace.NewEngine()
	plan := tp.Plan(nil, schedule.NewResource(4), 3, enginePredictor(e, pace.SGIOrigin2000))
	if len(plan.Items) != 0 {
		t.Fatal("empty plan has items")
	}
	tp.Forget(99)
}

func TestHeuristicPoliciesInLocalScheduler(t *testing.T) {
	for _, mk := range []func() Policy{
		func() Policy { p := NewSAPolicy(sim.NewRNG(7)); p.Iterations = 300; return p },
		func() Policy { p := NewTabuPolicy(sim.NewRNG(8)); p.Moves, p.Iterations = 15, 10; return p },
	} {
		pol := mk()
		l := newTestLocal(t, "S", pol, 8)
		for i := 0; i < 12; i++ {
			if _, err := l.Submit(appOf(t, pace.CaseStudyAppNames[i%7]), 1e9, float64(i)); err != nil {
				t.Fatal(err)
			}
		}
		l.Drain()
		if got := len(l.Records()); got != 12 {
			t.Fatalf("%s: %d records, want 12", pol.Name(), got)
		}
	}
}

func TestSolutionHashDiscriminates(t *testing.T) {
	rng := sim.NewRNG(9)
	a := schedule.NewRandomSolution(8, 8, rng)
	b := a.Clone()
	if solutionHash(a) != solutionHash(b) {
		t.Fatal("identical solutions hash differently")
	}
	b.Order[0], b.Order[1] = b.Order[1], b.Order[0]
	if solutionHash(a) == solutionHash(b) {
		t.Fatal("reordered solution hashes identically")
	}
	c := a.Clone()
	c.Maps[0] ^= 1 << 3
	if solutionHash(a) == solutionHash(c) {
		t.Fatal("remapped solution hashes identically")
	}
}

func TestCarryStateSharedSemantics(t *testing.T) {
	c := newCarryState()
	if _, ok := c.seed([]schedule.Task{{ID: 1}}, 4); ok {
		t.Fatal("fresh carry produced a seed")
	}
	tasks := []schedule.Task{{ID: 1}, {ID: 2}}
	c.remember(tasks, schedule.Solution{Order: []int{1, 0}, Maps: []uint64{0b01, 0b10}})
	seed, ok := c.seed(tasks, 2)
	if !ok {
		t.Fatal("no seed after remember")
	}
	if seed.Order[0] != 1 || seed.Order[1] != 0 {
		t.Fatalf("carry lost order: %v", seed.Order)
	}
	if seed.Maps[0] != 0b01 || seed.Maps[1] != 0b10 {
		t.Fatalf("carry lost maps: %v", seed.Maps)
	}
	c.forget(1)
	seed, _ = c.seed(tasks, 2)
	if seed.Maps[0] != 0b11 { // forgotten task falls back to the full pool
		t.Fatalf("forgotten task kept its mask: %b", seed.Maps[0])
	}
}
