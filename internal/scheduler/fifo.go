package scheduler

import (
	"math"
	"math/bits"
	"sort"

	"repro/internal/pace"
	"repro/internal/schedule"
)

// FIFOPolicy is the first-come-first-served baseline of §4.1: tasks are
// scheduled strictly in arrival order, each receiving the resource
// allocation that minimises its own completion time at the moment it is
// first planned. "As soon as the current best solution is found, it is
// fixed and will not change as new tasks enter the system." The search
// tries all 2^n − 1 possible allocations.
type FIFOPolicy struct {
	// Exhaustive selects the literal 2^n−1 subset enumeration of the
	// paper. When false, an equivalent fast path is used: for each
	// cardinality k the k earliest-available nodes are optimal on a
	// homogeneous resource. Both paths find an allocation with the
	// minimal completion time and minimal node count; within exact ties
	// the chosen node sets may differ (a property test pins down the
	// (end, cardinality) equivalence).
	Exhaustive bool

	fixed map[int]uint64 // task ID -> allocation fixed at first planning
}

// NewFIFOPolicy returns the baseline policy with the paper's literal
// 2^n−1 enumeration, as used in experiment 1.
func NewFIFOPolicy() *FIFOPolicy {
	return &FIFOPolicy{Exhaustive: true, fixed: map[int]uint64{}}
}

// NewFastFIFOPolicy returns the baseline with the homogeneity-aware
// allocation search, used by the allocation-search ablation bench.
func NewFastFIFOPolicy() *FIFOPolicy {
	return &FIFOPolicy{fixed: map[int]uint64{}}
}

// Name implements Policy.
func (f *FIFOPolicy) Name() string { return "fifo" }

// Forget implements Policy.
func (f *FIFOPolicy) Forget(taskID int) { delete(f.fixed, taskID) }

// Plan implements Policy. Tasks already planned keep their fixed
// allocation; new tasks (in arrival order) are allocated greedily against
// the projected node availability.
func (f *FIFOPolicy) Plan(tasks []schedule.Task, res schedule.Resource, now float64, predict schedule.Predictor) *schedule.Schedule {
	busy := make([]float64, res.NumNodes)
	copy(busy, res.Avail)

	sol := schedule.Solution{Order: make([]int, len(tasks)), Maps: make([]uint64, len(tasks))}
	for pos := range tasks {
		sol.Order[pos] = pos // FIFO never reorders
	}
	prevStart := now
	for pos, t := range tasks {
		floor := now
		if t.Arrival > floor {
			floor = t.Arrival
		}
		if prevStart > floor {
			floor = prevStart // strict queue order: no backfilling
		}
		mask, ok := f.fixed[t.ID]
		if !ok {
			if f.Exhaustive {
				mask = bestAllocationExhaustive(busy, res.Booked, floor, t.App, predict)
			} else {
				mask = bestAllocationFast(busy, res.Booked, floor, t.App, predict)
			}
			f.fixed[t.ID] = mask
		}
		sol.Maps[pos] = mask
		// Project this task onto the availability the next task sees.
		start := floor
		for m := mask; m != 0; m &= m - 1 {
			if a := busy[bits.TrailingZeros64(m)]; a > start {
				start = a
			}
		}
		dur := predict(t.App, bits.OnesCount64(mask))
		if res.Booked != nil {
			start = schedule.AdjustStart(res.Booked, mask, start, dur)
		}
		end := start + dur
		for m := mask; m != 0; m &= m - 1 {
			busy[bits.TrailingZeros64(m)] = end
		}
		prevStart = start
	}
	return schedule.BuildSequential(sol, tasks, res, now, predict)
}

// bestAllocationExhaustive tries every non-empty node subset and returns
// the one with the earliest completion, breaking ties towards fewer nodes
// and then the smaller mask value (determinism). Subset start times are
// computed with an O(2^n) dynamic program:
// maxAvail(m) = max(maxAvail(m \ lowbit), avail(lowbit)). Booked
// reservation windows delay a subset's start past any window it would
// overlap, so a subset straddling a reservation is judged by the
// completion it can actually achieve.
func bestAllocationExhaustive(busy []float64, booked [][]schedule.Window, floor float64, app *pace.AppModel, predict schedule.Predictor) uint64 {
	n := len(busy)
	total := uint64(1) << uint(n)
	maxAvail := make([]float64, total)
	// Predicted durations depend only on cardinality; tabulate once.
	dur := make([]float64, n+1)
	for k := 1; k <= n; k++ {
		dur[k] = predict(app, k)
	}

	best := uint64(0)
	bestEnd := math.Inf(1)
	bestCount := n + 1
	for m := uint64(1); m < total; m++ {
		low := m & (-m)
		rest := m &^ low
		a := busy[bits.TrailingZeros64(low)]
		if rest != 0 && maxAvail[rest] > a {
			a = maxAvail[rest]
		}
		maxAvail[m] = a
		start := a
		if floor > start {
			start = floor
		}
		k := bits.OnesCount64(m)
		if booked != nil {
			start = schedule.AdjustStart(booked, m, start, dur[k])
		}
		end := start + dur[k]
		if end < bestEnd ||
			(end == bestEnd && (k < bestCount || (k == bestCount && m < best))) {
			best, bestEnd, bestCount = m, end, k
		}
	}
	return best
}

// bestAllocationFast exploits homogeneity: for a fixed cardinality k, the
// completion-minimising subset is the k nodes with the earliest
// availability, so only n candidates need checking instead of 2^n − 1.
// Ties are broken identically to the exhaustive search. With booked
// windows present the k-earliest heuristic is no longer exact (a window
// can block precisely the earliest nodes), but each candidate's end is
// still computed honestly via AdjustStart, so the chosen allocation never
// overlaps a reservation once the builder places it.
func bestAllocationFast(busy []float64, booked [][]schedule.Window, floor float64, app *pace.AppModel, predict schedule.Predictor) uint64 {
	n := len(busy)
	type na struct {
		idx   int
		avail float64
	}
	nodes := make([]na, n)
	for i, a := range busy {
		nodes[i] = na{i, a}
	}
	sort.Slice(nodes, func(i, j int) bool {
		if nodes[i].avail != nodes[j].avail {
			return nodes[i].avail < nodes[j].avail
		}
		return nodes[i].idx < nodes[j].idx
	})

	best := uint64(0)
	bestEnd := math.Inf(1)
	bestCount := n + 1
	var mask uint64
	start := floor
	for k := 1; k <= n; k++ {
		mask |= uint64(1) << uint(nodes[k-1].idx)
		if nodes[k-1].avail > start {
			start = nodes[k-1].avail
		}
		d := predict(app, k)
		adj := start
		if booked != nil {
			// Keep the incremental start untouched: the push is specific to
			// this candidate's mask and duration.
			adj = schedule.AdjustStart(booked, mask, start, d)
		}
		end := adj + d
		if end < bestEnd || (end == bestEnd && (k < bestCount || (k == bestCount && mask < best))) {
			best, bestEnd, bestCount = mask, end, k
		}
	}
	return best
}
