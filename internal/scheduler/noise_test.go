package scheduler

import (
	"testing"

	"repro/internal/pace"
)

// newNoisyLocal builds a scheduler whose actual execution times are
// scaled by a fixed factor relative to predictions.
func newNoisyLocal(t *testing.T, factor float64) *Local {
	t.Helper()
	l, err := NewLocal(Config{
		Name: "S", HW: pace.SGIOrigin2000, NumNodes: 4,
		Policy: NewFIFOPolicy(), Engine: pace.NewEngine(),
		ActualDuration: func(_ *pace.AppModel, _ int, predicted float64, _ int) float64 {
			return predicted * factor
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestActualDurationStretchesRecords(t *testing.T) {
	l := newNoisyLocal(t, 2) // everything takes twice as long as predicted
	if _, err := l.Submit(appOf(t, "closure"), 1e9, 0); err != nil {
		t.Fatal(err)
	}
	l.Drain()
	rec := l.Records()[0]
	// closure on 4 nodes predicts 8s; reality takes 16s.
	if rec.End-rec.Start != 16 {
		t.Fatalf("actual duration %v, want 16", rec.End-rec.Start)
	}
}

func TestActualDurationNoNodeOverlap(t *testing.T) {
	// Optimistic predictions (reality 3x slower) must not double-book
	// nodes: later tasks start late rather than overlapping.
	l := newNoisyLocal(t, 3)
	for i := 0; i < 10; i++ {
		if _, err := l.Submit(appOf(t, "memsort"), 1e9, float64(i)); err != nil {
			t.Fatal(err)
		}
	}
	l.Drain()
	recs := l.Records()
	if len(recs) != 10 {
		t.Fatalf("%d records", len(recs))
	}
	for node := 0; node < 4; node++ {
		type iv struct{ a, b float64 }
		var ivs []iv
		for _, r := range recs {
			if r.Mask&(1<<uint(node)) != 0 {
				ivs = append(ivs, iv{r.Start, r.End})
			}
		}
		for i := 0; i < len(ivs); i++ {
			for j := i + 1; j < len(ivs); j++ {
				a, b := ivs[i], ivs[j]
				if a.a < b.b-1e-9 && b.a < a.b-1e-9 {
					t.Fatalf("node %d double-booked under noise: %+v and %+v", node, a, b)
				}
			}
		}
	}
}

func TestActualDurationFastRealityFreesNodesEarly(t *testing.T) {
	// Pessimistic predictions (reality 2x faster): all work completes
	// earlier than the predicted horizon.
	l := newNoisyLocal(t, 0.5)
	for i := 0; i < 4; i++ {
		if _, err := l.Submit(appOf(t, "fft"), 1e9, 0); err != nil {
			t.Fatal(err)
		}
	}
	end := l.Drain()
	exact := newTestLocal(t, "X", NewFIFOPolicy(), 4)
	for i := 0; i < 4; i++ {
		if _, err := exact.Submit(appOf(t, "fft"), 1e9, 0); err != nil {
			t.Fatal(err)
		}
	}
	exactEnd := exact.Drain()
	if end >= exactEnd {
		t.Fatalf("fast reality finished at %v, exact mode at %v", end, exactEnd)
	}
}

func TestFreetimeCoversCommittedHorizonUnderNoise(t *testing.T) {
	// The residual plan keeps its predicted timing after a promotion
	// (replanning happens on Submit/Delete, not on clock advances), so
	// when reality runs 3x slower than prediction the committed busy
	// horizon overtakes the plan makespan. Freetime must advertise the
	// later of the two — the plan alone would promise an optimistic
	// freetime to the discovery layer. A single node serialises the
	// queue, keeping a third task planned while the second overshoots.
	l, err := NewLocal(Config{
		Name: "S", HW: pace.SGIOrigin2000, NumNodes: 1,
		Policy: NewFIFOPolicy(), Engine: pace.NewEngine(),
		ActualDuration: func(_ *pace.AppModel, _ int, predicted float64, _ int) float64 {
			return predicted * 3
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := l.Submit(appOf(t, "closure"), 1e9, 0); err != nil {
			t.Fatal(err)
		}
	}
	// The first task promoted during the second Submit and its actual
	// duration is 3x the predicted one, so the second task's planned
	// start is the first's actual end. Walk the clock just past it: the
	// second promotes (and overshoots), the third stays planned.
	if len(l.Records()) != 1 {
		t.Fatalf("%d records after submits, want 1", len(l.Records()))
	}
	l.AdvanceTo(l.Records()[0].End + 1)

	var horizon float64
	for _, r := range l.Records() {
		if r.End > horizon {
			horizon = r.End
		}
	}
	if len(l.Records()) != 2 {
		t.Fatalf("%d records, want 2 promoted", len(l.Records()))
	}
	if l.plan == nil || len(l.plan.Items) == 0 {
		t.Fatal("expected a residual planned task")
	}
	if l.plan.Makespan >= horizon {
		t.Fatalf("scenario did not go stale: makespan %v, committed horizon %v", l.plan.Makespan, horizon)
	}
	if ft := l.Freetime(); ft != horizon {
		t.Fatalf("Freetime() = %v, want the committed busy horizon %v (stale plan makespan is %v)",
			ft, horizon, l.plan.Makespan)
	}
}

func TestActualDurationNegativeClamped(t *testing.T) {
	l, err := NewLocal(Config{
		Name: "S", HW: pace.SGIOrigin2000, NumNodes: 2,
		Policy: NewFIFOPolicy(), Engine: pace.NewEngine(),
		ActualDuration: func(_ *pace.AppModel, _ int, _ float64, _ int) float64 {
			return -5 // hostile model: must clamp to zero, not corrupt time
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Submit(appOf(t, "fft"), 1e9, 0); err != nil {
		t.Fatal(err)
	}
	l.Drain()
	rec := l.Records()[0]
	if rec.End != rec.Start {
		t.Fatalf("negative duration not clamped: %+v", rec)
	}
}
