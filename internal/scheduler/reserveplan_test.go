package scheduler

import (
	"reflect"
	"testing"

	"repro/internal/sim"
)

// policyCases enumerates every planning policy; blocked-window behaviour
// is a Policy-interface contract, not a GA feature.
func policyCases() []struct {
	name string
	make func() Policy
} {
	return []struct {
		name string
		make func() Policy
	}{
		{"fifo", func() Policy { return NewFIFOPolicy() }},
		{"fast-fifo", func() Policy { return NewFastFIFOPolicy() }},
		{"ga", func() Policy { return newGAForTest(1) }},
		{"sa", func() Policy { return NewSAPolicy(sim.NewRNG(2)) }},
		{"tabu", func() Policy { return NewTabuPolicy(sim.NewRNG(3)) }},
	}
}

// placements returns every placement the scheduler holds — planned and
// already-promoted alike (a replan at t=0 can promote a task starting at
// 0 on the very next clock advance).
func placements(l *Local) []Record {
	return append(l.Records(), l.Planned()...)
}

// assertNoOverlap fails if any placement intersects the booked window
// [wStart, wEnd) on a node of wMask.
func assertNoOverlap(t *testing.T, l *Local, wMask uint64, wStart, wEnd float64) {
	t.Helper()
	for _, r := range placements(l) {
		if r.Mask&wMask != 0 && r.Start < wEnd && r.End > wStart {
			t.Fatalf("task %d [%g,%g) mask %b overlaps booked [%g,%g) mask %b",
				r.TaskID, r.Start, r.End, r.Mask, wStart, wEnd, wMask)
		}
	}
}

// TestPoliciesPlanAroundHeldWindow holds a mid-horizon window on two of
// four nodes and checks every policy plans the queue around it.
func TestPoliciesPlanAroundHeldWindow(t *testing.T) {
	for _, pc := range policyCases() {
		t.Run(pc.name, func(t *testing.T) {
			l := newTestLocal(t, "S1", pc.make(), 4)
			app := appOf(t, "fft")
			if err := l.HoldReservation(7, "tester", 0b0011, 20, 80, 0, 1e6); err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 4; i++ {
				if _, err := l.Submit(app, 1e6, 0); err != nil {
					t.Fatal(err)
				}
			}
			if got := len(placements(l)); got != 4 {
				t.Fatalf("%d placements, want 4", got)
			}
			assertNoOverlap(t, l, 0b0011, 20, 80)
		})
	}
}

// TestPoliciesWindowStartingAtNow books all nodes starting exactly at the
// scheduling instant: nothing may start before the window clears.
func TestPoliciesWindowStartingAtNow(t *testing.T) {
	for _, pc := range policyCases() {
		t.Run(pc.name, func(t *testing.T) {
			l := newTestLocal(t, "S1", pc.make(), 4)
			app := appOf(t, "fft")
			if err := l.HoldReservation(7, "tester", 0b1111, 0, 30, 0, 1e6); err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 3; i++ {
				if _, err := l.Submit(app, 1e6, 0); err != nil {
					t.Fatal(err)
				}
			}
			for _, r := range l.Planned() {
				if r.Start < 30 {
					t.Fatalf("task %d planned at %g inside the [0,30) booking", r.TaskID, r.Start)
				}
			}
			assertNoOverlap(t, l, 0b1111, 0, 30)
		})
	}
}

// TestPoliciesFullyBookedResource books every node for a long horizon:
// the policies must still return a valid schedule, with all work pushed
// past the blockade — never inside it.
func TestPoliciesFullyBookedResource(t *testing.T) {
	for _, pc := range policyCases() {
		t.Run(pc.name, func(t *testing.T) {
			l := newTestLocal(t, "S1", pc.make(), 4)
			app := appOf(t, "fft")
			if err := l.HoldReservation(7, "tester", 0b1111, 0, 500, 0, 1e6); err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 3; i++ {
				if _, err := l.Submit(app, 1e6, 0); err != nil {
					t.Fatal(err)
				}
			}
			planned := l.Planned()
			if len(planned) != 3 {
				t.Fatalf("%d planned tasks, want 3", len(planned))
			}
			for _, r := range planned {
				if r.Start < 500 {
					t.Fatalf("task %d planned at %g inside the full [0,500) booking", r.TaskID, r.Start)
				}
			}
			// The advertisement must cover the blockade.
			if ft := l.Freetime(); ft < 500 {
				t.Fatalf("freetime %g does not cover the booked horizon 500", ft)
			}
		})
	}
}

// TestPoliciesZeroWidthHoldChangesNothing books a zero-width window and
// demands the plan of an identical unbooked scheduler, record for record.
func TestPoliciesZeroWidthHoldChangesNothing(t *testing.T) {
	for _, pc := range policyCases() {
		t.Run(pc.name, func(t *testing.T) {
			plain := newTestLocal(t, "S1", pc.make(), 4)
			booked := newTestLocal(t, "S1", pc.make(), 4)
			app := appOf(t, "fft")
			if err := booked.HoldReservation(7, "tester", 0b1111, 40, 40, 0, 1e6); err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 4; i++ {
				if _, err := plain.Submit(app, 1e6, 0); err != nil {
					t.Fatal(err)
				}
				if _, err := booked.Submit(app, 1e6, 0); err != nil {
					t.Fatal(err)
				}
			}
			if !reflect.DeepEqual(plain.Planned(), booked.Planned()) {
				t.Fatalf("a zero-width hold changed the plan:\n%+v\n%+v", plain.Planned(), booked.Planned())
			}
			plain.Drain()
			booked.Drain()
			if !reflect.DeepEqual(plain.Records(), booked.Records()) {
				t.Fatal("a zero-width hold changed the executed records")
			}
		})
	}
}

// TestFreetimeRestoredAfterRelease is the satellite regression: a
// released hold must restore Freetime exactly, and a subsequent identical
// workload must execute byte-identically to a never-booked scheduler.
func TestFreetimeRestoredAfterRelease(t *testing.T) {
	plain := newTestLocal(t, "S1", NewFIFOPolicy(), 4)
	booked := newTestLocal(t, "S1", NewFIFOPolicy(), 4)
	app := appOf(t, "fft")
	base := plain.Freetime()

	q, err := booked.QuoteReservation(2, 100, 300, 0)
	if err != nil {
		t.Fatal(err)
	}
	if q.Start != 100 || q.End != 400 {
		t.Fatalf("quote on an idle resource = %+v, want [100,400)", q)
	}
	if err := booked.HoldReservation(1, "tester", q.Mask, q.Start, q.End, 0, 50); err != nil {
		t.Fatal(err)
	}
	if ft := booked.Freetime(); ft != 400 {
		t.Fatalf("held freetime %g, want the booked horizon 400", ft)
	}
	if err := booked.ReleaseReservation(1, 0); err != nil {
		t.Fatal(err)
	}
	if ft := booked.Freetime(); ft != base {
		t.Fatalf("freetime %g after release, want %g restored exactly", ft, base)
	}

	for i := 0; i < 5; i++ {
		at := float64(i) * 3
		if _, err := plain.Submit(app, 1e6, at); err != nil {
			t.Fatal(err)
		}
		if _, err := booked.Submit(app, 1e6, at); err != nil {
			t.Fatal(err)
		}
	}
	plain.Drain()
	booked.Drain()
	if !reflect.DeepEqual(plain.Records(), booked.Records()) {
		t.Fatalf("records diverge after a released hold:\n%+v\n%+v", plain.Records(), booked.Records())
	}
}

// TestFreetimeSnapsBackAfterExpiry covers the TTL path: once the clock
// passes a hold's expiry the advertised freetime snaps back even before
// the sweep makes the expiry observable, and the swept scheduler runs a
// workload byte-identically to a never-booked one.
func TestFreetimeSnapsBackAfterExpiry(t *testing.T) {
	plain := newTestLocal(t, "S1", NewFIFOPolicy(), 4)
	booked := newTestLocal(t, "S1", NewFIFOPolicy(), 4)
	app := appOf(t, "fft")

	if err := booked.HoldReservation(1, "tester", 0b0110, 100, 400, 0, 50); err != nil {
		t.Fatal(err)
	}
	if ft := booked.Freetime(); ft != 400 {
		t.Fatalf("held freetime %g, want 400", ft)
	}
	booked.AdvanceTo(60) // past the TTL: the hold is dead before any sweep
	plain.AdvanceTo(60)
	if ft := booked.Freetime(); ft != plain.Freetime() {
		t.Fatalf("freetime %g past the TTL, want %g (snapped back without a sweep)", ft, plain.Freetime())
	}
	due := booked.ExpireReservations(60)
	if len(due) != 1 || due[0].ID != 1 {
		t.Fatalf("expiry sweep returned %+v, want booking 1", due)
	}
	if b, ok := booked.Book().Get(1); !ok || b.State.String() != "expired" {
		t.Fatalf("booking after sweep = %+v, want expired", b)
	}
	if ft := booked.Freetime(); ft != plain.Freetime() {
		t.Fatalf("freetime %g after the sweep, want %g", ft, plain.Freetime())
	}

	for i := 0; i < 5; i++ {
		at := 60 + float64(i)*3
		if _, err := plain.Submit(app, 1e6, at); err != nil {
			t.Fatal(err)
		}
		if _, err := booked.Submit(app, 1e6, at); err != nil {
			t.Fatal(err)
		}
	}
	plain.Drain()
	booked.Drain()
	if !reflect.DeepEqual(plain.Records(), booked.Records()) {
		t.Fatalf("records diverge after an expired hold:\n%+v\n%+v", plain.Records(), booked.Records())
	}
}

// TestConfirmedReleaseLeavesNoPhantomTask releases a confirmed
// reservation before its window: the reserved task must vanish with the
// booking — no record, no busy time, freetime restored.
func TestConfirmedReleaseLeavesNoPhantomTask(t *testing.T) {
	plain := newTestLocal(t, "S1", NewFIFOPolicy(), 4)
	booked := newTestLocal(t, "S1", NewFIFOPolicy(), 4)
	app := appOf(t, "fft")

	if err := booked.HoldReservation(1, "tester", 0b0011, 100, 400, 0, 50); err != nil {
		t.Fatal(err)
	}
	if _, err := booked.ConfirmReservation(1, 99, app, 0); err != nil {
		t.Fatal(err)
	}
	if ft := booked.Freetime(); ft != 400 {
		t.Fatalf("confirmed freetime %g, want 400", ft)
	}
	if err := booked.ReleaseReservation(1, 5); err != nil {
		t.Fatal(err)
	}
	plain.AdvanceTo(5)
	if ft := booked.Freetime(); ft != plain.Freetime() {
		t.Fatalf("freetime %g after releasing a confirmed booking, want %g", ft, plain.Freetime())
	}
	booked.Drain()
	if recs := booked.Records(); len(recs) != 0 {
		t.Fatalf("released reservation still executed: %+v", recs)
	}
}
