package scheduler

import (
	"fmt"

	"repro/internal/ga"
	"repro/internal/schedule"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

// GAPolicy is the genetic-algorithm scheduling policy of §2.1. Each Plan
// call evolves a population of two-part solution strings; the best
// solution of the previous call is mapped onto the current task set and
// injected as a seed, which is how the algorithm "absorbs system changes
// such as the addition or deletion of tasks" rather than restarting from
// scratch.
type GAPolicy struct {
	Config        ga.Config
	Weights       schedule.CostWeights
	FrontWeighted bool
	rng           *sim.RNG

	carry carryState // previous best, keyed by task ID

	// Activity counters are atomic telemetry instruments so a live
	// registry (and Stats) can read them while another goroutine plans.
	plans       telemetry.Counter
	generations telemetry.Counter
	costEvals   telemetry.Counter
}

// GAPolicyStats is a snapshot of GA activity accumulated across Plan
// calls.
type GAPolicyStats struct {
	Plans       int
	Generations int
	CostEvals   int
}

// NewGAPolicy returns a GA policy with the given configuration, drawing
// randomness from rng.
func NewGAPolicy(cfg ga.Config, rng *sim.RNG) *GAPolicy {
	return &GAPolicy{
		Config:        cfg,
		Weights:       schedule.DefaultWeights(),
		FrontWeighted: true,
		rng:           rng,
		carry:         newCarryState(),
	}
}

// Name implements Policy.
func (g *GAPolicy) Name() string { return "ga" }

// Forget implements Policy.
func (g *GAPolicy) Forget(taskID int) { g.carry.forget(taskID) }

// Stats returns a snapshot of cumulative GA activity; safe to call from
// any goroutine.
func (g *GAPolicy) Stats() GAPolicyStats {
	return GAPolicyStats{
		Plans:       int(g.plans.Value()),
		Generations: int(g.generations.Value()),
		CostEvals:   int(g.costEvals.Value()),
	}
}

// RegisterMetrics attaches the policy's counters to a telemetry
// registry under ga_*{resource=...} names, plus a gauge reporting the
// configured evaluation worker pool (the utilisation knob of PR 2's
// parallel cost evaluation).
func (g *GAPolicy) RegisterMetrics(reg *telemetry.Registry, resource string) {
	if reg == nil {
		return
	}
	l := func(name string) string { return telemetry.Label(name, "resource", resource) }
	reg.RegisterCounter(l("ga_plans_total"), &g.plans)
	reg.RegisterCounter(l("ga_generations_total"), &g.generations)
	reg.RegisterCounter(l("ga_cost_evals_total"), &g.costEvals)
	workers := g.Config.Workers
	if workers < 1 {
		workers = 1
	}
	reg.Gauge(l("ga_workers")).Set(float64(workers))
}

// Plan implements Policy.
func (g *GAPolicy) Plan(tasks []schedule.Task, res schedule.Resource, now float64, predict schedule.Predictor) *schedule.Schedule {
	if len(tasks) == 0 {
		g.carry.order = nil
		return schedule.Build(schedule.Solution{Order: []int{}, Maps: []uint64{}}, tasks, res, now, predict)
	}
	p := &schedule.Problem{
		Tasks:         tasks,
		Res:           res,
		Base:          now,
		Predict:       predict,
		Weights:       g.Weights,
		FrontWeighted: g.FrontWeighted,
	}

	// Seed the population with a greedy baseline plus the previous best
	// mapped onto the current task set (carryState): surviving tasks keep
	// their relative order and node maps, new tasks append in arrival
	// order over the whole pool.
	seeds := []schedule.Solution{p.GreedySeed()}
	if carried, ok := g.carry.seed(tasks, res.NumNodes); ok {
		seeds = append(seeds, carried)
	}
	// Validation is hoisted out of the GA's cost loop (Problem.Cost
	// trusts its input), so externally constructed solutions are checked
	// here: once per Plan instead of once per cost evaluation.
	for _, s := range seeds {
		if err := s.Validate(len(tasks), res.NumNodes); err != nil {
			panic(fmt.Sprintf("scheduler: ga seed invalid: %v", err))
		}
	}

	res2 := ga.Run[schedule.Solution](p, g.Config, g.rng, seeds)
	g.plans.Inc()
	g.generations.Add(uint64(res2.Generations))
	g.costEvals.Add(uint64(res2.CostEvals))

	g.carry.remember(tasks, res2.Best)
	return schedule.Build(res2.Best, tasks, res, now, predict)
}
