package scheduler

import (
	"math"
	"testing"
)

func TestLocalSlowdownStretchesPromotion(t *testing.T) {
	l := newTestLocal(t, "S1", NewFIFOPolicy(), 16)
	app := appOf(t, "fft") // 10s on 16 nodes
	l.SetSlowdown(func(start float64) float64 {
		if start >= 5 {
			return 3
		}
		return 1
	})

	if _, err := l.Submit(app, 1000, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Submit(app, 1000, 0); err != nil {
		t.Fatal(err)
	}
	l.Drain()
	recs := l.Records()
	if len(recs) != 2 {
		t.Fatalf("%d records", len(recs))
	}
	// First task starts at 0 (undegraded), second at 10 (slowed 3x).
	if d := recs[0].End - recs[0].Start; d != 10 {
		t.Fatalf("first duration %g, want 10", d)
	}
	if d := recs[1].End - recs[1].Start; d != 30 {
		t.Fatalf("second duration %g, want 30 (3x slowdown)", d)
	}
	// Predicted keeps the plan's estimate either way.
	if recs[0].Predicted != 10 || recs[1].Predicted != 10 {
		t.Fatalf("Predicted = %g/%g, want 10/10", recs[0].Predicted, recs[1].Predicted)
	}
}

func TestLocalDriftBetween(t *testing.T) {
	l := newTestLocal(t, "S1", NewFIFOPolicy(), 16)
	app := appOf(t, "fft") // 10s on 16 nodes
	l.SetSlowdown(func(float64) float64 { return 2 })

	for i := 0; i < 3; i++ {
		if _, err := l.Submit(app, 1000, 0); err != nil {
			t.Fatal(err)
		}
	}
	l.Drain()
	// Three sequential executions at 20s each: ends at 20, 40, 60.

	obs, pred, n := l.DriftBetween(0, 60)
	if n != 3 || math.Abs(obs-60) > 1e-9 || math.Abs(pred-30) > 1e-9 {
		t.Fatalf("full window: obs=%g pred=%g n=%d, want 60/30/3", obs, pred, n)
	}
	// Half-open window (t0, t1]: the record ending exactly at t0 is out,
	// the one ending exactly at t1 is in.
	obs, pred, n = l.DriftBetween(20, 40)
	if n != 1 || obs != 20 || pred != 10 {
		t.Fatalf("middle window: obs=%g pred=%g n=%d, want 20/10/1", obs, pred, n)
	}
	if _, _, n := l.DriftBetween(60, 100); n != 0 {
		t.Fatalf("empty window: n=%d", n)
	}
}

func TestLocalDriftBetweenFallsBackWithoutPredicted(t *testing.T) {
	// Records predating the Predicted field (zero value) must not read
	// as infinite drift: the fallback counts them as zero-drift.
	l := newTestLocal(t, "S1", NewFIFOPolicy(), 16)
	app := appOf(t, "fft")
	if _, err := l.Submit(app, 1000, 0); err != nil {
		t.Fatal(err)
	}
	l.Drain()
	l.committed[0].Predicted = 0

	obs, pred, n := l.DriftBetween(0, 100)
	if n != 1 || obs != pred {
		t.Fatalf("obs=%g pred=%g n=%d, want obs==pred for a zero Predicted", obs, pred, n)
	}
}
