package scheduler

import (
	"testing"

	"repro/internal/ga"
	"repro/internal/pace"
	"repro/internal/schedule"
	"repro/internal/sim"
)

func TestGAPolicyPlansAllTasks(t *testing.T) {
	g := newGAForTest(1)
	e := pace.NewEngine()
	pred := enginePredictor(e, pace.SunUltra10)
	tasks := []schedule.Task{
		{ID: 1, App: appOf(t, "sweep3d"), Deadline: 1e9},
		{ID: 2, App: appOf(t, "fft"), Deadline: 1e9},
		{ID: 3, App: appOf(t, "improc"), Deadline: 1e9},
	}
	s := g.Plan(tasks, schedule.NewResource(8), 0, pred)
	if len(s.Items) != 3 {
		t.Fatalf("plan has %d items, want 3", len(s.Items))
	}
	seen := map[int]bool{}
	for _, it := range s.Items {
		seen[it.TaskPos] = true
	}
	if len(seen) != 3 {
		t.Fatalf("plan omitted tasks: %+v", s.Items)
	}
}

func TestGAPolicyEmptyQueue(t *testing.T) {
	g := newGAForTest(2)
	e := pace.NewEngine()
	s := g.Plan(nil, schedule.NewResource(4), 5, enginePredictor(e, pace.SGIOrigin2000))
	if len(s.Items) != 0 {
		t.Fatalf("empty plan has items: %+v", s.Items)
	}
	if g.Stats().Plans != 0 {
		t.Fatal("empty plan counted as a GA run")
	}
}

func TestGAPolicyStatsAccumulate(t *testing.T) {
	g := newGAForTest(3)
	e := pace.NewEngine()
	pred := enginePredictor(e, pace.SGIOrigin2000)
	tasks := []schedule.Task{{ID: 1, App: appOf(t, "fft"), Deadline: 1e9}}
	_ = g.Plan(tasks, schedule.NewResource(4), 0, pred)
	s1 := g.Stats()
	if s1.Plans != 1 || s1.Generations == 0 || s1.CostEvals == 0 {
		t.Fatalf("stats after one plan: %+v", s1)
	}
	_ = g.Plan(tasks, schedule.NewResource(4), 0, pred)
	s2 := g.Stats()
	if s2.Plans != 2 || s2.CostEvals <= s1.CostEvals {
		t.Fatalf("stats did not accumulate: %+v -> %+v", s1, s2)
	}
}

func TestGAPolicyCarrySeedSurvivesChurn(t *testing.T) {
	g := newGAForTest(4)
	e := pace.NewEngine()
	pred := enginePredictor(e, pace.SGIOrigin2000)
	tasks := []schedule.Task{
		{ID: 10, App: appOf(t, "jacobi"), Deadline: 1e9},
		{ID: 11, App: appOf(t, "cpi"), Deadline: 1e9},
	}
	_ = g.Plan(tasks, schedule.NewResource(4), 0, pred)

	// Task 10 leaves, tasks 12 and 13 arrive.
	g.Forget(10)
	tasks = []schedule.Task{
		{ID: 11, App: appOf(t, "cpi"), Deadline: 1e9},
		{ID: 12, App: appOf(t, "fft"), Arrival: 1, Deadline: 1e9},
		{ID: 13, App: appOf(t, "memsort"), Arrival: 2, Deadline: 1e9},
	}
	seed, ok := g.carry.seed(tasks, 4)
	if !ok {
		t.Fatal("no carry seed after churn")
	}
	if err := seed.Validate(3, 4); err != nil {
		t.Fatalf("carry seed invalid: %v", err)
	}
	// Planning again must still cover all tasks.
	s := g.Plan(tasks, schedule.NewResource(4), 1, pred)
	if len(s.Items) != 3 {
		t.Fatalf("plan after churn has %d items", len(s.Items))
	}
}

func TestGAPolicyCarrySeedShrunkPool(t *testing.T) {
	g := newGAForTest(5)
	e := pace.NewEngine()
	pred := enginePredictor(e, pace.SGIOrigin2000)
	tasks := []schedule.Task{{ID: 1, App: appOf(t, "fft"), Deadline: 1e9}}
	_ = g.Plan(tasks, schedule.NewResource(8), 0, pred)
	// The node pool shrinks (failures): previous masks must be clipped.
	seed, ok := g.carry.seed(tasks, 2)
	if !ok {
		t.Skip("previous mask entirely outside the shrunk pool; acceptable")
	}
	if err := seed.Validate(1, 2); err != nil {
		t.Fatalf("carry seed invalid on shrunk pool: %v", err)
	}
}

func TestGAPolicyNoCarryBeforeFirstPlan(t *testing.T) {
	g := newGAForTest(6)
	if _, ok := g.carry.seed([]schedule.Task{{ID: 1}}, 4); ok {
		t.Fatal("carry seed produced before any plan")
	}
}

func TestGAPolicyImprovesOverGreedyOnContention(t *testing.T) {
	// Several improc tasks (optimal at 8 nodes) on a 16-node pool: greedy
	// gives each task its solo-optimal 8+ nodes serially, while the
	// GA can run tasks side by side. The GA plan's cost must be no worse
	// than the greedy seed's.
	gaCfg := ga.DefaultConfig()
	gaCfg.MaxGenerations = 60
	g := NewGAPolicy(gaCfg, sim.NewRNG(7))
	e := pace.NewEngine()
	pred := enginePredictor(e, pace.SGIOrigin2000)
	var tasks []schedule.Task
	for i := 0; i < 6; i++ {
		tasks = append(tasks, schedule.Task{ID: i + 1, App: appOf(t, "improc"), Deadline: 70})
	}
	res := schedule.NewResource(16)
	p := &schedule.Problem{Tasks: tasks, Res: res, Base: 0, Predict: pred,
		Weights: g.Weights, FrontWeighted: true}
	greedyCost := p.Cost(p.GreedySeed())

	s := g.Plan(tasks, res, 0, pred)
	got := schedule.Cost(s, tasks, g.Weights, true).Combined
	if got > greedyCost+1e-9 {
		t.Fatalf("GA cost %v worse than greedy seed %v", got, greedyCost)
	}
}

func TestGAPolicyName(t *testing.T) {
	if newGAForTest(8).Name() != "ga" {
		t.Fatal("wrong policy name")
	}
}
