// Package scheduler implements the performance-driven local grid scheduler
// of §2.2 (Fig. 3): task management and queueing, GA scheduling, a FIFO
// baseline, resource monitoring and test-mode task execution, all driven
// by PACE predictive data. One Local instance manages one grid resource (a
// homogeneous cluster or multiprocessor).
package scheduler

import (
	"repro/internal/schedule"
)

// Policy plans the pending task queue onto the resource. Implementations
// are stateful: the GA carries its previous best solution across calls so
// the evolutionary process absorbs task arrivals and departures (§1), and
// FIFO keeps its first allocation for every task fixed (§4.1).
type Policy interface {
	// Name identifies the policy in reports ("ga", "fifo").
	Name() string
	// Plan schedules tasks onto res starting no earlier than now. tasks
	// are the pending queue in arrival order; res.Avail reflects nodes'
	// commitments. The returned schedule must place every task.
	Plan(tasks []schedule.Task, res schedule.Resource, now float64, predict schedule.Predictor) *schedule.Schedule
	// Forget drops any per-task state for a task that left the queue
	// without being planned again (e.g. deleted by the user).
	Forget(taskID int)
}
