package scheduler

import (
	"math"

	"repro/internal/schedule"
	"repro/internal/sim"
)

// The paper's related work cites Abraham, Buyya and Nath's comparison of
// nature's heuristics — genetic algorithms, simulated annealing and tabu
// search — for grid job scheduling ([1], §1). SAPolicy and TabuPolicy
// implement the other two heuristics over the same two-part solution
// coding and eq. 8 cost, so the choice of kernel becomes a measurable
// ablation (BenchmarkHeuristicComparison).

// SAPolicy schedules with simulated annealing: a random walk over the
// two-part mutation neighbourhood that accepts uphill moves with
// probability exp(−Δ/T) under a geometric cooling schedule.
type SAPolicy struct {
	Iterations    int     // proposal budget per scheduling event
	InitialTemp   float64 // starting temperature as a fraction of the seed cost
	Cooling       float64 // geometric factor applied per proposal
	Weights       schedule.CostWeights
	FrontWeighted bool
	rng           *sim.RNG
	carry         carryState
}

// NewSAPolicy returns an annealer with a budget comparable to the default
// GA configuration (~2500 cost evaluations per event).
func NewSAPolicy(rng *sim.RNG) *SAPolicy {
	return &SAPolicy{
		Iterations:    2500,
		InitialTemp:   0.3,
		Cooling:       0.998,
		Weights:       schedule.DefaultWeights(),
		FrontWeighted: true,
		rng:           rng,
		carry:         newCarryState(),
	}
}

// Name implements Policy.
func (s *SAPolicy) Name() string { return "sa" }

// Forget implements Policy.
func (s *SAPolicy) Forget(taskID int) { s.carry.forget(taskID) }

// Plan implements Policy.
func (s *SAPolicy) Plan(tasks []schedule.Task, res schedule.Resource, now float64, predict schedule.Predictor) *schedule.Schedule {
	if len(tasks) == 0 {
		return schedule.Build(schedule.Solution{Order: []int{}, Maps: []uint64{}}, tasks, res, now, predict)
	}
	p := &schedule.Problem{
		Tasks: tasks, Res: res, Base: now, Predict: predict,
		Weights: s.Weights, FrontWeighted: s.FrontWeighted,
	}
	cur := p.GreedySeed()
	if carried, ok := s.carry.seed(tasks, res.NumNodes); ok {
		if p.Cost(carried) < p.Cost(cur) {
			cur = carried
		}
	}
	curCost := p.Cost(cur)
	best, bestCost := cur.Clone(), curCost

	temp := s.InitialTemp * (curCost + 1)
	for i := 0; i < s.Iterations; i++ {
		cand := p.Mutate(cur, s.rng)
		candCost := p.Cost(cand)
		delta := candCost - curCost
		if delta <= 0 || (temp > 0 && s.rng.Float64() < math.Exp(-delta/temp)) {
			cur, curCost = cand, candCost
			if curCost < bestCost {
				best, bestCost = cur.Clone(), curCost
			}
		}
		temp *= s.Cooling
	}
	s.carry.remember(tasks, best)
	return schedule.Build(best, tasks, res, now, predict)
}

// TabuPolicy schedules with tabu search: steepest-descent over a sampled
// mutation neighbourhood, forbidding recently visited solutions for a
// fixed tenure so the walk escapes local minima without cycling.
type TabuPolicy struct {
	Iterations    int // neighbourhood evaluations per move
	Moves         int // moves per scheduling event
	Tenure        int // how many recent solutions stay tabu
	Weights       schedule.CostWeights
	FrontWeighted bool
	rng           *sim.RNG
	carry         carryState
}

// NewTabuPolicy returns a tabu search with a budget comparable to the
// default GA configuration.
func NewTabuPolicy(rng *sim.RNG) *TabuPolicy {
	return &TabuPolicy{
		Iterations:    25,
		Moves:         100,
		Tenure:        50,
		Weights:       schedule.DefaultWeights(),
		FrontWeighted: true,
		rng:           rng,
		carry:         newCarryState(),
	}
}

// Name implements Policy.
func (t *TabuPolicy) Name() string { return "tabu" }

// Forget implements Policy.
func (t *TabuPolicy) Forget(taskID int) { t.carry.forget(taskID) }

// Plan implements Policy.
func (t *TabuPolicy) Plan(tasks []schedule.Task, res schedule.Resource, now float64, predict schedule.Predictor) *schedule.Schedule {
	if len(tasks) == 0 {
		return schedule.Build(schedule.Solution{Order: []int{}, Maps: []uint64{}}, tasks, res, now, predict)
	}
	p := &schedule.Problem{
		Tasks: tasks, Res: res, Base: now, Predict: predict,
		Weights: t.Weights, FrontWeighted: t.FrontWeighted,
	}
	cur := p.GreedySeed()
	if carried, ok := t.carry.seed(tasks, res.NumNodes); ok {
		if p.Cost(carried) < p.Cost(cur) {
			cur = carried
		}
	}
	best, bestCost := cur.Clone(), p.Cost(cur)

	tabu := map[uint64]bool{}
	var tabuQueue []uint64
	admit := func(h uint64) {
		tabu[h] = true
		tabuQueue = append(tabuQueue, h)
		if len(tabuQueue) > t.Tenure {
			delete(tabu, tabuQueue[0])
			tabuQueue = tabuQueue[1:]
		}
	}
	admit(solutionHash(cur))

	for move := 0; move < t.Moves; move++ {
		var moveBest schedule.Solution
		moveBestCost := math.Inf(1)
		found := false
		for i := 0; i < t.Iterations; i++ {
			cand := p.Mutate(cur, t.rng)
			h := solutionHash(cand)
			cost := p.Cost(cand)
			// Aspiration: a tabu solution that beats the global best is
			// admitted anyway.
			if tabu[h] && cost >= bestCost {
				continue
			}
			if cost < moveBestCost {
				moveBest, moveBestCost, found = cand, cost, true
			}
		}
		if !found {
			break // the whole sampled neighbourhood is tabu
		}
		cur = moveBest
		admit(solutionHash(cur))
		if moveBestCost < bestCost {
			best, bestCost = cur.Clone(), moveBestCost
		}
	}
	t.carry.remember(tasks, best)
	return schedule.Build(best, tasks, res, now, predict)
}

// solutionHash fingerprints a solution (FNV-1a over order and maps).
func solutionHash(s schedule.Solution) uint64 {
	h := uint64(14695981039346656037)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= 1099511628211
			v >>= 8
		}
	}
	for _, o := range s.Order {
		mix(uint64(o))
	}
	for _, m := range s.Maps {
		mix(m)
	}
	return h
}

// carryState carries the previous best solution across scheduling events
// keyed by task ID — shared by the SA and tabu kernels (the GA has its
// own seeded-population variant).
type carryState struct {
	order []int
	maps  map[int]uint64
}

func newCarryState() carryState {
	return carryState{maps: map[int]uint64{}}
}

func (c *carryState) forget(taskID int) { delete(c.maps, taskID) }

func (c *carryState) remember(tasks []schedule.Task, best schedule.Solution) {
	c.order = c.order[:0]
	for _, pos := range best.Order {
		c.order = append(c.order, tasks[pos].ID)
	}
	fresh := make(map[int]uint64, len(tasks))
	for pos, t := range tasks {
		fresh[t.ID] = best.Maps[pos]
	}
	c.maps = fresh
}

func (c *carryState) seed(tasks []schedule.Task, numNodes int) (schedule.Solution, bool) {
	if len(c.order) == 0 {
		return schedule.Solution{}, false
	}
	posByID := make(map[int]int, len(tasks))
	for pos, t := range tasks {
		posByID[t.ID] = pos
	}
	order := make([]int, 0, len(tasks))
	used := make(map[int]bool, len(tasks))
	for _, id := range c.order {
		if pos, ok := posByID[id]; ok && !used[pos] {
			order = append(order, pos)
			used[pos] = true
		}
	}
	for pos := range tasks {
		if !used[pos] {
			order = append(order, pos)
		}
	}
	full := uint64(1)<<uint(numNodes) - 1
	if numNodes >= 64 {
		full = ^uint64(0)
	}
	maps := make([]uint64, len(tasks))
	for pos, t := range tasks {
		if m, ok := c.maps[t.ID]; ok && m&full != 0 {
			maps[pos] = m & full
		} else {
			maps[pos] = full
		}
	}
	sol := schedule.Solution{Order: order, Maps: maps}
	if sol.Validate(len(tasks), numNodes) != nil {
		return schedule.Solution{}, false
	}
	return sol, true
}
