package scheduler

import "testing"

func TestMonitorInitialState(t *testing.T) {
	m := NewMonitor(4)
	if m.NumNodes() != 4 || m.NumUp() != 4 {
		t.Fatalf("fresh monitor: %d nodes, %d up", m.NumNodes(), m.NumUp())
	}
	up := m.UpNodes()
	if len(up) != 4 {
		t.Fatalf("UpNodes = %v", up)
	}
	for i, n := range up {
		if n != i {
			t.Fatalf("UpNodes = %v, want ascending indices", up)
		}
	}
	if m.PollInterval != DefaultPollInterval {
		t.Fatalf("poll interval %v, want %v (five minutes, §2.2)", m.PollInterval, DefaultPollInterval)
	}
}

func TestMonitorDownUpCycle(t *testing.T) {
	m := NewMonitor(3)
	if err := m.SetNodeDown(1, true, 10); err != nil {
		t.Fatal(err)
	}
	if m.IsUp(1) || m.NumUp() != 2 {
		t.Fatalf("node 1 still up after SetNodeDown")
	}
	up := m.UpNodes()
	if len(up) != 2 || up[0] != 0 || up[1] != 2 {
		t.Fatalf("UpNodes = %v, want [0 2]", up)
	}
	if err := m.SetNodeDown(1, false, 20); err != nil {
		t.Fatal(err)
	}
	if !m.IsUp(1) || m.NumUp() != 3 {
		t.Fatal("node 1 did not come back up")
	}
	ev := m.Events()
	if len(ev) != 2 || ev[0].Up || !ev[1].Up || ev[0].Time != 10 || ev[1].Time != 20 {
		t.Fatalf("events = %+v", ev)
	}
}

func TestMonitorNoEventOnNoChange(t *testing.T) {
	m := NewMonitor(2)
	_ = m.SetNodeDown(0, true, 1)
	_ = m.SetNodeDown(0, true, 2)  // already down
	_ = m.SetNodeDown(1, false, 3) // already up
	if got := len(m.Events()); got != 1 {
		t.Fatalf("%d events recorded, want 1", got)
	}
}

func TestMonitorRejectsBadNode(t *testing.T) {
	m := NewMonitor(2)
	if err := m.SetNodeDown(-1, true, 0); err == nil {
		t.Error("negative node accepted")
	}
	if err := m.SetNodeDown(2, true, 0); err == nil {
		t.Error("out-of-range node accepted")
	}
	if m.IsUp(-1) || m.IsUp(5) {
		t.Error("IsUp true for out-of-range node")
	}
}

func TestMonitorPanicsOnZeroNodes(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewMonitor(0) did not panic")
		}
	}()
	NewMonitor(0)
}
