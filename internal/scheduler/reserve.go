package scheduler

import (
	"fmt"
	"math"
	"math/bits"
	"sort"

	"repro/internal/pace"
	"repro/internal/reserve"
)

// reservedTask is a confirmed reservation waiting for its window: a task
// whose start and end are contractual rather than planned. It bypasses
// the policy entirely — promoteReserved commits it at exactly its booked
// window, and the plan is built around the window instead.
type reservedTask struct {
	taskID    int
	reqID     uint64
	bookingID uint64
	app       *pace.AppModel
	arrival   float64
	mask      uint64 // physical node mask
	start     float64
	end       float64
}

// ReserveQuote is a resource's offer for an advance reservation: the node
// set and start the scheduler can guarantee. Price, in the reservation
// shopping of the agent layer, is the quoted start — earlier is better.
type ReserveQuote struct {
	Resource string
	Mask     uint64
	Start    float64
	End      float64
}

// Book exposes the reservation book (nil until the first reservation
// reaches this resource). Read-only callers — audit, tests — use it to
// inspect booking state.
func (l *Local) Book() *reserve.Book { return l.book }

func (l *Local) ensureBook() *reserve.Book {
	if l.book == nil {
		l.book = reserve.NewBook(l.cfg.NumNodes)
	}
	return l.book
}

// QuoteReservation returns the earliest window of dur seconds on nodes
// simultaneously free nodes starting no earlier than earliest: free of
// other reservations and past the committed-work floor of each node.
// Quoting changes no state; the window is only protected once held.
func (l *Local) QuoteReservation(nodes int, earliest, dur, now float64) (ReserveQuote, error) {
	if nodes < 1 || nodes > l.cfg.NumNodes {
		return ReserveQuote{}, fmt.Errorf("scheduler: %q: cannot reserve %d of %d nodes", l.cfg.Name, nodes, l.cfg.NumNodes)
	}
	if dur < 0 {
		return ReserveQuote{}, fmt.Errorf("scheduler: %q: negative reservation duration %g", l.cfg.Name, dur)
	}
	l.AdvanceTo(now)
	if earliest < now {
		earliest = now
	}
	avail := make([]float64, l.cfg.NumNodes)
	up := 0
	for i := range avail {
		if !l.monitor.IsUp(i) {
			avail[i] = math.Inf(1)
			continue
		}
		up++
		avail[i] = l.nodeBusy[i]
		if now > avail[i] {
			avail[i] = now
		}
	}
	if up < nodes {
		return ReserveQuote{}, fmt.Errorf("scheduler: %q: %d nodes up, %d requested", l.cfg.Name, up, nodes)
	}
	mask, start, ok := l.ensureBook().FindWindow(nodes, earliest, dur, avail, now)
	if !ok {
		return ReserveQuote{}, fmt.Errorf("scheduler: %q: no %d-node window of %gs", l.cfg.Name, nodes, dur)
	}
	return ReserveQuote{Resource: l.cfg.Name, Mask: mask, Start: start, End: start + dur}, nil
}

// HoldReservation places phase one of the two-phase commit: the window
// [start, end) on mask is blocked for ttl seconds of virtual time, during
// which only Confirm or Release can settle it. Best-effort work is
// replanned around the held window immediately — a quote is only a
// guarantee once the plan avoids it.
func (l *Local) HoldReservation(id uint64, holder string, mask uint64, start, end, now, ttl float64) error {
	l.AdvanceTo(now)
	if err := l.ensureBook().Hold(id, holder, mask, start, end, now, ttl); err != nil {
		return err
	}
	l.replan()
	l.updateGauges()
	return nil
}

// ConfirmReservation settles a held booking as confirmed and registers
// the guaranteed-start task that will run in its window: app's execution
// occupies exactly [Start, End) on the booked nodes — the window is the
// contract, so neither prediction error nor degradation slowdown moves
// it. It returns the scheduler-local task ID. The plan needs no rebuild:
// the held window was already an immovable constraint.
func (l *Local) ConfirmReservation(id uint64, reqID uint64, app *pace.AppModel, now float64) (int, error) {
	if app == nil {
		return 0, fmt.Errorf("scheduler: %q: nil application model", l.cfg.Name)
	}
	l.AdvanceTo(now)
	if l.book == nil {
		return 0, fmt.Errorf("scheduler: %q: confirm of unknown booking %d", l.cfg.Name, id)
	}
	if err := l.book.Confirm(id, now); err != nil {
		return 0, err
	}
	b, _ := l.book.Get(id)
	l.nextID++
	r := reservedTask{
		taskID:    l.nextID,
		reqID:     reqID,
		bookingID: id,
		app:       app,
		arrival:   now,
		mask:      b.Mask,
		start:     b.Start,
		end:       b.End,
	}
	at := sort.Search(len(l.reserved), func(i int) bool {
		if l.reserved[i].start != r.start {
			return l.reserved[i].start > r.start
		}
		return l.reserved[i].taskID > r.taskID
	})
	l.reserved = append(l.reserved, reservedTask{})
	copy(l.reserved[at+1:], l.reserved[at:])
	l.reserved[at] = r
	l.metrics.TasksSubmitted.Inc()
	l.refreshNextStart()
	if r.start <= now {
		l.promoteReserved(now)
	}
	l.updateGauges()
	return r.taskID, nil
}

// ReleaseReservation cancels a held or confirmed booking; the window
// stops blocking immediately and best-effort work is replanned to use it.
func (l *Local) ReleaseReservation(id uint64, now float64) error {
	l.AdvanceTo(now)
	if l.book == nil {
		return fmt.Errorf("scheduler: %q: release of unknown booking %d", l.cfg.Name, id)
	}
	if err := l.book.Release(id, now); err != nil {
		return err
	}
	for i, r := range l.reserved {
		if r.bookingID == id {
			l.reserved = append(l.reserved[:i], l.reserved[i+1:]...)
			break
		}
	}
	l.replan()
	l.updateGauges()
	return nil
}

// ExpireReservations sweeps holds whose TTL the clock has passed, frees
// their windows for best-effort work, and returns them (ordered by
// expiry then ID) so the caller can trace each one. With no book it is
// free — the reservation subsystem costs nothing until used.
func (l *Local) ExpireReservations(now float64) []reserve.Booking {
	if l.book == nil {
		return nil
	}
	l.AdvanceTo(now)
	due := l.book.ExpireDue(now)
	if len(due) > 0 {
		l.replan()
		l.updateGauges()
	}
	return due
}

// promoteReserved commits every confirmed reservation whose window start
// the clock has reached. Reserved tasks run exactly their booked window:
// no ActualDuration hook, no degradation slowdown — the guarantee is the
// point, and keeping it deterministic keeps confirmed starts exact even
// under the §5 prediction-error study.
func (l *Local) promoteReserved(now float64) {
	n := 0
	for n < len(l.reserved) && l.reserved[n].start <= now {
		n++
	}
	if n == 0 {
		return
	}
	for _, r := range l.reserved[:n] {
		rec := Record{
			TaskID:    r.taskID,
			ReqID:     r.reqID,
			App:       r.app,
			Arrival:   r.arrival,
			Deadline:  r.end,
			Mask:      r.mask,
			Start:     r.start,
			End:       r.end,
			Resource:  l.cfg.Name,
			Predicted: r.end - r.start,
		}
		l.committed = append(l.committed, rec)
		l.cfg.Executor.Launch(rec)
		for m := rec.Mask; m != 0; m &= m - 1 {
			phys := bits.TrailingZeros64(m)
			if rec.End > l.nodeBusy[phys] {
				l.nodeBusy[phys] = rec.End
			}
		}
	}
	l.reserved = l.reserved[n:]
	l.metrics.TasksStarted.Add(uint64(n))
	l.refreshNextStart()
	l.updateGauges()
}
