// Package membership makes the agent hierarchy dynamic. The paper's tree
// is fixed at start-up; this package layers runtime membership on top of
// agent.Hierarchy: agents join and gracefully leave on the virtual clock
// (the failure half — crashes, advert TTL, circuit breakers — already
// lives in internal/fault and internal/agent), and a load-driven
// Rebalancer re-homes whole subtrees under less-loaded parents when the
// tree goes lopsided.
//
// The package is glue-free by design: it mutates the hierarchy and the
// agents' soft state (advert caches, breaker history) but schedules no
// events, draws no randomness and emits no traces itself. The core grid
// owns the clock, the drain of a leaving agent's queue and the lifecycle
// stream; scenario and the wire protocol translate their churn specs and
// join/leave ops into calls here.
package membership

import (
	"fmt"
	"math"

	"repro/internal/agent"
	"repro/internal/pace"
)

// Join schedules one agent's arrival: at Time, a new resource of the
// given hardware and node count attaches under Parent (or, when Parent
// has already left by then, under Parent's closest still-active
// ancestor).
type Join struct {
	Time         float64
	Name         string
	Hardware     string
	Nodes        int
	Parent       string
	Environments []string // defaults to the grid-wide {"test"}
}

// Leave schedules one agent's graceful departure at Time: its subtree is
// re-homed under its parent, its queued tasks are drained back into the
// grid, and its advertisements expire immediately everywhere.
type Leave struct {
	Time float64
	Name string
}

// Plan is a scripted churn sequence, the dynamic-membership counterpart
// of a fault.Plan. A nil plan disables scripted churn.
type Plan struct {
	Joins  []Join
	Leaves []Leave
}

// Validate checks the plan against the static topology: head is the tree
// root (which may never leave), base the initial agent names. Each join
// must introduce a fresh name under a parent that exists by its join
// time; each agent may leave at most once, after it has joined.
func (p *Plan) Validate(head string, base []string) error {
	known := make(map[string]float64, len(base)+len(p.Joins)) // name -> join time (0 for base)
	for _, n := range base {
		known[n] = 0
	}
	joined := map[string]bool{}
	for i, j := range p.Joins {
		if j.Name == "" {
			return fmt.Errorf("membership: join %d has no agent name", i)
		}
		if _, dup := known[j.Name]; dup || joined[j.Name] {
			return fmt.Errorf("membership: join %d: agent %q already exists", i, j.Name)
		}
		if j.Time < 0 {
			return fmt.Errorf("membership: join %d (%s): negative time %g", i, j.Name, j.Time)
		}
		if _, ok := pace.LookupHardware(j.Hardware); !ok {
			return fmt.Errorf("membership: join %d (%s): unknown hardware %q", i, j.Name, j.Hardware)
		}
		if j.Nodes < 1 || j.Nodes > 64 {
			return fmt.Errorf("membership: join %d (%s): node count %d outside [1, 64]", i, j.Name, j.Nodes)
		}
		if j.Parent == "" {
			return fmt.Errorf("membership: join %d (%s): no parent", i, j.Name)
		}
		pt, ok := known[j.Parent]
		if !ok {
			return fmt.Errorf("membership: join %d (%s): unknown parent %q", i, j.Name, j.Parent)
		}
		if pt > j.Time {
			return fmt.Errorf("membership: join %d (%s): parent %q joins later, at %g", i, j.Name, j.Parent, pt)
		}
		known[j.Name] = j.Time
		joined[j.Name] = true
	}
	left := map[string]bool{}
	for i, l := range p.Leaves {
		if l.Name == "" {
			return fmt.Errorf("membership: leave %d has no agent name", i)
		}
		if l.Name == head {
			return fmt.Errorf("membership: leave %d: %s is the head of the hierarchy and cannot leave", i, head)
		}
		jt, ok := known[l.Name]
		if !ok {
			return fmt.Errorf("membership: leave %d: unknown agent %q", i, l.Name)
		}
		if left[l.Name] {
			return fmt.Errorf("membership: leave %d: agent %q leaves twice", i, l.Name)
		}
		if l.Time < jt {
			return fmt.Errorf("membership: leave %d (%s): leave at %g precedes join at %g", i, l.Name, l.Time, jt)
		}
		left[l.Name] = true
	}
	return nil
}

// Events returns the total number of scheduled membership events, for
// event-budget accounting.
func (p *Plan) Events() int {
	if p == nil {
		return 0
	}
	return len(p.Joins) + len(p.Leaves)
}

// LastEventTime returns the virtual time of the plan's latest event.
func (p *Plan) LastEventTime() float64 {
	last := 0.0
	if p == nil {
		return last
	}
	for _, j := range p.Joins {
		if j.Time > last {
			last = j.Time
		}
	}
	for _, l := range p.Leaves {
		if l.Time > last {
			last = l.Time
		}
	}
	return last
}

// Stats counts what the membership subsystem did during a run.
type Stats struct {
	Joins   int // agents attached at runtime
	Leaves  int // agents that gracefully left
	Drained int // queued tasks re-placed off leaving agents
	Rehomed int // lower neighbours re-homed under a leaver's parent
	Moves   int // subtrees moved by the rebalancer
}

// LeaveResult reports one departure: the detached agent, the parent it
// left (which adopted its subtree), and the re-homed child names in
// their former link order.
type LeaveResult struct {
	Agent   *agent.Agent
	Parent  *agent.Agent
	Rehomed []string
}

// Registry tracks the live membership of one hierarchy: which agents are
// currently attached, and — for departed ones — where they last hung, so
// late traffic addressed to them can be rerouted along the ancestry
// chain. All mutations go through the registry, which re-validates the
// tree (acyclic, connected, single head) after every one; a mutation
// that would break the invariant is rejected with the tree unchanged.
type Registry struct {
	hier       *agent.Hierarchy
	active     map[string]bool
	lastParent map[string]string // departed agent -> parent at leave time
	stats      Stats
}

// NewRegistry wraps the hierarchy with its initial membership.
func NewRegistry(h *agent.Hierarchy) *Registry {
	r := &Registry{hier: h, active: map[string]bool{}, lastParent: map[string]string{}}
	for _, n := range h.Names() {
		r.active[n] = true
	}
	return r
}

// Hierarchy returns the tree the registry manages.
func (r *Registry) Hierarchy() *agent.Hierarchy { return r.hier }

// Stats returns the registry's activity counters.
func (r *Registry) Stats() Stats { return r.stats }

// Active reports whether the named agent is currently attached.
func (r *Registry) Active(name string) bool { return r.active[name] }

// Route resolves a dispatch target: the agent itself while attached, or
// its closest still-active ancestor once it has left (following the
// lastParent chain recorded at each departure).
func (r *Registry) Route(name string) (string, bool) {
	for hops := 0; hops <= len(r.lastParent)+1; hops++ {
		if r.active[name] {
			return name, true
		}
		next, ok := r.lastParent[name]
		if !ok {
			return "", false
		}
		name = next
	}
	return "", false
}

// Join attaches a pre-built agent under the named parent (rerouted to an
// active ancestor when the parent already left) and returns the parent
// actually used.
func (r *Registry) Join(a *agent.Agent, parent string) (string, error) {
	if a == nil {
		return "", fmt.Errorf("membership: join: nil agent")
	}
	if r.active[a.Name()] {
		return "", fmt.Errorf("membership: join: agent %s already attached", a.Name())
	}
	target, ok := r.Route(parent)
	if !ok {
		return "", fmt.Errorf("membership: join %s: no active ancestor for parent %q", a.Name(), parent)
	}
	if err := r.hier.Attach(target, a); err != nil {
		return "", err
	}
	if err := r.hier.Validate(); err != nil {
		return "", fmt.Errorf("membership: join %s broke the tree: %w", a.Name(), err)
	}
	r.active[a.Name()] = true
	delete(r.lastParent, a.Name())
	r.stats.Joins++
	return target, nil
}

// Leave detaches the named agent: its in-process lower neighbours are
// re-homed under its parent (Hierarchy.Detach) and every structural
// neighbour forgets its advertisement and breaker history on the spot
// (agent.Unlink), so the departed agent vanishes from service tables at
// the leave instant instead of ageing out through the advert TTL. The
// caller still owns the departing queue — draining it is the grid's job,
// because re-placement needs the clock and the lifecycle stream.
func (r *Registry) Leave(name string) (LeaveResult, error) {
	if !r.active[name] {
		return LeaveResult{}, fmt.Errorf("membership: leave: agent %q not attached", name)
	}
	a, ok := r.hier.Lookup(name)
	if !ok {
		return LeaveResult{}, fmt.Errorf("membership: leave: agent %q not in hierarchy", name)
	}
	var rehomed []string
	for _, l := range a.Lowers() {
		if la, ok := l.(*agent.Agent); ok {
			rehomed = append(rehomed, la.Name())
		}
	}
	parent, err := r.hier.Detach(name)
	if err != nil {
		return LeaveResult{}, err
	}
	if err := r.hier.Validate(); err != nil {
		return LeaveResult{}, fmt.Errorf("membership: leave %s broke the tree: %w", name, err)
	}
	r.active[name] = false
	r.lastParent[name] = parent.Name()
	r.stats.Leaves++
	r.stats.Rehomed += len(rehomed)
	return LeaveResult{Agent: a, Parent: parent, Rehomed: rehomed}, nil
}

// Rehome moves the named agent's subtree under a new parent (the
// rebalancer's detach→attach step) and returns the former parent.
func (r *Registry) Rehome(name, newParent string) (*agent.Agent, error) {
	if !r.active[name] || !r.active[newParent] {
		return nil, fmt.Errorf("membership: rehome %s under %s: both must be attached", name, newParent)
	}
	old, err := r.hier.Rehome(name, newParent)
	if err != nil {
		return nil, err
	}
	if err := r.hier.Validate(); err != nil {
		return nil, fmt.Errorf("membership: rehome %s broke the tree: %w", name, err)
	}
	r.stats.Moves++
	return old, nil
}

// CountDrained records queued tasks the grid re-placed off a leaver.
func (r *Registry) CountDrained(n int) { r.stats.Drained += n }

// negInf is the rebalancer's "never" timestamp.
var negInf = math.Inf(-1)
