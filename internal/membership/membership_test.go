package membership

import (
	"strings"
	"testing"

	"repro/internal/agent"
	"repro/internal/pace"
	"repro/internal/scheduler"
)

func newAgent(t testing.TB, name string, hw pace.Hardware, nodes int, e *pace.Engine) *agent.Agent {
	t.Helper()
	l, err := scheduler.NewLocal(scheduler.Config{
		Name: name, HW: hw, NumNodes: nodes,
		Policy: scheduler.NewFIFOPolicy(), Engine: e,
	})
	if err != nil {
		t.Fatal(err)
	}
	a, err := agent.New(l, e)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

// fixture: head -> {a, b}, a -> a1.
func fixture(t *testing.T) (*Registry, *pace.Engine) {
	t.Helper()
	e := pace.NewEngine()
	head := newAgent(t, "head", pace.SGIOrigin2000, 16, e)
	a := newAgent(t, "a", pace.SunUltra10, 16, e)
	b := newAgent(t, "b", pace.SunUltra10, 16, e)
	a1 := newAgent(t, "a1", pace.SunUltra5, 16, e)
	for _, l := range []struct{ p, c *agent.Agent }{{head, a}, {head, b}, {a, a1}} {
		if err := agent.Link(l.p, l.c); err != nil {
			t.Fatal(err)
		}
	}
	h, err := agent.NewHierarchy([]*agent.Agent{head, a, b, a1})
	if err != nil {
		t.Fatal(err)
	}
	return NewRegistry(h), e
}

func TestPlanValidate(t *testing.T) {
	base := []string{"head", "a", "b"}
	cases := []struct {
		name string
		plan Plan
		want string // substring of the error; "" = valid
	}{
		{"valid", Plan{
			Joins:  []Join{{Time: 10, Name: "n", Hardware: "SGIOrigin2000", Nodes: 16, Parent: "a"}},
			Leaves: []Leave{{Time: 20, Name: "n"}},
		}, ""},
		{"duplicate name", Plan{Joins: []Join{{Time: 1, Name: "a", Hardware: "SGIOrigin2000", Nodes: 4, Parent: "head"}}}, "already exists"},
		{"unknown hardware", Plan{Joins: []Join{{Time: 1, Name: "n", Hardware: "PDP11", Nodes: 4, Parent: "head"}}}, "unknown hardware"},
		{"bad nodes", Plan{Joins: []Join{{Time: 1, Name: "n", Hardware: "SGIOrigin2000", Nodes: 0, Parent: "head"}}}, "node count"},
		{"unknown parent", Plan{Joins: []Join{{Time: 1, Name: "n", Hardware: "SGIOrigin2000", Nodes: 4, Parent: "ghost"}}}, "unknown parent"},
		{"parent joins later", Plan{Joins: []Join{
			{Time: 50, Name: "p", Hardware: "SGIOrigin2000", Nodes: 4, Parent: "head"},
			{Time: 10, Name: "c", Hardware: "SGIOrigin2000", Nodes: 4, Parent: "p"},
		}}, "joins later"},
		{"head leaves", Plan{Leaves: []Leave{{Time: 1, Name: "head"}}}, "cannot leave"},
		{"unknown leaver", Plan{Leaves: []Leave{{Time: 1, Name: "ghost"}}}, "unknown agent"},
		{"double leave", Plan{Leaves: []Leave{{Time: 1, Name: "a"}, {Time: 2, Name: "a"}}}, "leaves twice"},
		{"leave before join", Plan{
			Joins:  []Join{{Time: 10, Name: "n", Hardware: "SGIOrigin2000", Nodes: 4, Parent: "head"}},
			Leaves: []Leave{{Time: 5, Name: "n"}},
		}, "precedes join"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := c.plan.Validate("head", base)
			if c.want == "" {
				if err != nil {
					t.Fatalf("valid plan rejected: %v", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), c.want) {
				t.Fatalf("got %v, want error containing %q", err, c.want)
			}
		})
	}
}

func TestRegistryJoinLeaveRoute(t *testing.T) {
	reg, e := fixture(t)
	n := newAgent(t, "n", pace.SGIOrigin2000, 16, e)
	parent, err := reg.Join(n, "a")
	if err != nil {
		t.Fatal(err)
	}
	if parent != "a" {
		t.Fatalf("joined under %s, want a", parent)
	}
	if !reg.Active("n") {
		t.Fatal("joined agent not active")
	}
	if _, err := reg.Join(n, "a"); err == nil {
		t.Fatal("double join succeeded")
	}

	// a leaves: its children (a1, n) re-home under head, and traffic for
	// a routes to head.
	res, err := reg.Leave("a")
	if err != nil {
		t.Fatal(err)
	}
	if res.Parent.Name() != "head" {
		t.Fatalf("leave reported parent %s, want head", res.Parent.Name())
	}
	if len(res.Rehomed) != 2 {
		t.Fatalf("rehomed %v, want the two children", res.Rehomed)
	}
	if reg.Active("a") {
		t.Fatal("left agent still active")
	}
	if got, ok := reg.Route("a"); !ok || got != "head" {
		t.Fatalf("Route(a) = %s, %v; want head, true", got, ok)
	}
	if _, err := reg.Leave("a"); err == nil {
		t.Fatal("double leave succeeded")
	}

	// A joiner whose parent already left lands on the ancestor instead.
	m := newAgent(t, "m", pace.SGIOrigin2000, 16, e)
	parent, err = reg.Join(m, "a")
	if err != nil {
		t.Fatal(err)
	}
	if parent != "head" {
		t.Fatalf("orphan join landed on %s, want head", parent)
	}

	s := reg.Stats()
	if s.Joins != 2 || s.Leaves != 1 || s.Rehomed != 2 {
		t.Fatalf("stats %+v", s)
	}
}

func TestRegistryRehome(t *testing.T) {
	reg, _ := fixture(t)
	old, err := reg.Rehome("a1", "b")
	if err != nil {
		t.Fatal(err)
	}
	if old.Name() != "a" {
		t.Fatalf("rehome reported old parent %s, want a", old.Name())
	}
	if reg.Stats().Moves != 1 {
		t.Fatalf("moves = %d, want 1", reg.Stats().Moves)
	}
	if _, err := reg.Rehome("ghost", "b"); err == nil {
		t.Fatal("rehoming an unknown agent succeeded")
	}
	if _, err := reg.Leave("b"); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Rehome("a1", "b"); err == nil {
		t.Fatal("rehoming under a departed agent succeeded")
	}
}

// loads drives Plan with a fixed synthetic snapshot.
func loads(m map[string]int) func(string) int {
	return func(name string) int { return m[name] }
}

func TestRebalancerHysteresisAndMove(t *testing.T) {
	reg, _ := fixture(t)
	reb := NewRebalancer(reg, Policy{MinLoad: 1, Cooldown: 1})
	// head's neighbourhood (own + a + b) is lopsided against idle b.
	snap := loads(map[string]int{"head": 10, "a": 20, "b": 0, "a1": 0})

	if _, ok := reb.Plan(0, snap, nil); ok {
		t.Fatal("moved on the first lopsided check — hysteresis window ignored")
	}
	mv, ok := reb.Plan(15, snap, nil)
	if !ok {
		t.Fatal("no move after two lopsided checks")
	}
	// head is heaviest (30), its heaviest child a moves; eligible targets
	// are outside a's subtree: b (0) and a1 is inside... a1 is a's child,
	// so only b remains.
	if mv.Subtree != "a" || mv.From != "head" || mv.To != "b" {
		t.Fatalf("move %+v, want a: head -> b", mv)
	}
}

func TestRebalancerMinLoadFloor(t *testing.T) {
	reg, _ := fixture(t)
	reb := NewRebalancer(reg, Policy{MinLoad: 100, Window: 1, Cooldown: 1})
	snap := loads(map[string]int{"head": 10, "a": 20, "b": 0, "a1": 0})
	for i := 0; i < 5; i++ {
		if _, ok := reb.Plan(float64(15*i), snap, nil); ok {
			t.Fatal("moved below the MinLoad floor")
		}
	}
}

func TestRebalancerCooldown(t *testing.T) {
	reg, _ := fixture(t)
	reb := NewRebalancer(reg, Policy{MinLoad: 1, Window: 1, Cooldown: 1000})
	snap := loads(map[string]int{"head": 10, "a": 20, "b": 0, "a1": 0})
	mv, ok := reb.Plan(0, snap, nil)
	if !ok {
		t.Fatal("no initial move")
	}
	if _, err := reg.Rehome(mv.Subtree, mv.To); err != nil {
		t.Fatal(err)
	}
	reb.Moved(0)
	// Even a blatant breach stays put during the cooldown.
	snap = loads(map[string]int{"head": 0, "a": 0, "b": 50, "a1": 50})
	if _, ok := reb.Plan(500, snap, nil); ok {
		t.Fatal("moved during the cooldown")
	}
}

func TestRebalancerCapacityPreference(t *testing.T) {
	reg, e := fixture(t)
	// Add a second idle candidate with more capacity than b.
	big := newAgent(t, "big", pace.SGIOrigin2000, 16, e)
	if _, err := reg.Join(big, "head"); err != nil {
		t.Fatal(err)
	}
	reb := NewRebalancer(reg, Policy{MinLoad: 1, Window: 1, Cooldown: 1})
	snap := loads(map[string]int{"head": 10, "a": 20, "b": 0, "a1": 0, "big": 1})
	capOf := func(name string) float64 {
		if name == "big" {
			return 16
		}
		return 8
	}
	mv, ok := reb.Plan(0, snap, capOf)
	if !ok {
		t.Fatal("no move")
	}
	// b is emptier (0 vs 1) but big has twice the capacity: big wins.
	if mv.To != "big" {
		t.Fatalf("moved to %s, want the higher-capacity big", mv.To)
	}
}

func TestRebalancerFanInCap(t *testing.T) {
	reg, _ := fixture(t)
	reb := NewRebalancer(reg, Policy{MinLoad: 1, Window: 1, Cooldown: 1, MaxFanIn: 1})
	// b has no children; a1 (a's child, inside the moved subtree) is the
	// only other leaf — with MaxFanIn 1 even childless b is eligible, but
	// head (2 children) is not, which only matters for bigger trees. Here
	// the move must still go to b.
	snap := loads(map[string]int{"head": 10, "a": 20, "b": 0, "a1": 0})
	mv, ok := reb.Plan(0, snap, nil)
	if !ok {
		t.Fatal("no move")
	}
	if mv.To != "b" {
		t.Fatalf("moved to %s, want b", mv.To)
	}
}
