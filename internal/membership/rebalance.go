package membership

import (
	"repro/internal/agent"
)

// Rebalancer defaults; see Policy.
const (
	// DefaultCheckPeriod is the load-check cadence in simulated seconds —
	// 1.5× the §4.1 advertisement pull period, so checks and pulls do not
	// permanently coincide and a check usually sees fresh adverts.
	DefaultCheckPeriod = 15.0
	// DefaultImbalance is the neighbourhood-pressure ratio (heaviest
	// parent over lightest candidate) that counts as lopsided.
	DefaultImbalance = 3.0
	// DefaultWindow is the hysteresis: consecutive lopsided checks — with
	// the same parent on top — required before a subtree moves.
	DefaultWindow = 2
	// DefaultCooldown is the minimum virtual time between moves, so one
	// hot spot does not thrash the tree.
	DefaultCooldown = 60.0
	// DefaultMaxFanIn caps an adoptive parent's direct neighbours: every
	// child is another advert exchange per pull tick, and a parent with
	// too much fan-in becomes the next bottleneck.
	DefaultMaxFanIn = 6
	// DefaultMinLoad is the absolute pressure floor: below it the ratio
	// test is meaningless (an idle grid makes 4-vs-0 look "lopsided") and
	// a move would reshape the tree on warm-up noise.
	DefaultMinLoad = 10
)

// Policy configures the load-driven rebalancer. Each check period the
// rebalancer scores every attached agent's neighbourhood pressure — its
// own queue depth plus dispatch traffic, plus the same for its direct
// lower neighbours — and when the heaviest parent stays more than
// Imbalance times above the lightest eligible adoptive parent for Window
// consecutive checks, the heaviest child subtree is re-homed under that
// lighter parent via an audited propose→detach→attach chain.
type Policy struct {
	CheckPeriod float64 // <= 0 selects DefaultCheckPeriod
	Imbalance   float64 // <= 0 selects DefaultImbalance
	Window      int     // <= 0 selects DefaultWindow
	Cooldown    float64 // <= 0 selects DefaultCooldown
	MaxFanIn    int     // <= 0 selects DefaultMaxFanIn
	MinLoad     int     // <= 0 selects DefaultMinLoad
}

// WithDefaults resolves the zero fields.
func (p Policy) WithDefaults() Policy {
	if p.CheckPeriod <= 0 {
		p.CheckPeriod = DefaultCheckPeriod
	}
	if p.Imbalance <= 0 {
		p.Imbalance = DefaultImbalance
	}
	if p.Window <= 0 {
		p.Window = DefaultWindow
	}
	if p.Cooldown <= 0 {
		p.Cooldown = DefaultCooldown
	}
	if p.MaxFanIn <= 0 {
		p.MaxFanIn = DefaultMaxFanIn
	}
	if p.MinLoad <= 0 {
		p.MinLoad = DefaultMinLoad
	}
	return p
}

// Move is one planned re-homing: the subtree rooted at Subtree leaves
// parent From and attaches under To.
type Move struct {
	Subtree  string
	From, To string
	FromLoad int // From's neighbourhood pressure at the decision
	ToLoad   int // To's neighbourhood pressure at the decision
}

// Rebalancer holds the hysteresis state between checks. It only decides;
// executing a Move (the tree mutation, the trace chain) is the grid's
// job, which reports completed moves back through Moved.
type Rebalancer struct {
	pol Policy
	reg *Registry

	streakOf string // parent currently on top of the pressure ranking
	streak   int    // consecutive checks it has been lopsided
	lastMove float64
}

// NewRebalancer creates a rebalancer over the registry's hierarchy.
func NewRebalancer(reg *Registry, pol Policy) *Rebalancer {
	return &Rebalancer{pol: pol.WithDefaults(), reg: reg, lastMove: negInf}
}

// Policy returns the resolved policy.
func (r *Rebalancer) Policy() Policy { return r.pol }

// Moved records that a planned move was carried out, starting the
// cooldown and clearing the hysteresis streak.
func (r *Rebalancer) Moved(now float64) {
	r.lastMove = now
	r.streak = 0
	r.streakOf = ""
}

// Plan runs one load check. load reports an agent's own pressure signal
// (queue depth plus dispatch traffic since the last check — the caller
// owns the exact mix); capacity reports its relative service rate
// (processing nodes over hardware slowdown — any consistent scale works,
// and nil means every agent scores equal). The decision and every
// tie-break follow the hierarchy's natural name order, so a check is
// deterministic for a given snapshot.
func (r *Rebalancer) Plan(now float64, load func(name string) int, capacity func(name string) float64) (Move, bool) {
	agents := r.reg.Hierarchy().Agents()
	if len(agents) < 3 {
		return Move{}, false // nothing to re-home: a 2-agent tree has one shape
	}

	// Neighbourhood pressure: own load plus the direct lowers' loads —
	// what this parent and its children currently carry. Deliberately
	// local (not whole-subtree sums): an ancestor must not score as the
	// sum of everything below it, or the head would always be "heaviest".
	pressure := make(map[string]int, len(agents))
	kids := make(map[string][]*agent.Agent, len(agents))
	for _, a := range agents {
		p := load(a.Name())
		for _, l := range a.Lowers() {
			if la, ok := l.(*agent.Agent); ok {
				p += load(la.Name())
				kids[a.Name()] = append(kids[a.Name()], la)
			}
		}
		pressure[a.Name()] = p
	}

	// The heaviest parent (an agent with children). Agents() is in
	// natural name order, so strict > makes the first-named win ties.
	var heavy *agent.Agent
	heavyLoad := -1
	for _, a := range agents {
		if len(kids[a.Name()]) == 0 {
			continue
		}
		if pressure[a.Name()] > heavyLoad {
			heavy, heavyLoad = a, pressure[a.Name()]
		}
	}
	if heavy == nil {
		return Move{}, false
	}
	// Absolute floor before the ratio even matters: a near-idle grid has
	// noisy single-digit pressures, and acting on those reshapes the tree
	// for no gain (or into a degenerate chain the planner cannot undo).
	if heavyLoad < r.pol.MinLoad {
		r.streak, r.streakOf = 0, ""
		return Move{}, false
	}

	// The heaviest child subtree under it is what would move.
	var child *agent.Agent
	childLoad := -1
	for _, c := range kids[heavy.Name()] {
		if pressure[c.Name()] > childLoad {
			child, childLoad = c, pressure[c.Name()]
		}
	}

	// The adoptive parent: outside the moved subtree, not the heavy parent
	// itself, with fan-in room for one more child, and individually idle
	// enough to satisfy the imbalance ratio (+1 so an idle grid never
	// divides by zero). Among those, the largest capacity wins — a hot
	// subtree should land next to the fastest spare machine, not merely
	// the emptiest one (often a slow leaf that turns into the next hot
	// spot) — with lighter load and then name order breaking ties.
	moved := subtreeNames(child)
	var target *agent.Agent
	targetLoad := 0
	targetCap := 0.0
	for _, a := range agents {
		if a == heavy || moved[a.Name()] {
			continue
		}
		if len(a.Lowers()) >= r.pol.MaxFanIn {
			continue
		}
		p := pressure[a.Name()]
		if float64(heavyLoad) <= r.pol.Imbalance*float64(p+1) {
			continue
		}
		c := 1.0
		if capacity != nil {
			c = capacity(a.Name())
		}
		if target == nil || c > targetCap || (c == targetCap && p < targetLoad) {
			target, targetLoad, targetCap = a, p, c
		}
	}
	// Hysteresis: the same parent must stay lopsided — no eligible target
	// means no breach — for Window consecutive checks.
	if target == nil {
		r.streak, r.streakOf = 0, ""
		return Move{}, false
	}
	if r.streakOf != heavy.Name() {
		r.streakOf, r.streak = heavy.Name(), 0
	}
	r.streak++
	if r.streak < r.pol.Window || now-r.lastMove < r.pol.Cooldown {
		return Move{}, false
	}
	return Move{
		Subtree: child.Name(), From: heavy.Name(), To: target.Name(),
		FromLoad: heavyLoad, ToLoad: targetLoad,
	}, true
}

// subtreeNames collects the names in the in-process subtree rooted at a.
func subtreeNames(a *agent.Agent) map[string]bool {
	out := map[string]bool{}
	var walk func(x *agent.Agent)
	walk = func(x *agent.Agent) {
		out[x.Name()] = true
		for _, l := range x.Lowers() {
			if la, ok := l.(*agent.Agent); ok {
				walk(la)
			}
		}
	}
	walk(a)
	return out
}
