package transport

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/agent"
	"repro/internal/pace"
	"repro/internal/scheduler"
	"repro/internal/telemetry"
	"repro/internal/xmlmsg"
)

// RemotePeer is a TCP stub for a neighbouring agent: it implements
// agent.Peer by speaking the agentgrid XML protocol. Applications travel
// by model name; both sides resolve the name against their own model
// library, matching the paper's assumption that models "are pre-compiled
// and available in all local file systems" (§3.2).
type RemotePeer struct {
	Name string
	Addr string
	Lib  *pace.Library

	// Client, when set, overrides the default exchange client — per-peer
	// timeouts and retry policy for links of different quality. Nil uses
	// the package defaults.
	Client *Client
}

func (p *RemotePeer) client() *Client {
	if p.Client != nil {
		return p.Client
	}
	return defaultClient
}

// PeerName implements agent.Peer.
func (p *RemotePeer) PeerName() string { return p.Name }

// PullService implements agent.Peer.
func (p *RemotePeer) PullService() (scheduler.ServiceInfo, error) {
	reply, _, err := p.client().Call(p.Addr, xmlmsg.NewServiceQuery())
	if err != nil {
		return scheduler.ServiceInfo{}, err
	}
	si, ok := reply.(*xmlmsg.ServiceInfo)
	if !ok {
		return scheduler.ServiceInfo{}, fmt.Errorf("transport: %s replied %T to a service query", p.Name, reply)
	}
	ft, err := si.FreetimeSeconds()
	if err != nil {
		return scheduler.ServiceInfo{}, err
	}
	return scheduler.ServiceInfo{
		Name:         p.Name,
		HWType:       si.Local.HWType,
		NProc:        si.Local.NProc,
		Environments: si.Local.Environments,
		Freetime:     ft,
	}, nil
}

// Handle implements agent.Peer: forward the request for discovery.
func (p *RemotePeer) Handle(req agent.Request, now float64) (agent.Dispatch, error) {
	return p.send(req, xmlmsg.ModeDiscover)
}

// SubmitDirect implements agent.Peer: queue on the remote scheduler
// unconditionally.
func (p *RemotePeer) SubmitDirect(req agent.Request, now float64) (agent.Dispatch, error) {
	return p.send(req, xmlmsg.ModeDirect)
}

// PushAdvertisement implements agent.AdvertSink: deliver a pushed Fig. 5
// advertisement to the remote neighbour.
func (p *RemotePeer) PushAdvertisement(from string, info scheduler.ServiceInfo, now float64) error {
	msg := xmlmsg.NewServiceInfo(xmlmsg.Endpoint{}, xmlmsg.Endpoint{}, info.HWType, info.NProc, info.Environments, info.Freetime)
	msg.Local.Name = from
	_, _, err := p.client().Call(p.Addr, msg)
	return err
}

func (p *RemotePeer) send(req agent.Request, mode string) (agent.Dispatch, error) {
	wire := xmlmsg.NewWireRequest(req.ReqID, req.App.Name, req.Env, req.Deadline, req.Email, mode, req.Visited)
	reply, _, err := p.client().Call(p.Addr, wire)
	if err != nil {
		return agent.Dispatch{}, err
	}
	ack, ok := reply.(*xmlmsg.DispatchAck)
	if !ok {
		return agent.Dispatch{}, fmt.Errorf("transport: %s replied %T to a request", p.Name, reply)
	}
	eta, _ := ack.EtaSeconds()
	return agent.Dispatch{
		Resource: ack.Resource,
		TaskID:   ack.TaskID,
		ReqID:    ack.ReqID,
		Eta:      eta,
		Hops:     ack.Hops,
		Fallback: ack.Fallback,
	}, nil
}

// Node hosts one agent (and its local scheduler) behind a TCP server,
// translating wire messages into agent calls. Virtual time is wall time
// since the node started, so a networked deployment runs in real time
// like the original system. All agent access is serialised: the agent and
// scheduler types are deliberately single-threaded.
type Node struct {
	mu          sync.Mutex
	pushEnabled bool
	agent       *agent.Agent
	lib         *pace.Library
	start       time.Time
	srv         *Server
	stop        chan struct{}
	stopOnce    sync.Once
	wg          sync.WaitGroup
	emails      map[int]string // task ID -> submitting email, for result delivery
	tick        time.Duration
	srvCfg      ServerConfig
}

// NewNode creates a node for the agent; Start brings up the server. The
// virtual clock origin defaults to the node's start instant; a deployment
// of several daemons plus a portal should share an origin via
// SetClockOrigin (cmd/gridagent and cmd/gridsubmit use local midnight) so
// absolute deadlines mean the same thing everywhere.
func NewNode(a *agent.Agent, lib *pace.Library) (*Node, error) {
	if a == nil || lib == nil {
		return nil, fmt.Errorf("transport: node needs an agent and a library")
	}
	return &Node{
		agent: a, lib: lib, start: time.Now(), stop: make(chan struct{}),
		emails: map[int]string{}, tick: DefaultTickPeriod,
	}, nil
}

// SetClockOrigin anchors virtual time 0 at t. Call before Start.
func (n *Node) SetClockOrigin(t time.Time) { n.start = t }

// SetPushEnabled turns event-triggered advertisement pushes (§3.1) on or
// off: after accepting work, the node pushes its advertisement to all
// neighbours once its freetime drifts past the agent's PushThreshold.
func (n *Node) SetPushEnabled(on bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.pushEnabled = on
}

// CachedServiceNames lists the agent's service set under the node lock.
func (n *Node) CachedServiceNames() []string {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.agent.CachedServiceNames()
}

// MidnightOrigin returns today's local midnight, the shared clock origin
// used by the CLI daemons and the portal.
func MidnightOrigin() time.Time {
	now := time.Now()
	return time.Date(now.Year(), now.Month(), now.Day(), 0, 0, 0, 0, now.Location())
}

// Now returns the node's virtual time: wall seconds since the clock
// origin.
func (n *Node) Now() float64 { return time.Since(n.start).Seconds() }

// Agent returns the hosted agent. Callers must not use it concurrently
// with a started node; prefer SetUpper/AddLower/Stats on the node.
func (n *Node) Agent() *agent.Agent { return n.agent }

// SetUpper wires a remote upper neighbour under the node lock.
func (n *Node) SetUpper(p agent.Peer) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.agent.SetUpper(p)
}

// AddLower wires a remote lower neighbour under the node lock.
func (n *Node) AddLower(p agent.Peer) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.agent.AddLower(p)
}

// Stats returns the hosted agent's counters under the node lock.
func (n *Node) Stats() agent.Stats {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.agent.Stats()
}

// SetTelemetry registers the node's full stack — agent counters,
// scheduler queue/plan instruments, the GA policy's counters and the
// PACE engine's cache statistics — on reg under the node's resource
// name. Call before Start: the registrations write agent and scheduler
// state. Live scrapes of reg afterwards read only atomic instruments
// and snapshot-time collectors, so they never contend with the node
// lock.
func (n *Node) SetTelemetry(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	name := n.agent.Name()
	n.agent.RegisterMetrics(reg)
	local := n.agent.Local()
	local.SetMetrics(scheduler.NewMetrics(reg, name))
	local.Engine().RegisterMetrics(reg, "resource", name)
	if gp, ok := local.Policy().(*scheduler.GAPolicy); ok {
		gp.RegisterMetrics(reg, name)
	}
}

// DefaultTickPeriod is how often an idle node advances its scheduler
// clock so planned task starts (and their executor launches) happen on
// time instead of waiting for the next incoming message.
const DefaultTickPeriod = 250 * time.Millisecond

// SetTickPeriod overrides the clock tick; 0 disables ticking (promotions
// then only occur when messages arrive). Call before Start.
func (n *Node) SetTickPeriod(d time.Duration) { n.tick = d }

// SetServerConfig sets the node server's admission gate, codec policy
// and dedup window. Call before Start.
func (n *Node) SetServerConfig(cfg ServerConfig) { n.srvCfg = cfg }

// Start listens on addr and begins the periodic advertisement pull loop
// and the scheduler clock tick.
func (n *Node) Start(addr string) error {
	srv, err := ServeWith(addr, n.handle, n.srvCfg)
	if err != nil {
		return err
	}
	n.srv = srv
	n.wg.Add(1)
	go n.pullLoop()
	if n.tick != 0 {
		n.wg.Add(1)
		go n.tickLoop()
	}
	return nil
}

func (n *Node) tickLoop() {
	defer n.wg.Done()
	t := time.NewTicker(n.tick)
	defer t.Stop()
	for {
		select {
		case <-n.stop:
			return
		case <-t.C:
			n.mu.Lock()
			n.agent.Local().AdvanceTo(n.Now())
			n.mu.Unlock()
		}
	}
}

// Addr returns the listen address after Start.
func (n *Node) Addr() string { return n.srv.Addr() }

// Close stops the pull loop and the server. Idempotent: a daemon's
// signal handler and its deferred shutdown may both reach it.
func (n *Node) Close() error {
	var err error
	n.stopOnce.Do(func() {
		close(n.stop)
		n.wg.Wait()
		if n.srv != nil {
			err = n.srv.Close()
		}
	})
	return err
}

func (n *Node) pullLoop() {
	defer n.wg.Done()
	period := time.Duration(n.agent.PullPeriod * float64(time.Second))
	if period <= 0 {
		period = time.Duration(agent.DefaultPullPeriod) * time.Second
	}
	t := time.NewTicker(period)
	defer t.Stop()
	// Prime the cache immediately so early requests can be forwarded.
	n.pullOnce()
	for {
		select {
		case <-n.stop:
			return
		case <-t.C:
			n.pullOnce()
		}
	}
}

// pullOnce refreshes the advertisement cache. The network calls happen
// without holding the node lock — two nodes pulling from each other
// simultaneously would otherwise deadlock until their exchange timeouts —
// and the results are stored under the lock afterwards.
func (n *Node) pullOnce() {
	n.mu.Lock()
	peers := n.agent.Lowers()
	if up := n.agent.Upper(); up != nil {
		peers = append(peers, up)
	}
	n.mu.Unlock()

	type pulled struct {
		name string
		info scheduler.ServiceInfo
		err  error
	}
	var got []pulled
	for _, p := range peers {
		info, err := p.PullService()
		got = append(got, pulled{p.PeerName(), info, err})
	}

	n.mu.Lock()
	now := n.Now()
	for _, g := range got {
		if g.err != nil {
			// An unreachable neighbour keeps its previous advertisement
			// but feeds the circuit breaker; once tripped the peer stops
			// attracting dispatches until a pull succeeds again.
			n.agent.CountFailedPull()
			n.agent.RecordPeerFailure(g.name)
			continue
		}
		n.agent.RecordPeerSuccess(g.name)
		n.agent.StoreAdvertisement(g.name, g.info, now)
	}
	n.agent.CountPull()
	n.mu.Unlock()
}

// recordPeer feeds the agent's per-peer circuit breaker after a remote
// exchange. Only transport-level failures count against a peer: an
// ErrorReply (ExchangeError with Op "reply") means the peer is alive and
// answering, just unable to take this request — and a Busy reply (Op
// "busy") likewise proves a live peer, one shedding load that will
// drain; tripping the breaker on it would turn brief saturation into
// minutes of exile.
func (n *Node) recordPeer(name string, err error) {
	var xe *ExchangeError
	if err != nil && errors.As(err, &xe) && (xe.Op == "reply" || xe.Op == "busy") {
		err = nil
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if err != nil {
		n.agent.RecordPeerFailure(name)
	} else {
		n.agent.RecordPeerSuccess(name)
	}
}

// handle translates one wire message into an agent call.
func (n *Node) handle(msg interface{}, kind xmlmsg.Kind) (interface{}, error) {
	switch m := msg.(type) {
	case *xmlmsg.Query:
		switch m.What {
		case "service":
			n.mu.Lock()
			n.agent.Local().AdvanceTo(n.Now())
			si, err := n.agent.PullService()
			n.mu.Unlock()
			if err != nil {
				return nil, err
			}
			local := xmlmsg.Endpoint{Address: "127.0.0.1", Port: n.srv.Port()}
			return xmlmsg.NewServiceInfo(local, local, si.HWType, si.NProc, si.Environments, si.Freetime), nil
		case "results":
			return n.results(m.Email), nil
		}
		return nil, fmt.Errorf("unknown query %q", m.What)

	case *xmlmsg.ServiceInfo:
		// A pushed advertisement from a neighbour (§3.1 push strategy).
		if m.Local.Name == "" {
			return nil, fmt.Errorf("pushed advertisement carries no sender name")
		}
		ft, err := m.FreetimeSeconds()
		if err != nil {
			return nil, err
		}
		n.mu.Lock()
		_ = n.agent.PushAdvertisement(m.Local.Name, scheduler.ServiceInfo{
			Name:         m.Local.Name,
			HWType:       m.Local.HWType,
			NProc:        m.Local.NProc,
			Environments: m.Local.Environments,
			Freetime:     ft,
		}, n.Now())
		si, err := n.agent.PullService()
		n.mu.Unlock()
		if err != nil {
			return nil, err
		}
		// Reply with our own advertisement: pushes double as exchanges.
		local := xmlmsg.Endpoint{Address: "127.0.0.1", Port: n.srv.Port()}
		reply := xmlmsg.NewServiceInfo(local, local, si.HWType, si.NProc, si.Environments, si.Freetime)
		reply.Local.Name = n.agent.Name()
		return reply, nil

	case *xmlmsg.Request:
		if err := m.Validate(); err != nil {
			return nil, err
		}
		app, ok := n.lib.Lookup(m.Application.Name)
		if !ok {
			return nil, fmt.Errorf("unknown application model %q", m.Application.Name)
		}
		deadline, err := m.DeadlineSeconds()
		if err != nil {
			return nil, err
		}
		req := agent.Request{
			ReqID:    m.ReqID,
			App:      app,
			Env:      m.Requirement.Environment,
			Deadline: deadline,
			Email:    m.Email,
			Visited:  m.Visited,
		}
		d, err := n.dispatch(req, m.Mode)
		if err != nil {
			return nil, err
		}
		return xmlmsg.NewDispatchAck(d.Resource, d.TaskID, d.ReqID, d.Eta, d.Hops, d.Fallback), nil

	case *xmlmsg.Membership:
		return n.handleMembership(m)

	case *xmlmsg.Reserve:
		op, err := n.reserveOpFromWire(m)
		if err != nil {
			return nil, err
		}
		reply, err := n.reserveDispatch(op)
		if err != nil {
			return nil, err
		}
		return reserveAckToWire(reply), nil
	}
	return nil, fmt.Errorf("unsupported message kind %q", kind)
}

// results builds the answer to a results query: every task this node's
// scheduler has started, marked done once its (test-mode) completion time
// passes, optionally filtered by submitting email.
func (n *Node) results(email string) xmlmsg.ResultSet {
	n.mu.Lock()
	defer n.mu.Unlock()
	now := n.Now()
	n.agent.Local().AdvanceTo(now)
	local := n.agent.Local()
	recs := local.Records()
	recs = append(recs, local.Planned()...) // queued tasks report planned times
	var tasks []xmlmsg.TaskResult
	for _, r := range recs {
		owner := n.emails[r.TaskID]
		if email != "" && owner != email {
			continue
		}
		app := ""
		if r.App != nil {
			app = r.App.Name
		}
		nproc := 0
		for m := r.Mask; m != 0; m &= m - 1 {
			nproc++
		}
		tasks = append(tasks, xmlmsg.TaskResult{
			App:      app,
			TaskID:   r.TaskID,
			Resource: r.Resource,
			NProc:    nproc,
			Start:    xmlmsg.FormatVirtual(r.Start),
			End:      xmlmsg.FormatVirtual(r.End),
			Deadline: xmlmsg.FormatVirtual(r.Deadline),
			Met:      r.End <= r.Deadline,
			Done:     r.End <= now,
			Email:    owner,
		})
	}
	return xmlmsg.NewResultSet(tasks)
}

// dispatch drives the agent's discovery decision, performing remote calls
// without holding the node lock: a recursive HandleRequest under the lock
// would deadlock when two nodes forward to each other concurrently.
func (n *Node) dispatch(req agent.Request, mode string) (agent.Dispatch, error) {
	if mode == xmlmsg.ModeDirect {
		n.mu.Lock()
		defer n.mu.Unlock()
		n.agent.Local().AdvanceTo(n.Now())
		d, err := n.agent.SubmitDirect(req, n.Now())
		if err == nil {
			n.emails[d.TaskID] = req.Email
		}
		return d, err
	}

	n.mu.Lock()
	// Keep the scheduler's virtual clock current so freetime and eq. 10
	// estimates are measured against real elapsed time, not the last
	// submission instant.
	n.agent.Local().AdvanceTo(n.Now())
	dec := n.agent.Decide(req, n.Now())
	n.mu.Unlock()
	req.Visited = dec.Visited

	switch dec.Kind {
	case agent.DecideLocal, agent.DecideFallbackLocal:
		n.mu.Lock()
		d, err := n.agent.AcceptLocal(req, n.Now(), dec.Eta, dec.Kind == agent.DecideFallbackLocal)
		if err == nil {
			n.emails[d.TaskID] = req.Email
		}
		var pushInfo scheduler.ServiceInfo
		var sinks []agent.AdvertSink
		if err == nil && n.pushEnabled {
			if si, ok := n.agent.ShouldPush(); ok {
				pushInfo = si
				peers := n.agent.Lowers()
				if up := n.agent.Upper(); up != nil {
					peers = append(peers, up)
				}
				for _, p := range peers {
					if s, ok := p.(agent.AdvertSink); ok {
						sinks = append(sinks, s)
					}
				}
			}
		}
		n.mu.Unlock()
		if len(sinks) > 0 {
			// Deliveries happen outside the lock: two nodes pushing at
			// each other simultaneously must not deadlock.
			sent := 0
			for _, s := range sinks {
				if s.PushAdvertisement(n.agent.Name(), pushInfo, n.Now()) == nil {
					sent++
				}
			}
			n.mu.Lock()
			n.agent.MarkPushed(pushInfo, sent)
			n.mu.Unlock()
		}
		return d, err
	case agent.DecideForward, agent.DecideEscalate:
		// Remote exchange outside the lock.
		d, err := dec.Peer.Handle(req, n.Now())
		n.recordPeer(dec.Peer.PeerName(), err)
		return d, err
	case agent.DecideFallbackRemote:
		d, err := dec.Peer.SubmitDirect(req, n.Now())
		n.recordPeer(dec.Peer.PeerName(), err)
		if err != nil {
			return agent.Dispatch{}, err
		}
		d.Eta = dec.Eta
		d.Fallback = true
		return d, nil
	}
	return agent.Dispatch{}, dec.Err
}
