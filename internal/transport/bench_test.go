package transport

import (
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/xmlmsg"
)

// BenchmarkExchange measures farm-transport throughput over loopback:
// concurrent request/ack exchanges against one server, with a cheap
// handler so the wire dominates (a full farm node serialises on its
// agent lock, which would mask transport differences). Reports exact
// p50/p99 latency alongside req/s — scripts/bench.sh pr8 turns the
// legacy-vs-pooled sub-benches into BENCH_PR8.json.
func BenchmarkExchange(b *testing.B) {
	const conc = 16
	b.Run("legacy", func(b *testing.B) {
		s, err := Serve("127.0.0.1:0", echoHandler)
		if err != nil {
			b.Fatal(err)
		}
		defer s.Close()
		benchExchanges(b, NewClient(), s.Addr(), conc)
	})
	b.Run("pooled", func(b *testing.B) {
		s, err := Serve("127.0.0.1:0", echoHandler)
		if err != nil {
			b.Fatal(err)
		}
		defer s.Close()
		c := NewPooledClient(PoolConfig{Size: 4})
		defer c.Pool.Close()
		benchExchanges(b, c, s.Addr(), conc)
	})
	b.Run("pooled-binary", func(b *testing.B) {
		s, err := ServeWith("127.0.0.1:0", echoHandler, ServerConfig{AllowBinary: true})
		if err != nil {
			b.Fatal(err)
		}
		defer s.Close()
		c := NewPooledClient(PoolConfig{Size: 4, Binary: true})
		defer c.Pool.Close()
		benchExchanges(b, c, s.Addr(), conc)
	})
}

func benchExchanges(b *testing.B, c *Client, addr string, conc int) {
	var next atomic.Uint64
	lat := make([][]time.Duration, conc)
	var wg sync.WaitGroup
	b.ResetTimer()
	start := time.Now()
	for g := 0; g < conc; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for {
				n := next.Add(1)
				if n > uint64(b.N) {
					return
				}
				req := xmlmsg.NewWireRequest(n, "sweep3d", "test", 1e6, "bench@grid", xmlmsg.ModeDiscover, nil)
				t0 := time.Now()
				if _, _, err := c.Call(addr, req); err != nil {
					b.Error(err)
					return
				}
				lat[g] = append(lat[g], time.Since(t0))
			}
		}(g)
	}
	wg.Wait()
	wall := time.Since(start)
	b.StopTimer()
	if b.Failed() {
		return
	}
	var all []time.Duration
	for _, l := range lat {
		all = append(all, l...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	q := func(p float64) float64 {
		if len(all) == 0 {
			return 0
		}
		i := int(p * float64(len(all)-1))
		return all[i].Seconds() * 1e3
	}
	b.ReportMetric(float64(b.N)/wall.Seconds(), "req/s")
	b.ReportMetric(q(0.50), "p50-ms")
	b.ReportMetric(q(0.99), "p99-ms")
}
