package transport

import (
	"fmt"
	"net"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/telemetry"
	"repro/internal/xmlmsg"
)

// sleepyEchoHandler behaves like echoHandler but a service query whose
// email carries an integer sleeps that many milliseconds first — the
// knob the multiplexing and backpressure tests use to hold exchanges
// open for controlled times.
func sleepyEchoHandler(msg interface{}, kind xmlmsg.Kind) (interface{}, error) {
	if q, ok := msg.(*xmlmsg.Query); ok && q.What == "service" {
		if ms, err := strconv.Atoi(q.Email); err == nil && ms > 0 {
			time.Sleep(time.Duration(ms) * time.Millisecond)
		}
	}
	return echoHandler(msg, kind)
}

func delayedQuery(ms int) xmlmsg.Query {
	return xmlmsg.Query{Type: "query", What: "service", Email: strconv.Itoa(ms)}
}

func TestPooledCallsReuseConnections(t *testing.T) {
	s, err := Serve("127.0.0.1:0", echoHandler)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	reg := telemetry.NewRegistry()
	c := NewPooledClient(PoolConfig{Size: 2, Metrics: NewPoolMetrics(reg)})
	defer c.Pool.Close()
	for i := 0; i < 20; i++ {
		if _, _, err := c.Call(s.Addr(), xmlmsg.NewServiceQuery()); err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
	}
	if n := c.Pool.ConnCount(s.Addr()); n < 1 || n > 2 {
		t.Fatalf("pool holds %d connections, want 1..2", n)
	}
	if got := reg.Gauge("transport_pool_conns").Value(); got < 1 || got > 2 {
		t.Fatalf("transport_pool_conns = %v", got)
	}
}

func TestPoolRetiresBrokenConnectionsAndRedials(t *testing.T) {
	s, err := Serve("127.0.0.1:0", echoHandler)
	if err != nil {
		t.Fatal(err)
	}
	addr := s.Addr()

	reg := telemetry.NewRegistry()
	c := NewPooledClient(PoolConfig{Size: 1, Metrics: NewPoolMetrics(reg)})
	defer c.Pool.Close()
	if _, _, err := c.Call(addr, xmlmsg.NewServiceQuery()); err != nil {
		t.Fatal(err)
	}
	if n := c.Pool.ConnCount(addr); n != 1 {
		t.Fatalf("pool holds %d connections, want 1", n)
	}

	// Kill the server: the pooled connection dies. The same port is
	// reclaimed so the client's redial lands on a fresh server.
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := Serve(addr, echoHandler)
	if err != nil {
		t.Skipf("cannot rebind %s: %v", addr, err)
	}
	defer s2.Close()

	// The retry loop inside Call absorbs the one failed attempt on the
	// stale connection; the retry prunes it and dials the new server.
	c.Sleep = func(time.Duration) {}
	if _, _, err := c.Call(addr, xmlmsg.NewServiceQuery()); err != nil {
		t.Fatalf("call after server restart: %v", err)
	}
	if got := reg.Counter("transport_pool_retired_total").Value(); got < 1 {
		t.Fatalf("transport_pool_retired_total = %d, want >= 1", got)
	}
	if n := c.Pool.ConnCount(addr); n != 1 {
		t.Fatalf("pool holds %d connections after redial, want 1", n)
	}
}

func TestMultiplexedRepliesReturnOutOfOrder(t *testing.T) {
	s, err := Serve("127.0.0.1:0", sleepyEchoHandler)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	// One connection carries both exchanges (Size: 1); the slow one is
	// sent first, the fast one second — under the legacy one-at-a-time
	// protocol the fast reply would queue behind the slow handler.
	p := NewPool(PoolConfig{Size: 1})
	defer p.Close()

	order := make(chan string, 2)
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		if _, _, xe := p.Exchange(s.Addr(), delayedQuery(400), time.Second, 5*time.Second); xe != nil {
			t.Errorf("slow exchange: %v", xe)
		}
		order <- "slow"
	}()
	time.Sleep(100 * time.Millisecond) // slow request is in flight first
	go func() {
		defer wg.Done()
		if _, _, xe := p.Exchange(s.Addr(), delayedQuery(0), time.Second, 5*time.Second); xe != nil {
			t.Errorf("fast exchange: %v", xe)
		}
		order <- "fast"
	}()
	wg.Wait()
	if first := <-order; first != "fast" {
		t.Fatalf("first completed exchange = %q, want the later-sent fast one", first)
	}
	if p.ConnCount(s.Addr()) != 1 {
		t.Fatalf("exchanges used %d connections, want 1", p.ConnCount(s.Addr()))
	}
}

func TestWindowShedsWhenFull(t *testing.T) {
	s, err := Serve("127.0.0.1:0", sleepyEchoHandler)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	reg := telemetry.NewRegistry()
	p := NewPool(PoolConfig{Size: 1, Window: 1, Shed: true, Metrics: NewPoolMetrics(reg)})
	defer p.Close()

	done := make(chan struct{})
	go func() {
		defer close(done)
		if _, _, xe := p.Exchange(s.Addr(), delayedQuery(500), time.Second, 5*time.Second); xe != nil {
			t.Errorf("occupying exchange: %v", xe)
		}
	}()
	time.Sleep(100 * time.Millisecond) // window slot taken
	_, _, xe := p.Exchange(s.Addr(), delayedQuery(0), time.Second, 5*time.Second)
	if xe == nil || xe.Op != "shed" {
		t.Fatalf("over-window exchange = %v, want Op shed", xe)
	}
	if got := reg.Counter("transport_shed_total").Value(); got != 1 {
		t.Fatalf("transport_shed_total = %d, want 1", got)
	}
	<-done
	// With the window free again the same exchange goes through.
	if _, _, xe := p.Exchange(s.Addr(), delayedQuery(0), time.Second, 5*time.Second); xe != nil {
		t.Fatalf("post-drain exchange: %v", xe)
	}
}

func TestWindowBlocksThenTimesOut(t *testing.T) {
	s, err := Serve("127.0.0.1:0", sleepyEchoHandler)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	p := NewPool(PoolConfig{Size: 1, Window: 1})
	defer p.Close()

	done := make(chan struct{})
	go func() {
		defer close(done)
		_, _, _ = p.Exchange(s.Addr(), delayedQuery(600), time.Second, 5*time.Second)
	}()
	time.Sleep(100 * time.Millisecond)
	// Blocking mode: the second exchange waits for a slot, bounded by its
	// exchange timeout.
	start := time.Now()
	_, _, xe := p.Exchange(s.Addr(), delayedQuery(0), time.Second, 150*time.Millisecond)
	if xe == nil || xe.Op != "window" {
		t.Fatalf("blocked exchange = %v, want Op window", xe)
	}
	if waited := time.Since(start); waited < 100*time.Millisecond {
		t.Fatalf("shed after %v: blocking mode must wait for the window", waited)
	}
	<-done
}

// Client.call must not retry local backpressure: the window is full
// because of our own in-flight load, and hammering it helps nobody.
func TestShedAndWindowErrorsAreNotRetried(t *testing.T) {
	s, err := Serve("127.0.0.1:0", sleepyEchoHandler)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	c := NewPooledClient(PoolConfig{Size: 1, Window: 1, Shed: true})
	defer c.Pool.Close()
	var slept []time.Duration
	c.Sleep = func(d time.Duration) { slept = append(slept, d) }

	done := make(chan struct{})
	go func() {
		defer close(done)
		_, _, _ = c.Pool.Exchange(s.Addr(), delayedQuery(500), time.Second, 5*time.Second)
	}()
	time.Sleep(100 * time.Millisecond)
	_, _, err = c.Call(s.Addr(), delayedQuery(0))
	xe, ok := err.(*ExchangeError)
	if !ok || xe.Op != "shed" || xe.Attempts != 1 {
		t.Fatalf("call = %v, want one-attempt shed", err)
	}
	if len(slept) != 0 {
		t.Fatalf("client backed off %v for a local shed", slept)
	}
	<-done
}

func TestCodecNegotiation(t *testing.T) {
	cases := []struct {
		name        string
		allowBinary bool
		wantBinary  bool
		wantCodec   byte
	}{
		{"both sides binary", true, true, xmlmsg.CodecBinary},
		{"server refuses binary", false, true, xmlmsg.CodecXML},
		{"client never asked", true, false, xmlmsg.CodecXML},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s, err := ServeWith("127.0.0.1:0", echoHandler, ServerConfig{AllowBinary: tc.allowBinary})
			if err != nil {
				t.Fatal(err)
			}
			defer s.Close()
			mc, xe := dialMux(s.Addr(), time.Second, time.Second, tc.wantBinary)
			if xe != nil {
				t.Fatal(xe)
			}
			defer mc.retire()
			if mc.codec != tc.wantCodec {
				t.Fatalf("negotiated codec %c, want %c", mc.codec, tc.wantCodec)
			}
			// The negotiated connection must carry a real exchange.
			reply, kind, xe := mc.roundTrip(xmlmsg.NewServiceQuery(), time.Second)
			if xe != nil || kind != xmlmsg.KindService {
				t.Fatalf("roundTrip kind %v err %v", kind, xe)
			}
			if si := reply.(*xmlmsg.ServiceInfo); si.Local.HWType != "SunUltra5" {
				t.Fatalf("service info %+v", si)
			}
		})
	}
}

// TestDuplicateDeliveryIsNotReexecuted injects the timeout-retry fault
// the dedup cache exists for: the first delivery executes slowly, the
// client times out and retries, and the retried delivery must join the
// original execution instead of dispatching the task a second time.
func TestDuplicateDeliveryIsNotReexecuted(t *testing.T) {
	var execs atomic.Int32
	h := func(msg interface{}, kind xmlmsg.Kind) (interface{}, error) {
		req, ok := msg.(*xmlmsg.Request)
		if !ok {
			return echoHandler(msg, kind)
		}
		if execs.Add(1) == 1 {
			time.Sleep(500 * time.Millisecond) // outlive the client's timeout
		}
		return xmlmsg.NewDispatchAck("S1", int(execs.Load()), req.ReqID, 99, 1, false), nil
	}
	s, err := Serve("127.0.0.1:0", h)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	c := NewPooledClient(PoolConfig{})
	defer c.Pool.Close()
	c.ExchangeTimeout = 300 * time.Millisecond
	c.Sleep = func(time.Duration) {}

	req := xmlmsg.NewWireRequest(777, "sweep3d", "test", 1e6, "u@example.org", xmlmsg.ModeDiscover, nil)
	reply, kind, err := c.Call(s.Addr(), req)
	if err != nil {
		t.Fatalf("call: %v", err)
	}
	if kind != xmlmsg.KindDispatch {
		t.Fatalf("kind = %v", kind)
	}
	if got := execs.Load(); got != 1 {
		t.Fatalf("request executed %d times, want 1", got)
	}
	// The cached reply is the original execution's.
	if ack := reply.(*xmlmsg.DispatchAck); ack.TaskID != 1 || ack.ReqID != 777 {
		t.Fatalf("ack %+v, want the first execution's reply", ack)
	}

	// A later retry of the same request hits the completed cache entry.
	if _, _, err := c.Call(s.Addr(), req); err != nil {
		t.Fatalf("late retry: %v", err)
	}
	if got := execs.Load(); got != 1 {
		t.Fatalf("late retry re-executed: %d executions", got)
	}
}

func TestAdmissionGateShedsRequestsNotQueries(t *testing.T) {
	gate := make(chan struct{})
	h := func(msg interface{}, kind xmlmsg.Kind) (interface{}, error) {
		if kind == xmlmsg.KindRequest {
			<-gate
		}
		return echoHandler(msg, kind)
	}
	s, err := ServeWith("127.0.0.1:0", h, ServerConfig{MaxInflight: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	defer close(gate)

	p := NewPool(PoolConfig{})
	defer p.Close()

	first := make(chan *ExchangeError, 1)
	go func() {
		_, _, xe := p.Exchange(s.Addr(), xmlmsg.NewWireRequest(1, "sweep3d", "test", 1e6, "u@g", xmlmsg.ModeDiscover, nil),
			time.Second, 5*time.Second)
		first <- xe
	}()
	deadlineWait(t, func() bool { return s.Inflight() == 1 })

	// Second request: the gate is full, the server sheds with Busy.
	_, _, xe := p.Exchange(s.Addr(), xmlmsg.NewWireRequest(2, "sweep3d", "test", 1e6, "u@g", xmlmsg.ModeDiscover, nil),
		time.Second, 5*time.Second)
	if xe == nil || xe.Op != "busy" {
		t.Fatalf("over-limit request = %v, want Op busy", xe)
	}

	// Queries are exempt: a saturated node must stay observable, or the
	// pull-based circuit breakers would trip on load instead of death.
	if _, kind, xe := p.Exchange(s.Addr(), xmlmsg.NewServiceQuery(), time.Second, 5*time.Second); xe != nil || kind != xmlmsg.KindService {
		t.Fatalf("query during saturation: kind %v err %v", kind, xe)
	}

	gate <- struct{}{}
	if xe := <-first; xe != nil {
		t.Fatalf("admitted request: %v", xe)
	}
}

func deadlineWait(t *testing.T, cond func() bool) {
	t.Helper()
	for i := 0; i < 200; i++ {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("condition not reached in 2s")
}

// TestServerCloseFastWithIdlePooledConnections pins the shutdown bug:
// idle keep-alive connections park in blocking reads, and Close used to
// wait out their full ExchangeTimeout deadline.
func TestServerCloseFastWithIdlePooledConnections(t *testing.T) {
	s, err := Serve("127.0.0.1:0", echoHandler)
	if err != nil {
		t.Fatal(err)
	}
	c := NewPooledClient(PoolConfig{Size: 2})
	defer c.Pool.Close()
	if _, _, err := c.Call(s.Addr(), xmlmsg.NewServiceQuery()); err != nil {
		t.Fatal(err)
	}
	// The pooled connection is now idle, parked in the server's read.
	start := time.Now()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d > time.Second {
		t.Fatalf("Close took %v with an idle pooled connection, want < 1s", d)
	}
}

func TestServerCloseUnderLoad(t *testing.T) {
	s, err := Serve("127.0.0.1:0", sleepyEchoHandler)
	if err != nil {
		t.Fatal(err)
	}
	c := NewPooledClient(PoolConfig{Size: 2})
	defer c.Pool.Close()
	c.MaxAttempts = 1

	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Some of these are mid-exchange when Close lands; they must
			// fail with transport errors, not hang.
			_, _, _ = c.Call(s.Addr(), delayedQuery(200))
		}()
	}
	time.Sleep(50 * time.Millisecond)
	start := time.Now()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d > time.Second {
		t.Fatalf("Close took %v under load, want < 1s", d)
	}
	wg.Wait()
}

func TestFailuresMetricSplitsTransportFromPeerErrors(t *testing.T) {
	s, err := Serve("127.0.0.1:0", echoHandler)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	reg := telemetry.NewRegistry()
	c := NewPooledClient(PoolConfig{})
	defer c.Pool.Close()
	c.Metrics = NewClientMetrics(reg)
	c.MaxAttempts = 1
	c.DialTimeout = 200 * time.Millisecond

	// echoHandler errors on a Result message -> ErrorReply: the wire
	// worked, so this is a peer error, not a transport failure.
	if _, _, err := c.Call(s.Addr(), xmlmsg.NewResult("x", 1, "S1", 1, 0, 1, 2, "u@g")); err == nil {
		t.Fatal("expected an error reply")
	}
	if pe, f := reg.Counter("transport_peer_errors_total").Value(), reg.Counter("transport_failures_total").Value(); pe != 1 || f != 0 {
		t.Fatalf("after ErrorReply: peer_errors=%d failures=%d, want 1/0", pe, f)
	}

	// A dead port is a genuine transport failure.
	if _, _, err := c.Call(deadAddr(t), xmlmsg.NewServiceQuery()); err == nil {
		t.Fatal("expected a dial failure")
	}
	if pe, f := reg.Counter("transport_peer_errors_total").Value(), reg.Counter("transport_failures_total").Value(); pe != 1 || f != 1 {
		t.Fatalf("after dead dial: peer_errors=%d failures=%d, want 1/1", pe, f)
	}
}

func TestConcurrentPooledCallsOneClient(t *testing.T) {
	s, err := ServeWith("127.0.0.1:0", echoHandler, ServerConfig{AllowBinary: true})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	c := NewPooledClient(PoolConfig{Size: 2, Binary: true})
	defer c.Pool.Close()
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				var err error
				if (g+i)%2 == 0 {
					_, _, err = c.Call(s.Addr(), xmlmsg.NewServiceQuery())
				} else {
					_, _, err = c.Call(s.Addr(), xmlmsg.NewWireRequest(uint64(g*1000+i+1), "sweep3d", "test", 1e6, "u@g", xmlmsg.ModeDiscover, nil))
				}
				if err != nil {
					errs <- fmt.Errorf("goroutine %d call %d: %w", g, i, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if n := c.Pool.ConnCount(s.Addr()); n > 2 {
		t.Fatalf("pool grew to %d connections, cap is 2", n)
	}
}

// Legacy one-shot clients and pooled clients share one listener: the
// server sniffs the framing per connection.
func TestLegacyAndPooledClientsShareOneServer(t *testing.T) {
	s, err := Serve("127.0.0.1:0", echoHandler)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	legacy := NewClient()
	pooled := NewPooledClient(PoolConfig{})
	defer pooled.Pool.Close()
	for i := 0; i < 3; i++ {
		if _, _, err := legacy.Call(s.Addr(), xmlmsg.NewServiceQuery()); err != nil {
			t.Fatalf("legacy call %d: %v", i, err)
		}
		if _, _, err := pooled.Call(s.Addr(), xmlmsg.NewServiceQuery()); err != nil {
			t.Fatalf("pooled call %d: %v", i, err)
		}
	}
}

// A connection that dies mid-wait delivers the failure to every
// in-flight exchange instead of leaving them to time out.
func TestBrokenConnFailsAllInflightExchanges(t *testing.T) {
	// A raw listener that accepts the hello and then hangs up after the
	// first request frame arrives.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		buf := make([]byte, 4096)
		_, _ = conn.Read(buf) // hello frame
		payload, _ := xmlmsg.Encode(xmlmsg.CodecXML, xmlmsg.NewHello("x"))
		_ = xmlmsg.WriteMuxFrame(conn, xmlmsg.MuxFrame{ID: 0, Codec: xmlmsg.CodecXML, Payload: payload})
		_, _ = conn.Read(buf) // first request frame
		conn.Close()          // die with exchanges in flight
	}()

	mc, xe := dialMux(ln.Addr().String(), time.Second, time.Second, false)
	if xe != nil {
		t.Fatal(xe)
	}
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			start := time.Now()
			_, _, xe := mc.roundTrip(xmlmsg.NewServiceQuery(), 10*time.Second)
			if xe == nil {
				t.Error("exchange on dying connection succeeded")
				return
			}
			if time.Since(start) > 5*time.Second {
				t.Error("exchange waited for its timeout instead of failing with the connection")
			}
		}()
	}
	wg.Wait()
	if !mc.dead.Load() {
		t.Fatal("connection not marked dead")
	}
}
