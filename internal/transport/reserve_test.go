package transport

import (
	"strings"
	"testing"

	"repro/internal/agent"
	"repro/internal/pace"
	"repro/internal/reserve"
	"repro/internal/xmlmsg"
)

// TestReservationOverTCP drives the full reservation protocol across two
// real TCP daemons: flood quote from the head, then a routed hold,
// confirm and release against the child resource.
func TestReservationOverTCP(t *testing.T) {
	head := startNode(t, "rhead", pace.SGIOrigin2000, 8)
	child := startNode(t, "rchild", pace.SGIOrigin2000, 8)
	lib := pace.CaseStudyLibrary()
	if err := child.SetUpper(&RemotePeer{Name: "rhead", Addr: head.Addr(), Lib: lib}); err != nil {
		t.Fatal(err)
	}
	if err := head.AddLower(&RemotePeer{Name: "rchild", Addr: child.Addr(), Lib: lib}); err != nil {
		t.Fatal(err)
	}

	// Flood quote: both resources answer through the wire.
	quote := xmlmsg.Reserve{
		Type: "reserve", Action: xmlmsg.ReserveActionQuote,
		Nodes: 2, Earliest: xmlmsg.FormatSeconds(1e5), Duration: xmlmsg.FormatSeconds(50),
	}
	reply, kind, err := Call(head.Addr(), quote)
	if err != nil {
		t.Fatal(err)
	}
	if kind != xmlmsg.KindReserveAck {
		t.Fatalf("kind %v", kind)
	}
	ack := reply.(*xmlmsg.ReserveAck)
	if len(ack.Quotes) != 2 {
		t.Fatalf("quotes %+v, want both resources", ack.Quotes)
	}
	for _, q := range ack.Quotes {
		if s, _ := xmlmsg.ParseSeconds(q.Start); s != 1e5 {
			t.Fatalf("idle-grid quote %+v, want start 1e5", q)
		}
	}

	// Hold routed head -> child, then confirm, then release.
	hold := xmlmsg.Reserve{
		Type: "reserve", Action: xmlmsg.ReserveActionHold,
		ResvID: 5, Resource: "rchild", Holder: "u@g",
		Mask:  xmlmsg.FormatMask(0b11),
		Start: xmlmsg.FormatSeconds(1e5), End: xmlmsg.FormatSeconds(1e5 + 50),
		TTL: xmlmsg.FormatSeconds(3600),
	}
	if _, _, err := Call(head.Addr(), hold); err != nil {
		t.Fatalf("routed hold: %v", err)
	}
	if b, ok := child.Agent().Local().Book().Get(5); !ok || b.State != reserve.Held {
		t.Fatalf("child booking = %+v ok=%v", b, ok)
	}

	confirm := xmlmsg.Reserve{
		Type: "reserve", Action: xmlmsg.ReserveActionConfirm,
		ResvID: 5, Resource: "rchild", ReqID: 55, Model: "fft",
	}
	creply, _, err := Call(head.Addr(), confirm)
	if err != nil {
		t.Fatalf("routed confirm: %v", err)
	}
	if cack := creply.(*xmlmsg.ReserveAck); cack.TaskID == 0 {
		t.Fatalf("confirm ack %+v, want a task id", cack)
	}

	release := xmlmsg.Reserve{
		Type: "reserve", Action: xmlmsg.ReserveActionRelease,
		ResvID: 5, Resource: "rchild",
	}
	if _, _, err := Call(head.Addr(), release); err != nil {
		t.Fatalf("routed release: %v", err)
	}
	if b, _ := child.Agent().Local().Book().Get(5); b.State != reserve.Released {
		t.Fatalf("state after release = %s", b.State)
	}

	// A ghost target is a routing miss with its identity preserved
	// through the ErrorReply round trip.
	ghost := xmlmsg.Reserve{
		Type: "reserve", Action: xmlmsg.ReserveActionRelease,
		ResvID: 5, Resource: "ghost",
	}
	_, _, err = Call(head.Addr(), ghost)
	if err == nil || !agent.IsNotRoutable(err) {
		t.Fatalf("ghost error = %v, want routing miss", err)
	}

	// A refusal from the target (double release) propagates as the
	// protocol answer, not a routing miss.
	_, _, err = Call(head.Addr(), release)
	if err == nil || agent.IsNotRoutable(err) || !strings.Contains(err.Error(), "release") {
		t.Fatalf("double release error = %v, want release refusal", err)
	}
}
