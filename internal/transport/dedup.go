package transport

import "sync"

// DefaultDedupWindow is how many completed exchanges a server remembers
// for duplicate suppression (see ServerConfig.DedupWindow).
const DefaultDedupWindow = 1024

// dedupCache suppresses re-execution of retried requests. A client that
// times out in the "read" stage retries, but the server may have
// executed (or still be executing) the first delivery — replaying a
// dispatch would schedule the same task twice. The first delivery claims
// its key and executes; duplicates wait on the claim and receive the
// original's reply; once an entry completes it stays cached until
// evicted FIFO, so late retries get the remembered reply instead of a
// second execution.
type dedupCache struct {
	limit int

	mu      sync.Mutex
	entries map[dedupKey]*dedupEntry
	order   []dedupKey // completed keys, oldest first
}

// dedupKey identifies one logical delivery. The grid-wide ReqID alone is
// not enough: the same request legitimately reaches one node twice under
// different dispatch modes (forwarded for discovery, then submitted
// directly by the head's fallback), and those are different operations —
// only a retry of the *same* operation is a duplicate.
type dedupKey struct {
	id   uint64
	mode string
}

// dedupEntry is one claimed request. done is closed when the primary
// delivery finishes and reply is set; duplicates wait on done.
type dedupEntry struct {
	done  chan struct{}
	reply interface{}
}

func newDedupCache(limit int) *dedupCache {
	return &dedupCache{limit: limit, entries: map[dedupKey]*dedupEntry{}}
}

// claim registers a key. The first caller gets primary=true and must
// call finish with the reply; later callers get the primary's entry and
// wait on its done channel.
func (d *dedupCache) claim(k dedupKey) (e *dedupEntry, primary bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if e, ok := d.entries[k]; ok {
		return e, false
	}
	e = &dedupEntry{done: make(chan struct{})}
	d.entries[k] = e
	return e, true
}

// finish publishes the primary's reply to waiting duplicates and
// remembers it for late retries, evicting the oldest completed entries
// beyond the window. In-flight entries are never evicted — they are not
// in order yet.
func (d *dedupCache) finish(k dedupKey, e *dedupEntry, reply interface{}) {
	e.reply = reply
	close(e.done)
	d.mu.Lock()
	defer d.mu.Unlock()
	d.order = append(d.order, k)
	for len(d.order) > d.limit {
		delete(d.entries, d.order[0])
		d.order = d.order[1:]
	}
}
