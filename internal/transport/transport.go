// Package transport runs the agent system over real TCP connections with
// the XML message formats of internal/xmlmsg, the Go analogue of the
// paper's Java/XML deployment (§3.2). Agents are long-lived daemons
// (cmd/gridagent, cmd/gridsched) and the portal (cmd/gridsubmit) is a
// one-shot client. Two framings share every listener: the legacy
// one-exchange-per-connection protocol, and the pooled multiplexed
// protocol (see Pool) where many concurrent exchanges ride one
// keep-alive connection and replies return out of order. A server tells
// them apart by the first byte of the connection.
package transport

import (
	"bufio"
	"fmt"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/xmlmsg"
)

// DialTimeout bounds connection establishment to a peer.
const DialTimeout = 5 * time.Second

// ExchangeTimeout bounds a full request/reply exchange.
const ExchangeTimeout = 30 * time.Second

// Handler processes one decoded message and returns the reply message.
// A returned error is delivered to the caller as an ErrorReply.
type Handler func(msg interface{}, kind xmlmsg.Kind) (interface{}, error)

// ServerConfig tunes a server beyond the zero-value defaults.
type ServerConfig struct {
	// MaxInflight, when positive, is the admission gate: once that many
	// requests are executing (or waiting on duplicates), further requests
	// are answered with a typed Busy reply instead of queueing without
	// bound. Only task requests count — advertisement and result queries
	// always pass, so pull-based failure detection keeps working on a
	// saturated node. Zero disables admission control.
	MaxInflight int

	// AllowBinary permits negotiating the compact binary payload codec on
	// multiplexed connections. Off, every exchange stays XML regardless
	// of what clients offer.
	AllowBinary bool

	// DedupWindow sizes the duplicate-suppression cache: how many
	// completed requests the server remembers by ReqID so a retried
	// delivery returns the original reply instead of re-executing a
	// non-idempotent dispatch. Zero means DefaultDedupWindow; negative
	// disables deduplication.
	DedupWindow int
}

// Server accepts framed agentgrid exchanges on a TCP listener.
type Server struct {
	ln      net.Listener
	handler Handler
	cfg     ServerConfig
	dedup   *dedupCache

	inflight atomic.Int64

	mu     sync.Mutex
	closed bool
	conns  map[net.Conn]struct{}
	wg     sync.WaitGroup
}

// Serve starts a server on addr (use "127.0.0.1:0" for an ephemeral
// port) with the default configuration. The returned server is already
// accepting.
func Serve(addr string, h Handler) (*Server, error) {
	return ServeWith(addr, h, ServerConfig{})
}

// ServeWith starts a server with explicit configuration.
func ServeWith(addr string, h Handler, cfg ServerConfig) (*Server, error) {
	if h == nil {
		return nil, fmt.Errorf("transport: nil handler")
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", addr, err)
	}
	s := &Server{ln: ln, handler: h, cfg: cfg, conns: map[net.Conn]struct{}{}}
	if cfg.DedupWindow >= 0 {
		w := cfg.DedupWindow
		if w == 0 {
			w = DefaultDedupWindow
		}
		s.dedup = newDedupCache(w)
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the bound listen address (host:port).
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Port returns the bound TCP port.
func (s *Server) Port() int { return s.ln.Addr().(*net.TCPAddr).Port }

// Inflight reports how many requests are currently executing — the
// depth the admission gate compares against MaxInflight.
func (s *Server) Inflight() int { return int(s.inflight.Load()) }

// Close stops accepting, force-closes every open connection and waits
// for the per-connection goroutines. Closing the connections is what
// makes shutdown prompt: a pooled peer keeps idle keep-alive
// connections parked in blocking reads, and before connections were
// tracked, Close waited up to a full ExchangeTimeout for those reads to
// time out.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	err := s.ln.Close()
	for _, c := range conns {
		c.Close()
	}
	s.wg.Wait()
	return err
}

func (s *Server) isClosed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

// track registers a live connection for shutdown; false means the
// server is already closing and the connection should be dropped.
func (s *Server) track(conn net.Conn) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false
	}
	s.conns[conn] = struct{}{}
	return true
}

func (s *Server) untrack(conn net.Conn) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.conns, conn)
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.serveConn(conn)
		}()
	}
}

// serveConn sniffs the framing from the first byte — a mux frame starts
// with the marker byte, a legacy frame with a length digit — and serves
// the connection in that protocol until the peer closes or errors.
func (s *Server) serveConn(conn net.Conn) {
	defer conn.Close()
	if !s.track(conn) {
		return
	}
	defer s.untrack(conn)
	r := bufio.NewReader(conn)
	isMux, err := xmlmsg.IsMuxConn(r)
	if err != nil {
		return
	}
	if isMux {
		s.serveMux(conn, r)
	} else {
		s.serveLegacy(conn, r)
	}
}

// serveLegacy handles one-frame-at-a-time exchanges exactly as the
// original server did: per-exchange deadline, one request, one reply.
// Replies to handler errors are ErrorReply messages rather than dropped
// connections, so callers always learn what went wrong.
func (s *Server) serveLegacy(conn net.Conn, r *bufio.Reader) {
	for {
		if s.isClosed() {
			return
		}
		_ = conn.SetDeadline(time.Now().Add(ExchangeTimeout))
		msg, kind, err := xmlmsg.ReadMessage(r)
		if err != nil {
			return // EOF or protocol error: drop the connection
		}
		if err := xmlmsg.WriteMessage(conn, s.dispatch(msg, kind)); err != nil {
			return
		}
	}
}

// serveMux handles a pooled multiplexed connection: a hello exchange
// picks the payload codec, then each request frame is dispatched on its
// own goroutine and replies are written back — tagged with the request's
// exchange ID — in whatever order the handlers finish. Mux connections
// carry no idle read deadline (pooled connections park between bursts);
// shutdown closes them explicitly.
func (s *Server) serveMux(conn net.Conn, r *bufio.Reader) {
	_ = conn.SetReadDeadline(time.Now().Add(ExchangeTimeout))
	hf, err := xmlmsg.ReadMuxFrame(r)
	if err != nil {
		return
	}
	hmsg, _, err := xmlmsg.DecodeWith(hf.Codec, hf.Payload)
	if err != nil {
		return
	}
	hello, ok := hmsg.(*xmlmsg.Hello)
	if !ok {
		return // first mux frame must negotiate the codec
	}
	codec := byte(xmlmsg.CodecXML)
	if s.cfg.AllowBinary && strings.IndexByte(hello.Codecs, xmlmsg.CodecBinary) >= 0 {
		codec = xmlmsg.CodecBinary
	}
	_ = conn.SetReadDeadline(time.Time{})

	var wmu sync.Mutex
	write := func(id uint64, reply interface{}, c byte) error {
		payload, merr := xmlmsg.Encode(c, reply)
		if merr != nil {
			payload, merr = xmlmsg.Encode(c, xmlmsg.NewErrorReply(merr))
			if merr != nil {
				return merr
			}
		}
		wmu.Lock()
		defer wmu.Unlock()
		_ = conn.SetWriteDeadline(time.Now().Add(ExchangeTimeout))
		return xmlmsg.WriteMuxFrame(conn, xmlmsg.MuxFrame{ID: id, Codec: c, Payload: payload})
	}
	// The hello reply always travels as XML: the chosen codec only
	// applies from the next frame on.
	if write(hf.ID, xmlmsg.NewHello(string([]byte{codec})), xmlmsg.CodecXML) != nil {
		return
	}

	for {
		if s.isClosed() {
			return
		}
		f, err := xmlmsg.ReadMuxFrame(r)
		if err != nil {
			return
		}
		msg, kind, derr := xmlmsg.DecodeWith(f.Codec, f.Payload)
		if derr != nil {
			if write(f.ID, xmlmsg.NewErrorReply(derr), codec) != nil {
				return
			}
			continue
		}
		s.wg.Add(1)
		go func(id uint64, msg interface{}, kind xmlmsg.Kind) {
			defer s.wg.Done()
			_ = write(id, s.dispatch(msg, kind), codec)
		}(f.ID, msg, kind)
	}
}

// dispatch runs one request through admission control and duplicate
// suppression, then the handler, and always produces a reply message.
func (s *Server) dispatch(msg interface{}, kind xmlmsg.Kind) interface{} {
	if kind == xmlmsg.KindRequest {
		if s.cfg.MaxInflight > 0 {
			depth := int(s.inflight.Add(1))
			if depth > s.cfg.MaxInflight {
				s.inflight.Add(-1)
				return xmlmsg.NewBusy(depth, s.cfg.MaxInflight)
			}
			defer s.inflight.Add(-1)
		}
		req, isReq := msg.(*xmlmsg.Request)
		if s.dedup != nil && isReq && req.ReqID != 0 {
			mode := req.Mode
			if mode == "" {
				mode = xmlmsg.ModeDiscover // empty and explicit discover are one operation
			}
			key := dedupKey{id: req.ReqID, mode: mode}
			e, primary := s.dedup.claim(key)
			if !primary {
				// Duplicate delivery: the original executed (or still
				// is). Hand back its reply rather than re-executing.
				t := time.NewTimer(ExchangeTimeout)
				defer t.Stop()
				select {
				case <-e.done:
					return e.reply
				case <-t.C:
					return xmlmsg.NewErrorReply(fmt.Errorf("transport: duplicate of request %d still executing", req.ReqID))
				}
			}
			reply := s.run(msg, kind)
			s.dedup.finish(key, e, reply)
			return reply
		}
	}
	return s.run(msg, kind)
}

// run invokes the handler and normalises its outcome to a wire reply.
func (s *Server) run(msg interface{}, kind xmlmsg.Kind) interface{} {
	reply, err := s.handler(msg, kind)
	if err != nil {
		return xmlmsg.NewErrorReply(err)
	}
	if reply == nil {
		return xmlmsg.NewErrorReply(fmt.Errorf("no reply for %s", kind))
	}
	return reply
}

// Call performs one request/reply exchange with a peer using the
// default client (pooled connections, bounded retries with backoff; see
// Client). An ErrorReply from the peer is surfaced as a *ExchangeError
// with Op "reply" and is never retried.
func Call(addr string, msg interface{}) (interface{}, xmlmsg.Kind, error) {
	return defaultClient.Call(addr, msg)
}
