// Package transport runs the agent system over real TCP connections with
// the XML message formats of internal/xmlmsg, the Go analogue of the
// paper's Java/XML deployment (§3.2). Each exchange is one framed request
// followed by one framed reply on a fresh connection; agents are
// long-lived daemons (cmd/gridagent, cmd/gridsched) and the portal
// (cmd/gridsubmit) is a one-shot client.
package transport

import (
	"bufio"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/xmlmsg"
)

// DialTimeout bounds connection establishment to a peer.
const DialTimeout = 5 * time.Second

// ExchangeTimeout bounds a full request/reply exchange.
const ExchangeTimeout = 30 * time.Second

// Handler processes one decoded message and returns the reply message.
// A returned error is delivered to the caller as an ErrorReply.
type Handler func(msg interface{}, kind xmlmsg.Kind) (interface{}, error)

// Server accepts framed agentgrid exchanges on a TCP listener.
type Server struct {
	ln      net.Listener
	handler Handler

	mu     sync.Mutex
	closed bool
	wg     sync.WaitGroup
}

// Serve starts a server on addr (use "127.0.0.1:0" for an ephemeral
// port). The returned server is already accepting.
func Serve(addr string, h Handler) (*Server, error) {
	if h == nil {
		return nil, fmt.Errorf("transport: nil handler")
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", addr, err)
	}
	s := &Server{ln: ln, handler: h}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the bound listen address (host:port).
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Port returns the bound TCP port.
func (s *Server) Port() int { return s.ln.Addr().(*net.TCPAddr).Port }

// Close stops accepting and waits for in-flight exchanges.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	err := s.ln.Close()
	s.wg.Wait()
	return err
}

func (s *Server) isClosed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.serveConn(conn)
		}()
	}
}

// serveConn handles exchanges until the peer closes or errors. Replies to
// handler errors are ErrorReply messages rather than dropped connections,
// so callers always learn what went wrong.
func (s *Server) serveConn(conn net.Conn) {
	defer conn.Close()
	r := bufio.NewReader(conn)
	for {
		if s.isClosed() {
			return
		}
		_ = conn.SetDeadline(time.Now().Add(ExchangeTimeout))
		msg, kind, err := xmlmsg.ReadMessage(r)
		if err != nil {
			return // EOF or protocol error: drop the connection
		}
		reply, err := s.handler(msg, kind)
		if err != nil {
			reply = xmlmsg.NewErrorReply(err)
		}
		if reply == nil {
			reply = xmlmsg.NewErrorReply(fmt.Errorf("no reply for %s", kind))
		}
		if err := xmlmsg.WriteMessage(conn, reply); err != nil {
			return
		}
	}
}

// Call performs one request/reply exchange with a peer using the
// default client (bounded retries with backoff; see Client). An
// ErrorReply from the peer is surfaced as a *ExchangeError with Op
// "reply" and is never retried.
func Call(addr string, msg interface{}) (interface{}, xmlmsg.Kind, error) {
	return defaultClient.Call(addr, msg)
}
