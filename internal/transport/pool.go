package transport

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/telemetry"
	"repro/internal/xmlmsg"
)

// Pool defaults.
const (
	// DefaultPoolSize is how many keep-alive connections a pool maintains
	// per peer address.
	DefaultPoolSize = 2
	// DefaultWindow is the per-peer in-flight exchange bound: excess
	// callers block (or shed, see PoolConfig.Shed) until a slot frees.
	DefaultWindow = 64
)

// PoolConfig tunes a connection pool.
type PoolConfig struct {
	// Size is the number of keep-alive connections kept per peer; 0 means
	// DefaultPoolSize.
	Size int
	// Window bounds in-flight exchanges per peer (the send window of a
	// Tecellate-style windowed sender); 0 means DefaultWindow.
	Window int
	// Shed makes over-window Calls fail immediately with a typed
	// ExchangeError (Op "shed") instead of blocking for a slot — the
	// fail-fast mode for callers that would rather drop than queue.
	Shed bool
	// Binary offers the compact binary codec when a connection is
	// established; the server picks, and XML remains the default.
	Binary bool
	// Metrics instruments the pool; the zero value observes nothing.
	Metrics PoolMetrics
}

// PoolMetrics is the set of instruments a Pool updates: live connection
// count, window occupancy, exchanges shed at the window, and connections
// retired after errors or timeouts.
type PoolMetrics struct {
	Conns    *telemetry.Gauge   // live pooled connections
	Inflight *telemetry.Gauge   // window occupancy (in-flight exchanges)
	Shed     *telemetry.Counter // Calls dropped at a full window (Shed mode)
	Retired  *telemetry.Counter // connections retired (errors, timeouts)
}

// NewPoolMetrics builds pool instruments on reg; kv are optional label
// pairs. Zero (disabled) metrics on a nil registry.
func NewPoolMetrics(reg *telemetry.Registry, kv ...string) PoolMetrics {
	if reg == nil {
		return PoolMetrics{}
	}
	l := func(name string) string { return telemetry.Label(name, kv...) }
	return PoolMetrics{
		Conns:    reg.Gauge(l("transport_pool_conns")),
		Inflight: reg.Gauge(l("transport_window_inflight")),
		Shed:     reg.Counter(l("transport_shed_total")),
		Retired:  reg.Counter(l("transport_pool_retired_total")),
	}
}

// Pool keeps per-peer sets of multiplexed keep-alive connections and
// enforces the per-peer in-flight window. It replaces the legacy
// dial-per-exchange behaviour on the hot path: an exchange reuses a live
// connection, tags its frame with an exchange ID, and waits only for its
// own reply. Broken connections fail all their in-flight exchanges, are
// pruned on the next use, and redialled on demand — so the retry loop in
// Client sees exactly the dial/write/read failure stages it always has.
type Pool struct {
	cfg PoolConfig

	mu    sync.Mutex
	peers map[string]*peerConns
}

// peerConns is the pool's state for one address.
type peerConns struct {
	mu      sync.Mutex
	conns   []*muxConn
	dialing int
	rr      int           // round-robin cursor
	sem     chan struct{} // window tokens
}

// NewPool builds a pool with the given configuration.
func NewPool(cfg PoolConfig) *Pool {
	if cfg.Size <= 0 {
		cfg.Size = DefaultPoolSize
	}
	if cfg.Window <= 0 {
		cfg.Window = DefaultWindow
	}
	return &Pool{cfg: cfg, peers: map[string]*peerConns{}}
}

func (p *Pool) peer(addr string) *peerConns {
	p.mu.Lock()
	defer p.mu.Unlock()
	pc, ok := p.peers[addr]
	if !ok {
		pc = &peerConns{sem: make(chan struct{}, p.cfg.Window)}
		p.peers[addr] = pc
	}
	return pc
}

// Exchange performs one request/reply exchange with addr through the
// pool: acquire a window slot, pick (or dial) a connection, round-trip.
// Errors come back as typed *ExchangeError stages so the caller's retry
// policy treats pooled and legacy exchanges identically.
func (p *Pool) Exchange(addr string, msg interface{}, dialTO, exchTO time.Duration) (interface{}, xmlmsg.Kind, *ExchangeError) {
	pc := p.peer(addr)

	// Window backpressure: shed immediately or block for a slot, bounded
	// by the exchange timeout so a saturated peer cannot wedge callers
	// forever.
	if p.cfg.Shed {
		select {
		case pc.sem <- struct{}{}:
		default:
			p.cfg.Metrics.Shed.Inc()
			return nil, "", &ExchangeError{Addr: addr, Op: "shed",
				Err: fmt.Errorf("transport: window to %s full (%d in flight)", addr, cap(pc.sem))}
		}
	} else {
		t := time.NewTimer(exchTO)
		select {
		case pc.sem <- struct{}{}:
			t.Stop()
		case <-t.C:
			return nil, "", &ExchangeError{Addr: addr, Op: "window",
				Err: fmt.Errorf("transport: window to %s still full after %v (%d in flight)", addr, exchTO, cap(pc.sem))}
		}
	}
	p.cfg.Metrics.Inflight.Add(1)
	defer func() {
		<-pc.sem
		p.cfg.Metrics.Inflight.Add(-1)
	}()

	mc, ephemeral, xe := p.pick(pc, addr, dialTO, exchTO)
	if xe != nil {
		return nil, "", xe
	}
	if ephemeral {
		defer mc.retire()
	}
	return mc.roundTrip(msg, exchTO)
}

// pick prunes dead connections, grows the peer's set towards the
// configured size, and returns a live connection round-robin. When a
// growth dial fails but a healthy connection exists, the healthy one is
// used — a flapping peer degrades throughput, not availability. A cold
// start under concurrency can dial more connections than the pool
// keeps; the surplus come back marked ephemeral (serve one exchange,
// then retire) so the pool never exceeds its size.
func (p *Pool) pick(pc *peerConns, addr string, dialTO, exchTO time.Duration) (mc *muxConn, ephemeral bool, xe *ExchangeError) {
	pc.mu.Lock()
	live := pc.conns[:0]
	for _, c := range pc.conns {
		if c.dead.Load() {
			p.cfg.Metrics.Retired.Inc()
			p.cfg.Metrics.Conns.Add(-1)
		} else {
			live = append(live, c)
		}
	}
	pc.conns = live
	if len(pc.conns)+pc.dialing >= p.cfg.Size && len(pc.conns) > 0 {
		pc.rr++
		mc = pc.conns[pc.rr%len(pc.conns)]
		pc.mu.Unlock()
		return mc, false, nil
	}
	pc.dialing++
	pc.mu.Unlock()

	mc, xe = dialMux(addr, dialTO, exchTO, p.cfg.Binary)

	pc.mu.Lock()
	pc.dialing--
	if xe == nil {
		if len(pc.conns) >= p.cfg.Size {
			pc.mu.Unlock()
			return mc, true, nil
		}
		pc.conns = append(pc.conns, mc)
		p.cfg.Metrics.Conns.Add(1)
		pc.mu.Unlock()
		return mc, false, nil
	}
	// Dial failed: fall back to any connection that is still healthy.
	for i := 0; i < len(pc.conns); i++ {
		pc.rr++
		if c := pc.conns[pc.rr%len(pc.conns)]; !c.dead.Load() {
			pc.mu.Unlock()
			return c, false, nil
		}
	}
	pc.mu.Unlock()
	return nil, false, xe
}

// ConnCount reports the live pooled connections to addr — test and
// telemetry introspection.
func (p *Pool) ConnCount(addr string) int {
	p.mu.Lock()
	pc, ok := p.peers[addr]
	p.mu.Unlock()
	if !ok {
		return 0
	}
	pc.mu.Lock()
	defer pc.mu.Unlock()
	n := 0
	for _, c := range pc.conns {
		if !c.dead.Load() {
			n++
		}
	}
	return n
}

// Close retires every pooled connection; in-flight exchanges fail. A
// closed pool can keep being used — the next exchange just redials.
func (p *Pool) Close() {
	p.mu.Lock()
	peers := make([]*peerConns, 0, len(p.peers))
	for _, pc := range p.peers {
		peers = append(peers, pc)
	}
	p.mu.Unlock()
	for _, pc := range peers {
		pc.mu.Lock()
		conns := pc.conns
		pc.conns = nil
		pc.mu.Unlock()
		for _, c := range conns {
			c.retire()
			p.cfg.Metrics.Conns.Add(-1)
		}
	}
}
