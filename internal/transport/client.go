package transport

import (
	"bufio"
	"fmt"
	"net"
	"time"

	"repro/internal/telemetry"
	"repro/internal/xmlmsg"
)

// Default retry policy for client exchanges.
const (
	// DefaultMaxAttempts is how many times an exchange is tried before
	// the client gives up.
	DefaultMaxAttempts = 3
	// DefaultBackoffBase is the delay before the first retry; it doubles
	// on every further retry.
	DefaultBackoffBase = 50 * time.Millisecond
	// DefaultBackoffMax caps the exponential backoff.
	DefaultBackoffMax = 2 * time.Second
)

// ExchangeError is the typed failure of a client exchange: which peer,
// how many attempts were spent, and at which stage of the exchange the
// last attempt died.
//
// Op taxonomy: "dial", "write" and "read" are transport-stage failures
// and are retried. "reply" is an application-level ErrorReply — the
// exchange itself succeeded, so it is never retried. "busy" is the
// server's admission gate shedding load; it is retried with backoff
// (the peer is alive, just saturated). "shed" and "window" are local
// backpressure at the client's own send window and fail fast — retrying
// immediately would only pile onto the same full window.
type ExchangeError struct {
	Addr     string // peer address dialled
	Attempts int    // attempts made before giving up
	Op       string // "dial", "write", "read", "reply", "busy", "shed" or "window"
	Err      error  // the last underlying error
}

func (e *ExchangeError) Error() string {
	return fmt.Sprintf("transport: %s %s (attempt %d): %v", e.Op, e.Addr, e.Attempts, e.Err)
}

// Unwrap exposes the underlying error to errors.Is/As.
func (e *ExchangeError) Unwrap() error { return e.Err }

// Client performs framed request/reply exchanges with bounded retries
// and exponential backoff. The zero value is not usable; NewClient fills
// in the defaults. Timeouts and retry policy are per-client so daemons
// on flaky links can be tuned without recompiling (the package-level
// Call uses the defaults, preserving the original behaviour).
type Client struct {
	DialTimeout     time.Duration // per-attempt dial bound
	ExchangeTimeout time.Duration // per-attempt request/reply bound
	MaxAttempts     int           // total tries per exchange
	BackoffBase     time.Duration // first retry delay, doubling each retry
	BackoffMax      time.Duration // backoff cap
	JitterSeed      uint64        // seeds deterministic backoff jitter

	// Jitter, when set, replaces the hash-derived jitter with draws from
	// a shared RNG stream (mutex-guarded: node goroutines retry
	// concurrently). Opt-in: nil keeps the JitterSeed/address/attempt
	// schedule byte-for-byte, so existing deployments and tests see the
	// exact delays they always did.
	Jitter *JitterSource

	// Sleep is called between attempts; tests inject a recorder so retry
	// schedules are asserted without wall-clock sleeps. Nil means
	// time.Sleep.
	Sleep func(time.Duration)

	// Metrics instruments this client's exchanges; the zero value (all
	// nil, the default) adds one branch per call and nothing else.
	Metrics ClientMetrics

	// Pool, when set, routes exchanges through pooled multiplexed
	// connections instead of dialling per attempt. Retry policy, backoff
	// and metrics are unchanged — the pool only replaces the transport
	// underneath an attempt. Nil keeps the legacy dial-per-exchange path.
	Pool *Pool
}

// ClientMetrics is the set of instruments a Client updates per Call:
// exchange count and end-to-end latency (including retries and
// backoff), retry attempts, and exchanges that failed outright. The
// exchange counter is sharded because node pull/tick/serve goroutines
// call concurrently.
//
// Failures counts transport-level failures only (dial/write/read
// exhausted, windows, busy peers). An application-level ErrorReply means
// the transport worked — the peer answered — so it counts under
// PeerErrors instead; lumping the two together made a healthy wire with
// an unhappy application look like a broken wire.
type ClientMetrics struct {
	Exchanges  *telemetry.ShardedCounter // Calls made
	Retries    *telemetry.Counter        // extra attempts after the first
	Failures   *telemetry.Counter        // Calls lost to transport failures
	PeerErrors *telemetry.Counter        // Calls answered with an ErrorReply
	Busy       *telemetry.Counter        // busy (admission-shed) replies seen
	Latency    *telemetry.Histogram      // wall-clock seconds per Call
}

// NewClientMetrics builds client instruments on reg; kv are optional
// label pairs (e.g. "resource", "S1" for the node that owns the
// client). The zero (disabled) ClientMetrics on a nil registry.
func NewClientMetrics(reg *telemetry.Registry, kv ...string) ClientMetrics {
	if reg == nil {
		return ClientMetrics{}
	}
	l := func(name string) string { return telemetry.Label(name, kv...) }
	return ClientMetrics{
		Exchanges:  reg.ShardedCounter(l("transport_exchanges_total")),
		Retries:    reg.Counter(l("transport_retries_total")),
		Failures:   reg.Counter(l("transport_failures_total")),
		PeerErrors: reg.Counter(l("transport_peer_errors_total")),
		Busy:       reg.Counter(l("transport_busy_total")),
		Latency:    reg.Histogram(l("transport_exchange_latency_s")),
	}
}

// NewClient returns a client with the package defaults, using the
// legacy dial-per-exchange transport. Production paths should prefer
// NewPooledClient; this constructor keeps the one-connection-per-frame
// behaviour for tools and tests that depend on it.
func NewClient() *Client {
	return &Client{
		DialTimeout:     DialTimeout,
		ExchangeTimeout: ExchangeTimeout,
		MaxAttempts:     DefaultMaxAttempts,
		BackoffBase:     DefaultBackoffBase,
		BackoffMax:      DefaultBackoffMax,
	}
}

// NewPooledClient returns a client with the package defaults whose
// exchanges ride pooled, multiplexed keep-alive connections.
func NewPooledClient(cfg PoolConfig) *Client {
	c := NewClient()
	c.Pool = NewPool(cfg)
	return c
}

// defaultClient backs the package-level Call. It pools: package-level
// callers (nodes talking to farm peers) are exactly the hot paths that
// pay for a dial per exchange.
var defaultClient = NewPooledClient(PoolConfig{})

// Backoff returns the delay inserted after the given failed attempt
// (1-based): exponential doubling from BackoffBase capped at BackoffMax,
// plus up to 50% deterministic jitter derived from the jitter seed, the
// peer address and the attempt number — so concurrent retries to one
// dead peer spread out, yet any schedule is exactly reproducible.
func (c *Client) Backoff(addr string, attempt int) time.Duration {
	base := c.BackoffBase
	if base <= 0 {
		base = DefaultBackoffBase
	}
	max := c.BackoffMax
	if max <= 0 {
		max = DefaultBackoffMax
	}
	d := base
	for i := 1; i < attempt && d < max; i++ {
		d *= 2
	}
	if d > max {
		d = max
	}
	var jitter uint64
	if c.Jitter != nil {
		jitter = c.Jitter.draw()
	} else {
		jitter = splitmix64(c.JitterSeed ^ hashAddr(addr) ^ uint64(attempt))
	}
	return d + time.Duration(jitter%uint64(d/2+1))
}

// Call performs one request/reply exchange, retrying transport-level
// failures (dial, write, read) up to MaxAttempts with backoff. An
// ErrorReply from the peer is an application-level failure: the exchange
// itself succeeded, so it is returned immediately and never retried.
func (c *Client) Call(addr string, msg interface{}) (interface{}, xmlmsg.Kind, error) {
	attempts := c.MaxAttempts
	if attempts <= 0 {
		attempts = DefaultMaxAttempts
	}
	sleep := c.Sleep
	if sleep == nil {
		sleep = time.Sleep
	}
	c.Metrics.Exchanges.Inc()
	var start time.Time
	if c.Metrics.Latency != nil {
		start = time.Now()
	}
	reply, kind, err := c.call(addr, msg, attempts, sleep)
	if c.Metrics.Latency != nil {
		c.Metrics.Latency.Observe(time.Since(start).Seconds())
	}
	if err != nil {
		// An ErrorReply reached us over a working transport: that is a
		// peer error, not a transport failure.
		if xe, ok := err.(*ExchangeError); ok && xe.Op == "reply" {
			c.Metrics.PeerErrors.Inc()
		} else {
			c.Metrics.Failures.Inc()
		}
	}
	return reply, kind, err
}

// call is the retry loop behind Call. Transport stages (dial, write,
// read) and busy peers are retried; application replies and local
// window backpressure return immediately.
func (c *Client) call(addr string, msg interface{}, attempts int, sleep func(time.Duration)) (interface{}, xmlmsg.Kind, error) {
	var last *ExchangeError
	for attempt := 1; attempt <= attempts; attempt++ {
		if attempt > 1 {
			c.Metrics.Retries.Inc()
			sleep(c.Backoff(addr, attempt-1))
		}
		reply, kind, xerr := c.once(addr, msg)
		if xerr == nil {
			return reply, kind, nil
		}
		xerr.Attempts = attempt
		switch xerr.Op {
		case "reply":
			return nil, kind, xerr
		case "busy":
			c.Metrics.Busy.Inc()
		case "shed", "window":
			return nil, "", xerr
		}
		last = xerr
	}
	return nil, "", last
}

// once runs a single exchange attempt; a non-nil *ExchangeError has its
// Op set but Attempts left for the caller. With a Pool configured the
// attempt rides a pooled multiplexed connection; otherwise it dials,
// exchanges one legacy frame and hangs up, as the original client did.
func (c *Client) once(addr string, msg interface{}) (interface{}, xmlmsg.Kind, *ExchangeError) {
	dialTO := c.DialTimeout
	if dialTO <= 0 {
		dialTO = DialTimeout
	}
	exchTO := c.ExchangeTimeout
	if exchTO <= 0 {
		exchTO = ExchangeTimeout
	}
	if c.Pool != nil {
		return c.Pool.Exchange(addr, msg, dialTO, exchTO)
	}
	conn, err := net.DialTimeout("tcp", addr, dialTO)
	if err != nil {
		return nil, "", &ExchangeError{Addr: addr, Op: "dial", Err: err}
	}
	defer conn.Close()
	_ = conn.SetDeadline(time.Now().Add(exchTO))
	if err := xmlmsg.WriteMessage(conn, msg); err != nil {
		return nil, "", &ExchangeError{Addr: addr, Op: "write", Err: err}
	}
	reply, kind, err := xmlmsg.ReadMessage(bufio.NewReader(conn))
	if err != nil {
		return nil, "", &ExchangeError{Addr: addr, Op: "read", Err: err}
	}
	if b, ok := reply.(*xmlmsg.Busy); ok {
		return nil, kind, &ExchangeError{Addr: addr, Op: "busy",
			Err: fmt.Errorf("transport: peer shedding load (%d in flight, limit %d)", b.Depth, b.Limit)}
	}
	if er, ok := reply.(*xmlmsg.ErrorReply); ok {
		return nil, kind, &ExchangeError{Addr: addr, Op: "reply", Err: er.Err()}
	}
	return reply, kind, nil
}

// splitmix64 is the standard 64-bit mixing function, here driving
// backoff jitter.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// hashAddr hashes a peer address (FNV-1a) into the jitter stream.
func hashAddr(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}
