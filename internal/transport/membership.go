package transport

import (
	"fmt"

	"repro/internal/xmlmsg"
)

// Wire-level dynamic membership: a child node registers with (or
// gracefully deregisters from) a live upper agent, the networked
// counterpart of membership.Registry.Join/Leave. The upper treats a
// join as a new lower neighbour — its next pull tick starts exchanging
// advertisements — and a leave as an immediate forget: the departing
// child's advertisement and breaker history are dropped on the spot
// rather than ageing out through the advert TTL, so no new work routes
// to an agent that said goodbye.

// JoinUpper registers this node under the upper agent at addr and wires
// the link on the child side too. Call after Start — the join message
// advertises the node's own listen port so the upper can call back.
func (n *Node) JoinUpper(upperName, addr string) error {
	if n.srv == nil {
		return fmt.Errorf("transport: join before Start: the upper could not call back")
	}
	msg := xmlmsg.NewJoin(n.agent.Name(), "127.0.0.1", n.srv.Port())
	reply, _, err := defaultClient.Call(addr, msg)
	if err != nil {
		return fmt.Errorf("transport: join %s: %w", addr, err)
	}
	ack, ok := reply.(*xmlmsg.MembershipAck)
	if !ok {
		return fmt.Errorf("transport: %s replied %T to a join", addr, reply)
	}
	name := upperName
	if ack.Upper != "" {
		name = ack.Upper
	}
	return n.SetUpper(&RemotePeer{Name: name, Addr: addr, Lib: n.lib})
}

// LeaveUpper deregisters from the current upper and severs the link on
// the child side. The deregistration travels best-effort: a dead upper
// must not trap a child that wants to shut down cleanly, so the local
// unlink happens regardless and the wire error is reported after.
func (n *Node) LeaveUpper() error {
	n.mu.Lock()
	up := n.agent.Upper()
	n.mu.Unlock()
	if up == nil {
		return nil
	}
	var wireErr error
	if rp, ok := up.(*RemotePeer); ok {
		_, _, err := rp.client().Call(rp.Addr, xmlmsg.NewLeave(n.agent.Name()))
		if err != nil {
			wireErr = fmt.Errorf("transport: leave %s: %w", rp.Addr, err)
		}
	}
	n.mu.Lock()
	n.agent.ClearUpper()
	n.mu.Unlock()
	return wireErr
}

// handleMembership answers a child's join or leave under the node lock.
func (n *Node) handleMembership(m *xmlmsg.Membership) (interface{}, error) {
	if m.Agent == "" {
		return nil, fmt.Errorf("membership %s carries no agent name", m.Op)
	}
	switch m.Op {
	case xmlmsg.MembershipOpJoin:
		if m.Address == "" || m.Port <= 0 {
			return nil, fmt.Errorf("join of %s carries no callback address", m.Agent)
		}
		peer := &RemotePeer{
			Name: m.Agent,
			Addr: fmt.Sprintf("%s:%d", m.Address, m.Port),
			Lib:  n.lib,
		}
		n.mu.Lock()
		// A re-join (daemon restart) replaces the stale link; RemoveLower
		// also drops the old advertisement and breaker history.
		n.agent.RemoveLower(m.Agent)
		err := n.agent.AddLower(peer)
		n.mu.Unlock()
		if err != nil {
			return nil, err
		}
		return xmlmsg.NewMembershipAck(m.Op, n.agent.Name()), nil
	case xmlmsg.MembershipOpLeave:
		n.mu.Lock()
		ok := n.agent.RemoveLower(m.Agent)
		n.mu.Unlock()
		if !ok {
			return nil, fmt.Errorf("leave of %s: not a lower neighbour", m.Agent)
		}
		return xmlmsg.NewMembershipAck(m.Op, n.agent.Name()), nil
	}
	return nil, fmt.Errorf("unknown membership op %q", m.Op)
}
