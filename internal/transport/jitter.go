package transport

import (
	"sync"

	"repro/internal/sim"
)

// JitterSource adapts a sim.RNG stream into backoff jitter for a
// Client. The default jitter hashes (seed, address, attempt), which is
// reproducible but means the same retry always gets the same delay; a
// JitterSource instead consumes a sequential stream, so repeated
// retries to one peer spread differently each time while the whole
// schedule still replays exactly from the seed.
//
// The mutex is load-bearing: one client is shared by a node's pull,
// tick and serve goroutines, which retry concurrently, and sim.RNG is
// not safe for concurrent use. Give the source its own Split() of the
// simulation RNG — drawing from a stream the simulation also draws
// from would let wall-clock retry timing perturb virtual-time results.
type JitterSource struct {
	mu  sync.Mutex
	rng *sim.RNG
}

// NewJitterSource wraps rng; nil returns a nil source (hash jitter).
func NewJitterSource(rng *sim.RNG) *JitterSource {
	if rng == nil {
		return nil
	}
	return &JitterSource{rng: rng}
}

// draw returns the next raw jitter word.
func (j *JitterSource) draw() uint64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.rng.Uint64()
}
