package transport

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/agent"
	"repro/internal/scheduler"
	"repro/internal/xmlmsg"
)

// reserveActionWire maps agent reservation actions onto the wire.
func reserveActionWire(a agent.ReserveAction) (string, error) {
	switch a {
	case agent.ReserveQuoteOp:
		return xmlmsg.ReserveActionQuote, nil
	case agent.ReserveHoldOp:
		return xmlmsg.ReserveActionHold, nil
	case agent.ReserveConfirmOp:
		return xmlmsg.ReserveActionConfirm, nil
	case agent.ReserveReleaseOp:
		return xmlmsg.ReserveActionRelease, nil
	}
	return "", fmt.Errorf("transport: unknown reserve action %d", int(a))
}

// reserveActionFromWire inverts reserveActionWire.
func reserveActionFromWire(s string) (agent.ReserveAction, error) {
	switch s {
	case xmlmsg.ReserveActionQuote:
		return agent.ReserveQuoteOp, nil
	case xmlmsg.ReserveActionHold:
		return agent.ReserveHoldOp, nil
	case xmlmsg.ReserveActionConfirm:
		return agent.ReserveConfirmOp, nil
	case xmlmsg.ReserveActionRelease:
		return agent.ReserveReleaseOp, nil
	}
	return 0, fmt.Errorf("transport: unknown reserve action %q", s)
}

// HandleReserve implements agent.ReservePeer: carry the op to the remote
// neighbour as a reserve message. Routing misses keep their identity
// across the wire because agent.IsNotRoutable matches the error text,
// which survives the ErrorReply round trip.
func (p *RemotePeer) HandleReserve(op agent.ReserveOp, now float64) (agent.ReserveReply, error) {
	action, err := reserveActionWire(op.Action)
	if err != nil {
		return agent.ReserveReply{}, err
	}
	wire := xmlmsg.Reserve{
		Type:     "reserve",
		Action:   action,
		ResvID:   op.ResvID,
		Resource: op.Resource,
		Visited:  op.Visited,
	}
	switch op.Action {
	case agent.ReserveQuoteOp:
		wire.Nodes = op.Nodes
		wire.Earliest = xmlmsg.FormatSeconds(op.Earliest)
		wire.Duration = xmlmsg.FormatSeconds(op.Duration)
	case agent.ReserveHoldOp:
		wire.Holder = op.Holder
		wire.Mask = xmlmsg.FormatMask(op.Mask)
		wire.Start = xmlmsg.FormatSeconds(op.Start)
		wire.End = xmlmsg.FormatSeconds(op.End)
		wire.TTL = xmlmsg.FormatSeconds(op.TTL)
	case agent.ReserveConfirmOp:
		wire.ReqID = op.ReqID
		if op.App != nil {
			wire.Model = op.App.Name
		}
	}
	reply, _, err := p.client().Call(p.Addr, wire)
	if err != nil {
		return agent.ReserveReply{}, err
	}
	ack, ok := reply.(*xmlmsg.ReserveAck)
	if !ok {
		return agent.ReserveReply{}, fmt.Errorf("transport: %s replied %T to a reserve %s", p.Name, reply, action)
	}
	out := agent.ReserveReply{TaskID: ack.TaskID}
	for _, q := range ack.Quotes {
		mask, err := xmlmsg.ParseMask(q.Mask)
		if err != nil {
			return agent.ReserveReply{}, err
		}
		start, err := xmlmsg.ParseSeconds(q.Start)
		if err != nil {
			return agent.ReserveReply{}, err
		}
		end, err := xmlmsg.ParseSeconds(q.End)
		if err != nil {
			return agent.ReserveReply{}, err
		}
		out.Quotes = append(out.Quotes, scheduler.ReserveQuote{
			Resource: q.Resource, Mask: mask, Start: start, End: end,
		})
	}
	return out, nil
}

// reserveOpFromWire parses a reserve message into an agent op; the app
// model for a confirm resolves against the node's library.
func (n *Node) reserveOpFromWire(m *xmlmsg.Reserve) (agent.ReserveOp, error) {
	action, err := reserveActionFromWire(m.Action)
	if err != nil {
		return agent.ReserveOp{}, err
	}
	op := agent.ReserveOp{
		Action:   action,
		ResvID:   m.ResvID,
		Holder:   m.Holder,
		Resource: m.Resource,
		Nodes:    m.Nodes,
		ReqID:    m.ReqID,
		Visited:  m.Visited,
	}
	parse := func(dst *float64, s, what string) {
		if err != nil || s == "" {
			return
		}
		var v float64
		if v, err = xmlmsg.ParseSeconds(s); err == nil {
			*dst = v
		} else {
			err = fmt.Errorf("reserve %s: %w", what, err)
		}
	}
	parse(&op.Earliest, m.Earliest, "earliest")
	parse(&op.Duration, m.Duration, "duration")
	parse(&op.Start, m.Start, "start")
	parse(&op.End, m.End, "end")
	parse(&op.TTL, m.TTL, "ttl")
	if err != nil {
		return agent.ReserveOp{}, err
	}
	if op.Mask, err = xmlmsg.ParseMask(m.Mask); err != nil {
		return agent.ReserveOp{}, err
	}
	if action == agent.ReserveConfirmOp {
		app, ok := n.lib.Lookup(m.Model)
		if !ok {
			return agent.ReserveOp{}, fmt.Errorf("unknown application model %q in reserve confirm", m.Model)
		}
		op.App = app
	}
	return op, nil
}

// reserveAckToWire renders a reply.
func reserveAckToWire(r agent.ReserveReply) xmlmsg.ReserveAck {
	var quotes []xmlmsg.QuoteEntry
	for _, q := range r.Quotes {
		quotes = append(quotes, xmlmsg.QuoteEntry{
			Resource: q.Resource,
			Mask:     xmlmsg.FormatMask(q.Mask),
			Start:    xmlmsg.FormatSeconds(q.Start),
			End:      xmlmsg.FormatSeconds(q.End),
		})
	}
	return xmlmsg.NewReserveAck(r.TaskID, quotes)
}

// reservePeer pairs a routable neighbour with its name for breaker
// accounting outside the lock.
type reservePeer struct {
	name string
	rp   agent.ReservePeer
}

// reservePeersLocked snapshots the neighbours the op may still travel
// to. Caller holds the node lock.
func (n *Node) reservePeersLocked(op *agent.ReserveOp) []reservePeer {
	visited := map[string]bool{}
	for _, v := range op.Visited {
		visited[v] = true
	}
	peers := n.agent.Lowers()
	if up := n.agent.Upper(); up != nil {
		peers = append(peers, up)
	}
	var out []reservePeer
	for _, p := range peers {
		rp, ok := p.(agent.ReservePeer)
		if !ok || visited[p.PeerName()] || n.agent.PeerTripped(p.PeerName()) {
			continue
		}
		out = append(out, reservePeer{name: p.PeerName(), rp: rp})
	}
	return out
}

// reserveDispatch routes a reservation op exactly like the in-process
// agent.HandleReserve, but with every remote exchange outside the node
// lock — two nodes reserving through each other must not deadlock.
func (n *Node) reserveDispatch(op agent.ReserveOp) (agent.ReserveReply, error) {
	n.mu.Lock()
	me := n.agent.Name()
	visited := make([]string, 0, len(op.Visited)+1)
	visited = append(visited, op.Visited...)
	visited = append(visited, me)
	op.Visited = visited
	now := n.Now()
	n.agent.Local().AdvanceTo(now)

	if op.Action == agent.ReserveQuoteOp && op.Resource == "" {
		var reply agent.ReserveReply
		if r, err := n.agent.ApplyReserve(op, now); err == nil {
			reply.Quotes = r.Quotes
		}
		peers := n.reservePeersLocked(&op)
		n.mu.Unlock()
		for _, p := range peers {
			r, err := p.rp.HandleReserve(op, n.Now())
			n.recordPeer(p.name, err)
			if err == nil {
				reply.Quotes = append(reply.Quotes, r.Quotes...)
			}
		}
		seen := map[string]bool{}
		uniq := reply.Quotes[:0]
		for _, q := range reply.Quotes {
			if !seen[q.Resource] {
				seen[q.Resource] = true
				uniq = append(uniq, q)
			}
		}
		reply.Quotes = uniq
		sort.Slice(reply.Quotes, func(i, j int) bool {
			if reply.Quotes[i].Start != reply.Quotes[j].Start {
				return reply.Quotes[i].Start < reply.Quotes[j].Start
			}
			return reply.Quotes[i].Resource < reply.Quotes[j].Resource
		})
		return reply, nil
	}

	if op.Resource == me || op.Resource == "" {
		defer n.mu.Unlock()
		return n.agent.ApplyReserve(op, now)
	}
	peers := n.reservePeersLocked(&op)
	n.mu.Unlock()
	for _, p := range peers {
		r, err := p.rp.HandleReserve(op, n.Now())
		if err == nil {
			n.recordPeer(p.name, nil)
			return r, nil
		}
		if agent.IsNotRoutable(err) {
			// The peer answered; the target just isn't in that direction.
			n.recordPeer(p.name, nil)
			continue
		}
		var xe *ExchangeError
		if errors.As(err, &xe) && xe.Op == "reply" {
			// The op reached its target and was refused: that is the
			// protocol answer, not a transport failure.
			n.recordPeer(p.name, nil)
			return agent.ReserveReply{}, err
		}
		n.recordPeer(p.name, err)
	}
	return agent.ReserveReply{}, fmt.Errorf("%w: no path from %s to %s", agent.ErrNotRoutable, me, op.Resource)
}
