package transport

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/experiment"
	"repro/internal/xmlmsg"
)

func startCaseStudyFarm(t *testing.T, policy string) *Farm {
	t.Helper()
	farm, err := StartFarm(FarmConfig{
		Specs:      experiment.CaseStudyResources(),
		Policy:     policy,
		Seed:       7,
		PullPeriod: 0.05,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = farm.Close() })
	return farm
}

// TestFarmFullCaseStudyGridOverTCP boots all twelve Fig. 7 agents as real
// TCP daemons, waits for advertisement pulls to propagate, and drives
// requests through the wire protocol end to end.
func TestFarmFullCaseStudyGridOverTCP(t *testing.T) {
	farm := startCaseStudyFarm(t, "fifo")
	if len(farm.Names()) != 12 {
		t.Fatalf("%d nodes", len(farm.Names()))
	}

	// Wait until every node has pulled at least twice.
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		ready := 0
		for _, name := range farm.Names() {
			n, _ := farm.Node(name)
			if n.Stats().Pulls >= 2 {
				ready++
			}
		}
		if ready == 12 {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}

	// A loose request submitted at the slowest leaf stays local.
	s12, _ := farm.Addr("S12")
	reply, _, err := Call(s12, xmlmsg.NewWireRequest(101, "sweep3d", "test", 1e6, "u@g", xmlmsg.ModeDiscover, nil))
	if err != nil {
		t.Fatal(err)
	}
	if ack := reply.(*xmlmsg.DispatchAck); ack.Resource != "S12" {
		t.Fatalf("loose request landed on %s", ack.Resource)
	}

	// A tight request at the same leaf must migrate to a faster platform
	// through the hierarchy: sweep3d needs >= 24s on S12's SPARCstation2
	// (factor 6) and >= 5.6s even on an Ultra10, so a 5-second deadline
	// admits only the SGI platforms (minimum 4s).
	reply, _, err = Call(s12, xmlmsg.NewWireRequest(102, "sweep3d", "test", 5, "u@g", xmlmsg.ModeDiscover, nil))
	if err != nil {
		t.Fatal(err)
	}
	ack := reply.(*xmlmsg.DispatchAck)
	if ack.Resource != "S1" && ack.Resource != "S2" {
		t.Fatalf("tight request landed on %s, want an SGI platform", ack.Resource)
	}

	// Service queries work against every node.
	for _, name := range farm.Names() {
		addr, _ := farm.Addr(name)
		reply, kind, err := Call(addr, xmlmsg.NewServiceQuery())
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if kind != xmlmsg.KindService {
			t.Fatalf("%s replied %v", name, kind)
		}
		if si := reply.(*xmlmsg.ServiceInfo); si.Local.NProc != 16 {
			t.Fatalf("%s advertises %d nodes", name, si.Local.NProc)
		}
	}
}

func TestFarmValidation(t *testing.T) {
	if _, err := StartFarm(FarmConfig{}); err == nil {
		t.Error("empty farm accepted")
	}
	if _, err := StartFarm(FarmConfig{
		Specs: []core.ResourceSpec{{Name: "a", Hardware: "VAX", Nodes: 4}},
	}); err == nil {
		t.Error("unknown hardware accepted")
	}
	if _, err := StartFarm(FarmConfig{
		Specs:  []core.ResourceSpec{{Name: "a", Hardware: "SGIOrigin2000", Nodes: 4}},
		Policy: "quantum",
	}); err == nil {
		t.Error("unknown policy accepted")
	}
	if _, err := StartFarm(FarmConfig{
		Specs: []core.ResourceSpec{
			{Name: "a", Hardware: "SGIOrigin2000", Nodes: 4},
			{Name: "b", Hardware: "SGIOrigin2000", Nodes: 4, Parent: "ghost"},
		},
	}); err == nil {
		t.Error("unknown parent accepted")
	}
}

func TestFarmAccessors(t *testing.T) {
	farm, err := StartFarm(FarmConfig{
		Specs: []core.ResourceSpec{
			{Name: "x", Hardware: "SGIOrigin2000", Nodes: 4},
			{Name: "y", Hardware: "SunUltra5", Nodes: 4, Parent: "x"},
		},
		PullPeriod: 0.05,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer farm.Close()
	if _, ok := farm.Node("x"); !ok {
		t.Fatal("node lookup failed")
	}
	if _, ok := farm.Addr("ghost"); ok {
		t.Fatal("phantom addr")
	}
	desc := farm.Describe()
	if len(desc) == 0 {
		t.Fatal("empty description")
	}
}
