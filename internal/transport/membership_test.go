package transport

import (
	"testing"
	"time"

	"repro/internal/pace"
	"repro/internal/xmlmsg"
)

// waitCached spins until the node's advert cache holds (or drops) name.
func waitCached(t *testing.T, n *Node, name string, want bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		found := false
		for _, c := range n.CachedServiceNames() {
			if c == name {
				found = true
			}
		}
		if found == want {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("cache of %s: %v never reached %v (%v)", n.Agent().Name(), name, want, n.CachedServiceNames())
}

// TestJoinLeaveOverTCP drives the live registration protocol end to end:
// a child joins a running upper, becomes a discovery target, then leaves
// gracefully and is forgotten immediately — no TTL wait.
func TestJoinLeaveOverTCP(t *testing.T) {
	head := startNode(t, "fast", pace.SunSPARCstation2, 4)
	child := startNode(t, "joiner", pace.SGIOrigin2000, 16)

	if err := child.JoinUpper("fast", head.Addr()); err != nil {
		t.Fatal(err)
	}
	if up := child.Agent().Upper(); up == nil || up.PeerName() != "fast" {
		t.Fatal("join did not wire the child's upper link")
	}
	// The upper starts pulling the joiner's advertisement on its own.
	waitCached(t, head, "joiner", true)

	// sweep3d in 10s is impossible on the SPARCstation upper (min 24s)
	// but easy on the joined Origin — discovery must route to the joiner.
	req := xmlmsg.NewWireRequest(301, "sweep3d", "test", 10, "u@g", xmlmsg.ModeDiscover, nil)
	reply, _, err := Call(head.Addr(), req)
	if err != nil {
		t.Fatal(err)
	}
	ack := reply.(*xmlmsg.DispatchAck)
	if ack.Resource != "joiner" {
		t.Fatalf("request landed on %s, want the joiner", ack.Resource)
	}

	// Graceful leave: the upper forgets the advert on the spot.
	if err := child.LeaveUpper(); err != nil {
		t.Fatal(err)
	}
	if child.Agent().Upper() != nil {
		t.Fatal("leave did not sever the child's upper link")
	}
	waitCached(t, head, "joiner", false)

	// With the joiner gone the same request stays on the upper as a
	// best-effort fallback — it must not dispatch to the departed child.
	req = xmlmsg.NewWireRequest(302, "sweep3d", "test", 10, "u@g", xmlmsg.ModeDiscover, nil)
	reply, _, err = Call(head.Addr(), req)
	if err != nil {
		t.Fatal(err)
	}
	ack = reply.(*xmlmsg.DispatchAck)
	if ack.Resource == "joiner" {
		t.Fatal("post-leave request dispatched to the departed joiner")
	}
}

// TestRejoinReplacesStaleLink: a daemon restart re-joins under the same
// name; the upper must swap the link rather than reject the duplicate.
func TestRejoinReplacesStaleLink(t *testing.T) {
	head := startNode(t, "fast", pace.SunSPARCstation2, 4)
	old := startNode(t, "joiner", pace.SunUltra5, 8)
	if err := old.JoinUpper("fast", head.Addr()); err != nil {
		t.Fatal(err)
	}
	_ = old.Close()

	// The restarted daemon has faster hardware under the same name. The
	// stale cached advert (SunUltra5: sweep3d min 10s) cannot meet an 8s
	// deadline, so discovery routes to the joiner only once the swapped
	// link has pulled the fresh SGI advertisement.
	fresh := startNode(t, "joiner", pace.SGIOrigin2000, 16)
	if err := fresh.JoinUpper("fast", head.Addr()); err != nil {
		t.Fatalf("re-join rejected: %v", err)
	}
	deadline := time.Now().Add(5 * time.Second)
	reqID := uint64(310)
	for time.Now().Before(deadline) {
		reqID++
		req := xmlmsg.NewWireRequest(reqID, "sweep3d", "test", 8, "u@g", xmlmsg.ModeDiscover, nil)
		reply, _, err := Call(head.Addr(), req)
		if err == nil {
			if ack, ok := reply.(*xmlmsg.DispatchAck); ok && ack.Resource == "joiner" {
				return
			}
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("discovery never reached the re-joined instance")
}

// TestMembershipWireErrors pins the protocol's failure answers.
func TestMembershipWireErrors(t *testing.T) {
	head := startNode(t, "fast", pace.SGIOrigin2000, 8)

	// A leave from a stranger is an error: it was never a neighbour.
	if _, _, err := Call(head.Addr(), xmlmsg.NewLeave("stranger")); err == nil {
		t.Fatal("leave of a non-neighbour succeeded")
	}
	// A join without a callback address is rejected.
	if _, _, err := Call(head.Addr(), xmlmsg.Membership{
		Type: "membership", Op: xmlmsg.MembershipOpJoin, Agent: "noaddr",
	}); err == nil {
		t.Fatal("join without callback address succeeded")
	}
	// An unknown op is rejected.
	if _, _, err := Call(head.Addr(), xmlmsg.Membership{
		Type: "membership", Op: "defect", Agent: "x",
	}); err == nil {
		t.Fatal("unknown membership op succeeded")
	}
}
