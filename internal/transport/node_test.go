package transport

import (
	"testing"
	"time"

	"repro/internal/agent"
	"repro/internal/pace"
	"repro/internal/scheduler"
	"repro/internal/xmlmsg"
)

// startNode builds an agent over a fresh scheduler and serves it on an
// ephemeral port. PullPeriod is shrunk so advertisement refresh happens
// within test time.
func startNode(t *testing.T, name string, hw pace.Hardware, nodes int) *Node {
	t.Helper()
	engine := pace.NewEngine()
	local, err := scheduler.NewLocal(scheduler.Config{
		Name: name, HW: hw, NumNodes: nodes,
		Policy: scheduler.NewFIFOPolicy(), Engine: engine,
	})
	if err != nil {
		t.Fatal(err)
	}
	a, err := agent.New(local, engine)
	if err != nil {
		t.Fatal(err)
	}
	a.PullPeriod = 0.05
	n, err := NewNode(a, pace.CaseStudyLibrary())
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = n.Close() })
	return n
}

func TestNodeServiceQuery(t *testing.T) {
	n := startNode(t, "solo", pace.SunUltra10, 8)
	reply, kind, err := Call(n.Addr(), xmlmsg.NewServiceQuery())
	if err != nil {
		t.Fatal(err)
	}
	if kind != xmlmsg.KindService {
		t.Fatalf("kind %v", kind)
	}
	si := reply.(*xmlmsg.ServiceInfo)
	if si.Local.HWType != "SunUltra10" || si.Local.NProc != 8 {
		t.Fatalf("service info %+v", si.Local)
	}
}

func TestNodeLocalDispatch(t *testing.T) {
	n := startNode(t, "solo", pace.SGIOrigin2000, 16)
	req := xmlmsg.NewWireRequest(201, "fft", "test", 1e6, "u@g", xmlmsg.ModeDiscover, nil)
	reply, _, err := Call(n.Addr(), req)
	if err != nil {
		t.Fatal(err)
	}
	ack := reply.(*xmlmsg.DispatchAck)
	if ack.Resource != "solo" || ack.TaskID == 0 {
		t.Fatalf("ack %+v", ack)
	}
}

func TestNodeUnknownApplication(t *testing.T) {
	n := startNode(t, "solo", pace.SGIOrigin2000, 16)
	req := xmlmsg.NewWireRequest(202, "doom", "test", 1e6, "u@g", xmlmsg.ModeDiscover, nil)
	if _, _, err := Call(n.Addr(), req); err == nil {
		t.Fatal("unknown app dispatched")
	}
}

// TestTwoNodeHierarchyOverTCP wires a fast head and a slow child as real
// TCP daemons and drives a request that must migrate from the slow child
// to the fast head through the wire protocol.
func TestTwoNodeHierarchyOverTCP(t *testing.T) {
	head := startNode(t, "fast", pace.SGIOrigin2000, 16)
	child := startNode(t, "slow", pace.SunSPARCstation2, 16)

	lib := pace.CaseStudyLibrary()
	// Wire the hierarchy through remote peers.
	if err := child.SetUpper(&RemotePeer{Name: "fast", Addr: head.Addr(), Lib: lib}); err != nil {
		t.Fatal(err)
	}
	if err := head.AddLower(&RemotePeer{Name: "slow", Addr: child.Addr(), Lib: lib}); err != nil {
		t.Fatal(err)
	}
	// Wait for at least one advertisement pull on both sides.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if child.Stats().Pulls > 1 && head.Stats().Pulls > 1 {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}

	// sweep3d with a 10-second deadline: impossible on the SPARCstation
	// (min 24s), fine on the Origin (min 4s).
	req := xmlmsg.NewWireRequest(203, "sweep3d", "test", 10, "u@g", xmlmsg.ModeDiscover, nil)
	reply, _, err := Call(child.Addr(), req)
	if err != nil {
		t.Fatal(err)
	}
	ack := reply.(*xmlmsg.DispatchAck)
	if ack.Resource != "fast" {
		t.Fatalf("request landed on %s, want fast (via TCP forward)", ack.Resource)
	}
}

func TestNodeDirectSubmission(t *testing.T) {
	n := startNode(t, "solo", pace.SunSPARCstation2, 4)
	// Direct mode bypasses discovery: even an impossible deadline queues.
	req := xmlmsg.NewWireRequest(204, "sweep3d", "test", 1, "u@g", xmlmsg.ModeDirect, nil)
	reply, _, err := Call(n.Addr(), req)
	if err != nil {
		t.Fatal(err)
	}
	ack := reply.(*xmlmsg.DispatchAck)
	if ack.Resource != "solo" || !ack.Fallback {
		t.Fatalf("direct ack %+v", ack)
	}
}

func TestRemotePeerPullService(t *testing.T) {
	n := startNode(t, "solo", pace.SunUltra5, 16)
	p := &RemotePeer{Name: "solo", Addr: n.Addr(), Lib: pace.CaseStudyLibrary()}
	si, err := p.PullService()
	if err != nil {
		t.Fatal(err)
	}
	if si.HWType != "SunUltra5" || si.NProc != 16 || si.Name != "solo" {
		t.Fatalf("pulled %+v", si)
	}
	if p.PeerName() != "solo" {
		t.Fatal("peer name wrong")
	}
}

func TestRemotePeerUnreachable(t *testing.T) {
	p := &RemotePeer{Name: "ghost", Addr: "127.0.0.1:1"}
	if _, err := p.PullService(); err == nil {
		t.Fatal("pull from unreachable peer succeeded")
	}
}

func TestNewNodeValidation(t *testing.T) {
	if _, err := NewNode(nil, pace.CaseStudyLibrary()); err == nil {
		t.Fatal("nil agent accepted")
	}
}

func TestPushedAdvertisementOverTCP(t *testing.T) {
	receiver := startNode(t, "rx", pace.SGIOrigin2000, 16)

	// Push a synthetic advertisement claiming "tx" is free at t=99.
	msg := xmlmsg.NewServiceInfo(xmlmsg.Endpoint{}, xmlmsg.Endpoint{}, "SunUltra5", 16, []string{"test"}, 99)
	msg.Local.Name = "tx"
	reply, kind, err := Call(receiver.Addr(), msg)
	if err != nil {
		t.Fatal(err)
	}
	if kind != xmlmsg.KindService {
		t.Fatalf("push reply kind %v", kind)
	}
	// The reply is the receiver's own advertisement (push = exchange).
	back := reply.(*xmlmsg.ServiceInfo)
	if back.Local.Name != "rx" || back.Local.HWType != "SGIOrigin2000" {
		t.Fatalf("push exchange reply: %+v", back.Local)
	}
	// The pushed entry is now in the receiver's service set.
	found := false
	for _, n := range receiver.CachedServiceNames() {
		if n == "tx" {
			found = true
		}
	}
	if !found {
		t.Fatalf("pushed advertisement not stored: %v", receiver.CachedServiceNames())
	}
	if receiver.Stats().PushesReceived == 0 {
		t.Fatalf("push not counted: %+v", receiver.Stats())
	}
}

func TestPushedAdvertisementWithoutNameRejected(t *testing.T) {
	receiver := startNode(t, "rx", pace.SGIOrigin2000, 16)
	msg := xmlmsg.NewServiceInfo(xmlmsg.Endpoint{}, xmlmsg.Endpoint{}, "SunUltra5", 16, []string{"test"}, 5)
	if _, _, err := Call(receiver.Addr(), msg); err == nil {
		t.Fatal("nameless push accepted")
	}
}

func TestNodePushOnAccept(t *testing.T) {
	head := startNode(t, "fast", pace.SGIOrigin2000, 16)
	child := startNode(t, "slow", pace.SunSPARCstation2, 16)
	head.SetPushEnabled(true)
	lib := pace.CaseStudyLibrary()
	if err := child.SetUpper(&RemotePeer{Name: "fast", Addr: head.Addr(), Lib: lib}); err != nil {
		t.Fatal(err)
	}
	if err := head.AddLower(&RemotePeer{Name: "slow", Addr: child.Addr(), Lib: lib}); err != nil {
		t.Fatal(err)
	}
	// Accept work at the head; its freetime jumps past the threshold and
	// the push delivers the fresh advertisement to the child.
	req := xmlmsg.NewWireRequest(205, "improc", "test", 1e6, "u@g", xmlmsg.ModeDiscover, nil)
	if _, _, err := Call(head.Addr(), req); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if child.Stats().PushesReceived > 0 {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if child.Stats().PushesReceived == 0 {
		t.Fatal("accepting work did not push an advertisement to the neighbour")
	}
	if head.Stats().PushesSent == 0 {
		t.Fatalf("head did not count its push: %+v", head.Stats())
	}
}

func TestResultsQueryOverTCP(t *testing.T) {
	n := startNode(t, "solo", pace.SGIOrigin2000, 16)
	// Submit two tasks under different emails.
	for i, email := range []string{"alice@grid", "bob@grid"} {
		req := xmlmsg.NewWireRequest(uint64(300+i), "closure", "test", 1e6, email, xmlmsg.ModeDiscover, nil)
		if _, _, err := Call(n.Addr(), req); err != nil {
			t.Fatal(err)
		}
	}
	reply, kind, err := Call(n.Addr(), xmlmsg.NewResultsQuery(""))
	if err != nil {
		t.Fatal(err)
	}
	if kind != xmlmsg.KindResults {
		t.Fatalf("kind %v", kind)
	}
	rs := reply.(*xmlmsg.ResultSet)
	if len(rs.Tasks) != 2 {
		t.Fatalf("%d results, want 2", len(rs.Tasks))
	}
	for _, tr := range rs.Tasks {
		if tr.App != "closure" || tr.Resource != "solo" || tr.NProc == 0 {
			t.Fatalf("result %+v", tr)
		}
	}
	// Email filter narrows to one.
	reply, _, err = Call(n.Addr(), xmlmsg.NewResultsQuery("alice@grid"))
	if err != nil {
		t.Fatal(err)
	}
	rs = reply.(*xmlmsg.ResultSet)
	if len(rs.Tasks) != 1 || rs.Tasks[0].Email != "alice@grid" {
		t.Fatalf("filtered results %+v", rs.Tasks)
	}
	// closure on 16 idle SGI nodes takes 2 virtual seconds; immediately
	// after submission it is still running, and done after it elapses.
	if rs.Tasks[0].Done {
		t.Fatal("task reported done immediately")
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		reply, _, err = Call(n.Addr(), xmlmsg.NewResultsQuery("alice@grid"))
		if err != nil {
			t.Fatal(err)
		}
		if reply.(*xmlmsg.ResultSet).Tasks[0].Done {
			return
		}
		time.Sleep(100 * time.Millisecond)
	}
	t.Fatal("task never completed")
}
