package transport

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"repro/internal/xmlmsg"
)

func echoHandler(msg interface{}, kind xmlmsg.Kind) (interface{}, error) {
	switch kind {
	case xmlmsg.KindQuery:
		return xmlmsg.NewServiceInfo(
			xmlmsg.Endpoint{Address: "x", Port: 1},
			xmlmsg.Endpoint{Address: "x", Port: 2},
			"SunUltra5", 16, []string{"test"}, 42), nil
	case xmlmsg.KindRequest:
		return xmlmsg.NewDispatchAck("S1", 7, 55, 99, 1, false), nil
	}
	return nil, fmt.Errorf("boom: %v", kind)
}

func TestServeAndCall(t *testing.T) {
	s, err := Serve("127.0.0.1:0", echoHandler)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	reply, kind, err := Call(s.Addr(), xmlmsg.NewServiceQuery())
	if err != nil {
		t.Fatal(err)
	}
	if kind != xmlmsg.KindService {
		t.Fatalf("kind = %v", kind)
	}
	si := reply.(*xmlmsg.ServiceInfo)
	if si.Local.HWType != "SunUltra5" {
		t.Fatalf("service info %+v", si)
	}
	ft, err := si.FreetimeSeconds()
	if err != nil || ft != 42 {
		t.Fatalf("freetime %v err %v", ft, err)
	}
}

func TestCallRequestAck(t *testing.T) {
	s, err := Serve("127.0.0.1:0", echoHandler)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	req := xmlmsg.NewWireRequest(55, "fft", "test", 120, "u@g", xmlmsg.ModeDiscover, []string{"S9"})
	reply, kind, err := Call(s.Addr(), req)
	if err != nil {
		t.Fatal(err)
	}
	if kind != xmlmsg.KindDispatch {
		t.Fatalf("kind = %v", kind)
	}
	ack := reply.(*xmlmsg.DispatchAck)
	if ack.Resource != "S1" || ack.TaskID != 7 {
		t.Fatalf("ack %+v", ack)
	}
	if eta, err := ack.EtaSeconds(); err != nil || eta != 99 {
		t.Fatalf("eta %v err %v", eta, err)
	}
}

func TestHandlerErrorSurfacesAsRemoteError(t *testing.T) {
	s, err := Serve("127.0.0.1:0", echoHandler)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	// Results are not handled by the echo handler -> error reply.
	res := xmlmsg.NewResult("fft", 1, "S1", 4, 0, 10, 20, "u@g")
	_, _, err = Call(s.Addr(), res)
	if err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("remote error not surfaced: %v", err)
	}
}

func TestCallToClosedServer(t *testing.T) {
	s, err := Serve("127.0.0.1:0", echoHandler)
	if err != nil {
		t.Fatal(err)
	}
	addr := s.Addr()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Call(addr, xmlmsg.NewServiceQuery()); err == nil {
		t.Fatal("call to closed server succeeded")
	}
}

func TestConcurrentCalls(t *testing.T) {
	s, err := Serve("127.0.0.1:0", echoHandler)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	var wg sync.WaitGroup
	errs := make(chan error, 32)
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, _, err := Call(s.Addr(), xmlmsg.NewServiceQuery()); err != nil {
				errs <- err
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestServeNilHandler(t *testing.T) {
	if _, err := Serve("127.0.0.1:0", nil); err == nil {
		t.Fatal("nil handler accepted")
	}
}

func TestServerCloseIdempotent(t *testing.T) {
	s, err := Serve("127.0.0.1:0", echoHandler)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
}
