package transport

import (
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/sim"
	"repro/internal/xmlmsg"
)

// sleepRecorder replaces Client.Sleep so retry schedules are asserted
// without any wall-clock delay.
type sleepRecorder struct{ slept []time.Duration }

func (s *sleepRecorder) sleep(d time.Duration) { s.slept = append(s.slept, d) }

// deadAddr reserves an ephemeral port and releases it, yielding an
// address that refuses connections.
func deadAddr(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

func TestErrorReplyRoundTripNotRetried(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", func(msg interface{}, kind xmlmsg.Kind) (interface{}, error) {
		return nil, fmt.Errorf("scheduler full")
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	rec := &sleepRecorder{}
	c := NewClient()
	c.Sleep = rec.sleep
	_, _, err = c.Call(srv.Addr(), xmlmsg.NewServiceQuery())
	var xe *ExchangeError
	if !errors.As(err, &xe) {
		t.Fatalf("err = %v (%T), want *ExchangeError", err, err)
	}
	if xe.Op != "reply" || xe.Attempts != 1 {
		t.Fatalf("ExchangeError = %+v, want Op reply after 1 attempt", xe)
	}
	if xe.Addr != srv.Addr() {
		t.Fatalf("ExchangeError.Addr = %q, want %q", xe.Addr, srv.Addr())
	}
	if len(rec.slept) != 0 {
		t.Fatalf("an application-level ErrorReply was retried: slept %v", rec.slept)
	}
	if want := "scheduler full"; !strings.Contains(err.Error(), want) {
		t.Fatalf("error %q does not carry the handler message %q", err, want)
	}
}

func TestServerClosedMidExchangeRetriesThenFails(t *testing.T) {
	// A raw listener that accepts and instantly closes every connection:
	// the dial succeeds, then the exchange dies mid-flight.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			conn.Close()
		}
	}()

	rec := &sleepRecorder{}
	c := NewClient()
	c.MaxAttempts = 3
	c.Sleep = rec.sleep
	_, _, err = c.Call(ln.Addr().String(), xmlmsg.NewServiceQuery())
	var xe *ExchangeError
	if !errors.As(err, &xe) {
		t.Fatalf("err = %v (%T), want *ExchangeError", err, err)
	}
	if xe.Attempts != 3 {
		t.Fatalf("Attempts = %d, want 3", xe.Attempts)
	}
	if xe.Op == "dial" || xe.Op == "reply" {
		t.Fatalf("Op = %q, want a mid-exchange failure (write or read)", xe.Op)
	}
	if len(rec.slept) != 2 {
		t.Fatalf("slept %d times between 3 attempts, want 2", len(rec.slept))
	}
}

func TestDialDeadPortExhaustsRetriesWithBackoff(t *testing.T) {
	addr := deadAddr(t)
	rec := &sleepRecorder{}
	c := NewClient()
	c.MaxAttempts = 4
	c.JitterSeed = 7
	c.Sleep = rec.sleep
	c.DialTimeout = 200 * time.Millisecond

	_, _, err := c.Call(addr, xmlmsg.NewServiceQuery())
	var xe *ExchangeError
	if !errors.As(err, &xe) {
		t.Fatalf("err = %v (%T), want *ExchangeError", err, err)
	}
	if xe.Op != "dial" || xe.Attempts != 4 || xe.Addr != addr {
		t.Fatalf("ExchangeError = %+v, want dial failure on %s after 4 attempts", xe, addr)
	}

	// The backoff schedule is exactly the deterministic Backoff sequence.
	want := []time.Duration{c.Backoff(addr, 1), c.Backoff(addr, 2), c.Backoff(addr, 3)}
	if len(rec.slept) != len(want) {
		t.Fatalf("slept %v, want %d delays", rec.slept, len(want))
	}
	for i := range want {
		if rec.slept[i] != want[i] {
			t.Fatalf("sleep %d = %v, want %v (full schedule %v)", i, rec.slept[i], want[i], rec.slept)
		}
	}
	// Each delay doubles from the base and carries at most 50% jitter.
	for i, d := range rec.slept {
		lo := c.BackoffBase << uint(i)
		hi := lo + lo/2
		if d < lo || d > hi {
			t.Fatalf("sleep %d = %v outside envelope [%v, %v]", i, d, lo, hi)
		}
	}
}

func TestBackoffCapsAtMax(t *testing.T) {
	c := NewClient()
	c.BackoffBase = 50 * time.Millisecond
	c.BackoffMax = 200 * time.Millisecond
	d := c.Backoff("x:1", 10)
	if max := c.BackoffMax + c.BackoffMax/2; d > max {
		t.Fatalf("Backoff(10) = %v, want <= cap+jitter %v", d, max)
	}
	if d < c.BackoffMax {
		t.Fatalf("Backoff(10) = %v, want >= cap %v", d, c.BackoffMax)
	}
	// Deterministic: same client state, same schedule.
	if a, b := c.Backoff("x:1", 3), c.Backoff("x:1", 3); a != b {
		t.Fatalf("Backoff not deterministic: %v vs %v", a, b)
	}
	// Different attempts (and different peers) jitter independently.
	if c.Backoff("x:1", 1) == c.Backoff("y:2", 1) && c.Backoff("x:1", 2) == c.Backoff("y:2", 2) {
		t.Fatal("jitter ignores the peer address")
	}
}

// TestBackoffWithoutJitterSourceIsByteIdentical pins the opt-in
// contract of Client.Jitter: a nil source must reproduce the original
// hash-derived schedule exactly — the delay for every (seed, address,
// attempt) triple is the same value it was before the field existed.
func TestBackoffWithoutJitterSourceIsByteIdentical(t *testing.T) {
	c := NewClient()
	c.JitterSeed = 42
	for _, addr := range []string{"a:1", "b:2"} {
		for attempt := 1; attempt <= 4; attempt++ {
			base := c.BackoffBase
			max := c.BackoffMax
			d := base
			for i := 1; i < attempt && d < max; i++ {
				d *= 2
			}
			if d > max {
				d = max
			}
			// The pre-Jitter formula, inlined: any drift here means a
			// deployment that never set Jitter changed behaviour.
			jitter := splitmix64(c.JitterSeed ^ hashAddr(addr) ^ uint64(attempt))
			want := d + time.Duration(jitter%uint64(d/2+1))
			if got := c.Backoff(addr, attempt); got != want {
				t.Fatalf("Backoff(%q, %d) = %v, want the hash schedule %v", addr, attempt, got, want)
			}
		}
	}
}

// TestBackoffJitterSourceDrawsFromRNGStream exercises the opt-in path:
// the same seed replays the same schedule, successive retries to one
// peer differ (the stream advances), and concurrent draws are safe
// (meaningful under -race).
func TestBackoffJitterSourceDrawsFromRNGStream(t *testing.T) {
	mk := func() *Client {
		c := NewClient()
		c.Jitter = NewJitterSource(sim.NewRNG(7))
		return c
	}
	a, b := mk(), mk()
	var seqA, seqB []time.Duration
	for attempt := 1; attempt <= 4; attempt++ {
		seqA = append(seqA, a.Backoff("x:1", attempt))
		seqB = append(seqB, b.Backoff("x:1", attempt))
	}
	for i := range seqA {
		if seqA[i] != seqB[i] {
			t.Fatalf("same seed, different schedule at %d: %v vs %v", i, seqA[i], seqB[i])
		}
	}
	// Re-drawing the same (addr, attempt) advances the stream: unlike
	// hash jitter, a repeated retry spreads differently.
	if x, y := a.Backoff("x:1", 1), a.Backoff("x:1", 1); x == y {
		t.Fatalf("stream jitter repeated a delay: %v", x)
	}
	if NewJitterSource(nil) != nil {
		t.Fatal("NewJitterSource(nil) must return a nil source")
	}

	c := mk()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 1; i <= 50; i++ {
				_ = c.Backoff("x:1", i%4+1)
			}
		}()
	}
	wg.Wait()
}
