package transport

import (
	"errors"
	"fmt"
	"net"
	"strings"
	"testing"
	"time"

	"repro/internal/xmlmsg"
)

// sleepRecorder replaces Client.Sleep so retry schedules are asserted
// without any wall-clock delay.
type sleepRecorder struct{ slept []time.Duration }

func (s *sleepRecorder) sleep(d time.Duration) { s.slept = append(s.slept, d) }

// deadAddr reserves an ephemeral port and releases it, yielding an
// address that refuses connections.
func deadAddr(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

func TestErrorReplyRoundTripNotRetried(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", func(msg interface{}, kind xmlmsg.Kind) (interface{}, error) {
		return nil, fmt.Errorf("scheduler full")
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	rec := &sleepRecorder{}
	c := NewClient()
	c.Sleep = rec.sleep
	_, _, err = c.Call(srv.Addr(), xmlmsg.NewServiceQuery())
	var xe *ExchangeError
	if !errors.As(err, &xe) {
		t.Fatalf("err = %v (%T), want *ExchangeError", err, err)
	}
	if xe.Op != "reply" || xe.Attempts != 1 {
		t.Fatalf("ExchangeError = %+v, want Op reply after 1 attempt", xe)
	}
	if xe.Addr != srv.Addr() {
		t.Fatalf("ExchangeError.Addr = %q, want %q", xe.Addr, srv.Addr())
	}
	if len(rec.slept) != 0 {
		t.Fatalf("an application-level ErrorReply was retried: slept %v", rec.slept)
	}
	if want := "scheduler full"; !strings.Contains(err.Error(), want) {
		t.Fatalf("error %q does not carry the handler message %q", err, want)
	}
}

func TestServerClosedMidExchangeRetriesThenFails(t *testing.T) {
	// A raw listener that accepts and instantly closes every connection:
	// the dial succeeds, then the exchange dies mid-flight.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			conn.Close()
		}
	}()

	rec := &sleepRecorder{}
	c := NewClient()
	c.MaxAttempts = 3
	c.Sleep = rec.sleep
	_, _, err = c.Call(ln.Addr().String(), xmlmsg.NewServiceQuery())
	var xe *ExchangeError
	if !errors.As(err, &xe) {
		t.Fatalf("err = %v (%T), want *ExchangeError", err, err)
	}
	if xe.Attempts != 3 {
		t.Fatalf("Attempts = %d, want 3", xe.Attempts)
	}
	if xe.Op == "dial" || xe.Op == "reply" {
		t.Fatalf("Op = %q, want a mid-exchange failure (write or read)", xe.Op)
	}
	if len(rec.slept) != 2 {
		t.Fatalf("slept %d times between 3 attempts, want 2", len(rec.slept))
	}
}

func TestDialDeadPortExhaustsRetriesWithBackoff(t *testing.T) {
	addr := deadAddr(t)
	rec := &sleepRecorder{}
	c := NewClient()
	c.MaxAttempts = 4
	c.JitterSeed = 7
	c.Sleep = rec.sleep
	c.DialTimeout = 200 * time.Millisecond

	_, _, err := c.Call(addr, xmlmsg.NewServiceQuery())
	var xe *ExchangeError
	if !errors.As(err, &xe) {
		t.Fatalf("err = %v (%T), want *ExchangeError", err, err)
	}
	if xe.Op != "dial" || xe.Attempts != 4 || xe.Addr != addr {
		t.Fatalf("ExchangeError = %+v, want dial failure on %s after 4 attempts", xe, addr)
	}

	// The backoff schedule is exactly the deterministic Backoff sequence.
	want := []time.Duration{c.Backoff(addr, 1), c.Backoff(addr, 2), c.Backoff(addr, 3)}
	if len(rec.slept) != len(want) {
		t.Fatalf("slept %v, want %d delays", rec.slept, len(want))
	}
	for i := range want {
		if rec.slept[i] != want[i] {
			t.Fatalf("sleep %d = %v, want %v (full schedule %v)", i, rec.slept[i], want[i], rec.slept)
		}
	}
	// Each delay doubles from the base and carries at most 50% jitter.
	for i, d := range rec.slept {
		lo := c.BackoffBase << uint(i)
		hi := lo + lo/2
		if d < lo || d > hi {
			t.Fatalf("sleep %d = %v outside envelope [%v, %v]", i, d, lo, hi)
		}
	}
}

func TestBackoffCapsAtMax(t *testing.T) {
	c := NewClient()
	c.BackoffBase = 50 * time.Millisecond
	c.BackoffMax = 200 * time.Millisecond
	d := c.Backoff("x:1", 10)
	if max := c.BackoffMax + c.BackoffMax/2; d > max {
		t.Fatalf("Backoff(10) = %v, want <= cap+jitter %v", d, max)
	}
	if d < c.BackoffMax {
		t.Fatalf("Backoff(10) = %v, want >= cap %v", d, c.BackoffMax)
	}
	// Deterministic: same client state, same schedule.
	if a, b := c.Backoff("x:1", 3), c.Backoff("x:1", 3); a != b {
		t.Fatalf("Backoff not deterministic: %v vs %v", a, b)
	}
	// Different attempts (and different peers) jitter independently.
	if c.Backoff("x:1", 1) == c.Backoff("y:2", 1) && c.Backoff("x:1", 2) == c.Backoff("y:2", 2) {
		t.Fatal("jitter ignores the peer address")
	}
}
