package transport

import (
	"bufio"
	"fmt"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/xmlmsg"
)

// muxConn is one keep-alive connection carrying many concurrent
// exchanges. Each request frame is tagged with an exchange ID; the reader
// goroutine routes reply frames back to the waiting caller by ID, so
// replies may return in any order — a slow exchange no longer blocks the
// exchanges queued behind it (the head-of-line problem of the legacy
// one-frame-per-connection protocol).
type muxConn struct {
	addr  string
	conn  net.Conn
	codec byte // payload codec negotiated at setup (hello exchange)

	wmu sync.Mutex // serialises frame writes

	mu     sync.Mutex
	calls  map[uint64]chan muxResult // in-flight exchange ID -> waiter
	nextID uint64

	dead atomic.Bool // set once; a dead conn is pruned by the pool
}

// muxResult is what the reader delivers to a waiting exchange.
type muxResult struct {
	msg  interface{}
	kind xmlmsg.Kind
	err  error
}

// dialMux establishes a pooled connection: dial, negotiate the payload
// codec with a hello exchange, then hand the connection to a reader
// goroutine. wantBinary offers the compact binary codec; the server picks
// and XML remains the fallback either side can force.
func dialMux(addr string, dialTO, exchTO time.Duration, wantBinary bool) (*muxConn, *ExchangeError) {
	conn, err := net.DialTimeout("tcp", addr, dialTO)
	if err != nil {
		return nil, &ExchangeError{Addr: addr, Op: "dial", Err: err}
	}
	offer := string(rune(xmlmsg.CodecXML))
	if wantBinary {
		offer = string(rune(xmlmsg.CodecXML)) + string(rune(xmlmsg.CodecBinary))
	}
	// The hello happens synchronously under a deadline, before the reader
	// starts: the connection is not usable until the codec is agreed.
	_ = conn.SetDeadline(time.Now().Add(exchTO))
	payload, merr := xmlmsg.Encode(xmlmsg.CodecXML, xmlmsg.NewHello(offer))
	if merr != nil {
		conn.Close()
		return nil, &ExchangeError{Addr: addr, Op: "write", Err: merr}
	}
	if werr := xmlmsg.WriteMuxFrame(conn, xmlmsg.MuxFrame{ID: 0, Codec: xmlmsg.CodecXML, Payload: payload}); werr != nil {
		conn.Close()
		return nil, &ExchangeError{Addr: addr, Op: "write", Err: werr}
	}
	r := bufio.NewReader(conn)
	f, rerr := xmlmsg.ReadMuxFrame(r)
	if rerr != nil {
		conn.Close()
		return nil, &ExchangeError{Addr: addr, Op: "read", Err: rerr}
	}
	reply, _, derr := xmlmsg.DecodeWith(f.Codec, f.Payload)
	if derr != nil {
		conn.Close()
		return nil, &ExchangeError{Addr: addr, Op: "read", Err: derr}
	}
	h, ok := reply.(*xmlmsg.Hello)
	if !ok || len(h.Codecs) != 1 || !xmlmsg.ValidCodec(h.Codecs[0]) || !strings.Contains(offer, h.Codecs) {
		conn.Close()
		return nil, &ExchangeError{Addr: addr, Op: "read", Err: fmt.Errorf("transport: bad codec negotiation reply %#v", reply)}
	}
	_ = conn.SetDeadline(time.Time{})
	m := &muxConn{addr: addr, conn: conn, codec: h.Codecs[0], calls: map[uint64]chan muxResult{}}
	go m.readLoop(r)
	return m, nil
}

// readLoop routes reply frames to their waiters until the connection
// dies; any I/O or protocol error retires the connection and fails every
// in-flight exchange.
func (m *muxConn) readLoop(r *bufio.Reader) {
	for {
		f, err := xmlmsg.ReadMuxFrame(r)
		if err != nil {
			m.fail(fmt.Errorf("transport: connection to %s lost: %w", m.addr, err))
			return
		}
		msg, kind, derr := xmlmsg.DecodeWith(f.Codec, f.Payload)
		if derr != nil {
			m.fail(fmt.Errorf("transport: undecodable frame from %s: %w", m.addr, derr))
			return
		}
		m.mu.Lock()
		ch := m.calls[f.ID]
		delete(m.calls, f.ID)
		m.mu.Unlock()
		if ch != nil {
			ch <- muxResult{msg: msg, kind: kind}
		}
		// A reply nobody waits for belonged to a timed-out exchange; the
		// conn was already retired in that case, so just drop it.
	}
}

// fail retires the connection and delivers err to every in-flight
// exchange.
func (m *muxConn) fail(err error) {
	m.dead.Store(true)
	m.conn.Close()
	m.mu.Lock()
	calls := m.calls
	m.calls = map[uint64]chan muxResult{}
	m.mu.Unlock()
	for _, ch := range calls {
		ch <- muxResult{err: err}
	}
}

// retire marks the connection broken and closes it; the reader's failure
// path then clears any other in-flight exchanges.
func (m *muxConn) retire() {
	m.dead.Store(true)
	m.conn.Close()
}

// roundTrip performs one multiplexed exchange with a bounded wait. A
// timeout retires the connection — the health-check policy matches the
// legacy client, where a timed-out exchange abandoned its (dedicated)
// connection — so a stuck peer cannot poison the pool.
func (m *muxConn) roundTrip(msg interface{}, timeout time.Duration) (interface{}, xmlmsg.Kind, *ExchangeError) {
	payload, merr := xmlmsg.Encode(m.codec, msg)
	if merr != nil {
		return nil, "", &ExchangeError{Addr: m.addr, Op: "write", Err: merr}
	}
	ch := make(chan muxResult, 1)
	m.mu.Lock()
	m.nextID++
	id := m.nextID
	m.calls[id] = ch
	m.mu.Unlock()

	m.wmu.Lock()
	_ = m.conn.SetWriteDeadline(time.Now().Add(timeout))
	werr := xmlmsg.WriteMuxFrame(m.conn, xmlmsg.MuxFrame{ID: id, Codec: m.codec, Payload: payload})
	m.wmu.Unlock()
	if werr != nil {
		m.unregister(id)
		m.retire()
		return nil, "", &ExchangeError{Addr: m.addr, Op: "write", Err: werr}
	}

	t := time.NewTimer(timeout)
	defer t.Stop()
	select {
	case res := <-ch:
		if res.err != nil {
			return nil, "", &ExchangeError{Addr: m.addr, Op: "read", Err: res.err}
		}
		switch r := res.msg.(type) {
		case *xmlmsg.Busy:
			return nil, res.kind, &ExchangeError{Addr: m.addr, Op: "busy",
				Err: fmt.Errorf("transport: peer shedding load (%d in flight, limit %d)", r.Depth, r.Limit)}
		case *xmlmsg.ErrorReply:
			return nil, res.kind, &ExchangeError{Addr: m.addr, Op: "reply", Err: r.Err()}
		}
		return res.msg, res.kind, nil
	case <-t.C:
		m.unregister(id)
		m.retire()
		return nil, "", &ExchangeError{Addr: m.addr, Op: "read",
			Err: fmt.Errorf("transport: exchange %d to %s timed out after %v", id, m.addr, timeout)}
	}
}

func (m *muxConn) unregister(id uint64) {
	m.mu.Lock()
	delete(m.calls, id)
	m.mu.Unlock()
}
