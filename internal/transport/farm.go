package transport

import (
	"fmt"
	"sort"

	"repro/internal/agent"
	"repro/internal/core"
	"repro/internal/ga"
	"repro/internal/pace"
	"repro/internal/scheduler"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

// Farm hosts a whole agent hierarchy as networked TCP nodes in one
// process: one listener per resource, neighbours wired through
// RemotePeer stubs, so every advertisement and discovery exchange crosses
// the real wire protocol. It turns the Fig. 7 case-study grid (or any
// core.ResourceSpec set) into a live deployment that gridsubmit can talk
// to.
type Farm struct {
	nodes   map[string]*Node
	order   []string
	lib     *pace.Library
	reg     *telemetry.Registry
	clients []*Client
}

// FarmConfig configures StartFarm.
type FarmConfig struct {
	Specs      []core.ResourceSpec
	Host       string  // bind host; defaults to 127.0.0.1 (ephemeral ports)
	BasePort   int     // first port; 0 = ephemeral
	Policy     string  // "ga" (default) or "fifo"
	Seed       uint64  // GA seed
	PullPeriod float64 // advertisement pull period; defaults to §4.1's 10 s
	Push       bool    // event-triggered advertisement pushes
	Library    *pace.Library

	// Telemetry, when set, instruments every node (agent, scheduler, GA,
	// engine, outbound exchanges, connection pools) on one shared
	// registry — the registry a daemon serves at /metrics. Nil runs the
	// farm uninstrumented.
	Telemetry *telemetry.Registry

	// Pool tunes each node's outbound connection pool (size, in-flight
	// window, shed-vs-block, binary codec offer). The zero value takes
	// the pool defaults.
	Pool PoolConfig

	// NoPool reverts outbound exchanges to the legacy dial-per-exchange
	// transport — a comparison/escape hatch, not a production mode.
	NoPool bool

	// Server is applied to every node's listener: admission gate,
	// binary-codec permission and dedup window.
	Server ServerConfig
}

// StartFarm brings up one TCP node per resource spec, wires the hierarchy
// through remote peers, and returns the running farm. Close shuts all
// nodes down.
func StartFarm(cfg FarmConfig) (*Farm, error) {
	if len(cfg.Specs) == 0 {
		return nil, fmt.Errorf("transport: farm needs resources")
	}
	if cfg.Host == "" {
		cfg.Host = "127.0.0.1"
	}
	if cfg.Library == nil {
		cfg.Library = pace.CaseStudyLibrary()
	}
	if cfg.Policy == "" {
		cfg.Policy = "ga"
	}

	f := &Farm{nodes: map[string]*Node{}, lib: cfg.Library, reg: cfg.Telemetry}
	master := sim.NewRNG(cfg.Seed)
	// Start every node first (ephemeral ports must be known before
	// neighbours can be wired).
	for i, spec := range cfg.Specs {
		hw, ok := pace.LookupHardware(spec.Hardware)
		if !ok {
			f.closeAll()
			return nil, fmt.Errorf("transport: resource %q: unknown hardware %q", spec.Name, spec.Hardware)
		}
		var pol scheduler.Policy
		switch cfg.Policy {
		case "ga":
			pol = scheduler.NewGAPolicy(ga.DefaultConfig(), master.Split())
		case "fifo":
			pol = scheduler.NewFIFOPolicy()
		default:
			f.closeAll()
			return nil, fmt.Errorf("transport: unknown policy %q", cfg.Policy)
		}
		local, err := scheduler.NewLocal(scheduler.Config{
			Name: spec.Name, HW: hw, NumNodes: spec.Nodes, Policy: pol,
			Engine: pace.NewEngine(), Environments: spec.Environments,
		})
		if err != nil {
			f.closeAll()
			return nil, err
		}
		a, err := agent.New(local, pace.NewEngine())
		if err != nil {
			f.closeAll()
			return nil, err
		}
		if cfg.PullPeriod > 0 {
			a.PullPeriod = cfg.PullPeriod
		}
		node, err := NewNode(a, cfg.Library)
		if err != nil {
			f.closeAll()
			return nil, err
		}
		node.SetPushEnabled(cfg.Push)
		node.SetTelemetry(cfg.Telemetry)
		node.SetServerConfig(cfg.Server)
		addr := fmt.Sprintf("%s:0", cfg.Host)
		if cfg.BasePort > 0 {
			addr = fmt.Sprintf("%s:%d", cfg.Host, cfg.BasePort+i)
		}
		if err := node.Start(addr); err != nil {
			f.closeAll()
			return nil, err
		}
		f.nodes[spec.Name] = node
		f.order = append(f.order, spec.Name)
	}
	// Wire the hierarchy over the wire protocol. Each node's outbound
	// exchanges go through one client — pooled unless NoPool — labelled
	// (when instrumented) with the *calling* node's name, so retry storms
	// and pool churn are attributable to the node experiencing them.
	clients := map[string]*Client{}
	clientFor := func(name string) *Client {
		c, ok := clients[name]
		if !ok {
			if cfg.NoPool {
				c = NewClient()
			} else {
				pool := cfg.Pool
				pool.Metrics = NewPoolMetrics(cfg.Telemetry, "resource", name)
				c = NewPooledClient(pool)
			}
			c.Metrics = NewClientMetrics(cfg.Telemetry, "resource", name)
			clients[name] = c
			f.clients = append(f.clients, c)
		}
		return c
	}
	for _, spec := range cfg.Specs {
		if spec.Parent == "" {
			continue
		}
		child, parent := f.nodes[spec.Name], f.nodes[spec.Parent]
		if parent == nil {
			f.closeAll()
			return nil, fmt.Errorf("transport: resource %q: unknown parent %q", spec.Name, spec.Parent)
		}
		up := &RemotePeer{Name: spec.Parent, Addr: parent.Addr(), Lib: cfg.Library, Client: clientFor(spec.Name)}
		if err := child.SetUpper(up); err != nil {
			f.closeAll()
			return nil, err
		}
		down := &RemotePeer{Name: spec.Name, Addr: child.Addr(), Lib: cfg.Library, Client: clientFor(spec.Parent)}
		if err := parent.AddLower(down); err != nil {
			f.closeAll()
			return nil, err
		}
	}
	if cfg.Telemetry != nil {
		cfg.Telemetry.Gauge("grid_agents").Set(float64(len(cfg.Specs)))
	}
	return f, nil
}

// Registry returns the telemetry registry the farm was started with,
// nil when uninstrumented.
func (f *Farm) Registry() *telemetry.Registry { return f.reg }

// Healthz reports farm liveness for the /healthz endpoint: an error
// when any node's listener is gone.
func (f *Farm) Healthz() error {
	for _, name := range f.order {
		n := f.nodes[name]
		if n.srv == nil {
			return fmt.Errorf("node %s has no listener", name)
		}
	}
	return nil
}

func (f *Farm) closeAll() {
	for _, n := range f.nodes {
		_ = n.Close()
	}
	f.closeClients()
}

func (f *Farm) closeClients() {
	for _, c := range f.clients {
		if c.Pool != nil {
			c.Pool.Close()
		}
	}
}

// Close shuts every node down and retires the pooled connections.
func (f *Farm) Close() error {
	var first error
	for _, name := range f.order {
		if err := f.nodes[name].Close(); err != nil && first == nil {
			first = err
		}
	}
	f.closeClients()
	return first
}

// Node returns the named node.
func (f *Farm) Node(name string) (*Node, bool) {
	n, ok := f.nodes[name]
	return n, ok
}

// Addr returns the named node's listen address.
func (f *Farm) Addr(name string) (string, bool) {
	n, ok := f.nodes[name]
	if !ok {
		return "", false
	}
	return n.Addr(), true
}

// Names returns the resource names in start order.
func (f *Farm) Names() []string {
	out := make([]string, len(f.order))
	copy(out, f.order)
	return out
}

// Describe lists the farm's endpoints, sorted by name.
func (f *Farm) Describe() string {
	names := f.Names()
	sort.Strings(names)
	s := ""
	for _, n := range names {
		s += fmt.Sprintf("%-6s %s\n", n, f.nodes[n].Addr())
	}
	return s
}
