package trace

import (
	"encoding/csv"
	"io"
	"strconv"
)

// CSVSink streams events to CSV in virtual-time order without retaining
// the run's history. Record order is not time order — completions are
// recorded at promotion carrying future end times — so the sink holds a
// small reorder buffer (a min-heap on (Time, Seq)) and flushes rows only
// once the grid's Advance watermark proves nothing earlier can still
// arrive. The output is byte-identical to Recorder.WriteCSV over the same
// events, but memory is bounded by the in-flight window instead of the
// run length: a 1M-request trace streams to disk as it happens.
type CSVSink struct {
	w      *csv.Writer
	heap   csvHeap
	mark   float64
	marked bool
	err    error
	peak   int
}

// NewCSVSink writes the CSV header and returns the sink. Attach it with
// Recorder.AddSink; call Close once the run has drained.
func NewCSVSink(w io.Writer) *CSVSink {
	s := &CSVSink{w: csv.NewWriter(w)}
	s.err = s.w.Write([]string{"seq", "time", "kind", "request", "agent", "resource", "task", "app", "detail"})
	return s
}

// Record buffers one event. Events stamped before the current watermark
// (completions recorded early, then overtaken by a clock advance) never
// happen: Advance's contract is that all later records have Time >= mark.
func (s *CSVSink) Record(ev Event) {
	s.heap.push(ev)
	if len(s.heap) > s.peak {
		s.peak = len(s.heap)
	}
}

// Advance flushes every buffered event with Time < now: the caller
// promises all future Record calls carry Time >= now.
func (s *CSVSink) Advance(now float64) {
	if s.marked && now <= s.mark {
		return
	}
	s.mark, s.marked = now, true
	for len(s.heap) > 0 && s.heap[0].Time < now {
		s.writeRow(s.heap.pop())
	}
}

// Close drains the reorder buffer, appends the dropped-events trailer
// (when dropped > 0, mirroring WriteCSV) and flushes. It returns the
// first error encountered over the sink's lifetime.
func (s *CSVSink) Close(dropped uint64) error {
	for len(s.heap) > 0 {
		s.writeRow(s.heap.pop())
	}
	if dropped > 0 {
		trailer := []string{"dropped", strconv.FormatUint(dropped, 10), "", "", "", "", "", "", ""}
		if s.err == nil {
			s.err = s.w.Write(trailer)
		}
	}
	s.w.Flush()
	if s.err == nil {
		s.err = s.w.Error()
	}
	return s.err
}

// PeakBuffered reports the largest reorder buffer seen — evidence that
// streaming kept memory at the in-flight window, not the run length.
func (s *CSVSink) PeakBuffered() int { return s.peak }

func (s *CSVSink) writeRow(ev Event) {
	if s.err != nil {
		return
	}
	req := ""
	if ev.Kind.TaskBearing() {
		req = strconv.FormatUint(ev.ReqID, 10)
	}
	s.err = s.w.Write([]string{
		strconv.FormatUint(ev.Seq, 10),
		strconv.FormatFloat(ev.Time, 'f', 3, 64),
		string(ev.Kind),
		req,
		ev.Agent,
		ev.Resource,
		strconv.Itoa(ev.TaskID),
		ev.App,
		ev.Detail,
	})
}

// csvHeap is a min-heap of events on (Time, Seq) — the same total order
// eventsByTime sorts by, so streamed rows match the batch export exactly.
type csvHeap []Event

func (h csvHeap) less(i, j int) bool {
	if h[i].Time != h[j].Time {
		return h[i].Time < h[j].Time
	}
	return h[i].Seq < h[j].Seq
}

func (h *csvHeap) push(ev Event) {
	*h = append(*h, ev)
	q := *h
	i := len(q) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(i, parent) {
			break
		}
		q[i], q[parent] = q[parent], q[i]
		i = parent
	}
}

func (h *csvHeap) pop() Event {
	q := *h
	top := q[0]
	n := len(q) - 1
	q[0] = q[n]
	q[n] = Event{}
	q = q[:n]
	*h = q
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && q.less(l, smallest) {
			smallest = l
		}
		if r < n && q.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			break
		}
		q[i], q[smallest] = q[smallest], q[i]
		i = smallest
	}
	return top
}
