// Package trace records the lifecycle of task requests through the grid —
// arrival, discovery dispatch, execution start and completion — the
// observability layer a production deployment of the paper's system would
// need. Events live in a bounded ring so long experiments cannot exhaust
// memory; the recorder is safe for concurrent use (the networked daemons
// handle requests from multiple connections).
package trace

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync"
)

// Kind classifies a lifecycle event.
type Kind string

// Lifecycle events.
const (
	KindArrive   Kind = "arrive"   // request entered the grid at an agent
	KindDispatch Kind = "dispatch" // discovery placed the task on a resource
	KindStart    Kind = "start"    // the task began execution
	KindComplete Kind = "complete" // the task completed
	KindFail     Kind = "fail"     // the request could not be placed

	// Fault-run lifecycle events (internal/fault): an agent leaving or
	// rejoining the grid, and a queued task moved off a crashed resource.
	KindPeerDown   Kind = "peerdown"   // an agent crashed / became unreachable
	KindPeerUp     Kind = "peerup"     // a crashed agent recovered
	KindRedispatch Kind = "redispatch" // a pending task was re-placed elsewhere
)

// Event is one lifecycle observation.
type Event struct {
	Seq      uint64  // monotone sequence number, assigned by the recorder
	Time     float64 // virtual time
	Kind     Kind
	Agent    string // agent involved (arrival/dispatch)
	Resource string // resource involved (dispatch/start/complete)
	TaskID   int
	App      string
	Detail   string // free-form context ("fallback", "hops=2", error text)
}

func (e Event) String() string {
	s := fmt.Sprintf("t=%8.2f %-9s", e.Time, e.Kind)
	if e.App != "" {
		s += " app=" + e.App
	}
	if e.TaskID != 0 {
		s += fmt.Sprintf(" task=%d", e.TaskID)
	}
	if e.Agent != "" {
		s += " agent=" + e.Agent
	}
	if e.Resource != "" {
		s += " resource=" + e.Resource
	}
	if e.Detail != "" {
		s += " (" + e.Detail + ")"
	}
	return s
}

// DefaultCapacity bounds the ring when none is given.
const DefaultCapacity = 65536

// Recorder is a bounded, thread-safe event ring.
type Recorder struct {
	mu      sync.Mutex
	events  []Event
	next    int // ring write position once full
	full    bool
	cap     int
	seq     uint64
	dropped uint64
}

// NewRecorder returns a recorder holding up to capacity events; capacity
// <= 0 selects DefaultCapacity.
func NewRecorder(capacity int) *Recorder {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Recorder{cap: capacity}
}

// Record appends an event, evicting the oldest when the ring is full.
func (r *Recorder) Record(ev Event) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.seq++
	ev.Seq = r.seq
	if !r.full {
		r.events = append(r.events, ev)
		if len(r.events) == r.cap {
			r.full = true
		}
		return
	}
	r.dropped++
	r.events[r.next] = ev
	r.next = (r.next + 1) % r.cap
}

// Len returns the number of retained events.
func (r *Recorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.events)
}

// Dropped returns how many events were evicted from the ring.
func (r *Recorder) Dropped() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}

// Events returns the retained events in record order.
func (r *Recorder) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Event, 0, len(r.events))
	if r.full {
		out = append(out, r.events[r.next:]...)
		out = append(out, r.events[:r.next]...)
	} else {
		out = append(out, r.events...)
	}
	return out
}

// TaskHistory returns the events for one task on one resource, in order.
func (r *Recorder) TaskHistory(resource string, taskID int) []Event {
	var out []Event
	for _, ev := range r.Events() {
		if ev.TaskID == taskID && (ev.Resource == resource || ev.Resource == "") {
			out = append(out, ev)
		}
	}
	return out
}

// CountByKind tallies retained events.
func (r *Recorder) CountByKind() map[Kind]int {
	out := map[Kind]int{}
	for _, ev := range r.Events() {
		out[ev.Kind]++
	}
	return out
}

// WriteText renders the retained events one per line.
func (r *Recorder) WriteText(w io.Writer) error {
	for _, ev := range r.Events() {
		if _, err := fmt.Fprintln(w, ev.String()); err != nil {
			return err
		}
	}
	return nil
}

// WriteCSV exports the retained events as CSV with a header row.
func (r *Recorder) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"seq", "time", "kind", "agent", "resource", "task", "app", "detail"}); err != nil {
		return err
	}
	for _, ev := range r.Events() {
		rec := []string{
			strconv.FormatUint(ev.Seq, 10),
			strconv.FormatFloat(ev.Time, 'f', 3, 64),
			string(ev.Kind),
			ev.Agent,
			ev.Resource,
			strconv.Itoa(ev.TaskID),
			ev.App,
			ev.Detail,
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// Summary aggregates per-kind counts into a stable one-line description.
func (r *Recorder) Summary() string {
	counts := r.CountByKind()
	kinds := make([]string, 0, len(counts))
	for k := range counts {
		kinds = append(kinds, string(k))
	}
	sort.Strings(kinds)
	s := fmt.Sprintf("%d events", r.Len())
	for _, k := range kinds {
		s += fmt.Sprintf(", %s=%d", k, counts[Kind(k)])
	}
	if d := r.Dropped(); d > 0 {
		s += fmt.Sprintf(", %d dropped", d)
	}
	return s
}
