// Package trace records the lifecycle of task requests through the grid —
// arrival, discovery dispatch, execution start and completion — the
// observability layer a production deployment of the paper's system would
// need. Events live in a bounded ring so long experiments cannot exhaust
// memory; the recorder is safe for concurrent use (the networked daemons
// handle requests from multiple connections).
package trace

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync"
)

// Kind classifies a lifecycle event.
type Kind string

// Lifecycle events.
const (
	KindArrive   Kind = "arrive"   // request entered the grid at an agent
	KindDispatch Kind = "dispatch" // discovery placed the task on a resource
	KindStart    Kind = "start"    // the task began execution
	KindComplete Kind = "complete" // the task completed
	KindFail     Kind = "fail"     // the request could not be placed

	// Fault-run lifecycle events (internal/fault): an agent leaving or
	// rejoining the grid, and a queued task moved off a crashed resource.
	KindPeerDown   Kind = "peerdown"   // an agent crashed / became unreachable
	KindPeerUp     Kind = "peerup"     // a crashed agent recovered
	KindRedispatch Kind = "redispatch" // a pending task was re-placed elsewhere

	// Degradation events (internal/fault): a resource slowing down
	// without leaving the grid, and its later restoration.
	KindDegrade Kind = "degrade" // a resource started running slower than predicted
	KindRestore Kind = "restore" // a degraded resource returned to predicted speed

	// Migration events (internal/core migration policy): a drift-breached
	// scheduler offering an unstarted task back to the grid, the task's
	// removal from the origin queue once a better placement accepted it,
	// and the re-dispatch completing the chain. Every migrate-redispatch
	// is preceded by a migrate-withdraw for the same request, and the
	// audit holds each chain to exactly one final execution.
	KindMigrateOffer      Kind = "migrate-offer"      // origin offered an unstarted task for re-placement
	KindMigrateWithdraw   Kind = "migrate-withdraw"   // the offered task left the origin queue
	KindMigrateRedispatch Kind = "migrate-redispatch" // the offered task was re-placed elsewhere

	// Reservation events (internal/reserve two-phase commit): a node×time
	// window held on a resource, its settlement into a guaranteed-start
	// task, its cancellation, or its TTL expiry. These are booking-level
	// events, not request lifecycle stages — a release or expiry can
	// happen before any request is bound to the booking — so they are not
	// TaskBearing; the audit joins them on the resv= key in Detail.
	KindReserveHold    Kind = "reserve-hold"    // a window was held (phase one)
	KindReserveConfirm Kind = "reserve-confirm" // a held window became a guaranteed-start task
	KindReserveRelease Kind = "reserve-release" // a held or confirmed window was cancelled
	KindReserveExpire  Kind = "reserve-expire"  // a hold outlived its TTL unconfirmed

	// Dynamic-hierarchy events (internal/membership): agents joining and
	// leaving the tree on the virtual clock, and the rebalancer's
	// propose→detach→attach chain moving a subtree under a less-loaded
	// parent. These are grid-level events, not request lifecycle stages,
	// so they are not TaskBearing; a leaving agent's queue drain re-uses
	// the migrate-* chain, which keeps it under the audit's existing
	// no-loss/no-double-run proof. The audit additionally holds every
	// rehome-detach to a same-instant rehome-attach and rejects any
	// dispatch to (or start on) a resource after its leave event.
	KindJoin          Kind = "join"           // an agent attached to the live tree
	KindLeave         Kind = "leave"          // an agent gracefully left the tree
	KindRehomePropose Kind = "rehome-propose" // the rebalancer proposed moving a subtree
	KindRehomeDetach  Kind = "rehome-detach"  // the moved subtree left its old parent
	KindRehomeAttach  Kind = "rehome-attach"  // the moved subtree attached under its new parent
)

// TaskBearing reports whether events of this kind describe the lifecycle
// of one request (as opposed to grid-level events such as peerdown).
func (k Kind) TaskBearing() bool {
	switch k {
	case KindArrive, KindDispatch, KindStart, KindComplete, KindFail, KindRedispatch,
		KindMigrateOffer, KindMigrateWithdraw, KindMigrateRedispatch:
		return true
	}
	return false
}

// Event is one lifecycle observation.
type Event struct {
	Seq  uint64  // monotone sequence number, assigned by the recorder
	Time float64 // virtual time
	Kind Kind
	// ReqID is the grid-wide request identity minted at arrival
	// (core.SubmitAt). It is the join key across every lifecycle stage:
	// scheduler-local task IDs restart at 1 on each resource, so TaskID
	// alone cannot correlate events from different resources.
	ReqID    uint64
	Agent    string // agent involved (arrival/dispatch)
	Resource string // resource involved (dispatch/start/complete)
	TaskID   int    // scheduler-local task ID on Resource (secondary key)
	App      string
	Detail   string // free-form context ("fallback", "hops=2", error text)
}

func (e Event) String() string {
	s := fmt.Sprintf("t=%8.2f %-9s", e.Time, e.Kind)
	if e.Kind.TaskBearing() {
		s += fmt.Sprintf(" req=%d", e.ReqID)
	}
	if e.App != "" {
		s += " app=" + e.App
	}
	if e.TaskID != 0 {
		s += fmt.Sprintf(" task=%d", e.TaskID)
	}
	if e.Agent != "" {
		s += " agent=" + e.Agent
	}
	if e.Resource != "" {
		s += " resource=" + e.Resource
	}
	if e.Detail != "" {
		s += " (" + e.Detail + ")"
	}
	return s
}

// Sink consumes lifecycle events as they are recorded. The recorder feeds
// its sinks inline, under its lock, with the sequence number already
// assigned — a sink sees exactly the stream a later Events() call would
// return, but one event at a time, so a 1M-request trace can stream to
// disk without retaining the history.
type Sink interface {
	Record(ev Event)
}

// Advancer is implemented by sinks that buffer out-of-order events (record
// order is not virtual-time order — completions carry future end times).
// Advance(now) promises that every event recorded from here on has
// Time >= now, letting the sink flush everything earlier. The grid calls
// it after each clock advance; see core.advanceAll.
type Advancer interface {
	Advance(now float64)
}

// DefaultCapacity bounds the ring when none is given.
const DefaultCapacity = 65536

// Recorder is a bounded, thread-safe event ring.
type Recorder struct {
	mu      sync.Mutex
	events  []Event
	next    int // ring write position once full
	full    bool
	cap     int
	seq     uint64
	dropped uint64
	retain  bool
	sinks   []Sink
}

// NewRecorder returns a recorder holding up to capacity events; capacity
// <= 0 selects DefaultCapacity.
func NewRecorder(capacity int) *Recorder {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Recorder{cap: capacity, retain: true}
}

// AddSink attaches a sink; every subsequent Record feeds it (with Seq
// assigned) before the ring is touched.
func (r *Recorder) AddSink(s Sink) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.sinks = append(r.sinks, s)
}

// SetRetention toggles the ring. With retention off the recorder still
// assigns sequence numbers and feeds its sinks, but retains nothing —
// the mode for mega-grid runs where the history streams straight to a
// CSVSink and holding it would defeat bounded memory. Events() is empty
// and Dropped() zero in this mode: nothing retained, nothing evicted.
func (r *Recorder) SetRetention(on bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.retain = on
}

// Retaining reports whether the ring currently retains events (see
// SetRetention).
func (r *Recorder) Retaining() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.retain
}

// Capacity returns the ring capacity.
func (r *Recorder) Capacity() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.cap
}

// Advance forwards a virtual-time watermark to every attached sink that
// buffers on time order (see Advancer).
func (r *Recorder) Advance(now float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, s := range r.sinks {
		if a, ok := s.(Advancer); ok {
			a.Advance(now)
		}
	}
}

// Record appends an event, evicting the oldest when the ring is full.
func (r *Recorder) Record(ev Event) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.seq++
	ev.Seq = r.seq
	for _, s := range r.sinks {
		s.Record(ev)
	}
	if !r.retain {
		return
	}
	if !r.full {
		r.events = append(r.events, ev)
		if len(r.events) == r.cap {
			r.full = true
		}
		return
	}
	r.dropped++
	r.events[r.next] = ev
	r.next = (r.next + 1) % r.cap
}

// Len returns the number of retained events.
func (r *Recorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.events)
}

// Dropped returns how many events were evicted from the ring.
func (r *Recorder) Dropped() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}

// Events returns the retained events in record order.
func (r *Recorder) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Event, 0, len(r.events))
	if r.full {
		out = append(out, r.events[r.next:]...)
		out = append(out, r.events[:r.next]...)
	} else {
		out = append(out, r.events...)
	}
	return out
}

// TaskHistory returns the lifecycle events of one request, in record
// order. It is keyed on the grid-wide request ID: the former
// (resource, taskID) key could not distinguish same-numbered tasks on
// different resources, because scheduler-local IDs restart at 1 on every
// resource.
func (r *Recorder) TaskHistory(reqID uint64) []Event {
	var out []Event
	for _, ev := range r.Events() {
		if ev.ReqID == reqID && ev.Kind.TaskBearing() {
			out = append(out, ev)
		}
	}
	return out
}

// CountByKind tallies retained events.
func (r *Recorder) CountByKind() map[Kind]int {
	out := map[Kind]int{}
	for _, ev := range r.Events() {
		out[ev.Kind]++
	}
	return out
}

// eventsByTime returns the retained events sorted by virtual time (Seq
// breaks ties). Record order is not virtual-time order: completions are
// recorded when a task is promoted into execution, carrying their future
// completion instant, so exports sorted this way read chronologically.
func (r *Recorder) eventsByTime() []Event {
	out := r.Events()
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Time != out[j].Time {
			return out[i].Time < out[j].Time
		}
		return out[i].Seq < out[j].Seq
	})
	return out
}

// WriteText renders the retained events one per line, in virtual-time
// order.
func (r *Recorder) WriteText(w io.Writer) error {
	for _, ev := range r.eventsByTime() {
		if _, err := fmt.Fprintln(w, ev.String()); err != nil {
			return err
		}
	}
	return nil
}

// WriteCSV exports the retained events as CSV with a header row, in
// virtual-time order. The request column is the grid-wide request ID
// (empty for non-task events such as peerdown); task is the
// scheduler-local ID on the resource. When the ring evicted events, a
// final trailer row ("dropped", <count>) makes the loss visible in the
// file itself — a trace missing its oldest events must not pass for a
// complete one.
func (r *Recorder) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"seq", "time", "kind", "request", "agent", "resource", "task", "app", "detail"}); err != nil {
		return err
	}
	for _, ev := range r.eventsByTime() {
		req := ""
		if ev.Kind.TaskBearing() {
			req = strconv.FormatUint(ev.ReqID, 10)
		}
		rec := []string{
			strconv.FormatUint(ev.Seq, 10),
			strconv.FormatFloat(ev.Time, 'f', 3, 64),
			string(ev.Kind),
			req,
			ev.Agent,
			ev.Resource,
			strconv.Itoa(ev.TaskID),
			ev.App,
			ev.Detail,
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	if d := r.Dropped(); d > 0 {
		trailer := []string{"dropped", strconv.FormatUint(d, 10), "", "", "", "", "", "", ""}
		if err := cw.Write(trailer); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// Summary aggregates per-kind counts into a stable one-line description.
func (r *Recorder) Summary() string {
	counts := r.CountByKind()
	kinds := make([]string, 0, len(counts))
	for k := range counts {
		kinds = append(kinds, string(k))
	}
	sort.Strings(kinds)
	s := fmt.Sprintf("%d events", r.Len())
	for _, k := range kinds {
		s += fmt.Sprintf(", %s=%d", k, counts[Kind(k)])
	}
	if d := r.Dropped(); d > 0 {
		s += fmt.Sprintf(", %d dropped", d)
	}
	return s
}
