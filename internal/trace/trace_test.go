package trace

import (
	"bytes"
	"encoding/csv"
	"strings"
	"sync"
	"testing"
)

func TestRecorderBasics(t *testing.T) {
	r := NewRecorder(10)
	r.Record(Event{Time: 1, Kind: KindArrive, Agent: "S1", App: "fft"})
	r.Record(Event{Time: 1, Kind: KindDispatch, Agent: "S1", Resource: "S2", TaskID: 7, App: "fft"})
	if r.Len() != 2 {
		t.Fatalf("len = %d", r.Len())
	}
	evs := r.Events()
	if evs[0].Seq != 1 || evs[1].Seq != 2 {
		t.Fatalf("sequence numbers: %v %v", evs[0].Seq, evs[1].Seq)
	}
	if evs[0].Kind != KindArrive || evs[1].Resource != "S2" {
		t.Fatalf("events: %+v", evs)
	}
	if r.Dropped() != 0 {
		t.Fatal("phantom drops")
	}
}

func TestRecorderRingEviction(t *testing.T) {
	r := NewRecorder(4)
	for i := 1; i <= 10; i++ {
		r.Record(Event{Time: float64(i), Kind: KindStart, TaskID: i})
	}
	if r.Len() != 4 {
		t.Fatalf("len = %d, want 4", r.Len())
	}
	if r.Dropped() != 6 {
		t.Fatalf("dropped = %d, want 6", r.Dropped())
	}
	evs := r.Events()
	for i, ev := range evs {
		if ev.TaskID != 7+i {
			t.Fatalf("ring kept wrong events: %+v", evs)
		}
	}
	// Order within the ring must stay chronological.
	for i := 1; i < len(evs); i++ {
		if evs[i].Seq <= evs[i-1].Seq {
			t.Fatalf("out-of-order events: %+v", evs)
		}
	}
}

func TestRecorderDefaultCapacity(t *testing.T) {
	r := NewRecorder(0)
	if r.cap != DefaultCapacity {
		t.Fatalf("cap = %d", r.cap)
	}
}

func TestTaskHistory(t *testing.T) {
	// Two resources each run their own local task 1; only the grid-wide
	// request ID tells the lifecycles apart. The old (resource, taskID)
	// key could not follow a request across resources — its "" wildcard
	// matched same-numbered tasks from other resources.
	r := NewRecorder(100)
	r.Record(Event{Time: 0, Kind: KindArrive, ReqID: 1, App: "cpi"})
	r.Record(Event{Time: 0, Kind: KindDispatch, ReqID: 1, Resource: "S3", TaskID: 1})
	r.Record(Event{Time: 0, Kind: KindArrive, ReqID: 2, App: "fft"})
	r.Record(Event{Time: 0, Kind: KindDispatch, ReqID: 2, Resource: "S4", TaskID: 1})
	r.Record(Event{Time: 1, Kind: KindStart, ReqID: 1, Resource: "S3", TaskID: 1})
	r.Record(Event{Time: 1, Kind: KindStart, ReqID: 2, Resource: "S4", TaskID: 1})
	r.Record(Event{Time: 2, Kind: KindPeerDown, Agent: "S4"}) // not task-bearing: never in a history
	r.Record(Event{Time: 5, Kind: KindComplete, ReqID: 1, Resource: "S3", TaskID: 1})
	r.Record(Event{Time: 6, Kind: KindComplete, ReqID: 2, Resource: "S4", TaskID: 1})

	hist := r.TaskHistory(1)
	if len(hist) != 4 {
		t.Fatalf("history = %+v", hist)
	}
	if hist[0].Kind != KindArrive || hist[3].Kind != KindComplete {
		t.Fatalf("history order: %+v", hist)
	}
	for _, ev := range hist {
		if ev.ReqID != 1 {
			t.Fatalf("foreign event leaked into history: %+v", ev)
		}
		if ev.Kind != KindArrive && ev.Resource != "S3" {
			t.Fatalf("request 1 never visited %q: %+v", ev.Resource, ev)
		}
	}
	if other := r.TaskHistory(2); len(other) != 4 {
		t.Fatalf("request 2 history = %+v", other)
	}
	if ghost := r.TaskHistory(99); len(ghost) != 0 {
		t.Fatalf("unknown request has history: %+v", ghost)
	}
}

func TestCountByKindAndSummary(t *testing.T) {
	r := NewRecorder(100)
	r.Record(Event{Kind: KindArrive})
	r.Record(Event{Kind: KindArrive})
	r.Record(Event{Kind: KindFail})
	counts := r.CountByKind()
	if counts[KindArrive] != 2 || counts[KindFail] != 1 {
		t.Fatalf("counts: %v", counts)
	}
	s := r.Summary()
	if !strings.Contains(s, "3 events") || !strings.Contains(s, "arrive=2") {
		t.Fatalf("summary: %q", s)
	}
}

func TestWriteTextAndCSV(t *testing.T) {
	// Completions are recorded at promote time with their future
	// completion instant, so record order is not virtual-time order;
	// exports must sort. The arrive row has TaskID 0 (no scheduler-local
	// ID exists yet) and must still carry its request ID.
	r := NewRecorder(100)
	r.Record(Event{Time: 1.5, Kind: KindDispatch, ReqID: 9, Agent: "S1", Resource: "S2", TaskID: 3, App: "fft", Detail: "hops=1"})
	r.Record(Event{Time: 8, Kind: KindComplete, ReqID: 9, Resource: "S2", TaskID: 3, App: "fft"})
	r.Record(Event{Time: 2, Kind: KindStart, ReqID: 9, Resource: "S2", TaskID: 3, App: "fft"})
	r.Record(Event{Time: 1, Kind: KindArrive, ReqID: 9, Agent: "S1", App: "fft"})

	var txt bytes.Buffer
	if err := r.WriteText(&txt); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(txt.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("text: %q", txt.String())
	}
	for i, want := range []string{"arrive", "dispatch", "start", "complete"} {
		if !strings.Contains(lines[i], want) {
			t.Fatalf("line %d = %q, want kind %q (text must be in virtual-time order)", i, lines[i], want)
		}
		if !strings.Contains(lines[i], "req=9") {
			t.Fatalf("line %d = %q drops the request ID", i, lines[i])
		}
	}
	if !strings.Contains(lines[1], "resource=S2") {
		t.Fatalf("text: %q", txt.String())
	}

	var buf bytes.Buffer
	if err := r.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 || rows[0][0] != "seq" || rows[0][3] != "request" {
		t.Fatalf("csv rows: %v", rows)
	}
	if rows[1][2] != "arrive" || rows[1][3] != "9" || rows[2][2] != "dispatch" || rows[2][5] != "S2" {
		t.Fatalf("csv rows out of virtual-time order or missing request column: %v", rows)
	}
	if rows[4][2] != "complete" {
		t.Fatalf("csv rows: %v", rows)
	}
}

func TestRecorderConcurrent(t *testing.T) {
	r := NewRecorder(1000)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				r.Record(Event{Time: float64(i), Kind: KindStart, TaskID: g*1000 + i})
			}
		}(g)
	}
	wg.Wait()
	if r.Len() != 1000 {
		t.Fatalf("len = %d", r.Len())
	}
	if r.Dropped() != 3000 {
		t.Fatalf("dropped = %d", r.Dropped())
	}
	// Sequence numbers must be unique.
	seen := map[uint64]bool{}
	for _, ev := range r.Events() {
		if seen[ev.Seq] {
			t.Fatalf("duplicate seq %d", ev.Seq)
		}
		seen[ev.Seq] = true
	}
}

func TestEventString(t *testing.T) {
	ev := Event{Time: 2, Kind: KindComplete, Resource: "S9", TaskID: 4, App: "jacobi", Detail: "deadline_met=true"}
	s := ev.String()
	for _, want := range []string{"complete", "app=jacobi", "task=4", "resource=S9", "(deadline_met=true)"} {
		if !strings.Contains(s, want) {
			t.Fatalf("String() = %q missing %q", s, want)
		}
	}
	if zero := (Event{}).String(); !strings.Contains(zero, "t=") {
		t.Fatalf("zero event String() = %q", zero)
	}
}

func TestDroppedSurfacedInSummaryAndCSV(t *testing.T) {
	// Capacity 2, three events: the ring evicts the oldest and counts it.
	r := NewRecorder(2)
	r.Record(Event{Time: 1, Kind: KindArrive, ReqID: 1})
	r.Record(Event{Time: 2, Kind: KindArrive, ReqID: 2})
	r.Record(Event{Time: 3, Kind: KindArrive, ReqID: 3})
	if r.Dropped() != 1 {
		t.Fatalf("Dropped = %d, want 1", r.Dropped())
	}
	if s := r.Summary(); !strings.Contains(s, "1 dropped") {
		t.Fatalf("summary hides the drop: %q", s)
	}

	var buf bytes.Buffer
	if err := r.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	last := lines[len(lines)-1]
	if !strings.HasPrefix(last, "dropped,1") {
		t.Fatalf("CSV missing dropped trailer, last line: %q", last)
	}
	// header + 2 retained events + trailer
	if len(lines) != 4 {
		t.Fatalf("CSV has %d lines: %q", len(lines), buf.String())
	}
}

func TestNoDroppedTrailerWhenComplete(t *testing.T) {
	r := NewRecorder(10)
	r.Record(Event{Time: 1, Kind: KindArrive, ReqID: 1})
	if s := r.Summary(); strings.Contains(s, "dropped") {
		t.Fatalf("summary reports drops on a complete trace: %q", s)
	}
	var buf bytes.Buffer
	if err := r.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "dropped") {
		t.Fatalf("CSV has a trailer on a complete trace:\n%s", buf.String())
	}
}
