// Package fault drives deterministic failure scenarios against the
// simulated grid: agent crashes and recoveries, link partitions between
// peers, and lossy links that drop a fraction of exchanges. The paper's
// resource-monitoring module (§2.2) only handles node outages inside one
// cluster; this package injects the wide-area failures the agent layer
// (§3) silently assumes away, so the defensive machinery — circuit
// breakers, advertisement TTLs, re-dispatch — can be exercised and
// measured (Experiment 4).
//
// Everything is scheduled in virtual time on the internal/sim clock and
// every random decision comes from a seeded generator, so a fault run is
// exactly as reproducible as a fault-free one.
package fault

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Kind classifies a scheduled fault event.
type Kind string

// Fault event kinds.
const (
	// Crash takes an agent (and the resource it fronts) off the grid:
	// every exchange to or from it fails, and its unstarted tasks are
	// handed back to the grid for re-dispatch.
	Crash Kind = "crash"
	// Recover brings a crashed agent back; peers re-learn of it through
	// their next successful pull (the circuit-breaker probe).
	Recover Kind = "recover"
	// Cut severs the link between two agents in both directions while
	// leaving both agents alive (a network partition).
	Cut Kind = "cut"
	// Heal restores a cut link.
	Heal Kind = "heal"
	// Lossy sets the loss rate of a link: each exchange over it fails
	// independently with probability Rate (deterministic given the plan
	// seed). Rate 0 restores a reliable link.
	Lossy Kind = "lossy"
	// Degrade slows a resource without killing it: every task that
	// *starts* on the agent's local scheduler while the degradation is in
	// effect takes Factor times its predicted execution time. The agent
	// keeps exchanging and accepting work — which is exactly what makes
	// degradation more insidious than a crash: the PACE predictions
	// steering dispatch stay optimistic while observed performance
	// drifts, the condition the migration policy (core.MigrationPolicy)
	// exists to detect.
	Degrade Kind = "degrade"
	// Restore ends a degradation, returning actual execution times to
	// the predicted values.
	Restore Kind = "restore"
)

// Event is one scheduled state change of a fault plan.
type Event struct {
	At     float64 // virtual time the fault takes effect
	Kind   Kind
	Agent  string  // Crash/Recover/Degrade/Restore target
	A, B   string  // Cut/Heal/Lossy link endpoints
	Rate   float64 // Lossy loss probability in [0, 1]
	Factor float64 // Degrade execution-time multiplier, > 0 (3 = tasks run 3x slower)
}

func (e Event) String() string {
	switch e.Kind {
	case Crash, Recover, Restore:
		return fmt.Sprintf("t=%-6g %-7s %s", e.At, e.Kind, e.Agent)
	case Degrade:
		return fmt.Sprintf("t=%-6g %-7s %s factor=%g", e.At, e.Kind, e.Agent, e.Factor)
	case Lossy:
		return fmt.Sprintf("t=%-6g %-7s %s-%s rate=%g", e.At, e.Kind, e.A, e.B, e.Rate)
	default:
		return fmt.Sprintf("t=%-6g %-7s %s-%s", e.At, e.Kind, e.A, e.B)
	}
}

// Plan is a deterministic fault scenario: a set of events plus the seed
// for lossy-link decisions.
type Plan struct {
	Events []Event
	Seed   uint64 // lossy-link RNG seed (0 is a valid seed)
}

// Sorted returns the events ordered by time (stable for equal times, so
// the declaration order breaks ties deterministically).
func (p Plan) Sorted() []Event {
	out := make([]Event, len(p.Events))
	copy(out, p.Events)
	sort.SliceStable(out, func(i, j int) bool { return out[i].At < out[j].At })
	return out
}

// Validate checks every event against the set of known agent names.
func (p Plan) Validate(known map[string]bool) error {
	for i, ev := range p.Events {
		if ev.At < 0 {
			return fmt.Errorf("fault: event %d (%s) at negative time %g", i, ev.Kind, ev.At)
		}
		switch ev.Kind {
		case Crash, Recover:
			if !known[ev.Agent] {
				return fmt.Errorf("fault: event %d (%s) names unknown agent %q", i, ev.Kind, ev.Agent)
			}
		case Degrade, Restore:
			if !known[ev.Agent] {
				return fmt.Errorf("fault: event %d (%s) names unknown agent %q", i, ev.Kind, ev.Agent)
			}
			if ev.Kind == Degrade && ev.Factor <= 0 {
				return fmt.Errorf("fault: event %d degrades %s by non-positive factor %g", i, ev.Agent, ev.Factor)
			}
		case Cut, Heal, Lossy:
			if !known[ev.A] || !known[ev.B] {
				return fmt.Errorf("fault: event %d (%s) names unknown link %s-%s", i, ev.Kind, ev.A, ev.B)
			}
			if ev.A == ev.B {
				return fmt.Errorf("fault: event %d (%s) links %s to itself", i, ev.Kind, ev.A)
			}
			if ev.Kind == Lossy && (ev.Rate < 0 || ev.Rate > 1) {
				return fmt.Errorf("fault: event %d loss rate %g outside [0, 1]", i, ev.Rate)
			}
		default:
			return fmt.Errorf("fault: event %d has unknown kind %q", i, ev.Kind)
		}
	}
	return nil
}

// String renders the schedule one event per line, in time order.
func (p Plan) String() string {
	var b strings.Builder
	for _, ev := range p.Sorted() {
		fmt.Fprintln(&b, ev.String())
	}
	return b.String()
}

// DegradeWindow is one interval during which tasks starting on a
// resource run slower than predicted. To stays +Inf when the plan never
// restores the resource.
type DegradeWindow struct {
	From, To float64
	Factor   float64
}

// Covers reports whether a task starting at t falls in the window.
func (w DegradeWindow) Covers(t float64) bool { return t >= w.From && t < w.To }

// DegradeWindows derives the named agent's degradation intervals from
// the plan, in time order. The windows are a static function of the plan
// — unlike the live registry state they answer "was this resource
// degraded at time t" for any t, which is what the scheduler's slowdown
// hook needs (a task's slowdown is decided by its start time, not by
// whatever event happens to be processed next).
func (p Plan) DegradeWindows(agent string) []DegradeWindow {
	var out []DegradeWindow
	open := -1 // index into out of the unclosed window
	for _, ev := range p.Sorted() {
		if ev.Agent != agent {
			continue
		}
		switch ev.Kind {
		case Degrade:
			if open >= 0 {
				out[open].To = ev.At // a new factor supersedes the old one
			}
			out = append(out, DegradeWindow{From: ev.At, To: math.Inf(1), Factor: ev.Factor})
			open = len(out) - 1
		case Restore:
			if open >= 0 {
				out[open].To = ev.At
				open = -1
			}
		}
	}
	return out
}

// SlowdownAt returns the execution-time multiplier in effect for a task
// starting at time t on the named agent (1 when undegraded).
func (p Plan) SlowdownAt(agent string, t float64) float64 {
	for _, w := range p.DegradeWindows(agent) {
		if w.Covers(t) {
			return w.Factor
		}
	}
	return 1
}

// Degraded returns the distinct agents the plan ever degrades, sorted.
func (p Plan) Degraded() []string {
	seen := map[string]bool{}
	for _, ev := range p.Events {
		if ev.Kind == Degrade {
			seen[ev.Agent] = true
		}
	}
	out := make([]string, 0, len(seen))
	for n := range seen {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Crashed returns the distinct agents the plan ever crashes, sorted.
func (p Plan) Crashed() []string {
	seen := map[string]bool{}
	for _, ev := range p.Events {
		if ev.Kind == Crash {
			seen[ev.Agent] = true
		}
	}
	out := make([]string, 0, len(seen))
	for n := range seen {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
