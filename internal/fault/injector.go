package fault

import (
	"fmt"

	"repro/internal/agent"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Stats counts what the injector did to (and rescued from) the grid.
type Stats struct {
	Crashes      int // crash events applied
	Recoveries   int // recover events applied
	Degrades     int // degrade events applied
	Restores     int // restore events applied
	Redispatched int // unstarted tasks moved off crashed resources
	Lost         int // rescued tasks no reachable resource could take
	Rerouted     int // arrivals redirected away from a crashed agent
	LossyDrops   int // exchanges dropped by lossy links
}

// Injector binds a fault plan to an agent hierarchy: Schedule puts every
// event on the simulator's queue, and applying a crash performs the
// grid's recovery duty — the crashed resource's unstarted tasks are
// handed to the nearest live ancestor, whose eq. 10 discovery re-places
// them (counting a re-dispatch), so no accepted task is silently lost.
//
// The injector stands in for the per-resource recovery daemon a
// production grid would run; the paper has no such component because its
// experiments never kill an agent.
type Injector struct {
	plan Plan
	reg  *Registry
	hier *agent.Hierarchy
	rec  trace.Sink // optional lifecycle event sink

	// Env is the execution environment re-dispatched requests carry;
	// the case-study workload uses only "test".
	Env string

	stats Stats
}

// NewInjector validates the plan against the hierarchy and returns an
// injector; rec may be nil (pass an untyped nil, not a nil concrete
// pointer in a Sink variable).
func NewInjector(plan Plan, hier *agent.Hierarchy, rec trace.Sink) (*Injector, error) {
	if hier == nil {
		return nil, fmt.Errorf("fault: injector needs a hierarchy")
	}
	known := map[string]bool{}
	for _, name := range hier.Names() {
		known[name] = true
	}
	if err := plan.Validate(known); err != nil {
		return nil, err
	}
	return &Injector{
		plan: plan,
		reg:  NewRegistry(plan.Seed),
		hier: hier,
		rec:  rec,
		Env:  "test",
	}, nil
}

// Registry returns the live fault state; install it as every agent's
// exchange gate.
func (in *Injector) Registry() *Registry { return in.reg }

// Plan returns the scenario being injected.
func (in *Injector) Plan() Plan { return in.plan }

// Stats returns a snapshot of the injector's counters, including
// lossy-link drops accumulated by the registry.
func (in *Injector) Stats() Stats {
	s := in.stats
	s.LossyDrops = in.reg.Drops()
	return s
}

// Schedule queues every plan event on the simulator.
func (in *Injector) Schedule(s *sim.Simulator) {
	for _, ev := range in.plan.Sorted() {
		ev := ev
		s.At(ev.At, func(now float64) { in.apply(ev, now) })
	}
}

func (in *Injector) apply(ev Event, now float64) {
	switch ev.Kind {
	case Crash:
		if !in.reg.Apply(ev) {
			return
		}
		in.stats.Crashes++
		in.traceEvent(trace.Event{
			Time: now, Kind: trace.KindPeerDown, Agent: ev.Agent,
			Detail: "fault: agent crashed",
		})
		if a, ok := in.hier.Lookup(ev.Agent); ok {
			in.rescue(a, now)
		}
	case Recover:
		if !in.reg.Apply(ev) {
			return
		}
		in.stats.Recoveries++
		in.traceEvent(trace.Event{
			Time: now, Kind: trace.KindPeerUp, Agent: ev.Agent,
			Detail: "fault: agent recovered",
		})
	case Degrade:
		if !in.reg.Apply(ev) {
			return
		}
		in.stats.Degrades++
		in.traceEvent(trace.Event{
			Time: now, Kind: trace.KindDegrade, Agent: ev.Agent,
			Detail: fmt.Sprintf("fault: resource degraded, factor=%g", ev.Factor),
		})
	case Restore:
		if !in.reg.Apply(ev) {
			return
		}
		in.stats.Restores++
		in.traceEvent(trace.Event{
			Time: now, Kind: trace.KindRestore, Agent: ev.Agent,
			Detail: "fault: resource restored",
		})
	default:
		in.reg.Apply(ev)
	}
}

// rescue moves every unstarted task off the crashed agent's scheduler
// and re-dispatches it through the nearest live ancestor. Tasks that
// already began execution keep running: the compute nodes survive the
// agent-layer crash (documented assumption; see DESIGN.md).
func (in *Injector) rescue(crashed *agent.Agent, now float64) {
	local := crashed.Local()
	local.AdvanceTo(now)
	pending := local.Planned()
	if len(pending) == 0 {
		return
	}
	rescuer := in.liveRescuer(crashed.Name())
	// Discovery at the rescuer must avoid every currently-down agent:
	// seeding Visited with them excludes their (stale) advertisements.
	downNow := in.reg.Down()
	for _, rec := range pending {
		if err := local.Delete(rec.TaskID, now); err != nil {
			continue // raced a promotion; the task is running, not lost
		}
		if rescuer == nil {
			in.lose(rec.ReqID, rec.TaskID, now, "no live agent to rescue task")
			continue
		}
		// The rescued request keeps its grid-wide identity: a
		// re-dispatch is a new placement of the same request, so its
		// redispatch/start/complete events and final execution record
		// all join back to the original arrival.
		req := agent.Request{
			ReqID:    rec.ReqID,
			App:      rec.App,
			Env:      in.Env,
			Deadline: rec.Deadline,
			Visited:  append([]string(nil), downNow...),
		}
		d, err := rescuer.HandleRequest(req, now)
		if err != nil {
			in.lose(rec.ReqID, rec.TaskID, now, err.Error())
			continue
		}
		rescuer.CountRedispatch()
		in.stats.Redispatched++
		app := ""
		if rec.App != nil {
			app = rec.App.Name
		}
		in.traceEvent(trace.Event{
			Time: now, Kind: trace.KindRedispatch, ReqID: rec.ReqID,
			Agent: rescuer.Name(), Resource: d.Resource, TaskID: d.TaskID, App: app,
			Detail: fmt.Sprintf("from=%s oldtask=%d", crashed.Name(), rec.TaskID),
		})
	}
}

func (in *Injector) lose(reqID uint64, taskID int, now float64, why string) {
	in.stats.Lost++
	in.traceEvent(trace.Event{
		Time: now, Kind: trace.KindFail, ReqID: reqID, TaskID: taskID,
		Detail: "fault: task lost: " + why,
	})
}

// liveRescuer walks up from the crashed agent to the nearest live
// in-process ancestor, falling back to the first live agent in name
// order; nil when the whole grid is down.
func (in *Injector) liveRescuer(name string) *agent.Agent {
	a, ok := in.hier.Lookup(name)
	if !ok {
		return nil
	}
	for {
		up, ok := upperAgent(a)
		if !ok {
			break
		}
		a = up
		if !in.reg.AgentDown(a.Name()) {
			return a
		}
	}
	for _, n := range in.hier.Names() {
		if !in.reg.AgentDown(n) {
			live, _ := in.hier.Lookup(n)
			return live
		}
	}
	return nil
}

func upperAgent(a *agent.Agent) (*agent.Agent, bool) {
	up := a.Upper()
	if up == nil {
		return nil, false
	}
	ua, ok := up.(*agent.Agent)
	return ua, ok
}

// RerouteArrival returns the agent that should receive an arrival
// addressed to name: name itself when it is live, otherwise the nearest
// live ancestor (the user portal retries up the hierarchy). The second
// return is false when no live agent exists.
func (in *Injector) RerouteArrival(name string) (string, bool) {
	if !in.reg.AgentDown(name) {
		return name, true
	}
	r := in.liveRescuer(name)
	if r == nil {
		return "", false
	}
	in.stats.Rerouted++
	return r.Name(), true
}

func (in *Injector) traceEvent(ev trace.Event) {
	if in.rec != nil {
		in.rec.Record(ev)
	}
}
