package fault_test

import (
	"errors"
	"reflect"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/trace"
)

func TestPlanValidate(t *testing.T) {
	known := map[string]bool{"S1": true, "S2": true}
	cases := []struct {
		name string
		plan fault.Plan
		want string // substring of the error, "" for valid
	}{
		{"valid", fault.Plan{Events: []fault.Event{
			{At: 1, Kind: fault.Crash, Agent: "S1"},
			{At: 2, Kind: fault.Recover, Agent: "S1"},
			{At: 3, Kind: fault.Cut, A: "S1", B: "S2"},
			{At: 4, Kind: fault.Lossy, A: "S1", B: "S2", Rate: 0.5},
		}}, ""},
		{"negative time", fault.Plan{Events: []fault.Event{
			{At: -1, Kind: fault.Crash, Agent: "S1"},
		}}, "negative time"},
		{"unknown agent", fault.Plan{Events: []fault.Event{
			{At: 0, Kind: fault.Crash, Agent: "S9"},
		}}, "unknown agent"},
		{"unknown link", fault.Plan{Events: []fault.Event{
			{At: 0, Kind: fault.Cut, A: "S1", B: "S9"},
		}}, "unknown link"},
		{"self link", fault.Plan{Events: []fault.Event{
			{At: 0, Kind: fault.Cut, A: "S1", B: "S1"},
		}}, "itself"},
		{"bad rate", fault.Plan{Events: []fault.Event{
			{At: 0, Kind: fault.Lossy, A: "S1", B: "S2", Rate: 1.5},
		}}, "loss rate"},
		{"bad kind", fault.Plan{Events: []fault.Event{
			{At: 0, Kind: fault.Kind("meteor"), Agent: "S1"},
		}}, "unknown kind"},
	}
	for _, tc := range cases {
		err := tc.plan.Validate(known)
		if tc.want == "" {
			if err != nil {
				t.Errorf("%s: unexpected error %v", tc.name, err)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error = %v, want substring %q", tc.name, err, tc.want)
		}
	}
}

func TestRegistryApplyIdempotentAndGate(t *testing.T) {
	r := fault.NewRegistry(1)
	if err := r.ExchangeErr("a", "b", 0); err != nil {
		t.Fatalf("healthy exchange blocked: %v", err)
	}

	if !r.Apply(fault.Event{Kind: fault.Crash, Agent: "b"}) {
		t.Fatal("first crash reported no change")
	}
	if r.Apply(fault.Event{Kind: fault.Crash, Agent: "b"}) {
		t.Fatal("second crash of a crashed agent reported a change")
	}
	err := r.ExchangeErr("a", "b", 0)
	var de *fault.DownError
	if !errors.As(err, &de) || de.Reason != "agent down" {
		t.Fatalf("exchange to crashed agent: %v", err)
	}
	if err := r.ExchangeErr("b", "a", 0); err == nil {
		t.Fatal("exchange from a crashed agent succeeded")
	}
	if got := r.Down(); !reflect.DeepEqual(got, []string{"b"}) {
		t.Fatalf("Down() = %v", got)
	}
	if !r.Apply(fault.Event{Kind: fault.Recover, Agent: "b"}) {
		t.Fatal("recover reported no change")
	}
	if err := r.ExchangeErr("a", "b", 0); err != nil {
		t.Fatalf("exchange after recovery blocked: %v", err)
	}

	// Links are unordered pairs: cutting a-b blocks b-a too.
	r.Apply(fault.Event{Kind: fault.Cut, A: "b", B: "a"})
	if err := r.ExchangeErr("a", "b", 0); err == nil {
		t.Fatal("cut link passed traffic")
	}
	if r.Apply(fault.Event{Kind: fault.Heal, A: "a", B: "b"}); r.ExchangeErr("b", "a", 0) != nil {
		t.Fatal("healed link still blocked")
	}
}

func TestRegistryLossyDeterministic(t *testing.T) {
	run := func() (failures int) {
		r := fault.NewRegistry(42)
		r.Apply(fault.Event{Kind: fault.Lossy, A: "a", B: "b", Rate: 0.5})
		for i := 0; i < 100; i++ {
			if r.ExchangeErr("a", "b", float64(i)) != nil {
				failures++
			}
		}
		if failures != r.Drops() {
			t.Fatalf("failures %d != Drops() %d", failures, r.Drops())
		}
		return failures
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("same seed, different drop counts: %d vs %d", a, b)
	}
	if a == 0 || a == 100 {
		t.Fatalf("rate 0.5 dropped %d of 100 exchanges", a)
	}
	// Rate 0 restores the link.
	r := fault.NewRegistry(42)
	r.Apply(fault.Event{Kind: fault.Lossy, A: "a", B: "b", Rate: 0.9})
	r.Apply(fault.Event{Kind: fault.Lossy, A: "a", B: "b", Rate: 0})
	for i := 0; i < 50; i++ {
		if err := r.ExchangeErr("a", "b", 0); err != nil {
			t.Fatalf("restored link dropped an exchange: %v", err)
		}
	}
}

func TestPlanSortedStableAndString(t *testing.T) {
	p := fault.Plan{Events: []fault.Event{
		{At: 5, Kind: fault.Recover, Agent: "S2"},
		{At: 1, Kind: fault.Crash, Agent: "S1"},
		{At: 5, Kind: fault.Crash, Agent: "S3"},
	}}
	s := p.Sorted()
	if s[0].Agent != "S1" || s[1].Agent != "S2" || s[2].Agent != "S3" {
		t.Fatalf("Sorted() = %v", s)
	}
	if got := p.Crashed(); !reflect.DeepEqual(got, []string{"S1", "S3"}) {
		t.Fatalf("Crashed() = %v", got)
	}
	if !strings.Contains(p.String(), "crash") {
		t.Fatalf("String() = %q", p.String())
	}
}

// crashGrid builds a two-resource grid — a fast head and a slow,
// small lower resource — runs a workload that queues work on the slow
// resource, crashes it mid-queue and recovers it later.
func crashGrid(t *testing.T) (*core.Grid, *trace.Recorder, int) {
	t.Helper()
	rec := trace.NewRecorder(0)
	plan := &fault.Plan{Events: []fault.Event{
		{At: 2, Kind: fault.Crash, Agent: "slow"},
		{At: 15, Kind: fault.Recover, Agent: "slow"},
	}}
	g, err := core.New([]core.ResourceSpec{
		{Name: "fast", Hardware: "SGIOrigin2000", Nodes: 16},
		{Name: "slow", Hardware: "SunSPARCstation2", Nodes: 2, Parent: "fast"},
	}, core.Options{
		UseAgents: true,
		Seed:      2003,
		Trace:     rec,
		FaultPlan: plan,
		AdvertTTL: 30,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Six requests land on the slow resource before the crash: loose
	// deadlines keep them local (§3.2 local-first), and two nodes mean
	// most are still unstarted at t=2.
	n := 0
	for i := 0; i < 6; i++ {
		if err := g.SubmitAt(float64(i)*0.25, "slow", "sweep3d", 1000); err != nil {
			t.Fatal(err)
		}
		n++
	}
	// Two arrive while the agent is down and must be rerouted.
	for _, at := range []float64{5, 8} {
		if err := g.SubmitAt(at, "slow", "sweep3d", 1000); err != nil {
			t.Fatal(err)
		}
		n++
	}
	// One arrives after recovery and is served normally.
	if err := g.SubmitAt(25, "slow", "sweep3d", 1000); err != nil {
		t.Fatal(err)
	}
	n++
	return g, rec, n
}

func TestInjectorCrashRecoverZeroLost(t *testing.T) {
	g, rec, n := crashGrid(t)
	if err := g.Run(); err != nil {
		t.Fatalf("run failed: %v", err)
	}
	if got := len(g.Records()); got != n {
		t.Fatalf("completed %d of %d tasks", got, n)
	}
	st := g.FaultStats()
	if st.Crashes != 1 || st.Recoveries != 1 {
		t.Fatalf("Crashes=%d Recoveries=%d, want 1 and 1", st.Crashes, st.Recoveries)
	}
	if st.Lost != 0 {
		t.Fatalf("lost %d tasks", st.Lost)
	}
	if st.Redispatched == 0 {
		t.Fatal("no tasks re-dispatched off the crashed agent")
	}
	if st.Rerouted != 2 {
		t.Fatalf("Rerouted = %d, want 2 (the two arrivals during downtime)", st.Rerouted)
	}
	byKind := rec.CountByKind()
	if byKind[trace.KindPeerDown] != 1 || byKind[trace.KindPeerUp] != 1 {
		t.Fatalf("peerdown/peerup events = %d/%d, want 1/1",
			byKind[trace.KindPeerDown], byKind[trace.KindPeerUp])
	}
	if byKind[trace.KindRedispatch] != st.Redispatched {
		t.Fatalf("redispatch events = %d, stats say %d",
			byKind[trace.KindRedispatch], st.Redispatched)
	}
	// Re-dispatched tasks must have landed on the surviving resource.
	onFast := 0
	for _, r := range g.Records() {
		if r.Resource == "fast" {
			onFast++
		}
	}
	if onFast < st.Redispatched {
		t.Fatalf("only %d tasks on the survivor, %d were re-dispatched", onFast, st.Redispatched)
	}
}

func TestInjectorDeterministic(t *testing.T) {
	type snapshot struct {
		stats fault.Stats
		recs  string
	}
	run := func() snapshot {
		g, _, _ := crashGrid(t)
		if err := g.Run(); err != nil {
			t.Fatalf("run failed: %v", err)
		}
		var b strings.Builder
		for _, r := range g.Records() {
			b.WriteString(r.Resource)
			b.WriteString("|")
		}
		return snapshot{stats: g.FaultStats(), recs: b.String()}
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("two identical fault runs diverged:\n%+v\n%+v", a, b)
	}
}

func TestFaultPlanRequiresAgents(t *testing.T) {
	_, err := core.New([]core.ResourceSpec{
		{Name: "only", Hardware: "SGIOrigin2000", Nodes: 16},
	}, core.Options{
		FaultPlan: &fault.Plan{},
	})
	if err == nil || !strings.Contains(err.Error(), "UseAgents") {
		t.Fatalf("err = %v, want UseAgents requirement", err)
	}
}
