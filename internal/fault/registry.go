package fault

import (
	"fmt"
	"sort"

	"repro/internal/sim"
)

// DownError reports an exchange blocked by the fault registry — the
// in-process analogue of a connection refused or timed out on the wire.
type DownError struct {
	From, To string
	Reason   string // "agent down", "link cut", "lossy drop"
}

func (e *DownError) Error() string {
	return fmt.Sprintf("fault: %s -> %s: %s", e.From, e.To, e.Reason)
}

// linkKey is an unordered agent pair.
type linkKey struct{ a, b string }

func keyOf(a, b string) linkKey {
	if a > b {
		a, b = b, a
	}
	return linkKey{a, b}
}

// Registry is the live fault state of a grid: which agents are down,
// which links are cut, and per-link loss rates. It implements the
// agent.Gate interface, so installing it on every agent makes all peer
// exchanges (pull, push, forward, direct submit) subject to the current
// fault state.
//
// Registry is driven in virtual time by the Injector and is not safe
// for concurrent use, matching the sequential simulator.
type Registry struct {
	down map[string]bool
	slow map[string]float64 // live degradation factors (introspection only)
	cut  map[linkKey]bool
	loss map[linkKey]float64
	rng  *sim.RNG

	drops int // exchanges dropped by lossy links
}

// NewRegistry returns an all-healthy registry; seed drives lossy-link
// decisions.
func NewRegistry(seed uint64) *Registry {
	return &Registry{
		down: map[string]bool{},
		slow: map[string]float64{},
		cut:  map[linkKey]bool{},
		loss: map[linkKey]float64{},
		rng:  sim.NewRNG(seed),
	}
}

// Apply transitions the registry per the event. Events are idempotent:
// crashing a crashed agent or healing a healthy link changes nothing.
// It reports whether the event changed any state.
func (r *Registry) Apply(ev Event) bool {
	switch ev.Kind {
	case Crash:
		if r.down[ev.Agent] {
			return false
		}
		r.down[ev.Agent] = true
	case Recover:
		if !r.down[ev.Agent] {
			return false
		}
		delete(r.down, ev.Agent)
	case Cut:
		k := keyOf(ev.A, ev.B)
		if r.cut[k] {
			return false
		}
		r.cut[k] = true
	case Heal:
		k := keyOf(ev.A, ev.B)
		if !r.cut[k] {
			return false
		}
		delete(r.cut, k)
	case Lossy:
		k := keyOf(ev.A, ev.B)
		if ev.Rate <= 0 {
			if _, ok := r.loss[k]; !ok {
				return false
			}
			delete(r.loss, k)
		} else {
			r.loss[k] = ev.Rate
		}
	case Degrade:
		if r.slow[ev.Agent] == ev.Factor {
			return false
		}
		r.slow[ev.Agent] = ev.Factor
	case Restore:
		if _, ok := r.slow[ev.Agent]; !ok {
			return false
		}
		delete(r.slow, ev.Agent)
	default:
		return false
	}
	return true
}

// AgentDown reports whether the named agent is currently crashed.
func (r *Registry) AgentDown(name string) bool { return r.down[name] }

// Down returns the currently crashed agents, sorted.
func (r *Registry) Down() []string {
	out := make([]string, 0, len(r.down))
	for n := range r.down {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// DegradeFactor returns the execution-time multiplier currently applied
// to the named agent's resource (1 when undegraded). Note degradation
// never fails an exchange — a degraded node is slow, not silent — so
// ExchangeErr ignores it; schedulers consume the factor through the
// slowdown hook installed from the plan's static windows.
func (r *Registry) DegradeFactor(name string) float64 {
	if f, ok := r.slow[name]; ok {
		return f
	}
	return 1
}

// Degraded returns the currently degraded agents, sorted.
func (r *Registry) Degraded() []string {
	out := make([]string, 0, len(r.slow))
	for n := range r.slow {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Drops returns how many exchanges lossy links have dropped so far.
func (r *Registry) Drops() int { return r.drops }

// ExchangeErr implements the agent gate: an exchange fails when either
// endpoint is down, the link between them is cut, or a lossy link drops
// it. The loss decision consumes the seeded RNG, so it is deterministic
// given the (deterministic) order of exchanges in the simulation.
func (r *Registry) ExchangeErr(from, to string, now float64) error {
	if r.down[from] {
		return &DownError{From: from, To: to, Reason: "agent down (self)"}
	}
	if r.down[to] {
		return &DownError{From: from, To: to, Reason: "agent down"}
	}
	k := keyOf(from, to)
	if r.cut[k] {
		return &DownError{From: from, To: to, Reason: "link cut"}
	}
	if rate, ok := r.loss[k]; ok && r.rng.Float64() < rate {
		r.drops++
		return &DownError{From: from, To: to, Reason: "lossy drop"}
	}
	return nil
}
