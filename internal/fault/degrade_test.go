package fault_test

import (
	"math"
	"reflect"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/scheduler"
	"repro/internal/trace"
)

func TestDegradeWindowsAndSlowdownAt(t *testing.T) {
	plan := fault.Plan{Events: []fault.Event{
		{At: 10, Kind: fault.Degrade, Agent: "S1", Factor: 2},
		{At: 20, Kind: fault.Restore, Agent: "S1"},
		// A second degradation re-opened with a new factor and never
		// restored: the window runs to infinity.
		{At: 30, Kind: fault.Degrade, Agent: "S1", Factor: 3},
		// Another agent's events must not leak into S1's windows.
		{At: 5, Kind: fault.Degrade, Agent: "S2", Factor: 7},
	}}

	ws := plan.DegradeWindows("S1")
	if len(ws) != 2 {
		t.Fatalf("windows = %v, want 2", ws)
	}
	if ws[0].From != 10 || ws[0].To != 20 || ws[0].Factor != 2 {
		t.Fatalf("first window = %+v", ws[0])
	}
	if ws[1].From != 30 || !math.IsInf(ws[1].To, 1) || ws[1].Factor != 3 {
		t.Fatalf("second window = %+v", ws[1])
	}

	for _, tc := range []struct {
		at   float64
		want float64
	}{
		{0, 1}, {9.99, 1},
		{10, 2}, {19.99, 2},
		{20, 1}, {29.99, 1}, // Restore boundary: To is exclusive
		{30, 3}, {1e9, 3}, // open-ended
	} {
		if got := plan.SlowdownAt("S1", tc.at); got != tc.want {
			t.Errorf("SlowdownAt(S1, %g) = %g, want %g", tc.at, got, tc.want)
		}
	}
	if got := plan.SlowdownAt("S3", 15); got != 1 {
		t.Errorf("SlowdownAt(S3, 15) = %g, want 1 (never degraded)", got)
	}
	if got := plan.Degraded(); !reflect.DeepEqual(got, []string{"S1", "S2"}) {
		t.Errorf("Degraded() = %v", got)
	}

	// A new degrade factor supersedes the open window at its start time.
	redo := fault.Plan{Events: []fault.Event{
		{At: 10, Kind: fault.Degrade, Agent: "S1", Factor: 2},
		{At: 15, Kind: fault.Degrade, Agent: "S1", Factor: 4},
	}}
	if got := redo.SlowdownAt("S1", 12); got != 2 {
		t.Errorf("SlowdownAt before supersede = %g, want 2", got)
	}
	if got := redo.SlowdownAt("S1", 18); got != 4 {
		t.Errorf("SlowdownAt after supersede = %g, want 4", got)
	}
}

func TestPlanValidateDegrade(t *testing.T) {
	known := map[string]bool{"S1": true}
	bad := fault.Plan{Events: []fault.Event{
		{At: 0, Kind: fault.Degrade, Agent: "S1", Factor: 0},
	}}
	if err := bad.Validate(known); err == nil || !strings.Contains(err.Error(), "non-positive factor") {
		t.Fatalf("zero factor: err = %v", err)
	}
	unknown := fault.Plan{Events: []fault.Event{
		{At: 0, Kind: fault.Degrade, Agent: "S9", Factor: 2},
	}}
	if err := unknown.Validate(known); err == nil || !strings.Contains(err.Error(), "unknown agent") {
		t.Fatalf("unknown agent: err = %v", err)
	}
	ok := fault.Plan{Events: []fault.Event{
		{At: 0, Kind: fault.Degrade, Agent: "S1", Factor: 2},
		{At: 5, Kind: fault.Restore, Agent: "S1"},
	}}
	if err := ok.Validate(known); err != nil {
		t.Fatalf("valid degrade plan rejected: %v", err)
	}
}

func TestRegistryDegradeIdempotent(t *testing.T) {
	r := fault.NewRegistry(1)
	if got := r.DegradeFactor("a"); got != 1 {
		t.Fatalf("undegraded factor = %g, want 1", got)
	}
	if !r.Apply(fault.Event{Kind: fault.Degrade, Agent: "a", Factor: 3}) {
		t.Fatal("first degrade reported no change")
	}
	if r.Apply(fault.Event{Kind: fault.Degrade, Agent: "a", Factor: 3}) {
		t.Fatal("same-factor degrade reported a change")
	}
	if !r.Apply(fault.Event{Kind: fault.Degrade, Agent: "a", Factor: 5}) {
		t.Fatal("new-factor degrade reported no change")
	}
	if got := r.DegradeFactor("a"); got != 5 {
		t.Fatalf("DegradeFactor = %g, want 5", got)
	}
	if got := r.Degraded(); !reflect.DeepEqual(got, []string{"a"}) {
		t.Fatalf("Degraded() = %v", got)
	}
	// Degradation slows a resource; it never silences one.
	if err := r.ExchangeErr("b", "a", 0); err != nil {
		t.Fatalf("exchange with degraded agent blocked: %v", err)
	}
	if !r.Apply(fault.Event{Kind: fault.Restore, Agent: "a"}) {
		t.Fatal("restore reported no change")
	}
	if r.Apply(fault.Event{Kind: fault.Restore, Agent: "a"}) {
		t.Fatal("second restore reported a change")
	}
	if got := r.DegradeFactor("a"); got != 1 {
		t.Fatalf("factor after restore = %g, want 1", got)
	}
}

// TestDegradedRunStretchesExecutions drives a one-resource grid through
// a degradation window and checks the injector bookkeeping plus the
// observable effect: tasks starting inside the window run exactly
// Factor times longer than the identical undegraded run.
func TestDegradedRunStretchesExecutions(t *testing.T) {
	run := func(plan *fault.Plan) ([]scheduler.Record, fault.Stats, *trace.Recorder) {
		rec := trace.NewRecorder(256)
		g, err := core.New([]core.ResourceSpec{
			{Name: "fast", Hardware: "SGIOrigin2000", Nodes: 16},
			{Name: "slow", Hardware: "SunSPARCstation2", Nodes: 2, Parent: "fast"},
		}, core.Options{
			UseAgents: true,
			Seed:      2003,
			Trace:     rec,
			FaultPlan: plan,
		})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 6; i++ {
			if err := g.SubmitAt(float64(i)*0.25, "slow", "sweep3d", 1000); err != nil {
				t.Fatal(err)
			}
		}
		if err := g.Run(); err != nil {
			t.Fatal(err)
		}
		return g.Records(), g.FaultStats(), rec
	}

	base, _, _ := run(nil)
	plan := &fault.Plan{Events: []fault.Event{
		{At: 0, Kind: fault.Degrade, Agent: "slow", Factor: 2},
		{At: 1e6, Kind: fault.Restore, Agent: "slow"},
	}}
	slow, st, rec := run(plan)

	if st.Degrades != 1 || st.Restores != 1 {
		t.Fatalf("Degrades=%d Restores=%d, want 1 and 1", st.Degrades, st.Restores)
	}
	byKind := rec.CountByKind()
	if byKind[trace.KindDegrade] != 1 {
		t.Fatalf("degrade trace events = %d, want 1", byKind[trace.KindDegrade])
	}
	if len(base) != len(slow) {
		t.Fatalf("completed %d vs %d tasks", len(base), len(slow))
	}
	// Completion order can differ between the runs (stretched executions
	// reshuffle the queue), so records pair up by grid-wide ReqID.
	pred := make(map[uint64]float64, len(base))
	for _, r := range base {
		if r.Resource == "slow" {
			pred[r.ReqID] = r.End - r.Start
		}
	}
	stretched := 0
	for _, r := range slow {
		if r.Resource != "slow" {
			continue
		}
		bd, ok := pred[r.ReqID]
		if !ok {
			continue // placed differently under degradation
		}
		if sd := r.End - r.Start; math.Abs(sd-2*bd) > 1e-9 {
			t.Fatalf("req %d: degraded duration %g, want 2x baseline %g", r.ReqID, sd, bd)
		}
		stretched++
	}
	if stretched == 0 {
		t.Fatal("no task executed on the degraded resource")
	}
}
