package telemetry

import (
	"math"
	"testing"
)

func TestHistogramZeroObservations(t *testing.T) {
	h := NewHistogram()
	s := h.Snapshot()
	if s.Count != 0 || s.Sum != 0 || s.Min != 0 || s.Max != 0 || len(s.Buckets) != 0 {
		t.Fatalf("empty snapshot: %+v", s)
	}
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := s.Quantile(q); got != 0 {
			t.Fatalf("Quantile(%g) on empty = %g, want 0", q, got)
		}
	}
	if s.Mean() != 0 {
		t.Fatalf("Mean on empty = %g", s.Mean())
	}
}

func TestHistogramSingleBucket(t *testing.T) {
	// Identical observations all land in one bucket; every quantile must
	// clamp to the exact observed value, not the bucket bounds.
	h := NewHistogram()
	for i := 0; i < 5; i++ {
		h.Observe(1.0)
	}
	s := h.Snapshot()
	if len(s.Buckets) != 1 {
		t.Fatalf("buckets = %+v, want exactly one", s.Buckets)
	}
	if s.Min != 1.0 || s.Max != 1.0 {
		t.Fatalf("min/max = %g/%g, want 1/1", s.Min, s.Max)
	}
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := s.Quantile(q); got != 1.0 {
			t.Fatalf("Quantile(%g) = %g, want 1.0", q, got)
		}
	}
	if s.Mean() != 1.0 {
		t.Fatalf("Mean = %g, want 1.0", s.Mean())
	}
}

func TestHistogramQuantiles(t *testing.T) {
	// 1000 observations spread over three decades; check the quantile
	// estimate lands within its covering power-of-two bucket.
	h := NewHistogram()
	for i := 1; i <= 1000; i++ {
		h.Observe(float64(i) * 0.001) // 1 ms .. 1 s
	}
	s := h.Snapshot()
	if s.Count != 1000 {
		t.Fatalf("count = %d", s.Count)
	}
	if got := s.Quantile(0); got != 0.001 {
		t.Fatalf("p0 = %g, want exact min 0.001", got)
	}
	if got := s.Quantile(1); got != 1.0 {
		t.Fatalf("p100 = %g, want exact max 1.0", got)
	}
	p50 := s.Quantile(0.5)
	if p50 < 0.25 || p50 > 1.0 {
		// True p50 is 0.5 s; the covering bucket is (0.262, 0.524].
		t.Fatalf("p50 = %g, outside factor-of-two tolerance around 0.5", p50)
	}
	p99 := s.Quantile(0.99)
	if p99 < 0.5 || p99 > 1.0 {
		t.Fatalf("p99 = %g, outside (0.5, 1.0]", p99)
	}
	if p50 > p99 {
		t.Fatalf("quantiles not monotone: p50 %g > p99 %g", p50, p99)
	}
}

func TestHistogramMergePerResourceIntoGridWide(t *testing.T) {
	// The rollup the sampler relies on: per-resource latency histograms
	// merge into one grid-wide distribution with exact count/sum/min/max.
	s1 := NewHistogram()
	s2 := NewHistogram()
	for i := 0; i < 10; i++ {
		s1.Observe(0.010) // resource S1: 10 ms exchanges
	}
	for i := 0; i < 30; i++ {
		s2.Observe(0.080) // resource S2: 80 ms exchanges
	}
	grid := s1.Snapshot().Merge(s2.Snapshot())
	if grid.Count != 40 {
		t.Fatalf("merged count = %d, want 40", grid.Count)
	}
	wantSum := 10*0.010 + 30*0.080
	if math.Abs(grid.Sum-wantSum) > 1e-12 {
		t.Fatalf("merged sum = %g, want %g", grid.Sum, wantSum)
	}
	if grid.Min != 0.010 || grid.Max != 0.080 {
		t.Fatalf("merged min/max = %g/%g", grid.Min, grid.Max)
	}
	var bucketTotal uint64
	for i := 1; i < len(grid.Buckets); i++ {
		if grid.Buckets[i-1].UpperBound >= grid.Buckets[i].UpperBound {
			t.Fatalf("merged buckets not ascending: %+v", grid.Buckets)
		}
	}
	for _, b := range grid.Buckets {
		bucketTotal += b.Count
	}
	if bucketTotal != grid.Count {
		t.Fatalf("bucket total %d != count %d", bucketTotal, grid.Count)
	}
	// p100 must be the global max, p0 the global min.
	if grid.Quantile(0) != 0.010 || grid.Quantile(1) != 0.080 {
		t.Fatalf("merged extremes: p0=%g p100=%g", grid.Quantile(0), grid.Quantile(1))
	}

	// Merging with an empty side returns the non-empty side unchanged.
	empty := NewHistogram().Snapshot()
	if got := empty.Merge(grid); got.Count != 40 {
		t.Fatalf("empty.Merge = %+v", got)
	}
	if got := grid.Merge(empty); got.Count != 40 {
		t.Fatalf("Merge(empty) = %+v", got)
	}

	// Overlapping buckets (same value observed on both sides) sum.
	a, b := NewHistogram(), NewHistogram()
	a.Observe(0.010)
	b.Observe(0.010)
	m := a.Snapshot().Merge(b.Snapshot())
	if len(m.Buckets) != 1 || m.Buckets[0].Count != 2 {
		t.Fatalf("overlapping merge: %+v", m.Buckets)
	}
}

func TestBucketIndexLayout(t *testing.T) {
	cases := []struct {
		v    float64
		want int
	}{
		{0, 0},
		{1e-9, 0},
		{histMin, 0},
		{1.5 * histMin, 1},
		{2 * histMin, 1}, // upper bounds are inclusive
		{2.1 * histMin, 2},
		{1e9, histBuckets - 1}, // far past the last bound clamps
	}
	for _, c := range cases {
		if got := bucketIndex(c.v); got != c.want {
			t.Fatalf("bucketIndex(%g) = %d, want %d", c.v, got, c.want)
		}
	}
	// Every value must land in a bucket whose bound covers it.
	for _, v := range []float64{1e-7, 3e-5, 0.002, 0.7, 42, 90000} {
		i := bucketIndex(v)
		if up := bucketUpper(i); v > up {
			t.Fatalf("value %g above its bucket bound %g", v, up)
		}
		if i > 0 {
			if low := bucketUpper(i - 1); v <= low {
				t.Fatalf("value %g at or below previous bound %g", v, low)
			}
		}
	}
	if !math.IsInf(bucketUpper(histBuckets-1), 1) {
		t.Fatal("last bucket must be unbounded")
	}
}

func TestHistogramNegativeAndNaNClamp(t *testing.T) {
	h := NewHistogram()
	h.Observe(-5)
	h.Observe(math.NaN())
	s := h.Snapshot()
	if s.Count != 2 || s.Min != 0 || s.Max != 0 {
		t.Fatalf("clamped snapshot: %+v", s)
	}
}
