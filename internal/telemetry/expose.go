package telemetry

import (
	"fmt"
	"io"
	"math"
	"strconv"
)

// Exposition: a Snapshot renders either as Prometheus text format
// (version 0.0.4 — `# TYPE` lines, cumulative `_bucket{le=...}`
// histograms) for live scraping, or as the JSON Export document that
// gridexp -telemetry and scenario results embed.

// Export is the JSON shape of a run's telemetry: the final snapshot
// plus, when a sampler ran, the virtual-time series.
type Export struct {
	Snapshot Snapshot `json:"snapshot"`
	Series   *Series  `json:"series,omitempty"`
}

// NewExport captures reg and, when non-nil, the sampler's series.
func NewExport(reg *Registry, s *Sampler) *Export {
	e := &Export{Snapshot: reg.Snapshot()}
	if s != nil {
		series := s.Series()
		e.Series = &series
	}
	return e
}

// WritePrometheus renders the snapshot in Prometheus text format.
// Families are emitted in sorted name order, one `# TYPE` line each;
// label sets embedded in metric names are re-emitted verbatim, with
// `le` appended for histogram buckets.
func (s Snapshot) WritePrometheus(w io.Writer) error {
	typed := map[string]bool{} // base name -> TYPE line already written

	writeType := func(base, kind string) error {
		if typed[base] {
			return nil
		}
		typed[base] = true
		_, err := fmt.Fprintf(w, "# TYPE %s %s\n", base, kind)
		return err
	}

	for _, name := range sortedKeys(s.Counters) {
		base, _ := splitName(name)
		if err := writeType(base, "counter"); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s %d\n", name, s.Counters[name]); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(s.Gauges) {
		base, _ := splitName(name)
		if err := writeType(base, "gauge"); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s %s\n", name, formatFloat(s.Gauges[name])); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(s.Histograms) {
		base, labels := splitName(name)
		if err := writeType(base, "histogram"); err != nil {
			return err
		}
		h := s.Histograms[name]
		var cum uint64
		sawInf := false
		for _, b := range h.Buckets {
			cum += b.Count
			le := formatFloat(b.UpperBound)
			if math.IsInf(b.UpperBound, 1) {
				le = "+Inf"
				sawInf = true
			}
			if _, err := fmt.Fprintf(w, "%s_bucket{%sle=%q} %d\n", base, labelPrefix(labels), le, cum); err != nil {
				return err
			}
		}
		if !sawInf {
			if _, err := fmt.Fprintf(w, "%s_bucket{%sle=\"+Inf\"} %d\n", base, labelPrefix(labels), cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", base, labelSuffix(labels), formatFloat(h.Sum)); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_count%s %d\n", base, labelSuffix(labels), h.Count); err != nil {
			return err
		}
	}
	return nil
}

// labelPrefix renders an inner label list for prepending before `le=`:
// `resource="S1"` -> `resource="S1",`, "" -> "".
func labelPrefix(labels string) string {
	if labels == "" {
		return ""
	}
	return labels + ","
}

// labelSuffix renders an inner label list back to a braced set: "" ->
// "", `resource="S1"` -> `{resource="S1"}`.
func labelSuffix(labels string) string {
	if labels == "" {
		return ""
	}
	return "{" + labels + "}"
}

// formatFloat renders a float the way Prometheus clients expect: the
// shortest representation that round-trips.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
