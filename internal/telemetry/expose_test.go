package telemetry

import (
	"strings"
	"testing"
)

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter(Label("agent_pulls_total", "resource", "S1")).Add(4)
	r.Counter(Label("agent_pulls_total", "resource", "S2")).Add(6)
	r.Gauge("grid_agents").Set(12)
	h := r.Histogram(Label("transport_exchange_latency_s", "resource", "S1"))
	h.Observe(0.25)
	h.Observe(0.25)
	h.Observe(0.5)

	var b strings.Builder
	if err := r.Snapshot().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()

	for _, want := range []string{
		"# TYPE agent_pulls_total counter\n",
		"agent_pulls_total{resource=\"S1\"} 4\n",
		"agent_pulls_total{resource=\"S2\"} 6\n",
		"# TYPE grid_agents gauge\n",
		"grid_agents 12\n",
		"# TYPE transport_exchange_latency_s histogram\n",
		"transport_exchange_latency_s_bucket{resource=\"S1\",le=\"+Inf\"} 3\n",
		"transport_exchange_latency_s_count{resource=\"S1\"} 3\n",
		"transport_exchange_latency_s_sum{resource=\"S1\"} 1\n",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("prometheus output missing %q in:\n%s", want, out)
		}
	}
	// One TYPE line per family even with two label sets.
	if n := strings.Count(out, "# TYPE agent_pulls_total counter"); n != 1 {
		t.Fatalf("TYPE line emitted %d times", n)
	}
	// Bucket counts must be cumulative: the 0.25s observations share the
	// (0.131, 0.262] bucket, the +Inf line covers all 3.
	if !strings.Contains(out, "le=\"0.262144\"} 2\n") {
		t.Fatalf("cumulative bucket line missing in:\n%s", out)
	}
}

func TestWritePrometheusEmptyHistogram(t *testing.T) {
	r := NewRegistry()
	r.Histogram("idle_latency_s")
	var b strings.Builder
	if err := r.Snapshot().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	// An empty histogram still exposes a complete family: +Inf bucket,
	// sum and count at zero.
	for _, want := range []string{
		"idle_latency_s_bucket{le=\"+Inf\"} 0\n",
		"idle_latency_s_sum 0\n",
		"idle_latency_s_count 0\n",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestNewExport(t *testing.T) {
	r := NewRegistry()
	r.Counter("a").Inc()
	s := NewSampler(r, 10)
	s.Sample(0)
	e := NewExport(r, s)
	if e.Snapshot.Counters["a"] != 1 {
		t.Fatalf("export snapshot: %+v", e.Snapshot)
	}
	if e.Series == nil || len(e.Series.Points) != 1 {
		t.Fatalf("export series: %+v", e.Series)
	}
	if e2 := NewExport(r, nil); e2.Series != nil {
		t.Fatal("export without sampler must omit series")
	}
}
