package telemetry

import (
	"math"
	"math/bits"
	"sync/atomic"
)

// histMin is the width of the first histogram bucket in seconds: one
// microsecond, below real transport exchanges and schedule builds but
// above clock noise.
const histMin = 1e-6

// histBuckets is the number of log-base-2 buckets. Bucket i spans
// (histMin·2^(i-1), histMin·2^i]; bucket 0 is (0, histMin] and the last
// bucket is unbounded. 40 doublings of 1 µs reach ~6.4 days, far past
// any latency or advance time the grid produces.
const histBuckets = 40

// Histogram is a lock-free log-bucketed histogram for latencies and
// advance times, in seconds. Observations land in power-of-two buckets
// with exact atomic count/sum/min/max, so quantiles are estimated within
// a factor-of-two bucket and the extremes are exact. All methods no-op
// on a nil receiver; construct with NewHistogram (min/max need non-zero
// initial bits).
type Histogram struct {
	count   atomic.Uint64
	sumBits atomic.Uint64 // float64 bits, CAS-accumulated
	minBits atomic.Uint64 // float64 bits, starts at +Inf
	maxBits atomic.Uint64 // float64 bits, starts at -Inf
	buckets [histBuckets]atomic.Uint64
}

// NewHistogram returns an empty histogram with the default bucket
// layout.
func NewHistogram() *Histogram {
	h := &Histogram{}
	h.minBits.Store(floatBits(math.Inf(1)))
	h.maxBits.Store(floatBits(math.Inf(-1)))
	return h
}

// bucketIndex maps a value in seconds to its bucket.
func bucketIndex(v float64) int {
	if v <= histMin {
		return 0
	}
	ratio := v / histMin
	if ratio >= float64(uint64(1)<<(histBuckets-1)) {
		return histBuckets - 1
	}
	// Smallest i with 2^i >= ratio: the bucket whose upper bound
	// histMin·2^i is the first to cover v.
	return bits.Len64(uint64(math.Ceil(ratio)) - 1)
}

// bucketUpper is the inclusive upper bound of bucket i in seconds; +Inf
// for the last bucket.
func bucketUpper(i int) float64 {
	if i >= histBuckets-1 {
		return math.Inf(1)
	}
	return histMin * float64(uint64(1)<<uint(i))
}

// Observe records one value (seconds). Negative values clamp to zero.
// Lock-free; safe from any goroutine.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	if v < 0 || math.IsNaN(v) {
		v = 0
	}
	h.buckets[bucketIndex(v)].Add(1)
	h.count.Add(1)
	casAdd(&h.sumBits, v)
	casMin(&h.minBits, v)
	casMax(&h.maxBits, v)
}

// Count returns the number of observations; 0 on nil.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Bucket is one non-empty histogram bucket: Count observations at or
// below UpperBound (bounds are per-bucket, not cumulative; the
// Prometheus writer accumulates).
type Bucket struct {
	UpperBound float64 `json:"le"`
	Count      uint64  `json:"count"`
}

// HistogramSnapshot is a point-in-time copy of a histogram, the unit of
// merging and quantile estimation. Min/Max/Sum are 0 when Count is 0.
type HistogramSnapshot struct {
	Count   uint64   `json:"count"`
	Sum     float64  `json:"sum"`
	Min     float64  `json:"min"`
	Max     float64  `json:"max"`
	Buckets []Bucket `json:"buckets,omitempty"` // non-empty buckets, ascending bounds
}

// Snapshot copies the histogram. The copy is consistent enough for
// exposition (buckets are read after count, so the bucket total can
// only exceed never trail concurrent observations by design noise);
// empty on nil.
func (h *Histogram) Snapshot() HistogramSnapshot {
	var s HistogramSnapshot
	if h == nil {
		return s
	}
	s.Count = h.count.Load()
	if s.Count == 0 {
		return s
	}
	s.Sum = floatFrom(h.sumBits.Load())
	s.Min = floatFrom(h.minBits.Load())
	s.Max = floatFrom(h.maxBits.Load())
	for i := range h.buckets {
		if n := h.buckets[i].Load(); n > 0 {
			s.Buckets = append(s.Buckets, Bucket{UpperBound: bucketUpper(i), Count: n})
		}
	}
	return s
}

// Mean returns Sum/Count; 0 when empty.
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / float64(s.Count)
}

// Quantile estimates the q-quantile (q in [0,1]). q<=0 returns the exact
// minimum and q>=1 the exact maximum; interior quantiles interpolate
// linearly inside the covering bucket, clamped to the observed [Min,
// Max] so single-bucket histograms do not report bounds they never saw.
// 0 when empty.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	if q <= 0 {
		return s.Min
	}
	if q >= 1 {
		return s.Max
	}
	rank := q * float64(s.Count)
	var cum uint64
	for _, b := range s.Buckets {
		cum += b.Count
		if float64(cum) >= rank {
			lower := 0.0
			if b.UpperBound > histMin {
				lower = b.UpperBound / 2
			}
			upper := b.UpperBound
			if math.IsInf(upper, 1) {
				upper = s.Max
			}
			// Position of the rank within this bucket's count.
			prev := float64(cum - b.Count)
			frac := (rank - prev) / float64(b.Count)
			v := lower + frac*(upper-lower)
			return math.Min(math.Max(v, s.Min), s.Max)
		}
	}
	return s.Max
}

// Merge combines two snapshots taken from histograms with the default
// layout — how per-resource latency histograms roll up into the
// grid-wide one. Either side may be empty.
func (s HistogramSnapshot) Merge(o HistogramSnapshot) HistogramSnapshot {
	if s.Count == 0 {
		return o
	}
	if o.Count == 0 {
		return s
	}
	out := HistogramSnapshot{
		Count: s.Count + o.Count,
		Sum:   s.Sum + o.Sum,
		Min:   math.Min(s.Min, o.Min),
		Max:   math.Max(s.Max, o.Max),
	}
	// Merge the two ascending non-empty bucket lists.
	i, j := 0, 0
	for i < len(s.Buckets) || j < len(o.Buckets) {
		switch {
		case j >= len(o.Buckets) || (i < len(s.Buckets) && s.Buckets[i].UpperBound < o.Buckets[j].UpperBound):
			out.Buckets = append(out.Buckets, s.Buckets[i])
			i++
		case i >= len(s.Buckets) || o.Buckets[j].UpperBound < s.Buckets[i].UpperBound:
			out.Buckets = append(out.Buckets, o.Buckets[j])
			j++
		default: // equal bounds
			out.Buckets = append(out.Buckets, Bucket{
				UpperBound: s.Buckets[i].UpperBound,
				Count:      s.Buckets[i].Count + o.Buckets[j].Count,
			})
			i++
			j++
		}
	}
	return out
}

// floatBits/floatFrom convert float64 gauge and histogram state to the
// uint64 domain of the atomics.
func floatBits(v float64) uint64  { return math.Float64bits(v) }
func floatFrom(b uint64) float64 { return math.Float64frombits(b) }

// casAdd accumulates v into a float64-bits atomic.
func casAdd(a *atomic.Uint64, v float64) {
	for {
		old := a.Load()
		if a.CompareAndSwap(old, floatBits(floatFrom(old)+v)) {
			return
		}
	}
}

// casMin lowers a float64-bits atomic to v if v is smaller.
func casMin(a *atomic.Uint64, v float64) {
	for {
		old := a.Load()
		if floatFrom(old) <= v {
			return
		}
		if a.CompareAndSwap(old, floatBits(v)) {
			return
		}
	}
}

// casMax raises a float64-bits atomic to v if v is larger.
func casMax(a *atomic.Uint64, v float64) {
	for {
		old := a.Load()
		if floatFrom(old) >= v {
			return
		}
		if a.CompareAndSwap(old, floatBits(v)) {
			return
		}
	}
}
