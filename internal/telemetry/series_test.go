package telemetry

import "testing"

func TestSamplerRecordsRegistryAndProbes(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("grid_requests_total")
	r.Gauge("queue_depth{resource=\"S1\"}").Set(2)
	h := r.Histogram("sched_plan_latency_s")
	h.Observe(0.001)

	s := NewSampler(r, 10)
	depth := 5.0
	s.AddProbe("probe_backlog_s", func(now float64) float64 { return depth + now })

	s.Sample(0)
	c.Add(3)
	depth = 7
	s.Sample(10)

	series := s.Series()
	if series.Period != 10 || len(series.Points) != 2 {
		t.Fatalf("series = period %g, %d points", series.Period, len(series.Points))
	}
	p0, p1 := series.Points[0], series.Points[1]
	if p0.T != 0 || p1.T != 10 {
		t.Fatalf("times = %g, %g", p0.T, p1.T)
	}
	if p0.V["grid_requests_total"] != 0 || p1.V["grid_requests_total"] != 3 {
		t.Fatalf("counter series: %g then %g", p0.V["grid_requests_total"], p1.V["grid_requests_total"])
	}
	if p0.V[`queue_depth{resource="S1"}`] != 2 {
		t.Fatalf("gauge missing: %+v", p0.V)
	}
	if p0.V["sched_plan_latency_s_count"] != 1 {
		t.Fatalf("histogram count missing: %+v", p0.V)
	}
	if p0.V["probe_backlog_s"] != 5 || p1.V["probe_backlog_s"] != 17 {
		t.Fatalf("probe series: %g then %g", p0.V["probe_backlog_s"], p1.V["probe_backlog_s"])
	}
}

func TestSamplerDefaultPeriod(t *testing.T) {
	s := NewSampler(NewRegistry(), 0)
	if s.Period() != 10 {
		t.Fatalf("default period = %g, want 10", s.Period())
	}
}

func TestSamplerDecimation(t *testing.T) {
	// Past maxPoints the sampler halves resolution instead of growing
	// without bound, and then ignores off-period samples.
	r := NewRegistry()
	s := NewSampler(r, 10)
	for i := 0; i < maxPoints; i++ {
		s.Sample(float64(i) * 10)
	}
	if n := len(s.points); n != maxPoints/2 {
		t.Fatalf("after decimation: %d points, want %d", n, maxPoints/2)
	}
	if s.Period() != 20 {
		t.Fatalf("period after decimation = %g, want 20", s.Period())
	}
	last := s.points[len(s.points)-1].T
	s.Sample(last + 10) // off the doubled period: ignored
	if n := len(s.points); n != maxPoints/2 {
		t.Fatalf("off-period sample was recorded (%d points)", n)
	}
	s.Sample(last + 20)
	if n := len(s.points); n != maxPoints/2+1 {
		t.Fatalf("on-period sample dropped (%d points)", n)
	}
}

func TestSamplerIgnoresRewinds(t *testing.T) {
	s := NewSampler(NewRegistry(), 10)
	s.Sample(0)
	s.Sample(10)
	s.Sample(10) // duplicate tick
	s.Sample(5)  // rewind
	if n := len(s.points); n != 2 {
		t.Fatalf("points = %d, want 2", n)
	}
}
