package telemetry

import (
	"errors"
	"io"
	"net/http"
	"strings"
	"testing"
)

func TestServerMetricsAndHealthz(t *testing.T) {
	r := NewRegistry()
	r.Counter("grid_requests_total").Add(9)

	healthy := true
	srv, err := StartServer("127.0.0.1:0", r, func() error {
		if !healthy {
			return errors.New("node down")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	get := func(path string) (int, string) {
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}

	code, body := get("/metrics")
	if code != http.StatusOK || !strings.Contains(body, "grid_requests_total 9") {
		t.Fatalf("/metrics = %d:\n%s", code, body)
	}

	code, body = get("/metrics?format=json")
	if code != http.StatusOK || !strings.Contains(body, `"grid_requests_total": 9`) {
		t.Fatalf("/metrics?format=json = %d:\n%s", code, body)
	}

	code, body = get("/healthz")
	if code != http.StatusOK || !strings.HasPrefix(body, "ok") {
		t.Fatalf("/healthz = %d %q", code, body)
	}

	healthy = false
	code, body = get("/healthz")
	if code != http.StatusServiceUnavailable || !strings.Contains(body, "node down") {
		t.Fatalf("unhealthy /healthz = %d %q", code, body)
	}
}

func TestServerNilHealthz(t *testing.T) {
	srv, err := StartServer("127.0.0.1:0", NewRegistry(), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	resp, err := http.Get("http://" + srv.Addr() + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("nil healthz = %d", resp.StatusCode)
	}
}
