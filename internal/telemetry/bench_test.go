package telemetry

import "testing"

// The zero-overhead contract, measured: a nil instrument must cost one
// branch and allocate nothing, so uninstrumented code paths keep their
// PR 2 performance exactly.

func BenchmarkCounterNil(b *testing.B) {
	var c *Counter
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkCounterLive(b *testing.B) {
	c := NewRegistry().Counter("bench")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkShardedCounterParallel(b *testing.B) {
	c := NewRegistry().ShardedCounter("bench")
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Inc()
		}
	})
}

func BenchmarkHistogramNil(b *testing.B) {
	var h *Histogram
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(0.01)
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewRegistry().Histogram("bench")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i%1000) * 1e-3)
	}
}
