// Package telemetry is the grid's metrics subsystem: a dependency-free
// registry of lock-free counters, gauges and log-bucketed histograms, a
// virtual-time series sampler, and Prometheus/JSON exposition. It is the
// live counterpart of internal/metrics — metrics computes the §3.3 report
// over *finished* runs, telemetry observes the daemons and simulations
// *while they run* (the monitoring-alongside-scheduling argument of the
// integrated-framework line of work, and GridSim's built-in statistics
// recording).
//
// The central contract is zero overhead when disabled: hot paths hold
// instrument pointers (*Counter, *Gauge, *Histogram) resolved once at
// setup, every instrument method is nil-safe, and a nil registry hands
// out nil instruments — so an uninstrumented run pays one predictable
// branch per call site, no allocations, no atomics. The PR 2 fast paths
// (schedule building, GA cost evaluation, pace cache hits) are guarded by
// benchmarks against exactly this configuration.
//
// Everything registered is updated with atomic operations only, so a
// registry can be scraped (Snapshot, the /metrics handler) from any
// goroutine while the instrumented code runs — no locks are shared with
// the hot paths. State that is not atomic (scheduler queues, agent
// caches) is observed either through gauges the owning code sets from
// inside its own synchronisation, or through Sampler probes that run on
// the single-threaded simulator goroutine.
package telemetry

import (
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"unsafe"
)

// padded is an atomic counter padded to a cache line so adjacent shards
// do not false-share — the paddedCounter pattern from internal/pace.
type padded struct {
	v atomic.Uint64
	_ [56]byte
}

// Counter is a monotonically increasing counter. The zero value is ready
// to use, all methods are lock-free, and every method no-ops on a nil
// receiver: code instruments itself unconditionally and the caller
// decides at setup time whether a real counter is behind the pointer.
type Counter struct {
	v atomic.Uint64
	_ [56]byte // keep independently-owned counters off shared cache lines
}

// Inc adds one.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.v.Add(1)
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count; 0 on a nil counter.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// counterShards stripes ShardedCounter; must be a power of two.
const counterShards = 16

// ShardedCounter is a Counter striped over cache-line-padded shards, for
// call sites hit concurrently by many goroutines (transport exchanges,
// parallel workers). Add picks a shard from the caller's stack address,
// which differs across goroutines, so concurrent writers land on
// different cache lines; Value sums the shards.
type ShardedCounter struct {
	shards [counterShards]padded
}

// shardHint derives a cheap per-goroutine shard index from the address
// of a stack local: goroutines have distinct stacks, so concurrent
// callers spread over the shards without any shared state.
func shardHint() uint64 {
	var x byte
	return uint64(uintptr(unsafe.Pointer(&x)) >> 8)
}

// Inc adds one.
func (c *ShardedCounter) Inc() { c.Add(1) }

// Add adds n.
func (c *ShardedCounter) Add(n uint64) {
	if c == nil {
		return
	}
	c.shards[shardHint()&(counterShards-1)].v.Add(n)
}

// Value sums the shards; 0 on a nil counter.
func (c *ShardedCounter) Value() uint64 {
	if c == nil {
		return 0
	}
	var total uint64
	for i := range c.shards {
		total += c.shards[i].v.Load()
	}
	return total
}

// CounterValue is any counter exposable through a registry: both Counter
// and ShardedCounter satisfy it, so instrumented code can own its
// counters (agent stats, engine stats) and attach them by name.
type CounterValue interface {
	Value() uint64
}

// Gauge is a lock-free float64 gauge. The zero value is ready to use and
// all methods no-op on a nil receiver.
type Gauge struct {
	bits atomic.Uint64
	_    [56]byte
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(floatBits(v))
}

// Add adds delta (compare-and-swap loop; deltas from concurrent writers
// all land).
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, floatBits(floatFrom(old)+delta)) {
			return
		}
	}
}

// Value returns the current value; 0 on a nil gauge.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return floatFrom(g.bits.Load())
}

// Collector is a callback run at snapshot time to contribute computed
// values (cache hit ratios, policy statistics) without putting any cost
// on the hot path that produces them. Collectors must only read state
// that is safe to read from the scraping goroutine — atomic counters and
// immutable configuration.
type Collector func(set func(name string, value float64))

// Registry is a named set of instruments. A nil *Registry is the
// disabled configuration: it hands out nil instruments and empty
// snapshots, so instrumented code never checks for it explicitly.
//
// Instrument lookup takes a lock and may allocate; hot paths resolve
// their instruments once at setup and keep the pointers.
type Registry struct {
	mu         sync.RWMutex
	counters   map[string]CounterValue
	gauges     map[string]*Gauge
	hists      map[string]*Histogram
	collectors []Collector
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]CounterValue{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
	}
}

// Counter returns the named counter, creating it on first use; nil on a
// nil registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.counters[name].(*Counter); ok {
		return c
	}
	c := &Counter{}
	r.counters[name] = c
	return c
}

// ShardedCounter returns the named sharded counter, creating it on first
// use; nil on a nil registry.
func (r *Registry) ShardedCounter(name string) *ShardedCounter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.counters[name].(*ShardedCounter); ok {
		return c
	}
	c := &ShardedCounter{}
	r.counters[name] = c
	return c
}

// RegisterCounter attaches an existing counter under the given name —
// how code that owns its counters (agent stats) exposes them without
// double counting. No-op on a nil registry or nil counter.
func (r *Registry) RegisterCounter(name string, c CounterValue) {
	if r == nil || c == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.counters[name] = c
}

// Gauge returns the named gauge, creating it on first use; nil on a nil
// registry.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// RegisterGauge attaches an existing gauge under the given name.
func (r *Registry) RegisterGauge(name string, g *Gauge) {
	if r == nil || g == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.gauges[name] = g
}

// Histogram returns the named histogram (default bucket layout),
// creating it on first use; nil on a nil registry.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = NewHistogram()
		r.hists[name] = h
	}
	return h
}

// RegisterCollector adds a snapshot-time collector.
func (r *Registry) RegisterCollector(fn Collector) {
	if r == nil || fn == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.collectors = append(r.collectors, fn)
}

// Snapshot is a point-in-time copy of every registered value, the input
// to both exposition formats. Collector output lands in Gauges.
type Snapshot struct {
	Counters   map[string]uint64            `json:"counters,omitempty"`
	Gauges     map[string]float64           `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Snapshot captures every instrument and runs the collectors. Safe to
// call from any goroutine; an empty snapshot on a nil registry.
func (r *Registry) Snapshot() Snapshot {
	snap := Snapshot{
		Counters:   map[string]uint64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	if r == nil {
		return snap
	}
	r.mu.RLock()
	counters := make(map[string]CounterValue, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for k, v := range r.hists {
		hists[k] = v
	}
	collectors := make([]Collector, len(r.collectors))
	copy(collectors, r.collectors)
	r.mu.RUnlock()

	for name, c := range counters {
		snap.Counters[name] = c.Value()
	}
	for name, g := range gauges {
		snap.Gauges[name] = g.Value()
	}
	for name, h := range hists {
		snap.Histograms[name] = h.Snapshot()
	}
	for _, fn := range collectors {
		fn(func(name string, v float64) { snap.Gauges[name] = v })
	}
	return snap
}

// Label renders a metric name with label pairs appended in the given
// order: Label("grid_queue_depth", "resource", "S1") is
// `grid_queue_depth{resource="S1"}`. Metric identity is the full
// rendered string; the Prometheus writer re-parses it for bucket
// labels.
func Label(name string, kv ...string) string {
	if len(kv) == 0 {
		return name
	}
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i := 0; i+1 < len(kv); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(kv[i])
		b.WriteString(`="`)
		b.WriteString(kv[i+1])
		b.WriteString(`"`)
	}
	b.WriteByte('}')
	return b.String()
}

// splitName separates a rendered metric name into its base name and the
// inner label list: `a_total{resource="S1"}` -> ("a_total",
// `resource="S1"`).
func splitName(name string) (base, labels string) {
	i := strings.IndexByte(name, '{')
	if i < 0 || !strings.HasSuffix(name, "}") {
		return name, ""
	}
	return name[:i], name[i+1 : len(name)-1]
}

// sortedKeys returns the keys of a map[string]V in sorted order.
func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
